# Resolve GoogleTest, in order of preference:
#  1. an installed package (find_package(GTest)) — covers CI images and the
#     edge build containers, which bake in libgtest;
#  2. the distro source tree (/usr/src/googletest, Debian/Ubuntu
#     `googletest` package) built in-tree;
#  3. FetchContent from upstream — requires network, last resort so a clean
#     offline checkout still configures.
# Each path ends with GTest::gtest and GTest::gtest_main defined.

find_package(GTest QUIET)

if(NOT TARGET GTest::gtest)
  set(_varade_gtest_src "/usr/src/googletest")
  if(EXISTS "${_varade_gtest_src}/CMakeLists.txt")
    message(STATUS "GTest package not found; building from ${_varade_gtest_src}")
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    add_subdirectory("${_varade_gtest_src}" "${CMAKE_BINARY_DIR}/_gtest" EXCLUDE_FROM_ALL)
  else()
    message(STATUS "GTest not found locally; fetching from upstream")
    include(FetchContent)
    FetchContent_Declare(
      googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
      URL_HASH SHA256=1f357c27ca988c3f7c6b4bf68a9395005ac6761f034046e9dde0896e3aba00e4)
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
  endif()
  # The source builds export plain `gtest` / `gtest_main` targets.
  if(NOT TARGET GTest::gtest AND TARGET gtest)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()

if(NOT TARGET GTest::gtest)
  message(FATAL_ERROR "Could not resolve GoogleTest via package, system source, or FetchContent")
endif()
