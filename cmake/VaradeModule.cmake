# Helper for declaring one static library per src/ module with the shared
# warning set and public include directory convention
# (src/<module>/include/varade/<module>/...).

set(VARADE_WARNING_FLAGS -Wall -Wextra)

# varade_add_module(<name> <sources...>)
# Creates static library varade_<name> with alias varade::<name>.
function(varade_add_module name)
  add_library(varade_${name} STATIC ${ARGN})
  add_library(varade::${name} ALIAS varade_${name})
  target_include_directories(varade_${name}
    PUBLIC ${CMAKE_CURRENT_SOURCE_DIR}/include)
  target_compile_options(varade_${name} PRIVATE ${VARADE_WARNING_FLAGS})
  if(VARADE_WERROR)
    target_compile_options(varade_${name} PRIVATE -Werror)
  endif()
endfunction()
