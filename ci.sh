#!/usr/bin/env bash
# Local CI: exactly what .github/workflows/ci.yml runs.
#
# Configure the Release preset, build everything with -j, run the fast CTest
# preset (everything except LABELS slow), then run the batched-vs-sequential
# parity suites explicitly by label, a serve throughput smoke run covering
# all six detectors, and two network-serving smokes: start varade-served on a
# Unix socket (then on a shm: bootstrap socket with batched frames), drive it
# with forked client processes, and shut it down over the wire. src/core,
# src/serve, and src/net are compiled with -Werror unconditionally, so a
# warning in any of them breaks the build itself.
#
# --sanitize instead builds the library and tests under ASan + UBSan
# (RelWithDebInfo, VARADE_SANITIZE=ON, separate build-asan tree) and runs the
# parity label — the batched gathers and native score_batch paths of all six
# detectors, including the fuzz suite, memory-checked.
#
# --tsan builds under ThreadSanitizer (VARADE_TSAN=ON, separate build-tsan
# tree) and runs the concurrency label — the thread pool, the async
# ingestion runtime (lock-free rings, backpressure, multi-producer parity),
# the sharded runtime (multi-engine parity at shards {1,2,4,auto},
# serialized-sharing fallback), and the shm ring's SPSC producer/consumer
# pair with doorbell arming (test_net_wire) race-checked.
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="build"
JOBS="${JOBS:-$(nproc)}"

if [[ "${1:-}" == "--sanitize" ]]; then
  BUILD_DIR="build-asan"
  echo "== configure (ASan + UBSan, RelWithDebInfo) =="
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVARADE_SANITIZE=ON \
    -DVARADE_BUILD_BENCH=OFF \
    -DVARADE_BUILD_EXAMPLES=OFF

  echo "== build (-j$JOBS) =="
  cmake --build "$BUILD_DIR" -j "$JOBS"

  echo "== test (parity label under ASan/UBSan) =="
  ctest --test-dir "$BUILD_DIR" -L parity --output-on-failure -j "$JOBS"

  echo "CI OK (sanitize)"
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  BUILD_DIR="build-tsan"
  echo "== configure (TSan, RelWithDebInfo) =="
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVARADE_TSAN=ON \
    -DVARADE_BUILD_BENCH=OFF \
    -DVARADE_BUILD_EXAMPLES=OFF

  echo "== build (-j$JOBS) =="
  cmake --build "$BUILD_DIR" -j "$JOBS"

  echo "== test (concurrency label under ThreadSanitizer) =="
  ctest --test-dir "$BUILD_DIR" -L concurrency --output-on-failure -j "$JOBS"

  echo "CI OK (tsan)"
  exit 0
fi

echo "== configure (Release preset) =="
cmake --preset default

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j "$JOBS" 2>&1 | tee "$BUILD_DIR/build.log"

# src/core and src/serve are compiled -Werror, so any warning there already
# failed the build. Surface warnings elsewhere without failing (informational).
if grep -E "warning:" "$BUILD_DIR/build.log" | grep -v "_deps" > "$BUILD_DIR/warnings.log"; then
  echo "-- warnings outside -Werror scope:"
  cat "$BUILD_DIR/warnings.log"
fi

echo "== test (fast preset: -LE slow) =="
ctest --preset fast

echo "== test (parity label: batched == sequential, all six detectors) =="
ctest --test-dir "$BUILD_DIR" -L parity --output-on-failure -j "$JOBS"

echo "== smoke: serve throughput bench (quick, all six detectors, async + sharded) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_serve_throughput
"$BUILD_DIR/bench/bench_serve_throughput" --quick --detector all --async --shards 2

echo "== smoke: fleet-scale stream sweep (10k SoA streams, checksum vs OnlineMonitor) =="
# The sweep exits non-zero if any per-stream score sum diverges from the
# per-archetype OnlineMonitor baseline by a single bit.
"$BUILD_DIR/bench/bench_serve_throughput" --stream-sweep 10000 --samples 50 \
  --json "$BUILD_DIR/stream_sweep_smoke.json"

echo "== smoke: net serving (in-process daemon, forked clients, checksum-pinned) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_net_throughput varade-served
"$BUILD_DIR/bench/bench_net_throughput" --quick

echo "== smoke: varade-served daemon + /metrics scrape under load, SHUTDOWN over the wire =="
NET_SOCK="/tmp/varade_ci_$$.sock"
NET_LOG="$BUILD_DIR/served_smoke.log"
"$BUILD_DIR/src/net/varade-served" --listen "unix:$NET_SOCK" \
  --metrics tcp:127.0.0.1:0 --streams 8 --quiet > "$NET_LOG" &
DAEMON_PID=$!
for _ in $(seq 1 100); do [[ -S "$NET_SOCK" ]] && grep -q '^metrics on ' "$NET_LOG" && break; sleep 0.2; done
[[ -S "$NET_SOCK" ]] || { echo "FATAL: daemon never bound $NET_SOCK"; kill "$DAEMON_PID"; exit 1; }
METRICS_PORT="$(sed -n 's/^metrics on tcp:.*:\([0-9]*\)$/\1/p' "$NET_LOG")"
[[ -n "$METRICS_PORT" ]] || { echo "FATAL: no metrics port in $NET_LOG"; kill "$DAEMON_PID"; exit 1; }
# Scrape while client load is in flight: --scrape-metrics asserts the key
# series are present and that the counters advance monotonically between two
# scrapes (see bench_net_throughput.cpp).
"$BUILD_DIR/bench/bench_net_throughput" \
  --connect "unix:$NET_SOCK" --clients 2 --streams 8 --samples 300 &
LOAD_PID=$!
"$BUILD_DIR/bench/bench_net_throughput" --scrape-metrics "tcp:127.0.0.1:$METRICS_PORT"
wait "$LOAD_PID"
"$BUILD_DIR/bench/bench_net_throughput" \
  --connect "unix:$NET_SOCK" --clients 2 --streams 8 --samples 300 --shutdown
wait "$DAEMON_PID"
# The exit report prints even under --quiet, and its accounting reconciles.
grep -q '^shutdown: .* samples pushed, .* scored, ' "$NET_LOG" \
  || { echo "FATAL: daemon exit report missing from $NET_LOG"; cat "$NET_LOG"; exit 1; }
rm -f "$NET_SOCK"

echo "== smoke: shared-memory transport (daemon on shm:, batch 64, checksum vs baseline) =="
# --smoke regenerates the sequential OnlineMonitor baseline in the bench
# process (both sides self-train from the same seeds) and exits nonzero on
# any checksum divergence or if the shm push path degenerates into
# doorbell-per-sample syscalls. --shutdown stops the daemon over the wire.
SHM_SOCK="/tmp/varade_ci_shm_$$.sock"
SHM_LOG="$BUILD_DIR/served_shm_smoke.log"
"$BUILD_DIR/src/net/varade-served" --listen "shm:$SHM_SOCK" --streams 8 --quiet > "$SHM_LOG" &
SHM_PID=$!
for _ in $(seq 1 100); do [[ -S "$SHM_SOCK" ]] && break; sleep 0.2; done
[[ -S "$SHM_SOCK" ]] || { echo "FATAL: daemon never bound $SHM_SOCK"; kill "$SHM_PID"; exit 1; }
"$BUILD_DIR/bench/bench_net_throughput" \
  --connect "shm:$SHM_SOCK" --clients 2 --streams 8 --samples 300 \
  --batch 64 --smoke --shutdown
wait "$SHM_PID"
grep -q '^shutdown: .* samples pushed, .* scored, ' "$SHM_LOG" \
  || { echo "FATAL: daemon exit report missing from $SHM_LOG"; cat "$SHM_LOG"; exit 1; }
rm -f "$SHM_SOCK"

echo "CI OK"
