#!/usr/bin/env bash
# Local CI: exactly what .github/workflows/ci.yml runs.
#
# Configure Release, build everything with -j, run the full CTest suite, and
# fail on any compiler warning in src/serve (that target is compiled with
# -Werror unconditionally, so a warning there breaks the build itself).
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure (Release) =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j "$JOBS" 2>&1 | tee "$BUILD_DIR/build.log"

# src/serve is compiled -Werror, so any warning already failed the build.
# Surface warnings elsewhere in the tree without failing (informational).
if grep -E "warning:" "$BUILD_DIR/build.log" | grep -v "_deps" > "$BUILD_DIR/warnings.log"; then
  echo "-- warnings outside -Werror scope:"
  cat "$BUILD_DIR/warnings.log"
fi

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== smoke: serve throughput bench (quick) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_serve_throughput
"$BUILD_DIR/bench/bench_serve_throughput" --quick

echo "CI OK"
