// Network serving throughput bench: end-to-end stream-samples/sec through
// the varade::net daemon, driven by N *forked client processes* — real
// multi-process load over loopback TCP and/or a Unix-domain socket, not
// threads sharing an address space.
//
// Self-contained mode (default): trains the detector, creates the net::Server
// (listeners bound, no threads yet — the fork happens while this process is
// still single-threaded), forks the clients, then serves from a thread until
// every client is done. Each child pushes its share of the streams
// (round-robin), receives its scores back, and reports {scores, checksum,
// nacks} over a pipe. The parent verifies the summed checksum against a
// sequential per-stream OnlineMonitor baseline at 1e-6 relative tolerance —
// the determinism contract, measured across process boundaries.
//
// --connect <endpoint> mode: drives an already-running varade-served daemon
// (which self-trained on the same seeds) instead; scores are counted but not
// checksum-verified (the baseline lives in the daemon's process) unless
// --smoke is given, which regenerates the sequential baseline locally — the
// daemon and this process train the identical model from the identical seeds,
// so the checksum comparison is exact across processes. --shutdown
// additionally sends a SHUTDOWN frame once the clients finish — the ci.sh
// smoke step uses exactly this to stop the daemon it started.
//
// --transport shm (or all) measures the shared-memory ring transport;
// --batch K makes each client push K-sample SAMPLE_BATCH frames (1 = the
// classic one-frame-per-sample path). On shm runs the merged doorbell count
// is asserted to be a small fraction of the samples pushed — the steady-state
// push path is zero-syscall, and the doorbell counter is the proof.
//
// --json <path> writes the per-transport samples/s as a machine-readable
// record (the repo's BENCH_*.json perf trajectory points), including the
// daemon-side score-latency quantiles (scorer round and sampled push->score
// p50/p95/p99) read from the runtime telemetry after the load.
//
// --scrape-metrics <tcp:HOST:PORT> probes a daemon's Prometheus endpoint
// instead of running a load: two GET /metrics scrapes a beat apart, asserting
// the response is HTTP 200, the key series are present, and every sampled
// counter is monotonically non-decreasing between the scrapes. Exits nonzero
// on any violation — the ci.sh daemon smoke runs this while the load is in
// flight.
//
// Usage: bench_net_throughput [--quick] [--clients N] [--streams N]
//                             [--samples N] [--detector <name>|all]
//                             [--transport uds|tcp|shm|both|all] [--shards N]
//                             [--batch K] [--ring-capacity N]
//                             [--connect <endpoint>] [--shutdown] [--smoke]
//                             [--scrape-metrics <tcp:HOST:PORT>]
//                             [--json <path>]
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "varade/core/monitor.hpp"
#include "varade/net/client.hpp"
#include "varade/net/server.hpp"

namespace {

using namespace varade;
using Clock = std::chrono::steady_clock;

/// What one forked client reports back through its pipe.
struct ChildReport {
  std::uint64_t scores = 0;
  double checksum = 0.0;
  std::uint64_t nacks = 0;
  std::uint64_t doorbells = 0;  // shm push-path doorbell syscalls (0 on sockets)
};

/// Child body: connect, push every sample of the owned streams, poll the
/// scores back, write the report, _exit. Streams are regenerated from their
/// seeds, so nothing but the endpoint crosses the fork.
///
/// batch == 1 pushes one SAMPLE frame per sample, interleaved across the
/// owned streams; batch > 1 pushes K-sample blocks per stream via
/// push_batch() — the series storage is row-major [time, channel], so a
/// block is one contiguous slice, no staging copy.
void run_child(const net::Endpoint& endpoint, int child_idx, int n_clients, Index n_streams,
               Index n_samples, Index batch, int report_fd) {
  ChildReport report;
  try {
    net::Client client(endpoint, {.connect_retry_ms = 10000, .batch = batch});
    std::vector<Index> mine;
    std::vector<data::MultivariateSeries> series;
    for (Index s = child_idx; s < n_streams; s += n_clients) {
      mine.push_back(s);
      series.push_back(bench::make_sine(n_samples, 100 + static_cast<std::uint64_t>(s)));
    }
    const auto want =
        static_cast<std::uint64_t>(mine.size()) * static_cast<std::uint64_t>(n_samples);
    net::ClientEvent ev;
    auto absorb = [&](int timeout_ms) {
      while (report.scores + report.nacks < want && client.poll_event(ev, timeout_ms)) {
        if (ev.kind == net::ClientEvent::Kind::Score) {
          ++report.scores;
          report.checksum += static_cast<double>(ev.score.score);
        } else if (ev.kind == net::ClientEvent::Kind::Nack) {
          ++report.nacks;
        }
        if (timeout_ms != 0) break;  // one blocking hit, then back to pushing
      }
    };
    if (batch <= 1) {
      for (Index t = 0; t < n_samples; ++t) {
        for (std::size_t i = 0; i < mine.size(); ++i)
          client.send_sample(mine[i], static_cast<std::uint64_t>(t), series[i].sample(t));
        absorb(0);  // keep the return path drained so neither side stalls
      }
    } else {
      for (Index t = 0; t < n_samples; t += batch) {
        const Index k = std::min(batch, n_samples - t);
        for (std::size_t i = 0; i < mine.size(); ++i)
          client.push_batch(mine[i], static_cast<std::uint64_t>(t), series[i].sample(t), k);
        absorb(0);
      }
    }
    client.flush();
    while (report.scores + report.nacks < want) absorb(30000);
    client.send_goodbye();
    report.doorbells = static_cast<std::uint64_t>(client.shm_doorbells());
  } catch (const Error& e) {
    std::fprintf(stderr, "client %d: %s\n", child_idx, e.what());
    _exit(1);
  }
  const ssize_t wrote = write(report_fd, &report, sizeof(report));
  _exit(wrote == static_cast<ssize_t>(sizeof(report)) ? 0 : 1);
}

/// Forks the clients against `endpoint`, waits for them, and returns the
/// merged report plus the wall-clock seconds of the whole drive.
ChildReport drive_clients(const net::Endpoint& endpoint, int n_clients, Index n_streams,
                          Index n_samples, Index batch, double& seconds) {
  std::vector<pid_t> pids;
  std::vector<int> pipes;
  const auto start = Clock::now();
  for (int c = 0; c < n_clients; ++c) {
    int fds[2];
    if (pipe(fds) != 0) fail("bench: pipe(): ", std::strerror(errno));
    const pid_t pid = fork();
    if (pid < 0) fail("bench: fork(): ", std::strerror(errno));
    if (pid == 0) {
      close(fds[0]);
      run_child(endpoint, c, n_clients, n_streams, n_samples, batch, fds[1]);  // never returns
    }
    close(fds[1]);
    pids.push_back(pid);
    pipes.push_back(fds[0]);
  }
  ChildReport merged;
  bool failed = false;
  for (int c = 0; c < n_clients; ++c) {
    ChildReport report;
    std::size_t got = 0;
    while (got < sizeof(report)) {
      const ssize_t n =
          read(pipes[static_cast<std::size_t>(c)], reinterpret_cast<char*>(&report) + got,
               sizeof(report) - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    close(pipes[static_cast<std::size_t>(c)]);
    int status = 0;
    waitpid(pids[static_cast<std::size_t>(c)], &status, 0);
    if (got != sizeof(report) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "FATAL: client %d died (status %d)\n", c, status);
      failed = true;
      continue;
    }
    merged.scores += report.scores;
    merged.checksum += report.checksum;
    merged.nacks += report.nacks;
    merged.doorbells += report.doorbells;
  }
  seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (failed) std::exit(1);
  return merged;
}

/// The shm zero-syscall claim, asserted: steady-state pushes make no
/// syscalls, so client doorbells (rung only when the daemon declared itself
/// asleep on an empty ring) must be a small fraction of the samples pushed.
/// Exits fatally when the push path degenerated into doorbell-per-sample.
void check_doorbell_budget(std::uint64_t doorbells, long total) {
  const auto budget = static_cast<std::uint64_t>(total / 4 + 64);
  if (doorbells > budget) {
    std::fprintf(stderr,
                 "FATAL: shm push path rang %llu doorbells for %ld samples (budget %llu) —"
                 " the zero-syscall steady state is broken\n",
                 static_cast<unsigned long long>(doorbells), total,
                 static_cast<unsigned long long>(budget));
    std::exit(1);
  }
  std::printf("       shm doorbells: %llu for %ld samples (%.4f per sample)\n",
              static_cast<unsigned long long>(doorbells), total,
              static_cast<double>(doorbells) / static_cast<double>(total));
}

struct TransportResult {
  std::string transport;
  std::string detector;
  Index batch = 1;
  double samples_per_s = 0.0;
  std::uint64_t scores = 0;
  std::uint64_t nacks = 0;
  std::uint64_t doorbells = 0;  // shm only; 0 on the socket transports
  // Daemon-side score-latency quantiles (ns) from the runtime telemetry,
  // snapshotted while the server is still up. Zero with -DVARADE_OBS=OFF.
  std::int64_t round_p50_ns = 0, round_p95_ns = 0, round_p99_ns = 0;
  std::int64_t push_to_score_p50_ns = 0, push_to_score_p95_ns = 0, push_to_score_p99_ns = 0;
};

void usage_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--clients N] [--streams N] [--samples N]\n"
               "          [--detector <name>|all] [--transport uds|tcp|shm|both|all]\n"
               "          [--shards N] [--batch K] [--ring-capacity N]\n"
               "          [--connect <endpoint>] [--shutdown] [--smoke]\n"
               "          [--scrape-metrics <tcp:HOST:PORT>] [--json <path>]\n",
               argv0);
  std::exit(2);
}

// ---------------------------------------------------------------------------
// --scrape-metrics: Prometheus endpoint probe (the ci.sh daemon smoke runs
// this while a load is in flight).

/// One GET /metrics over a fresh connection; returns the body. Exits the
/// process unless the response is an HTTP 200 with a proper header/body split.
std::string scrape_once(const net::Endpoint& endpoint) {
  const net::Socket sock = net::connect_endpoint(endpoint);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  net::send_all(sock.fd(), request.data(), request.size());
  std::string response;
  char buf[8192];
  for (;;) {  // the daemon closes after one response (Connection: close)
    const long n = net::read_some(sock.fd(), buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  if (response.rfind("HTTP/1.0 200", 0) != 0) {
    std::fprintf(stderr, "FATAL: /metrics scrape did not return HTTP 200, got:\n%.200s\n",
                 response.c_str());
    std::exit(1);
  }
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) {
    std::fprintf(stderr, "FATAL: /metrics response has no header/body separator\n");
    std::exit(1);
  }
  return response.substr(split + 4);
}

/// Value of the first sample line starting with `prefix` (a metric name, or
/// name + label-set prefix); exits when the series is missing.
double series_value(const std::string& body, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    if (body.compare(pos, len, prefix) == 0) {
      const std::size_t sp = body.rfind(' ', eol);
      return std::strtod(body.c_str() + sp + 1, nullptr);
    }
    pos = eol + 1;
  }
  std::fprintf(stderr, "FATAL: /metrics is missing series %s\n", prefix);
  std::exit(1);
}

int run_scrape(const std::string& spec) {
  const net::Endpoint endpoint = net::parse_endpoint(spec);
  if (endpoint.kind != net::Endpoint::Kind::Tcp) {
    std::fprintf(stderr, "error: --scrape-metrics expects tcp:HOST:PORT\n");
    return 2;
  }

  const std::string first = scrape_once(endpoint);
  // The series the roadmap's consumers (dashboards, the future auto-tuner)
  // key on: sample accounting, per-shard scorer counters, and the
  // phase-latency histograms. Presence is asserted even in -DVARADE_OBS=OFF
  // daemons — the families are always exposed, only the values stay zero.
  const char* required[] = {
      "varade_samples_pushed_total ",
      "varade_samples_scored_total ",
      "varade_scorer_rounds_total{shard=\"0\"}",
      "varade_scorer_scored_total{shard=\"0\"}",
      "varade_step_phase_seconds_bucket{phase=\"stage\"",
      "varade_step_phase_seconds_count{phase=\"score\"}",
      "varade_engine_step_seconds_count ",
      "varade_push_to_score_seconds_count ",
      "varade_scorer_round_seconds_count ",
      "varade_net_connections ",
      "varade_net_frames_decoded_total ",
  };
  for (const char* series : required) {
    if (first.find(series) == std::string::npos) {
      std::fprintf(stderr, "FATAL: /metrics is missing series %s\n", series);
      return 1;
    }
  }

  // Second scrape a beat later: every counter must be monotonically
  // non-decreasing (and under load, visibly increasing for the push path).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::string second = scrape_once(endpoint);
  const char* monotonic[] = {
      "varade_samples_pushed_total ",
      "varade_samples_scored_total ",
      "varade_scorer_rounds_total{shard=\"0\"}",
      "varade_net_frames_decoded_total ",
      "varade_net_connections_accepted_total ",
      "varade_net_metrics_scrapes_total ",
      "varade_engine_step_seconds_count ",
  };
  for (const char* series : monotonic) {
    const double v1 = series_value(first, series);
    const double v2 = series_value(second, series);
    if (v2 < v1) {
      std::fprintf(stderr, "FATAL: series %s went backwards between scrapes (%g -> %g)\n",
                   series, v1, v2);
      return 1;
    }
  }
  // The scrape counter must advance by at least our own first scrape —
  // except against a -DVARADE_OBS=OFF daemon, where the gated counter
  // legitimately stays 0.
  const double scrapes1 = series_value(first, "varade_net_metrics_scrapes_total ");
  const double scrapes2 = series_value(second, "varade_net_metrics_scrapes_total ");
  if (scrapes2 > 0.0 && scrapes2 < scrapes1 + 1.0) {
    std::fprintf(stderr, "FATAL: scrape counter did not advance (%g -> %g)\n", scrapes1,
                 scrapes2);
    return 1;
  }

  std::printf("metrics scrape ok: %zu bytes, %zu required series present, %zu counters"
              " monotonic, pushed %.0f -> %.0f\n",
              second.size(), sizeof(required) / sizeof(required[0]),
              sizeof(monotonic) / sizeof(monotonic[0]),
              series_value(first, "varade_samples_pushed_total "),
              series_value(second, "varade_samples_pushed_total "));
  return 0;
}

void write_json(const std::string& path, int n_clients, Index n_streams, Index n_samples,
                const std::vector<TransportResult>& results) {
  std::ofstream f(path);
  if (!f.is_open()) {
    std::fprintf(stderr, "error: cannot open --json path %s for writing\n", path.c_str());
    std::exit(1);
  }
  f << "{\n";
  f << "  \"bench\": \"net_throughput\",\n";
  f << "  \"clients\": " << n_clients << ",\n";
  f << "  \"streams\": " << n_streams << ",\n";
  f << "  \"samples\": " << n_samples << ",\n";
  f << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  f << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TransportResult& r = results[i];
    char line[704];
    std::snprintf(line, sizeof(line),
                  "    {\"transport\": \"%s\", \"detector\": \"%s\", \"batch\": %ld, "
                  "\"samples_per_s\": %.1f, \"scores\": %llu, \"nacks\": %llu, "
                  "\"doorbells\": %llu, "
                  "\"round_p50_ns\": %lld, \"round_p95_ns\": %lld, \"round_p99_ns\": %lld, "
                  "\"push_to_score_p50_ns\": %lld, \"push_to_score_p95_ns\": %lld, "
                  "\"push_to_score_p99_ns\": %lld}%s\n",
                  r.transport.c_str(), r.detector.c_str(), static_cast<long>(r.batch),
                  r.samples_per_s, static_cast<unsigned long long>(r.scores),
                  static_cast<unsigned long long>(r.nacks),
                  static_cast<unsigned long long>(r.doorbells),
                  static_cast<long long>(r.round_p50_ns), static_cast<long long>(r.round_p95_ns),
                  static_cast<long long>(r.round_p99_ns),
                  static_cast<long long>(r.push_to_score_p50_ns),
                  static_cast<long long>(r.push_to_score_p95_ns),
                  static_cast<long long>(r.push_to_score_p99_ns),
                  i + 1 < results.size() ? "," : "");
    f << line;
  }
  f << "  ]\n}\n";
  if (!f) {
    std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int n_clients = 4;
  Index n_streams = 16;
  Index n_samples = 2000;
  Index n_shards = 1;
  Index batch = 1;
  Index ring_capacity = 0;  // 0 = the runtime default
  std::string detector_arg = "VARADE";
  std::string transport_arg = "both";
  std::string json_path;
  std::string connect_spec;
  std::string scrape_spec;
  bool send_shutdown = false;
  bool smoke = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      n_clients = 2;
      n_streams = 8;
      n_samples = 400;
    } else if (std::strcmp(argv[a], "--clients") == 0 && a + 1 < argc) {
      n_clients = static_cast<int>(bench::parse_long_arg("--clients", argv[++a]));
    } else if (std::strcmp(argv[a], "--streams") == 0 && a + 1 < argc) {
      n_streams = bench::parse_long_arg("--streams", argv[++a]);
    } else if (std::strcmp(argv[a], "--samples") == 0 && a + 1 < argc) {
      n_samples = bench::parse_long_arg("--samples", argv[++a]);
    } else if (std::strcmp(argv[a], "--shards") == 0 && a + 1 < argc) {
      n_shards = bench::parse_long_arg("--shards", argv[++a]);
    } else if (std::strcmp(argv[a], "--batch") == 0 && a + 1 < argc) {
      batch = bench::parse_long_arg("--batch", argv[++a]);
    } else if (std::strcmp(argv[a], "--ring-capacity") == 0 && a + 1 < argc) {
      ring_capacity = bench::parse_pow2_arg("--ring-capacity", argv[++a]);
    } else if (std::strcmp(argv[a], "--detector") == 0 && a + 1 < argc) {
      detector_arg = argv[++a];
    } else if (std::strcmp(argv[a], "--transport") == 0 && a + 1 < argc) {
      transport_arg = argv[++a];
    } else if (std::strcmp(argv[a], "--connect") == 0 && a + 1 < argc) {
      connect_spec = argv[++a];
    } else if (std::strcmp(argv[a], "--scrape-metrics") == 0 && a + 1 < argc) {
      scrape_spec = argv[++a];
    } else if (std::strcmp(argv[a], "--shutdown") == 0) {
      send_shutdown = true;
    } else if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else {
      usage_exit(argv[0]);
    }
  }
  if (!scrape_spec.empty()) return run_scrape(scrape_spec);
  if (n_clients < 1 || n_streams < 1 || n_samples < 1) {
    std::fprintf(stderr, "error: --clients/--streams/--samples must be >= 1\n");
    return 2;
  }
  if (batch < 1 || batch > static_cast<Index>(net::kMaxBatchSamples)) {
    std::fprintf(stderr, "error: --batch must be in [1, %u]\n", net::kMaxBatchSamples);
    return 2;
  }
  if (n_clients > static_cast<int>(n_streams)) n_clients = static_cast<int>(n_streams);
  if (transport_arg != "uds" && transport_arg != "tcp" && transport_arg != "shm" &&
      transport_arg != "both" && transport_arg != "all")
    usage_exit(argv[0]);

  const long total = static_cast<long>(n_streams) * static_cast<long>(n_samples);

  // --connect: drive an external daemon; count scores, no local baseline
  // (unless --smoke regenerates it from the shared seeds below).
  if (!connect_spec.empty()) {
    const net::Endpoint endpoint = net::parse_endpoint(connect_spec);
    std::printf("driving %s with %d client processes (%ld streams x %ld samples, batch %ld)\n",
                net::to_string(endpoint).c_str(), n_clients, static_cast<long>(n_streams),
                static_cast<long>(n_samples), static_cast<long>(batch));
    double seconds = 0.0;
    const ChildReport merged =
        drive_clients(endpoint, n_clients, n_streams, n_samples, batch, seconds);
    std::printf("%llu scores, %llu nacks in %.3f s  ->  %.0f samples/s end-to-end\n",
                static_cast<unsigned long long>(merged.scores),
                static_cast<unsigned long long>(merged.nacks), seconds,
                static_cast<double>(merged.scores) / seconds);
    if (merged.scores + merged.nacks != static_cast<std::uint64_t>(total)) {
      std::fprintf(stderr, "FATAL: expected %ld scores+nacks, got %llu\n", total,
                   static_cast<unsigned long long>(merged.scores + merged.nacks));
      return 1;
    }
    if (endpoint.kind == net::Endpoint::Kind::Shm)
      check_doorbell_budget(merged.doorbells, total);
    if (smoke) {
      // The daemon self-trained on the same seeds this process holds, so the
      // sequential baseline is reproducible here: train the identical model,
      // monitor the identical streams, compare checksums exactly as the
      // self-contained mode does — but across a process boundary.
      if (merged.nacks != 0) {
        std::fprintf(stderr, "FATAL: --smoke run saw %llu nacks\n",
                     static_cast<unsigned long long>(merged.nacks));
        return 1;
      }
      std::printf("regenerating the sequential baseline for the smoke checksum...\n");
      const core::Profile profile = bench::tiny_serve_profile();
      const data::MultivariateSeries train_raw = bench::make_sine(1200, 1);
      data::MinMaxNormalizer normalizer;
      normalizer.fit(train_raw);
      const data::MultivariateSeries train = normalizer.transform(train_raw);
      const std::unique_ptr<core::AnomalyDetector> detector =
          core::make_detector(profile, detector_arg);
      detector->fit(train);
      const float threshold = core::calibrate_threshold(*detector, train, {});
      double checksum_base = 0.0;
      for (Index s = 0; s < n_streams; ++s) {
        core::OnlineMonitor monitor(*detector, normalizer);
        monitor.set_threshold(threshold);
        const data::MultivariateSeries in =
            bench::make_sine(n_samples, 100 + static_cast<std::uint64_t>(s));
        for (Index t = 0; t < in.length(); ++t) checksum_base += monitor.push(in.sample(t));
      }
      if (std::abs(merged.checksum - checksum_base) > 1e-6 * std::abs(checksum_base)) {
        std::fprintf(stderr,
                     "FATAL: smoke checksum mismatch vs sequential baseline (%.9g vs %.9g)\n",
                     merged.checksum, checksum_base);
        return 1;
      }
      std::printf("smoke checksum matches the sequential baseline (%.9g)\n", merged.checksum);
    }
    // Daemon-side latency quantiles via the STATS wire probe (all zero when
    // the daemon was built with -DVARADE_OBS=OFF).
    {
      net::Client prober(endpoint);
      prober.request_stats();
      net::ClientEvent ev;
      while (prober.poll_event(ev, 30000)) {
        if (ev.kind != net::ClientEvent::Kind::Stats) continue;
        std::printf("daemon stats: %llu pushed, %llu scored, %llu dropped; round p50/p95/p99"
                    " %.1f/%.1f/%.1f us, push->score %.1f/%.1f/%.1f us\n",
                    static_cast<unsigned long long>(ev.stats.pushed),
                    static_cast<unsigned long long>(ev.stats.scored),
                    static_cast<unsigned long long>(ev.stats.dropped),
                    static_cast<double>(ev.stats.round_p50_ns) * 1e-3,
                    static_cast<double>(ev.stats.round_p95_ns) * 1e-3,
                    static_cast<double>(ev.stats.round_p99_ns) * 1e-3,
                    static_cast<double>(ev.stats.push_to_score_p50_ns) * 1e-3,
                    static_cast<double>(ev.stats.push_to_score_p95_ns) * 1e-3,
                    static_cast<double>(ev.stats.push_to_score_p99_ns) * 1e-3);
        break;
      }
      prober.send_goodbye();
    }
    if (send_shutdown) {
      net::Client closer(endpoint);
      closer.request_shutdown();
      net::ClientEvent ev;
      while (closer.poll_event(ev, 30000))
        if (ev.kind == net::ClientEvent::Kind::Goodbye) break;
      std::printf("daemon acknowledged SHUTDOWN with GOODBYE\n");
    }
    return 0;
  }

  // Self-contained: train, baseline, then one measurement per transport.
  std::vector<std::string> names;
  if (detector_arg == "all") {
    names = core::detector_names();
  } else {
    names.push_back(detector_arg);
  }
  std::vector<std::string> transports;
  if (transport_arg == "both") {
    transports = {"uds", "tcp"};
  } else if (transport_arg == "all") {
    transports = {"uds", "tcp", "shm"};
  } else {
    transports.push_back(transport_arg);
  }

  const core::Profile profile = bench::tiny_serve_profile();
  const data::MultivariateSeries train_raw = bench::make_sine(1200, 1);
  data::MinMaxNormalizer normalizer;
  normalizer.fit(train_raw);
  const data::MultivariateSeries train = normalizer.transform(train_raw);

  std::vector<data::MultivariateSeries> streams;
  for (Index s = 0; s < n_streams; ++s)
    streams.push_back(bench::make_sine(n_samples, 100 + static_cast<std::uint64_t>(s)));

  std::printf("%ld streams x %ld samples = %ld stream-samples, %d client processes"
              "  (%u hardware threads)\n",
              static_cast<long>(n_streams), static_cast<long>(n_samples), total, n_clients,
              std::thread::hardware_concurrency());

  std::vector<TransportResult> results;
  for (const std::string& name : names) {
    std::printf("\nTraining %s (tiny serving configuration)...\n", name.c_str());
    const std::unique_ptr<core::AnomalyDetector> detector =
        core::make_detector(profile, name);  // throws on an unknown name
    detector->fit(train);
    const float threshold = core::calibrate_threshold(*detector, train, {});

    // Sequential baseline: one OnlineMonitor per stream — the checksum every
    // transport's distributed sum must match.
    double checksum_base = 0.0;
    for (Index s = 0; s < n_streams; ++s) {
      core::OnlineMonitor monitor(*detector, normalizer);
      monitor.set_threshold(threshold);
      const data::MultivariateSeries& in = streams[static_cast<std::size_t>(s)];
      for (Index t = 0; t < in.length(); ++t) checksum_base += monitor.push(in.sample(t));
    }

    for (const std::string& transport : transports) {
      net::ServerConfig config;
      char uds_path[128];
      std::snprintf(uds_path, sizeof(uds_path), "/tmp/varade_bench_net_%ld.sock",
                    static_cast<long>(getpid()));
      if (transport == "uds") {
        config.uds_path = uds_path;
      } else if (transport == "shm") {
        config.shm_path = uds_path;  // the shm bootstrap socket reuses the path
      } else {
        config.tcp_port = 0;  // ephemeral
      }
      config.n_streams = n_streams;
      config.threshold = threshold;
      config.runtime.n_shards = n_shards;
      if (ring_capacity > 0) config.runtime.ring_capacity = ring_capacity;

      // Listeners exist after construction but no thread does yet: the forks
      // below happen from a single-threaded process, and the children queue
      // in the listen backlog until run() starts accepting.
      net::Server server(*detector, normalizer, config);
      net::Endpoint endpoint;
      if (transport == "uds") {
        endpoint = net::Endpoint{.kind = net::Endpoint::Kind::Unix, .path = config.uds_path};
      } else if (transport == "shm") {
        endpoint = net::Endpoint{.kind = net::Endpoint::Kind::Shm, .path = config.shm_path};
      } else {
        endpoint = net::Endpoint{
            .kind = net::Endpoint::Kind::Tcp, .host = "127.0.0.1", .port = server.tcp_port()};
      }

      std::vector<pid_t> pids;
      std::vector<int> pipes;
      const auto start = Clock::now();
      for (int c = 0; c < n_clients; ++c) {
        int fds[2];
        if (pipe(fds) != 0) fail("bench: pipe(): ", std::strerror(errno));
        const pid_t pid = fork();
        if (pid < 0) fail("bench: fork(): ", std::strerror(errno));
        if (pid == 0) {
          close(fds[0]);
          run_child(endpoint, c, n_clients, n_streams, n_samples, batch, fds[1]);  // never returns
        }
        close(fds[1]);
        pids.push_back(pid);
        pipes.push_back(fds[0]);
      }

      std::thread server_thread([&server] { server.run(); });

      ChildReport merged;
      bool failed = false;
      for (int c = 0; c < n_clients; ++c) {
        ChildReport report;
        std::size_t got = 0;
        while (got < sizeof(report)) {
          const ssize_t n = read(pipes[static_cast<std::size_t>(c)],
                                 reinterpret_cast<char*>(&report) + got, sizeof(report) - got);
          if (n <= 0) break;
          got += static_cast<std::size_t>(n);
        }
        close(pipes[static_cast<std::size_t>(c)]);
        int status = 0;
        waitpid(pids[static_cast<std::size_t>(c)], &status, 0);
        if (got != sizeof(report) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          std::fprintf(stderr, "FATAL: client %d died (status %d)\n", c, status);
          failed = true;
          continue;
        }
        merged.scores += report.scores;
        merged.checksum += report.checksum;
        merged.nacks += report.nacks;
        merged.doorbells += report.doorbells;
      }
      const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
      // Latency telemetry, snapshotted while the runtime is still up (the
      // snapshot is documented safe against concurrent scorers).
      const serve::ShardTelemetry telemetry = server.runtime().telemetry().total;
      server.request_stop();
      server_thread.join();
      if (failed) return 1;

      if (merged.scores != static_cast<std::uint64_t>(total) || merged.nacks != 0) {
        std::fprintf(stderr, "FATAL: expected %ld scores and 0 nacks, got %llu / %llu\n",
                     total, static_cast<unsigned long long>(merged.scores),
                     static_cast<unsigned long long>(merged.nacks));
        return 1;
      }
      if (std::abs(merged.checksum - checksum_base) > 1e-6 * std::abs(checksum_base)) {
        std::fprintf(stderr,
                     "FATAL: %s %s checksum mismatch vs sequential baseline (%.9g vs %.9g)\n",
                     name.c_str(), transport.c_str(), merged.checksum, checksum_base);
        return 1;
      }
      const double samples_per_s = static_cast<double>(total) / seconds;
      std::printf("%-6s %d client processes, batch %ld: %10.3f s  %12.0f samples/s"
                  "  (checksum matches sequential baseline)\n",
                  transport.c_str(), n_clients, static_cast<long>(batch), seconds,
                  samples_per_s);
      if (transport == "shm") check_doorbell_budget(merged.doorbells, total);
      TransportResult result{.transport = transport,
                             .detector = name,
                             .batch = batch,
                             .samples_per_s = samples_per_s,
                             .scores = merged.scores,
                             .nacks = merged.nacks,
                             .doorbells = merged.doorbells,
                             .round_p50_ns = telemetry.round.quantile(0.50),
                             .round_p95_ns = telemetry.round.quantile(0.95),
                             .round_p99_ns = telemetry.round.quantile(0.99),
                             .push_to_score_p50_ns = telemetry.engine.push_to_score.quantile(0.50),
                             .push_to_score_p95_ns = telemetry.engine.push_to_score.quantile(0.95),
                             .push_to_score_p99_ns =
                                 telemetry.engine.push_to_score.quantile(0.99)};
      if (result.round_p50_ns > 0)
        std::printf("       score latency: round p50/p95/p99 %.1f/%.1f/%.1f us,"
                    " push->score %.1f/%.1f/%.1f us\n",
                    static_cast<double>(result.round_p50_ns) * 1e-3,
                    static_cast<double>(result.round_p95_ns) * 1e-3,
                    static_cast<double>(result.round_p99_ns) * 1e-3,
                    static_cast<double>(result.push_to_score_p50_ns) * 1e-3,
                    static_cast<double>(result.push_to_score_p95_ns) * 1e-3,
                    static_cast<double>(result.push_to_score_p99_ns) * 1e-3);
      results.push_back(result);
    }
  }

  if (!json_path.empty()) write_json(json_path, n_clients, n_streams, n_samples, results);
  std::printf("\nDone.\n");
  return 0;
}
