// Network serving throughput bench: end-to-end stream-samples/sec through
// the varade::net daemon, driven by N *forked client processes* — real
// multi-process load over loopback TCP and/or a Unix-domain socket, not
// threads sharing an address space.
//
// Self-contained mode (default): trains the detector, creates the net::Server
// (listeners bound, no threads yet — the fork happens while this process is
// still single-threaded), forks the clients, then serves from a thread until
// every client is done. Each child pushes its share of the streams
// (round-robin), receives its scores back, and reports {scores, checksum,
// nacks} over a pipe. The parent verifies the summed checksum against a
// sequential per-stream OnlineMonitor baseline at 1e-6 relative tolerance —
// the determinism contract, measured across process boundaries.
//
// --connect <endpoint> mode: drives an already-running varade-served daemon
// (which self-trained on the same seeds) instead; scores are counted but not
// checksum-verified (the baseline lives in the daemon's process). --shutdown
// additionally sends a SHUTDOWN frame once the clients finish — the ci.sh
// smoke step uses exactly this to stop the daemon it started.
//
// --json <path> writes the per-transport samples/s as a machine-readable
// record (the repo's BENCH_*.json perf trajectory points).
//
// Usage: bench_net_throughput [--quick] [--clients N] [--streams N]
//                             [--samples N] [--detector <name>|all]
//                             [--transport uds|tcp|both] [--shards N]
//                             [--connect <endpoint>] [--shutdown]
//                             [--json <path>]
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "varade/core/monitor.hpp"
#include "varade/net/client.hpp"
#include "varade/net/server.hpp"

namespace {

using namespace varade;
using Clock = std::chrono::steady_clock;

/// What one forked client reports back through its pipe.
struct ChildReport {
  std::uint64_t scores = 0;
  double checksum = 0.0;
  std::uint64_t nacks = 0;
};

/// Child body: connect, push every sample of the owned streams, poll the
/// scores back, write the report, _exit. Streams are regenerated from their
/// seeds, so nothing but the endpoint crosses the fork.
void run_child(const net::Endpoint& endpoint, int child_idx, int n_clients, Index n_streams,
               Index n_samples, int report_fd) {
  ChildReport report;
  try {
    net::Client client(endpoint, {.connect_retry_ms = 10000});
    std::vector<Index> mine;
    std::vector<data::MultivariateSeries> series;
    for (Index s = child_idx; s < n_streams; s += n_clients) {
      mine.push_back(s);
      series.push_back(bench::make_sine(n_samples, 100 + static_cast<std::uint64_t>(s)));
    }
    const auto want =
        static_cast<std::uint64_t>(mine.size()) * static_cast<std::uint64_t>(n_samples);
    net::ClientEvent ev;
    auto absorb = [&](int timeout_ms) {
      while (report.scores + report.nacks < want && client.poll_event(ev, timeout_ms)) {
        if (ev.kind == net::ClientEvent::Kind::Score) {
          ++report.scores;
          report.checksum += static_cast<double>(ev.score.score);
        } else if (ev.kind == net::ClientEvent::Kind::Nack) {
          ++report.nacks;
        }
        if (timeout_ms != 0) break;  // one blocking hit, then back to pushing
      }
    };
    for (Index t = 0; t < n_samples; ++t) {
      for (std::size_t i = 0; i < mine.size(); ++i)
        client.send_sample(mine[i], static_cast<std::uint64_t>(t), series[i].sample(t));
      absorb(0);  // keep the return path drained so neither side stalls
    }
    client.flush();
    while (report.scores + report.nacks < want) absorb(30000);
    client.send_goodbye();
  } catch (const Error& e) {
    std::fprintf(stderr, "client %d: %s\n", child_idx, e.what());
    _exit(1);
  }
  const ssize_t wrote = write(report_fd, &report, sizeof(report));
  _exit(wrote == static_cast<ssize_t>(sizeof(report)) ? 0 : 1);
}

/// Forks the clients against `endpoint`, waits for them, and returns the
/// merged report plus the wall-clock seconds of the whole drive.
ChildReport drive_clients(const net::Endpoint& endpoint, int n_clients, Index n_streams,
                          Index n_samples, double& seconds) {
  std::vector<pid_t> pids;
  std::vector<int> pipes;
  const auto start = Clock::now();
  for (int c = 0; c < n_clients; ++c) {
    int fds[2];
    if (pipe(fds) != 0) fail("bench: pipe(): ", std::strerror(errno));
    const pid_t pid = fork();
    if (pid < 0) fail("bench: fork(): ", std::strerror(errno));
    if (pid == 0) {
      close(fds[0]);
      run_child(endpoint, c, n_clients, n_streams, n_samples, fds[1]);  // never returns
    }
    close(fds[1]);
    pids.push_back(pid);
    pipes.push_back(fds[0]);
  }
  ChildReport merged;
  bool failed = false;
  for (int c = 0; c < n_clients; ++c) {
    ChildReport report;
    std::size_t got = 0;
    while (got < sizeof(report)) {
      const ssize_t n =
          read(pipes[static_cast<std::size_t>(c)], reinterpret_cast<char*>(&report) + got,
               sizeof(report) - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    close(pipes[static_cast<std::size_t>(c)]);
    int status = 0;
    waitpid(pids[static_cast<std::size_t>(c)], &status, 0);
    if (got != sizeof(report) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "FATAL: client %d died (status %d)\n", c, status);
      failed = true;
      continue;
    }
    merged.scores += report.scores;
    merged.checksum += report.checksum;
    merged.nacks += report.nacks;
  }
  seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (failed) std::exit(1);
  return merged;
}

struct TransportResult {
  std::string transport;
  std::string detector;
  double samples_per_s = 0.0;
  std::uint64_t scores = 0;
  std::uint64_t nacks = 0;
};

void usage_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--clients N] [--streams N] [--samples N]\n"
               "          [--detector <name>|all] [--transport uds|tcp|both] [--shards N]\n"
               "          [--connect <endpoint>] [--shutdown] [--json <path>]\n",
               argv0);
  std::exit(2);
}

void write_json(const std::string& path, int n_clients, Index n_streams, Index n_samples,
                const std::vector<TransportResult>& results) {
  std::ofstream f(path);
  if (!f.is_open()) {
    std::fprintf(stderr, "error: cannot open --json path %s for writing\n", path.c_str());
    std::exit(1);
  }
  f << "{\n";
  f << "  \"bench\": \"net_throughput\",\n";
  f << "  \"clients\": " << n_clients << ",\n";
  f << "  \"streams\": " << n_streams << ",\n";
  f << "  \"samples\": " << n_samples << ",\n";
  f << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  f << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TransportResult& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"transport\": \"%s\", \"detector\": \"%s\", "
                  "\"samples_per_s\": %.1f, \"scores\": %llu, \"nacks\": %llu}%s\n",
                  r.transport.c_str(), r.detector.c_str(), r.samples_per_s,
                  static_cast<unsigned long long>(r.scores),
                  static_cast<unsigned long long>(r.nacks),
                  i + 1 < results.size() ? "," : "");
    f << line;
  }
  f << "  ]\n}\n";
  if (!f) {
    std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int n_clients = 4;
  Index n_streams = 16;
  Index n_samples = 2000;
  Index n_shards = 1;
  std::string detector_arg = "VARADE";
  std::string transport_arg = "both";
  std::string json_path;
  std::string connect_spec;
  bool send_shutdown = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      n_clients = 2;
      n_streams = 8;
      n_samples = 400;
    } else if (std::strcmp(argv[a], "--clients") == 0 && a + 1 < argc) {
      n_clients = static_cast<int>(bench::parse_long_arg("--clients", argv[++a]));
    } else if (std::strcmp(argv[a], "--streams") == 0 && a + 1 < argc) {
      n_streams = bench::parse_long_arg("--streams", argv[++a]);
    } else if (std::strcmp(argv[a], "--samples") == 0 && a + 1 < argc) {
      n_samples = bench::parse_long_arg("--samples", argv[++a]);
    } else if (std::strcmp(argv[a], "--shards") == 0 && a + 1 < argc) {
      n_shards = bench::parse_long_arg("--shards", argv[++a]);
    } else if (std::strcmp(argv[a], "--detector") == 0 && a + 1 < argc) {
      detector_arg = argv[++a];
    } else if (std::strcmp(argv[a], "--transport") == 0 && a + 1 < argc) {
      transport_arg = argv[++a];
    } else if (std::strcmp(argv[a], "--connect") == 0 && a + 1 < argc) {
      connect_spec = argv[++a];
    } else if (std::strcmp(argv[a], "--shutdown") == 0) {
      send_shutdown = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else {
      usage_exit(argv[0]);
    }
  }
  if (n_clients < 1 || n_streams < 1 || n_samples < 1) {
    std::fprintf(stderr, "error: --clients/--streams/--samples must be >= 1\n");
    return 2;
  }
  if (n_clients > static_cast<int>(n_streams)) n_clients = static_cast<int>(n_streams);
  if (transport_arg != "uds" && transport_arg != "tcp" && transport_arg != "both")
    usage_exit(argv[0]);

  const long total = static_cast<long>(n_streams) * static_cast<long>(n_samples);

  // --connect: drive an external daemon; count scores, no local baseline.
  if (!connect_spec.empty()) {
    const net::Endpoint endpoint = net::parse_endpoint(connect_spec);
    std::printf("driving %s with %d client processes (%ld streams x %ld samples)\n",
                net::to_string(endpoint).c_str(), n_clients, static_cast<long>(n_streams),
                static_cast<long>(n_samples));
    double seconds = 0.0;
    const ChildReport merged =
        drive_clients(endpoint, n_clients, n_streams, n_samples, seconds);
    std::printf("%llu scores, %llu nacks in %.3f s  ->  %.0f samples/s end-to-end\n",
                static_cast<unsigned long long>(merged.scores),
                static_cast<unsigned long long>(merged.nacks), seconds,
                static_cast<double>(merged.scores) / seconds);
    if (merged.scores + merged.nacks != static_cast<std::uint64_t>(total)) {
      std::fprintf(stderr, "FATAL: expected %ld scores+nacks, got %llu\n", total,
                   static_cast<unsigned long long>(merged.scores + merged.nacks));
      return 1;
    }
    if (send_shutdown) {
      net::Client closer(endpoint);
      closer.request_shutdown();
      net::ClientEvent ev;
      while (closer.poll_event(ev, 30000))
        if (ev.kind == net::ClientEvent::Kind::Goodbye) break;
      std::printf("daemon acknowledged SHUTDOWN with GOODBYE\n");
    }
    return 0;
  }

  // Self-contained: train, baseline, then one measurement per transport.
  std::vector<std::string> names;
  if (detector_arg == "all") {
    names = core::detector_names();
  } else {
    names.push_back(detector_arg);
  }
  std::vector<std::string> transports;
  if (transport_arg == "both") {
    transports = {"uds", "tcp"};
  } else {
    transports.push_back(transport_arg);
  }

  const core::Profile profile = bench::tiny_serve_profile();
  const data::MultivariateSeries train_raw = bench::make_sine(1200, 1);
  data::MinMaxNormalizer normalizer;
  normalizer.fit(train_raw);
  const data::MultivariateSeries train = normalizer.transform(train_raw);

  std::vector<data::MultivariateSeries> streams;
  for (Index s = 0; s < n_streams; ++s)
    streams.push_back(bench::make_sine(n_samples, 100 + static_cast<std::uint64_t>(s)));

  std::printf("%ld streams x %ld samples = %ld stream-samples, %d client processes"
              "  (%u hardware threads)\n",
              static_cast<long>(n_streams), static_cast<long>(n_samples), total, n_clients,
              std::thread::hardware_concurrency());

  std::vector<TransportResult> results;
  for (const std::string& name : names) {
    std::printf("\nTraining %s (tiny serving configuration)...\n", name.c_str());
    const std::unique_ptr<core::AnomalyDetector> detector =
        core::make_detector(profile, name);  // throws on an unknown name
    detector->fit(train);
    const float threshold = core::calibrate_threshold(*detector, train, {});

    // Sequential baseline: one OnlineMonitor per stream — the checksum every
    // transport's distributed sum must match.
    double checksum_base = 0.0;
    for (Index s = 0; s < n_streams; ++s) {
      core::OnlineMonitor monitor(*detector, normalizer);
      monitor.set_threshold(threshold);
      const data::MultivariateSeries& in = streams[static_cast<std::size_t>(s)];
      for (Index t = 0; t < in.length(); ++t) checksum_base += monitor.push(in.sample(t));
    }

    for (const std::string& transport : transports) {
      net::ServerConfig config;
      char uds_path[128];
      std::snprintf(uds_path, sizeof(uds_path), "/tmp/varade_bench_net_%ld.sock",
                    static_cast<long>(getpid()));
      if (transport == "uds") {
        config.uds_path = uds_path;
      } else {
        config.tcp_port = 0;  // ephemeral
      }
      config.n_streams = n_streams;
      config.threshold = threshold;
      config.runtime.n_shards = n_shards;

      // Listeners exist after construction but no thread does yet: the forks
      // below happen from a single-threaded process, and the children queue
      // in the listen backlog until run() starts accepting.
      net::Server server(*detector, normalizer, config);
      const net::Endpoint endpoint =
          transport == "uds"
              ? net::Endpoint{.kind = net::Endpoint::Kind::Unix, .path = config.uds_path}
              : net::Endpoint{.kind = net::Endpoint::Kind::Tcp,
                              .host = "127.0.0.1",
                              .port = server.tcp_port()};

      std::vector<pid_t> pids;
      std::vector<int> pipes;
      const auto start = Clock::now();
      for (int c = 0; c < n_clients; ++c) {
        int fds[2];
        if (pipe(fds) != 0) fail("bench: pipe(): ", std::strerror(errno));
        const pid_t pid = fork();
        if (pid < 0) fail("bench: fork(): ", std::strerror(errno));
        if (pid == 0) {
          close(fds[0]);
          run_child(endpoint, c, n_clients, n_streams, n_samples, fds[1]);  // never returns
        }
        close(fds[1]);
        pids.push_back(pid);
        pipes.push_back(fds[0]);
      }

      std::thread server_thread([&server] { server.run(); });

      ChildReport merged;
      bool failed = false;
      for (int c = 0; c < n_clients; ++c) {
        ChildReport report;
        std::size_t got = 0;
        while (got < sizeof(report)) {
          const ssize_t n = read(pipes[static_cast<std::size_t>(c)],
                                 reinterpret_cast<char*>(&report) + got, sizeof(report) - got);
          if (n <= 0) break;
          got += static_cast<std::size_t>(n);
        }
        close(pipes[static_cast<std::size_t>(c)]);
        int status = 0;
        waitpid(pids[static_cast<std::size_t>(c)], &status, 0);
        if (got != sizeof(report) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          std::fprintf(stderr, "FATAL: client %d died (status %d)\n", c, status);
          failed = true;
          continue;
        }
        merged.scores += report.scores;
        merged.checksum += report.checksum;
        merged.nacks += report.nacks;
      }
      const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
      server.request_stop();
      server_thread.join();
      if (failed) return 1;

      if (merged.scores != static_cast<std::uint64_t>(total) || merged.nacks != 0) {
        std::fprintf(stderr, "FATAL: expected %ld scores and 0 nacks, got %llu / %llu\n",
                     total, static_cast<unsigned long long>(merged.scores),
                     static_cast<unsigned long long>(merged.nacks));
        return 1;
      }
      if (std::abs(merged.checksum - checksum_base) > 1e-6 * std::abs(checksum_base)) {
        std::fprintf(stderr,
                     "FATAL: %s %s checksum mismatch vs sequential baseline (%.9g vs %.9g)\n",
                     name.c_str(), transport.c_str(), merged.checksum, checksum_base);
        return 1;
      }
      const double samples_per_s = static_cast<double>(total) / seconds;
      std::printf("%-6s %d client processes: %10.3f s  %12.0f samples/s"
                  "  (checksum matches sequential baseline)\n",
                  transport.c_str(), n_clients, seconds, samples_per_s);
      results.push_back({transport, name, samples_per_s, merged.scores, merged.nacks});
    }
  }

  if (!json_path.empty()) write_json(json_path, n_clients, n_streams, n_samples, results);
  std::printf("\nDone.\n");
  return 0;
}
