// Ablation: the KL weight lambda in the VARADE objective (paper Eq. 7,
// L = L_recon + lambda * D_KL). The paper calls the KL term "critical to
// employ our anomaly detection method"; this bench quantifies that claim by
// sweeping lambda and reporting the variance-score AUC.
//
// Usage: bench_ablation_lambda [--quick]
#include "bench_common.hpp"

#include "varade/data/window.hpp"
#include "varade/eval/metrics.hpp"

int main(int argc, char** argv) {
  using namespace varade;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  core::Profile profile = bench::select_profile(opt);

  std::printf("bench_ablation_lambda: KL-weight sweep (profile '%s')\n", profile.name.c_str());
  const core::ExperimentData& data = bench::shared_experiment(profile);

  const float lambdas[] = {0.0F, 0.01F, 0.1F, 0.3F, 1.0F, 3.0F};
  std::printf("\n%10s %12s %14s %14s\n", "lambda", "var AUC", "final loss", "train s");
  bench::print_rule(56);
  for (float lambda : lambdas) {
    core::VaradeConfig cfg = profile.varade;
    cfg.lambda = lambda;
    core::VaradeDetector det(cfg);
    const core::DetectorRun run = core::run_detector(det, data, profile);
    std::printf("%10.2f %12.3f %14.4f %14.1f\n", lambda, run.auc_roc,
                det.loss_history().back(), run.train_seconds);
    std::fflush(stdout);
  }
  std::printf("\npaper (section 3.2): the D_KL term regularises the variance head and 'is\n"
              "critical to employ our anomaly detection method' — lambda=0 should underperform.\n");
  return 0;
}
