// Serving-layer throughput bench: stream-samples/sec of the ScoringEngine
// versus thread count and batch size, against the sequential OnlineMonitor
// baseline — for any of the paper's six detectors.
//
// Each selected detector is trained once (tiny configuration) on a synthetic
// sine cell; N independent streams are then replayed through (a) one
// OnlineMonitor per stream, sequentially, and (b) a ScoringEngine at each
// (threads, max_batch) configuration. All configurations produce bit-identical
// scores (asserted via checksum), so the numbers isolate the serving layer's
// batching/threading wins. All six detectors have native score_batch
// overrides and clone_fitted replicas, so every one benefits from batching
// and sharding.
//
// --async additionally replays the streams through the AsyncScoringRuntime
// (N concurrent producer threads pushing into lock-free per-stream rings,
// background scoring threads draining them) and reports end-to-end samples/s
// against the same sequential baseline, score-checksum-verified.
//
// --shards N (with --async) additionally runs the sharded runtime: streams
// partitioned across N scorer threads, each with its own clone_fitted
// engine. Reported next to the single-shard async rate so the scaling step
// is visible; 0 = auto (hardware_concurrency).
//
// --json <path> writes the per-detector sequential vs. batched samples/s as a
// machine-readable record (the repo's BENCH_*.json perf trajectory points).
//
// --score-threads N enables intra-batch parallel scoring: every score_batch
// call (direct path, engine grid, and async runtime) splits its B axis
// across N detector-side workers via AnomalyDetector::set_scoring_threads.
// Scores stay bit-identical at any N (asserted); 0 = hardware concurrency.
//
// --stream-sweep [N] replaces the grid with the fleet-capacity sweep: stream
// counts {1k, 10k, 100k, 1M} (or the single count N) through one
// SoA ScoringEngine, reporting samples/s and resident bytes per stream at
// each point. Every stream replays one of 64 input archetypes (stream s
// plays archetype s % 64, values fully determined by (archetype, t, c)), so
// the sequential OnlineMonitor baseline runs once per archetype and every
// stream's score sum is required to match its archetype's to the last bit —
// a bit-exact fleet-scale parity check that doesn't need a million
// monitors. --samples (default 96 here) bounds per-stream length; --json
// writes the sweep record (BENCH_pr8.json format).
//
// Usage: bench_serve_throughput [--quick] [--async] [--shards N] [--streams N]
//                               [--samples N] [--score-threads N]
//                               [--stream-sweep [N]]
//                               [--detector <name>|all] [--json <path>]
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "varade/core/monitor.hpp"
#include "varade/core/profiles.hpp"
#include "varade/data/window.hpp"
#include "varade/obs/telemetry.hpp"
#include "varade/serve/runtime.hpp"
#include "varade/serve/scoring_engine.hpp"

namespace {

using namespace varade;
using bench::make_sine;
using bench::parse_long_arg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BenchResult {
  std::string detector;
  // Direct scoring path: the same pre-gathered (context, observation) pairs
  // through a score_step loop vs. score_batch — isolates the native batched
  // implementations from serving-layer overhead.
  double seq_samples_per_s = 0.0;      // score_step row by row
  double batched_samples_per_s = 0.0;  // score_batch, chunks of kScoreChunk
  // score_batch with intra-batch parallelism (--score-threads N, N != 1
  // only; 0 when not measured). Bit-identical to the other two paths.
  double parallel_samples_per_s = 0.0;
  // End-to-end serving stack.
  double base_samples_per_s = 0.0;  // sequential OnlineMonitor
  double best_samples_per_s = 0.0;  // best engine configuration
  std::string best_config;
  // Async ingestion runtime (--async only; 0 when not measured).
  double async_samples_per_s = 0.0;  // best single-shard async configuration
  std::string async_config;
  // Sharded runtime (--async --shards N with N != 1 only; 0 otherwise).
  double sharded_samples_per_s = 0.0;  // best multi-shard configuration
  std::string sharded_config;
  // Score-latency quantiles (ns) from varade::obs telemetry: engine step()
  // rounds of the best engine configuration, scorer rounds and sampled
  // push->score latency of the best async configuration. All zero when the
  // build is -DVARADE_OBS=OFF (the bench still runs; only the latency
  // columns disappear).
  std::int64_t step_p50_ns = 0, step_p95_ns = 0, step_p99_ns = 0;
  std::int64_t round_p50_ns = 0, round_p95_ns = 0, round_p99_ns = 0;
  std::int64_t push_to_score_p50_ns = 0, push_to_score_p95_ns = 0, push_to_score_p99_ns = 0;
};

constexpr Index kScoreChunk = 64;

/// Scores the tail of `series` (already normalised; the training recording —
/// these are timing numbers, not detection quality) twice — once through a
/// score_step loop and once through score_batch in chunks of kScoreChunk —
/// taking the best of three timed repetitions per path, and exits the
/// process unless the two score vectors are bit-identical.
void score_path_bench(core::AnomalyDetector& detector, const data::MultivariateSeries& series,
                      int score_threads, BenchResult& result) {
  const Index window = detector.context_window();
  const Index c = series.n_channels();
  const Index rows = series.length() - window;

  Tensor contexts({rows, c, window});
  Tensor observed({rows, c});
  for (Index r = 0; r < rows; ++r) {
    const Index t = window + r;
    const Tensor context = data::extract_context(series, t - 1, window);
    std::memcpy(contexts.data() + r * c * window, context.data(),
                static_cast<std::size_t>(c * window) * sizeof(float));
    std::memcpy(observed.data() + r * c, series.sample(t),
                static_cast<std::size_t>(c) * sizeof(float));
  }

  std::vector<float> seq_scores(static_cast<std::size_t>(rows));
  std::vector<float> batch_scores(static_cast<std::size_t>(rows));
  double seq_s = 0.0;
  double batch_s = 0.0;
  Tensor context({c, window});
  Tensor sample({c});
  for (int rep = 0; rep < 3; ++rep) {
    auto start = Clock::now();
    for (Index r = 0; r < rows; ++r) {
      std::memcpy(context.data(), contexts.data() + r * c * window,
                  static_cast<std::size_t>(c * window) * sizeof(float));
      std::memcpy(sample.data(), observed.data() + r * c,
                  static_cast<std::size_t>(c) * sizeof(float));
      seq_scores[static_cast<std::size_t>(r)] = detector.score_step(context, sample);
    }
    const double s = seconds_since(start);
    if (rep == 0 || s < seq_s) seq_s = s;

    start = Clock::now();
    for (Index begin = 0; begin < rows; begin += kScoreChunk) {
      const Index n = std::min(kScoreChunk, rows - begin);
      detector.score_batch(contexts.slice0(begin, begin + n), observed.slice0(begin, begin + n),
                           batch_scores.data() + begin);
    }
    const double b = seconds_since(start);
    if (rep == 0 || b < batch_s) batch_s = b;
  }
  if (std::memcmp(seq_scores.data(), batch_scores.data(),
                  static_cast<std::size_t>(rows) * sizeof(float)) != 0) {
    std::fprintf(stderr, "FATAL: %s score_batch drifted from score_step in the microbench\n",
                 detector.name().c_str());
    std::exit(1);
  }
  result.seq_samples_per_s = static_cast<double>(rows) / seq_s;
  result.batched_samples_per_s = static_cast<double>(rows) / batch_s;
  std::printf("scoring path: score_step %.0f samples/s, score_batch(%ld) %.0f samples/s"
              " (%.2fx, bit-identical)\n",
              result.seq_samples_per_s, static_cast<long>(kScoreChunk),
              result.batched_samples_per_s,
              result.batched_samples_per_s / result.seq_samples_per_s);

  if (score_threads != 1) {
    // Same chunked score_batch loop with intra-batch parallelism enabled;
    // the scores must still match the sequential path to the last bit.
    std::vector<float> parallel_scores(static_cast<std::size_t>(rows));
    detector.set_scoring_threads(score_threads);
    double parallel_s = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = Clock::now();
      for (Index begin = 0; begin < rows; begin += kScoreChunk) {
        const Index n = std::min(kScoreChunk, rows - begin);
        detector.score_batch(contexts.slice0(begin, begin + n),
                             observed.slice0(begin, begin + n),
                             parallel_scores.data() + begin);
      }
      const double p = seconds_since(start);
      if (rep == 0 || p < parallel_s) parallel_s = p;
    }
    detector.set_scoring_threads(1);
    if (std::memcmp(seq_scores.data(), parallel_scores.data(),
                    static_cast<std::size_t>(rows) * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "FATAL: %s score_batch with %d scoring threads drifted from score_step\n",
                   detector.name().c_str(), score_threads);
      std::exit(1);
    }
    result.parallel_samples_per_s = static_cast<double>(rows) / parallel_s;
    std::printf("scoring path: score_batch(%ld) x %d scoring threads %.0f samples/s"
                " (%.2fx vs 1 thread, bit-identical)\n",
                static_cast<long>(kScoreChunk), score_threads, result.parallel_samples_per_s,
                result.parallel_samples_per_s / result.batched_samples_per_s);
  }
}

/// Replays the streams through the AsyncScoringRuntime with `n_producers`
/// concurrent producer threads (streams round-robin across producers, one
/// producer per stream) and the stream space partitioned across `n_shards`
/// scoring threads; returns wall-clock seconds from first push to close()
/// (which drains the backlog). The score checksum is accumulated via the
/// callback (serialised across shards by the runtime).
double bench_async_once(core::AnomalyDetector& detector,
                        const data::MinMaxNormalizer& normalizer, float threshold,
                        const std::vector<data::MultivariateSeries>& streams,
                        Index n_samples, int n_producers, Index n_shards, int score_threads,
                        double& checksum_out, serve::ShardTelemetry& telemetry_out) {
  const auto n_streams = static_cast<Index>(streams.size());
  serve::AsyncRuntimeConfig cfg;
  cfg.engine = {.n_threads = 1,
                .max_batch = 32,
                .shard_forward = true,
                .scoring_threads = score_threads};
  cfg.ring_capacity = 1024;
  cfg.backpressure = serve::BackpressurePolicy::Block;
  cfg.n_shards = n_shards;
  serve::AsyncScoringRuntime runtime(detector, normalizer, cfg);
  runtime.add_streams(n_streams);
  runtime.set_threshold(threshold);
  double checksum = 0.0;  // scoring-thread-only until close() joins
  runtime.on_score([&checksum](const serve::StreamScore& r) { checksum += r.score; });
  runtime.start();

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (int p = 0; p < n_producers; ++p) {
    producers.emplace_back([&, p] {
      for (Index t = 0; t < n_samples; ++t) {
        for (Index s = p; s < n_streams; s += n_producers) {
          const auto r = runtime.push(s, streams[static_cast<std::size_t>(s)].sample(t), 3);
          if (r == serve::PushResult::Rejected) {
            std::fprintf(stderr, "FATAL: Block push rejected mid-run\n");
            std::exit(1);
          }
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  runtime.close();  // drains the backlog: part of the measured work
  const double secs = seconds_since(start);
  checksum_out = checksum;
  telemetry_out = runtime.telemetry().total;
  return secs;
}

/// Runs the baseline + engine grid for one fitted detector; returns the
/// throughput summary. Exits the process on a checksum mismatch.
BenchResult bench_detector(core::AnomalyDetector& detector,
                           const data::MinMaxNormalizer& normalizer,
                           const data::MultivariateSeries& train,
                           const std::vector<data::MultivariateSeries>& streams,
                           Index n_samples, bool run_async, Index n_shards,
                           int score_threads) {
  const auto n_streams = static_cast<Index>(streams.size());
  const long total = static_cast<long>(n_streams) * static_cast<long>(n_samples);

  // Calibrate once outside every timed region; all paths share the threshold.
  const float threshold = core::calibrate_threshold(detector, train, {});

  // Baseline: one OnlineMonitor per stream, run to completion sequentially.
  double checksum_base = 0.0;
  const auto t0 = Clock::now();
  for (Index s = 0; s < n_streams; ++s) {
    core::OnlineMonitor monitor(detector, normalizer);
    monitor.set_threshold(threshold);
    const auto& in = streams[static_cast<std::size_t>(s)];
    for (Index t = 0; t < in.length(); ++t) checksum_base += monitor.push(in.sample(t));
  }
  const double base_s = seconds_since(t0);

  BenchResult result;
  result.detector = detector.name();
  result.base_samples_per_s = static_cast<double>(total) / base_s;

  std::printf("\n=== %s ===\n", detector.name().c_str());
  score_path_bench(detector, train, score_threads, result);
  std::printf("%-34s %10s %12s %9s\n", "configuration", "time s", "samples/s", "speedup");
  std::printf("%-34s %10.3f %12.0f %9s\n", "sequential OnlineMonitor", base_s,
              static_cast<double>(total) / base_s, "1.00x");

  struct Config {
    int threads;
    Index max_batch;
  };
  const std::vector<Config> grid = {{1, 1},  {1, 8},  {1, 32}, {2, 8},
                                    {2, 32}, {4, 8},  {4, 32}, {4, 64}};

  for (const Config& cfg : grid) {
    serve::ScoringEngine engine(detector, normalizer,
                                {.n_threads = cfg.threads,
                                 .max_batch = cfg.max_batch,
                                 .shard_forward = true,
                                 .scoring_threads = score_threads});
    engine.add_streams(n_streams);
    engine.set_threshold(threshold);

    double checksum = 0.0;
    const auto start = Clock::now();
    // Replay in bursts so many streams are pending per step(), as a serving
    // frontend would see under load.
    constexpr Index kBurst = 50;
    for (Index t0_ = 0; t0_ < n_samples; t0_ += kBurst) {
      const Index t1 = std::min(n_samples, t0_ + kBurst);
      for (Index s = 0; s < n_streams; ++s) {
        const auto& in = streams[static_cast<std::size_t>(s)];
        for (Index t = t0_; t < t1; ++t) engine.push(s, in.sample(t), in.n_channels());
      }
      for (const serve::StreamScore& r : engine.step()) checksum += r.score;
    }
    const double secs = seconds_since(start);
    const double samples_per_s = static_cast<double>(total) / secs;

    char label[64];
    std::snprintf(label, sizeof(label), "engine  threads=%d  max_batch=%ld", cfg.threads,
                  static_cast<long>(cfg.max_batch));
    std::printf("%-34s %10.3f %12.0f %8.2fx", label, secs, samples_per_s, base_s / secs);
    std::printf("   (%ld forward calls, %ld replicas)\n", engine.forward_calls(),
                static_cast<long>(engine.n_replicas()));

    if (samples_per_s > result.best_samples_per_s) {
      result.best_samples_per_s = samples_per_s;
      result.best_config = label;
      const serve::EngineTelemetry et = engine.telemetry();
      result.step_p50_ns = et.step.quantile(0.50);
      result.step_p95_ns = et.step.quantile(0.95);
      result.step_p99_ns = et.step.quantile(0.99);
    }
    if (std::abs(checksum - checksum_base) > 1e-6 * std::abs(checksum_base)) {
      std::fprintf(stderr, "FATAL: %s checksum mismatch vs baseline (%.9g vs %.9g)\n",
                   detector.name().c_str(), checksum, checksum_base);
      std::exit(1);
    }
  }
  std::printf("all engine configurations matched the sequential checksum\n");
  if (run_async) {
    // Single-shard first (the PR4 trajectory point), then the sharded
    // runtime when --shards asks for more than one scorer thread.
    std::vector<Index> shard_counts = {1};
    const Index resolved = serve::ShardPartition::resolve(n_shards);
    if (resolved != 1) shard_counts.push_back(resolved);
    for (const Index shards : shard_counts) {
      for (const int producers : {1, 2, 4}) {
        if (static_cast<Index>(producers) > n_streams) break;
        double checksum = 0.0;
        serve::ShardTelemetry telemetry;
        const double secs = bench_async_once(detector, normalizer, threshold, streams,
                                             n_samples, producers, shards, score_threads,
                                             checksum, telemetry);
        const double samples_per_s = static_cast<double>(total) / secs;
        char label[64];
        std::snprintf(label, sizeof(label), "async runtime  shards=%ld producers=%d",
                      static_cast<long>(shards), producers);
        std::printf("%-34s %10.3f %12.0f %8.2fx   (lock-free rings, %s, %ld scorers)\n",
                    label, secs, samples_per_s, base_s / secs,
                    serve::to_string(serve::BackpressurePolicy::Block),
                    static_cast<long>(std::min(shards, n_streams)));
        if (shards == 1 && samples_per_s > result.async_samples_per_s) {
          result.async_samples_per_s = samples_per_s;
          result.async_config = label;
          result.round_p50_ns = telemetry.round.quantile(0.50);
          result.round_p95_ns = telemetry.round.quantile(0.95);
          result.round_p99_ns = telemetry.round.quantile(0.99);
          result.push_to_score_p50_ns = telemetry.engine.push_to_score.quantile(0.50);
          result.push_to_score_p95_ns = telemetry.engine.push_to_score.quantile(0.95);
          result.push_to_score_p99_ns = telemetry.engine.push_to_score.quantile(0.99);
        }
        if (shards != 1 && samples_per_s > result.sharded_samples_per_s) {
          result.sharded_samples_per_s = samples_per_s;
          result.sharded_config = label;
        }
        if (std::abs(checksum - checksum_base) > 1e-6 * std::abs(checksum_base)) {
          std::fprintf(stderr, "FATAL: %s async checksum mismatch vs baseline (%.9g vs %.9g)\n",
                       detector.name().c_str(), checksum, checksum_base);
          std::exit(1);
        }
      }
    }
    std::printf("all async configurations matched the sequential checksum\n");
  }
  if (result.step_p50_ns > 0)
    std::printf("score latency (best engine): step p50 %.1f us  p95 %.1f us  p99 %.1f us\n",
                static_cast<double>(result.step_p50_ns) * 1e-3,
                static_cast<double>(result.step_p95_ns) * 1e-3,
                static_cast<double>(result.step_p99_ns) * 1e-3);
  if (result.round_p50_ns > 0)
    std::printf("score latency (best async): round p50 %.1f us  p95 %.1f us  p99 %.1f us,"
                " push->score p50 %.1f us  p95 %.1f us  p99 %.1f us\n",
                static_cast<double>(result.round_p50_ns) * 1e-3,
                static_cast<double>(result.round_p95_ns) * 1e-3,
                static_cast<double>(result.round_p99_ns) * 1e-3,
                static_cast<double>(result.push_to_score_p50_ns) * 1e-3,
                static_cast<double>(result.push_to_score_p95_ns) * 1e-3,
                static_cast<double>(result.push_to_score_p99_ns) * 1e-3);
  return result;
}

/// Writes the per-detector sequential vs. batched samples/s as JSON — the
/// format of the repo's BENCH_*.json perf-trajectory records.
void write_json(const std::string& path, Index n_streams, Index n_samples, Index n_shards,
                int score_threads, const std::vector<BenchResult>& results) {
  std::ofstream f(path);
  if (!f.is_open()) {
    std::fprintf(stderr, "error: cannot open --json path %s for writing\n", path.c_str());
    std::exit(1);
  }
  f << "{\n";
  f << "  \"bench\": \"serve_throughput\",\n";
  f << "  \"streams\": " << n_streams << ",\n";
  f << "  \"samples\": " << n_samples << ",\n";
  f << "  \"shards\": " << serve::ShardPartition::resolve(n_shards) << ",\n";
  f << "  \"score_threads\": " << score_threads << ",\n";
  f << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  f << "  \"telemetry_enabled\": " << (obs::kEnabled ? "true" : "false") << ",\n";
  f << "  \"detectors\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    char line[1152];
    std::snprintf(line, sizeof(line),
                  "    {\"detector\": \"%s\", \"sequential_samples_per_s\": %.1f, "
                  "\"batched_samples_per_s\": %.1f, \"batched_speedup\": %.3f, "
                  "\"parallel_batched_samples_per_s\": %.1f, "
                  "\"monitor_samples_per_s\": %.1f, \"engine_best_samples_per_s\": %.1f, "
                  "\"engine_best_config\": \"%s\", \"async_samples_per_s\": %.1f, "
                  "\"async_config\": \"%s\", \"sharded_samples_per_s\": %.1f, "
                  "\"sharded_config\": \"%s\", "
                  "\"step_p50_ns\": %lld, \"step_p95_ns\": %lld, \"step_p99_ns\": %lld, "
                  "\"round_p50_ns\": %lld, \"round_p95_ns\": %lld, \"round_p99_ns\": %lld, "
                  "\"push_to_score_p50_ns\": %lld, \"push_to_score_p95_ns\": %lld, "
                  "\"push_to_score_p99_ns\": %lld}%s\n",
                  r.detector.c_str(), r.seq_samples_per_s, r.batched_samples_per_s,
                  r.batched_samples_per_s / r.seq_samples_per_s, r.parallel_samples_per_s,
                  r.base_samples_per_s,
                  r.best_samples_per_s, r.best_config.c_str(), r.async_samples_per_s,
                  r.async_config.c_str(), r.sharded_samples_per_s, r.sharded_config.c_str(),
                  static_cast<long long>(r.step_p50_ns), static_cast<long long>(r.step_p95_ns),
                  static_cast<long long>(r.step_p99_ns), static_cast<long long>(r.round_p50_ns),
                  static_cast<long long>(r.round_p95_ns), static_cast<long long>(r.round_p99_ns),
                  static_cast<long long>(r.push_to_score_p50_ns),
                  static_cast<long long>(r.push_to_score_p95_ns),
                  static_cast<long long>(r.push_to_score_p99_ns),
                  i + 1 < results.size() ? "," : "");
    f << line;
  }
  f << "  ]\n}\n";
  if (!f) {
    std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Fleet-capacity stream sweep (--stream-sweep)
// ---------------------------------------------------------------------------

/// Input archetypes shared by all sweep streams: stream s replays archetype
/// s % kArchetypes, so the bit-exact baseline needs kArchetypes monitors no
/// matter how many streams the engine serves.
constexpr Index kArchetypes = 64;
constexpr Index kSweepChannels = 3;

/// Deterministic noise in [-0.1, 0.1] from an integer key (splitmix64
/// finaliser) — stateless, so a sample's value depends only on
/// (archetype, t, c) and any stream can be regenerated on the fly.
float hash_noise(std::uint64_t key) {
  std::uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27U)) * 0x94D049BB133111EBULL;
  z ^= z >> 31U;
  return (static_cast<float>(z >> 40U) / static_cast<float>(1U << 24U) - 0.5F) * 0.2F;
}

/// One 3-channel sample of `archetype` at time t: phase-shifted sines plus
/// hash noise, in the value range of the training cell.
void sweep_sample(Index archetype, Index t, float* out) {
  const auto a = static_cast<double>(archetype);
  const auto x = static_cast<double>(t);
  out[0] = static_cast<float>(std::sin(0.050 * x + 0.10 * a));
  out[1] = static_cast<float>(0.8 * std::sin(0.110 * x + 0.07 * a) + 0.1);
  out[2] = static_cast<float>(0.5 * std::sin(0.023 * x + 0.13 * a) - 0.2);
  const auto base = (static_cast<std::uint64_t>(archetype) << 40U) |
                    (static_cast<std::uint64_t>(t) << 8U);
  for (Index c = 0; c < kSweepChannels; ++c)
    out[c] += hash_noise(base | static_cast<std::uint64_t>(c));
}

/// Resident set size from /proc/self/status (0 where unavailable) — the
/// sweep's memory-per-stream numbers are OS-resident bytes, not allocator
/// estimates.
long resident_bytes() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      long kb = 0;
      if (std::sscanf(line.c_str() + 6, "%ld", &kb) == 1) return kb * 1024;
      return 0;
    }
  }
  return 0;
}

struct SweepPoint {
  Index streams = 0;
  double engine_samples_per_s = 0.0;
  double monitor_samples_per_s = 0.0;
  double bytes_per_stream = 0.0;
  bool bit_exact = false;
};

/// Replays `n_streams` archetype streams of `n_samples` samples through one
/// SoA ScoringEngine and checks every stream's score sum bit-exactly against
/// the per-archetype sequential OnlineMonitor baseline. Exits on mismatch.
SweepPoint sweep_one(core::AnomalyDetector& detector, const data::MinMaxNormalizer& normalizer,
                     float threshold, Index n_streams, Index n_samples) {
  SweepPoint point;
  point.streams = n_streams;
  float sample[kSweepChannels];

  // Baseline: one OnlineMonitor per archetype, sequential. Score sums
  // accumulate in push order (doubles), the exact order the engine emits a
  // stream's scores in — so equality below can demand the last bit.
  const Index n_archetypes = std::min(kArchetypes, n_streams);
  std::vector<double> base_sum(static_cast<std::size_t>(n_archetypes), 0.0);
  const auto t0 = Clock::now();
  for (Index a = 0; a < n_archetypes; ++a) {
    core::OnlineMonitor monitor(detector, normalizer);
    monitor.set_threshold(threshold);
    for (Index t = 0; t < n_samples; ++t) {
      sweep_sample(a, t, sample);
      base_sum[static_cast<std::size_t>(a)] += static_cast<double>(monitor.push(sample));
    }
  }
  point.monitor_samples_per_s =
      static_cast<double>(n_archetypes) * static_cast<double>(n_samples) / seconds_since(t0);

  // Per-stream score sums, allocated before the memory baseline so the
  // bytes-per-stream figure isolates the engine's own state.
  std::vector<double> sums(static_cast<std::size_t>(n_streams), 0.0);
  const long rss_before = resident_bytes();

  serve::ScoringEngine engine(detector, normalizer, {.n_threads = 1, .max_batch = 64});
  engine.add_streams(n_streams);
  engine.set_threshold(threshold);

  // Replay in bursts of a few samples per stream per step(), the pattern a
  // loaded frontend produces. Samples are regenerated on the fly — storing
  // 1M streams' inputs would dwarf the state being measured.
  constexpr Index kBurst = 8;
  const auto run0 = Clock::now();
  for (Index t0_ = 0; t0_ < n_samples; t0_ += kBurst) {
    const Index t1 = std::min(n_samples, t0_ + kBurst);
    for (Index s = 0; s < n_streams; ++s) {
      for (Index t = t0_; t < t1; ++t) {
        sweep_sample(s % kArchetypes, t, sample);
        engine.push(s, sample, kSweepChannels);
      }
    }
    for (const serve::StreamScore& r : engine.step())
      sums[static_cast<std::size_t>(r.stream)] += static_cast<double>(r.score);
  }
  const double secs = seconds_since(run0);
  const long rss_after = resident_bytes();

  point.engine_samples_per_s =
      static_cast<double>(n_streams) * static_cast<double>(n_samples) / secs;
  point.bytes_per_stream =
      static_cast<double>(rss_after - rss_before) / static_cast<double>(n_streams);

  for (Index s = 0; s < n_streams; ++s) {
    // Bit-exact, not epsilon: identical accumulation order makes == the
    // right comparison, and the whole point is catching layout bugs.
    if (sums[static_cast<std::size_t>(s)] !=
        base_sum[static_cast<std::size_t>(s % kArchetypes)]) {
      std::fprintf(stderr,
                   "FATAL: stream %ld score sum %.17g != archetype %ld baseline %.17g\n",
                   static_cast<long>(s), sums[static_cast<std::size_t>(s)],
                   static_cast<long>(s % kArchetypes),
                   base_sum[static_cast<std::size_t>(s % kArchetypes)]);
      std::exit(1);
    }
  }
  point.bit_exact = true;
  return point;
}

void write_sweep_json(const std::string& path, const std::string& detector, Index n_samples,
                      const std::vector<SweepPoint>& points) {
  std::ofstream f(path);
  if (!f.is_open()) {
    std::fprintf(stderr, "error: cannot open --json path %s for writing\n", path.c_str());
    std::exit(1);
  }
  f << "{\n";
  f << "  \"bench\": \"stream_sweep\",\n";
  f << "  \"detector\": \"" << detector << "\",\n";
  f << "  \"samples\": " << n_samples << ",\n";
  f << "  \"archetypes\": " << kArchetypes << ",\n";
  f << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  f << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"streams\": %ld, \"engine_samples_per_s\": %.1f, "
                  "\"monitor_samples_per_s\": %.1f, \"bytes_per_stream\": %.1f, "
                  "\"checksum_bit_exact\": %s}%s\n",
                  static_cast<long>(p.streams), p.engine_samples_per_s,
                  p.monitor_samples_per_s, p.bytes_per_stream,
                  p.bit_exact ? "true" : "false", i + 1 < points.size() ? "," : "");
    f << line;
  }
  f << "  ]\n}\n";
  if (!f) {
    std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

int run_stream_sweep(const std::string& detector_name, Index n_samples,
                     const std::vector<Index>& points, const std::string& json_path) {
  const core::Profile profile = bench::tiny_serve_profile();
  const auto train_raw = make_sine(1200, 1);
  data::MinMaxNormalizer normalizer;
  normalizer.fit(train_raw);
  const auto train = normalizer.transform(train_raw);

  std::printf("Training %s (tiny bench configuration)...\n", detector_name.c_str());
  const std::unique_ptr<core::AnomalyDetector> detector =
      core::make_detector(profile, detector_name);
  detector->fit(train);
  const float threshold = core::calibrate_threshold(*detector, train, {});

  std::printf("stream sweep: %s, %ld samples/stream, %ld archetypes  (%u hardware threads)\n",
              detector_name.c_str(), static_cast<long>(n_samples),
              static_cast<long>(kArchetypes), std::thread::hardware_concurrency());
  std::printf("%12s %16s %16s %16s %10s\n", "streams", "engine s/s", "monitor s/s",
              "bytes/stream", "parity");

  std::vector<SweepPoint> results;
  for (const Index n : points) {
    const SweepPoint p = sweep_one(*detector, normalizer, threshold, n, n_samples);
    std::printf("%12ld %16.0f %16.0f %16.0f %10s\n", static_cast<long>(p.streams),
                p.engine_samples_per_s, p.monitor_samples_per_s, p.bytes_per_stream,
                p.bit_exact ? "bit-exact" : "FAIL");
    results.push_back(p);
  }
  std::printf("all %zu sweep points matched the per-archetype baseline bit-exactly\n",
              results.size());
  if (!json_path.empty()) write_sweep_json(json_path, detector_name, n_samples, results);
  std::printf("\nDone.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Index n_streams = 16;
  Index n_samples = 2000;
  Index n_shards = 1;
  int score_threads = 1;
  std::string detector_arg = "VARADE";
  std::string json_path;
  bool run_async = false;
  bool stream_sweep = false;
  bool samples_given = false;
  bool detector_given = false;
  std::vector<Index> sweep_points;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      n_streams = 8;
      n_samples = 400;
    } else if (std::strcmp(argv[a], "--async") == 0) {
      run_async = true;
    } else if (std::strcmp(argv[a], "--shards") == 0 && a + 1 < argc) {
      n_shards = parse_long_arg("--shards", argv[++a]);
    } else if (std::strcmp(argv[a], "--streams") == 0 && a + 1 < argc) {
      n_streams = parse_long_arg("--streams", argv[++a]);
    } else if (std::strcmp(argv[a], "--samples") == 0 && a + 1 < argc) {
      n_samples = parse_long_arg("--samples", argv[++a]);
      samples_given = true;
    } else if (std::strcmp(argv[a], "--score-threads") == 0 && a + 1 < argc) {
      score_threads = static_cast<int>(parse_long_arg("--score-threads", argv[++a]));
    } else if (std::strcmp(argv[a], "--stream-sweep") == 0) {
      stream_sweep = true;
      // Optional numeric operand: one sweep point instead of the full curve.
      if (a + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[a + 1][0])) != 0)
        sweep_points.push_back(parse_long_arg("--stream-sweep", argv[++a]));
    } else if (std::strcmp(argv[a], "--detector") == 0 && a + 1 < argc) {
      detector_arg = argv[++a];
      detector_given = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--async] [--shards N] [--streams N] [--samples N]"
                   " [--score-threads N] [--stream-sweep [N]] [--detector <name>|all]"
                   " [--json <path>]\n"
                   "detectors: all",
                   argv[0]);
      for (const std::string& name : core::detector_names())
        std::fprintf(stderr, ", \"%s\"", name.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
  }
  if (n_streams < 1 || n_samples < 1) {
    std::fprintf(stderr, "error: --streams and --samples must be >= 1\n");
    return 2;
  }
  if (n_shards < 0) {
    std::fprintf(stderr, "error: --shards must be >= 0 (0 = auto)\n");
    return 2;
  }
  if (score_threads < 0) {
    std::fprintf(stderr, "error: --score-threads must be >= 0 (0 = hardware concurrency)\n");
    return 2;
  }
  if (stream_sweep) {
    if (sweep_points.empty()) sweep_points = {1000, 10000, 100000, 1000000};
    for (const Index p : sweep_points) {
      if (p < 1) {
        std::fprintf(stderr, "error: --stream-sweep point must be >= 1\n");
        return 2;
      }
    }
    // Sweep defaults differ from the grid's: GBRF (the fastest scorer, so
    // the sweep probes the serving layer, not the detector) and a short
    // per-stream replay (stream count is the swept axis).
    if (detector_arg == "all") {
      std::fprintf(stderr, "error: --stream-sweep needs a single --detector\n");
      return 2;
    }
    return run_stream_sweep(detector_given ? detector_arg : "GBRF",
                            samples_given ? n_samples : 96, sweep_points, json_path);
  }

  std::vector<std::string> names;
  if (detector_arg == "all") {
    names = core::detector_names();
  } else {
    names.push_back(detector_arg);
  }

  const core::Profile profile = bench::tiny_serve_profile();
  const auto train_raw = make_sine(1200, 1);
  data::MinMaxNormalizer normalizer;
  normalizer.fit(train_raw);
  const auto train = normalizer.transform(train_raw);

  std::vector<data::MultivariateSeries> streams;
  for (Index s = 0; s < n_streams; ++s)
    streams.push_back(make_sine(n_samples, 100 + static_cast<std::uint64_t>(s)));

  const long total = static_cast<long>(n_streams) * static_cast<long>(n_samples);
  std::printf("%ld streams x %ld samples = %ld stream-samples per run  (%u hardware threads)\n",
              static_cast<long>(n_streams), static_cast<long>(n_samples), total,
              std::thread::hardware_concurrency());

  std::vector<BenchResult> results;
  for (const std::string& name : names) {
    std::printf("\nTraining %s (tiny bench configuration)...\n", name.c_str());
    const std::unique_ptr<core::AnomalyDetector> detector =
        core::make_detector(profile, name);  // throws on an unknown name
    detector->fit(train);
    results.push_back(bench_detector(*detector, normalizer, train, streams, n_samples,
                                     run_async, n_shards, score_threads));
  }

  if (results.size() > 1) {
    std::printf("\n%-20s %14s %14s %8s %14s %14s %14s %14s\n", "detector", "step s/s",
                "batch s/s", "speedup", "monitor s/s", "best engine s/s", "best async s/s",
                "sharded s/s");
    for (const BenchResult& r : results) {
      std::printf("%-20s %14.0f %14.0f %7.2fx %14.0f %14.0f ", r.detector.c_str(),
                  r.seq_samples_per_s, r.batched_samples_per_s,
                  r.batched_samples_per_s / r.seq_samples_per_s, r.base_samples_per_s,
                  r.best_samples_per_s);
      if (run_async) {
        std::printf("%14.0f ", r.async_samples_per_s);
      } else {
        std::printf("%14s ", "-");  // not measured without --async
      }
      if (r.sharded_samples_per_s > 0.0) {
        std::printf("%14.0f\n", r.sharded_samples_per_s);
      } else {
        std::printf("%14s\n", "-");  // not measured without --shards N (N != 1)
      }
    }
  }
  if (!json_path.empty())
    write_json(json_path, n_streams, n_samples, n_shards, score_threads, results);
  std::printf("\nDone.\n");
  return 0;
}
