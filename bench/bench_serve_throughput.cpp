// Serving-layer throughput bench: stream-samples/sec of the ScoringEngine
// versus thread count and batch size, against the sequential OnlineMonitor
// baseline.
//
// A tiny VARADE is trained once on a synthetic sine cell; N independent
// streams are then replayed through (a) one OnlineMonitor per stream,
// sequentially, and (b) a ScoringEngine at each (threads, max_batch)
// configuration. All configurations produce bit-identical scores (asserted),
// so the numbers isolate the serving layer's batching/threading wins.
//
// Usage: bench_serve_throughput [--quick] [--streams N] [--samples N]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "varade/core/monitor.hpp"
#include "varade/core/varade.hpp"
#include "varade/serve/scoring_engine.hpp"

namespace {

using namespace varade;
using Clock = std::chrono::steady_clock;

data::MultivariateSeries make_sine(Index length, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(3);
  std::vector<float> row(3);
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = (t % 250) >= 200 && (t % 250) < 215;
    for (Index c = 0; c < 3; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, anomalous ? 0.9F : 0.03F);
    }
    s.append(row);
  }
  return s;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  Index n_streams = 16;
  Index n_samples = 2000;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      n_streams = 8;
      n_samples = 400;
    } else if (std::strcmp(argv[a], "--streams") == 0 && a + 1 < argc) {
      n_streams = std::atol(argv[++a]);
    } else if (std::strcmp(argv[a], "--samples") == 0 && a + 1 < argc) {
      n_samples = std::atol(argv[++a]);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--streams N] [--samples N]\n", argv[0]);
      return 2;
    }
  }
  if (n_streams < 1 || n_samples < 1) {
    std::fprintf(stderr, "error: --streams and --samples must be >= 1\n");
    return 2;
  }

  std::printf("Training tiny VARADE (window 32) on the synthetic cell...\n");
  const auto train_raw = make_sine(1200, 1);
  data::MinMaxNormalizer normalizer;
  normalizer.fit(train_raw);
  const auto train = normalizer.transform(train_raw);
  core::VaradeDetector detector(
      {.window = 32, .base_channels = 16, .epochs = 2, .learning_rate = 1e-3F, .train_stride = 4});
  detector.fit(train);

  std::vector<data::MultivariateSeries> streams;
  for (Index s = 0; s < n_streams; ++s)
    streams.push_back(make_sine(n_samples, 100 + static_cast<std::uint64_t>(s)));

  const long total = static_cast<long>(n_streams) * static_cast<long>(n_samples);
  std::printf("\n%ld streams x %ld samples = %ld stream-samples per run  (%u hardware threads)\n",
              static_cast<long>(n_streams), static_cast<long>(n_samples), total,
              std::thread::hardware_concurrency());

  // Calibrate once outside every timed region; all paths share the threshold.
  const float threshold = core::calibrate_threshold(detector, train, {});

  // Baseline: one OnlineMonitor per stream, run to completion sequentially.
  double checksum_base = 0.0;
  const auto t0 = Clock::now();
  {
    for (Index s = 0; s < n_streams; ++s) {
      core::OnlineMonitor monitor(detector, normalizer);
      monitor.set_threshold(threshold);
      const auto& in = streams[static_cast<std::size_t>(s)];
      for (Index t = 0; t < in.length(); ++t)
        checksum_base += monitor.push(in.sample(t));
    }
  }
  const double base_s = seconds_since(t0);
  std::printf("\n%-34s %10s %12s %9s\n", "configuration", "time s", "samples/s", "speedup");
  std::printf("%-34s %10.3f %12.0f %9s\n", "sequential OnlineMonitor", base_s,
              static_cast<double>(total) / base_s, "1.00x");

  struct Config {
    int threads;
    Index max_batch;
  };
  const std::vector<Config> grid = {{1, 1},  {1, 8},  {1, 32}, {2, 8},
                                    {2, 32}, {4, 8},  {4, 32}, {4, 64}};

  for (const Config& cfg : grid) {
    serve::ScoringEngine engine(
        detector, normalizer,
        {.n_threads = cfg.threads, .max_batch = cfg.max_batch, .shard_forward = true});
    engine.add_streams(n_streams);
    engine.set_threshold(threshold);

    double checksum = 0.0;
    const auto start = Clock::now();
    // Replay in bursts so many streams are pending per step(), as a serving
    // frontend would see under load.
    constexpr Index kBurst = 50;
    for (Index t0_ = 0; t0_ < n_samples; t0_ += kBurst) {
      const Index t1 = std::min(n_samples, t0_ + kBurst);
      for (Index s = 0; s < n_streams; ++s) {
        const auto& in = streams[static_cast<std::size_t>(s)];
        for (Index t = t0_; t < t1; ++t) engine.push(s, in.sample(t));
      }
      for (const serve::StreamScore& r : engine.step()) checksum += r.score;
    }
    const double secs = seconds_since(start);

    char label[64];
    std::snprintf(label, sizeof(label), "engine  threads=%d  max_batch=%ld", cfg.threads,
                  static_cast<long>(cfg.max_batch));
    std::printf("%-34s %10.3f %12.0f %8.2fx", label, secs,
                static_cast<double>(total) / secs, base_s / secs);
    std::printf("   (%ld forward calls)\n", engine.forward_calls());

    if (std::abs(checksum - checksum_base) > 1e-6 * std::abs(checksum_base)) {
      std::fprintf(stderr, "FATAL: checksum mismatch vs baseline (%.9g vs %.9g)\n", checksum,
                   checksum_base);
      return 1;
    }
  }

  std::printf("\nAll engine configurations matched the sequential checksum.\n");
  return 0;
}
