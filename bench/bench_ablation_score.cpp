// Ablation: the anomaly-score function. The paper's central design claim
// (section 3.1) is that an edge-sized autoregressive model cannot forecast
// well enough for the conventional euclidean-norm residual score, and that
// the predicted *variance* should be used instead. This bench trains one
// VARADE model and evaluates both scores from it, plus the
// standardised-variance variant, side by side.
//
// Usage: bench_ablation_score [--quick]
#include "bench_common.hpp"

#include <cmath>

#include "varade/data/window.hpp"
#include "varade/eval/metrics.hpp"

int main(int argc, char** argv) {
  using namespace varade;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  core::Profile profile = bench::select_profile(opt);

  std::printf("bench_ablation_score: variance vs forecast-error scoring (profile '%s')\n",
              profile.name.c_str());
  const core::ExperimentData& data = bench::shared_experiment(profile);

  core::VaradeDetector det(profile.varade);
  std::printf("training VARADE...\n");
  det.fit(data.train);

  // Per-channel log-variance statistics on the training data (for the
  // standardised variant).
  const Index c_count = data.train.n_channels();
  std::vector<double> mean(static_cast<std::size_t>(c_count), 0.0);
  std::vector<double> m2(static_cast<std::size_t>(c_count), 0.0);
  long n_stats = 0;
  for (Index t = profile.varade.window; t < data.train.length(); t += 8) {
    const Tensor ctx = data::extract_context(data.train, t - 1, profile.varade.window);
    const auto out = det.model()->forward(ctx.reshaped({1, c_count, profile.varade.window}));
    ++n_stats;
    for (Index c = 0; c < c_count; ++c) {
      const double lv = out.logvar[c];
      const double delta = lv - mean[static_cast<std::size_t>(c)];
      mean[static_cast<std::size_t>(c)] += delta / n_stats;
      m2[static_cast<std::size_t>(c)] += delta * (lv - mean[static_cast<std::size_t>(c)]);
    }
  }
  std::vector<double> stddev(static_cast<std::size_t>(c_count));
  for (Index c = 0; c < c_count; ++c)
    stddev[static_cast<std::size_t>(c)] =
        std::sqrt(m2[static_cast<std::size_t>(c)] / std::max(1L, n_stats - 1)) + 1e-6;

  std::vector<float> variance_scores;
  std::vector<float> zvariance_scores;
  std::vector<float> forecast_scores;
  std::vector<int> labels;
  Tensor observed({c_count});
  for (Index t = profile.varade.window; t < data.test.length(); t += profile.eval_stride) {
    const Tensor ctx = data::extract_context(data.test, t - 1, profile.varade.window);
    const float* s = data.test.sample(t);
    for (Index ch = 0; ch < c_count; ++ch) observed[ch] = s[ch];

    const auto out = det.model()->forward(ctx.reshaped({1, c_count, profile.varade.window}));
    double var_sum = 0.0;
    double z_sum = 0.0;
    double err = 0.0;
    for (Index ch = 0; ch < c_count; ++ch) {
      var_sum += std::exp(out.logvar[ch]);
      z_sum += (out.logvar[ch] - mean[static_cast<std::size_t>(ch)]) /
               stddev[static_cast<std::size_t>(ch)];
      const double d = static_cast<double>(out.mu[ch]) - observed[ch];
      err += d * d;
    }
    variance_scores.push_back(static_cast<float>(var_sum / static_cast<double>(c_count)));
    zvariance_scores.push_back(static_cast<float>(z_sum / static_cast<double>(c_count)));
    forecast_scores.push_back(static_cast<float>(std::sqrt(err)));
    labels.push_back(data.test.label(t));
  }

  std::printf("\n%-34s %10s\n", "Score function (same trained model)", "AUC-ROC");
  bench::print_rule(48);
  std::printf("%-34s %10.3f\n", "predicted variance (paper)",
              eval::auc_roc(variance_scores, labels));
  std::printf("%-34s %10.3f\n", "standardised log-variance",
              eval::auc_roc(zvariance_scores, labels));
  std::printf("%-34s %10.3f\n", "forecast-error euclidean norm",
              eval::auc_roc(forecast_scores, labels));
  std::printf("\npaper claim (section 3.1): compact edge models fail to forecast accurately,\n"
              "so the variance of the predicted distribution is used as the anomaly score.\n");
  return 0;
}
