// Ablation: the input window size T (paper section 3.1, T = 512). The conv
// layer count follows log2(T)-1, so T also controls depth, parameters, and
// edge latency. Reports AUC, model size, and the paper-board frequency
// estimate per window.
//
// Usage: bench_ablation_window [--quick]
#include "bench_common.hpp"

#include "varade/edge/profiler.hpp"

int main(int argc, char** argv) {
  using namespace varade;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  core::Profile profile = bench::select_profile(opt);

  std::printf("bench_ablation_window: window-size sweep (profile '%s')\n", profile.name.c_str());
  const core::ExperimentData& data = bench::shared_experiment(profile);

  const edge::EdgeProfiler nx(edge::jetson_xavier_nx());

  std::printf("\n%8s %8s %10s %12s %14s %12s\n", "T", "layers", "var AUC", "params",
              "host ms/inf", "NX est Hz");
  bench::print_rule(70);
  for (Index window : {Index{16}, Index{32}, Index{64}, Index{128}}) {
    core::VaradeConfig cfg = profile.varade;
    cfg.window = window;
    core::VaradeDetector det(cfg);
    const core::DetectorRun run = core::run_detector(det, data, profile);
    const edge::EstimatedPerformance perf = nx.estimate(det.cost());
    std::printf("%8ld %8ld %10.3f %12ld %14.3f %12.1f\n", window,
                core::varade_layer_count(window), run.auc_roc, det.model()->num_params(),
                run.mean_score_latency_ms, perf.inference_hz);
    std::fflush(stdout);
  }
  std::printf("\npaper: T=512 with 8 conv layers; at repro scale the same rule gives\n"
              "log2(T)-1 layers with feature maps doubling every second layer.\n");
  return 0;
}
