// Shared infrastructure for the reproduction benches: the paper's published
// Table 2 values, a cached experiment runner, and table formatting.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "varade/core/experiment.hpp"
#include "varade/core/model_costs.hpp"
#include "varade/core/profiles.hpp"
#include "varade/edge/device.hpp"

namespace varade::bench {

/// One published row of the paper's Table 2.
struct PaperTable2Row {
  const char* detector;
  // Jetson Xavier NX.
  double nx_cpu, nx_gpu, nx_ram, nx_gpu_ram, nx_power, nx_auc, nx_hz;
  // Jetson AGX Orin.
  double orin_cpu, orin_gpu, orin_ram, orin_gpu_ram, orin_power, orin_auc, orin_hz;
};

/// The paper's Table 2 (both boards; AUC is board-independent).
inline const std::vector<PaperTable2Row>& paper_table2() {
  static const std::vector<PaperTable2Row> rows = {
      {"AR-LSTM", 62.311, 97.700, 5669.830, 872.374, 11.288, 0.719, 5.200,
       10.744, 87.200, 4741.666, 761.107, 11.139, 0.719, 8.687},
      {"GBRF", 61.499, 53.000, 5518.050, 528.416, 6.108, 0.655, 20.575,
       10.475, 15.900, 4279.286, 245.287, 9.741, 0.655, 44.128},
      {"AE", 53.023, 79.400, 5276.139, 807.528, 6.010, 0.810, 2.247,
       10.548, 51.800, 4882.850, 699.010, 10.168, 0.810, 4.284},
      {"kNN", 92.547, 55.700, 5076.605, 526.844, 7.208, 0.718, 1.116,
       91.506, 0.000, 4201.195, 243.289, 16.887, 0.718, 4.754},
      {"Isolation Forest", 51.122, 64.700, 4859.356, 526.673, 5.777, 0.629, 4.568,
       10.648, 0.000, 3990.171, 243.289, 9.169, 0.629, 10.732},
      {"VARADE", 52.420, 70.600, 5488.874, 1005.369, 6.333, 0.844, 14.937,
       10.399, 70.100, 5167.490, 954.701, 10.220, 0.844, 26.461},
  };
  return rows;
}

inline const PaperTable2Row& paper_row(const std::string& name) {
  for (const auto& row : paper_table2())
    if (name == row.detector) return row;
  fail("no paper row for detector '", name, "'");
}

/// Parses --paper / --quick flags shared by all benches.
struct BenchOptions {
  bool paper_scale = false;  // full published configuration (very slow)
  bool quick = false;        // CI-speed smoke configuration
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) opt.paper_scale = true;
    if (std::strcmp(argv[i], "--quick") == 0) opt.quick = true;
  }
  return opt;
}

/// Profile selection: repro by default; --paper for the full configuration;
/// --quick shrinks the repro profile further for smoke runs.
inline core::Profile select_profile(const BenchOptions& opt) {
  if (opt.paper_scale) return core::paper_profile();
  core::Profile p = core::repro_profile();
  if (opt.quick) {
    p.train_duration_s = 60.0;
    p.test_duration_s = 50.0;
    p.n_collisions = 6;
    p.varade.epochs = 2;
    p.ar_lstm.epochs = 1;
    p.ae.epochs = 2;
    p.eval_stride = 8;
  }
  return p;
}

/// Runs (and caches per-process) the shared experiment for the profile.
inline const core::ExperimentData& shared_experiment(const core::Profile& profile) {
  static core::ExperimentData data = core::generate_experiment_data(profile);
  return data;
}

inline void print_rule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace varade::bench
