// Shared infrastructure for the reproduction benches: the paper's published
// Table 2 values, a cached experiment runner, checked flag parsing, the
// serving benches' synthetic workload, and table formatting.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "varade/core/experiment.hpp"
#include "varade/core/model_costs.hpp"
#include "varade/core/profiles.hpp"
#include "varade/data/timeseries.hpp"
#include "varade/edge/device.hpp"
#include "varade/tensor/rng.hpp"

namespace varade::bench {

/// Checked integer parsing for numeric flags: exits naming the offending
/// flag on anything that is not a clean decimal number (std::atol would
/// silently turn garbage into 0 and let negatives through unremarked).
inline long parse_long_arg(const char* flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0') {
    std::fprintf(stderr, "error: %s expects an integer, got \"%s\"\n", flag, value);
    std::exit(2);
  }
  return parsed;
}

/// parse_long_arg plus a power-of-two check, for ring-capacity-style flags
/// where a silent round-up would hide a misconfiguration.
inline long parse_pow2_arg(const char* flag, const char* value) {
  const long parsed = parse_long_arg(flag, value);
  if (parsed < 1 || (parsed & (parsed - 1)) != 0) {
    std::fprintf(stderr, "error: %s expects a power of two >= 1, got \"%s\"\n", flag, value);
    std::exit(2);
  }
  return parsed;
}

/// The serving stack's synthetic workload: a 3-channel noisy sine cell with a
/// short high-noise anomaly burst every 250 samples. Shared by the serving
/// benches and the daemon's self-trained smoke configuration so every process
/// in a cross-process run regenerates identical streams from the seed alone.
inline data::MultivariateSeries make_sine(Index length, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(3);
  std::vector<float> row(3);
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = (t % 250) >= 200 && (t % 250) < 215;
    for (Index c = 0; c < 3; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, anomalous ? 0.9F : 0.03F);
    }
    s.append(row);
  }
  return s;
}

/// Tiny-footprint configurations so every detector trains in seconds; the
/// serving-layer behaviour under test does not depend on model size.
inline core::Profile tiny_serve_profile() {
  core::Profile p = core::repro_profile();
  p.varade.window = 32;
  p.varade.base_channels = 16;
  p.varade.epochs = 2;
  p.varade.learning_rate = 1e-3F;
  p.varade.train_stride = 4;

  p.ar_lstm.window = 32;
  p.ar_lstm.hidden = 16;
  p.ar_lstm.n_layers = 1;
  p.ar_lstm.epochs = 1;
  p.ar_lstm.learning_rate = 1e-3F;
  p.ar_lstm.train_stride = 8;

  p.gbrf.window = 32;
  p.gbrf.feature_steps = 4;
  p.gbrf.forest.n_trees = 8;
  p.gbrf.forest.tree.max_depth = 3;

  p.ae.window = 32;
  p.ae.base_channels = 8;
  p.ae.epochs = 1;
  p.ae.learning_rate = 1e-3F;
  p.ae.train_stride = 8;

  p.knn.max_reference_points = 1000;
  return p;
}

/// One published row of the paper's Table 2.
struct PaperTable2Row {
  const char* detector;
  // Jetson Xavier NX.
  double nx_cpu, nx_gpu, nx_ram, nx_gpu_ram, nx_power, nx_auc, nx_hz;
  // Jetson AGX Orin.
  double orin_cpu, orin_gpu, orin_ram, orin_gpu_ram, orin_power, orin_auc, orin_hz;
};

/// The paper's Table 2 (both boards; AUC is board-independent).
inline const std::vector<PaperTable2Row>& paper_table2() {
  static const std::vector<PaperTable2Row> rows = {
      {"AR-LSTM", 62.311, 97.700, 5669.830, 872.374, 11.288, 0.719, 5.200,
       10.744, 87.200, 4741.666, 761.107, 11.139, 0.719, 8.687},
      {"GBRF", 61.499, 53.000, 5518.050, 528.416, 6.108, 0.655, 20.575,
       10.475, 15.900, 4279.286, 245.287, 9.741, 0.655, 44.128},
      {"AE", 53.023, 79.400, 5276.139, 807.528, 6.010, 0.810, 2.247,
       10.548, 51.800, 4882.850, 699.010, 10.168, 0.810, 4.284},
      {"kNN", 92.547, 55.700, 5076.605, 526.844, 7.208, 0.718, 1.116,
       91.506, 0.000, 4201.195, 243.289, 16.887, 0.718, 4.754},
      {"Isolation Forest", 51.122, 64.700, 4859.356, 526.673, 5.777, 0.629, 4.568,
       10.648, 0.000, 3990.171, 243.289, 9.169, 0.629, 10.732},
      {"VARADE", 52.420, 70.600, 5488.874, 1005.369, 6.333, 0.844, 14.937,
       10.399, 70.100, 5167.490, 954.701, 10.220, 0.844, 26.461},
  };
  return rows;
}

inline const PaperTable2Row& paper_row(const std::string& name) {
  for (const auto& row : paper_table2())
    if (name == row.detector) return row;
  fail("no paper row for detector '", name, "'");
}

/// Parses --paper / --quick flags shared by all benches.
struct BenchOptions {
  bool paper_scale = false;  // full published configuration (very slow)
  bool quick = false;        // CI-speed smoke configuration
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) opt.paper_scale = true;
    if (std::strcmp(argv[i], "--quick") == 0) opt.quick = true;
  }
  return opt;
}

/// Profile selection: repro by default; --paper for the full configuration;
/// --quick shrinks the repro profile further for smoke runs.
inline core::Profile select_profile(const BenchOptions& opt) {
  if (opt.paper_scale) return core::paper_profile();
  core::Profile p = core::repro_profile();
  if (opt.quick) {
    p.train_duration_s = 60.0;
    p.test_duration_s = 50.0;
    p.n_collisions = 6;
    p.varade.epochs = 2;
    p.ar_lstm.epochs = 1;
    p.ae.epochs = 2;
    p.eval_stride = 8;
  }
  return p;
}

/// Runs (and caches per-process) the shared experiment for the profile.
inline const core::ExperimentData& shared_experiment(const core::Profile& profile) {
  static core::ExperimentData data = core::generate_experiment_data(profile);
  return data;
}

inline void print_rule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace varade::bench
