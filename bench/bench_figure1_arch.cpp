// Reproduces the paper's Figure 1: the VARADE architecture. Walks the conv
// cascade layer by layer (shape halving, feature-map doubling), reports
// parameters and FLOPs, and micro-measures per-layer host latency.
//
// Usage: bench_figure1_arch [--paper]  (default uses the repro-scale window)
#include <chrono>
#include <cstdio>
#include <cstring>

#include "varade/core/model_costs.hpp"
#include "varade/core/profiles.hpp"
#include "varade/core/varade.hpp"
#include "varade/edge/profiler.hpp"

int main(int argc, char** argv) {
  using namespace varade;
  bool paper_scale = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--paper") == 0) paper_scale = true;

  core::VaradeConfig cfg =
      paper_scale ? core::paper_profile().varade : core::repro_profile().varade;
  const Index channels = data::kKukaChannelCount;

  std::printf("bench_figure1_arch: VARADE architecture (T=%ld, base %ld feature maps, %ld input "
              "channels)\n\n",
              cfg.window, cfg.base_channels, channels);

  Rng rng(1);
  core::VaradeModel model(channels, cfg, rng);

  std::printf("%-4s %-16s %-18s %12s %14s %12s\n", "#", "Layer", "Output [C, L]", "Params",
              "FLOPs", "us/fwd");
  for (int i = 0; i < 82; ++i) std::putchar('-');
  std::putchar('\n');

  // Walk the trunk layer by layer, timing each with a single-sample input.
  nn::Sequential& trunk = model.trunk();
  Shape shape{channels, cfg.window};
  Tensor x = Tensor::randn({1, channels, cfg.window}, rng);
  long total_params = 0;
  double total_us = 0.0;
  for (std::size_t i = 0; i < trunk.size(); ++i) {
    nn::Module& layer = trunk.layer(i);
    const Shape out_shape = layer.output_shape(shape);
    const long flops = layer.flops(shape);
    const long params = layer.num_params();

    const auto t0 = std::chrono::steady_clock::now();
    Tensor y = layer.forward(x);
    const auto t1 = std::chrono::steady_clock::now();
    const double us = std::chrono::duration<double, std::micro>(t1 - t0).count();

    std::string shape_str = out_shape.size() == 2
                                ? "[" + std::to_string(out_shape[0]) + ", " +
                                      std::to_string(out_shape[1]) + "]"
                                : "[" + std::to_string(out_shape[0]) + "]";
    std::printf("%-4zu %-16s %-18s %12ld %14ld %12.1f\n", i, layer.name().c_str(),
                shape_str.c_str(), params, flops, us);
    total_params += params;
    total_us += us;
    shape = out_shape;
    x = std::move(y);
  }
  // Heads.
  for (nn::Linear* head : {&model.mu_head(), &model.logvar_head()}) {
    const auto t0 = std::chrono::steady_clock::now();
    head->forward(x);
    const auto t1 = std::chrono::steady_clock::now();
    const double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    std::printf("%-4s %-16s [%ld]%15s %12ld %14ld %12.1f\n", "-",
                head == &model.mu_head() ? "mu head" : "logvar head", channels, "",
                head->num_params(), head->flops(shape), us);
    total_params += head->num_params();
    total_us += us;
  }

  std::printf("\ntotal: %ld conv layers, %ld parameters, %ld FLOPs/inference, %.1f us host fwd\n",
              model.n_layers(), model.num_params(), model.flops(), total_us);
  if (paper_scale)
    std::printf("paper (section 3.1): T=512 -> 8 conv layers, feature maps 128 -> 1024\n");
  else
    std::printf("run with --paper for the published T=512 / 128->1024 configuration\n");

  // Cross-check against the static paper-scale cost description.
  const edge::ModelCost paper_cost = core::paper_model_cost("VARADE");
  std::printf("paper-scale static cost: %.1f MFLOPs, %.1f MB weights, %d dispatched ops\n",
              paper_cost.flops / 1e6, paper_cost.param_bytes / 1e6, paper_cost.n_ops);
  return 0;
}
