// Ablation: the feature-map schedule. The paper doubles the feature maps
// every second layer ("helping the network to learn more complex and
// abstract features", section 3.1). This bench compares the doubling
// schedule against constant-width trunks at matched starting width and at
// matched parameter count, reporting AUC, parameters, and FLOPs.
//
// Usage: bench_ablation_width [--quick]
#include "bench_common.hpp"

namespace {

using namespace varade;

struct Variant {
  const char* label;
  Index base_channels;
  bool doubling;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  core::Profile profile = bench::select_profile(opt);

  std::printf("bench_ablation_width: feature-map schedule ablation (profile '%s')\n",
              profile.name.c_str());
  const core::ExperimentData& data = bench::shared_experiment(profile);

  const Index base = profile.varade.base_channels;
  const Variant variants[] = {
      {"doubling (paper)", base, true},
      {"flat, same base width", base, false},
      {"flat, 2x base width", 2 * base, false},
  };

  std::printf("\n%-26s %10s %12s %14s %12s\n", "Trunk", "var AUC", "params", "FLOPs/inf",
              "train s");
  bench::print_rule(80);
  for (const Variant& v : variants) {
    core::VaradeConfig cfg = profile.varade;
    cfg.base_channels = v.base_channels;
    cfg.channel_doubling = v.doubling;
    core::VaradeDetector det(cfg);
    const core::DetectorRun run = core::run_detector(det, data, profile);
    std::printf("%-26s %10.3f %12ld %14ld %12.1f\n", v.label, run.auc_roc,
                det.model()->num_params(), det.model()->flops(), run.train_seconds);
    std::fflush(stdout);
  }
  std::printf("\npaper rationale: doubling concentrates parameters in the downsampled deep\n"
              "layers where the memory footprint per FLOP is smallest (section 3.1).\n");
  return 0;
}
