// Reproduces the paper's Figure 3: inference frequency vs AUC-ROC per
// detector per board, with marker size proportional to power consumption.
// Emits the scatter series as aligned text and as CSV on stdout so it can be
// re-plotted directly.
//
// Usage: bench_figure3 [--quick | --paper]
#include "bench_common.hpp"

#include "varade/edge/profiler.hpp"

int main(int argc, char** argv) {
  using namespace varade;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  const core::Profile profile = bench::select_profile(opt);

  std::printf("bench_figure3: inference frequency vs accuracy (profile '%s')\n",
              profile.name.c_str());
  const core::ExperimentData& data = bench::shared_experiment(profile);

  std::vector<core::DetectorRun> runs;
  for (const std::string& name : core::detector_names()) {
    std::printf("training %s...\n", name.c_str());
    std::fflush(stdout);
    runs.push_back(core::run_detector(name, data, profile));
  }

  std::printf("\n%-18s %-18s %10s %8s %9s %12s %12s\n", "Detector", "Board", "Est Hz", "AUC",
              "Power W", "Paper Hz", "Paper AUC");
  bench::print_rule(96);

  std::printf("\ncsv: detector,board,est_hz,auc,power_w,paper_hz,paper_auc\n");
  std::vector<std::string> csv_lines;
  for (const auto& board : {edge::jetson_xavier_nx(), edge::jetson_agx_orin()}) {
    const bool is_nx = board.name == "Jetson Xavier NX";
    const edge::EdgeProfiler profiler(board);
    for (const core::DetectorRun& run : runs) {
      const auto perf = profiler.estimate(core::paper_model_cost(run.detector));
      const auto& paper = bench::paper_row(run.detector);
      const double paper_hz = is_nx ? paper.nx_hz : paper.orin_hz;
      const double paper_auc = is_nx ? paper.nx_auc : paper.orin_auc;
      std::printf("%-18s %-18s %10.2f %8.3f %9.2f %12.2f %12.3f\n", run.detector.c_str(),
                  board.name.c_str(), perf.inference_hz, run.auc_roc, perf.power_w, paper_hz,
                  paper_auc);
      char line[256];
      std::snprintf(line, sizeof(line), "csv: %s,%s,%.3f,%.4f,%.3f,%.3f,%.4f",
                    run.detector.c_str(), board.name.c_str(), perf.inference_hz, run.auc_roc,
                    perf.power_w, paper_hz, paper_auc);
      csv_lines.push_back(line);
    }
  }
  std::printf("\n");
  for (const auto& line : csv_lines) std::printf("%s\n", line.c_str());

  // The figure's takeaway (paper section 4.4): VARADE offers the best
  // accuracy without sacrificing inference speed.
  double varade_auc = 0.0;
  double best_other_auc = 0.0;
  for (const auto& run : runs) {
    if (run.detector == "VARADE")
      varade_auc = run.auc_roc;
    else
      best_other_auc = std::max(best_other_auc, run.auc_roc);
  }
  std::printf("\nsummary: VARADE AUC %.3f vs best baseline %.3f (paper: 0.844 vs 0.810)\n",
              varade_auc, best_other_auc);
  return 0;
}
