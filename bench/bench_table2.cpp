// Reproduces the paper's Table 2: the six anomaly detectors on the two
// modelled Jetson boards, reporting CPU%, GPU%, RAM, GPU RAM, power, AUC-ROC
// and inference frequency next to the published values.
//
// AUC-ROC comes from detectors trained in this process on the simulated KUKA
// cell at the active profile's scale. The resource/frequency columns are
// edge-profiler estimates of the *paper-scale* architectures (those costs are
// static properties of the published configurations and do not require
// training the full-size models). Host wall-clock per inference of the
// trained (profile-scale) models is reported as an extra column.
//
// Usage: bench_table2 [--quick | --paper]
#include "bench_common.hpp"

#include "varade/edge/profiler.hpp"

namespace {

using namespace varade;

void print_board(const edge::DeviceSpec& spec, bool is_nx,
                 const std::vector<core::DetectorRun>& runs) {
  const edge::EdgeProfiler profiler(spec);
  std::printf("\n=== %s ===\n", spec.name.c_str());
  std::printf("%-18s %7s %7s %9s %9s %7s | %7s %7s | %9s %9s | %9s\n", "Detector", "CPU%%",
              "GPU%%", "RAM MB", "gRAM MB", "Power W", "AUC", "(paper)", "Est Hz", "(paper)",
              "Host Hz");
  bench::print_rule();

  // Idle row (copied into the device spec from the paper).
  std::printf("%-18s %7.1f %7.1f %9.1f %9.1f %7.2f | %7s %7s | %9s %9s | %9s\n", "Idle",
              spec.idle_cpu_util_pct, spec.idle_gpu_util_pct, spec.idle_ram_mb,
              spec.idle_gpu_ram_mb, spec.idle_power_w, "-", "-", "-", "-", "-");

  for (const core::DetectorRun& run : runs) {
    const edge::ModelCost paper_cost = core::paper_model_cost(run.detector);
    const edge::EstimatedPerformance perf = profiler.estimate(paper_cost);
    const bench::PaperTable2Row& paper = bench::paper_row(run.detector);
    std::printf("%-18s %7.1f %7.1f %9.1f %9.1f %7.2f | %7.3f %7.3f | %9.2f %9.2f | %9.1f\n",
                run.detector.c_str(), perf.cpu_util_pct, perf.gpu_util_pct, perf.ram_mb,
                perf.gpu_ram_mb, perf.power_w, run.auc_roc, is_nx ? paper.nx_auc : paper.orin_auc,
                perf.inference_hz, is_nx ? paper.nx_hz : paper.orin_hz, run.host_inference_hz);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  const core::Profile profile = bench::select_profile(opt);

  std::printf("bench_table2: profile '%s' — train %.0fs @ %.0f Hz, test %.0fs, %d collisions\n",
              profile.name.c_str(), profile.train_duration_s, profile.sample_rate_hz,
              profile.test_duration_s, profile.n_collisions);

  const core::ExperimentData& data = bench::shared_experiment(profile);
  std::printf("dataset: train %ld samples, test %ld samples (%.1f%% anomalous, %d events)\n",
              data.train.length(), data.test.length(),
              100.0 * static_cast<double>(data.test.count_anomalous_samples()) /
                  static_cast<double>(data.test.length()),
              data.n_collision_events);

  std::vector<varade::core::DetectorRun> runs;
  for (const std::string& name : varade::core::detector_names()) {
    std::printf("training %s...\n", name.c_str());
    std::fflush(stdout);
    runs.push_back(varade::core::run_detector(name, data, profile));
    std::printf("  %-18s AUC %.3f  train %.1fs  host %.2f Hz\n", name.c_str(),
                runs.back().auc_roc, runs.back().train_seconds, runs.back().host_inference_hz);
    std::fflush(stdout);
  }

  print_board(varade::edge::jetson_xavier_nx(), true, runs);
  print_board(varade::edge::jetson_agx_orin(), false, runs);

  std::printf(
      "\nNotes: resource and frequency columns estimate the paper-scale architectures on the\n"
      "modelled boards (calibrated against the published idle rows); AUC is measured on the\n"
      "simulated KUKA collision experiment at the active profile's scale. See EXPERIMENTS.md.\n");
  return 0;
}
