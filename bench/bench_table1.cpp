// Reproduces the paper's Table 1: the 86-channel description of the KUKA
// data stream, augmented with live statistics from a short simulation
// (section 4.2 of the paper).
//
// Usage: bench_table1
#include <cstdio>

#include "varade/data/timeseries.hpp"
#include "varade/eval/metrics.hpp"
#include "varade/robot/simulator.hpp"

int main() {
  using namespace varade;
  std::printf("bench_table1: channel schema and stream statistics (paper Table 1)\n\n");

  robot::SimulatorConfig cfg;
  cfg.sample_rate_hz = 200.0;  // the paper's IMU rate
  cfg.seed = 42;
  robot::RobotCellSimulator sim(cfg);
  const data::MultivariateSeries series = sim.record(30.0);

  const auto& schema = series.channels();
  std::printf("%-22s %-8s %-34s %10s %10s %10s\n", "Channel name", "Unit", "Description", "min",
              "max", "mean");
  for (int i = 0; i < 100; ++i) std::putchar('-');
  std::putchar('\n');

  for (Index c = 0; c < series.n_channels(); ++c) {
    std::vector<float> values;
    values.reserve(static_cast<std::size_t>(series.length()));
    for (Index t = 0; t < series.length(); ++t) values.push_back(series.value(t, c));
    const eval::Summary s = eval::summarize(values);
    const auto& info = schema[static_cast<std::size_t>(c)];
    std::printf("%-22s %-8s %-34s %10.3f %10.3f %10.3f\n", info.name.c_str(), info.unit.c_str(),
                info.description.c_str(), s.min, s.max, s.mean);
  }

  std::printf("\ntotals: %ld channels = 1 action ID + %ld joints x %ld IMU channels + %ld power "
              "channels; stream rate %.0f Hz\n",
              series.n_channels(), data::kKukaJointCount, data::kKukaChannelsPerJoint,
              data::kKukaPowerChannelCount, series.sample_rate_hz());
  std::printf("paper: 86 channels (Table 1), 200 Hz IMU output (section 4.1)\n");
  return 0;
}
