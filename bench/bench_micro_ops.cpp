// Micro-benchmarks (google-benchmark) of the kernels behind Table 2:
// Conv1d, Linear, LSTM step, tree ensemble evaluation, kNN queries, the
// isolation-forest scorer, windowing, and AUC computation.
#include <benchmark/benchmark.h>

#include "varade/data/window.hpp"
#include "varade/eval/metrics.hpp"
#include "varade/knn/knn.hpp"
#include "varade/nn/layers.hpp"
#include "varade/nn/lstm.hpp"
#include "varade/trees/gbrf.hpp"
#include "varade/trees/isolation_forest.hpp"

namespace {

using namespace varade;

void BM_Conv1dForward(benchmark::State& state) {
  const Index channels = state.range(0);
  const Index length = state.range(1);
  Rng rng(1);
  nn::Conv1d conv(channels, channels, 2, 2, 0, rng);
  const Tensor x = Tensor::randn({1, channels, length}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv1dForward)->Args({16, 64})->Args({32, 128})->Args({86, 512});

void BM_LinearForward(benchmark::State& state) {
  const Index in = state.range(0);
  Rng rng(2);
  nn::Linear linear(in, 86, rng);
  const Tensor x = Tensor::randn({1, in}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(linear.forward(x));
}
BENCHMARK(BM_LinearForward)->Arg(64)->Arg(256)->Arg(2048);

void BM_LstmForward(benchmark::State& state) {
  const Index hidden = state.range(0);
  const Index length = state.range(1);
  Rng rng(3);
  nn::Lstm lstm(86, hidden, rng);
  const Tensor x = Tensor::randn({1, 86, length}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(lstm.forward(x));
}
BENCHMARK(BM_LstmForward)->Args({32, 32})->Args({64, 32});

void BM_GbrfPredict(benchmark::State& state) {
  const int n_trees = static_cast<int>(state.range(0));
  Rng rng(4);
  const Tensor x = Tensor::rand_uniform({512, 32}, rng, -1.0F, 1.0F);
  Tensor y({512});
  for (Index i = 0; i < 512; ++i) y[i] = rng.normal();
  trees::GbrfConfig cfg;
  cfg.n_trees = n_trees;
  cfg.tree.max_depth = 6;
  trees::GradientBoostedRegressor model(cfg);
  model.fit(x, y);
  const Tensor q = Tensor::rand_uniform({32}, rng, -1.0F, 1.0F);
  for (auto _ : state) benchmark::DoNotOptimize(model.predict_one(q));
}
BENCHMARK(BM_GbrfPredict)->Arg(5)->Arg(30);

void BM_IsolationForestScore(benchmark::State& state) {
  Rng rng(5);
  const Tensor x = Tensor::randn({2048, 86}, rng);
  trees::IsolationForest forest({.n_trees = 100, .subsample = 256, .contamination = 0.1F});
  forest.fit(x);
  const Tensor q = Tensor::randn({86}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(forest.score_one(q));
}
BENCHMARK(BM_IsolationForestScore);

void BM_KnnQuery(benchmark::State& state) {
  const Index n_ref = state.range(0);
  Rng rng(6);
  const Tensor ref = Tensor::randn({n_ref, 86}, rng);
  knn::KnnAnomalyScorer scorer({.k = 5});
  scorer.fit(ref);
  const Tensor q = Tensor::randn({86}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(scorer.score_one(q));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnQuery)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_KdTreeQueryLowDim(benchmark::State& state) {
  Rng rng(7);
  const Tensor ref = Tensor::randn({10000, 4}, rng);
  knn::KdTree tree;
  tree.build(ref);
  const Tensor q = Tensor::randn({4}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tree.query(q, 5));
}
BENCHMARK(BM_KdTreeQueryLowDim);

void BM_WindowExtraction(benchmark::State& state) {
  const Index window = state.range(0);
  data::MultivariateSeries series(86);
  std::vector<float> row(86, 0.5F);
  for (Index t = 0; t < 2048; ++t) series.append(row);
  for (auto _ : state)
    benchmark::DoNotOptimize(data::extract_context(series, 2047, window));
}
BENCHMARK(BM_WindowExtraction)->Arg(32)->Arg(512);

void BM_AucRoc(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<float> scores(n);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = rng.uniform(0.0F, 1.0F);
    labels[i] = rng.bernoulli(0.1) ? 1 : 0;
  }
  for (auto _ : state) benchmark::DoNotOptimize(eval::auc_roc(scores, labels));
}
BENCHMARK(BM_AucRoc)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
