// Isolation Forest (Liu, Ting & Zhou [15]).
//
// The paper's configuration (section 3.3): 100 trees, anomaly score based on
// the average path length, contamination 0.1 defining the decision threshold.
// Trees are built on subsamples (default 256) with uniformly random
// feature/threshold splits; the score of a point is
//   s(x) = 2^{ -E[h(x)] / c(psi) }
// where h is the path length (plus the standard c(size) adjustment at
// unsplittable external nodes) and c(psi) the average unsuccessful-search
// path length of a BST over psi points.
#pragma once

#include <cstdint>
#include <vector>

#include "varade/tensor/tensor.hpp"

namespace varade::trees {

struct IsolationForestConfig {
  int n_trees = 100;       // paper: ensemble of 100 trees
  Index subsample = 256;   // psi
  float contamination = 0.1F;  // paper: recommended value from [15]
  std::uint64_t seed = 0;
};

/// Average path length c(n) of an unsuccessful BST search over n points.
double average_path_length(double n);

class IsolationForest {
 public:
  explicit IsolationForest(IsolationForestConfig config = {});

  /// Fits on X [n, d].
  void fit(const Tensor& x);

  /// Anomaly score in (0, 1); higher = more anomalous.
  float score_one(const float* sample) const;
  float score_one(const Tensor& sample) const;
  Tensor score(const Tensor& x) const;

  /// True when score exceeds the contamination-derived threshold.
  bool is_anomaly(const Tensor& sample) const;

  float threshold() const { return threshold_; }
  bool fitted() const { return !trees_.empty(); }
  Index n_features() const { return n_features_; }

 private:
  struct Node {
    int feature = -1;  // -1 marks an external node
    float threshold = 0.0F;
    int left = -1;
    int right = -1;
    Index size = 0;  // samples that reached this external node
  };
  using Tree = std::vector<Node>;

  int build(Tree& tree, const Tensor& x, std::vector<Index>& rows, Index begin, Index end,
            int depth, int max_depth, Rng& rng);
  double path_length(const Tree& tree, const float* sample) const;

  IsolationForestConfig config_;
  Index n_features_ = 0;
  double c_psi_ = 1.0;
  float threshold_ = 0.5F;
  std::vector<Tree> trees_;
};

}  // namespace varade::trees
