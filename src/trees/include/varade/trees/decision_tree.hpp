// CART regression tree with the mean-squared-error criterion and recursive
// binary splitting — the weak learner of the GBRF baseline (paper section 3.3,
// following Huang et al. [9]).
#pragma once

#include <cstdint>
#include <vector>

#include "varade/tensor/tensor.hpp"

namespace varade::trees {

/// Hyperparameters for a single regression tree.
struct TreeConfig {
  int max_depth = 6;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// Number of features examined per split; 0 means all features.
  int max_features = 0;
  std::uint64_t seed = 0;
};

/// Binary regression tree, stored as a flat node array.
class DecisionTreeRegressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig config = {});

  /// Fits on features X [n, d] and targets y [n].
  void fit(const Tensor& x, const Tensor& y);

  /// Fits on a subset of rows (used by boosting/bagging); `rows` indexes X/y.
  void fit_rows(const Tensor& x, const Tensor& y, const std::vector<Index>& rows);

  /// Predicts a single sample [d].
  float predict_one(const float* sample) const;
  float predict_one(const Tensor& sample) const;

  /// Predicts all rows of X [n, d] into a [n] tensor.
  Tensor predict(const Tensor& x) const;

  /// acc[i] += scale * prediction of row i, for `n` rows of `d` features at
  /// `x` — the boosting-stage accumulation, one call per tree per batch. Each
  /// row's contribution is the same scale * predict_one product, so batched
  /// ensemble predictions stay bit-identical to the per-row path.
  void accumulate_rows(const float* x, Index n, Index d, double scale, double* acc) const;

  bool fitted() const { return !nodes_.empty(); }
  int depth() const;
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;       // -1 marks a leaf
    float threshold = 0.0F; // go left when x[feature] <= threshold
    float value = 0.0F;     // leaf prediction
    int left = -1;
    int right = -1;
  };

  int build(const Tensor& x, const Tensor& y, std::vector<Index>& rows, Index begin, Index end,
            int depth, Rng& rng);

  TreeConfig config_;
  Index n_features_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace varade::trees
