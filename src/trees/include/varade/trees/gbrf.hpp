// Gradient Boosted Regression Forest.
//
// The GBRF baseline of the paper (section 3.3) follows Huang et al. [9] with
// the ensemble enlarged to 30 trees and no dimensionality-reduction step.
// Boosting uses the squared-error criterion: each stage fits a regression
// tree to the residuals of the running prediction, scaled by a shrinkage
// factor. Multi-output targets are handled by one boosted ensemble per
// output dimension.
#pragma once

#include <cstdint>
#include <vector>

#include "varade/trees/decision_tree.hpp"

namespace varade::trees {

struct GbrfConfig {
  int n_trees = 30;        // paper: increased from 5 to 30
  float learning_rate = 0.3F;
  TreeConfig tree;
  /// Fraction of rows sampled (without replacement) per stage; 1 = all.
  float subsample = 1.0F;
  std::uint64_t seed = 0;
};

/// Single-output gradient-boosted regression ensemble.
class GradientBoostedRegressor {
 public:
  explicit GradientBoostedRegressor(GbrfConfig config = {});

  void fit(const Tensor& x, const Tensor& y);
  float predict_one(const float* sample) const;
  float predict_one(const Tensor& sample) const;
  Tensor predict(const Tensor& x) const;

  /// Batched prediction over `n` rows of `d` features at `x`, writing row i's
  /// prediction to out[i * out_stride]. Traverses tree-major — each tree's
  /// nodes stay hot across all rows — but accumulates per row in the same
  /// (base, tree 0, tree 1, ...) order as predict_one, so results are
  /// bit-identical.
  void predict_rows(const float* x, Index n, Index d, float* out, Index out_stride = 1) const;

  bool fitted() const { return fitted_; }
  int n_trees() const { return static_cast<int>(trees_.size()); }
  float base_prediction() const { return base_; }

 private:
  GbrfConfig config_;
  float base_ = 0.0F;  // initial prediction: mean of y
  std::vector<DecisionTreeRegressor> trees_;
  bool fitted_ = false;
};

/// Multi-output wrapper: one boosted ensemble per target column.
class MultiOutputGbrf {
 public:
  explicit MultiOutputGbrf(GbrfConfig config = {});

  /// X [n, d], Y [n, m].
  void fit(const Tensor& x, const Tensor& y);

  /// Predicts one sample [d] into an [m] tensor.
  Tensor predict_one(const Tensor& sample) const;

  /// Predicts X [n, d] into [n, m].
  Tensor predict(const Tensor& x) const;

  /// Raw-pointer form of predict for callers scoring a row range in place:
  /// reads `n` rows of `d` features at `x`, writes the [n, m] predictions
  /// row-major at `out`. Per-row accumulation order matches predict_one.
  void predict_rows(const float* x, Index n, Index d, float* out) const;

  bool fitted() const { return !models_.empty(); }
  Index n_outputs() const { return static_cast<Index>(models_.size()); }

 private:
  GbrfConfig config_;
  std::vector<GradientBoostedRegressor> models_;
};

}  // namespace varade::trees
