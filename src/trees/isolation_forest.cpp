#include "varade/trees/isolation_forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace varade::trees {

double average_path_length(double n) {
  if (n <= 1.0) return 0.0;
  if (n == 2.0) return 1.0;
  const double h = std::log(n - 1.0) + 0.5772156649015329;  // harmonic approx.
  return 2.0 * h - 2.0 * (n - 1.0) / n;
}

IsolationForest::IsolationForest(IsolationForestConfig config) : config_(config) {
  check(config_.n_trees >= 1, "IsolationForest needs at least one tree");
  check(config_.subsample >= 2, "IsolationForest subsample must be >= 2");
  check(config_.contamination > 0.0F && config_.contamination < 0.5F,
        "contamination must be in (0, 0.5)");
}

void IsolationForest::fit(const Tensor& x) {
  check(x.rank() == 2, "IsolationForest fit expects X [n, d]");
  const Index n = x.dim(0);
  check(n >= 2, "IsolationForest needs at least 2 samples");
  n_features_ = x.dim(1);

  const Index psi = std::min(config_.subsample, n);
  c_psi_ = average_path_length(static_cast<double>(psi));
  const int max_depth = static_cast<int>(std::ceil(std::log2(static_cast<double>(psi))));

  Rng rng(config_.seed);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(config_.n_trees));
  std::vector<Index> all_rows(static_cast<std::size_t>(n));
  std::iota(all_rows.begin(), all_rows.end(), Index{0});

  for (int t = 0; t < config_.n_trees; ++t) {
    std::vector<Index> rows = all_rows;
    std::shuffle(rows.begin(), rows.end(), rng.engine());
    rows.resize(static_cast<std::size_t>(psi));
    Tree tree;
    tree.reserve(static_cast<std::size_t>(2 * psi));
    build(tree, x, rows, 0, psi, 0, max_depth, rng);
    trees_.push_back(std::move(tree));
  }

  // Contamination-derived threshold: the (1 - contamination) quantile of the
  // training scores.
  Tensor train_scores = score(x);
  std::vector<float> s(train_scores.data(), train_scores.data() + train_scores.numel());
  std::sort(s.begin(), s.end());
  const auto idx = static_cast<std::size_t>(
      std::clamp(static_cast<double>(s.size()) * (1.0 - config_.contamination), 0.0,
                 static_cast<double>(s.size() - 1)));
  threshold_ = s[idx];
}

int IsolationForest::build(Tree& tree, const Tensor& x, std::vector<Index>& rows, Index begin,
                           Index end, int depth, int max_depth, Rng& rng) {
  const Index n = end - begin;
  const Index d = n_features_;
  const int node_id = static_cast<int>(tree.size());
  tree.push_back(Node{});
  tree.back().size = n;

  if (n <= 1 || depth >= max_depth) return node_id;

  // Pick a random feature with a non-degenerate value range.
  Index feature = -1;
  float lo = 0.0F;
  float hi = 0.0F;
  for (int attempt = 0; attempt < 8 && feature < 0; ++attempt) {
    const Index f = rng.uniform_int(0, static_cast<int>(d) - 1);
    float fmin = x[rows[static_cast<std::size_t>(begin)] * d + f];
    float fmax = fmin;
    for (Index i = begin + 1; i < end; ++i) {
      const float v = x[rows[static_cast<std::size_t>(i)] * d + f];
      fmin = std::min(fmin, v);
      fmax = std::max(fmax, v);
    }
    if (fmax > fmin) {
      feature = f;
      lo = fmin;
      hi = fmax;
    }
  }
  if (feature < 0) return node_id;  // all candidate features constant

  const float threshold = rng.uniform(lo, hi);
  auto mid_it = std::partition(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                               rows.begin() + static_cast<std::ptrdiff_t>(end),
                               [&](Index r) { return x[r * d + feature] < threshold; });
  const Index mid = static_cast<Index>(mid_it - rows.begin());
  if (mid == begin || mid == end) return node_id;

  tree[static_cast<std::size_t>(node_id)].feature = static_cast<int>(feature);
  tree[static_cast<std::size_t>(node_id)].threshold = threshold;
  const int left = build(tree, x, rows, begin, mid, depth + 1, max_depth, rng);
  const int right = build(tree, x, rows, mid, end, depth + 1, max_depth, rng);
  tree[static_cast<std::size_t>(node_id)].left = left;
  tree[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double IsolationForest::path_length(const Tree& tree, const float* sample) const {
  int id = 0;
  int depth = 0;
  while (tree[static_cast<std::size_t>(id)].feature >= 0) {
    const Node& nd = tree[static_cast<std::size_t>(id)];
    id = sample[nd.feature] < nd.threshold ? nd.left : nd.right;
    ++depth;
  }
  return depth + average_path_length(static_cast<double>(tree[static_cast<std::size_t>(id)].size));
}

float IsolationForest::score_one(const float* sample) const {
  check(fitted(), "IsolationForest score before fit");
  double sum = 0.0;
  for (const Tree& tree : trees_) sum += path_length(tree, sample);
  const double mean_path = sum / static_cast<double>(trees_.size());
  return static_cast<float>(std::pow(2.0, -mean_path / c_psi_));
}

float IsolationForest::score_one(const Tensor& sample) const {
  check(sample.rank() == 1 && sample.dim(0) == n_features_,
        "score_one expects [" + std::to_string(n_features_) + "]");
  return score_one(sample.data());
}

Tensor IsolationForest::score(const Tensor& x) const {
  check(x.rank() == 2 && x.dim(1) == n_features_, "score expects [n, d]");
  const Index n = x.dim(0);
  Tensor out({n});
  for (Index i = 0; i < n; ++i) out[i] = score_one(x.data() + i * n_features_);
  return out;
}

bool IsolationForest::is_anomaly(const Tensor& sample) const {
  return score_one(sample) > threshold_;
}

}  // namespace varade::trees
