#include "varade/trees/gbrf.hpp"

#include <algorithm>
#include <numeric>

namespace varade::trees {

GradientBoostedRegressor::GradientBoostedRegressor(GbrfConfig config) : config_(config) {
  check(config_.n_trees >= 1, "GBRF needs at least one tree");
  check(config_.learning_rate > 0.0F && config_.learning_rate <= 1.0F,
        "GBRF learning rate must be in (0, 1]");
  check(config_.subsample > 0.0F && config_.subsample <= 1.0F,
        "GBRF subsample must be in (0, 1]");
}

void GradientBoostedRegressor::fit(const Tensor& x, const Tensor& y) {
  check(x.rank() == 2 && y.rank() == 1 && x.dim(0) == y.dim(0),
        "GBRF fit expects X [n, d] and y [n]");
  check(x.dim(0) > 0, "GBRF fit on empty dataset");
  const Index n = x.dim(0);

  base_ = y.mean();
  Tensor residual = y;
  residual -= base_;

  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(config_.n_trees));
  Rng rng(config_.seed);

  std::vector<Index> all_rows(static_cast<std::size_t>(n));
  std::iota(all_rows.begin(), all_rows.end(), Index{0});

  for (int t = 0; t < config_.n_trees; ++t) {
    TreeConfig tc = config_.tree;
    tc.seed = rng.next_u64();
    DecisionTreeRegressor tree(tc);
    if (config_.subsample < 1.0F) {
      std::vector<Index> rows = all_rows;
      std::shuffle(rows.begin(), rows.end(), rng.engine());
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(config_.subsample * static_cast<float>(n)));
      rows.resize(keep);
      tree.fit_rows(x, residual, rows);
    } else {
      tree.fit(x, residual);
    }
    // Update residuals with the shrunken stage prediction.
    for (Index i = 0; i < n; ++i)
      residual[i] -= config_.learning_rate * tree.predict_one(x.data() + i * x.dim(1));
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

float GradientBoostedRegressor::predict_one(const float* sample) const {
  check(fitted_, "GBRF predict before fit");
  double acc = base_;
  for (const auto& tree : trees_)
    acc += static_cast<double>(config_.learning_rate) * tree.predict_one(sample);
  return static_cast<float>(acc);
}

float GradientBoostedRegressor::predict_one(const Tensor& sample) const {
  check(sample.rank() == 1, "predict_one expects a rank-1 sample");
  return predict_one(sample.data());
}

Tensor GradientBoostedRegressor::predict(const Tensor& x) const {
  check(x.rank() == 2, "predict expects [n, d]");
  const Index n = x.dim(0);
  Tensor out({n});
  predict_rows(x.data(), n, x.dim(1), out.data());
  return out;
}

void GradientBoostedRegressor::predict_rows(const float* x, Index n, Index d, float* out,
                                            Index out_stride) const {
  check(fitted_, "GBRF predict before fit");
  // Tree-major traversal with one double accumulator per row: every row sums
  // base + lr * tree_0 + lr * tree_1 + ... exactly as predict_one does.
  std::vector<double> acc(static_cast<std::size_t>(n), static_cast<double>(base_));
  for (const auto& tree : trees_)
    tree.accumulate_rows(x, n, d, static_cast<double>(config_.learning_rate), acc.data());
  for (Index i = 0; i < n; ++i)
    out[i * out_stride] = static_cast<float>(acc[static_cast<std::size_t>(i)]);
}

MultiOutputGbrf::MultiOutputGbrf(GbrfConfig config) : config_(config) {}

void MultiOutputGbrf::fit(const Tensor& x, const Tensor& y) {
  check(x.rank() == 2 && y.rank() == 2 && x.dim(0) == y.dim(0),
        "MultiOutputGbrf fit expects X [n, d] and Y [n, m]");
  const Index m = y.dim(1);
  const Index n = y.dim(0);
  models_.clear();
  models_.reserve(static_cast<std::size_t>(m));
  Rng rng(config_.seed);
  for (Index j = 0; j < m; ++j) {
    Tensor col({n});
    for (Index i = 0; i < n; ++i) col[i] = y[i * m + j];
    GbrfConfig cfg = config_;
    cfg.seed = rng.next_u64();
    GradientBoostedRegressor model(cfg);
    model.fit(x, col);
    models_.push_back(std::move(model));
  }
}

Tensor MultiOutputGbrf::predict_one(const Tensor& sample) const {
  check(fitted(), "MultiOutputGbrf predict before fit");
  Tensor out({n_outputs()});
  for (Index j = 0; j < n_outputs(); ++j)
    out[j] = models_[static_cast<std::size_t>(j)].predict_one(sample.data());
  return out;
}

Tensor MultiOutputGbrf::predict(const Tensor& x) const {
  check(fitted(), "MultiOutputGbrf predict before fit");
  check(x.rank() == 2, "predict expects [n, d]");
  Tensor out({x.dim(0), n_outputs()});
  predict_rows(x.data(), x.dim(0), x.dim(1), out.data());
  return out;
}

void MultiOutputGbrf::predict_rows(const float* x, Index n, Index d, float* out) const {
  check(fitted(), "MultiOutputGbrf predict before fit");
  const Index m = n_outputs();
  // One tree-major sweep per output ensemble, writing its column of [n, m].
  for (Index j = 0; j < m; ++j)
    models_[static_cast<std::size_t>(j)].predict_rows(x, n, d, out + j, m);
}

}  // namespace varade::trees
