#include "varade/trees/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace varade::trees {

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config) : config_(config) {
  check(config_.max_depth >= 1, "max_depth must be >= 1");
  check(config_.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  check(config_.min_samples_split >= 2, "min_samples_split must be >= 2");
}

void DecisionTreeRegressor::fit(const Tensor& x, const Tensor& y) {
  check(x.rank() == 2, "fit expects X of shape [n, d]");
  std::vector<Index> rows(static_cast<std::size_t>(x.dim(0)));
  std::iota(rows.begin(), rows.end(), Index{0});
  fit_rows(x, y, rows);
}

void DecisionTreeRegressor::fit_rows(const Tensor& x, const Tensor& y,
                                     const std::vector<Index>& rows) {
  check(x.rank() == 2 && y.rank() == 1, "fit expects X [n, d] and y [n]");
  check(x.dim(0) == y.dim(0), "X and y row counts differ");
  check(!rows.empty(), "cannot fit a tree on zero samples");
  for (Index r : rows) check(r >= 0 && r < x.dim(0), "row index out of range");
  n_features_ = x.dim(1);
  nodes_.clear();
  nodes_.reserve(rows.size() * 2);
  std::vector<Index> work = rows;
  Rng rng(config_.seed);
  build(x, y, work, 0, static_cast<Index>(work.size()), 0, rng);
}

int DecisionTreeRegressor::build(const Tensor& x, const Tensor& y, std::vector<Index>& rows,
                                 Index begin, Index end, int depth, Rng& rng) {
  const Index n = end - begin;
  const Index d = n_features_;

  double sum = 0.0;
  double sum_sq = 0.0;
  for (Index i = begin; i < end; ++i) {
    const float v = y[rows[static_cast<std::size_t>(i)]];
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const float mean = static_cast<float>(sum / n);
  const double node_sse = sum_sq - sum * sum / n;

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{.feature = -1, .threshold = 0.0F, .value = mean, .left = -1, .right = -1});

  const bool can_split = depth < config_.max_depth && n >= config_.min_samples_split &&
                         node_sse > 1e-12;
  if (!can_split) return node_id;

  // Choose candidate features (all, or a random subset for ensembles).
  std::vector<Index> features(static_cast<std::size_t>(d));
  std::iota(features.begin(), features.end(), Index{0});
  Index n_candidates = d;
  if (config_.max_features > 0 && config_.max_features < d) {
    std::shuffle(features.begin(), features.end(), rng.engine());
    n_candidates = config_.max_features;
  }

  double best_gain = 0.0;
  Index best_feature = -1;
  float best_threshold = 0.0F;

  std::vector<std::pair<float, float>> vals;  // (feature value, target)
  vals.reserve(static_cast<std::size_t>(n));
  for (Index fi = 0; fi < n_candidates; ++fi) {
    const Index f = features[static_cast<std::size_t>(fi)];
    vals.clear();
    for (Index i = begin; i < end; ++i) {
      const Index r = rows[static_cast<std::size_t>(i)];
      vals.emplace_back(x[r * d + f], y[r]);
    }
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;  // constant feature

    // Scan split positions; SSE reduction = sum^2_l/n_l + sum^2_r/n_r - sum^2/n.
    double sum_left = 0.0;
    for (Index i = 0; i + 1 < n; ++i) {
      sum_left += vals[static_cast<std::size_t>(i)].second;
      const Index n_left = i + 1;
      const Index n_right = n - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) continue;
      const float v_here = vals[static_cast<std::size_t>(i)].first;
      const float v_next = vals[static_cast<std::size_t>(i + 1)].first;
      if (v_here == v_next) continue;  // cannot split between equal values
      const double sum_right = sum - sum_left;
      const double gain =
          sum_left * sum_left / n_left + sum_right * sum_right / n_right - sum * sum / n;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5F * (v_here + v_next);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition rows in [begin, end) by the chosen split.
  auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin), rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](Index r) { return x[r * d + best_feature] <= best_threshold; });
  const Index mid = static_cast<Index>(mid_it - rows.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate split (numeric ties)

  nodes_[static_cast<std::size_t>(node_id)].feature = static_cast<int>(best_feature);
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(x, y, rows, begin, mid, depth + 1, rng);
  const int right = build(x, y, rows, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

float DecisionTreeRegressor::predict_one(const float* sample) const {
  check(fitted(), "predict on unfitted tree");
  int id = 0;
  while (nodes_[static_cast<std::size_t>(id)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    id = sample[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[static_cast<std::size_t>(id)].value;
}

float DecisionTreeRegressor::predict_one(const Tensor& sample) const {
  check(sample.rank() == 1 && sample.dim(0) == n_features_,
        "predict_one expects [" + std::to_string(n_features_) + "]");
  return predict_one(sample.data());
}

Tensor DecisionTreeRegressor::predict(const Tensor& x) const {
  check(x.rank() == 2 && x.dim(1) == n_features_, "predict expects [n, d]");
  const Index n = x.dim(0);
  Tensor out({n});
  for (Index i = 0; i < n; ++i) out[i] = predict_one(x.data() + i * n_features_);
  return out;
}

void DecisionTreeRegressor::accumulate_rows(const float* x, Index n, Index d, double scale,
                                            double* acc) const {
  // Branch-then-fail (not check()) so the hot path — one call per tree per
  // batch — never constructs message strings.
  if (!fitted()) fail("predict on unfitted tree");
  if (d != n_features_)
    fail("accumulate_rows expects ", n_features_, " features, got ", d);
  const Node* nodes = nodes_.data();
  for (Index i = 0; i < n; ++i) {
    const float* sample = x + i * d;
    int id = 0;
    while (nodes[id].feature >= 0) {
      const Node& nd = nodes[id];
      id = sample[nd.feature] <= nd.threshold ? nd.left : nd.right;
    }
    acc[i] += scale * nodes[id].value;
  }
}

int DecisionTreeRegressor::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flat array; depth counts edges from
  // the root (sklearn semantics), so a lone leaf has depth 0.
  std::vector<std::pair<int, int>> stack{{0, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.feature >= 0) {
      stack.push_back({nd.left, depth + 1});
      stack.push_back({nd.right, depth + 1});
    }
  }
  return max_depth;
}

}  // namespace varade::trees
