#include "varade/knn/knn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace varade::knn {

KnnAnomalyScorer::KnnAnomalyScorer(KnnConfig config) : config_(config) {
  check(config_.k >= 1, "kNN requires k >= 1");
  check(config_.max_reference_points >= 0, "max_reference_points must be >= 0");
}

void KnnAnomalyScorer::fit(const Tensor& x) {
  check(x.rank() == 2, "kNN fit expects X [n, d]");
  check(x.dim(0) >= config_.k, "kNN reference set smaller than k");
  dims_ = x.dim(1);

  if (config_.max_reference_points > 0 && x.dim(0) > config_.max_reference_points) {
    // Deterministic uniform subsample.
    Rng rng(config_.seed);
    std::vector<Index> rows(static_cast<std::size_t>(x.dim(0)));
    std::iota(rows.begin(), rows.end(), Index{0});
    std::shuffle(rows.begin(), rows.end(), rng.engine());
    rows.resize(static_cast<std::size_t>(config_.max_reference_points));
    std::sort(rows.begin(), rows.end());
    Tensor sub({config_.max_reference_points, dims_});
    for (Index i = 0; i < config_.max_reference_points; ++i)
      for (Index j = 0; j < dims_; ++j)
        sub[i * dims_ + j] = x[rows[static_cast<std::size_t>(i)] * dims_ + j];
    reference_ = std::move(sub);
  } else {
    reference_ = x;
  }

  use_kdtree_ = dims_ <= config_.kdtree_max_dims;
  if (use_kdtree_) tree_.build(reference_);
}

std::vector<Neighbor> KnnAnomalyScorer::brute_force(const float* sample) const {
  const Index n = reference_.dim(0);
  const int k = config_.k;
  std::vector<Neighbor> heap;
  heap.reserve(static_cast<std::size_t>(k));
  const float* ref = reference_.data();
  for (Index i = 0; i < n; ++i) {
    const float* p = ref + i * dims_;
    float dist_sq = 0.0F;
    for (Index j = 0; j < dims_; ++j) {
      const float d = sample[j] - p[j];
      dist_sq += d * d;
    }
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back({dist_sq, i});
      std::push_heap(heap.begin(), heap.end());
    } else if (dist_sq < heap.front().dist_sq) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {dist_sq, i};
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  return heap;
}

std::vector<Neighbor> KnnAnomalyScorer::neighbors(const float* sample) const {
  check(fitted(), "kNN score before fit");
  return use_kdtree_ ? tree_.query(sample, config_.k) : brute_force(sample);
}

float KnnAnomalyScorer::score_one(const float* sample) const {
  const std::vector<Neighbor> nbs = neighbors(sample);
  check(!nbs.empty(), "kNN found no neighbours");
  if (config_.score == KnnScore::kMaxDistance) return std::sqrt(nbs.back().dist_sq);
  double acc = 0.0;
  for (const Neighbor& nb : nbs) acc += std::sqrt(static_cast<double>(nb.dist_sq));
  return static_cast<float>(acc / static_cast<double>(nbs.size()));
}

float KnnAnomalyScorer::score_one(const Tensor& sample) const {
  check(sample.rank() == 1 && sample.dim(0) == dims_,
        "score_one expects [" + std::to_string(dims_) + "]");
  return score_one(sample.data());
}

Tensor KnnAnomalyScorer::score(const Tensor& x) const {
  check(x.rank() == 2 && x.dim(1) == dims_, "score expects [n, d]");
  const Index n = x.dim(0);
  Tensor out({n});
  for (Index i = 0; i < n; ++i) out[i] = score_one(x.data() + i * dims_);
  return out;
}

}  // namespace varade::knn
