#include "varade/knn/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace varade::knn {

void KdTree::build(const Tensor& x) {
  check(x.rank() == 2, "KdTree build expects X [n, d]");
  check(x.dim(0) > 0 && x.dim(1) > 0, "KdTree build on empty data");
  points_ = x;
  dims_ = x.dim(1);
  nodes_.clear();
  nodes_.reserve(static_cast<std::size_t>(x.dim(0)));
  std::vector<Index> rows(static_cast<std::size_t>(x.dim(0)));
  std::iota(rows.begin(), rows.end(), Index{0});
  root_ = build_range(rows, 0, x.dim(0), 0);
}

int KdTree::build_range(std::vector<Index>& rows, Index begin, Index end, int depth) {
  if (begin >= end) return -1;
  const int axis = depth % static_cast<int>(dims_);
  const Index mid = begin + (end - begin) / 2;
  std::nth_element(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                   rows.begin() + static_cast<std::ptrdiff_t>(mid),
                   rows.begin() + static_cast<std::ptrdiff_t>(end), [&](Index a, Index b) {
                     return points_[a * dims_ + axis] < points_[b * dims_ + axis];
                   });
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{.point = rows[static_cast<std::size_t>(mid)], .axis = axis,
                        .left = -1, .right = -1});
  const int left = build_range(rows, begin, mid, depth + 1);
  const int right = build_range(rows, mid + 1, end, depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

void KdTree::search(int node_id, const float* query, int k, std::vector<Neighbor>& heap) const {
  if (node_id < 0) return;
  const Node& nd = nodes_[static_cast<std::size_t>(node_id)];
  const float* p = points_.data() + nd.point * dims_;

  float dist_sq = 0.0F;
  for (Index i = 0; i < dims_; ++i) {
    const float d = query[i] - p[i];
    dist_sq += d * d;
  }
  if (static_cast<int>(heap.size()) < k) {
    heap.push_back({dist_sq, nd.point});
    std::push_heap(heap.begin(), heap.end());
  } else if (dist_sq < heap.front().dist_sq) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {dist_sq, nd.point};
    std::push_heap(heap.begin(), heap.end());
  }

  const float axis_diff = query[nd.axis] - p[nd.axis];
  const int near = axis_diff <= 0.0F ? nd.left : nd.right;
  const int far = axis_diff <= 0.0F ? nd.right : nd.left;
  search(near, query, k, heap);
  // Prune the far side unless the splitting plane is closer than the current
  // k-th best distance.
  if (static_cast<int>(heap.size()) < k || axis_diff * axis_diff < heap.front().dist_sq)
    search(far, query, k, heap);
}

std::vector<Neighbor> KdTree::query(const float* query, int k) const {
  check(built(), "KdTree query before build");
  check(k >= 1, "k must be >= 1");
  std::vector<Neighbor> heap;
  heap.reserve(static_cast<std::size_t>(k));
  search(root_, query, k, heap);
  std::sort_heap(heap.begin(), heap.end());
  return heap;
}

std::vector<Neighbor> KdTree::query(const Tensor& query, int k) const {
  check(query.rank() == 1 && query.dim(0) == dims_,
        "query expects [" + std::to_string(dims_) + "]");
  return query.numel() == 0 ? std::vector<Neighbor>{} : this->query(query.data(), k);
}

}  // namespace varade::knn
