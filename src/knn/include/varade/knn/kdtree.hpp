// k-d tree for exact nearest-neighbour queries.
//
// Effective in low/medium dimension; the kNN detector falls back to the
// blocked brute-force search (knn.hpp) in high dimension where kd-trees
// degenerate (curse of dimensionality). Both paths return identical results
// and are cross-checked in the test suite.
#pragma once

#include <vector>

#include "varade/tensor/tensor.hpp"

namespace varade::knn {

/// A neighbour: squared euclidean distance plus the index of the reference row.
struct Neighbor {
  float dist_sq = 0.0F;
  Index index = -1;
  bool operator<(const Neighbor& other) const { return dist_sq < other.dist_sq; }
};

class KdTree {
 public:
  KdTree() = default;

  /// Builds over reference points X [n, d]. Keeps a copy of the data.
  void build(const Tensor& x);

  /// Exact k nearest neighbours of `query` [d], sorted by ascending distance.
  std::vector<Neighbor> query(const float* query, int k) const;
  std::vector<Neighbor> query(const Tensor& query, int k) const;

  bool built() const { return !nodes_.empty(); }
  Index size() const { return points_.rank() == 2 ? points_.dim(0) : 0; }
  Index n_features() const { return dims_; }

 private:
  struct Node {
    Index point = -1;   // row into points_
    int axis = -1;
    int left = -1;
    int right = -1;
  };

  int build_range(std::vector<Index>& rows, Index begin, Index end, int depth);
  void search(int node_id, const float* query, int k, std::vector<Neighbor>& heap) const;

  Tensor points_;  // [n, d]
  Index dims_ = 0;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace varade::knn
