// k-nearest-neighbour anomaly scoring (paper section 3.3, following Goldstein
// & Uchida [6]): the anomaly score of a query point is the maximum (or mean)
// distance to its k nearest neighbours among the normal reference set. The
// paper uses maximum distance with k = 5.
#pragma once

#include <cstdint>

#include "varade/knn/kdtree.hpp"

namespace varade::knn {

enum class KnnScore {
  kMaxDistance,   // paper default
  kMeanDistance,
};

struct KnnConfig {
  int k = 5;  // paper: k = 5
  KnnScore score = KnnScore::kMaxDistance;
  /// Reference points are subsampled to at most this many rows (0 = keep all);
  /// keeps edge memory and query cost bounded.
  Index max_reference_points = 0;
  /// Use the kd-tree when dimensionality <= this; brute force otherwise.
  Index kdtree_max_dims = 16;
  std::uint64_t seed = 0;
};

class KnnAnomalyScorer {
 public:
  explicit KnnAnomalyScorer(KnnConfig config = {});

  /// Stores (a possibly subsampled copy of) the normal reference set X [n, d].
  void fit(const Tensor& x);

  /// Distance-based anomaly score of a query sample [d]; higher = more anomalous.
  float score_one(const float* sample) const;
  float score_one(const Tensor& sample) const;
  Tensor score(const Tensor& x) const;

  /// Exact k nearest neighbours (used by tests to cross-check both backends).
  std::vector<Neighbor> neighbors(const float* sample) const;

  bool fitted() const { return reference_.rank() == 2 && reference_.dim(0) > 0; }
  Index reference_size() const { return fitted() ? reference_.dim(0) : 0; }
  Index n_features() const { return dims_; }
  bool using_kdtree() const { return use_kdtree_; }

 private:
  std::vector<Neighbor> brute_force(const float* sample) const;

  KnnConfig config_;
  Tensor reference_;  // [n, d]
  Index dims_ = 0;
  KdTree tree_;
  bool use_kdtree_ = false;
};

}  // namespace varade::knn
