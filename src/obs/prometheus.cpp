#include "varade/obs/prometheus.hpp"

#include <cstdio>

namespace varade::obs {
namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

void PrometheusWriter::family(std::string_view name, std::string_view help,
                              std::string_view type) {
  if (last_family_ == name) return;
  last_family_.assign(name);
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PrometheusWriter::sample(std::string_view name, std::string_view suffix,
                              std::string_view labels,
                              std::string_view extra_label, double value) {
  out_ += name;
  out_ += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out_ += '{';
    out_ += labels;
    if (!labels.empty() && !extra_label.empty()) out_ += ',';
    out_ += extra_label;
    out_ += '}';
  }
  out_ += ' ';
  append_double(out_, value);
  out_ += '\n';
}

void PrometheusWriter::counter(std::string_view name, std::string_view help,
                               std::uint64_t value, std::string_view labels) {
  family(name, help, "counter");
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    out_ += labels;
    out_ += '}';
  }
  out_ += ' ';
  out_ += std::to_string(value);
  out_ += '\n';
}

void PrometheusWriter::gauge(std::string_view name, std::string_view help,
                             double value, std::string_view labels) {
  family(name, help, "gauge");
  sample(name, "", labels, {}, value);
}

void PrometheusWriter::histogram(std::string_view name, std::string_view help,
                                 const HistogramSnapshot& snap, double scale,
                                 std::string_view labels) {
  family(name, help, "histogram");
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (snap.buckets[b] == 0) continue;
    cum += snap.buckets[b];
    // The overflow bucket has no finite edge; it is folded into +Inf below.
    if (b == kBuckets - 1) continue;
    std::string le = "le=\"";
    char edge[40];
    std::snprintf(edge, sizeof edge, "%.9g",
                  static_cast<double>(bucket_upper(b)) * scale);
    le += edge;
    le += '"';
    sample(name, "_bucket", labels, le, static_cast<double>(cum));
  }
  sample(name, "_bucket", labels, "le=\"+Inf\"", static_cast<double>(cum));
  out_ += name;
  out_ += "_sum";
  if (!labels.empty()) {
    out_ += '{';
    out_ += labels;
    out_ += '}';
  }
  out_ += ' ';
  append_double(out_, static_cast<double>(snap.sum) * scale);
  out_ += '\n';
  out_ += name;
  out_ += "_count";
  if (!labels.empty()) {
    out_ += '{';
    out_ += labels;
    out_ += '}';
  }
  out_ += ' ';
  out_ += std::to_string(cum);
  out_ += '\n';
}

}  // namespace varade::obs
