#pragma once
// varade::obs — lock-free runtime telemetry.
//
// Two primitives, built for many-writers / rare-reader use on scoring hot
// paths:
//
//   LogHistogram  fixed-bucket log-scale histogram (log2 octaves split into
//                 8 sub-buckets, <= 12.5% relative bucket width). Recording
//                 is one relaxed fetch_add per bucket plus relaxed
//                 count/sum updates and a CAS min/max — no locks, no
//                 allocation, wait-free except the (rare-loser) min/max CAS.
//   Counter       cache-line-padded relaxed monotonic counter.
//
// Writers are expected to be per-shard / per-thread instances; a reader
// takes `snapshot()` of each and `merge()`s the snapshots, so recording
// never contends with exposition. Snapshots are relaxed loads: each bucket
// is individually exact-or-slightly-stale, cross-bucket totals can be
// transiently off by in-flight records, and everything is exact once the
// writers quiesce. That is the same contract the serving counters already
// document and all any metrics pipeline needs.
//
// Compile-time gate: building with -DVARADE_OBS=OFF (CMake) defines
// VARADE_OBS_DISABLED, which flips `kEnabled` to false. The primitives
// stay fully functional (tests exercise them in any build); what
// disappears is the *instrumentation glue* — `tick()` stops reading the
// clock and the `record_since` / `record_value` / `count` helpers compile
// to nothing, so every call site gated through them costs zero.

#include <atomic>
#include <bit>
#include <cstdint>

namespace varade::obs {

#if defined(VARADE_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// Monotonic wall-clock in nanoseconds (CLOCK_MONOTONIC). Always live, even
// when instrumentation is compiled off — benches time themselves with it.
std::int64_t now_ns();

// Instrumentation timestamp: now_ns() when telemetry is enabled, a constant
// 0 (no clock read, no syscall) when compiled off.
inline std::int64_t tick() {
  if constexpr (kEnabled) return now_ns();
  return 0;
}

// ---------------------------------------------------------------------------
// Bucket geometry (shared by LogHistogram, its snapshots, and the wire /
// Prometheus expositions).
//
// Values 0..7 get exact unit buckets; from 8 upward each power-of-two
// octave is split into kSubBuckets sub-buckets, so bucket width is at most
// 1/8 of the value (12.5% relative error). kMaxExp = 41 covers values up
// to ~2^42 ns (~73 minutes as a latency); anything larger clamps into the
// final bucket, whose upper bound is reported as +Inf.
inline constexpr int kSubBits = 3;
inline constexpr int kSubBuckets = 1 << kSubBits;
inline constexpr int kMaxExp = 41;
inline constexpr int kBuckets = (kMaxExp - 1) * kSubBuckets;  // 320

constexpr int bucket_of(std::int64_t v) {
  if (v < kSubBuckets) return v < 0 ? 0 : static_cast<int>(v);
  const int exp = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
  if (exp > kMaxExp) return kBuckets - 1;
  const int sub =
      static_cast<int>((v >> (exp - kSubBits)) & (kSubBuckets - 1));
  return (exp - kSubBits + 1) * kSubBuckets + sub;
}

// Smallest value that lands in bucket b.
constexpr std::int64_t bucket_lower(int b) {
  if (b < kSubBuckets) return b;
  const int exp = b / kSubBuckets + kSubBits - 1;
  const int sub = b % kSubBuckets;
  return static_cast<std::int64_t>(kSubBuckets + sub) << (exp - kSubBits);
}

// Largest value that lands in bucket b (INT64_MAX for the overflow bucket).
constexpr std::int64_t bucket_upper(int b) {
  if (b >= kBuckets - 1) return INT64_MAX;
  return bucket_lower(b + 1) - 1;
}

// ---------------------------------------------------------------------------
// Plain-data snapshot of one histogram. Mergeable (associative and
// commutative: counts/sums add, min/max combine) and queryable.
struct HistogramSnapshot {
  std::uint64_t buckets[kBuckets] = {};
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // meaningful only when count > 0
  std::int64_t max = 0;

  void merge(const HistogramSnapshot& other);

  // Upper-bound estimate of the q-quantile (0 < q <= 1): the upper edge of
  // the first bucket whose cumulative count reaches q * count, clamped to
  // the observed max. Resolution is the bucket width (<= 12.5%).
  std::int64_t quantile(double q) const;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

// ---------------------------------------------------------------------------
// The lock-free histogram itself. One instance per writer shard; align to a
// cache line so adjacent shard instances never false-share.
class alignas(64) LogHistogram {
 public:
  LogHistogram() : min_(INT64_MAX), max_(INT64_MIN) {}

  // Hot path: relaxed adds; the min/max CAS loops only retry when another
  // writer moved the extremum concurrently.
  void record(std::int64_t v) {
    if (v < 0) v = 0;
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::int64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_;
  std::atomic<std::int64_t> max_;
};

// Cache-line-padded relaxed monotonic counter.
class alignas(64) Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// ---------------------------------------------------------------------------
// Gated instrumentation helpers — the only way hot paths should touch the
// primitives. All compile to nothing under VARADE_OBS_DISABLED.

// Record the elapsed time since `t0` (a value obtained from tick()).
inline void record_since(LogHistogram& h, std::int64_t t0) {
  if constexpr (kEnabled) h.record(now_ns() - t0);
}

// Record elapsed time between two already-taken ticks.
inline void record_span(LogHistogram& h, std::int64_t t0, std::int64_t t1) {
  if constexpr (kEnabled) h.record(t1 - t0);
}

// Record a non-time sample (queue depth, buffer bytes, ...).
inline void record_value(LogHistogram& h, std::int64_t v) {
  if constexpr (kEnabled) h.record(v);
}

inline void count(Counter& c, std::uint64_t n = 1) {
  if constexpr (kEnabled) c.add(n);
}

}  // namespace varade::obs
