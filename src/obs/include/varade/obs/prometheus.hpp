#pragma once
// Prometheus text-format (version 0.0.4) exposition for obs primitives.
//
// Usage: construct a PrometheusWriter, emit metrics grouped by family
// (HELP/TYPE headers are written once per family name, on first use), and
// serve `text()` as `text/plain`. Histogram families are emitted in the
// classic cumulative-`le` form with sparse buckets — only bucket edges that
// actually hold samples appear, plus the mandatory `+Inf`, `_sum`, and
// `_count` series — so a 320-bucket LogHistogram stays a few lines.

#include <cstdint>
#include <string>
#include <string_view>

#include "varade/obs/telemetry.hpp"

namespace varade::obs {

class PrometheusWriter {
 public:
  // `labels` is the inner body of the label set, e.g. `shard="3"`, or empty.
  void counter(std::string_view name, std::string_view help,
               std::uint64_t value, std::string_view labels = {});
  void gauge(std::string_view name, std::string_view help, double value,
             std::string_view labels = {});
  // `scale` converts recorded units to exposed units (default ns -> s).
  void histogram(std::string_view name, std::string_view help,
                 const HistogramSnapshot& snap, double scale = 1e-9,
                 std::string_view labels = {});

  const std::string& text() const { return out_; }

 private:
  void family(std::string_view name, std::string_view help,
              std::string_view type);
  void sample(std::string_view name, std::string_view suffix,
              std::string_view labels, std::string_view extra_label,
              double value);

  std::string out_;
  std::string last_family_;
};

}  // namespace varade::obs
