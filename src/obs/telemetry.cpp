#include "varade/obs/telemetry.hpp"

#include <algorithm>
#include <chrono>

namespace varade::obs {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

HistogramSnapshot LogHistogram::snapshot() const {
  HistogramSnapshot s;
  for (int b = 0; b < kBuckets; ++b)
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const std::int64_t mn = min_.load(std::memory_order_relaxed);
  const std::int64_t mx = max_.load(std::memory_order_relaxed);
  s.min = mn == INT64_MAX ? 0 : mn;
  s.max = mx == INT64_MIN ? 0 : mx;
  return s;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (int b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

std::int64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q <= 0.0) return min;
  double want = q * static_cast<double>(count) + 0.5;
  std::uint64_t target = static_cast<std::uint64_t>(want);
  if (target < 1) target = 1;
  if (target > count) target = count;
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += buckets[b];
    if (cum >= target) return std::min(bucket_upper(b), max);
  }
  return max;
}

}  // namespace varade::obs
