#include "varade/net/wire.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace varade::net {

namespace {

// Byte-assembled little-endian stores/loads: identical wire bytes on any
// host endianness, and no alignment requirements on the buffers.

void store_u32(std::uint8_t* dst, std::uint32_t v) {
  dst[0] = static_cast<std::uint8_t>(v);
  dst[1] = static_cast<std::uint8_t>(v >> 8);
  dst[2] = static_cast<std::uint8_t>(v >> 16);
  dst[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_u64(std::uint8_t* dst, std::uint64_t v) {
  store_u32(dst, static_cast<std::uint32_t>(v));
  store_u32(dst + 4, static_cast<std::uint32_t>(v >> 32));
}

void store_f32(std::uint8_t* dst, float v) { store_u32(dst, std::bit_cast<std::uint32_t>(v)); }

std::uint32_t load_u32(const std::uint8_t* src) {
  return static_cast<std::uint32_t>(src[0]) | (static_cast<std::uint32_t>(src[1]) << 8) |
         (static_cast<std::uint32_t>(src[2]) << 16) | (static_cast<std::uint32_t>(src[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* src) {
  return static_cast<std::uint64_t>(load_u32(src)) |
         (static_cast<std::uint64_t>(load_u32(src + 4)) << 32);
}

float load_f32(const std::uint8_t* src) { return std::bit_cast<float>(load_u32(src)); }

/// Reserves space for one frame and writes its header; returns the payload
/// write position.
std::uint8_t* begin_frame(std::vector<std::uint8_t>& out, FrameType type,
                          std::size_t payload_len) {
  check(payload_len <= kMaxPayload,
        "net: frame payload of " + std::to_string(payload_len) + " bytes exceeds the " +
            std::to_string(kMaxPayload) + "-byte cap");
  const std::size_t base = out.size();
  out.resize(base + kHeaderSize + payload_len);
  std::uint8_t* p = out.data() + base;
  p[0] = kMagic;
  p[1] = kWireVersion;
  p[2] = static_cast<std::uint8_t>(type);
  p[3] = 0;
  store_u32(p + 4, static_cast<std::uint32_t>(payload_len));
  return p + kHeaderSize;
}

void require_type(const Frame& frame, FrameType expected) {
  if (frame.type != expected)
    fail("net: expected ", to_string(expected), " frame, got ", to_string(frame.type));
}

void require_size(const Frame& frame, std::size_t expected) {
  if (frame.payload.size() != expected)
    fail("net: ", to_string(frame.type), " frame payload is ", frame.payload.size(),
         " bytes, expected ", expected);
}

/// HELLO's "apply the daemon default" policy byte.
constexpr std::uint8_t kDefaultPolicyByte = 255;

serve::BackpressurePolicy decode_policy_byte(std::uint8_t byte, const char* where) {
  switch (byte) {
    case 0: return serve::BackpressurePolicy::Block;
    case 1: return serve::BackpressurePolicy::DropOldest;
    case 2: return serve::BackpressurePolicy::Reject;
    default: fail("net: invalid backpressure policy byte ", static_cast<int>(byte), " in ",
                  where, " frame");
  }
}

std::uint8_t encode_policy_byte(serve::BackpressurePolicy policy) {
  switch (policy) {
    case serve::BackpressurePolicy::Block: return 0;
    case serve::BackpressurePolicy::DropOldest: return 1;
    case serve::BackpressurePolicy::Reject: return 2;
  }
  fail("net: unrepresentable backpressure policy");
}

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::Hello: return "HELLO";
    case FrameType::Welcome: return "WELCOME";
    case FrameType::Sample: return "SAMPLE";
    case FrameType::Score: return "SCORE";
    case FrameType::Alarm: return "ALARM";
    case FrameType::Nack: return "NACK";
    case FrameType::StatsRequest: return "STATS_REQUEST";
    case FrameType::StatsReply: return "STATS_REPLY";
    case FrameType::Shutdown: return "SHUTDOWN";
    case FrameType::Goodbye: return "GOODBYE";
    case FrameType::WireError: return "WIRE_ERROR";
    case FrameType::SampleBatch: return "SAMPLE_BATCH";
  }
  return "UNKNOWN";
}

const char* to_string(NackReason reason) {
  switch (reason) {
    case NackReason::Backpressure: return "Backpressure";
    case NackReason::StreamBusy: return "StreamBusy";
    case NackReason::MalformedSample: return "MalformedSample";
  }
  return "UNKNOWN";
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type, const std::uint8_t* payload,
                  std::size_t payload_len) {
  std::uint8_t* p = begin_frame(out, type, payload_len);
  if (payload_len > 0) std::memcpy(p, payload, payload_len);
}

void append_hello(std::vector<std::uint8_t>& out,
                  std::optional<serve::BackpressurePolicy> policy, std::uint8_t features) {
  std::uint8_t* p = begin_frame(out, FrameType::Hello, features != 0 ? 2 : 1);
  p[0] = policy ? encode_policy_byte(*policy) : kDefaultPolicyByte;
  if (features != 0) p[1] = features;
}

void append_welcome(std::vector<std::uint8_t>& out, const Welcome& welcome) {
  std::uint8_t* p = begin_frame(out, FrameType::Welcome, welcome.features != 0 ? 14 : 13);
  store_u32(p, static_cast<std::uint32_t>(welcome.n_streams));
  store_u32(p + 4, static_cast<std::uint32_t>(welcome.n_channels));
  store_f32(p + 8, welcome.threshold);
  p[12] = encode_policy_byte(welcome.policy);
  if (welcome.features != 0) p[13] = welcome.features;
}

void append_sample(std::vector<std::uint8_t>& out, Index stream, std::uint64_t seq,
                   const float* values, Index n_channels) {
  std::uint8_t* p =
      begin_frame(out, FrameType::Sample, 12 + 4 * static_cast<std::size_t>(n_channels));
  store_u32(p, static_cast<std::uint32_t>(stream));
  store_u64(p + 4, seq);
  for (Index c = 0; c < n_channels; ++c) store_f32(p + 12 + 4 * c, values[c]);
}

void append_sample_batch(std::vector<std::uint8_t>& out, Index stream, std::uint64_t base_seq,
                         const float* values, Index count, Index n_channels) {
  check(count >= 1 && static_cast<std::uint32_t>(count) <= kMaxBatchSamples,
        "net: SAMPLE_BATCH count " + std::to_string(count) + " outside [1, " +
            std::to_string(kMaxBatchSamples) + "]");
  const std::size_t floats = static_cast<std::size_t>(count) * static_cast<std::size_t>(n_channels);
  std::uint8_t* p = begin_frame(out, FrameType::SampleBatch, 16 + 4 * floats);
  store_u32(p, static_cast<std::uint32_t>(stream));
  store_u64(p + 4, base_seq);
  store_u32(p + 12, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < floats; ++i) store_f32(p + 16 + 4 * i, values[i]);
}

void append_score(std::vector<std::uint8_t>& out, Index stream, std::uint64_t sample,
                  float score) {
  std::uint8_t* p = begin_frame(out, FrameType::Score, 16);
  store_u32(p, static_cast<std::uint32_t>(stream));
  store_u64(p + 4, sample);
  store_f32(p + 12, score);
}

void append_alarm(std::vector<std::uint8_t>& out, const AlarmData& alarm) {
  std::uint8_t* p = begin_frame(out, FrameType::Alarm, 25);
  store_u32(p, static_cast<std::uint32_t>(alarm.stream));
  store_u64(p + 4, alarm.onset_sample);
  store_u64(p + 12, alarm.last_sample);
  store_f32(p + 20, alarm.peak_score);
  p[24] = alarm.raised ? 1 : 0;
}

void append_nack(std::vector<std::uint8_t>& out, const NackData& nack) {
  std::uint8_t* p = begin_frame(out, FrameType::Nack, 14);
  store_u32(p, static_cast<std::uint32_t>(nack.stream));
  store_u64(p + 4, nack.seq);
  p[12] = static_cast<std::uint8_t>(nack.result);
  p[13] = static_cast<std::uint8_t>(nack.reason);
}

void append_stats_request(std::vector<std::uint8_t>& out) {
  begin_frame(out, FrameType::StatsRequest, 0);
}

void append_stats_reply(std::vector<std::uint8_t>& out, const WireStats& stats) {
  std::uint8_t* p = begin_frame(out, FrameType::StatsReply, 108);
  store_u64(p, stats.pushed);
  store_u64(p + 8, stats.dropped);
  store_u64(p + 16, stats.rejected);
  store_u64(p + 24, stats.rounds);
  store_u64(p + 32, stats.naps);
  store_u64(p + 40, stats.scored);
  store_u64(p + 48, stats.round_p50_ns);
  store_u64(p + 56, stats.round_p95_ns);
  store_u64(p + 64, stats.round_p99_ns);
  store_u64(p + 72, stats.push_to_score_p50_ns);
  store_u64(p + 80, stats.push_to_score_p95_ns);
  store_u64(p + 88, stats.push_to_score_p99_ns);
  store_u32(p + 96, static_cast<std::uint32_t>(stats.n_streams));
  store_u32(p + 100, static_cast<std::uint32_t>(stats.n_shards));
  store_u32(p + 104, static_cast<std::uint32_t>(stats.n_connections));
}

void append_shutdown(std::vector<std::uint8_t>& out) {
  begin_frame(out, FrameType::Shutdown, 0);
}

void append_goodbye(std::vector<std::uint8_t>& out) { begin_frame(out, FrameType::Goodbye, 0); }

void append_wire_error(std::vector<std::uint8_t>& out, const std::string& message) {
  // Truncate rather than throw: this frame is the error path itself.
  const std::size_t n = std::min<std::size_t>(message.size(), kMaxPayload);
  append_frame(out, FrameType::WireError,
               reinterpret_cast<const std::uint8_t*>(message.data()), n);
}

HelloData decode_hello(const Frame& frame) {
  require_type(frame, FrameType::Hello);
  if (frame.payload.size() != 1 && frame.payload.size() != 2)
    fail("net: HELLO frame payload is ", frame.payload.size(), " bytes, expected 1 or 2");
  HelloData h;
  if (frame.payload[0] != kDefaultPolicyByte)
    h.policy = decode_policy_byte(frame.payload[0], "HELLO");
  if (frame.payload.size() == 2) {
    h.features = frame.payload[1];
    if ((h.features & ~(kFeatureSampleBatch | kFeatureShm)) != 0)
      fail("net: unknown feature bits ", static_cast<int>(h.features), " in HELLO frame");
  }
  return h;
}

Welcome decode_welcome(const Frame& frame) {
  require_type(frame, FrameType::Welcome);
  if (frame.payload.size() != 13 && frame.payload.size() != 14)
    fail("net: WELCOME frame payload is ", frame.payload.size(), " bytes, expected 13 or 14");
  const std::uint8_t* p = frame.payload.data();
  Welcome w;
  w.n_streams = static_cast<Index>(load_u32(p));
  w.n_channels = static_cast<Index>(load_u32(p + 4));
  w.threshold = load_f32(p + 8);
  w.policy = decode_policy_byte(p[12], "WELCOME");
  if (frame.payload.size() == 14) {
    w.features = p[13];
    if ((w.features & ~(kFeatureSampleBatch | kFeatureShm)) != 0)
      fail("net: unknown feature bits ", static_cast<int>(w.features), " in WELCOME frame");
  }
  check(w.n_streams >= 1, "net: WELCOME frame announces zero streams");
  check(w.n_channels >= 1, "net: WELCOME frame announces zero channels");
  return w;
}

void decode_sample(const Frame& frame, Index n_channels, SampleData& out) {
  require_type(frame, FrameType::Sample);
  require_size(frame, 12 + 4 * static_cast<std::size_t>(n_channels));
  const std::uint8_t* p = frame.payload.data();
  out.stream = static_cast<Index>(load_u32(p));
  out.seq = load_u64(p + 4);
  out.values.resize(static_cast<std::size_t>(n_channels));
  for (Index c = 0; c < n_channels; ++c) {
    const float v = load_f32(p + 12 + 4 * c);
    if (!std::isfinite(v))
      fail("net: non-finite value in SAMPLE frame (stream ", out.stream, ", channel ", c, ")");
    out.values[static_cast<std::size_t>(c)] = v;
  }
}

void decode_sample_batch(const Frame& frame, Index n_channels, SampleBatchData& out) {
  require_type(frame, FrameType::SampleBatch);
  if (frame.payload.size() < 16)
    fail("net: SAMPLE_BATCH frame payload is ", frame.payload.size(),
         " bytes, shorter than the 16-byte batch header");
  const std::uint8_t* p = frame.payload.data();
  const std::uint32_t count = load_u32(p + 12);
  if (count == 0) fail("net: SAMPLE_BATCH frame carries zero samples");
  if (count > kMaxBatchSamples)
    fail("net: SAMPLE_BATCH count ", count, " exceeds the ", kMaxBatchSamples, "-sample cap");
  const std::size_t expected =
      16 + 4 * static_cast<std::size_t>(count) * static_cast<std::size_t>(n_channels);
  if (frame.payload.size() != expected)
    fail("net: SAMPLE_BATCH frame payload is ", frame.payload.size(), " bytes, expected ",
         expected, " for ", count, " samples of ", n_channels, " channels");
  out.stream = static_cast<Index>(load_u32(p));
  out.base_seq = load_u64(p + 4);
  out.count = static_cast<Index>(count);
  out.bad_channel = -1;
  out.values.resize(static_cast<std::size_t>(count) * static_cast<std::size_t>(n_channels));
  Index valid = 0;
  for (Index i = 0; i < out.count && out.bad_channel < 0; ++i) {
    const std::uint8_t* row = p + 16 + 4 * static_cast<std::size_t>(i) *
                                       static_cast<std::size_t>(n_channels);
    for (Index c = 0; c < n_channels; ++c) {
      const float v = load_f32(row + 4 * c);
      if (!std::isfinite(v)) {
        out.bad_channel = c;
        break;
      }
      out.values[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_channels) +
                 static_cast<std::size_t>(c)] = v;
    }
    if (out.bad_channel < 0) valid = i + 1;
  }
  out.valid = valid;
  out.values.resize(static_cast<std::size_t>(valid) * static_cast<std::size_t>(n_channels));
}

ScoreData decode_score(const Frame& frame) {
  require_type(frame, FrameType::Score);
  require_size(frame, 16);
  const std::uint8_t* p = frame.payload.data();
  return {static_cast<Index>(load_u32(p)), load_u64(p + 4), load_f32(p + 12)};
}

AlarmData decode_alarm(const Frame& frame) {
  require_type(frame, FrameType::Alarm);
  require_size(frame, 25);
  const std::uint8_t* p = frame.payload.data();
  AlarmData a;
  a.stream = static_cast<Index>(load_u32(p));
  a.onset_sample = load_u64(p + 4);
  a.last_sample = load_u64(p + 12);
  a.peak_score = load_f32(p + 20);
  if (p[24] > 1) fail("net: invalid raised byte ", static_cast<int>(p[24]), " in ALARM frame");
  a.raised = p[24] == 1;
  return a;
}

NackData decode_nack(const Frame& frame) {
  require_type(frame, FrameType::Nack);
  require_size(frame, 14);
  const std::uint8_t* p = frame.payload.data();
  NackData n;
  n.stream = static_cast<Index>(load_u32(p));
  n.seq = load_u64(p + 4);
  if (p[12] > static_cast<std::uint8_t>(serve::PushResult::Rejected))
    fail("net: invalid PushResult byte ", static_cast<int>(p[12]), " in NACK frame");
  n.result = static_cast<serve::PushResult>(p[12]);
  if (p[13] > static_cast<std::uint8_t>(NackReason::MalformedSample))
    fail("net: invalid NackReason byte ", static_cast<int>(p[13]), " in NACK frame");
  n.reason = static_cast<NackReason>(p[13]);
  return n;
}

WireStats decode_stats_reply(const Frame& frame) {
  require_type(frame, FrameType::StatsReply);
  require_size(frame, 108);
  const std::uint8_t* p = frame.payload.data();
  WireStats s;
  s.pushed = load_u64(p);
  s.dropped = load_u64(p + 8);
  s.rejected = load_u64(p + 16);
  s.rounds = load_u64(p + 24);
  s.naps = load_u64(p + 32);
  s.scored = load_u64(p + 40);
  s.round_p50_ns = load_u64(p + 48);
  s.round_p95_ns = load_u64(p + 56);
  s.round_p99_ns = load_u64(p + 64);
  s.push_to_score_p50_ns = load_u64(p + 72);
  s.push_to_score_p95_ns = load_u64(p + 80);
  s.push_to_score_p99_ns = load_u64(p + 88);
  s.n_streams = static_cast<Index>(load_u32(p + 96));
  s.n_shards = static_cast<Index>(load_u32(p + 100));
  s.n_connections = static_cast<Index>(load_u32(p + 104));
  return s;
}

std::string decode_wire_error(const Frame& frame) {
  require_type(frame, FrameType::WireError);
  return std::string(reinterpret_cast<const char*>(frame.payload.data()),
                     frame.payload.size());
}

void FrameReader::validate_header() {
  const std::uint8_t* p = buffer_.data() + consumed_;
  if (p[0] != kMagic) {
    char hex[8];
    std::snprintf(hex, sizeof(hex), "0x%02x", p[0]);
    fail("net: bad magic byte ", hex, " (expected 0xda)");
  }
  if (p[1] != kWireVersion)
    fail("net: unsupported wire version ", static_cast<int>(p[1]), " (expected ",
         static_cast<int>(kWireVersion), ")");
  if (p[2] < static_cast<std::uint8_t>(FrameType::Hello) ||
      p[2] > static_cast<std::uint8_t>(FrameType::SampleBatch))
    fail("net: unknown frame type ", static_cast<int>(p[2]));
  if (p[3] != 0) fail("net: nonzero reserved header byte ", static_cast<int>(p[3]));
  const std::uint32_t len = load_u32(p + 4);
  if (len > kMaxPayload)
    fail("net: oversized frame length ", len, " (cap ", kMaxPayload, " bytes)");
  header_valid_ = true;
}

void FrameReader::feed(const void* bytes, std::size_t n) {
  if (!poisoned_message_.empty()) throw Error(poisoned_message_);
  // Compact before growing: consumed bytes at the front are dead weight the
  // next memmove-free append would otherwise copy forever.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const auto* src = static_cast<const std::uint8_t*>(bytes);
  buffer_.insert(buffer_.end(), src, src + n);
  // Validate the header eagerly so garbage is named before its (possibly
  // never-arriving) payload. A failure poisons the reader: framing is gone.
  if (!header_valid_ && buffered() >= kHeaderSize) {
    try {
      validate_header();
    } catch (const Error& e) {
      poisoned_message_ = e.what();
      throw;
    }
  }
}

bool FrameReader::next(Frame& out) {
  if (!poisoned_message_.empty()) throw Error(poisoned_message_);
  if (buffered() < kHeaderSize) return false;
  // The front header is validated by feed() when it first completes; after a
  // frame is consumed the *next* header is validated here, so a well-formed
  // frame followed by garbage is still delivered before the error fires.
  if (!header_valid_) {
    try {
      validate_header();
    } catch (const Error& e) {
      poisoned_message_ = e.what();
      throw;
    }
  }
  const std::uint8_t* p = buffer_.data() + consumed_;
  const std::uint32_t len = load_u32(p + 4);
  if (buffered() < kHeaderSize + len) return false;
  out.type = static_cast<FrameType>(p[2]);
  out.payload.assign(p + kHeaderSize, p + kHeaderSize + len);
  consumed_ += kHeaderSize + len;
  header_valid_ = false;
  return true;
}

}  // namespace varade::net
