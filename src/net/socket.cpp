#include "varade/net/socket.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace varade::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  fail("net: ", what, ": ", std::strerror(errno));
}

/// Resolves host:port into a sockaddr_in (numeric or named hosts).
sockaddr_in resolve_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr)
    fail("net: cannot resolve host \"", host, "\": ", gai_strerror(rc));
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return addr;
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  check(!path.empty(), "net: empty unix socket path");
  check(path.size() < sizeof(addr.sun_path),
        "net: unix socket path \"" + path + "\" exceeds " +
            std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  std::string rest = spec;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::Unix;
    ep.path = spec.substr(5);
    check(!ep.path.empty(), "net: endpoint \"" + spec + "\" has an empty unix path");
    return ep;
  }
  if (spec.rfind("shm:", 0) == 0) {
    ep.kind = Endpoint::Kind::Shm;
    ep.path = spec.substr(4);
    check(!ep.path.empty(), "net: endpoint \"" + spec + "\" has an empty shm bootstrap path");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) rest = spec.substr(4);
  const std::size_t colon = rest.rfind(':');
  check(colon != std::string::npos && colon > 0,
        "net: endpoint \"" + spec + "\" is not unix:PATH, shm:PATH, or tcp:HOST:PORT");
  ep.kind = Endpoint::Kind::Tcp;
  ep.host = rest.substr(0, colon);
  const std::string port_str = rest.substr(colon + 1);
  check(!port_str.empty() && port_str.find_first_not_of("0123456789") == std::string::npos,
        "net: endpoint \"" + spec + "\" has a non-numeric port");
  // Port 0 is legal on the listen side only (bind to an ephemeral port, as
  // --metrics tcp:HOST:0 asks for); connect_endpoint() rejects it.
  const long port = std::strtol(port_str.c_str(), nullptr, 10);
  check(port >= 0 && port <= 65535,
        "net: endpoint \"" + spec + "\" port out of range [0, 65535]");
  ep.port = static_cast<int>(port);
  return ep;
}

std::string to_string(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::Unix) return "unix:" + endpoint.path;
  if (endpoint.kind == Endpoint::Kind::Shm) return "shm:" + endpoint.path;
  return "tcp:" + endpoint.host + ":" + std::to_string(endpoint.port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(const std::string& host, int& port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) fail_errno("socket(AF_INET)");
  const int one = 1;
  (void)setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = resolve_tcp(host, port);
  if (bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    fail_errno("bind(tcp:" + host + ":" + std::to_string(port) + ")");
  if (listen(sock.fd(), backlog) != 0) fail_errno("listen");
  if (port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0)
      fail_errno("getsockname");
    port = static_cast<int>(ntohs(bound.sin_port));
  }
  return sock;
}

Socket unix_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_address(path);
  (void)unlink(path.c_str());
  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) fail_errno("socket(AF_UNIX)");
  if (bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    fail_errno("bind(unix:" + path + ")");
  if (listen(sock.fd(), backlog) != 0) fail_errno("listen");
  return sock;
}

Socket tcp_connect(const std::string& host, int port) {
  check(port >= 1, "net: cannot connect to tcp:" + host + ":" + std::to_string(port) +
                       " (port 0 is listen-side only)");
  const sockaddr_in addr = resolve_tcp(host, port);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) fail_errno("socket(AF_INET)");
  if (connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    fail_errno("connect(tcp:" + host + ":" + std::to_string(port) + ")");
  const int one = 1;
  (void)setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Socket unix_connect(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) fail_errno("socket(AF_UNIX)");
  if (connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    fail_errno("connect(unix:" + path + ")");
  return sock;
}

Socket connect_endpoint(const Endpoint& endpoint) {
  // A shm endpoint's socket is its bootstrap Unix socket; the rings are
  // negotiated over it afterwards (Client does that part).
  if (endpoint.kind != Endpoint::Kind::Tcp) return unix_connect(endpoint.path);
  return tcp_connect(endpoint.host, endpoint.port);
}

void set_nonblocking(int fd, bool on) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, want) != 0) fail_errno("fcntl(F_SETFL)");
}

void send_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Blocking callers only reach this on a nonblocking fd; wait for
        // writability instead of spinning.
        pollfd pfd{fd, POLLOUT, 0};
        (void)::poll(&pfd, 1, 100);
        continue;
      }
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(rc);
  }
}

long read_some(int fd, void* buf, std::size_t n) {
  for (;;) {
    const ssize_t rc = ::recv(fd, buf, n, 0);
    if (rc >= 0) return static_cast<long>(rc);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == ECONNRESET) return 0;  // peer vanished: treat as EOF
    fail_errno("recv");
  }
}

void send_with_fds(int fd, const void* data, std::size_t n, const int* fds, int n_fds) {
  check(n > 0, "net: send_with_fds needs at least one byte to carry the fds");
  check(n_fds >= 1 && n_fds <= 8, "net: send_with_fds fd count out of range [1, 8]");
  const auto* p = static_cast<const std::uint8_t*>(data);

  // The descriptors ride the first byte; the rest of the bytes follow plain.
  alignas(cmsghdr) char control[CMSG_SPACE(8 * sizeof(int))];
  std::memset(control, 0, sizeof(control));
  iovec iov{};
  iov.iov_base = const_cast<std::uint8_t*>(p);
  iov.iov_len = 1;
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = CMSG_SPACE(static_cast<std::size_t>(n_fds) * sizeof(int));
  cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(static_cast<std::size_t>(n_fds) * sizeof(int));
  std::memcpy(CMSG_DATA(cmsg), fds, static_cast<std::size_t>(n_fds) * sizeof(int));
  for (;;) {
    const ssize_t rc = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (rc >= 1) break;
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 100);
      continue;
    }
    fail_errno("sendmsg(SCM_RIGHTS)");
  }
  if (n > 1) send_all(fd, p + 1, n - 1);
}

long recv_some_fds(int fd, void* buf, std::size_t n, std::vector<int>& out_fds) {
  alignas(cmsghdr) char control[CMSG_SPACE(8 * sizeof(int))];
  iovec iov{};
  iov.iov_base = buf;
  iov.iov_len = n;
  for (;;) {
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);
    const ssize_t rc = ::recvmsg(fd, &msg, MSG_CMSG_CLOEXEC);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
      if (errno == ECONNRESET) return 0;
      fail_errno("recvmsg");
    }
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level != SOL_SOCKET || cmsg->cmsg_type != SCM_RIGHTS) continue;
      const std::size_t bytes = cmsg->cmsg_len - CMSG_LEN(0);
      const std::size_t count = bytes / sizeof(int);
      std::vector<int> fds(count);
      std::memcpy(fds.data(), CMSG_DATA(cmsg), count * sizeof(int));
      out_fds.insert(out_fds.end(), fds.begin(), fds.end());
    }
    return static_cast<long>(rc);
  }
}

bool wait_readable(int fd, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int remaining =
        timeout_ms < 0 ? -1
                       : static_cast<int>(std::max<long long>(
                             0, std::chrono::duration_cast<std::chrono::milliseconds>(
                                    deadline - Clock::now())
                                    .count()));
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) fail_errno("poll");
  }
}

}  // namespace varade::net
