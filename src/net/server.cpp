#include "varade/net/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "varade/obs/prometheus.hpp"

namespace varade::net {

namespace {

/// Hard ceiling on the orderly-shutdown flush: a client that stops reading
/// must not wedge the daemon forever.
constexpr std::chrono::seconds kShutdownFlushDeadline{5};

/// A metrics scrape is one short GET; anything bigger is not a scraper.
constexpr std::size_t kMaxMetricsRequest = 8192;
/// Concurrent scrapes are capped independently of wire connections so a
/// scraper storm cannot crowd out producers.
constexpr std::size_t kMaxMetricsConns = 16;

}  // namespace

Server::Server(core::AnomalyDetector& detector, const data::MinMaxNormalizer& normalizer,
               ServerConfig config)
    : detector_(&detector),
      config_(std::move(config)),
      runtime_(detector, normalizer, config_.runtime) {
  check(config_.n_streams >= 1, "Server needs n_streams >= 1");
  check(config_.n_streams <= static_cast<Index>(0xFFFFFFFFU),
        "net: n_streams exceeds the wire's u32 stream id space");
  check(config_.tcp_port >= -1 && config_.tcp_port <= 65535,
        "net: tcp_port out of range [-1, 65535]");
  check(config_.tcp_port >= 0 || !config_.uds_path.empty() || !config_.shm_path.empty(),
        "Server needs at least one listener (tcp_port >= 0, a uds_path, or a shm_path)");
  if (!config_.shm_path.empty()) {
    check(config_.shm_ring_bytes >= kShmMinRingBytes &&
              config_.shm_ring_bytes <= kShmMaxRingBytes &&
              (config_.shm_ring_bytes & (config_.shm_ring_bytes - 1)) == 0,
          "net: shm_ring_bytes must be a power of two in [" +
              std::to_string(kShmMinRingBytes) + ", " + std::to_string(kShmMaxRingBytes) + "]");
  }
  check(config_.max_connections >= 1, "net: max_connections must be >= 1");
  check(config_.poll_interval_ms >= 1, "net: poll_interval_ms must be >= 1");
  check(config_.metrics_port >= -1 && config_.metrics_port <= 65535,
        "net: metrics_port out of range [-1, 65535]");

  runtime_.add_streams(config_.n_streams);
  runtime_.set_threshold(config_.threshold);
  window_ = detector.context_window();
  n_channels_ = normalizer.n_channels();
  check(n_channels_ >= 1, "net: normalizer reports zero channels");

  streams_.reserve(static_cast<std::size_t>(config_.n_streams));
  for (Index s = 0; s < config_.n_streams; ++s) {
    StreamMirror m;
    m.tracker = core::AlarmTracker(config_.runtime.engine.monitor);
    streams_.push_back(std::move(m));
  }

  if (config_.tcp_port >= 0) {
    tcp_port_ = config_.tcp_port;
    tcp_listener_ = tcp_listen(config_.tcp_host, tcp_port_, config_.listen_backlog);
    set_nonblocking(tcp_listener_.fd(), true);
  }
  if (!config_.uds_path.empty()) {
    uds_listener_ = unix_listen(config_.uds_path, config_.listen_backlog);
    set_nonblocking(uds_listener_.fd(), true);
  }
  if (!config_.shm_path.empty()) {
    shm_listener_ = unix_listen(config_.shm_path, config_.listen_backlog);
    set_nonblocking(shm_listener_.fd(), true);
  }
  if (config_.metrics_port >= 0) {
    metrics_port_ = config_.metrics_port;
    metrics_listener_ = tcp_listen(config_.metrics_host, metrics_port_, config_.listen_backlog);
    set_nonblocking(metrics_listener_.fd(), true);
  }
  if (pipe(stop_pipe_) != 0) fail("net: pipe(): ", std::strerror(errno));
  set_nonblocking(stop_pipe_[0], true);
  set_nonblocking(stop_pipe_[1], true);
}

Server::~Server() {
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
  if (!config_.uds_path.empty()) (void)unlink(config_.uds_path.c_str());
  if (!config_.shm_path.empty()) (void)unlink(config_.shm_path.c_str());
}

void Server::request_stop() {
  // Async-signal-safe: one byte down the self-pipe wakes the poll loop.
  const char byte = 's';
  if (stop_pipe_[1] >= 0) {
    const ssize_t rc = ::write(stop_pipe_[1], &byte, 1);
    (void)rc;  // a full pipe already guarantees a pending wakeup
  }
}

void Server::release_streams(Connection& conn) {
  for (StreamMirror& m : streams_)
    if (m.owner == &conn) m.owner = nullptr;
}

void Server::protocol_error(Connection& conn, const std::string& message) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  append_wire_error(conn.out, message);
  conn.closing = true;
}

void Server::handle_sample(Connection& conn, const Frame& frame) {
  decode_sample(frame, n_channels_, conn.sample);  // throws on size/NaN -> WIRE_ERROR
  const auto stream = static_cast<Index>(conn.sample.stream);
  if (stream >= config_.n_streams) {
    protocol_error(conn, "net: " + serve::detail::stream_range_message(stream, config_.n_streams));
    return;
  }
  StreamMirror& mirror = streams_[static_cast<std::size_t>(stream)];
  if (mirror.owner == nullptr) mirror.owner = &conn;  // first-push-wins ownership
  if (mirror.owner != &conn) {
    NackData nack;
    nack.stream = conn.sample.stream;
    nack.seq = conn.sample.seq;
    nack.result = serve::PushResult::Rejected;
    nack.reason = NackReason::StreamBusy;
    append_nack(conn.out, nack);
    frames_nacked_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const serve::PushResult result =
      runtime_.push(stream, conn.sample.values.data(),
                    static_cast<Index>(conn.sample.values.size()), conn.policy);
  if (result == serve::PushResult::Rejected) {
    NackData nack;
    nack.stream = conn.sample.stream;
    nack.seq = conn.sample.seq;
    nack.result = result;
    nack.reason = NackReason::Backpressure;
    append_nack(conn.out, nack);
    frames_nacked_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::handle_sample_batch(Connection& conn, const Frame& frame) {
  if ((conn.features & kFeatureSampleBatch) == 0) {
    protocol_error(conn, "net: SAMPLE_BATCH frame without the feature negotiated in HELLO");
    return;
  }
  decode_sample_batch(frame, n_channels_, conn.batch);  // structural throws -> WIRE_ERROR
  obs::count(batch_frames_);
  obs::count(batch_samples_, static_cast<std::uint64_t>(conn.batch.count));
  const Index stream = conn.batch.stream;
  if (stream >= config_.n_streams) {
    protocol_error(conn, "net: " + serve::detail::stream_range_message(stream, config_.n_streams));
    return;
  }
  StreamMirror& mirror = streams_[static_cast<std::size_t>(stream)];
  if (mirror.owner == nullptr) mirror.owner = &conn;  // first-push-wins ownership
  if (mirror.owner != &conn) {
    NackData nack;
    nack.stream = stream;
    nack.seq = conn.batch.base_seq;
    nack.result = serve::PushResult::Rejected;
    nack.reason = NackReason::StreamBusy;
    append_nack(conn.out, nack);
    frames_nacked_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The valid prefix enters the ring sample by sample, exactly as unbatched
  // SAMPLE frames would — the runtime (and therefore every score) cannot
  // tell the difference.
  for (Index i = 0; i < conn.batch.valid; ++i) {
    const serve::PushResult result = runtime_.push(
        stream, conn.batch.values.data() + static_cast<std::size_t>(i) * n_channels_,
        n_channels_, conn.policy);
    if (result == serve::PushResult::Rejected) {
      NackData nack;
      nack.stream = stream;
      nack.seq = conn.batch.base_seq + static_cast<std::uint64_t>(i);
      nack.result = result;
      nack.reason = NackReason::Backpressure;
      append_nack(conn.out, nack);
      frames_nacked_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (conn.batch.valid < conn.batch.count) {
    // A non-finite value truncated the batch: name the offending in-batch
    // sample and drop only the tail — the connection survives.
    NackData nack;
    nack.stream = stream;
    nack.seq = conn.batch.base_seq + static_cast<std::uint64_t>(conn.batch.valid);
    nack.result = serve::PushResult::Rejected;
    nack.reason = NackReason::MalformedSample;
    append_nack(conn.out, nack);
    frames_nacked_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::handle_hello(Connection& conn, const Frame& frame) {
  const HelloData hello = decode_hello(frame);  // throws -> WIRE_ERROR
  conn.policy = hello.policy.value_or(config_.runtime.backpressure);
  conn.helloed = true;
  // Grant SAMPLE_BATCH to anyone who asks; the shm rings only on the shm
  // bootstrap listener (a request elsewhere is simply not granted, and the
  // client sees that in the WELCOME's feature echo).
  std::uint8_t granted = hello.features & kFeatureSampleBatch;
  if (conn.shm_bootstrap && (hello.features & kFeatureShm) != 0) granted |= kFeatureShm;
  conn.features = granted;
  Welcome welcome;
  welcome.n_streams = config_.n_streams;
  welcome.n_channels = n_channels_;
  welcome.threshold = runtime_.threshold();
  welcome.policy = conn.policy;
  welcome.features = granted;
  if ((granted & kFeatureShm) != 0) {
    // The WELCOME must carry the segment + doorbell fds, so it bypasses
    // conn.out and goes straight out with sendmsg(SCM_RIGHTS). From here on
    // the socket is only the liveness signal; frames travel in the rings.
    conn.shm = ShmSession::create(config_.shm_ring_bytes);
    std::vector<std::uint8_t> bytes;
    append_welcome(bytes, welcome);
    const int fds[3] = {conn.shm.seg_fd(), conn.shm.c2s_doorbell(), conn.shm.s2c_doorbell()};
    send_with_fds(conn.sock.fd(), bytes.data(), bytes.size(), fds, 3);
    conn.shm.close_seg_fd();
    conn.shm_active = true;
    return;
  }
  append_welcome(conn.out, welcome);
}

void Server::handle_frame(Connection& conn, const Frame& frame) {
  if (!conn.helloed) {
    if (frame.type != FrameType::Hello) {
      protocol_error(conn, std::string("net: expected HELLO as the first frame, got ") +
                               net::to_string(frame.type));
      return;
    }
    handle_hello(conn, frame);
    return;
  }
  switch (frame.type) {
    case FrameType::Hello:
      protocol_error(conn, "net: duplicate HELLO frame");
      return;
    case FrameType::Sample:
      handle_sample(conn, frame);
      return;
    case FrameType::SampleBatch:
      handle_sample_batch(conn, frame);
      return;
    case FrameType::StatsRequest: {
      const serve::RuntimeStats rs = runtime_.stats();
      const serve::RuntimeTelemetry rt = runtime_.telemetry();
      WireStats ws;
      ws.pushed = static_cast<std::uint64_t>(rs.pushed);
      ws.dropped = static_cast<std::uint64_t>(rs.dropped);
      ws.rejected = static_cast<std::uint64_t>(rs.rejected);
      ws.rounds = static_cast<std::uint64_t>(rs.rounds);
      ws.naps = static_cast<std::uint64_t>(rs.naps);
      ws.scored = static_cast<std::uint64_t>(rs.scored);
      ws.round_p50_ns = static_cast<std::uint64_t>(rt.total.round.quantile(0.50));
      ws.round_p95_ns = static_cast<std::uint64_t>(rt.total.round.quantile(0.95));
      ws.round_p99_ns = static_cast<std::uint64_t>(rt.total.round.quantile(0.99));
      ws.push_to_score_p50_ns =
          static_cast<std::uint64_t>(rt.total.engine.push_to_score.quantile(0.50));
      ws.push_to_score_p95_ns =
          static_cast<std::uint64_t>(rt.total.engine.push_to_score.quantile(0.95));
      ws.push_to_score_p99_ns =
          static_cast<std::uint64_t>(rt.total.engine.push_to_score.quantile(0.99));
      ws.n_streams = config_.n_streams;
      ws.n_shards = runtime_.n_shards();
      ws.n_connections = static_cast<Index>(conns_.size());
      append_stats_reply(conn.out, ws);
      return;
    }
    case FrameType::Shutdown:
      begin_shutdown();
      return;
    case FrameType::Goodbye:
      conn.closing = true;
      return;
    default:
      protocol_error(conn, std::string("net: unexpected ") + net::to_string(frame.type) +
                               " frame from client");
      return;
  }
}

void Server::read_connection(Connection& conn) {
  std::uint8_t buf[65536];
  const std::int64_t t_read = obs::tick();
  long frames = 0;
  bool done = false;
  while (!done) {
    const long n = read_some(conn.sock.fd(), buf, sizeof(buf));
    if (n == -1) break;  // drained
    if (n == 0) {
      // Orderly (or abortive) peer close: pending output is moot.
      release_streams(conn);
      conn.sock.close();
      break;
    }
    try {
      conn.reader.feed(buf, static_cast<std::size_t>(n));
      Frame frame;
      while (conn.reader.next(frame)) {
        ++frames;
        handle_frame(conn, frame);
        if (conn.closing) {  // discard the rest of the read buffer
          done = true;
          break;
        }
      }
    } catch (const Error& e) {
      protocol_error(conn, e.what());
      break;
    }
    if (n < static_cast<long>(sizeof(buf))) break;  // socket very likely drained
  }
  // Decode+dispatch latency of the whole read batch (one clock pair per
  // readable socket, not per frame — the telemetry must stay cheaper than
  // what it measures).
  if (frames > 0) {
    obs::record_since(decode_hist_, t_read);
    obs::count(frames_decoded_, static_cast<std::uint64_t>(frames));
  }
}

void Server::read_shm_connection(Connection& conn) {
  const std::size_t depth = conn.shm.c2s().readable();
  if (depth == 0) return;
  obs::record_value(shm_ring_depth_hist_, static_cast<std::int64_t>(depth));
  std::uint8_t buf[65536];
  const std::int64_t t_read = obs::tick();
  long frames = 0;
  bool done = false;
  while (!done) {
    const std::size_t n = conn.shm.c2s().read_some(buf, sizeof(buf));
    if (n == 0) break;
    try {
      conn.reader.feed(buf, n);
      Frame frame;
      while (conn.reader.next(frame)) {
        ++frames;
        handle_frame(conn, frame);
        if (conn.closing) {  // discard the rest of the ring
          done = true;
          break;
        }
      }
    } catch (const Error& e) {
      protocol_error(conn, e.what());
      break;
    }
  }
  if (frames > 0) {
    obs::record_since(decode_hist_, t_read);
    obs::count(frames_decoded_, static_cast<std::uint64_t>(frames));
  }
}

void Server::write_shm_connection(Connection& conn) {
  obs::record_value(out_depth_hist_, static_cast<std::int64_t>(conn.out.size() - conn.out_off));
  while (conn.out_off < conn.out.size()) {
    bool bell = false;
    const std::size_t n = conn.shm.s2c().write_some(conn.out.data() + conn.out_off,
                                                    conn.out.size() - conn.out_off, bell);
    if (bell) {
      ShmSession::ring_doorbell(conn.shm.s2c_doorbell());
      obs::count(shm_doorbells_rung_);
    }
    if (n == 0) {
      obs::count(flush_stalls_);  // ring full: the client reads too slowly
      break;
    }
    conn.out_off += n;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off > 65536) {
    conn.out.erase(conn.out.begin(), conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_off));
    conn.out_off = 0;
  }
}

void Server::write_connection(Connection& conn) {
  obs::record_value(out_depth_hist_, static_cast<std::int64_t>(conn.out.size() - conn.out_off));
  while (conn.out_off < conn.out.size()) {
    const ssize_t rc = ::send(conn.sock.fd(), conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        obs::count(flush_stalls_);  // kernel buffer full: the client reads too slowly
        break;
      }
      release_streams(conn);  // peer is gone (EPIPE/ECONNRESET/...)
      conn.sock.close();
      return;
    }
    conn.out_off += static_cast<std::size_t>(rc);
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off > 65536) {
    conn.out.erase(conn.out.begin(), conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_off));
    conn.out_off = 0;
  }
}

std::string Server::metrics_text() const {
  const serve::RuntimeStats rs = runtime_.stats();
  const serve::RuntimeTelemetry rt = runtime_.telemetry();
  obs::PrometheusWriter w;

  // Runtime sample accounting (sums over every stream / shard).
  w.counter("varade_samples_pushed_total", "Samples accepted into stream rings.",
            static_cast<std::uint64_t>(rs.pushed));
  w.counter("varade_samples_dropped_total", "Samples evicted under the DropOldest policy.",
            static_cast<std::uint64_t>(rs.dropped));
  w.counter("varade_samples_rejected_total", "Pushes refused (Reject policy or closed intake).",
            static_cast<std::uint64_t>(rs.rejected));
  w.counter("varade_samples_scored_total", "Stream scores emitted by the runtime.",
            static_cast<std::uint64_t>(rs.scored));

  // Per-shard scorer counters.
  for (std::size_t s = 0; s < rs.shards.size(); ++s) {
    const serve::ShardStats& sh = rs.shards[s];
    const std::string label = "shard=\"" + std::to_string(s) + "\"";
    w.counter("varade_scorer_rounds_total", "Scoring rounds (drain + engine step) per shard.",
              static_cast<std::uint64_t>(sh.rounds), label);
  }
  for (std::size_t s = 0; s < rs.shards.size(); ++s) {
    const serve::ShardStats& sh = rs.shards[s];
    const std::string label = "shard=\"" + std::to_string(s) + "\"";
    w.counter("varade_scorer_naps_total", "Times the shard scorer went to sleep.",
              static_cast<std::uint64_t>(sh.naps), label);
  }
  for (std::size_t s = 0; s < rs.shards.size(); ++s) {
    const serve::ShardStats& sh = rs.shards[s];
    const std::string label = "shard=\"" + std::to_string(s) + "\"";
    w.counter("varade_scorer_scored_total", "Stream scores emitted per shard.",
              static_cast<std::uint64_t>(sh.scored), label);
  }

  // Scorer-loop latency (merged across shards; ns recorded, exposed as s).
  w.histogram("varade_scorer_round_seconds",
              "Productive scorer round: ring drain + engine step + emit.", rt.total.round);
  w.histogram("varade_ring_drain_seconds", "Ring-drain sweep of a productive round.",
              rt.total.drain);
  w.histogram("varade_result_emit_seconds", "Result-queue / callback hop per round.",
              rt.total.emit);
  w.histogram("varade_wake_to_drain_seconds",
              "Nap wake to the end of the next productive drain sweep.", rt.total.wake_to_drain);

  // Engine step phases (merged across shards).
  for (int p = 0; p < serve::kStepPhases; ++p) {
    const std::string label = std::string("phase=\"") + serve::kStepPhaseName[p] + "\"";
    w.histogram("varade_step_phase_seconds", "Engine step() time per pipeline phase.",
                rt.total.engine.phases[p], 1e-9, label);
  }
  w.histogram("varade_engine_step_seconds", "Whole engine step() call (productive rounds).",
              rt.total.engine.step);
  w.histogram("varade_push_to_score_seconds",
              "Sampled end-to-end latency from push() to the score being computed.",
              rt.total.engine.push_to_score);

  // Network front door.
  w.gauge("varade_net_connections", "Live wire-protocol connections.",
          static_cast<double>(conns_.size()));
  w.counter("varade_net_connections_accepted_total", "Wire-protocol connections accepted.",
            static_cast<std::uint64_t>(connections_accepted_.load(std::memory_order_relaxed)));
  w.counter("varade_net_frames_decoded_total", "Wire frames decoded and dispatched.",
            frames_decoded_.value());
  w.counter("varade_net_frames_nacked_total", "SAMPLE frames answered with a NACK.",
            static_cast<std::uint64_t>(frames_nacked_.load(std::memory_order_relaxed)));
  w.counter("varade_net_protocol_errors_total", "Connections killed for protocol violations.",
            static_cast<std::uint64_t>(protocol_errors_.load(std::memory_order_relaxed)));
  w.counter("varade_net_scores_unrouted_total",
            "Scores whose owning connection was gone (dropped, not sent).",
            static_cast<std::uint64_t>(scores_unrouted_.load(std::memory_order_relaxed)));
  w.counter("varade_net_flush_stalls_total",
            "Writes that hit a full kernel socket buffer with bytes pending.",
            flush_stalls_.value());
  w.counter("varade_net_metrics_scrapes_total", "GET /metrics requests served.",
            metrics_scrapes_.value());
  w.counter("varade_net_batch_frames_total", "SAMPLE_BATCH frames decoded and dispatched.",
            batch_frames_.value());
  w.counter("varade_net_batch_samples_total", "Samples carried by SAMPLE_BATCH frames.",
            batch_samples_.value());
  w.counter("varade_net_shm_doorbells_total",
            "Server-to-client doorbells rung (the client had declared itself asleep).",
            shm_doorbells_rung_.value());
  w.histogram("varade_net_frame_decode_seconds",
              "Frame decode + dispatch time per readable-socket batch.", decode_hist_.snapshot());
  w.histogram("varade_net_out_buffer_bytes", "Pending output bytes at each flush attempt.",
              out_depth_hist_.snapshot(), 1.0);
  w.histogram("varade_net_shm_ring_depth_bytes",
              "Client-to-server ring occupancy at each nonempty drain.",
              shm_ring_depth_hist_.snapshot(), 1.0);

  return w.text();
}

void Server::read_metrics(MetricsConn& conn) {
  char buf[4096];
  for (;;) {
    const long n = read_some(conn.sock.fd(), buf, sizeof(buf));
    if (n == -1) break;  // drained
    if (n == 0) {        // peer closed; whatever was buffered is moot
      conn.sock.close();
      return;
    }
    conn.request.append(buf, static_cast<std::size_t>(n));
    if (conn.request.size() > kMaxMetricsRequest) {
      conn.sock.close();  // not a scrape — drop without ceremony
      return;
    }
    if (n < static_cast<long>(sizeof(buf))) break;
  }
  if (conn.responded) return;  // ignore extra bytes after the request head
  const std::size_t head_end = conn.request.find("\r\n\r\n");
  if (head_end == std::string::npos) return;  // request head still incomplete

  std::string status = "200 OK";
  std::string body;
  const std::size_t line_end = conn.request.find("\r\n");
  const std::string line = conn.request.substr(0, line_end);
  if (line.rfind("GET ", 0) != 0) {
    status = "405 Method Not Allowed";
    body = "only GET is served here\n";
  } else {
    const std::size_t path_end = line.find(' ', 4);
    const std::string path =
        line.substr(4, path_end == std::string::npos ? std::string::npos : path_end - 4);
    if (path == "/metrics") {
      obs::count(metrics_scrapes_);
      body = metrics_text();
    } else {
      status = "404 Not Found";
      body = "try /metrics\n";
    }
  }
  const std::string response =
      "HTTP/1.0 " + status +
      "\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\n"
      "Connection: close\r\n\r\n" +
      body;
  conn.out.assign(response.begin(), response.end());
  conn.responded = true;
}

void Server::write_metrics(MetricsConn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t rc = ::send(conn.sock.fd(), conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // flush on the next round
      conn.sock.close();
      return;
    }
    conn.out_off += static_cast<std::size_t>(rc);
  }
  conn.sock.close();  // one response per connection (HTTP/1.0, Connection: close)
}

void Server::route_scores() {
  const float threshold = runtime_.threshold();
  for (const serve::StreamScore& score : runtime_.drain_scores()) {
    StreamMirror& m = streams_[static_cast<std::size_t>(score.stream)];
    Connection* owner = m.owner;
    const bool routable = owner != nullptr && owner->sock.valid() && !owner->closing;
    if (routable) {
      append_score(owner->out, score.stream, static_cast<std::uint64_t>(score.sample),
                   score.score);
    } else {
      scores_unrouted_.fetch_add(1, std::memory_order_relaxed);
    }
    // Alarm mirror: identical inputs through the identical state machine as
    // the engine's own per-stream tracker (which only updates once the ring
    // holds a full context — sample index >= window).
    if (score.sample >= window_) {
      m.tracker.update(score.score, threshold, score.sample);
      const std::vector<core::AnomalyEvent>& events = m.tracker.events();
      if (!events.empty()) {
        const core::AnomalyEvent& e = events.back();
        const bool is_new = events.size() != m.n_events;
        const bool changed = is_new || e.onset_sample != m.last_event.onset_sample ||
                             e.last_sample != m.last_event.last_sample ||
                             e.peak_score != m.last_event.peak_score;
        if (changed) {
          if (routable) {
            AlarmData alarm;
            alarm.stream = score.stream;
            alarm.onset_sample = static_cast<std::uint64_t>(e.onset_sample);
            alarm.last_sample = static_cast<std::uint64_t>(e.last_sample);
            alarm.peak_score = e.peak_score;
            alarm.raised = is_new;
            append_alarm(owner->out, alarm);
          }
          m.n_events = events.size();
          m.last_event = e;
        }
      }
    }
  }
}

void Server::begin_shutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  tcp_listener_.close();
  uds_listener_.close();
  shm_listener_.close();
  metrics_listener_.close();
  metrics_conns_.clear();  // a half-served scrape does not gate shutdown
  // Drain every accepted sample (close() blocks until the scorers finish),
  // then flush the final scores and say goodbye.
  runtime_.close();
  route_scores();
  for (const std::unique_ptr<Connection>& conn : conns_) {
    if (!conn->sock.valid()) continue;
    append_goodbye(conn->out);
    conn->closing = true;
  }
}

void Server::run() {
  check(!running_, "Server::run() called twice");
  running_ = true;
  runtime_.start();

  std::vector<pollfd> pfds;
  std::vector<Connection*> pfd_conns;      // parallel to the connection pfds
  std::vector<MetricsConn*> pfd_mconns;    // parallel to the metrics-conn pfds
  std::chrono::steady_clock::time_point shutdown_started{};

  while (!(shutting_down_ && conns_.empty())) {
    pfds.clear();
    pfd_conns.clear();
    pfd_mconns.clear();
    pfds.push_back({stop_pipe_[0], POLLIN, 0});
    std::size_t n_listeners = 0;
    std::size_t metrics_listener_idx = 0;  // 0 = not polled this round
    if (!shutting_down_) {
      if (tcp_listener_.valid()) {
        pfds.push_back({tcp_listener_.fd(), POLLIN, 0});
        ++n_listeners;
      }
      if (uds_listener_.valid()) {
        pfds.push_back({uds_listener_.fd(), POLLIN, 0});
        ++n_listeners;
      }
      if (shm_listener_.valid()) {
        pfds.push_back({shm_listener_.fd(), POLLIN, 0});
        ++n_listeners;
      }
      if (metrics_listener_.valid()) {
        metrics_listener_idx = pfds.size();
        pfds.push_back({metrics_listener_.fd(), POLLIN, 0});
      }
    }
    const std::size_t first_conn = pfds.size();
    for (const std::unique_ptr<Connection>& conn : conns_) {
      if (!conn->sock.valid()) continue;
      short events = 0;
      // A shm connection's socket is polled even while closing: it is the
      // liveness signal, and output leaves through the ring, never POLLOUT.
      if (!conn->closing || conn->shm_active) events |= POLLIN;
      if (!conn->shm_active && conn->out_off < conn->out.size()) events |= POLLOUT;
      pfds.push_back({conn->sock.fd(), events, 0});
      pfd_conns.push_back(conn.get());
    }
    const std::size_t first_mconn = pfds.size();
    for (const std::unique_ptr<MetricsConn>& mc : metrics_conns_) {
      if (!mc->sock.valid()) continue;
      short events = 0;
      if (!mc->responded) events |= POLLIN;
      if (mc->out_off < mc->out.size()) events |= POLLOUT;
      pfds.push_back({mc->sock.fd(), events, 0});
      pfd_mconns.push_back(mc.get());
    }
    // Shm doorbells: arm each empty c2s ring before sleeping (the armed
    // flag makes the client's next write ring the eventfd — see shm.hpp's
    // ordering contract). A ring with bytes already in it forces a zero
    // timeout instead: the data is older than this poll.
    const std::size_t first_bell = pfds.size();
    int poll_timeout = config_.poll_interval_ms;
    for (const std::unique_ptr<Connection>& conn : conns_) {
      if (!conn->shm_active || !conn->sock.valid()) continue;
      if (conn->shm.c2s().arm_waiting()) {
        pfds.push_back({conn->shm.c2s_doorbell(), POLLIN, 0});
      } else {
        conn->shm.c2s().disarm_waiting();
        poll_timeout = 0;
      }
    }

    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), poll_timeout);
    if (rc < 0 && errno != EINTR) fail("net: poll(): ", std::strerror(errno));

    // Disarm + drain every doorbell before touching the rings; the drain
    // pass below picks the bytes up regardless of which fd fired.
    for (std::size_t i = first_bell; i < pfds.size(); ++i)
      if ((pfds[i].revents & POLLIN) != 0) ShmSession::drain_doorbell(pfds[i].fd);
    for (const std::unique_ptr<Connection>& conn : conns_)
      if (conn->shm_active) conn->shm.c2s().disarm_waiting();

    if (pfds[0].revents & POLLIN) {
      char sink[64];
      while (::read(stop_pipe_[0], sink, sizeof(sink)) > 0) {
      }
      begin_shutdown();
    }

    // Metrics scrapes: accept, read, respond — all subordinate to the wire
    // traffic and served from the same loop.
    if (metrics_listener_idx != 0 && (pfds[metrics_listener_idx].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(metrics_listener_.fd(), nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN (drained) or a transient accept failure
        }
        if (metrics_conns_.size() >= kMaxMetricsConns) {
          ::close(fd);  // scraper storm: refuse outright
          continue;
        }
        set_nonblocking(fd, true);
        auto mc = std::make_unique<MetricsConn>();
        mc->sock = Socket(fd);
        metrics_conns_.push_back(std::move(mc));
      }
    }

    // Accepts (listener pfds sit between the stop pipe and the connections).
    for (std::size_t i = 1; i <= n_listeners && i < first_conn; ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      for (;;) {
        const int fd = ::accept(pfds[i].fd, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN (drained) or a transient accept failure
        }
        if (static_cast<Index>(conns_.size()) >= config_.max_connections) {
          ::close(fd);  // over capacity: refuse outright
          continue;
        }
        set_nonblocking(fd, true);
        auto conn = std::make_unique<Connection>();
        conn->sock = Socket(fd);
        conn->policy = config_.runtime.backpressure;
        conn->shm_bootstrap = shm_listener_.valid() && pfds[i].fd == shm_listener_.fd();
        conns_.push_back(std::move(conn));
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    for (std::size_t i = first_conn; i < first_mconn; ++i) {
      Connection& conn = *pfd_conns[i - first_conn];
      if (!conn.sock.valid()) continue;
      if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      if (!conn.shm_active) {
        read_connection(conn);
        continue;
      }
      // Post-handshake the shm socket carries liveness only: EOF means the
      // client is gone (drain what it left in the ring first — those frames
      // were complete before it departed); actual bytes are a client bug.
      std::uint8_t probe[4096];
      for (;;) {
        const long n = read_some(conn.sock.fd(), probe, sizeof(probe));
        if (n == -1) break;
        if (n == 0) {
          read_shm_connection(conn);
          release_streams(conn);
          conn.sock.close();
          break;
        }
        protocol_error(conn, "net: unexpected bytes on the shm bootstrap socket");
        break;
      }
    }
    // Rings are drained every iteration — a doorbell wakes the loop early,
    // but bytes written while the loop was already busy arrive bell-free.
    for (const std::unique_ptr<Connection>& conn : conns_) {
      if (conn->shm_active && conn->sock.valid() && !conn->closing)
        read_shm_connection(*conn);
    }
    for (std::size_t i = first_mconn; i < first_bell; ++i) {
      MetricsConn& mc = *pfd_mconns[i - first_mconn];
      if (!mc.sock.valid()) continue;
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) read_metrics(mc);
    }

    if (!shutting_down_) route_scores();

    // Flush everything with pending output (fresh frames may have been
    // queued this iteration, after the poll — write eagerly, not only on
    // POLLOUT, so a quiet socket does not add a poll interval of latency).
    for (const std::unique_ptr<Connection>& conn : conns_) {
      if (!conn->sock.valid() || conn->out_off >= conn->out.size()) continue;
      if (conn->shm_active)
        write_shm_connection(*conn);
      else
        write_connection(*conn);
    }
    for (const std::unique_ptr<MetricsConn>& mc : metrics_conns_) {
      if (mc->sock.valid() && mc->responded) write_metrics(*mc);
    }

    // Sweep: drop dead sockets and fully flushed closing connections.
    for (std::size_t i = 0; i < conns_.size();) {
      Connection& conn = *conns_[i];
      const bool flushed = conn.out_off >= conn.out.size();
      if (!conn.sock.valid() || (conn.closing && flushed)) {
        release_streams(conn);
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    metrics_conns_.erase(
        std::remove_if(metrics_conns_.begin(), metrics_conns_.end(),
                       [](const std::unique_ptr<MetricsConn>& mc) { return !mc->sock.valid(); }),
        metrics_conns_.end());

    if (shutting_down_) {
      if (shutdown_started == std::chrono::steady_clock::time_point{})
        shutdown_started = std::chrono::steady_clock::now();
      else if (std::chrono::steady_clock::now() - shutdown_started > kShutdownFlushDeadline)
        conns_.clear();  // a non-reading client shall not wedge the daemon
    }
  }
}

}  // namespace varade::net
