// varade-served: the serving daemon. Trains a detector on the shared
// synthetic workload (seed-deterministic, so every client process can
// regenerate the exact streams), calibrates the alarm threshold, then serves
// the binary wire protocol over TCP and/or a Unix-domain socket until a
// SHUTDOWN frame or SIGINT/SIGTERM.
//
// Usage:
//   varade-served --listen unix:/tmp/varade.sock [--listen tcp:127.0.0.1:7733]
//                 [--listen shm:/tmp/varade-shm.sock] [--metrics tcp:HOST:PORT]
//                 [--streams N] [--detector <name>] [--shards N]
//                 [--policy block|drop-oldest|reject] [--ring-capacity N]
//                 [--shm-ring-bytes N] [--score-threads N] [--quiet]
//
// `--listen shm:PATH` accepts connections on a Unix bootstrap socket at PATH
// and upgrades them to per-connection shared-memory rings (see
// varade/net/shm.hpp); samples then flow without per-sample syscalls.
//
// The resolved TCP port (ephemeral when :0 was asked for) is printed as
//   listening on tcp:HOST:PORT
// before serving starts, so wrappers can scrape it; --metrics prints a
//   metrics on tcp:HOST:PORT
// line the same way and serves Prometheus text at GET /metrics.
//
// The one-line exit report is printed even under --quiet: it is the ground
// truth the tests reconcile against the STATS wire counters (in particular
// "scored" is RuntimeStats::scored — results actually emitted — not the
// accepted-sample count, which silently diverges when a client disconnects
// mid-drain and its remaining scores go unrouted).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "varade/core/monitor.hpp"
#include "varade/core/profiles.hpp"
#include "varade/net/server.hpp"

namespace {

using namespace varade;

net::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

serve::BackpressurePolicy parse_policy(const char* value) {
  if (std::strcmp(value, "block") == 0) return serve::BackpressurePolicy::Block;
  if (std::strcmp(value, "drop-oldest") == 0) return serve::BackpressurePolicy::DropOldest;
  if (std::strcmp(value, "reject") == 0) return serve::BackpressurePolicy::Reject;
  std::fprintf(stderr, "error: --policy expects block|drop-oldest|reject, got \"%s\"\n", value);
  std::exit(2);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen <unix:PATH|tcp:HOST:PORT|shm:PATH> [--listen ...]\n"
               "          [--metrics tcp:HOST:PORT] [--streams N] [--detector <name>]\n"
               "          [--shards N] [--policy block|drop-oldest|reject]\n"
               "          [--ring-capacity N] [--shm-ring-bytes N]\n"
               "          [--score-threads N] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerConfig config;
  config.tcp_port = -1;
  std::string detector_name = "VARADE";
  bool quiet = false;
  bool have_listener = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--listen") == 0 && a + 1 < argc) {
      const net::Endpoint ep = net::parse_endpoint(argv[++a]);
      if (ep.kind == net::Endpoint::Kind::Unix) {
        config.uds_path = ep.path;
      } else if (ep.kind == net::Endpoint::Kind::Shm) {
        config.shm_path = ep.path;
      } else {
        config.tcp_host = ep.host;
        config.tcp_port = ep.port;
      }
      have_listener = true;
    } else if (std::strcmp(argv[a], "--metrics") == 0 && a + 1 < argc) {
      const net::Endpoint ep = net::parse_endpoint(argv[++a]);
      if (ep.kind != net::Endpoint::Kind::Tcp) {
        std::fprintf(stderr, "error: --metrics expects tcp:HOST:PORT\n");
        return 2;
      }
      config.metrics_host = ep.host;
      config.metrics_port = ep.port;
    } else if (std::strcmp(argv[a], "--streams") == 0 && a + 1 < argc) {
      config.n_streams = bench::parse_long_arg("--streams", argv[++a]);
    } else if (std::strcmp(argv[a], "--shards") == 0 && a + 1 < argc) {
      config.runtime.n_shards = bench::parse_long_arg("--shards", argv[++a]);
    } else if (std::strcmp(argv[a], "--ring") == 0 && a + 1 < argc) {
      // Legacy spelling of --ring-capacity (kept for existing wrappers; the
      // runtime rounds non-powers-of-two up, this path does not validate).
      config.runtime.ring_capacity = bench::parse_long_arg("--ring", argv[++a]);
    } else if (std::strcmp(argv[a], "--ring-capacity") == 0 && a + 1 < argc) {
      config.runtime.ring_capacity = bench::parse_pow2_arg("--ring-capacity", argv[++a]);
    } else if (std::strcmp(argv[a], "--shm-ring-bytes") == 0 && a + 1 < argc) {
      config.shm_ring_bytes =
          static_cast<std::size_t>(bench::parse_pow2_arg("--shm-ring-bytes", argv[++a]));
    } else if (std::strcmp(argv[a], "--score-threads") == 0 && a + 1 < argc) {
      config.runtime.engine.scoring_threads =
          static_cast<int>(bench::parse_long_arg("--score-threads", argv[++a]));
    } else if (std::strcmp(argv[a], "--policy") == 0 && a + 1 < argc) {
      config.runtime.backpressure = parse_policy(argv[++a]);
    } else if (std::strcmp(argv[a], "--detector") == 0 && a + 1 < argc) {
      detector_name = argv[++a];
    } else if (std::strcmp(argv[a], "--quiet") == 0) {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!have_listener) {
    std::fprintf(stderr, "error: at least one --listen endpoint is required\n");
    return usage(argv[0]);
  }

  try {
    // Self-train on the shared serving workload: the daemon and its clients
    // agree on the model by regenerating it from the same seeds.
    if (!quiet) std::printf("training %s (tiny serving configuration)...\n",
                            detector_name.c_str());
    const core::Profile profile = bench::tiny_serve_profile();
    const data::MultivariateSeries train_raw = bench::make_sine(1200, 1);
    data::MinMaxNormalizer normalizer;
    normalizer.fit(train_raw);
    const data::MultivariateSeries train = normalizer.transform(train_raw);
    const std::unique_ptr<core::AnomalyDetector> detector =
        core::make_detector(profile, detector_name);  // throws on an unknown name
    detector->fit(train);
    config.threshold = core::calibrate_threshold(*detector, train, {});

    net::Server server(*detector, normalizer, config);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    if (server.tcp_port() >= 0)
      std::printf("listening on tcp:%s:%d\n", config.tcp_host.c_str(), server.tcp_port());
    if (!server.uds_path().empty())
      std::printf("listening on unix:%s\n", server.uds_path().c_str());
    if (!server.shm_path().empty())
      std::printf("listening on shm:%s\n", server.shm_path().c_str());
    if (server.metrics_port() >= 0)
      std::printf("metrics on tcp:%s:%d\n", config.metrics_host.c_str(), server.metrics_port());
    std::printf("serving %ld streams x %ld channels (threshold %.6f, policy %s)\n",
                static_cast<long>(server.n_streams()), static_cast<long>(server.n_channels()),
                static_cast<double>(config.threshold),
                serve::to_string(config.runtime.backpressure));
    std::fflush(stdout);

    server.run();

    g_server = nullptr;
    // The exit report is printed even under --quiet (--quiet silences the
    // training/serving chatter, not the final accounting line). It must
    // agree with the STATS wire counters: "scored" is stats.scored — the
    // results the runtime actually emitted — not stats.pushed, which keeps
    // counting samples whose scores went unrouted after a client
    // disconnected mid-drain. After the orderly close(),
    // scored == pushed - dropped holds exactly.
    const serve::RuntimeStats stats = server.runtime().stats();
    std::printf("shutdown: %ld connections, %ld samples pushed, %ld scored, %ld dropped,"
                " %ld rejected, %ld nacks, %ld protocol errors, %ld unrouted scores\n",
                server.connections_accepted(), stats.pushed, stats.scored, stats.dropped,
                stats.rejected, server.frames_nacked(), server.protocol_errors(),
                server.scores_unrouted());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "varade-served: %s\n", e.what());
    return 1;
  }
}
