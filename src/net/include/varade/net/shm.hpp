// Shared-memory transport for co-located producers: a mmap'd
// single-producer single-consumer byte ring per direction, carrying the
// exact same wire frames the sockets carry (the codec never knows which
// transport it is on). The steady-state push is zero-syscall: bytes go
// straight into the mapped ring; the only syscall left is an eventfd
// doorbell rung exclusively when the consumer has declared itself asleep.
//
// Segment layout (one anonymous /dev/shm file per connection, fd-passed over
// the bootstrap Unix socket and unlinked before it is ever shared, so a
// crashed peer can never leave a stale file behind):
//
//   offset                          contents
//   0                               ShmSegmentHeader {magic, version,
//                                                     ring_bytes}
//   64                              c2s ShmRingControl (client -> server)
//   64 + 192                        c2s data[ring_bytes]
//   64 + 192 + ring_bytes           s2c ShmRingControl (server -> client)
//   64 + 2*192 + ring_bytes         s2c data[ring_bytes]
//
// Ring memory-ordering contract (SPSC, Dekker/eventcount style):
//   - `tail` is the producer's monotonic write index, `head` the consumer's
//     monotonic read index; both only ever grow, and are masked by
//     ring_bytes - 1 (a power of two) on access. Occupancy is tail - head.
//   - Producer: copy payload bytes into data[], then tail.store(release) —
//     the release pairs with the consumer's tail.load(acquire), so a
//     consumer that observes the new tail also observes the bytes.
//   - Consumer: head.store(release) after copying out pairs with the
//     producer's head.load(acquire) — space is only reused once the bytes
//     were really read.
//   - Doorbell (lost-wakeup-free): before sleeping the consumer stores
//     waiting = 1, issues a seq_cst fence, and re-checks tail; only if the
//     ring is still empty does it block on the eventfd. The producer stores
//     tail, issues a seq_cst fence, and exchanges waiting — ringing the
//     doorbell only when it wins the armed flag. The two fences make
//     "consumer missed the new tail" and "producer missed waiting = 1"
//     mutually exclusive, so a doorbell is rung for every armed sleep that
//     has data, and *only* for those — doorbells are a strict subset of
//     empty->nonempty transitions, not a per-write cost.
//
// Frames larger than the ring are fine: the ring is a byte stream, so a
// frame simply flows through in pieces (FrameReader reassembles, exactly as
// it does for fragmented socket reads). A full ring is backpressure: the
// producer spins-then-waits (serve::Backoff) until the consumer drains.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "varade/tensor/tensor.hpp"

namespace varade::net {

inline constexpr std::uint64_t kShmMagic = 0x5641524144455348ULL;  // "VARADESH"
inline constexpr std::uint32_t kShmVersion = 1;
inline constexpr std::size_t kShmMinRingBytes = 4096;
inline constexpr std::size_t kShmMaxRingBytes = 1ULL << 30;

/// First 64 bytes of the segment; validated byte-for-byte by attach().
struct ShmSegmentHeader {
  std::uint64_t magic = kShmMagic;
  std::uint32_t version = kShmVersion;
  std::uint32_t ring_bytes = 0;  ///< per-direction data size, power of two
  std::uint8_t reserved[48] = {};
};
static_assert(sizeof(ShmSegmentHeader) == 64);

/// Control block of one SPSC ring; each index on its own cache line so the
/// producer's tail stores never bounce the consumer's head line.
struct ShmRingControl {
  alignas(64) std::atomic<std::uint64_t> tail{0};  ///< producer write index
  alignas(64) std::atomic<std::uint64_t> head{0};  ///< consumer read index
  alignas(64) std::atomic<std::uint32_t> waiting{0};  ///< consumer armed flag
};
static_assert(sizeof(ShmRingControl) == 192);

/// Total segment size for a per-direction ring of `ring_bytes`.
std::size_t shm_segment_size(std::size_t ring_bytes);

/// Initialises a freshly mapped segment (header + zeroed ring controls).
/// `ring_bytes` must be a power of two in [kShmMinRingBytes, kShmMaxRingBytes].
void shm_init_segment(void* base, std::size_t ring_bytes);

/// Validates a mapped segment before trusting a single byte of it: magic,
/// version, ring_bytes a power of two within bounds, and the mapping large
/// enough for the layout the header claims. Throws varade::Error (message
/// prefixed "net: shm") naming the defect; returns ring_bytes on success.
std::size_t shm_validate_segment(const void* base, std::size_t mapped_bytes);

/// Non-owning view over one direction's control block + data bytes. One
/// thread (or process) may call the producer methods, one the consumer
/// methods; the struct itself holds no state beyond the pointers.
class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(ShmRingControl* control, std::uint8_t* data, std::size_t bytes)
      : control_(control), data_(data), bytes_(bytes), mask_(bytes - 1) {}

  std::size_t capacity() const { return bytes_; }

  // --- producer side ---
  /// Copies up to n bytes in; returns the count written (0 when full).
  /// `ring_doorbell` is set when the consumer declared itself asleep and
  /// this write won the armed flag — the caller must then write 1 to the
  /// ring's eventfd, or the consumer sleeps through the data.
  std::size_t write_some(const std::uint8_t* src, std::size_t n, bool& ring_doorbell);
  std::size_t free_space() const;

  // --- consumer side ---
  /// Copies up to n bytes out; returns the count read (0 when empty).
  std::size_t read_some(std::uint8_t* dst, std::size_t n);
  std::size_t readable() const;
  /// Declares the consumer asleep and re-checks for data; true means the
  /// ring is really empty and blocking on the eventfd is race-free (any
  /// later write sees the armed flag and rings). False means bytes arrived
  /// concurrently — the caller must disarm and drain instead of sleeping.
  bool arm_waiting();
  void disarm_waiting();

 private:
  ShmRingControl* control_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t mask_ = 0;
};

/// One connection's shared-memory session: the mapped segment plus the two
/// doorbell eventfds. The server create()s it (shm_open + immediate
/// shm_unlink, so the segment is anonymous the moment it exists) and passes
/// {segment fd, c2s eventfd, s2c eventfd} over the bootstrap Unix socket via
/// SCM_RIGHTS; the client attach()es from the received fds. Both sides hold
/// independent mappings, so either may unmap first.
class ShmSession {
 public:
  ShmSession() = default;
  ~ShmSession();

  ShmSession(const ShmSession&) = delete;
  ShmSession& operator=(const ShmSession&) = delete;
  ShmSession(ShmSession&& other) noexcept;
  ShmSession& operator=(ShmSession&& other) noexcept;

  /// Server side: creates + maps a fresh segment and both eventfds.
  static ShmSession create(std::size_t ring_bytes);
  /// Client side: maps the received segment fd (validating the header) and
  /// adopts the eventfds. Takes ownership of all three fds, error or not.
  static ShmSession attach(int seg_fd, int c2s_doorbell, int s2c_doorbell);

  bool valid() const { return base_ != nullptr; }
  ShmRing& c2s() { return c2s_; }
  ShmRing& s2c() { return s2c_; }
  /// The segment fd, held only until it has been passed to the peer.
  int seg_fd() const { return seg_fd_; }
  void close_seg_fd();
  int c2s_doorbell() const { return c2s_doorbell_; }
  int s2c_doorbell() const { return s2c_doorbell_; }

  /// Rings a doorbell (writes 1 to the eventfd; EAGAIN — a full counter —
  /// already guarantees a pending wakeup and is ignored).
  static void ring_doorbell(int eventfd);
  /// Drains a doorbell (reads the nonblocking eventfd; EAGAIN is fine).
  static void drain_doorbell(int eventfd);

 private:
  void* base_ = nullptr;
  std::size_t mapped_ = 0;
  int seg_fd_ = -1;
  int c2s_doorbell_ = -1;
  int s2c_doorbell_ = -1;
  ShmRing c2s_;
  ShmRing s2c_;
};

}  // namespace varade::net
