// varade::net wire protocol: the compact binary framing spoken between the
// varade-served daemon and net::Client producers.
//
// Every frame is an 8-byte header followed by a payload:
//
//   offset  size  field
//        0     1  magic          0xDA
//        1     1  version        1 (this header)
//        2     1  type           FrameType
//        3     1  reserved       must be 0
//        4     4  payload_len    u32, little-endian, <= kMaxPayload
//
// All multi-byte integers are little-endian; floats travel as the
// little-endian bytes of their IEEE-754 bit pattern, so a value scored by the
// daemon arrives at the client bit-identical — the serving determinism
// contract survives the socket. Encoding and decoding are byte-assembled
// (no struct punning), so the format is identical on any host endianness.
//
// Validation is the point of this layer: FrameReader checks the header as
// soon as its 8 bytes are buffered (bad magic/version/type and oversized
// lengths are rejected before any payload arrives), and every typed decode_*
// checks the exact payload size and value ranges (SAMPLE additionally
// rejects non-finite floats, naming the channel). All rejection paths throw
// varade::Error with a message starting "net: " — malformed input is a named
// error, never undefined behaviour.
//
// Frame catalogue (direction in parentheses):
//   Hello        (c->s)  {u8 policy_request[, u8 features]}  open the session
//   Welcome      (s->c)  {u32 streams, u32 channels, f32 threshold,
//                         u8 policy[, u8 features]}    config handshake reply
//   Sample       (c->s)  {u32 stream, u64 seq, C f32}   one raw sample
//   SampleBatch  (c->s)  {u32 stream, u64 base_seq, u32 count, K*C f32}
//                        K consecutive samples of one stream under one header
//   Score        (s->c)  {u32 stream, u64 sample, f32}  one anomaly score
//   Alarm        (s->c)  {u32 stream, u64 onset, u64 last, f32 peak,
//                         u8 raised}                    alarm event state
//   Nack         (s->c)  {u32 stream, u64 seq, u8 PushResult, u8 reason}
//   StatsRequest (c->s)  {}                             runtime stats probe
//   StatsReply   (s->c)  {12 x u64 counters/latency quantiles, 3 x u32}
//                                                       see WireStats
//   Shutdown     (c->s)  {}                             ask the daemon to stop
//   Goodbye      (s->c)  {}                             orderly close
//   WireError    (s->c)  {utf-8 message}                protocol violation
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "varade/serve/ingest.hpp"
#include "varade/tensor/tensor.hpp"

namespace varade::net {

inline constexpr std::uint8_t kMagic = 0xDA;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
/// Upper bound on a frame payload; a length field beyond this is rejected
/// before any buffering, so a malformed (or hostile) length cannot trigger a
/// giant allocation.
inline constexpr std::uint32_t kMaxPayload = 1U << 20;

enum class FrameType : std::uint8_t {
  Hello = 1,
  Welcome = 2,
  Sample = 3,
  Score = 4,
  Alarm = 5,
  Nack = 6,
  StatsRequest = 7,
  StatsReply = 8,
  Shutdown = 9,
  Goodbye = 10,
  WireError = 11,
  SampleBatch = 12,
};

/// Hard cap on samples per SAMPLE_BATCH frame. With the 1 MiB payload cap a
/// batch of 4096 samples still leaves room for 63 channels; a count beyond
/// this is rejected before any per-sample work.
inline constexpr std::uint32_t kMaxBatchSamples = 4096;

// HELLO/WELCOME feature bits (the optional second payload byte). A legacy
// 1-byte HELLO means "no features"; the daemon echoes the subset it granted
// in a 14-byte WELCOME, so both sides agree before the first SAMPLE.
inline constexpr std::uint8_t kFeatureSampleBatch = 0x01;  ///< SAMPLE_BATCH accepted
inline constexpr std::uint8_t kFeatureShm = 0x02;          ///< shm ring transport

/// Human-readable frame-type name (used in every decode error message).
const char* to_string(FrameType type);

/// Why the daemon refused a SAMPLE frame (or part of a SAMPLE_BATCH).
enum class NackReason : std::uint8_t {
  Backpressure = 0,     ///< the stream's ring was full under the Reject policy
  StreamBusy = 1,       ///< the stream is owned by another live connection
  MalformedSample = 2,  ///< non-finite value inside a SAMPLE_BATCH; seq names
                        ///< the first bad sample and the batch tail from it
                        ///< onward was dropped (the connection stays open)
};

const char* to_string(NackReason reason);

/// One decoded frame: type plus raw payload bytes (typed decode_* helpers
/// below validate and unpack them).
struct Frame {
  FrameType type = FrameType::Hello;
  std::vector<std::uint8_t> payload;
};

/// Welcome payload: the daemon's serving configuration, fixed for the
/// session. policy is the admission-control policy the daemon resolved for
/// this connection (the Hello request, or the daemon default).
struct Welcome {
  Index n_streams = 0;
  Index n_channels = 0;
  float threshold = 0.0F;
  serve::BackpressurePolicy policy = serve::BackpressurePolicy::Block;
  /// Feature bits the daemon granted (subset of the Hello request). Encoded
  /// as a 14th payload byte only when nonzero, so legacy peers still parse.
  std::uint8_t features = 0;
};

/// Decoded HELLO frame: the requested backpressure policy (nullopt defers to
/// the daemon default) plus the feature bits the client advertises.
struct HelloData {
  std::optional<serve::BackpressurePolicy> policy;
  std::uint8_t features = 0;
};

/// Decoded SAMPLE frame. `values` is reused across calls so the per-sample
/// decode path does not allocate once warmed up.
struct SampleData {
  Index stream = 0;
  std::uint64_t seq = 0;
  std::vector<float> values;
};

/// Decoded SAMPLE_BATCH frame. Structural problems (bad count, size
/// mismatch) throw like any other decode; a non-finite *value* instead
/// truncates: `valid` is the number of leading well-formed samples copied
/// into `values` and `bad_channel` names the offending channel of sample
/// `valid` (-1 when the whole batch is clean). The server turns a truncation
/// into NACK(MalformedSample, seq = base_seq + valid) without dropping the
/// connection — the sender loses the batch tail, not the session.
struct SampleBatchData {
  Index stream = 0;
  std::uint64_t base_seq = 0;
  Index count = 0;        ///< samples carried by the frame
  Index valid = 0;        ///< leading samples with all-finite values
  Index bad_channel = -1; ///< channel of the first non-finite value
  std::vector<float> values;  ///< [valid * n_channels], reused across calls
};

/// Decoded SCORE frame.
struct ScoreData {
  Index stream = 0;
  std::uint64_t sample = 0;
  float score = 0.0F;
};

/// Decoded ALARM frame: the owning stream's latest alarm event after an
/// update. `raised` distinguishes a newly raised event from an extension of
/// the current one, so a client can reconstruct the exact event list.
struct AlarmData {
  Index stream = 0;
  std::uint64_t onset_sample = 0;
  std::uint64_t last_sample = 0;
  float peak_score = 0.0F;
  bool raised = false;
};

/// Decoded NACK frame.
struct NackData {
  Index stream = 0;
  std::uint64_t seq = 0;
  serve::PushResult result = serve::PushResult::Rejected;
  NackReason reason = NackReason::Backpressure;
};

/// StatsReply payload: the daemon's AsyncScoringRuntime::stats() totals plus
/// connection accounting and latency-telemetry quantiles (nanoseconds,
/// merged across shards; all zero when the daemon was built with
/// -DVARADE_OBS=OFF or has not scored yet).
struct WireStats {
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rounds = 0;
  std::uint64_t naps = 0;
  std::uint64_t scored = 0;  ///< StreamScores emitted by the runtime
  /// Productive scorer-round duration quantiles (RuntimeTelemetry round).
  std::uint64_t round_p50_ns = 0;
  std::uint64_t round_p95_ns = 0;
  std::uint64_t round_p99_ns = 0;
  /// Sampled push->score end-to-end latency quantiles.
  std::uint64_t push_to_score_p50_ns = 0;
  std::uint64_t push_to_score_p95_ns = 0;
  std::uint64_t push_to_score_p99_ns = 0;
  Index n_streams = 0;
  Index n_shards = 0;
  Index n_connections = 0;
};

// --- encoding ---------------------------------------------------------------
// Every append_* encodes one complete frame (header + payload) onto `out`,
// so a caller can batch many frames into one write() syscall.

void append_frame(std::vector<std::uint8_t>& out, FrameType type, const std::uint8_t* payload,
                  std::size_t payload_len);
/// HELLO's policy byte: a concrete policy requests it; nullopt (wire value
/// 255) asks the daemon to apply its configured default. Nonzero `features`
/// appends the second payload byte (legacy daemons reject it by size, which
/// is why the client only sets bits it needs).
void append_hello(std::vector<std::uint8_t>& out,
                  std::optional<serve::BackpressurePolicy> policy = std::nullopt,
                  std::uint8_t features = 0);
void append_welcome(std::vector<std::uint8_t>& out, const Welcome& welcome);
void append_sample(std::vector<std::uint8_t>& out, Index stream, std::uint64_t seq,
                   const float* values, Index n_channels);
/// One header for `count` consecutive samples of one stream; `values` is the
/// row-major [count, n_channels] block starting at sequence `base_seq`.
void append_sample_batch(std::vector<std::uint8_t>& out, Index stream, std::uint64_t base_seq,
                         const float* values, Index count, Index n_channels);
void append_score(std::vector<std::uint8_t>& out, Index stream, std::uint64_t sample,
                  float score);
void append_alarm(std::vector<std::uint8_t>& out, const AlarmData& alarm);
void append_nack(std::vector<std::uint8_t>& out, const NackData& nack);
void append_stats_request(std::vector<std::uint8_t>& out);
void append_stats_reply(std::vector<std::uint8_t>& out, const WireStats& stats);
void append_shutdown(std::vector<std::uint8_t>& out);
void append_goodbye(std::vector<std::uint8_t>& out);
void append_wire_error(std::vector<std::uint8_t>& out, const std::string& message);

// --- decoding ---------------------------------------------------------------
// Each decode_* throws varade::Error (message prefixed "net: ") when the
// frame is not of the expected type, the payload size does not match, or a
// value is out of range. decode_sample also rejects non-finite floats.

Welcome decode_welcome(const Frame& frame);
/// `n_channels` fixes the expected payload size; `out.values` is resized to
/// it. Rejects non-finite values, naming the channel.
void decode_sample(const Frame& frame, Index n_channels, SampleData& out);
/// Structural validation (count in [1, kMaxBatchSamples], payload exactly
/// 16 + 4*count*n_channels bytes) throws; non-finite values truncate into
/// out.valid / out.bad_channel instead (see SampleBatchData).
void decode_sample_batch(const Frame& frame, Index n_channels, SampleBatchData& out);
ScoreData decode_score(const Frame& frame);
AlarmData decode_alarm(const Frame& frame);
NackData decode_nack(const Frame& frame);
WireStats decode_stats_reply(const Frame& frame);
/// Accepts the legacy 1-byte payload (features = 0) and the 2-byte form.
HelloData decode_hello(const Frame& frame);
/// WireError payload is the error message itself.
std::string decode_wire_error(const Frame& frame);

/// Incremental frame parser surviving arbitrary read fragmentation: feed()
/// whatever bytes the socket produced (any split, byte-at-a-time included),
/// then drain complete frames with next(). The header is validated as soon
/// as its 8 bytes are buffered, so malformed input is rejected without
/// waiting for (or allocating) a payload. After a validation throw the
/// reader is poisoned: the stream has lost framing, so every further feed()
/// or next() rethrows — close the connection instead.
class FrameReader {
 public:
  /// Appends raw bytes; throws on a malformed header.
  void feed(const void* bytes, std::size_t n);

  /// Extracts the next complete frame into `out`; false when more bytes are
  /// needed.
  bool next(Frame& out);

  /// Bytes buffered but not yet returned as frames (a nonzero value at
  /// connection EOF means the peer died mid-frame).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  void validate_header();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool header_valid_ = false;     // current header already validated
  std::string poisoned_message_;  // nonempty once a validation error fired
};

}  // namespace varade::net
