// varade::net::Server — the serving daemon's connection loop: the network
// front door over the AsyncScoringRuntime.
//
// One poll()-driven thread owns every socket: it accepts connections on a
// TCP and/or Unix-domain listener, parses length-prefixed frames out of
// whatever fragments the kernel delivers (wire.hpp survives partial reads by
// construction), pushes SAMPLE frames into the runtime's lock-free rings,
// and routes the runtime's scores back out as SCORE/ALARM frames to the
// connection that owns each stream. The runtime's scorer shards run on their
// own threads underneath, so socket I/O and scoring overlap.
//
// Admission control: each connection picks a BackpressurePolicy in its HELLO
// (or inherits the daemon default). Block applies ring backpressure by
// stalling intake (the poll thread waits for the scorer, which propagates to
// every client through the kernel socket buffers — the semantics of Block
// end to end); DropOldest evicts silently (the drop is visible in STATS);
// Reject surfaces as a NACK frame carrying the PushResult. A SAMPLE for a
// stream owned by another live connection is NACKed with reason StreamBusy —
// stream ownership is first-push-wins and released on disconnect.
//
// Protocol violations (bad magic/version/length, wrong payload size,
// non-finite floats, out-of-range stream ids, frames before HELLO) never
// kill the daemon: the offender gets a WIRE_ERROR frame naming the problem
// and its connection is closed after the flush.
//
// Determinism across the socket: per-stream sample order is the client's
// send order (TCP/UDS are ordered, the ring is FIFO, one owner per stream),
// scores travel as exact IEEE-754 bit patterns, and the server's per-stream
// alarm mirror feeds the same AlarmTracker state machine the engine runs —
// so scores and alarm events received by a client are bit-identical to a
// synchronous in-process ScoringEngine fed the same samples.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "varade/net/shm.hpp"
#include "varade/net/socket.hpp"
#include "varade/net/wire.hpp"
#include "varade/obs/telemetry.hpp"
#include "varade/serve/runtime.hpp"

namespace varade::net {

struct ServerConfig {
  /// TCP listener: port >= 0 enables it (0 picks an ephemeral port, readable
  /// via tcp_port() after construction); -1 disables.
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Unix-domain listener path; empty disables. A stale socket file is
  /// replaced.
  std::string uds_path;
  /// Shared-memory bootstrap listener path ("shm:PATH"); empty disables. A
  /// Unix socket at PATH accepts connections whose HELLO may request the
  /// kFeatureShm bit; granted sessions get a per-connection ring segment
  /// fd-passed in the WELCOME and all further frames travel through the
  /// rings (the socket stays open only as the liveness signal).
  std::string shm_path;
  /// Per-direction ring size for shm sessions (bytes, power of two).
  std::size_t shm_ring_bytes = 1 << 20;
  /// Streams the runtime serves (wire stream ids are [0, n_streams)).
  Index n_streams = 16;
  /// Calibrated alarm threshold (the daemon calibrates before serving).
  float threshold = 0.0F;
  /// Runtime configuration: ring capacity, shard count, engine batching, and
  /// the *default* admission policy (config.runtime.backpressure) used by
  /// connections whose HELLO does not override it.
  serve::AsyncRuntimeConfig runtime;
  /// poll() timeout: the score-routing latency floor while connections are
  /// quiet.
  int poll_interval_ms = 2;
  Index max_connections = 128;
  int listen_backlog = 64;
  /// Prometheus-style metrics endpoint: port >= 0 enables a plain-HTTP
  /// listener serving GET /metrics (0 picks an ephemeral port, readable via
  /// metrics_port() after construction); -1 disables. The endpoint is served
  /// from the same poll loop as the wire protocol — no extra thread.
  int metrics_port = -1;
  std::string metrics_host = "127.0.0.1";
};

class Server {
 public:
  /// Borrows a fitted detector + normalizer (same contract as the runtime).
  /// Creates the listeners and the (not yet started) runtime, so the
  /// resolved tcp_port()/uds_path() are readable — and clients may already
  /// connect and queue in the backlog — before run() is entered.
  Server(core::AnomalyDetector& detector, const data::MinMaxNormalizer& normalizer,
         ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Resolved TCP port (after an ephemeral bind), or -1 when TCP is off.
  int tcp_port() const { return tcp_port_; }
  /// Resolved metrics-endpoint port, or -1 when the endpoint is off.
  int metrics_port() const { return metrics_port_; }
  const std::string& uds_path() const { return config_.uds_path; }
  const std::string& shm_path() const { return config_.shm_path; }
  Index n_streams() const { return config_.n_streams; }
  Index n_channels() const { return n_channels_; }

  /// Starts the runtime and serves until a SHUTDOWN frame or request_stop().
  /// Shutdown is orderly: intake closes, the runtime drains every accepted
  /// sample, the resulting scores are flushed, and every connection gets a
  /// GOODBYE. Call once.
  void run();

  /// Thread- and signal-safe stop request (a self-pipe write); run() returns
  /// after the orderly shutdown.
  void request_stop();

  /// Counters for tests and the daemon's exit report (poll-thread-written;
  /// read them after run() returns, or accept approximate values).
  long connections_accepted() const { return connections_accepted_.load(); }
  long frames_nacked() const { return frames_nacked_.load(); }
  long protocol_errors() const { return protocol_errors_.load(); }
  /// Scores whose owning connection was already gone (dropped, not sent).
  long scores_unrouted() const { return scores_unrouted_.load(); }
  /// Times write_connection() hit EAGAIN with bytes still pending (the
  /// kernel socket buffer was full — the client is reading too slowly).
  long flush_stalls() const { return static_cast<long>(flush_stalls_.value()); }

  const serve::AsyncScoringRuntime& runtime() const { return runtime_; }

  /// Prometheus text-format exposition of every runtime + server metric —
  /// exactly the body a GET /metrics scrape receives. Callable from tests
  /// without a metrics listener.
  std::string metrics_text() const;

 private:
  struct Connection {
    Socket sock;
    FrameReader reader;
    std::vector<std::uint8_t> out;  // encoded frames awaiting write
    std::size_t out_off = 0;        // already-written prefix of `out`
    serve::BackpressurePolicy policy;
    SampleData sample;      // decode scratch, reused per frame
    SampleBatchData batch;  // SAMPLE_BATCH decode scratch, reused per frame
    std::uint8_t features = 0;  // feature bits granted in the WELCOME
    bool helloed = false;
    bool closing = false;       // flush `out`, then close
    bool shm_bootstrap = false;  // accepted on the shm listener
    bool shm_active = false;     // rings negotiated; sock is liveness-only
    ShmSession shm;
  };

  /// Per-stream mirror of the engine's alarm state machine, fed the drained
  /// scores in emission order — same inputs, same AlarmTracker code, so the
  /// ALARM frames match the engine's events bit for bit.
  struct StreamMirror {
    core::AlarmTracker tracker;
    std::size_t n_events = 0;          // events already announced
    core::AnomalyEvent last_event{};   // last announced state of the tail event
    Connection* owner = nullptr;       // first-push-wins; null when unowned
  };

  /// One in-flight metrics scrape: a minimal HTTP/1.0 exchange (read the
  /// request head, write one response, close). Kept separate from Connection
  /// so the wire-protocol state machine never sees HTTP bytes.
  struct MetricsConn {
    Socket sock;
    std::string request;            // bytes buffered until the blank line
    std::vector<std::uint8_t> out;  // encoded response awaiting write
    std::size_t out_off = 0;
    bool responded = false;  // response built; close once flushed
  };

  void handle_frame(Connection& conn, const Frame& frame);
  void handle_hello(Connection& conn, const Frame& frame);
  void handle_sample(Connection& conn, const Frame& frame);
  void handle_sample_batch(Connection& conn, const Frame& frame);
  /// Sends WIRE_ERROR with `message` and schedules the connection for close.
  void protocol_error(Connection& conn, const std::string& message);
  void route_scores();
  void read_connection(Connection& conn);
  void write_connection(Connection& conn);
  /// Drains the c2s ring through the frame dispatcher; the shm analogue of
  /// read_connection (the bootstrap socket itself is handled in run()).
  void read_shm_connection(Connection& conn);
  /// Moves pending output bytes into the s2c ring, ringing the client's
  /// doorbell when it declared itself asleep; a full ring leaves the rest
  /// for the next loop iteration (the shm analogue of an EAGAIN).
  void write_shm_connection(Connection& conn);
  void read_metrics(MetricsConn& conn);
  void write_metrics(MetricsConn& conn);
  void release_streams(Connection& conn);
  void begin_shutdown();

  core::AnomalyDetector* detector_;
  ServerConfig config_;
  serve::AsyncScoringRuntime runtime_;
  Index window_ = 0;      // detector context window: scores before it are warm-up
  Index n_channels_ = 0;  // fixes every SAMPLE frame's payload size

  Socket tcp_listener_;
  Socket uds_listener_;
  Socket shm_listener_;
  Socket metrics_listener_;
  int tcp_port_ = -1;
  int metrics_port_ = -1;
  int stop_pipe_[2] = {-1, -1};

  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<std::unique_ptr<MetricsConn>> metrics_conns_;
  std::vector<StreamMirror> streams_;

  bool running_ = false;
  bool shutting_down_ = false;

  std::atomic<long> connections_accepted_{0};
  std::atomic<long> frames_nacked_{0};
  std::atomic<long> protocol_errors_{0};
  std::atomic<long> scores_unrouted_{0};

  // Poll-thread telemetry (snapshot-safe from any thread; see varade::obs).
  obs::LogHistogram decode_hist_;     // frame decode+dispatch per read batch
  obs::LogHistogram out_depth_hist_;  // per-connection pending output bytes
  obs::Counter frames_decoded_;
  obs::Counter flush_stalls_;
  obs::Counter metrics_scrapes_;
  obs::LogHistogram shm_ring_depth_hist_;  // c2s readable bytes per drain
  obs::Counter batch_frames_;          // SAMPLE_BATCH frames dispatched
  obs::Counter batch_samples_;         // samples carried by those frames
  obs::Counter shm_doorbells_rung_;    // s2c doorbells (client was asleep)
};

}  // namespace varade::net
