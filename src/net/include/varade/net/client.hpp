// varade::net::Client — the blocking producer-side session against a
// varade-served daemon.
//
// Construction connects, sends HELLO, and blocks for the WELCOME, so a live
// Client always knows the daemon's stream/channel counts, threshold, and the
// admission policy resolved for this connection. Samples are encoded into a
// user-space buffer and flushed in large writes (one syscall carries many
// frames); everything the daemon sends back — scores, alarms, NACKs, stats,
// the GOODBYE — is surfaced through poll_event() in arrival order.
//
// A WIRE_ERROR frame from the daemon (this client broke the protocol) and
// any malformed frame from the peer both throw varade::Error; the socket is
// useless at that point, so the Client is too.
//
// Thread contract: one Client per thread; no internal locking.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "varade/net/shm.hpp"
#include "varade/net/socket.hpp"
#include "varade/net/wire.hpp"

namespace varade::net {

struct ClientConfig {
  /// Admission policy requested in HELLO; nullopt defers to the daemon's
  /// configured default (the resolved policy arrives in the WELCOME).
  std::optional<serve::BackpressurePolicy> policy;
  /// send_sample() flushes automatically once this many bytes are buffered.
  std::size_t flush_bytes = 32768;
  /// Connect retry window: a daemon that listens but has not entered run()
  /// yet holds connections in the backlog, so this mostly covers the
  /// daemon-not-yet-bound race in tests and forked benchmarks.
  int connect_retry_ms = 2000;
  /// send_sample() auto-coalescing: consecutive sends that continue one
  /// stream's sequence are held back and emitted as a single SAMPLE_BATCH of
  /// up to this many samples (1 = every send is its own SAMPLE frame). A
  /// stream switch, a sequence gap, or any flush ends the run, so frame
  /// order on the wire is exactly send order.
  Index batch = 1;
};

/// One frame from the daemon, tagged by kind; exactly one member is valid.
struct ClientEvent {
  enum class Kind { Score, Alarm, Nack, Stats, Goodbye };
  Kind kind = Kind::Score;
  ScoreData score;
  AlarmData alarm;
  NackData nack;
  WireStats stats;
};

class Client {
 public:
  /// Connects (retrying refused connects for config.connect_retry_ms),
  /// performs the HELLO/WELCOME handshake, and is ready to push.
  explicit Client(const Endpoint& endpoint, ClientConfig config = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// The daemon's session announcement (valid for the Client's lifetime).
  const Welcome& welcome() const { return welcome_; }
  Index n_streams() const { return welcome_.n_streams; }
  Index n_channels() const { return welcome_.n_channels; }

  /// Encodes one sample (values must hold n_channels() floats); with
  /// config.batch > 1 and the daemon's SAMPLE_BATCH feature granted,
  /// consecutive sends of one stream coalesce into batch frames. Flushes
  /// when the buffer crosses config.flush_bytes.
  void send_sample(Index stream, std::uint64_t seq, const float* values);
  /// Encodes `count` consecutive samples of one stream (values is the
  /// row-major [count, n_channels()] block starting at base_seq) as
  /// SAMPLE_BATCH frames — one header per kMaxBatchSamples instead of one
  /// per sample. Falls back to per-sample SAMPLE frames against a daemon
  /// that did not grant the feature.
  void push_batch(Index stream, std::uint64_t base_seq, const float* values, Index count);
  /// Writes out everything buffered (blocking; on the shm transport this
  /// spins-then-waits while the ring is full and makes no syscall otherwise,
  /// except the doorbell when the daemon declared itself asleep).
  void flush();

  /// True when the session runs over shared-memory rings.
  bool shm_active() const { return use_shm_; }
  /// Doorbell syscalls made by this client's push path (shm only). The
  /// zero-syscall claim is this counter staying a small fraction of the
  /// samples pushed — it only moves on empty->nonempty ring transitions
  /// that caught the daemon asleep.
  long shm_doorbells() const { return shm_doorbells_; }

  void request_stats();
  /// Asks the daemon to shut down (it drains, flushes, and says GOODBYE).
  void request_shutdown();
  /// Announces an orderly departure, releasing this client's streams.
  void send_goodbye();

  /// Blocks up to timeout_ms for the next frame from the daemon. True with
  /// `out` filled, false on timeout. Throws on WIRE_ERROR (carrying the
  /// daemon's message), a malformed frame, or a connection drop mid-frame.
  /// timeout_ms < 0 waits indefinitely (until a frame or EOF).
  bool poll_event(ClientEvent& out, int timeout_ms);

  /// True once the daemon's GOODBYE (or a clean EOF) was observed.
  bool closed() const { return closed_; }

 private:
  bool take_frame(ClientEvent& out);
  /// Ends the send_sample coalescing run, encoding it into out_.
  void flush_run();
  /// Blocks up to remaining_ms for ring bytes (or daemon death); true when
  /// progress was made, false on timeout.
  bool fill_from_shm(int remaining_ms);

  ClientConfig config_;
  Socket sock_;
  FrameReader reader_;
  std::vector<std::uint8_t> out_;
  Welcome welcome_;
  bool closed_ = false;

  ShmSession shm_;
  bool use_shm_ = false;
  bool shm_eof_ = false;  // bootstrap socket EOF seen; ring already drained
  long shm_doorbells_ = 0;

  // send_sample coalescing run (config.batch > 1).
  Index run_stream_ = -1;
  std::uint64_t run_base_seq_ = 0;
  Index run_count_ = 0;
  std::vector<float> run_values_;
};

}  // namespace varade::net
