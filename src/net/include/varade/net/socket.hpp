// Thin POSIX socket layer for varade::net: RAII fds, endpoint parsing, and
// EINTR-safe blocking I/O helpers shared by the server and the client.
//
// Endpoints are written as
//   unix:/path/to/daemon.sock      — Unix-domain stream socket
//   tcp:host:port                  — TCP (host may be a dotted quad or name)
//   host:port                      — shorthand for tcp:
//   shm:/path/to/daemon.sock       — shared-memory rings, bootstrapped over
//                                    a Unix socket at PATH (see shm.hpp)
// so every binary (daemon, client, bench, example) speaks one spec format.
//
// All failures throw varade::Error with the errno text attached; nothing in
// this layer installs signal handlers — writes use MSG_NOSIGNAL, so a peer
// hangup surfaces as an EPIPE Error instead of killing the process.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "varade/tensor/tensor.hpp"

namespace varade::net {

/// A parsed endpoint spec.
struct Endpoint {
  enum class Kind { Tcp, Unix, Shm };
  Kind kind = Kind::Tcp;
  std::string host;  // Tcp only
  int port = 0;      // Tcp only
  std::string path;  // Unix and Shm (the bootstrap socket path)
};

/// Parses "unix:PATH", "tcp:HOST:PORT", "HOST:PORT", or "shm:PATH". Throws
/// on anything else (empty path, non-numeric or out-of-range port, missing
/// separator).
Endpoint parse_endpoint(const std::string& spec);

/// Formats an endpoint back into the canonical spec string.
std::string to_string(const Endpoint& endpoint);

/// Move-only RAII socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Listening socket on 127.0.0.1-style TCP. `port` 0 picks an ephemeral
/// port; the resolved value is written back. SO_REUSEADDR is set.
Socket tcp_listen(const std::string& host, int& port, int backlog);

/// Listening Unix-domain socket at `path`; an existing socket file there is
/// unlinked first (a stale socket from a dead daemon would otherwise block
/// the bind forever).
Socket unix_listen(const std::string& path, int backlog);

/// Blocking connect; TCP_NODELAY is set on TCP sockets (frames are small and
/// latency-sensitive; the client batches writes itself).
Socket tcp_connect(const std::string& host, int port);
Socket unix_connect(const std::string& path);
Socket connect_endpoint(const Endpoint& endpoint);

void set_nonblocking(int fd, bool on);

/// Writes all `n` bytes (blocking, EINTR-safe, MSG_NOSIGNAL). Throws on any
/// failure including EPIPE.
void send_all(int fd, const void* data, std::size_t n);

/// One read of up to `n` bytes. Returns the byte count, 0 on orderly EOF, or
/// -1 when the socket is nonblocking and no data is ready. Throws on errors.
long read_some(int fd, void* buf, std::size_t n);

/// poll() for readability with a timeout; true when readable (or hung up),
/// false on timeout. EINTR restarts with the remaining time.
bool wait_readable(int fd, int timeout_ms);

/// Writes all `n` bytes over a Unix socket with `n_fds` file descriptors
/// attached via SCM_RIGHTS (riding the first byte). Blocking semantics like
/// send_all. The shm bootstrap handshake uses this to hand the segment and
/// doorbell fds to the client inside the WELCOME.
void send_with_fds(int fd, const void* data, std::size_t n, const int* fds, int n_fds);

/// One read of up to `n` bytes that also collects any SCM_RIGHTS fds into
/// `out_fds` (appended; caller owns them). Same return contract as
/// read_some. A receiver expecting fds must use this for *every* read in
/// that window — a plain recv() silently drops in-flight descriptors.
long recv_some_fds(int fd, void* buf, std::size_t n, std::vector<int>& out_fds);

}  // namespace varade::net
