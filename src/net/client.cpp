#include "varade/net/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <thread>
#include <unistd.h>

#include "varade/serve/thread_pool.hpp"

namespace varade::net {

namespace {

/// Connect with retries while the daemon is still binding its socket: ECONNREFUSED
/// (TCP) and ENOENT/ECONNREFUSED (UDS, file not created yet) back off and retry
/// until the window closes; anything else propagates immediately.
Socket connect_with_retry(const Endpoint& endpoint, int window_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(window_ms);
  for (;;) {
    try {
      return connect_endpoint(endpoint);
    } catch (const Error&) {
      if (Clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace

Client::Client(const Endpoint& endpoint, ClientConfig config)
    : config_(config), sock_(connect_with_retry(endpoint, config.connect_retry_ms)) {
  check(config_.batch >= 1, "net: ClientConfig.batch must be >= 1");
  const bool want_shm = endpoint.kind == Endpoint::Kind::Shm;
  // Always advertise SAMPLE_BATCH (it costs one payload byte); ask for the
  // shm rings only when the endpoint says so.
  const std::uint8_t features =
      static_cast<std::uint8_t>(kFeatureSampleBatch | (want_shm ? kFeatureShm : 0));
  append_hello(out_, config_.policy, features);
  send_all(sock_.fd(), out_.data(), out_.size());
  out_.clear();
  // The WELCOME is the handshake's second half; nothing else is legal first.
  // On a shm endpoint it arrives with the segment + doorbell fds attached,
  // so every handshake read must be fd-collecting (a plain recv() would
  // silently drop in-flight descriptors).
  std::uint8_t buf[4096];
  std::vector<int> fds;
  Frame frame;
  try {
    for (;;) {
      if (reader_.next(frame)) break;
      check(wait_readable(sock_.fd(), 5000), "net: timed out waiting for WELCOME");
      const long n = want_shm ? recv_some_fds(sock_.fd(), buf, sizeof(buf), fds)
                              : read_some(sock_.fd(), buf, sizeof(buf));
      check(n != 0, "net: connection closed before WELCOME");
      if (n > 0) reader_.feed(buf, static_cast<std::size_t>(n));
    }
    if (frame.type == FrameType::WireError) throw Error(decode_wire_error(frame));
    welcome_ = decode_welcome(frame);
    if (want_shm) {
      check((welcome_.features & kFeatureShm) != 0,
            "net: daemon did not grant the shm transport on " + to_string(endpoint));
      check(fds.size() == 3, "net: shm WELCOME carried " + std::to_string(fds.size()) +
                                 " fds, expected 3 (segment + two doorbells)");
      shm_ = ShmSession::attach(fds[0], fds[1], fds[2]);
      fds.clear();  // owned by the session now
      use_shm_ = true;
    }
  } catch (...) {
    for (const int fd : fds) ::close(fd);
    throw;
  }
}

void Client::flush_run() {
  if (run_count_ == 0) return;
  if (run_count_ == 1) {
    append_sample(out_, run_stream_, run_base_seq_, run_values_.data(), welcome_.n_channels);
  } else {
    append_sample_batch(out_, run_stream_, run_base_seq_, run_values_.data(), run_count_,
                        welcome_.n_channels);
  }
  run_count_ = 0;
  run_values_.clear();
}

void Client::send_sample(Index stream, std::uint64_t seq, const float* values) {
  if (config_.batch <= 1 || (welcome_.features & kFeatureSampleBatch) == 0) {
    append_sample(out_, stream, seq, values, welcome_.n_channels);
    if (out_.size() >= config_.flush_bytes) flush();
    return;
  }
  if (run_count_ > 0 &&
      (stream != run_stream_ || seq != run_base_seq_ + static_cast<std::uint64_t>(run_count_)))
    flush_run();
  if (run_count_ == 0) {
    run_stream_ = stream;
    run_base_seq_ = seq;
  }
  run_values_.insert(run_values_.end(), values, values + welcome_.n_channels);
  ++run_count_;
  if (run_count_ >= std::min<Index>(config_.batch, static_cast<Index>(kMaxBatchSamples)))
    flush_run();
  if (out_.size() >= config_.flush_bytes) flush();
}

void Client::push_batch(Index stream, std::uint64_t base_seq, const float* values, Index count) {
  check(count >= 1, "net: push_batch needs count >= 1");
  flush_run();  // anything coalesced earlier keeps its place in send order
  const Index channels = welcome_.n_channels;
  if ((welcome_.features & kFeatureSampleBatch) != 0) {
    for (Index off = 0; off < count;) {
      const Index k = std::min<Index>(count - off, static_cast<Index>(kMaxBatchSamples));
      append_sample_batch(out_, stream, base_seq + static_cast<std::uint64_t>(off),
                          values + static_cast<std::size_t>(off) * channels, k, channels);
      off += k;
      if (out_.size() >= config_.flush_bytes) flush();
    }
  } else {
    for (Index i = 0; i < count; ++i) {
      append_sample(out_, stream, base_seq + static_cast<std::uint64_t>(i),
                    values + static_cast<std::size_t>(i) * channels, channels);
      if (out_.size() >= config_.flush_bytes) flush();
    }
  }
  if (out_.size() >= config_.flush_bytes) flush();
}

void Client::flush() {
  flush_run();
  if (out_.empty()) return;
  if (use_shm_) {
    // Zero-syscall steady state: bytes go straight into the mapped ring. A
    // full ring is backpressure — spin-then-wait for the daemon to drain,
    // watching the bootstrap socket so a dead daemon cannot wedge us.
    serve::Backoff backoff;
    std::size_t off = 0;
    while (off < out_.size()) {
      bool bell = false;
      const std::size_t n = shm_.c2s().write_some(out_.data() + off, out_.size() - off, bell);
      if (bell) {
        ShmSession::ring_doorbell(shm_.c2s_doorbell());
        ++shm_doorbells_;
      }
      if (n == 0) {
        pollfd pfd{sock_.fd(), POLLIN, 0};
        if (::poll(&pfd, 1, 0) > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          std::uint8_t probe[64];
          if (read_some(sock_.fd(), probe, sizeof(probe)) == 0)
            fail("net: daemon closed the shm session with the ring full");
        }
        backoff.wait();
        continue;
      }
      backoff.reset();
      off += n;
    }
    out_.clear();
    return;
  }
  send_all(sock_.fd(), out_.data(), out_.size());
  out_.clear();
}

void Client::request_stats() {
  append_stats_request(out_);
  flush();
}

void Client::request_shutdown() {
  append_shutdown(out_);
  flush();
}

void Client::send_goodbye() {
  append_goodbye(out_);
  flush();
}

bool Client::take_frame(ClientEvent& out) {
  Frame frame;
  if (!reader_.next(frame)) return false;
  switch (frame.type) {
    case FrameType::Score:
      out.kind = ClientEvent::Kind::Score;
      out.score = decode_score(frame);
      return true;
    case FrameType::Alarm:
      out.kind = ClientEvent::Kind::Alarm;
      out.alarm = decode_alarm(frame);
      return true;
    case FrameType::Nack:
      out.kind = ClientEvent::Kind::Nack;
      out.nack = decode_nack(frame);
      return true;
    case FrameType::StatsReply:
      out.kind = ClientEvent::Kind::Stats;
      out.stats = decode_stats_reply(frame);
      return true;
    case FrameType::Goodbye:
      out.kind = ClientEvent::Kind::Goodbye;
      closed_ = true;
      return true;
    case FrameType::WireError:
      throw Error(decode_wire_error(frame));
    default:
      fail("net: unexpected ", to_string(frame.type), " frame from the daemon");
  }
}

bool Client::fill_from_shm(int remaining_ms) {
  std::uint8_t buf[65536];
  const std::size_t n = shm_.s2c().read_some(buf, sizeof(buf));
  if (n > 0) {
    reader_.feed(buf, n);
    return true;
  }
  // Ring empty: declare ourselves asleep and re-check before blocking. The
  // daemon's next write sees the armed flag and rings the doorbell, so the
  // poll below can never sleep through data (see shm.hpp's ordering
  // contract).
  if (!shm_.s2c().arm_waiting()) {
    shm_.s2c().disarm_waiting();
    return true;  // bytes raced in; drain on the next lap
  }
  pollfd pfds[2] = {{shm_.s2c_doorbell(), POLLIN, 0}, {sock_.fd(), POLLIN, 0}};
  const int rc = ::poll(pfds, 2, remaining_ms);
  shm_.s2c().disarm_waiting();
  if (rc < 0) {
    if (errno != EINTR) fail("net: poll(): ", std::strerror(errno));
    return true;
  }
  if (rc == 0) return false;  // timeout
  if ((pfds[0].revents & POLLIN) != 0) ShmSession::drain_doorbell(shm_.s2c_doorbell());
  if ((pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
    const long r = read_some(sock_.fd(), buf, sizeof(buf));
    if (r == 0) {
      // Daemon gone: drain what it left in the ring, then treat as EOF.
      for (;;) {
        const std::size_t m = shm_.s2c().read_some(buf, sizeof(buf));
        if (m == 0) break;
        reader_.feed(buf, m);
      }
      shm_eof_ = true;
    }
    // Bytes on the bootstrap socket post-handshake are a daemon bug;
    // discard them rather than desynchronise the ring's FrameReader.
  }
  return true;
}

bool Client::poll_event(ClientEvent& out, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const bool forever = timeout_ms < 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(forever ? 0 : timeout_ms);
  std::uint8_t buf[65536];
  for (;;) {
    if (take_frame(out)) return true;
    if (closed_) return false;  // clean EOF already seen; nothing will arrive
    if (shm_eof_) {
      check(reader_.buffered() == 0, "net: connection dropped mid-frame");
      closed_ = true;
      return false;
    }
    int remaining = -1;
    if (!forever) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
      if (left <= 0) return false;
      remaining = static_cast<int>(left);
    }
    if (use_shm_) {
      if (!fill_from_shm(remaining)) return false;
      continue;
    }
    if (!wait_readable(sock_.fd(), remaining)) return false;
    const long n = read_some(sock_.fd(), buf, sizeof(buf));
    if (n == 0) {
      check(reader_.buffered() == 0, "net: connection dropped mid-frame");
      closed_ = true;
      return false;
    }
    if (n > 0) reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace varade::net
