#include "varade/net/client.hpp"

#include <cerrno>
#include <chrono>
#include <thread>

namespace varade::net {

namespace {

/// Connect with retries while the daemon is still binding its socket: ECONNREFUSED
/// (TCP) and ENOENT/ECONNREFUSED (UDS, file not created yet) back off and retry
/// until the window closes; anything else propagates immediately.
Socket connect_with_retry(const Endpoint& endpoint, int window_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(window_ms);
  for (;;) {
    try {
      return connect_endpoint(endpoint);
    } catch (const Error&) {
      if (Clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace

Client::Client(const Endpoint& endpoint, ClientConfig config)
    : config_(config), sock_(connect_with_retry(endpoint, config.connect_retry_ms)) {
  append_hello(out_, config_.policy);
  flush();
  // The WELCOME is the handshake's second half; nothing else is legal first.
  std::uint8_t buf[4096];
  Frame frame;
  for (;;) {
    if (reader_.next(frame)) break;
    check(wait_readable(sock_.fd(), 5000), "net: timed out waiting for WELCOME");
    const long n = read_some(sock_.fd(), buf, sizeof(buf));
    check(n != 0, "net: connection closed before WELCOME");
    if (n > 0) reader_.feed(buf, static_cast<std::size_t>(n));
  }
  if (frame.type == FrameType::WireError) throw Error(decode_wire_error(frame));
  welcome_ = decode_welcome(frame);
}

void Client::send_sample(Index stream, std::uint64_t seq, const float* values) {
  append_sample(out_, stream, seq, values, welcome_.n_channels);
  if (out_.size() >= config_.flush_bytes) flush();
}

void Client::flush() {
  if (out_.empty()) return;
  send_all(sock_.fd(), out_.data(), out_.size());
  out_.clear();
}

void Client::request_stats() {
  append_stats_request(out_);
  flush();
}

void Client::request_shutdown() {
  append_shutdown(out_);
  flush();
}

void Client::send_goodbye() {
  append_goodbye(out_);
  flush();
}

bool Client::take_frame(ClientEvent& out) {
  Frame frame;
  if (!reader_.next(frame)) return false;
  switch (frame.type) {
    case FrameType::Score:
      out.kind = ClientEvent::Kind::Score;
      out.score = decode_score(frame);
      return true;
    case FrameType::Alarm:
      out.kind = ClientEvent::Kind::Alarm;
      out.alarm = decode_alarm(frame);
      return true;
    case FrameType::Nack:
      out.kind = ClientEvent::Kind::Nack;
      out.nack = decode_nack(frame);
      return true;
    case FrameType::StatsReply:
      out.kind = ClientEvent::Kind::Stats;
      out.stats = decode_stats_reply(frame);
      return true;
    case FrameType::Goodbye:
      out.kind = ClientEvent::Kind::Goodbye;
      closed_ = true;
      return true;
    case FrameType::WireError:
      throw Error(decode_wire_error(frame));
    default:
      fail("net: unexpected ", to_string(frame.type), " frame from the daemon");
  }
}

bool Client::poll_event(ClientEvent& out, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const bool forever = timeout_ms < 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(forever ? 0 : timeout_ms);
  std::uint8_t buf[65536];
  for (;;) {
    if (take_frame(out)) return true;
    if (closed_) return false;  // clean EOF already seen; nothing will arrive
    int remaining = -1;
    if (!forever) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
      if (left <= 0) return false;
      remaining = static_cast<int>(left);
    }
    if (!wait_readable(sock_.fd(), remaining)) return false;
    const long n = read_some(sock_.fd(), buf, sizeof(buf));
    if (n == 0) {
      check(reader_.buffered() == 0, "net: connection dropped mid-frame");
      closed_ = true;
      return false;
    }
    if (n > 0) reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace varade::net
