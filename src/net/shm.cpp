#include "varade/net/shm.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <new>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace varade::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  fail("net: shm ", what, ": ", std::strerror(errno));
}

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

void check_ring_bytes(std::size_t ring_bytes) {
  check(is_pow2(ring_bytes), "net: shm ring_bytes " + std::to_string(ring_bytes) +
                                 " is not a power of two");
  check(ring_bytes >= kShmMinRingBytes && ring_bytes <= kShmMaxRingBytes,
        "net: shm ring_bytes " + std::to_string(ring_bytes) + " outside [" +
            std::to_string(kShmMinRingBytes) + ", " + std::to_string(kShmMaxRingBytes) + "]");
}

ShmRingControl* ring_control(void* base, std::size_t ring_bytes, int which) {
  auto* p = static_cast<std::uint8_t*>(base) + sizeof(ShmSegmentHeader) +
            static_cast<std::size_t>(which) * (sizeof(ShmRingControl) + ring_bytes);
  return reinterpret_cast<ShmRingControl*>(p);
}

std::uint8_t* ring_data(void* base, std::size_t ring_bytes, int which) {
  return reinterpret_cast<std::uint8_t*>(ring_control(base, ring_bytes, which)) +
         sizeof(ShmRingControl);
}

}  // namespace

std::size_t shm_segment_size(std::size_t ring_bytes) {
  return sizeof(ShmSegmentHeader) + 2 * (sizeof(ShmRingControl) + ring_bytes);
}

void shm_init_segment(void* base, std::size_t ring_bytes) {
  check_ring_bytes(ring_bytes);
  auto* header = new (base) ShmSegmentHeader;
  header->ring_bytes = static_cast<std::uint32_t>(ring_bytes);
  for (int which = 0; which < 2; ++which) new (ring_control(base, ring_bytes, which)) ShmRingControl;
}

std::size_t shm_validate_segment(const void* base, std::size_t mapped_bytes) {
  check(mapped_bytes >= sizeof(ShmSegmentHeader),
        "net: shm segment is " + std::to_string(mapped_bytes) +
            " bytes, smaller than its own header");
  // The header bytes come from another process: copy them out before
  // inspection so validation never trusts alignment or aliasing of the raw
  // mapping.
  ShmSegmentHeader header;
  std::memcpy(&header, base, sizeof(header));
  check(header.magic == kShmMagic, "net: shm segment has bad magic (not a varade segment)");
  check(header.version == kShmVersion,
        "net: shm segment version " + std::to_string(header.version) + " (expected " +
            std::to_string(kShmVersion) + ")");
  const std::size_t ring_bytes = header.ring_bytes;
  check(is_pow2(ring_bytes),
        "net: shm segment ring_bytes " + std::to_string(ring_bytes) + " is not a power of two");
  check(ring_bytes >= kShmMinRingBytes && ring_bytes <= kShmMaxRingBytes,
        "net: shm segment ring_bytes " + std::to_string(ring_bytes) + " outside [" +
            std::to_string(kShmMinRingBytes) + ", " + std::to_string(kShmMaxRingBytes) + "]");
  check(mapped_bytes >= shm_segment_size(ring_bytes),
        "net: shm segment is " + std::to_string(mapped_bytes) + " bytes but its header claims " +
            std::to_string(shm_segment_size(ring_bytes)));
  return ring_bytes;
}

std::size_t ShmRing::free_space() const {
  const std::uint64_t head = control_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = control_->tail.load(std::memory_order_relaxed);
  return bytes_ - static_cast<std::size_t>(tail - head);
}

std::size_t ShmRing::readable() const {
  const std::uint64_t tail = control_->tail.load(std::memory_order_acquire);
  const std::uint64_t head = control_->head.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(tail - head);
}

std::size_t ShmRing::write_some(const std::uint8_t* src, std::size_t n, bool& ring_doorbell) {
  ring_doorbell = false;
  const std::uint64_t head = control_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = control_->tail.load(std::memory_order_relaxed);
  const std::size_t space = bytes_ - static_cast<std::size_t>(tail - head);
  const std::size_t count = std::min(n, space);
  if (count == 0) return 0;
  const std::size_t at = static_cast<std::size_t>(tail) & mask_;
  const std::size_t first = std::min(count, bytes_ - at);
  std::memcpy(data_ + at, src, first);
  if (count > first) std::memcpy(data_, src + first, count - first);
  control_->tail.store(tail + count, std::memory_order_release);
  // Dekker handshake with arm_waiting(): the fence orders the tail store
  // before the waiting load, so either the consumer's re-check sees the new
  // tail or this load sees the armed flag — never neither.
#if defined(__SANITIZE_THREAD__)
  // TSan cannot model atomic_thread_fence (GCC rejects it under
  // -Werror=tsan), so this build uses the fence-free Dekker formulation: a
  // seq_cst RMW on `waiting` itself. The two sides' RMWs are
  // coherence-ordered, and the loser synchronizes-with the winner — the same
  // either/or guarantee the fences give, at the cost of an unconditional RMW.
  ring_doorbell = control_->waiting.exchange(0, std::memory_order_seq_cst) != 0;
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (control_->waiting.load(std::memory_order_relaxed) != 0)
    ring_doorbell = control_->waiting.exchange(0, std::memory_order_relaxed) != 0;
#endif
  return count;
}

std::size_t ShmRing::read_some(std::uint8_t* dst, std::size_t n) {
  const std::uint64_t tail = control_->tail.load(std::memory_order_acquire);
  const std::uint64_t head = control_->head.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(tail - head);
  const std::size_t count = std::min(n, avail);
  if (count == 0) return 0;
  const std::size_t at = static_cast<std::size_t>(head) & mask_;
  const std::size_t first = std::min(count, bytes_ - at);
  std::memcpy(dst, data_ + at, first);
  if (count > first) std::memcpy(dst + first, data_, count - first);
  control_->head.store(head + count, std::memory_order_release);
  return count;
}

bool ShmRing::arm_waiting() {
#if defined(__SANITIZE_THREAD__)
  // Fence-free Dekker under TSan; see write_some().
  control_->waiting.exchange(1, std::memory_order_seq_cst);
#else
  control_->waiting.store(1, std::memory_order_relaxed);
  // Pairs with the producer-side fence in write_some(); see there.
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  return readable() == 0;
}

void ShmRing::disarm_waiting() { control_->waiting.store(0, std::memory_order_relaxed); }

ShmSession::~ShmSession() {
  if (base_ != nullptr) ::munmap(base_, mapped_);
  if (seg_fd_ >= 0) ::close(seg_fd_);
  if (c2s_doorbell_ >= 0) ::close(c2s_doorbell_);
  if (s2c_doorbell_ >= 0) ::close(s2c_doorbell_);
}

ShmSession::ShmSession(ShmSession&& other) noexcept
    : base_(other.base_),
      mapped_(other.mapped_),
      seg_fd_(other.seg_fd_),
      c2s_doorbell_(other.c2s_doorbell_),
      s2c_doorbell_(other.s2c_doorbell_),
      c2s_(other.c2s_),
      s2c_(other.s2c_) {
  other.base_ = nullptr;
  other.mapped_ = 0;
  other.seg_fd_ = other.c2s_doorbell_ = other.s2c_doorbell_ = -1;
  other.c2s_ = ShmRing();
  other.s2c_ = ShmRing();
}

ShmSession& ShmSession::operator=(ShmSession&& other) noexcept {
  if (this != &other) {
    this->~ShmSession();
    new (this) ShmSession(std::move(other));
  }
  return *this;
}

void ShmSession::close_seg_fd() {
  if (seg_fd_ >= 0) {
    ::close(seg_fd_);
    seg_fd_ = -1;
  }
}

ShmSession ShmSession::create(std::size_t ring_bytes) {
  check_ring_bytes(ring_bytes);
  // A unique name, opened exclusively and unlinked before anyone else can
  // see it: the segment lives only as the fds referencing it.
  char name[64];
  static std::atomic<unsigned> counter{0};
  std::snprintf(name, sizeof(name), "/varade-%ld-%u", static_cast<long>(::getpid()),
                counter.fetch_add(1, std::memory_order_relaxed));
  const int fd = ::shm_open(name, O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0) fail_errno(std::string("shm_open(") + name + ")");
  (void)::shm_unlink(name);

  ShmSession session;
  session.seg_fd_ = fd;
  session.mapped_ = shm_segment_size(ring_bytes);
  if (::ftruncate(fd, static_cast<off_t>(session.mapped_)) != 0) fail_errno("ftruncate");
  void* base = ::mmap(nullptr, session.mapped_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) fail_errno("mmap");
  session.base_ = base;
  shm_init_segment(base, ring_bytes);
  session.c2s_ = ShmRing(ring_control(base, ring_bytes, 0), ring_data(base, ring_bytes, 0),
                         ring_bytes);
  session.s2c_ = ShmRing(ring_control(base, ring_bytes, 1), ring_data(base, ring_bytes, 1),
                         ring_bytes);
  session.c2s_doorbell_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (session.c2s_doorbell_ < 0) fail_errno("eventfd");
  session.s2c_doorbell_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (session.s2c_doorbell_ < 0) fail_errno("eventfd");
  return session;
}

ShmSession ShmSession::attach(int seg_fd, int c2s_doorbell, int s2c_doorbell) {
  ShmSession session;  // owns the fds from here on, error paths included
  session.seg_fd_ = seg_fd;
  session.c2s_doorbell_ = c2s_doorbell;
  session.s2c_doorbell_ = s2c_doorbell;
  check(seg_fd >= 0 && c2s_doorbell >= 0 && s2c_doorbell >= 0,
        "net: shm attach needs three valid fds");
  struct stat st{};
  if (::fstat(seg_fd, &st) != 0) fail_errno("fstat");
  check(st.st_size > 0, "net: shm segment fd has zero size");
  session.mapped_ = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, session.mapped_, PROT_READ | PROT_WRITE, MAP_SHARED, seg_fd, 0);
  if (base == MAP_FAILED) fail_errno("mmap");
  session.base_ = base;
  const std::size_t ring_bytes = shm_validate_segment(base, session.mapped_);
  session.c2s_ = ShmRing(ring_control(base, ring_bytes, 0), ring_data(base, ring_bytes, 0),
                         ring_bytes);
  session.s2c_ = ShmRing(ring_control(base, ring_bytes, 1), ring_data(base, ring_bytes, 1),
                         ring_bytes);
  session.close_seg_fd();  // the mapping outlives the fd
  return session;
}

void ShmSession::ring_doorbell(int eventfd) {
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t rc = ::write(eventfd, &one, sizeof(one));
    if (rc >= 0 || errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno != EINTR) fail_errno("eventfd write");
  }
}

void ShmSession::drain_doorbell(int eventfd) {
  std::uint64_t sink = 0;
  for (;;) {
    const ssize_t rc = ::read(eventfd, &sink, sizeof(sink));
    if (rc >= 0 || errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno != EINTR) fail_errno("eventfd read");
  }
}

}  // namespace varade::net
