// Anomaly-detection evaluation metrics.
//
// The paper's accuracy metric is AUC-ROC (section 4.3): the detector is
// interpreted as a binary classifier over a score threshold, and the area
// under the true-positive-rate vs false-positive-rate curve summarises it
// threshold-free. The implementation here is the exact rank-based (tie-aware)
// AUC, equivalent to the normalised Mann-Whitney U statistic.
#pragma once

#include <vector>

#include "varade/tensor/tensor.hpp"

namespace varade::eval {

/// One point of a ROC curve.
struct RocPoint {
  float threshold = 0.0F;
  float tpr = 0.0F;  // true positive rate
  float fpr = 0.0F;  // false positive rate
};

/// Exact AUC-ROC of `scores` against binary `labels` (1 = anomalous).
/// Ties receive half credit; throws if labels are all equal.
double auc_roc(const std::vector<float>& scores, const std::vector<int>& labels);
double auc_roc(const Tensor& scores, const Tensor& labels);

/// Full ROC curve at every distinct threshold (descending thresholds).
std::vector<RocPoint> roc_curve(const std::vector<float>& scores, const std::vector<int>& labels);

/// Confusion counts at a fixed threshold (score > threshold => positive).
struct Confusion {
  long tp = 0;
  long fp = 0;
  long tn = 0;
  long fn = 0;

  double precision() const { return tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0; }
  double recall() const { return tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0; }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
  double accuracy() const {
    const long total = tp + fp + tn + fn;
    return total > 0 ? static_cast<double>(tp + tn) / total : 0.0;
  }
};

Confusion confusion_at(const std::vector<float>& scores, const std::vector<int>& labels,
                       float threshold);

/// Best F1 over all candidate thresholds, with the threshold that achieves it.
struct BestF1 {
  double f1 = 0.0;
  float threshold = 0.0F;
};
BestF1 best_f1(const std::vector<float>& scores, const std::vector<int>& labels);

/// Event-level detection: an anomaly event (maximal run of label==1) counts as
/// detected when any score inside it exceeds the threshold.
struct EventStats {
  long total_events = 0;
  long detected_events = 0;
  double detection_rate() const {
    return total_events > 0 ? static_cast<double>(detected_events) / total_events : 0.0;
  }
};
EventStats event_detection(const std::vector<float>& scores, const std::vector<int>& labels,
                           float threshold);

/// Summary statistics used by benches and reports.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};
Summary summarize(const std::vector<float>& values);
Summary summarize(const std::vector<double>& values);

}  // namespace varade::eval
