#include "varade/eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace varade::eval {

namespace {
void require_valid(const std::vector<float>& scores, const std::vector<int>& labels) {
  check(scores.size() == labels.size(), "scores and labels must have equal length");
  check(!scores.empty(), "metrics on empty inputs");
  for (float s : scores) check(std::isfinite(s), "scores must be finite");
}
}  // namespace

double auc_roc(const std::vector<float>& scores, const std::vector<int>& labels) {
  require_valid(scores, labels);
  const long n_pos = std::count_if(labels.begin(), labels.end(), [](int l) { return l != 0; });
  const long n_neg = static_cast<long>(labels.size()) - n_pos;
  check(n_pos > 0 && n_neg > 0, "AUC needs both positive and negative labels");

  // Rank-based AUC with midranks for ties: AUC = (R_pos - P(P+1)/2) / (P*N).
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    // Elements i..j share the midrank (ranks are 1-based).
    const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k)
      if (labels[order[k]] != 0) rank_sum_pos += midrank;
    i = j + 1;
  }
  const double p = static_cast<double>(n_pos);
  const double n = static_cast<double>(n_neg);
  return (rank_sum_pos - p * (p + 1.0) / 2.0) / (p * n);
}

double auc_roc(const Tensor& scores, const Tensor& labels) {
  check(scores.rank() == 1 && labels.rank() == 1, "auc_roc expects rank-1 tensors");
  std::vector<float> s(scores.data(), scores.data() + scores.numel());
  std::vector<int> l(static_cast<std::size_t>(labels.numel()));
  for (Index i = 0; i < labels.numel(); ++i) l[static_cast<std::size_t>(i)] =
      labels[i] != 0.0F ? 1 : 0;
  return auc_roc(s, l);
}

std::vector<RocPoint> roc_curve(const std::vector<float>& scores, const std::vector<int>& labels) {
  require_valid(scores, labels);
  const long n_pos = std::count_if(labels.begin(), labels.end(), [](int l) { return l != 0; });
  const long n_neg = static_cast<long>(labels.size()) - n_pos;
  check(n_pos > 0 && n_neg > 0, "ROC needs both positive and negative labels");

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  std::vector<RocPoint> curve;
  curve.push_back({std::numeric_limits<float>::infinity(), 0.0F, 0.0F});
  long tp = 0;
  long fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const float threshold = scores[order[i]];
    while (i < order.size() && scores[order[i]] == threshold) {
      if (labels[order[i]] != 0)
        ++tp;
      else
        ++fp;
      ++i;
    }
    curve.push_back({threshold, static_cast<float>(tp) / static_cast<float>(n_pos),
                     static_cast<float>(fp) / static_cast<float>(n_neg)});
  }
  return curve;
}

Confusion confusion_at(const std::vector<float>& scores, const std::vector<int>& labels,
                       float threshold) {
  require_valid(scores, labels);
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] > threshold;
    const bool actual = labels[i] != 0;
    if (predicted && actual)
      ++c.tp;
    else if (predicted && !actual)
      ++c.fp;
    else if (!predicted && actual)
      ++c.fn;
    else
      ++c.tn;
  }
  return c;
}

BestF1 best_f1(const std::vector<float>& scores, const std::vector<int>& labels) {
  require_valid(scores, labels);
  std::vector<float> candidates = scores;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  BestF1 best;
  // Threshold just below each distinct score (score > threshold => positive).
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const float threshold =
        i == 0 ? candidates[0] - 1.0F
               : std::nextafter(candidates[i], -std::numeric_limits<float>::infinity());
    const Confusion c = confusion_at(scores, labels, threshold);
    const double f1 = c.f1();
    if (f1 > best.f1) {
      best.f1 = f1;
      best.threshold = threshold;
    }
  }
  return best;
}

EventStats event_detection(const std::vector<float>& scores, const std::vector<int>& labels,
                           float threshold) {
  require_valid(scores, labels);
  EventStats stats;
  std::size_t i = 0;
  while (i < labels.size()) {
    if (labels[i] == 0) {
      ++i;
      continue;
    }
    // Maximal run of anomalous labels = one event.
    ++stats.total_events;
    bool detected = false;
    while (i < labels.size() && labels[i] != 0) {
      if (scores[i] > threshold) detected = true;
      ++i;
    }
    if (detected) ++stats.detected_events;
  }
  return stats;
}

namespace {
template <typename T>
Summary summarize_impl(const std::vector<T>& values) {
  check(!values.empty(), "summarize on empty input");
  Summary s;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (T v : values) {
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const double n = static_cast<double>(values.size());
  s.mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - s.mean * s.mean);
  s.stddev = std::sqrt(var);
  std::vector<T> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = static_cast<double>(sorted.front());
  s.max = static_cast<double>(sorted.back());
  s.median = static_cast<double>(sorted[sorted.size() / 2]);
  return s;
}
}  // namespace

Summary summarize(const std::vector<float>& values) { return summarize_impl(values); }
Summary summarize(const std::vector<double>& values) { return summarize_impl(values); }

}  // namespace varade::eval
