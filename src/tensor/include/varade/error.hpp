// Common error type and runtime-check helpers shared by every varade module.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace varade {

/// Exception thrown for all recoverable library errors (bad shapes, malformed
/// files, invalid arguments). Internal invariant violations also throw this so
/// that failure injection in tests never trips undefined behaviour.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws varade::Error with `message` when `condition` is false.
inline void check(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

/// Builds an error message from streamable parts, then throws.
template <typename... Parts>
[[noreturn]] void fail(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  throw Error(os.str());
}

}  // namespace varade
