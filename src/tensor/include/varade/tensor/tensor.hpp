// Dense row-major float tensor used by every numerical component.
//
// Design notes
//  - Value semantics: a Tensor owns its storage (std::vector<float>); copies
//    are deep. This keeps ownership trivial per the Core Guidelines (R.11) and
//    is cheap enough at the model sizes this library targets (edge-scale).
//  - Rank is dynamic (0..4 used in practice). Shapes are std::vector<long>.
//  - All shape mismatches throw varade::Error rather than asserting, so tests
//    can exercise failure paths safely.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "varade/error.hpp"
#include "varade/tensor/rng.hpp"

namespace varade {

using Index = long;
using Shape = std::vector<Index>;

/// Number of elements a shape describes (product of dims; 1 for rank 0).
Index shape_numel(const Shape& shape);

/// Human-readable form, e.g. "[2, 3, 4]".
std::string shape_to_string(const Shape& shape);

/// Dense row-major float tensor.
class Tensor {
 public:
  /// Empty rank-1 tensor of size 0.
  Tensor() : shape_{0} {}

  /// Tensor of `shape` filled with `fill`.
  explicit Tensor(Shape shape, float fill = 0.0F);

  /// Tensor adopting existing data; data.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  /// Rank-1 tensor from a braced list: Tensor::vector({1.f, 2.f}).
  static Tensor vector(std::initializer_list<float> values);

  /// Rank-2 tensor from nested braces (rows must be equal length).
  static Tensor matrix(std::initializer_list<std::initializer_list<float>> rows);

  /// Gaussian-initialised tensor.
  static Tensor randn(const Shape& shape, Rng& rng, float stddev = 1.0F, float mean = 0.0F);

  /// Uniform-initialised tensor in [lo, hi).
  static Tensor rand_uniform(const Shape& shape, Rng& rng, float lo, float hi);

  // --- shape & storage -----------------------------------------------------
  const Shape& shape() const { return shape_; }
  Index rank() const { return static_cast<Index>(shape_.size()); }
  Index numel() const { return static_cast<Index>(data_.size()); }
  Index dim(Index axis) const;
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  // --- element access (bounds-checked in debug-friendly form) --------------
  float& at(Index i);
  float at(Index i) const;
  float& at(Index i, Index j);
  float at(Index i, Index j) const;
  float& at(Index i, Index j, Index k);
  float at(Index i, Index j, Index k) const;
  float& at(Index i, Index j, Index k, Index l);
  float at(Index i, Index j, Index k, Index l) const;

  /// Flat unchecked access for hot loops.
  float& operator[](Index i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](Index i) const { return data_[static_cast<std::size_t>(i)]; }

  // --- reshaping ------------------------------------------------------------
  /// Same data, new shape (numel must match).
  Tensor reshaped(Shape new_shape) const;
  /// 2-D transpose.
  Tensor transposed() const;
  /// Row `i` of a rank-2 tensor as a rank-1 tensor (copy).
  Tensor row(Index i) const;
  /// Slice along axis 0: elements [begin, end).
  Tensor slice0(Index begin, Index end) const;

  // --- elementwise ops (throw on shape mismatch) ----------------------------
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(const Tensor& rhs);
  Tensor& operator/=(const Tensor& rhs);
  Tensor& operator+=(float s);
  Tensor& operator-=(float s);
  Tensor& operator*=(float s);
  Tensor& operator/=(float s);

  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
  friend Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
  friend Tensor operator/(Tensor lhs, const Tensor& rhs) { return lhs /= rhs; }
  friend Tensor operator+(Tensor lhs, float s) { return lhs += s; }
  friend Tensor operator-(Tensor lhs, float s) { return lhs -= s; }
  friend Tensor operator*(Tensor lhs, float s) { return lhs *= s; }
  friend Tensor operator/(Tensor lhs, float s) { return lhs /= s; }
  friend Tensor operator*(float s, Tensor rhs) { return rhs *= s; }

  /// Applies `fn` to every element, returning a new tensor.
  Tensor map(const std::function<float(float)>& fn) const;
  /// In-place variant.
  void map_inplace(const std::function<float(float)>& fn);

  // --- reductions ------------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// L2 norm of all elements.
  float norm() const;
  /// True if any element is NaN or +-inf.
  bool has_non_finite() const;

  /// Fill all elements with `value`.
  void fill(float value);
  /// Set all elements to zero.
  void zero() { fill(0.0F); }

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

 private:
  Index flat_index(Index i, Index j) const;
  Index flat_index(Index i, Index j, Index k) const;
  Index flat_index(Index i, Index j, Index k, Index l) const;

  Shape shape_;
  std::vector<float> data_;
};

// --- free functions ----------------------------------------------------------

/// Matrix product of rank-2 tensors: [m,k] x [k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// y += a * x (shapes must match).
void axpy(float a, const Tensor& x, Tensor& y);

/// Dot product of two tensors viewed flat.
float dot(const Tensor& a, const Tensor& b);

/// Elementwise helpers.
Tensor exp(const Tensor& t);
Tensor log(const Tensor& t);
Tensor sqrt(const Tensor& t);
Tensor abs(const Tensor& t);
Tensor clamp(const Tensor& t, float lo, float hi);

/// Max |a-b| over all elements (shapes must match).
float max_abs_diff(const Tensor& a, const Tensor& b);

/// True when all elements differ by at most `tol`.
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5F);

}  // namespace varade
