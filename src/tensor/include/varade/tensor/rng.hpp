// Deterministic random number generation used across the library.
//
// Every stochastic component in the repository (weight init, sensor noise,
// collision schedules, subsampling) draws from an explicitly seeded Rng so
// experiments reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace varade {

/// Seeded pseudo-random generator with the distributions the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0F, float hi = 1.0F) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(gen_);
  }

  /// Gaussian sample.
  float normal(float mean = 0.0F, float stddev = 1.0F) {
    std::normal_distribution<float> d(mean, stddev);
    return d(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(gen_);
  }

  /// Uniform 64-bit value, e.g. for deriving child seeds.
  std::uint64_t next_u64() { return gen_(); }

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(gen_);
  }

  /// Derives an independent child generator (for parallel components).
  Rng fork() { return Rng(gen_()); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace varade
