#include "varade/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace varade {

Index shape_numel(const Shape& shape) {
  Index n = 1;
  for (Index d : shape) {
    check(d >= 0, "shape dimensions must be non-negative");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  check(static_cast<Index>(data_.size()) == shape_numel(shape_),
        "data size does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::vector(std::initializer_list<float> values) {
  return Tensor({static_cast<Index>(values.size())}, std::vector<float>(values));
}

Tensor Tensor::matrix(std::initializer_list<std::initializer_list<float>> rows) {
  const Index r = static_cast<Index>(rows.size());
  check(r > 0, "matrix needs at least one row");
  const Index c = static_cast<Index>(rows.begin()->size());
  std::vector<float> data;
  data.reserve(static_cast<std::size_t>(r * c));
  for (const auto& row : rows) {
    check(static_cast<Index>(row.size()) == c, "matrix rows must have equal length");
    data.insert(data.end(), row.begin(), row.end());
  }
  return Tensor({r, c}, std::move(data));
}

Tensor Tensor::randn(const Shape& shape, Rng& rng, float stddev, float mean) {
  Tensor t(shape);
  for (auto& v : t.data_) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::rand_uniform(const Shape& shape, Rng& rng, float lo, float hi) {
  Tensor t(shape);
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Index Tensor::dim(Index axis) const {
  check(axis >= 0 && axis < rank(), "axis out of range");
  return shape_[static_cast<std::size_t>(axis)];
}

Index Tensor::flat_index(Index i, Index j) const {
  return i * shape_[1] + j;
}
Index Tensor::flat_index(Index i, Index j, Index k) const {
  return (i * shape_[1] + j) * shape_[2] + k;
}
Index Tensor::flat_index(Index i, Index j, Index k, Index l) const {
  return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

namespace {
[[noreturn]] void index_error(const Shape& shape, Index got_rank) {
  fail("tensor of shape ", shape_to_string(shape), " indexed with ", got_rank,
       " indices or index out of bounds");
}
}  // namespace

float& Tensor::at(Index i) {
  if (rank() != 1 || i < 0 || i >= shape_[0]) index_error(shape_, 1);
  return data_[static_cast<std::size_t>(i)];
}
float Tensor::at(Index i) const { return const_cast<Tensor*>(this)->at(i); }

float& Tensor::at(Index i, Index j) {
  if (rank() != 2 || i < 0 || i >= shape_[0] || j < 0 || j >= shape_[1]) index_error(shape_, 2);
  return data_[static_cast<std::size_t>(flat_index(i, j))];
}
float Tensor::at(Index i, Index j) const { return const_cast<Tensor*>(this)->at(i, j); }

float& Tensor::at(Index i, Index j, Index k) {
  if (rank() != 3 || i < 0 || i >= shape_[0] || j < 0 || j >= shape_[1] || k < 0 ||
      k >= shape_[2])
    index_error(shape_, 3);
  return data_[static_cast<std::size_t>(flat_index(i, j, k))];
}
float Tensor::at(Index i, Index j, Index k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

float& Tensor::at(Index i, Index j, Index k, Index l) {
  if (rank() != 4 || i < 0 || i >= shape_[0] || j < 0 || j >= shape_[1] || k < 0 ||
      k >= shape_[2] || l < 0 || l >= shape_[3])
    index_error(shape_, 4);
  return data_[static_cast<std::size_t>(flat_index(i, j, k, l))];
}
float Tensor::at(Index i, Index j, Index k, Index l) const {
  return const_cast<Tensor*>(this)->at(i, j, k, l);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  check(shape_numel(new_shape) == numel(),
        "reshape from " + shape_to_string(shape_) + " to " + shape_to_string(new_shape) +
            " changes element count");
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::transposed() const {
  check(rank() == 2, "transposed() requires a rank-2 tensor");
  const Index r = shape_[0];
  const Index c = shape_[1];
  Tensor out({c, r});
  for (Index i = 0; i < r; ++i)
    for (Index j = 0; j < c; ++j) out[j * r + i] = (*this)[i * c + j];
  return out;
}

Tensor Tensor::row(Index i) const {
  check(rank() == 2, "row() requires a rank-2 tensor");
  check(i >= 0 && i < shape_[0], "row index out of range");
  const Index c = shape_[1];
  std::vector<float> data(data_.begin() + static_cast<std::ptrdiff_t>(i * c),
                          data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * c));
  return Tensor({c}, std::move(data));
}

Tensor Tensor::slice0(Index begin, Index end) const {
  check(rank() >= 1, "slice0 requires rank >= 1");
  check(begin >= 0 && end >= begin && end <= shape_[0], "slice0 bounds out of range");
  Index inner = 1;
  for (std::size_t a = 1; a < shape_.size(); ++a) inner *= shape_[a];
  Shape out_shape = shape_;
  out_shape[0] = end - begin;
  std::vector<float> data(data_.begin() + static_cast<std::ptrdiff_t>(begin * inner),
                          data_.begin() + static_cast<std::ptrdiff_t>(end * inner));
  return Tensor(std::move(out_shape), std::move(data));
}

namespace {
void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b))
    fail("shape mismatch in ", op, ": ", shape_to_string(a.shape()), " vs ",
         shape_to_string(b.shape()));
}
}  // namespace

Tensor& Tensor::operator+=(const Tensor& rhs) {
  require_same_shape(*this, rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}
Tensor& Tensor::operator-=(const Tensor& rhs) {
  require_same_shape(*this, rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}
Tensor& Tensor::operator*=(const Tensor& rhs) {
  require_same_shape(*this, rhs, "operator*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
  return *this;
}
Tensor& Tensor::operator/=(const Tensor& rhs) {
  require_same_shape(*this, rhs, "operator/=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] /= rhs.data_[i];
  return *this;
}
Tensor& Tensor::operator+=(float s) {
  for (auto& v : data_) v += s;
  return *this;
}
Tensor& Tensor::operator-=(float s) {
  for (auto& v : data_) v -= s;
  return *this;
}
Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}
Tensor& Tensor::operator/=(float s) {
  for (auto& v : data_) v /= s;
  return *this;
}

Tensor Tensor::map(const std::function<float(float)>& fn) const {
  Tensor out = *this;
  out.map_inplace(fn);
  return out;
}

void Tensor::map_inplace(const std::function<float(float)>& fn) {
  for (auto& v : data_) v = fn(v);
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  check(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  check(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  check(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

bool Tensor::has_non_finite() const {
  return std::any_of(data_.begin(), data_.end(), [](float v) { return !std::isfinite(v); });
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 tensors");
  const Index m = a.dim(0);
  const Index k = a.dim(1);
  check(b.dim(0) == k, "matmul inner dimensions differ: " + shape_to_string(a.shape()) +
                           " x " + shape_to_string(b.shape()));
  const Index n = b.dim(1);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // i-k-j loop order keeps the inner loop contiguous over b and out.
  for (Index i = 0; i < m; ++i) {
    for (Index kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0F) continue;
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (Index j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

void axpy(float a, const Tensor& x, Tensor& y) {
  check(x.same_shape(y), "axpy shape mismatch");
  const float* px = x.data();
  float* py = y.data();
  const Index n = x.numel();
  for (Index i = 0; i < n; ++i) py[i] += a * px[i];
}

float dot(const Tensor& a, const Tensor& b) {
  check(a.numel() == b.numel(), "dot requires equal element counts");
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  const Index n = a.numel();
  for (Index i = 0; i < n; ++i) acc += static_cast<double>(pa[i]) * pb[i];
  return static_cast<float>(acc);
}

Tensor exp(const Tensor& t) {
  return t.map([](float v) { return std::exp(v); });
}
Tensor log(const Tensor& t) {
  return t.map([](float v) { return std::log(v); });
}
Tensor sqrt(const Tensor& t) {
  return t.map([](float v) { return std::sqrt(v); });
}
Tensor abs(const Tensor& t) {
  return t.map([](float v) { return std::fabs(v); });
}
Tensor clamp(const Tensor& t, float lo, float hi) {
  return t.map([lo, hi](float v) { return std::clamp(v, lo, hi); });
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check(a.same_shape(b), "max_abs_diff shape mismatch");
  float m = 0.0F;
  for (Index i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  return a.same_shape(b) && max_abs_diff(a, b) <= tol;
}

}  // namespace varade
