#include "varade/data/csv.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace varade::data {

void write_csv(const MultivariateSeries& series, std::ostream& out) {
  check(series.n_channels() > 0, "cannot write empty-schema series");
  const auto& channels = series.channels();
  for (Index c = 0; c < series.n_channels(); ++c) {
    if (c > 0) out << ',';
    if (!channels.empty())
      out << channels[static_cast<std::size_t>(c)].name;
    else
      out << "ch" << c;
  }
  out << ",label\n";
  for (Index t = 0; t < series.length(); ++t) {
    const float* s = series.sample(t);
    for (Index c = 0; c < series.n_channels(); ++c) {
      if (c > 0) out << ',';
      out << s[c];
    }
    out << ',' << series.label(t) << '\n';
  }
  check(static_cast<bool>(out), "failed writing CSV stream");
}

void write_csv(const MultivariateSeries& series, const std::string& path) {
  std::ofstream f(path);
  check(f.is_open(), "cannot open for writing: " + path);
  write_csv(series, f);
}

MultivariateSeries read_csv(std::istream& in) {
  std::string line;
  check(static_cast<bool>(std::getline(in, line)), "CSV stream is empty");

  // Parse header.
  std::vector<ChannelInfo> channels;
  {
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) channels.push_back({field, "", ""});
  }
  check(channels.size() >= 2, "CSV must have at least one channel and a label column");
  check(channels.back().name == "label", "last CSV column must be 'label'");
  channels.pop_back();
  const auto d = static_cast<Index>(channels.size());

  MultivariateSeries series(d, channels);
  std::vector<float> sample(static_cast<std::size_t>(d));
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string field;
    Index c = 0;
    int label = 0;
    while (std::getline(ss, field, ',')) {
      check(c <= d, "CSV line " + std::to_string(line_no) + " has too many fields");
      try {
        const float v = std::stof(field);
        if (c < d)
          sample[static_cast<std::size_t>(c)] = v;
        else
          label = static_cast<int>(v);
      } catch (const std::exception&) {
        fail("CSV line ", line_no, ": cannot parse '", field, "' as a number");
      }
      ++c;
    }
    check(c == d + 1, "CSV line " + std::to_string(line_no) + " has " + std::to_string(c) +
                          " fields, expected " + std::to_string(d + 1));
    series.append(sample, label);
  }
  return series;
}

MultivariateSeries read_csv(const std::string& path) {
  std::ifstream f(path);
  check(f.is_open(), "cannot open for reading: " + path);
  return read_csv(f);
}

}  // namespace varade::data
