// Min-max normalisation to [-1, 1], fitted on the training split only
// (paper section 4.3: "data are normalized in the range [-1, 1] based on the
// minimum and maximum values of each sensor's data").
#pragma once

#include <iosfwd>
#include <vector>

#include "varade/data/timeseries.hpp"

namespace varade::data {

class MinMaxNormalizer {
 public:
  MinMaxNormalizer() = default;

  /// Learns per-channel min/max from a series. Throws on non-finite input
  /// (NaN would silently fall out of the min/max comparisons otherwise).
  void fit(const MultivariateSeries& series);

  /// Learns per-channel min/max from a [n, d] tensor; rejects non-finite
  /// values, naming the offending channel and row.
  void fit(const Tensor& x);

  /// Maps values into [-1, 1]; constant channels map to 0.
  void transform_sample(const float* in, float* out) const;

  /// Batched transform_sample over `rows` contiguous channel-count-wide rows
  /// (`in`/`out` hold rows * n_channels() floats). Element-for-element the
  /// same arithmetic expression as transform_sample, so results are
  /// bit-identical — this exists so slab-resident serving state normalises
  /// in one vectorisable pass instead of a call per sample.
  void transform_rows(const float* in, Index rows, float* out) const;
  Tensor transform(const Tensor& x) const;
  MultivariateSeries transform(const MultivariateSeries& series) const;

  /// Inverse map back to original units.
  Tensor inverse_transform(const Tensor& x) const;

  bool fitted() const { return !mins_.empty(); }
  Index n_channels() const { return static_cast<Index>(mins_.size()); }
  float channel_min(Index c) const;
  float channel_max(Index c) const;

  void save(std::ostream& out) const;

  /// Restores a saved normalizer; rejects streams whose per-channel bounds
  /// are non-finite or have max < min (corrupt or hand-crafted data).
  void load(std::istream& in);

 private:
  std::vector<float> mins_;
  std::vector<float> maxs_;
};

}  // namespace varade::data
