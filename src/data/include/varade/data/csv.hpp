// CSV import/export for multivariate series, for interop with the original
// python tooling (the paper's dataset is distributed as CSV).
//
// Layout: header row with channel names plus a trailing "label" column; one
// sample per row.
#pragma once

#include <iosfwd>
#include <string>

#include "varade/data/timeseries.hpp"

namespace varade::data {

void write_csv(const MultivariateSeries& series, std::ostream& out);
void write_csv(const MultivariateSeries& series, const std::string& path);

MultivariateSeries read_csv(std::istream& in);
MultivariateSeries read_csv(const std::string& path);

}  // namespace varade::data
