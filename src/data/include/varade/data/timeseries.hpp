// Multivariate time-series container and the 86-channel schema of the paper's
// KUKA case study (Table 1).
//
// A MultivariateSeries stores samples row-major [time, channel] plus optional
// per-sample binary anomaly labels and channel metadata.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "varade/tensor/tensor.hpp"

namespace varade::data {

/// Description of one channel (one row of the paper's Table 1).
struct ChannelInfo {
  std::string name;
  std::string unit;
  std::string description;
};

/// The paper's channel layout: 1 action-ID channel, 7 joints x 11 IMU
/// channels, and 8 power channels = 86 channels total (section 4.2).
///
/// Note: Table 1 prints seven power rows but the text specifies "eight
/// quantities monitored by the energy meter"; we include the cumulative
/// energy register (present on the Eastron SDM230) as the eighth, which
/// makes the arithmetic 1 + 77 + 8 = 86 channels consistent.
std::vector<ChannelInfo> kuka_channel_schema();

/// Number of channels in the KUKA schema.
inline constexpr Index kKukaChannelCount = 86;
inline constexpr Index kKukaJointCount = 7;
inline constexpr Index kKukaChannelsPerJoint = 11;
inline constexpr Index kKukaPowerChannelCount = 8;
inline constexpr double kKukaSampleRateHz = 200.0;  // IMU output rate

/// Index of the first channel of joint `j` (after the action-ID channel).
inline Index kuka_joint_channel_base(Index joint) {
  return 1 + joint * kKukaChannelsPerJoint;
}
/// Index of the first power channel.
inline Index kuka_power_channel_base() {
  return 1 + kKukaJointCount * kKukaChannelsPerJoint;
}

/// Dense multivariate time series with optional anomaly labels.
class MultivariateSeries {
 public:
  MultivariateSeries() = default;

  /// Creates an empty series with `n_channels` channels.
  explicit MultivariateSeries(Index n_channels, std::vector<ChannelInfo> channels = {});

  Index n_channels() const { return n_channels_; }
  Index length() const { return length_; }
  double sample_rate_hz() const { return sample_rate_hz_; }
  void set_sample_rate_hz(double hz) { sample_rate_hz_ = hz; }

  const std::vector<ChannelInfo>& channels() const { return channels_; }

  /// Appends one sample (must have n_channels values); label 1 = anomalous.
  void append(const float* sample, int label = 0);
  void append(const std::vector<float>& sample, int label = 0);

  /// Value of channel `c` at time `t`.
  float value(Index t, Index c) const;

  /// Pointer to the first channel of sample `t`.
  const float* sample(Index t) const;

  int label(Index t) const;
  bool has_anomalies() const;
  Index count_anomalous_samples() const;

  /// All values as a [length, n_channels] tensor (copy).
  Tensor to_tensor() const;

  /// Labels as a [length] tensor of 0/1 (copy).
  Tensor labels_tensor() const;

  /// Sub-series of samples [begin, end).
  MultivariateSeries slice(Index begin, Index end) const;

  /// Raw storage access for hot paths (row-major [length, n_channels]).
  const std::vector<float>& raw() const { return values_; }

 private:
  Index n_channels_ = 0;
  Index length_ = 0;
  double sample_rate_hz_ = kKukaSampleRateHz;
  std::vector<ChannelInfo> channels_;
  std::vector<float> values_;  // [length * n_channels]
  std::vector<std::uint8_t> labels_;
};

}  // namespace varade::data
