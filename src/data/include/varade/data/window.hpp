// Sliding-window dataset construction for autoregressive training.
//
// A window pairs a context of `window` consecutive samples (shaped [C, T]
// channels-first, matching the Conv1d/Lstm convention) with the immediately
// following sample as the forecasting target (paper Figure 1: inputs
// t_-T..t_0, predict t_1).
#pragma once

#include <cstdint>

#include "varade/data/timeseries.hpp"

namespace varade::data {

struct WindowConfig {
  Index window = 512;  // paper: T = 512
  Index stride = 1;    // hop between consecutive training windows
};

/// Indexes windows over a series without materialising them.
class WindowDataset {
 public:
  WindowDataset(const MultivariateSeries& series, WindowConfig config);

  /// Number of (context, target) pairs.
  Index size() const { return count_; }
  Index window() const { return config_.window; }
  Index n_channels() const { return series_->n_channels(); }

  /// Context window `i` as a channels-first [C, T] tensor.
  Tensor context(Index i) const;

  /// Target sample (the step right after window `i`) as a [C] tensor.
  Tensor target(Index i) const;

  /// Time index of the target sample of window `i` in the source series.
  Index target_time(Index i) const;

  /// Label of the target sample (1 when the step to predict is anomalous).
  int target_label(Index i) const;

  /// Materialises a batch of contexts [B, C, T] and targets [B, C] for the
  /// given window indices.
  void gather(const std::vector<Index>& indices, Tensor& contexts, Tensor& targets) const;

  /// All window indices in order; convenience for shuffling at the call site.
  std::vector<Index> all_indices() const;

 private:
  const MultivariateSeries* series_;
  WindowConfig config_;
  Index count_ = 0;
};

/// Copies a channels-first [C, T] context ending at (and including) sample
/// `end_t` directly from a series; used by the streaming runtime.
Tensor extract_context(const MultivariateSeries& series, Index end_t, Index window);

}  // namespace varade::data
