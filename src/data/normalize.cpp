#include "varade/data/normalize.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

namespace varade::data {

void MinMaxNormalizer::fit(const MultivariateSeries& series) {
  check(series.length() > 0, "cannot fit normalizer on empty series");
  fit(series.to_tensor());
}

void MinMaxNormalizer::fit(const Tensor& x) {
  check(x.rank() == 2 && x.dim(0) > 0, "normalizer fit expects non-empty [n, d]");
  const Index n = x.dim(0);
  const Index d = x.dim(1);
  mins_.assign(static_cast<std::size_t>(d), std::numeric_limits<float>::max());
  maxs_.assign(static_cast<std::size_t>(d), std::numeric_limits<float>::lowest());
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < d; ++j) {
      const float v = x[i * d + j];
      // Rejected per element: std::min/std::max comparisons silently drop
      // NaN (the comparison is false, keeping the other operand), so a
      // post-loop check of mins_/maxs_ could not detect poisoned input.
      if (!std::isfinite(v)) {
        mins_.clear();
        maxs_.clear();
        fail("normalizer fit data must be finite (channel ", j, ", row ", i, " is ", v, ")");
      }
      auto js = static_cast<std::size_t>(j);
      mins_[js] = std::min(mins_[js], v);
      maxs_[js] = std::max(maxs_[js], v);
    }
  }
}

void MinMaxNormalizer::transform_sample(const float* in, float* out) const {
  check(fitted(), "normalizer used before fit");
  const Index d = n_channels();
  for (Index j = 0; j < d; ++j) {
    auto js = static_cast<std::size_t>(j);
    const float range = maxs_[js] - mins_[js];
    out[j] = range > 0.0F ? 2.0F * (in[j] - mins_[js]) / range - 1.0F : 0.0F;
  }
}

void MinMaxNormalizer::transform_rows(const float* in, Index rows, float* out) const {
  check(fitted(), "normalizer used before fit");
  const Index d = n_channels();
  const float* mins = mins_.data();
  const float* maxs = maxs_.data();
  for (Index i = 0; i < rows; ++i) {
    const float* src = in + i * d;
    float* dst = out + i * d;
    for (Index j = 0; j < d; ++j) {
      // Exact transform_sample expression (no hoisted reciprocal): bit
      // parity with the per-sample path is part of the serving contract.
      const float range = maxs[j] - mins[j];
      dst[j] = range > 0.0F ? 2.0F * (src[j] - mins[j]) / range - 1.0F : 0.0F;
    }
  }
}

Tensor MinMaxNormalizer::transform(const Tensor& x) const {
  check(fitted(), "normalizer used before fit");
  check(x.rank() == 2 && x.dim(1) == n_channels(), "transform expects [n, " +
                                                       std::to_string(n_channels()) + "]");
  Tensor out(x.shape());
  const Index n = x.dim(0);
  const Index d = x.dim(1);
  for (Index i = 0; i < n; ++i) transform_sample(x.data() + i * d, out.data() + i * d);
  return out;
}

MultivariateSeries MinMaxNormalizer::transform(const MultivariateSeries& series) const {
  check(fitted(), "normalizer used before fit");
  check(series.n_channels() == n_channels(), "series channel count mismatch");
  MultivariateSeries out(series.n_channels(), series.channels());
  out.set_sample_rate_hz(series.sample_rate_hz());
  std::vector<float> buf(static_cast<std::size_t>(series.n_channels()));
  for (Index t = 0; t < series.length(); ++t) {
    transform_sample(series.sample(t), buf.data());
    out.append(buf.data(), series.label(t));
  }
  return out;
}

Tensor MinMaxNormalizer::inverse_transform(const Tensor& x) const {
  check(fitted(), "normalizer used before fit");
  check(x.rank() == 2 && x.dim(1) == n_channels(), "inverse_transform shape mismatch");
  Tensor out(x.shape());
  const Index n = x.dim(0);
  const Index d = x.dim(1);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < d; ++j) {
      auto js = static_cast<std::size_t>(j);
      const float range = maxs_[js] - mins_[js];
      out[i * d + j] = range > 0.0F
                           ? mins_[js] + (x[i * d + j] + 1.0F) * 0.5F * range
                           : mins_[js];
    }
  }
  return out;
}

float MinMaxNormalizer::channel_min(Index c) const {
  check(c >= 0 && c < n_channels(), "channel index out of range");
  return mins_[static_cast<std::size_t>(c)];
}

float MinMaxNormalizer::channel_max(Index c) const {
  check(c >= 0 && c < n_channels(), "channel index out of range");
  return maxs_[static_cast<std::size_t>(c)];
}

void MinMaxNormalizer::save(std::ostream& out) const {
  check(fitted(), "cannot save unfitted normalizer");
  const auto d = static_cast<std::uint64_t>(mins_.size());
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  out.write(reinterpret_cast<const char*>(mins_.data()),
            static_cast<std::streamsize>(d * sizeof(float)));
  out.write(reinterpret_cast<const char*>(maxs_.data()),
            static_cast<std::streamsize>(d * sizeof(float)));
  check(static_cast<bool>(out), "failed writing normalizer");
}

void MinMaxNormalizer::load(std::istream& in) {
  std::uint64_t d = 0;
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  check(static_cast<bool>(in) && d > 0 && d < (1U << 24), "malformed normalizer stream");
  mins_.resize(d);
  maxs_.resize(d);
  in.read(reinterpret_cast<char*>(mins_.data()), static_cast<std::streamsize>(d * sizeof(float)));
  in.read(reinterpret_cast<char*>(maxs_.data()), static_cast<std::streamsize>(d * sizeof(float)));
  if (!in) {
    mins_.clear();
    maxs_.clear();
    fail("unexpected end of normalizer stream");
  }
  // A fitted normalizer always satisfies min <= max with finite bounds
  // (fit() rejects non-finite data), so anything else is a corrupt or
  // hand-crafted stream. The isfinite checks also catch NaN, which would
  // sail through the >= comparison below.
  for (std::size_t j = 0; j < d; ++j) {
    if (!std::isfinite(mins_[j]) || !std::isfinite(maxs_[j]) || maxs_[j] < mins_[j]) {
      const float lo = mins_[j];
      const float hi = maxs_[j];
      mins_.clear();
      maxs_.clear();
      fail("malformed normalizer stream: channel ", j, " has min ", lo, ", max ", hi);
    }
  }
}

}  // namespace varade::data
