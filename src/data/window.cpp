#include "varade/data/window.hpp"

#include <numeric>

namespace varade::data {

WindowDataset::WindowDataset(const MultivariateSeries& series, WindowConfig config)
    : series_(&series), config_(config) {
  check(config_.window >= 1, "window must be >= 1");
  check(config_.stride >= 1, "stride must be >= 1");
  // A window of length T starting at s covers [s, s+T) and targets s+T, so the
  // last valid start is length - T - 1.
  const Index usable = series.length() - config_.window;
  count_ = usable > 0 ? (usable - 1) / config_.stride + 1 : 0;
}

Tensor WindowDataset::context(Index i) const {
  check(i >= 0 && i < count_, "window index out of range");
  const Index start = i * config_.stride;
  const Index c = series_->n_channels();
  const Index t = config_.window;
  Tensor out({c, t});
  for (Index step = 0; step < t; ++step) {
    const float* s = series_->sample(start + step);
    for (Index ch = 0; ch < c; ++ch) out[ch * t + step] = s[ch];
  }
  return out;
}

Tensor WindowDataset::target(Index i) const {
  check(i >= 0 && i < count_, "window index out of range");
  const Index c = series_->n_channels();
  Tensor out({c});
  const float* s = series_->sample(target_time(i));
  for (Index ch = 0; ch < c; ++ch) out[ch] = s[ch];
  return out;
}

Index WindowDataset::target_time(Index i) const {
  check(i >= 0 && i < count_, "window index out of range");
  return i * config_.stride + config_.window;
}

int WindowDataset::target_label(Index i) const { return series_->label(target_time(i)); }

void WindowDataset::gather(const std::vector<Index>& indices, Tensor& contexts,
                           Tensor& targets) const {
  const auto b = static_cast<Index>(indices.size());
  const Index c = series_->n_channels();
  const Index t = config_.window;
  contexts = Tensor({b, c, t});
  targets = Tensor({b, c});
  for (Index k = 0; k < b; ++k) {
    const Index i = indices[static_cast<std::size_t>(k)];
    check(i >= 0 && i < count_, "window index out of range in gather");
    const Index start = i * config_.stride;
    for (Index step = 0; step < t; ++step) {
      const float* s = series_->sample(start + step);
      for (Index ch = 0; ch < c; ++ch) contexts[(k * c + ch) * t + step] = s[ch];
    }
    const float* ts = series_->sample(target_time(i));
    for (Index ch = 0; ch < c; ++ch) targets[k * c + ch] = ts[ch];
  }
}

std::vector<Index> WindowDataset::all_indices() const {
  std::vector<Index> idx(static_cast<std::size_t>(count_));
  std::iota(idx.begin(), idx.end(), Index{0});
  return idx;
}

Tensor extract_context(const MultivariateSeries& series, Index end_t, Index window) {
  check(window >= 1, "window must be >= 1");
  check(end_t >= window - 1 && end_t < series.length(),
        "not enough history for a window ending at t=" + std::to_string(end_t));
  const Index c = series.n_channels();
  Tensor out({c, window});
  const Index start = end_t - window + 1;
  for (Index step = 0; step < window; ++step) {
    const float* s = series.sample(start + step);
    for (Index ch = 0; ch < c; ++ch) out[ch * window + step] = s[ch];
  }
  return out;
}

}  // namespace varade::data
