#include "varade/data/timeseries.hpp"

#include <algorithm>

namespace varade::data {

std::vector<ChannelInfo> kuka_channel_schema() {
  std::vector<ChannelInfo> schema;
  schema.reserve(static_cast<std::size_t>(kKukaChannelCount));
  schema.push_back({"action_id", "-", "Robot action ID"});
  for (Index j = 0; j < kKukaJointCount; ++j) {
    const std::string p = "sensor_id_" + std::to_string(j) + "_";
    schema.push_back({p + "AccX", "m/s^2", "X-axis acceleration"});
    schema.push_back({p + "AccY", "m/s^2", "Y-axis acceleration"});
    schema.push_back({p + "AccZ", "m/s^2", "Z-axis acceleration"});
    schema.push_back({p + "GyroX", "deg/s", "X-axis angular velocity"});
    schema.push_back({p + "GyroY", "deg/s", "Y-axis angular velocity"});
    schema.push_back({p + "GyroZ", "deg/s", "Z-axis angular velocity"});
    schema.push_back({p + "q1", "-", "Quaternion orientation comp. 1"});
    schema.push_back({p + "q2", "-", "Quaternion orientation comp. 2"});
    schema.push_back({p + "q3", "-", "Quaternion orientation comp. 3"});
    schema.push_back({p + "q4", "-", "Quaternion orientation comp. 4"});
    schema.push_back({p + "temp", "degC", "Temperature"});
  }
  schema.push_back({"current", "A", "Current"});
  schema.push_back({"frequency", "Hz", "Frequency"});
  schema.push_back({"phase_angle", "degree", "Phase angle"});
  schema.push_back({"power", "W", "Power"});
  schema.push_back({"power_factor", "-", "Power factor"});
  schema.push_back({"reactive_power", "VAr", "Reactive power"});
  schema.push_back({"voltage", "V", "Voltage"});
  schema.push_back({"energy", "kWh", "Cumulative energy register"});
  check(static_cast<Index>(schema.size()) == kKukaChannelCount,
        "KUKA schema must have 86 channels");
  return schema;
}

MultivariateSeries::MultivariateSeries(Index n_channels, std::vector<ChannelInfo> channels)
    : n_channels_(n_channels), channels_(std::move(channels)) {
  check(n_channels > 0, "series needs at least one channel");
  check(channels_.empty() || static_cast<Index>(channels_.size()) == n_channels,
        "channel metadata count must match n_channels");
}

void MultivariateSeries::append(const float* sample, int label) {
  values_.insert(values_.end(), sample, sample + n_channels_);
  labels_.push_back(static_cast<std::uint8_t>(label != 0 ? 1 : 0));
  ++length_;
}

void MultivariateSeries::append(const std::vector<float>& sample, int label) {
  check(static_cast<Index>(sample.size()) == n_channels_,
        "sample has " + std::to_string(sample.size()) + " values, expected " +
            std::to_string(n_channels_));
  append(sample.data(), label);
}

float MultivariateSeries::value(Index t, Index c) const {
  check(t >= 0 && t < length_ && c >= 0 && c < n_channels_, "series access out of range");
  return values_[static_cast<std::size_t>(t * n_channels_ + c)];
}

const float* MultivariateSeries::sample(Index t) const {
  check(t >= 0 && t < length_, "sample index out of range");
  return values_.data() + t * n_channels_;
}

int MultivariateSeries::label(Index t) const {
  check(t >= 0 && t < length_, "label index out of range");
  return labels_[static_cast<std::size_t>(t)];
}

bool MultivariateSeries::has_anomalies() const {
  return std::any_of(labels_.begin(), labels_.end(), [](std::uint8_t l) { return l != 0; });
}

Index MultivariateSeries::count_anomalous_samples() const {
  return static_cast<Index>(std::count_if(labels_.begin(), labels_.end(),
                                          [](std::uint8_t l) { return l != 0; }));
}

Tensor MultivariateSeries::to_tensor() const {
  return Tensor({length_, n_channels_}, values_);
}

Tensor MultivariateSeries::labels_tensor() const {
  Tensor t({length_});
  for (Index i = 0; i < length_; ++i) t[i] = static_cast<float>(labels_[static_cast<std::size_t>(i)]);
  return t;
}

MultivariateSeries MultivariateSeries::slice(Index begin, Index end) const {
  check(begin >= 0 && end >= begin && end <= length_, "slice bounds out of range");
  MultivariateSeries out(n_channels_, channels_);
  out.sample_rate_hz_ = sample_rate_hz_;
  for (Index t = begin; t < end; ++t) out.append(sample(t), label(t));
  return out;
}

}  // namespace varade::data
