// Edge device specifications.
//
// The paper evaluates on two NVIDIA Jetson boards (section 4.3):
//   - Jetson Xavier NX  (6 cores, 16 GB RAM)
//   - Jetson AGX Orin   (12 cores, 32 GB RAM)
// Since this reproduction runs on a host machine, the boards are modelled.
// Compute/bandwidth figures are sustained small-batch FP32 estimates derived
// from the public specs; dispatch overheads and dynamic-power coefficients
// are calibrated against the published Table 2 (see device.cpp); idle
// telemetry is copied verbatim from Table 2's Idle rows.
#pragma once

#include <string>

namespace varade::edge {

struct DeviceSpec {
  std::string name;

  // Compute resources (sustained, not peak marketing numbers).
  int cpu_cores = 0;
  double cpu_gflops_per_core = 0.0;
  double gpu_gflops = 0.0;
  double mem_bandwidth_gbs = 0.0;  // shared LPDDR bandwidth

  // Framework dispatch overheads per operator. The paper's stack is
  // TensorFlow 2.11 eager + sklearn on Python; per-op dispatch, not raw
  // kernel time, dominates small-model latency on these boards.
  double gpu_dispatch_ms = 0.0;  // TF eager op on GPU
  double cpu_dispatch_ms = 0.0;  // sklearn / python-level op on CPU

  // Power model: total = idle + duty-weighted dynamic contributions.
  double idle_power_w = 0.0;
  double cpu_dynamic_power_w = 0.0;   // full-load all-core CPU addition
  double gpu_dynamic_power_w = 0.0;   // full-load GPU addition
  double gpu_active_base_w = 0.0;     // waking the GPU at all (Orin idles at 0%)

  // Memory.
  double ram_total_mb = 0.0;

  // Idle telemetry (paper Table 2, Idle rows).
  double idle_cpu_util_pct = 0.0;
  double idle_gpu_util_pct = 0.0;
  double idle_ram_mb = 0.0;
  double idle_gpu_ram_mb = 0.0;
};

/// Jetson Xavier NX: 6-core Carmel CPU, 384-core Volta GPU, 16 GB LPDDR4x.
DeviceSpec jetson_xavier_nx();

/// Jetson AGX Orin: 12-core Cortex-A78AE CPU, 2048-core Ampere GPU, 32 GB LPDDR5.
DeviceSpec jetson_agx_orin();

}  // namespace varade::edge
