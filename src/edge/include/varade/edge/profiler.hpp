// Roofline-style performance/power estimation for detector workloads on the
// modelled Jetson boards, producing the jetson-stats-like metrics of the
// paper's Table 2 (CPU%, GPU%, RAM, GPU RAM, power, inference frequency).
//
// Latency model per inference:
//   latency = max(compute, memory) + n_ops * dispatch + preprocess
// where compute uses the executing engine's sustained throughput scaled by
// the workload's parallel efficiency, memory streams parameters + reference
// data + activations through shared DRAM, and dispatch is the framework
// per-op overhead (TF eager / sklearn) that dominates small models.
//
// Utilisation and power follow from the duty cycles of each engine over the
// inference loop; a recurrent model can keep the GPU spinning with persistent
// kernels (`gpu_resident_spin`), which reproduces AR-LSTM's high GPU
// utilisation and power at low throughput.
#pragma once

#include <string>

#include "varade/edge/device.hpp"

namespace varade::edge {

/// Static cost description of one detector's per-inference workload.
struct ModelCost {
  std::string name;
  double flops = 0.0;             // arithmetic ops per inference
  double param_bytes = 0.0;       // weights resident in memory
  double ref_bytes = 0.0;         // reference data streamed per query (kNN)
  double activation_bytes = 0.0;  // intermediate traffic per inference
  int n_ops = 1;                  // framework operator dispatches per inference
  bool runs_on_gpu = false;       // where the TensorFlow planner placed it
  /// Fraction of the engine's sustained throughput the workload achieves.
  double parallel_efficiency = 0.7;
  /// Worker threads for CPU workloads (clamped to the core count).
  int cpu_threads = 1;
  /// Recurrent persistent kernels keep the GPU busy while waiting.
  bool gpu_resident_spin = false;
  /// Host-side preprocessing cost per inference (windowing, normalisation).
  double preprocess_flops = 0.0;
};

/// Estimated on-device behaviour (one Table 2 row).
struct EstimatedPerformance {
  double latency_ms = 0.0;
  double inference_hz = 0.0;
  double cpu_util_pct = 0.0;
  double gpu_util_pct = 0.0;
  double ram_mb = 0.0;
  double gpu_ram_mb = 0.0;
  double power_w = 0.0;
};

class EdgeProfiler {
 public:
  explicit EdgeProfiler(DeviceSpec spec);

  EstimatedPerformance estimate(const ModelCost& cost) const;

  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace varade::edge
