#include "varade/edge/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "varade/error.hpp"

namespace varade::edge {

EdgeProfiler::EdgeProfiler(DeviceSpec spec) : spec_(std::move(spec)) {
  check(spec_.cpu_cores > 0 && spec_.cpu_gflops_per_core > 0.0, "invalid CPU spec");
  check(spec_.gpu_gflops > 0.0 && spec_.mem_bandwidth_gbs > 0.0, "invalid GPU/memory spec");
}

EstimatedPerformance EdgeProfiler::estimate(const ModelCost& cost) const {
  check(cost.flops >= 0.0 && cost.param_bytes >= 0.0 && cost.activation_bytes >= 0.0 &&
            cost.ref_bytes >= 0.0,
        "model cost values must be non-negative");
  check(cost.parallel_efficiency > 0.0 && cost.parallel_efficiency <= 1.0,
        "parallel efficiency must be in (0, 1]");
  check(cost.n_ops >= 1, "a model has at least one operator");
  check(cost.cpu_threads >= 1, "cpu_threads must be >= 1");

  EstimatedPerformance perf;

  // --- compute and dispatch on the executing engine -------------------------
  double compute_s = 0.0;
  double dispatch_s = 0.0;
  const int threads = std::min(cost.cpu_threads, spec_.cpu_cores);
  if (cost.runs_on_gpu) {
    compute_s = cost.flops / (spec_.gpu_gflops * 1e9 * cost.parallel_efficiency);
    dispatch_s = cost.n_ops * spec_.gpu_dispatch_ms * 1e-3;
  } else {
    const double cpu_gflops = threads * spec_.cpu_gflops_per_core;
    compute_s = cost.flops / (cpu_gflops * 1e9 * cost.parallel_efficiency);
    dispatch_s = cost.n_ops * spec_.cpu_dispatch_ms * 1e-3;
  }

  // --- memory: weights, streamed reference data, activations ----------------
  const double bytes = cost.param_bytes + cost.ref_bytes + cost.activation_bytes;
  const double memory_s = bytes / (spec_.mem_bandwidth_gbs * 1e9);

  // --- preprocessing runs single-threaded on the CPU (the sensor script) ----
  const double pre_s = cost.preprocess_flops / (spec_.cpu_gflops_per_core * 1e9);

  const double latency_s = std::max(compute_s, memory_s) + dispatch_s + pre_s;
  perf.latency_ms = latency_s * 1e3;
  perf.inference_hz = 1.0 / latency_s;

  // --- utilisation -----------------------------------------------------------
  const double compute_duty = std::min(1.0, std::max(compute_s, memory_s) / latency_s);
  if (cost.runs_on_gpu) {
    // Eager dispatch keeps the GPU partially lit between kernels; persistent
    // recurrent kernels keep it fully busy.
    const double busy = cost.gpu_resident_spin
                            ? 0.95
                            : std::min(1.0, compute_duty + 0.65 * (dispatch_s / latency_s));
    perf.gpu_util_pct = std::min(
        100.0, spec_.idle_gpu_util_pct + (100.0 - spec_.idle_gpu_util_pct) * busy);
    // Host side: one dispatching thread.
    perf.cpu_util_pct =
        std::min(100.0, spec_.idle_cpu_util_pct + 0.9 * 100.0 / spec_.cpu_cores);
  } else {
    const double cpu_busy = std::min(1.0, (compute_s + dispatch_s) / latency_s);
    perf.cpu_util_pct = std::min(
        100.0, spec_.idle_cpu_util_pct +
                   (100.0 - spec_.idle_cpu_util_pct) *
                       (static_cast<double>(threads) / spec_.cpu_cores) * cpu_busy);
    perf.gpu_util_pct = spec_.idle_gpu_util_pct;
  }

  // --- memory footprint ------------------------------------------------------
  const double framework_overhead_mb = 350.0;  // runtime, buffers, allocator slack
  perf.ram_mb = spec_.idle_ram_mb + framework_overhead_mb +
                (cost.param_bytes + cost.ref_bytes + cost.activation_bytes) / 1e6;
  perf.gpu_ram_mb = cost.runs_on_gpu
                        ? spec_.idle_gpu_ram_mb + 420.0 + 1.5 * cost.param_bytes / 1e6
                        : spec_.idle_gpu_ram_mb;

  // --- power -------------------------------------------------------------------
  double power = spec_.idle_power_w;
  if (cost.runs_on_gpu) {
    const double gpu_duty = cost.gpu_resident_spin ? 0.95 : compute_duty;
    power += spec_.gpu_active_base_w + gpu_duty * spec_.gpu_dynamic_power_w;
    power += 0.1 * spec_.cpu_dynamic_power_w;  // dispatching host thread
  } else {
    const double cpu_busy = std::min(1.0, (compute_s + dispatch_s) / latency_s);
    power += (static_cast<double>(threads) / spec_.cpu_cores) * cpu_busy *
             spec_.cpu_dynamic_power_w;
  }
  perf.power_w = power;

  return perf;
}

}  // namespace varade::edge
