#include "varade/edge/device.hpp"

namespace varade::edge {

// Calibration notes
// -----------------
// Idle telemetry is copied from Table 2 of the paper (Idle rows). Sustained
// GFLOPS figures de-rate the marketing TOPS numbers to small-batch dense FP32.
// The dispatch overheads and dynamic-power coefficients were fitted so that
// the six detector workloads of the paper, described at their full
// architecture sizes (core/model_costs), land on the published Table 2
// inference frequencies and power draws:
//   Xavier NX: GBRF 20.6 Hz, VARADE 14.9 Hz, AR-LSTM 5.2 Hz, IF 4.6 Hz,
//              AE 2.2 Hz, kNN 1.1 Hz; power 5.8 (idle) .. 11.3 W (AR-LSTM).
//   AGX Orin:  roughly 2x the frequencies, same ordering.
// The fitted values are physically plausible: ~2 ms per TF-eager op on the
// Xavier-class CPU (half that on Orin) and a few watts of dynamic power per
// fully-busy compute engine.

DeviceSpec jetson_xavier_nx() {
  DeviceSpec d;
  d.name = "Jetson Xavier NX";
  d.cpu_cores = 6;
  d.cpu_gflops_per_core = 4.0;   // Carmel @ 1.4 GHz, scalar/NEON mix
  d.gpu_gflops = 180.0;          // 384-core Volta, small-batch FP32 sustained
  d.mem_bandwidth_gbs = 25.0;    // LPDDR4x 51.2 GB/s peak, ~50% sustained
  d.gpu_dispatch_ms = 2.2;       // TF 2.11 eager per-op (calibrated)
  d.cpu_dispatch_ms = 2.1;       // sklearn per-estimator step (calibrated)
  d.idle_power_w = 5.851;        // Table 2
  d.cpu_dynamic_power_w = 2.5;
  d.gpu_dynamic_power_w = 6.0;
  d.gpu_active_base_w = 0.0;     // GPU already awake at idle (52% util)
  d.ram_total_mb = 16384.0;
  d.idle_cpu_util_pct = 36.465;  // Table 2
  d.idle_gpu_util_pct = 52.100;
  d.idle_ram_mb = 5130.219;
  d.idle_gpu_ram_mb = 537.235;
  return d;
}

DeviceSpec jetson_agx_orin() {
  DeviceSpec d;
  d.name = "Jetson AGX Orin";
  d.cpu_cores = 12;
  d.cpu_gflops_per_core = 9.0;   // Cortex-A78AE @ 2.2 GHz
  d.gpu_gflops = 420.0;          // 2048-core Ampere, small-batch FP32 sustained
  d.mem_bandwidth_gbs = 80.0;    // LPDDR5 204.8 GB/s peak, de-rated
  d.gpu_dispatch_ms = 1.05;
  d.cpu_dispatch_ms = 0.9;
  d.idle_power_w = 7.522;        // Table 2
  d.cpu_dynamic_power_w = 10.8;
  d.gpu_dynamic_power_w = 3.5;
  d.gpu_active_base_w = 2.2;     // GPU idles fully off (0% util) on Orin
  d.ram_total_mb = 32768.0;
  d.idle_cpu_util_pct = 4.875;   // Table 2
  d.idle_gpu_util_pct = 0.0;
  d.idle_ram_mb = 3916.715;
  d.idle_gpu_ram_mb = 243.289;
  return d;
}

}  // namespace varade::edge
