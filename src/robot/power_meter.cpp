#include "varade/robot/power_meter.hpp"

#include <algorithm>
#include <cmath>

#include "varade/robot/geometry.hpp"

namespace varade::robot {

PowerMeter::PowerMeter(PowerMeterConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  check(config_.motor_efficiency > 0.0 && config_.motor_efficiency <= 1.0,
        "motor efficiency must be in (0, 1]");
  check(config_.rated_power_w > config_.idle_power_w, "rated power must exceed idle power");
  check(config_.pf_idle > 0.0 && config_.pf_full <= 1.0 && config_.pf_idle <= config_.pf_full,
        "power factors must satisfy 0 < pf_idle <= pf_full <= 1");
}

PowerReading PowerMeter::sample(double mechanical_power_w, double dt) {
  check(dt > 0.0, "dt must be positive");
  check(mechanical_power_w >= 0.0, "mechanical power cannot be negative");

  const double active = config_.idle_power_w + mechanical_power_w / config_.motor_efficiency +
                        rng_.normal(0.0F, static_cast<float>(config_.power_noise_std));
  const double p = std::max(active, 1.0);

  const double load = std::clamp(p / config_.rated_power_w, 0.0, 1.0);
  const double pf = config_.pf_idle + (config_.pf_full - config_.pf_idle) * load;

  // Slight voltage sag with load, plus grid noise.
  const double voltage = config_.nominal_voltage * (1.0 - 0.004 * load) +
                         rng_.normal(0.0F, static_cast<float>(config_.voltage_noise_std));
  const double frequency = config_.nominal_frequency +
                           rng_.normal(0.0F, static_cast<float>(config_.frequency_noise_std));

  const double phase_rad = std::acos(std::clamp(pf, 0.0, 1.0));
  const double reactive = p * std::tan(phase_rad);
  const double current = p / (voltage * pf);

  energy_kwh_ += p * dt / 3.6e6;

  PowerReading r;
  r.current = static_cast<float>(current);
  r.frequency = static_cast<float>(frequency);
  r.phase_angle = static_cast<float>(rad_to_deg(phase_rad));
  r.power = static_cast<float>(p);
  r.power_factor = static_cast<float>(pf);
  r.reactive_power = static_cast<float>(reactive);
  r.voltage = static_cast<float>(voltage);
  r.energy = static_cast<float>(energy_kwh_);

  // Modbus register glitch: a one-sample spike on the power/current pair.
  if (config_.spike_probability > 0.0 && rng_.bernoulli(config_.spike_probability)) {
    const float factor =
        1.0F + rng_.uniform(-static_cast<float>(config_.spike_max_fraction),
                            static_cast<float>(config_.spike_max_fraction));
    r.power *= factor;
    r.current *= factor;
  }
  return r;
}

}  // namespace varade::robot
