#include "varade/robot/anomaly.hpp"

#include <algorithm>
#include <cmath>

#include "varade/robot/geometry.hpp"

namespace varade::robot {

CollisionSchedule::CollisionSchedule(CollisionScheduleConfig config)
    : recovery_label_s_(config.recovery_label_s),
      stop_detection_delay_(config.stop_detection_delay) {
  check(config.recovery_label_s >= 0.0, "recovery label window must be non-negative");
  check(config.max_stop_duration >= config.min_stop_duration && config.min_stop_duration >= 0.0,
        "invalid protective-stop duration range");
  check(config.stop_detection_delay >= 0.0, "detection delay must be non-negative");
  check(config.n_events >= 0, "n_events must be non-negative");
  check(config.experiment_duration > 0.0, "experiment duration must be positive");
  check(config.max_duration >= config.min_duration && config.min_duration > 0.0,
        "invalid collision duration range");
  check(config.max_peak_torque >= config.min_peak_torque && config.min_peak_torque > 0.0,
        "invalid collision torque range");
  const double usable = config.experiment_duration - config.max_duration;
  check(config.n_events == 0 || usable > config.min_separation * config.n_events,
        "experiment too short for the requested number of separated collisions");

  Rng rng(config.seed);
  std::vector<double> starts;
  starts.reserve(static_cast<std::size_t>(config.n_events));
  // Rejection-sample start times with minimum separation.
  int guard = 0;
  while (static_cast<int>(starts.size()) < config.n_events) {
    check(++guard < config.n_events * 1000, "failed to place separated collision events");
    const double t = rng.uniform(0.0F, static_cast<float>(usable));
    const bool ok = std::all_of(starts.begin(), starts.end(), [&](double s) {
      return std::fabs(s - t) >= config.min_separation;
    });
    if (ok) starts.push_back(t);
  }
  std::sort(starts.begin(), starts.end());

  events_.reserve(starts.size());
  for (double start : starts) {
    CollisionEvent ev;
    ev.start_time = start;
    ev.duration = rng.uniform(static_cast<float>(config.min_duration),
                              static_cast<float>(config.max_duration));
    ev.chatter_amplitude = config.chatter_amplitude;
    ev.chatter_freq_hz = rng.uniform(static_cast<float>(config.chatter_min_freq_hz),
                                     static_cast<float>(config.chatter_max_freq_hz));
    ev.stop_duration = rng.uniform(static_cast<float>(config.min_stop_duration),
                                   static_cast<float>(config.max_stop_duration));
    const int n_joints = rng.bernoulli(0.3) ? 2 : 1;
    for (int k = 0; k < n_joints; ++k) {
      int j = rng.uniform_int(0, kNumJoints - 1);
      // Avoid duplicating a joint within one event.
      if (!ev.joints.empty() && j == ev.joints.front()) j = (j + 1) % kNumJoints;
      const double magnitude = rng.uniform(static_cast<float>(config.min_peak_torque),
                                           static_cast<float>(config.max_peak_torque));
      const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
      ev.joints.push_back(j);
      ev.peak_torque.push_back(sign * magnitude);
    }
    events_.push_back(std::move(ev));
  }
}

std::array<double, kNumJoints> CollisionSchedule::torque_at(double t) const {
  std::array<double, kNumJoints> tau{};
  if (events_.empty()) return tau;

  // Advance the cursor for monotone time queries; rewind if time went back.
  if (cursor_ > 0 && events_[cursor_ - 1].start_time > t) cursor_ = 0;
  while (cursor_ < events_.size() &&
         events_[cursor_].start_time + events_[cursor_].duration < t)
    ++cursor_;

  // Check the events around the cursor (separation guarantees at most one is
  // active, but stay defensive).
  for (std::size_t i = cursor_; i < events_.size() && events_[i].start_time <= t; ++i) {
    const CollisionEvent& ev = events_[i];
    const double local = t - ev.start_time;
    if (local < 0.0 || local > ev.duration) continue;
    // Half-sine pulse with contact chatter riding on it: smooth rise and
    // fall like a real contact force, plus grab/bump vibration.
    const double envelope = std::sin(kPi * local / ev.duration);
    const double chatter =
        ev.chatter_amplitude * std::sin(2.0 * kPi * ev.chatter_freq_hz * local);
    const double shape = envelope * (1.0 + chatter);
    for (std::size_t k = 0; k < ev.joints.size(); ++k)
      tau[static_cast<std::size_t>(ev.joints[k])] += ev.peak_torque[k] * shape;
  }
  return tau;
}

MicroDisturbanceGenerator::MicroDisturbanceGenerator(MicroDisturbanceConfig config,
                                                     std::uint64_t seed)
    : config_(config), rng_(seed) {
  check(config_.mean_interval_s > 0.0, "mean interval must be positive");
  check(config_.max_duration >= config_.min_duration && config_.min_duration > 0.0,
        "invalid micro-disturbance duration range");
  check(config_.max_peak_torque >= config_.min_peak_torque && config_.min_peak_torque >= 0.0,
        "invalid micro-disturbance torque range");
  // First event after one exponential gap.
  std::exponential_distribution<double> gap(1.0 / config_.mean_interval_s);
  next_start_ = gap(rng_.engine());
}

void MicroDisturbanceGenerator::advance_past(double t) {
  while (true) {
    if (active_ && t > current_.start_time + current_.duration) active_ = false;
    if (!active_ && t >= next_start_) {
      current_ = CollisionEvent{};
      current_.start_time = next_start_;
      current_.duration = rng_.uniform(static_cast<float>(config_.min_duration),
                                       static_cast<float>(config_.max_duration));
      current_.joints = {rng_.uniform_int(0, kNumJoints - 1)};
      const double magnitude = rng_.uniform(static_cast<float>(config_.min_peak_torque),
                                            static_cast<float>(config_.max_peak_torque));
      current_.peak_torque = {rng_.bernoulli(0.5) ? magnitude : -magnitude};
      current_.chatter_amplitude = config_.chatter_amplitude;
      current_.chatter_freq_hz = rng_.uniform(static_cast<float>(config_.chatter_min_freq_hz),
                                              static_cast<float>(config_.chatter_max_freq_hz));
      active_ = true;
      std::exponential_distribution<double> gap(1.0 / config_.mean_interval_s);
      next_start_ = current_.start_time + current_.duration + gap(rng_.engine());
      continue;
    }
    break;
  }
}

std::array<double, kNumJoints> MicroDisturbanceGenerator::torque_at(double t) {
  advance_past(t);
  std::array<double, kNumJoints> tau{};
  if (!active_) return tau;
  const double local = t - current_.start_time;
  if (local < 0.0 || local > current_.duration) return tau;
  const double envelope = std::sin(kPi * local / current_.duration);
  const double chatter =
      current_.chatter_amplitude * std::sin(2.0 * kPi * current_.chatter_freq_hz * local);
  const double shape = envelope * (1.0 + chatter);
  tau[static_cast<std::size_t>(current_.joints.front())] =
      current_.peak_torque.front() * shape;
  return tau;
}

bool CollisionSchedule::active_at(double t) const {
  for (const CollisionEvent& ev : events_) {
    const double label_end =
        ev.start_time + ev.duration + ev.stop_duration + recovery_label_s_;
    if (t >= ev.start_time && t <= label_end) return true;
    if (ev.start_time > t) break;
  }
  return false;
}

bool CollisionSchedule::stop_hold_at(double t) const {
  for (const CollisionEvent& ev : events_) {
    const double hold_begin = ev.start_time + stop_detection_delay_;
    const double hold_end = ev.start_time + ev.duration + ev.stop_duration;
    if (t >= hold_begin && t <= hold_end) return true;
    if (ev.start_time > t) break;
  }
  return false;
}

}  // namespace varade::robot
