#include "varade/robot/simulator.hpp"

#include <cmath>

namespace varade::robot {

RobotCellSimulator::RobotCellSimulator(SimulatorConfig config)
    : config_(config),
      dt_(1.0 / config.sample_rate_hz),
      library_(config.n_actions, config.seed),
      schedule_(library_),
      dynamics_(config.dynamics),
      power_meter_(config.power,
                   (config.noise_seed != 0 ? config.noise_seed : config.seed) ^
                       0x9E3779B97F4A7C15ULL) {
  check(config.sample_rate_hz > 0.0, "sample rate must be positive");
  Rng seeder((config.noise_seed != 0 ? config.noise_seed : config.seed) ^
             0xD1B54A32D192ED03ULL);
  imus_.reserve(kNumJoints);
  for (int j = 0; j < kNumJoints; ++j) imus_.emplace_back(config.imu, seeder.next_u64());
  dynamics_.reseed_ripple(seeder.next_u64());
  dynamics_.reset(library_.action(0).start_configuration());

  if (config.enable_micro_disturbances)
    micro_ = std::make_unique<MicroDisturbanceGenerator>(config.micro, seeder.next_u64());

  Rng dither_rng(seeder.next_u64());
  for (auto& joint_dither : dither_) {
    for (auto& comp : joint_dither) {
      comp.amplitude = config.reference_dither_rad *
                       dither_rng.uniform(0.3F, 1.0F) / 3.0;
      comp.freq_hz = dither_rng.uniform(static_cast<float>(config.dither_min_freq_hz),
                                        static_cast<float>(config.dither_max_freq_hz));
      comp.phase = dither_rng.uniform(0.0F, static_cast<float>(2.0 * kPi));
    }
  }
}

void RobotCellSimulator::set_collision_schedule(CollisionSchedule schedule) {
  collisions_ = std::move(schedule);
}

std::array<JointRef, kNumJoints> RobotCellSimulator::dithered_refs(
    const std::array<JointRef, kNumJoints>& refs) const {
  std::array<JointRef, kNumJoints> out = refs;
  for (int j = 0; j < kNumJoints; ++j) {
    auto js = static_cast<std::size_t>(j);
    for (const DitherComponent& c : dither_[js]) {
      const double w = 2.0 * kPi * c.freq_hz;
      out[js].position += c.amplitude * std::sin(w * time_ + c.phase);
      out[js].velocity += c.amplitude * w * std::cos(w * time_ + c.phase);
      out[js].acceleration -= c.amplitude * w * w * std::sin(w * time_ + c.phase);
    }
  }
  return out;
}

RobotSample RobotCellSimulator::step() {
  time_ += dt_;

  const ActionSchedule::Cursor cursor = schedule_.at(time_);
  const Action& action = library_.action(cursor.action_id);
  auto refs = dithered_refs(action.sample(cursor.local_time));

  // Protective stop: on detected contact the controller freezes the
  // reference where it is (zero commanded velocity/acceleration) and resumes
  // the running schedule when the hold clears — after which the PD pulls the
  // arm back onto the advanced script (the catch-up transient).
  if (collisions_.stop_hold_at(time_)) {
    if (!holding_) {
      held_refs_ = refs;
      for (auto& r : held_refs_) {
        r.velocity = 0.0;
        r.acceleration = 0.0;
      }
      holding_ = true;
    }
    refs = held_refs_;
  } else {
    holding_ = false;
  }

  auto disturbance = collisions_.torque_at(time_);
  if (micro_ != nullptr) {
    const auto micro_tau = micro_->torque_at(time_);
    for (int j = 0; j < kNumJoints; ++j)
      disturbance[static_cast<std::size_t>(j)] += micro_tau[static_cast<std::size_t>(j)];
  }

  dynamics_.step(refs, disturbance, dt_);

  const auto q = dynamics_.positions();
  const auto qd = dynamics_.velocities();
  const auto links = kinematics_.link_states(q, qd);

  // Sensor-point linear accelerations by central-ish finite differences of the
  // link origins; the first two samples fall back to zero acceleration.
  std::array<Vec3, kNumJoints> accelerations{};
  std::array<Vec3, kNumJoints> velocities{};
  for (int j = 0; j < kNumJoints; ++j) {
    auto js = static_cast<std::size_t>(j);
    const Vec3 p = links[js].pose.translation;
    if (have_prev_) velocities[js] = (p - prev_positions_[js]) / dt_;
    if (have_prev_ && have_prev_vel_)
      accelerations[js] = (velocities[js] - prev_velocities_[js]) / dt_;
    prev_positions_[js] = p;
  }
  if (have_prev_) {
    prev_velocities_ = velocities;
    have_prev_vel_ = true;
  }
  have_prev_ = true;

  RobotSample sample;
  sample.time = time_;
  sample.label = collisions_.active_at(time_) ? 1 : 0;
  sample.channels.reserve(static_cast<std::size_t>(data::kKukaChannelCount));
  sample.channels.push_back(static_cast<float>(cursor.action_id));

  double mech_power = dynamics_.mechanical_power();
  for (int j = 0; j < kNumJoints; ++j) {
    auto js = static_cast<std::size_t>(j);
    ImuInput input;
    input.orientation = links[js].pose.rotation;
    input.angular_velocity = links[js].angular_velocity;
    input.linear_acceleration = accelerations[js];
    input.motor_load =
        std::fabs(dynamics_.joints()[js].motor_torque) / 20.0;  // ~rated torque scale
    const ImuReading r = imus_[js].sample(input, dt_);
    for (float v : r.accel) sample.channels.push_back(v);
    for (float v : r.gyro) sample.channels.push_back(v);
    for (float v : r.quat) sample.channels.push_back(v);
    sample.channels.push_back(r.temperature);
  }

  const PowerReading pr = power_meter_.sample(mech_power, dt_);
  for (float v : pr.as_array()) sample.channels.push_back(v);

  check(static_cast<Index>(sample.channels.size()) == data::kKukaChannelCount,
        "assembled sample must have 86 channels");
  return sample;
}

data::MultivariateSeries RobotCellSimulator::record(double duration_s) {
  check(duration_s > 0.0, "recording duration must be positive");
  const auto n_samples = static_cast<Index>(duration_s * config_.sample_rate_hz);
  check(n_samples > 0, "duration too short for one sample");
  data::MultivariateSeries series(data::kKukaChannelCount, data::kuka_channel_schema());
  series.set_sample_rate_hz(config_.sample_rate_hz);
  for (Index i = 0; i < n_samples; ++i) {
    const RobotSample s = step();
    series.append(s.channels, s.label);
  }
  return series;
}

}  // namespace varade::robot
