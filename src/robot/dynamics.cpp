#include "varade/robot/dynamics.hpp"

#include <cmath>

namespace varade::robot {

JointDynamics::JointDynamics(JointDynamicsConfig config)
    : config_(config), ripple_rng_(config.ripple_seed) {
  check(config_.kp > 0.0 && config_.kd > 0.0, "PD gains must be positive");
  check(config_.torque_ripple >= 0.0 && config_.velocity_ripple >= 0.0,
        "ripple coefficients must be non-negative");
  for (double i : config_.inertia) check(i > 0.0, "joint inertia must be positive");
}

void JointDynamics::reset(const std::array<double, kNumJoints>& q) {
  for (int j = 0; j < kNumJoints; ++j) {
    auto js = static_cast<std::size_t>(j);
    joints_[js] = JointState{.position = q[js], .velocity = 0.0, .acceleration = 0.0,
                             .motor_torque = 0.0};
  }
}

void JointDynamics::step(const std::array<JointRef, kNumJoints>& refs,
                         const std::array<double, kNumJoints>& disturbance_torque, double dt) {
  check(dt > 0.0, "dt must be positive");
  for (int j = 0; j < kNumJoints; ++j) {
    auto js = static_cast<std::size_t>(j);
    JointState& s = joints_[js];
    const JointRef& r = refs[js];
    const double inertia = config_.inertia[js];

    const double control_acc = config_.kp * (r.position - s.position) +
                               config_.kd * (r.velocity - s.velocity) + r.acceleration;
    s.motor_torque = inertia * control_acc;

    // Load-dependent drivetrain vibration: torque ripple grows with the
    // commanded torque and with speed (gear cogging), so intense motion —
    // and above all the controller's fight against a collision — is rougher
    // than quiet segments.
    const double ripple_scale = config_.torque_ripple * std::fabs(s.motor_torque) +
                                config_.velocity_ripple * std::fabs(s.velocity) * inertia;
    const double ripple = ripple_scale * ripple_rng_.normal();

    const double acc = control_acc + (disturbance_torque[js] + ripple) / inertia -
                       config_.viscous_friction * s.velocity;
    // Semi-implicit Euler: velocity first, then position with the new velocity.
    s.acceleration = acc;
    s.velocity += acc * dt;
    s.position += s.velocity * dt;
  }
}

std::array<double, kNumJoints> JointDynamics::positions() const {
  std::array<double, kNumJoints> q{};
  for (int j = 0; j < kNumJoints; ++j)
    q[static_cast<std::size_t>(j)] = joints_[static_cast<std::size_t>(j)].position;
  return q;
}

std::array<double, kNumJoints> JointDynamics::velocities() const {
  std::array<double, kNumJoints> qd{};
  for (int j = 0; j < kNumJoints; ++j)
    qd[static_cast<std::size_t>(j)] = joints_[static_cast<std::size_t>(j)].velocity;
  return qd;
}

double JointDynamics::mechanical_power() const {
  double p = 0.0;
  for (const JointState& s : joints_) p += std::fabs(s.motor_torque * s.velocity);
  return p;
}

double JointDynamics::tracking_error(const std::array<JointRef, kNumJoints>& refs) const {
  double e = 0.0;
  for (int j = 0; j < kNumJoints; ++j) {
    auto js = static_cast<std::size_t>(j);
    e += std::fabs(refs[js].position - joints_[js].position);
  }
  return e;
}

}  // namespace varade::robot
