#include "varade/robot/kalman.hpp"

namespace varade::robot {

ScalarKalman::ScalarKalman(double process_noise, double measurement_noise)
    : q_(process_noise), r_(measurement_noise) {
  check(process_noise > 0.0, "process noise must be positive");
  check(measurement_noise > 0.0, "measurement noise must be positive");
}

double ScalarKalman::update(double measurement) {
  if (!initialized_) {
    x_ = measurement;
    p_ = r_;
    initialized_ = true;
    return x_;
  }
  // Predict: random walk keeps x, inflates covariance.
  p_ += q_;
  // Update.
  k_ = p_ / (p_ + r_);
  x_ += k_ * (measurement - x_);
  p_ *= (1.0 - k_);
  return x_;
}

void ScalarKalman::reset() {
  x_ = 0.0;
  p_ = 1.0;
  k_ = 0.0;
  initialized_ = false;
}

KalmanBank::KalmanBank(int n_channels, double process_noise, double measurement_noise) {
  check(n_channels > 0, "KalmanBank needs at least one channel");
  filters_.reserve(static_cast<std::size_t>(n_channels));
  for (int i = 0; i < n_channels; ++i) filters_.emplace_back(process_noise, measurement_noise);
}

void KalmanBank::update(double* values, int n) {
  check(n == size(), "KalmanBank update size mismatch");
  for (int i = 0; i < n; ++i) values[i] = filters_[static_cast<std::size_t>(i)].update(values[i]);
}

const ScalarKalman& KalmanBank::filter(int i) const {
  check(i >= 0 && i < size(), "filter index out of range");
  return filters_[static_cast<std::size_t>(i)];
}

}  // namespace varade::robot
