#include "varade/robot/quaternion.hpp"

#include <algorithm>
#include <cmath>

namespace varade::robot {

Quaternion Quaternion::from_euler(double roll, double pitch, double yaw) {
  const double cr = std::cos(roll * 0.5);
  const double sr = std::sin(roll * 0.5);
  const double cp = std::cos(pitch * 0.5);
  const double sp = std::sin(pitch * 0.5);
  const double cy = std::cos(yaw * 0.5);
  const double sy = std::sin(yaw * 0.5);
  return {cr * cp * cy + sr * sp * sy, sr * cp * cy - cr * sp * sy,
          cr * sp * cy + sr * cp * sy, cr * cp * sy - sr * sp * cy};
}

Quaternion Quaternion::from_matrix(const Mat3& m) {
  Quaternion q;
  const double trace = m(0, 0) + m(1, 1) + m(2, 2);
  if (trace > 0.0) {
    const double s = std::sqrt(trace + 1.0) * 2.0;
    q.w = 0.25 * s;
    q.x = (m(2, 1) - m(1, 2)) / s;
    q.y = (m(0, 2) - m(2, 0)) / s;
    q.z = (m(1, 0) - m(0, 1)) / s;
  } else if (m(0, 0) > m(1, 1) && m(0, 0) > m(2, 2)) {
    const double s = std::sqrt(1.0 + m(0, 0) - m(1, 1) - m(2, 2)) * 2.0;
    q.w = (m(2, 1) - m(1, 2)) / s;
    q.x = 0.25 * s;
    q.y = (m(0, 1) + m(1, 0)) / s;
    q.z = (m(0, 2) + m(2, 0)) / s;
  } else if (m(1, 1) > m(2, 2)) {
    const double s = std::sqrt(1.0 + m(1, 1) - m(0, 0) - m(2, 2)) * 2.0;
    q.w = (m(0, 2) - m(2, 0)) / s;
    q.x = (m(0, 1) + m(1, 0)) / s;
    q.y = 0.25 * s;
    q.z = (m(1, 2) + m(2, 1)) / s;
  } else {
    const double s = std::sqrt(1.0 + m(2, 2) - m(0, 0) - m(1, 1)) * 2.0;
    q.w = (m(1, 0) - m(0, 1)) / s;
    q.x = (m(0, 2) + m(2, 0)) / s;
    q.y = (m(1, 2) + m(2, 1)) / s;
    q.z = 0.25 * s;
  }
  return q.normalized();
}

Quaternion Quaternion::from_axis_angle(const Vec3& axis, double angle) {
  const double n = axis.norm();
  check(n > 0.0, "axis-angle quaternion needs a non-zero axis");
  const double half = angle * 0.5;
  const double s = std::sin(half) / n;
  return {std::cos(half), axis.x * s, axis.y * s, axis.z * s};
}

Quaternion Quaternion::operator*(const Quaternion& o) const {
  return {w * o.w - x * o.x - y * o.y - z * o.z, w * o.x + x * o.w + y * o.z - z * o.y,
          w * o.y - x * o.z + y * o.w + z * o.x, w * o.z + x * o.y - y * o.x + z * o.w};
}

double Quaternion::norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

Quaternion Quaternion::normalized() const {
  const double n = norm();
  check(n > 0.0, "cannot normalize a zero quaternion");
  return {w / n, x / n, y / n, z / n};
}

Vec3 Quaternion::rotate(const Vec3& v) const {
  // v' = q * (0, v) * q^-1, expanded for efficiency.
  const Vec3 u{x, y, z};
  const Vec3 t = u.cross(v) * 2.0;
  return v + t * w + u.cross(t);
}

Mat3 Quaternion::to_matrix() const {
  Mat3 m;
  const double xx = x * x;
  const double yy = y * y;
  const double zz = z * z;
  const double xy = x * y;
  const double xz = x * z;
  const double yz = y * z;
  const double wx = w * x;
  const double wy = w * y;
  const double wz = w * z;
  m.m = {1 - 2 * (yy + zz), 2 * (xy - wz),     2 * (xz + wy),
         2 * (xy + wz),     1 - 2 * (xx + zz), 2 * (yz - wx),
         2 * (xz - wy),     2 * (yz + wx),     1 - 2 * (xx + yy)};
  return m;
}

void Quaternion::to_euler(double& roll, double& pitch, double& yaw) const {
  const double sinr_cosp = 2.0 * (w * x + y * z);
  const double cosr_cosp = 1.0 - 2.0 * (x * x + y * y);
  roll = std::atan2(sinr_cosp, cosr_cosp);

  const double sinp = 2.0 * (w * y - z * x);
  pitch = std::fabs(sinp) >= 1.0 ? std::copysign(kPi / 2.0, sinp) : std::asin(sinp);

  const double siny_cosp = 2.0 * (w * z + x * y);
  const double cosy_cosp = 1.0 - 2.0 * (y * y + z * z);
  yaw = std::atan2(siny_cosp, cosy_cosp);
}

double Quaternion::angle_to(const Quaternion& o) const {
  const Quaternion d = conjugate() * o;
  const double c = std::clamp(std::fabs(d.w), 0.0, 1.0);
  return 2.0 * std::acos(c);
}

}  // namespace varade::robot
