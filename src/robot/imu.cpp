#include "varade/robot/imu.hpp"

#include <cmath>

namespace varade::robot {

ImuSensor::ImuSensor(ImuConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      temperature_(config.ambient_temp),
      accel_filter_(3, config.kalman_process_noise, config.kalman_measurement_noise),
      gyro_filter_(3, config.kalman_process_noise, config.kalman_measurement_noise) {
  accel_bias_ = {rng_.normal(0.0F, static_cast<float>(config_.accel_bias_std)),
                 rng_.normal(0.0F, static_cast<float>(config_.accel_bias_std)),
                 rng_.normal(0.0F, static_cast<float>(config_.accel_bias_std))};
  gyro_bias_ = {rng_.normal(0.0F, static_cast<float>(config_.gyro_bias_std)),
                rng_.normal(0.0F, static_cast<float>(config_.gyro_bias_std)),
                rng_.normal(0.0F, static_cast<float>(config_.gyro_bias_std))};
}

ImuReading ImuSensor::sample(const ImuInput& input, double dt) {
  check(dt > 0.0, "dt must be positive");
  ImuReading r;
  const Mat3 world_to_body = input.orientation.transposed();

  // Accelerometer measures specific force: a_world - g, with g = (0,0,-9.81),
  // expressed in the body frame.
  const Vec3 specific_force_world =
      input.linear_acceleration + Vec3{0.0, 0.0, kGravity};
  Vec3 acc_body = world_to_body * specific_force_world + accel_bias_;
  double acc[3] = {acc_body.x + rng_.normal(0.0F, static_cast<float>(config_.accel_noise_std)),
                   acc_body.y + rng_.normal(0.0F, static_cast<float>(config_.accel_noise_std)),
                   acc_body.z + rng_.normal(0.0F, static_cast<float>(config_.accel_noise_std))};
  accel_filter_.update(acc, 3);
  r.accel = {static_cast<float>(acc[0]), static_cast<float>(acc[1]), static_cast<float>(acc[2])};

  // Gyroscope: body-frame angular velocity in deg/s.
  Vec3 gyro_body = world_to_body * input.angular_velocity;
  double gyr[3] = {
      rad_to_deg(gyro_body.x) + gyro_bias_.x +
          rng_.normal(0.0F, static_cast<float>(config_.gyro_noise_std)),
      rad_to_deg(gyro_body.y) + gyro_bias_.y +
          rng_.normal(0.0F, static_cast<float>(config_.gyro_noise_std)),
      rad_to_deg(gyro_body.z) + gyro_bias_.z +
          rng_.normal(0.0F, static_cast<float>(config_.gyro_noise_std))};
  gyro_filter_.update(gyr, 3);
  r.gyro = {static_cast<float>(gyr[0]), static_cast<float>(gyr[1]), static_cast<float>(gyr[2])};

  // Orientation as a quaternion with small component noise, renormalised.
  Quaternion q = Quaternion::from_matrix(input.orientation);
  q.w += rng_.normal(0.0F, static_cast<float>(config_.quat_noise_std));
  q.x += rng_.normal(0.0F, static_cast<float>(config_.quat_noise_std));
  q.y += rng_.normal(0.0F, static_cast<float>(config_.quat_noise_std));
  q.z += rng_.normal(0.0F, static_cast<float>(config_.quat_noise_std));
  q = q.normalized();
  // Keep a consistent hemisphere so components do not flip sign sample to
  // sample (q and -q encode the same rotation).
  if (q.w < 0.0) q = {-q.w, -q.x, -q.y, -q.z};
  r.quat = {static_cast<float>(q.w), static_cast<float>(q.x), static_cast<float>(q.y),
            static_cast<float>(q.z)};

  // Temperature: first-order approach to ambient + load-dependent rise.
  const double target = config_.ambient_temp + config_.temp_rise_coeff * input.motor_load;
  const double alpha = dt / (config_.temp_time_constant + dt);
  temperature_ += alpha * (target - temperature_);
  r.temperature = static_cast<float>(
      temperature_ + rng_.normal(0.0F, static_cast<float>(config_.temp_noise_std)));

  // Transmission glitches happen after the on-sensor filter, on the wire.
  if (stale_remaining_ > 0 && have_last_) {
    --stale_remaining_;
    return last_reading_;  // repeated (stale) frame
  }
  if (config_.stale_probability > 0.0 && rng_.bernoulli(config_.stale_probability))
    stale_remaining_ = rng_.uniform_int(config_.stale_min_samples, config_.stale_max_samples);
  if (config_.spike_probability > 0.0 && rng_.bernoulli(config_.spike_probability)) {
    const double magnitude = rng_.uniform(static_cast<float>(config_.spike_min_magnitude),
                                          static_cast<float>(config_.spike_max_magnitude));
    const double sign = rng_.bernoulli(0.5) ? 1.0 : -1.0;
    const int ch = rng_.uniform_int(0, 5);  // one of the 6 accel/gyro channels
    if (ch < 3)
      r.accel[static_cast<std::size_t>(ch)] += static_cast<float>(sign * magnitude);
    else
      r.gyro[static_cast<std::size_t>(ch - 3)] += static_cast<float>(sign * magnitude);
  }
  last_reading_ = r;
  have_last_ = true;
  return r;
}

}  // namespace varade::robot
