#include "varade/robot/kinematics.hpp"

namespace varade::robot {

std::array<double, kNumJoints> iiwa_joint_limits_deg() {
  // A1..A7 limits of the LBR iiwa 14 R820 data sheet.
  return {170.0, 120.0, 170.0, 120.0, 170.0, 120.0, 175.0};
}

std::array<DhRow, kNumJoints> iiwa_dh_table() {
  const double half_pi = kPi / 2.0;
  return {{
      {0.0, -half_pi, 0.360, 0.0},
      {0.0, half_pi, 0.0, 0.0},
      {0.0, half_pi, 0.420, 0.0},
      {0.0, -half_pi, 0.0, 0.0},
      {0.0, -half_pi, 0.400, 0.0},
      {0.0, half_pi, 0.0, 0.0},
      {0.0, 0.0, 0.126, 0.0},
  }};
}

Transform ForwardKinematics::joint_transform(int joint, double q) const {
  const DhRow& row = dh_[static_cast<std::size_t>(joint)];
  // Standard DH: Rz(theta+q) * Tz(d) * Tx(a) * Rx(alpha).
  // Rotation composes to Rz*Rx; the translation is d along the (invariant)
  // z axis plus a along the rotated x axis: (a cos, a sin, d).
  Transform t;
  const double angle = row.theta + q;
  t.rotation = Mat3::rot_z(angle) * Mat3::rot_x(row.alpha);
  t.translation = Vec3{row.a * std::cos(angle), row.a * std::sin(angle), row.d};
  return t;
}

std::array<Transform, kNumJoints> ForwardKinematics::link_poses(
    const std::array<double, kNumJoints>& q) const {
  std::array<Transform, kNumJoints> poses;
  Transform acc;  // identity = world/base frame
  for (int j = 0; j < kNumJoints; ++j) {
    acc = acc * joint_transform(j, q[static_cast<std::size_t>(j)]);
    poses[static_cast<std::size_t>(j)] = acc;
  }
  return poses;
}

std::array<LinkState, kNumJoints> ForwardKinematics::link_states(
    const std::array<double, kNumJoints>& q, const std::array<double, kNumJoints>& qd) const {
  std::array<LinkState, kNumJoints> states;
  const auto poses = link_poses(q);

  // Joint j rotates about the z axis of frame j-1 (world z for j = 0).
  Vec3 omega{0.0, 0.0, 0.0};
  for (int j = 0; j < kNumJoints; ++j) {
    Vec3 axis{0.0, 0.0, 1.0};
    if (j > 0) {
      const Mat3& r_prev = poses[static_cast<std::size_t>(j - 1)].rotation;
      axis = Vec3{r_prev(0, 2), r_prev(1, 2), r_prev(2, 2)};
    }
    omega += axis * qd[static_cast<std::size_t>(j)];
    states[static_cast<std::size_t>(j)].pose = poses[static_cast<std::size_t>(j)];
    states[static_cast<std::size_t>(j)].angular_velocity = omega;
  }
  return states;
}

Transform ForwardKinematics::end_effector(const std::array<double, kNumJoints>& q) const {
  return link_poses(q)[kNumJoints - 1];
}

}  // namespace varade::robot
