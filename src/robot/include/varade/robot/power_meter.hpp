// Single-phase energy meter model (Eastron SDM230 equivalent, paper
// section 4.1) monitoring the robot plus its industrial PC.
//
// Driven by the mechanical power the joint motors deliver, it derives the
// eight electrical quantities of the paper's power channels: current,
// frequency, phase angle, active power, power factor, reactive power,
// voltage, and the cumulative energy register. Collisions raise motor torque
// and therefore active power/current — the "anomalies transparent with
// respect to the robot trajectories" the paper calls out (section 4.2).
#pragma once

#include <array>
#include <cstdint>

#include "varade/error.hpp"
#include "varade/tensor/rng.hpp"

namespace varade::robot {

struct PowerMeterConfig {
  double idle_power_w = 160.0;     // robot controller + industrial PC baseline
  double motor_efficiency = 0.72;  // mechanical->electrical conversion
  double rated_power_w = 1200.0;   // full-scale for load-fraction computation
  double nominal_voltage = 230.0;  // [V]
  double nominal_frequency = 50.0; // [Hz]
  double pf_idle = 0.62;           // power factor at idle (switching supplies)
  double pf_full = 0.94;           // power factor at rated load
  double voltage_noise_std = 0.25;
  double frequency_noise_std = 0.01;
  double power_noise_std = 2.5;    // [W]
  /// Modbus transmission glitch: probability per sample of a spurious spike
  /// on the current/power registers (seen on real RS-485 links).
  double spike_probability = 6e-4;
  double spike_max_fraction = 0.5;  // spike size as a fraction of the reading
};

/// One meter reading, in the schema order of the power channels.
struct PowerReading {
  float current = 0.0F;         // [A]
  float frequency = 0.0F;       // [Hz]
  float phase_angle = 0.0F;     // [deg]
  float power = 0.0F;           // active power [W]
  float power_factor = 0.0F;    // [-]
  float reactive_power = 0.0F;  // [VAr]
  float voltage = 0.0F;         // [V]
  float energy = 0.0F;          // cumulative [kWh]

  std::array<float, 8> as_array() const {
    return {current, frequency, phase_angle, power, power_factor, reactive_power, voltage, energy};
  }
};

class PowerMeter {
 public:
  PowerMeter(PowerMeterConfig config, std::uint64_t seed);

  /// Produces a reading given the motors' mechanical power [W] over `dt` s.
  PowerReading sample(double mechanical_power_w, double dt);

  double energy_kwh() const { return energy_kwh_; }
  const PowerMeterConfig& config() const { return config_; }

 private:
  PowerMeterConfig config_;
  Rng rng_;
  double energy_kwh_ = 0.0;
};

}  // namespace varade::robot
