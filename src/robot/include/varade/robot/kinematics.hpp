// Forward kinematics of a 7-DOF serial manipulator.
//
// The chain is parameterised with standard Denavit-Hartenberg rows matching
// the geometry of a KUKA LBR iiwa 14 (link offsets d1=0.36, d3=0.42,
// d5=0.40, d7=0.126 m, alternating +-90 degree link twists), the robot of the
// paper's case study (section 4.1).
#pragma once

#include <array>
#include <vector>

#include "varade/robot/geometry.hpp"
#include "varade/robot/quaternion.hpp"

namespace varade::robot {

inline constexpr int kNumJoints = 7;

/// One standard DH row: rotation about z by (theta + q), translation d along
/// z, translation a along x, rotation alpha about x.
struct DhRow {
  double a = 0.0;      // link length [m]
  double alpha = 0.0;  // link twist [rad]
  double d = 0.0;      // link offset [m]
  double theta = 0.0;  // joint angle offset [rad]
};

/// Joint limits of the LBR iiwa (degrees, symmetric).
std::array<double, kNumJoints> iiwa_joint_limits_deg();

/// The iiwa-like DH table used by the simulator.
std::array<DhRow, kNumJoints> iiwa_dh_table();

/// Kinematic state of every link for one joint configuration.
struct LinkState {
  Transform pose;        // link frame in world coordinates
  Vec3 angular_velocity; // world frame [rad/s]
};

class ForwardKinematics {
 public:
  ForwardKinematics() : dh_(iiwa_dh_table()) {}
  explicit ForwardKinematics(std::array<DhRow, kNumJoints> dh) : dh_(dh) {}

  /// Pose of every link frame for joint angles q [rad].
  std::array<Transform, kNumJoints> link_poses(const std::array<double, kNumJoints>& q) const;

  /// Poses plus angular velocities given joint velocities qd [rad/s].
  std::array<LinkState, kNumJoints> link_states(const std::array<double, kNumJoints>& q,
                                                const std::array<double, kNumJoints>& qd) const;

  /// End-effector (last link) pose.
  Transform end_effector(const std::array<double, kNumJoints>& q) const;

  const std::array<DhRow, kNumJoints>& dh() const { return dh_; }

 private:
  Transform joint_transform(int joint, double q) const;

  std::array<DhRow, kNumJoints> dh_;
};

}  // namespace varade::robot
