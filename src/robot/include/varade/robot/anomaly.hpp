// Collision anomaly injection.
//
// Reproduces the paper's "collision experiment" protocol (section 4.3): a
// human operator randomly interferes with the robot during its movement in a
// very limited timeframe — 125 collisions over 82 minutes. Here each
// collision is a half-sine disturbance-torque pulse applied to one or two
// random joints; ground-truth labels mark samples inside the pulse window.
#pragma once

#include <cstdint>
#include <vector>

#include "varade/robot/kinematics.hpp"
#include "varade/tensor/rng.hpp"

namespace varade::robot {

/// One scheduled collision.
struct CollisionEvent {
  double start_time = 0.0;                 // [s]
  double duration = 0.0;                   // [s]
  std::vector<int> joints;                 // affected joint indices
  std::vector<double> peak_torque;         // [N m], signed, one per joint
  double chatter_freq_hz = 0.0;            // contact-vibration frequency
  double chatter_amplitude = 0.0;          // fraction of peak torque
  /// Protective-stop hold after contact (ISO/TS 15066 collaborative
  /// operation: the controller halts on detected contact, then resumes).
  double stop_duration = 0.0;              // [s]
};

struct CollisionScheduleConfig {
  int n_events = 125;            // paper: 125 collisions
  double experiment_duration = 4920.0;  // paper: 82 minutes
  double min_duration = 0.15;    // [s] "very limited timeframe"
  double max_duration = 0.6;     // [s]
  double min_peak_torque = 4.0;  // [N m] human shove against a compliant arm
  double max_peak_torque = 12.0; // [N m]
  double min_separation = 4.0;   // [s] between event starts (covers the stop)
  /// Contact chatter: a grab/bump is not a clean pulse; a vibration component
  /// rides on the half-sine (fraction of peak, within this frequency band).
  double chatter_amplitude = 0.35;
  double chatter_min_freq_hz = 12.0;
  double chatter_max_freq_hz = 35.0;
  /// Ground-truth labels cover the contact window plus the recovery
  /// transient: a collided compliant arm is off its scripted trajectory until
  /// the controller re-converges, and an annotator marking real IMU traces
  /// would label that whole deviation as the anomaly.
  double recovery_label_s = 1.2;
  /// Protective-stop hold range after contact (collaborative robots halt on
  /// detected contact and resume once it clears).
  double min_stop_duration = 0.8;
  double max_stop_duration = 1.8;
  /// Contact-detection latency before the controller reacts.
  double stop_detection_delay = 0.1;
  std::uint64_t seed = 0;
};

/// Deterministic random schedule of collision events.
class CollisionSchedule {
 public:
  explicit CollisionSchedule(CollisionScheduleConfig config);

  /// Empty schedule (normal operation / training recording).
  CollisionSchedule() = default;

  const std::vector<CollisionEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Disturbance torque per joint at absolute time t [N m].
  std::array<double, kNumJoints> torque_at(double t) const;

  /// True when t falls inside any collision window — contact, protective
  /// stop, and recovery transient (the ground-truth label).
  bool active_at(double t) const;

  /// True while the controller's protective stop holds the trajectory.
  bool stop_hold_at(double t) const;

  double recovery_label_s() const { return recovery_label_s_; }

 private:
  double recovery_label_s_ = 0.0;
  double stop_detection_delay_ = 0.0;
  std::vector<CollisionEvent> events_;
  // Cursor for monotone queries (typical simulator access pattern).
  mutable std::size_t cursor_ = 0;
};

/// Benign micro-disturbances: small unlabeled torque perturbations present in
/// *normal* operation (payload shifts, cable drag, vibration from neighbouring
/// machinery). They give the training data a continuum of disturbance
/// intensities — the heteroscedastic signal a variational detector learns
/// from — and make single-sample outlier detection realistically hard.
/// Collisions are drawn from the same pattern family but an order of
/// magnitude stronger and labelled.
struct MicroDisturbanceConfig {
  double mean_interval_s = 2.5;    // exponential gaps between events
  double min_duration = 0.1;       // [s]
  double max_duration = 0.4;       // [s]
  double min_peak_torque = 0.4;    // [N m]
  double max_peak_torque = 2.5;    // [N m]
  double chatter_amplitude = 0.35;
  double chatter_min_freq_hz = 12.0;
  double chatter_max_freq_hz = 35.0;
};

/// Streams micro-disturbance torques; events are generated lazily from the
/// seed, so recordings of any length draw from one deterministic process.
class MicroDisturbanceGenerator {
 public:
  MicroDisturbanceGenerator(MicroDisturbanceConfig config, std::uint64_t seed);

  /// Disturbance torque per joint at time `t` (monotone queries).
  std::array<double, kNumJoints> torque_at(double t);

 private:
  void advance_past(double t);

  MicroDisturbanceConfig config_;
  Rng rng_;
  CollisionEvent current_;
  bool active_ = false;
  double next_start_ = 0.0;
};

}  // namespace varade::robot
