// Full robotic-cell simulator: the substitute for the paper's physical
// testbed (KUKA LBR iiwa + 7 IMUs + energy meter).
//
// Per 200 Hz step the simulator:
//   1. looks up the active action and its joint references,
//   2. queries the collision schedule for disturbance torques,
//   3. integrates the PD-controlled joint dynamics,
//   4. computes link kinematics (poses, angular velocities) and sensor-point
//      linear accelerations by finite differences,
//   5. samples the 7 IMU models and the power meter,
//   6. assembles the 86-channel record (Table 1 order) with its ground-truth
//      collision label.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "varade/data/timeseries.hpp"
#include "varade/robot/anomaly.hpp"
#include "varade/robot/dynamics.hpp"
#include "varade/robot/imu.hpp"
#include "varade/robot/power_meter.hpp"
#include "varade/robot/trajectory.hpp"

namespace varade::robot {

struct SimulatorConfig {
  int n_actions = 30;             // paper: 30 unique machine services
  double sample_rate_hz = 200.0;  // paper: IMU rate
  std::uint64_t seed = 42;        // determines the action library
  /// Sensor-noise seed; 0 derives it from `seed`. Distinct values let train
  /// and test recordings share the action library but not the noise draws.
  std::uint64_t noise_seed = 0;
  /// Execution-to-execution variability: a smooth multi-sine dither added to
  /// the joint references so no two cycles repeat exactly (real pick-and-
  /// place varies with payload and placement; a detector must not be able to
  /// memorise the cycle). Amplitude in radians.
  double reference_dither_rad = 0.03;
  double dither_min_freq_hz = 0.05;
  double dither_max_freq_hz = 0.4;
  /// Benign unlabeled micro-disturbances present in normal operation.
  bool enable_micro_disturbances = true;
  MicroDisturbanceConfig micro;
  ImuConfig imu;
  PowerMeterConfig power;
  JointDynamicsConfig dynamics;
};

/// One assembled 86-channel sample.
struct RobotSample {
  std::vector<float> channels;  // size 86, Table 1 order
  int label = 0;                // 1 while a collision is active
  double time = 0.0;            // [s]
};

class RobotCellSimulator {
 public:
  explicit RobotCellSimulator(SimulatorConfig config);

  /// Installs a collision schedule (empty schedule = normal operation).
  void set_collision_schedule(CollisionSchedule schedule);

  /// Advances one sample period and returns the new sample.
  RobotSample step();

  /// Runs for `duration_s` seconds, appending samples to a series.
  data::MultivariateSeries record(double duration_s);

  double time() const { return time_; }
  double dt() const { return dt_; }
  const ActionSchedule& schedule() const { return schedule_; }
  const JointDynamics& dynamics() const { return dynamics_; }

 private:
  SimulatorConfig config_;
  double dt_;
  double time_ = 0.0;
  ActionLibrary library_;
  ActionSchedule schedule_;
  ForwardKinematics kinematics_;
  JointDynamics dynamics_;
  CollisionSchedule collisions_;
  std::unique_ptr<MicroDisturbanceGenerator> micro_;
  std::vector<ImuSensor> imus_;
  PowerMeter power_meter_;

  // Reference dither: per-joint sums of low-frequency sinusoids.
  struct DitherComponent {
    double amplitude = 0.0;
    double freq_hz = 0.0;
    double phase = 0.0;
  };
  std::array<std::array<DitherComponent, 3>, kNumJoints> dither_{};
  std::array<JointRef, kNumJoints> dithered_refs(
      const std::array<JointRef, kNumJoints>& refs) const;

  // Protective-stop state: reference frozen at the hold position until the
  // controller resumes.
  bool holding_ = false;
  std::array<JointRef, kNumJoints> held_refs_{};

  // Finite-difference state for sensor-point linear accelerations.
  bool have_prev_ = false;
  std::array<Vec3, kNumJoints> prev_positions_{};
  std::array<Vec3, kNumJoints> prev_velocities_{};
  bool have_prev_vel_ = false;
};

}  // namespace varade::robot
