// Joint-space trajectory generation.
//
// Each robot action (machine service) is a sequence of joint waypoints joined
// by quintic polynomial segments with zero boundary velocity/acceleration —
// the smooth profiles industrial controllers produce. The ActionLibrary
// deterministically generates the paper's 30 unique pick-and-place actions
// (section 4.3) from a seed, and the ActionSchedule cycles through them.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "varade/robot/kinematics.hpp"
#include "varade/tensor/rng.hpp"

namespace varade::robot {

/// Position / velocity / acceleration sample of one joint.
struct JointRef {
  double position = 0.0;
  double velocity = 0.0;
  double acceleration = 0.0;
};

/// Quintic polynomial from (p0, 0, 0) to (p1, 0, 0) over [0, duration].
class QuinticSegment {
 public:
  QuinticSegment(double p0, double p1, double duration);

  JointRef sample(double t) const;
  double duration() const { return duration_; }

 private:
  double p0_;
  double duration_;
  std::array<double, 6> coeff_;
};

/// A named action: synchronous quintic trajectories for all joints through a
/// shared sequence of waypoints.
class Action {
 public:
  Action(int id, std::vector<std::array<double, kNumJoints>> waypoints,
         std::vector<double> segment_durations);

  int id() const { return id_; }
  double duration() const { return total_duration_; }
  std::size_t n_waypoints() const { return waypoints_.size(); }

  /// Reference for every joint at local time t (clamped to [0, duration]).
  std::array<JointRef, kNumJoints> sample(double t) const;

  /// First waypoint (where the action starts).
  const std::array<double, kNumJoints>& start_configuration() const { return waypoints_.front(); }
  /// Last waypoint (where the action ends).
  const std::array<double, kNumJoints>& end_configuration() const { return waypoints_.back(); }

 private:
  int id_;
  std::vector<std::array<double, kNumJoints>> waypoints_;
  std::vector<double> segment_durations_;
  std::vector<std::array<QuinticSegment, kNumJoints>> segments_;
  double total_duration_ = 0.0;
};

/// Deterministically generates a set of unique actions. All actions start and
/// end at the home configuration so any cyclic order is continuous.
class ActionLibrary {
 public:
  ActionLibrary(int n_actions, std::uint64_t seed);

  int size() const { return static_cast<int>(actions_.size()); }
  const Action& action(int id) const;

 private:
  std::vector<Action> actions_;
};

/// Cycles through all actions of a library in a fixed order, as the paper's
/// dataset does ("30 unique actions executed in a cycle").
class ActionSchedule {
 public:
  explicit ActionSchedule(const ActionLibrary& library);

  /// Advances to time t (monotone) and reports the active action and its
  /// local time.
  struct Cursor {
    int action_id = 0;
    double local_time = 0.0;
  };
  Cursor at(double t) const;

  double cycle_duration() const { return cycle_duration_; }

 private:
  const ActionLibrary* library_;
  std::vector<double> start_times_;  // start time of each action within a cycle
  double cycle_duration_ = 0.0;
};

}  // namespace varade::robot
