// Quaternion algebra.
//
// The paper converts IMU Euler orientations to quaternions to avoid the
// +-180 degree wrap discontinuity (section 4.2); this type provides that
// conversion plus the operations the simulator and tests need.
#pragma once

#include "varade/robot/geometry.hpp"

namespace varade::robot {

struct Quaternion {
  double w = 1.0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  static Quaternion identity() { return {}; }

  /// From intrinsic Z-Y-X Euler angles (yaw, pitch, roll), radians.
  static Quaternion from_euler(double roll, double pitch, double yaw);

  /// From a rotation matrix (Shepperd's method, numerically robust).
  static Quaternion from_matrix(const Mat3& m);

  /// Axis-angle constructor; axis need not be normalised.
  static Quaternion from_axis_angle(const Vec3& axis, double angle);

  Quaternion operator*(const Quaternion& o) const;
  Quaternion conjugate() const { return {w, -x, -y, -z}; }
  double norm() const;
  Quaternion normalized() const;

  /// Rotates a vector by this quaternion.
  Vec3 rotate(const Vec3& v) const;

  /// Back to a rotation matrix.
  Mat3 to_matrix() const;

  /// Euler Z-Y-X (returns roll, pitch, yaw in radians).
  void to_euler(double& roll, double& pitch, double& yaw) const;

  /// Angular distance to another quaternion in radians.
  double angle_to(const Quaternion& o) const;
};

}  // namespace varade::robot
