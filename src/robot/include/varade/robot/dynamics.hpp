// Per-joint second-order dynamics under PD control.
//
// Each joint tracks its trajectory reference with a PD controller plus
// acceleration feed-forward; external disturbance torques (collisions) enter
// the same equation the way real contact forces do, so a collision produces
// exactly the transients the paper's detectors look for: tracking error,
// acceleration/gyro spikes, and a motor-torque (hence power) surge.
//
//   qdd = ( tau_motor + tau_disturbance - b*qd ) / I
//   tau_motor = I * ( Kp*(q_ref - q) + Kd*(qd_ref - qd) + qdd_ref )
//
// Integration is semi-implicit Euler at the sensor rate (200 Hz), which is
// stable for the chosen gains (natural frequency 20 rad/s, critically damped).
#pragma once

#include <array>
#include <cstdint>

#include "varade/robot/trajectory.hpp"
#include "varade/tensor/rng.hpp"

namespace varade::robot {

struct JointDynamicsConfig {
  // Compliant (collaborative-mode) gains: the LBR iiwa yields visibly under a
  // human shove, which is what makes collisions observable in the kinematic
  // channels. Feed-forward acceleration keeps normal tracking tight anyway.
  // Underdamped (zeta ~ 0.4): a disturbance rings down at the arm's natural
  // frequency (~1.2 Hz) for about a second — the resonance signature that
  // makes post-collision recovery observable and learnable.
  double kp = 60.0;                // proportional gain [1/s^2]
  double kd = 6.0;                 // derivative gain [1/s]
  double viscous_friction = 0.08;  // b/I [1/s]
  /// Effective inertia per joint [kg m^2], decreasing along the chain.
  std::array<double, kNumJoints> inertia{0.30, 0.25, 0.20, 0.15, 0.10, 0.06, 0.04};
  /// Torque ripple: gear-cogging / commutation vibration proportional to the
  /// commanded torque magnitude. Makes intense motion measurably rougher than
  /// rest — the load-dependent heteroscedasticity real drivetrains exhibit
  /// (and the signal VARADE's variance head learns from).
  double torque_ripple = 0.45;
  /// Velocity-dependent vibration component [N m per rad/s].
  double velocity_ripple = 0.06;
  std::uint64_t ripple_seed = 7;
};

/// State of one joint.
struct JointState {
  double position = 0.0;      // [rad]
  double velocity = 0.0;      // [rad/s]
  double acceleration = 0.0;  // [rad/s^2]
  double motor_torque = 0.0;  // [N m]
};

class JointDynamics {
 public:
  explicit JointDynamics(JointDynamicsConfig config = {});

  /// Resets all joints to the given configuration at rest.
  void reset(const std::array<double, kNumJoints>& q);

  /// Advances one step of `dt` seconds toward `refs`, with external
  /// disturbance torques [N m] added per joint.
  void step(const std::array<JointRef, kNumJoints>& refs,
            const std::array<double, kNumJoints>& disturbance_torque, double dt);

  const std::array<JointState, kNumJoints>& joints() const { return joints_; }

  std::array<double, kNumJoints> positions() const;
  std::array<double, kNumJoints> velocities() const;

  /// Total mechanical power currently delivered by the motors [W]:
  /// sum |tau_i * qd_i|.
  double mechanical_power() const;

  /// Sum of |tracking error| over joints [rad]; a collision indicator used in
  /// tests.
  double tracking_error(const std::array<JointRef, kNumJoints>& refs) const;

  /// Reseeds the ripple noise stream (used to decorrelate recordings).
  void reseed_ripple(std::uint64_t seed) { ripple_rng_ = Rng(seed); }

 private:
  JointDynamicsConfig config_;
  std::array<JointState, kNumJoints> joints_{};
  Rng ripple_rng_{7};
};

}  // namespace varade::robot
