// Minimal 3-D geometry types for the manipulator simulator.
#pragma once

#include <array>
#include <cmath>

#include "varade/error.hpp"

namespace varade::robot {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
};

/// Row-major 3x3 rotation matrix.
struct Mat3 {
  std::array<double, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

  static Mat3 identity() { return {}; }

  double operator()(int r, int c) const { return m[static_cast<std::size_t>(r * 3 + c)]; }
  double& operator()(int r, int c) { return m[static_cast<std::size_t>(r * 3 + c)]; }

  Mat3 operator*(const Mat3& o) const {
    Mat3 out;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) {
        double acc = 0.0;
        for (int k = 0; k < 3; ++k) acc += (*this)(r, k) * o(k, c);
        out(r, c) = acc;
      }
    return out;
  }

  Vec3 operator*(const Vec3& v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z, m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
  }

  Mat3 transposed() const {
    Mat3 out;
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) out(r, c) = (*this)(c, r);
    return out;
  }

  /// Rotation about the z axis by `a` radians.
  static Mat3 rot_z(double a) {
    Mat3 r;
    const double c = std::cos(a);
    const double s = std::sin(a);
    r.m = {c, -s, 0, s, c, 0, 0, 0, 1};
    return r;
  }

  /// Rotation about the x axis by `a` radians.
  static Mat3 rot_x(double a) {
    Mat3 r;
    const double c = std::cos(a);
    const double s = std::sin(a);
    r.m = {1, 0, 0, 0, c, -s, 0, s, c};
    return r;
  }
};

/// Rigid transform: rotation + translation.
struct Transform {
  Mat3 rotation;
  Vec3 translation;

  Transform operator*(const Transform& o) const {
    return {rotation * o.rotation, rotation * o.translation + translation};
  }

  Vec3 apply(const Vec3& p) const { return rotation * p + translation; }
};

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kGravity = 9.80665;  // m/s^2

inline double deg_to_rad(double d) { return d * kPi / 180.0; }
inline double rad_to_deg(double r) { return r * 180.0 / kPi; }

}  // namespace varade::robot
