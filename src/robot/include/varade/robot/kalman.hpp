// Scalar Kalman filters matching the on-sensor smoothing of the DFRobot
// SEN0386 IMU, which "sends data at 200 Hz on a serial wire after applying a
// Kalman filter to reduce noise" (paper section 4.1).
#pragma once

#include <vector>

#include "varade/error.hpp"

namespace varade::robot {

/// One-dimensional Kalman filter with a random-walk state model:
///   x_t = x_{t-1} + w,  w ~ N(0, q)
///   z_t = x_t + v,      v ~ N(0, r)
class ScalarKalman {
 public:
  /// `process_noise` q and `measurement_noise` r are variances.
  ScalarKalman(double process_noise, double measurement_noise);

  /// Incorporates a measurement and returns the filtered estimate.
  double update(double measurement);

  double estimate() const { return x_; }
  double variance() const { return p_; }
  double gain() const { return k_; }
  bool initialized() const { return initialized_; }
  void reset();

 private:
  double q_;
  double r_;
  double x_ = 0.0;
  double p_ = 1.0;
  double k_ = 0.0;
  bool initialized_ = false;
};

/// Bank of independent scalar filters, one per channel.
class KalmanBank {
 public:
  KalmanBank(int n_channels, double process_noise, double measurement_noise);

  /// Filters `values` in place (stateful: one call per sample period).
  void update(double* values, int n);

  int size() const { return static_cast<int>(filters_.size()); }
  const ScalarKalman& filter(int i) const;

 private:
  std::vector<ScalarKalman> filters_;
};

}  // namespace varade::robot
