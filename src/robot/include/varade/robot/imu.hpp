// Inertial Measurement Unit sensor model (DFRobot SEN0386 equivalent).
//
// One IMU is mounted on each robot joint (paper section 4.1). Per sample the
// sensor reports 11 channels (Table 1): 3-axis acceleration [m/s^2], 3-axis
// angular velocity [deg/s], 4 quaternion orientation components, and a
// temperature [degC]. Measurements are corrupted with bias + white noise and
// then smoothed with the on-sensor Kalman filter, matching the real device's
// output path.
#pragma once

#include <array>
#include <cstdint>

#include "varade/robot/kalman.hpp"
#include "varade/robot/kinematics.hpp"
#include "varade/robot/quaternion.hpp"
#include "varade/tensor/rng.hpp"

namespace varade::robot {

struct ImuConfig {
  double accel_noise_std = 0.02;   // [m/s^2]
  double gyro_noise_std = 0.15;    // [deg/s]
  double quat_noise_std = 0.002;   // unitless, per component before renorm
  double temp_noise_std = 0.05;    // [degC]
  double accel_bias_std = 0.02;    // fixed per-sensor bias draw
  double gyro_bias_std = 0.1;
  double ambient_temp = 24.0;        // [degC]
  double temp_rise_coeff = 6.0;      // degC at unit normalized load
  double temp_time_constant = 60.0;  // [s]
  /// On-sensor Kalman filter noise parameters (variances).
  double kalman_process_noise = 0.05;
  double kalman_measurement_noise = 0.01;

  // Transmission glitches (after the Kalman filter, on the serial link, so
  // they reach the consumer unfiltered — as on the real 200 Hz wire):
  /// Probability per sample of a spike on one random accel/gyro channel.
  double spike_probability = 8e-4;
  double spike_min_magnitude = 3.0;   // in channel units (m/s^2 or deg/s)
  double spike_max_magnitude = 12.0;
  /// Probability per sample of entering a stale-frame run (repeated output).
  double stale_probability = 4e-4;
  int stale_min_samples = 2;
  int stale_max_samples = 5;
};

/// Ground-truth kinematic input for one IMU sample.
struct ImuInput {
  Mat3 orientation;           // link frame in world
  Vec3 angular_velocity;      // world frame [rad/s]
  Vec3 linear_acceleration;   // of the sensor point, world frame [m/s^2]
  double motor_load = 0.0;    // normalized |torque|/rated, drives heating
};

/// One IMU measurement (the 11 channels of Table 1, in schema order).
struct ImuReading {
  std::array<float, 3> accel{};  // m/s^2
  std::array<float, 3> gyro{};   // deg/s
  std::array<float, 4> quat{};   // w, x, y, z
  float temperature = 0.0F;      // degC
};

class ImuSensor {
 public:
  ImuSensor(ImuConfig config, std::uint64_t seed);

  /// Produces one filtered reading; `dt` is the sample period.
  ImuReading sample(const ImuInput& input, double dt);

  const ImuConfig& config() const { return config_; }
  double temperature_state() const { return temperature_; }

 private:
  ImuConfig config_;
  Rng rng_;
  Vec3 accel_bias_;
  Vec3 gyro_bias_;
  double temperature_;
  KalmanBank accel_filter_;
  KalmanBank gyro_filter_;
  // Transmission-glitch state.
  int stale_remaining_ = 0;
  ImuReading last_reading_{};
  bool have_last_ = false;
};

}  // namespace varade::robot
