#include "varade/robot/trajectory.hpp"

#include <algorithm>
#include <cmath>

namespace varade::robot {

QuinticSegment::QuinticSegment(double p0, double p1, double duration)
    : p0_(p0), duration_(duration) {
  check(duration > 0.0, "segment duration must be positive");
  // Boundary conditions p(0)=p0, p(T)=p1, v(0)=v(T)=a(0)=a(T)=0 give the
  // classic 10-15-6 quintic.
  const double d = p1 - p0;
  coeff_ = {p0, 0.0, 0.0, 10.0 * d, -15.0 * d, 6.0 * d};
}

JointRef QuinticSegment::sample(double t) const {
  const double s = std::clamp(t / duration_, 0.0, 1.0);
  const double s2 = s * s;
  const double s3 = s2 * s;
  const double s4 = s3 * s;
  const double s5 = s4 * s;
  JointRef ref;
  ref.position = coeff_[0] + coeff_[3] * s3 + coeff_[4] * s4 + coeff_[5] * s5;
  const double dpds = 3.0 * coeff_[3] * s2 + 4.0 * coeff_[4] * s3 + 5.0 * coeff_[5] * s4;
  const double d2pds2 = 6.0 * coeff_[3] * s + 12.0 * coeff_[4] * s2 + 20.0 * coeff_[5] * s3;
  ref.velocity = dpds / duration_;
  ref.acceleration = d2pds2 / (duration_ * duration_);
  return ref;
}

Action::Action(int id, std::vector<std::array<double, kNumJoints>> waypoints,
               std::vector<double> segment_durations)
    : id_(id), waypoints_(std::move(waypoints)), segment_durations_(std::move(segment_durations)) {
  check(waypoints_.size() >= 2, "an action needs at least two waypoints");
  check(segment_durations_.size() == waypoints_.size() - 1,
        "need one duration per waypoint pair");
  segments_.reserve(segment_durations_.size());
  for (std::size_t s = 0; s < segment_durations_.size(); ++s) {
    check(segment_durations_[s] > 0.0, "segment durations must be positive");
    std::array<QuinticSegment, kNumJoints> row = {
        QuinticSegment(waypoints_[s][0], waypoints_[s + 1][0], segment_durations_[s]),
        QuinticSegment(waypoints_[s][1], waypoints_[s + 1][1], segment_durations_[s]),
        QuinticSegment(waypoints_[s][2], waypoints_[s + 1][2], segment_durations_[s]),
        QuinticSegment(waypoints_[s][3], waypoints_[s + 1][3], segment_durations_[s]),
        QuinticSegment(waypoints_[s][4], waypoints_[s + 1][4], segment_durations_[s]),
        QuinticSegment(waypoints_[s][5], waypoints_[s + 1][5], segment_durations_[s]),
        QuinticSegment(waypoints_[s][6], waypoints_[s + 1][6], segment_durations_[s]),
    };
    segments_.push_back(row);
    total_duration_ += segment_durations_[s];
  }
}

std::array<JointRef, kNumJoints> Action::sample(double t) const {
  double local = std::clamp(t, 0.0, total_duration_);
  std::size_t seg = 0;
  while (seg + 1 < segments_.size() && local > segment_durations_[seg]) {
    local -= segment_durations_[seg];
    ++seg;
  }
  std::array<JointRef, kNumJoints> refs;
  for (int j = 0; j < kNumJoints; ++j)
    refs[static_cast<std::size_t>(j)] = segments_[seg][static_cast<std::size_t>(j)].sample(local);
  return refs;
}

ActionLibrary::ActionLibrary(int n_actions, std::uint64_t seed) {
  check(n_actions >= 1, "library needs at least one action");
  Rng rng(seed);
  const auto limits = iiwa_joint_limits_deg();
  const std::array<double, kNumJoints> home{};  // all joints at zero

  actions_.reserve(static_cast<std::size_t>(n_actions));
  for (int a = 0; a < n_actions; ++a) {
    // 3 to 6 intermediate waypoints between home and home; pick-and-place
    // style moves use a moderate fraction of the joint range.
    const int n_mid = rng.uniform_int(3, 6);
    std::vector<std::array<double, kNumJoints>> waypoints;
    waypoints.push_back(home);
    for (int w = 0; w < n_mid; ++w) {
      std::array<double, kNumJoints> wp{};
      for (int j = 0; j < kNumJoints; ++j) {
        const double limit = deg_to_rad(limits[static_cast<std::size_t>(j)]) * 0.5;
        wp[static_cast<std::size_t>(j)] = rng.uniform(static_cast<float>(-limit),
                                                      static_cast<float>(limit));
      }
      waypoints.push_back(wp);
    }
    waypoints.push_back(home);

    std::vector<double> durations;
    durations.reserve(waypoints.size() - 1);
    for (std::size_t s = 0; s + 1 < waypoints.size(); ++s)
      durations.push_back(rng.uniform(1.2F, 3.0F));

    actions_.emplace_back(a, std::move(waypoints), std::move(durations));
  }
}

const Action& ActionLibrary::action(int id) const {
  check(id >= 0 && id < size(), "action id out of range");
  return actions_[static_cast<std::size_t>(id)];
}

ActionSchedule::ActionSchedule(const ActionLibrary& library) : library_(&library) {
  double t = 0.0;
  for (int a = 0; a < library.size(); ++a) {
    start_times_.push_back(t);
    t += library.action(a).duration();
  }
  cycle_duration_ = t;
  check(cycle_duration_ > 0.0, "schedule has zero duration");
}

ActionSchedule::Cursor ActionSchedule::at(double t) const {
  check(t >= 0.0, "schedule time must be non-negative");
  const double phase = std::fmod(t, cycle_duration_);
  // Find the last action whose start time is <= phase.
  auto it = std::upper_bound(start_times_.begin(), start_times_.end(), phase);
  const auto idx = static_cast<int>(it - start_times_.begin()) - 1;
  Cursor c;
  c.action_id = idx;
  c.local_time = phase - start_times_[static_cast<std::size_t>(idx)];
  return c;
}

}  // namespace varade::robot
