#include "varade/nn/loss.hpp"

#include <cmath>

namespace varade::nn {

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  check(pred.same_shape(target), "mse_loss shape mismatch: " + shape_to_string(pred.shape()) +
                                     " vs " + shape_to_string(target.shape()));
  check(pred.numel() > 0, "mse_loss on empty tensor");
  const Index n = pred.numel();
  const float inv_n = 1.0F / static_cast<float>(n);
  LossResult r;
  r.grad = Tensor(pred.shape());
  double acc = 0.0;
  for (Index i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    acc += static_cast<double>(d) * d;
    r.grad[i] = 2.0F * d * inv_n;
  }
  r.value = static_cast<float>(acc) * inv_n;
  return r;
}

VariationalLossResult gaussian_nll(const Tensor& mu, const Tensor& logvar, const Tensor& target) {
  check(mu.same_shape(logvar) && mu.same_shape(target), "gaussian_nll shape mismatch");
  check(mu.numel() > 0, "gaussian_nll on empty tensor");
  const Index n = mu.numel();
  const float inv_n = 1.0F / static_cast<float>(n);
  VariationalLossResult r;
  r.grad_mu = Tensor(mu.shape());
  r.grad_logvar = Tensor(mu.shape());
  double acc = 0.0;
  for (Index i = 0; i < n; ++i) {
    const float inv_var = std::exp(-logvar[i]);
    const float diff = target[i] - mu[i];
    acc += 0.5 * (static_cast<double>(logvar[i]) + static_cast<double>(diff) * diff * inv_var);
    // d/dmu: -(y-mu)/var ; d/dlogvar: 1/2 (1 - (y-mu)^2/var)
    r.grad_mu[i] = -diff * inv_var * inv_n;
    r.grad_logvar[i] = 0.5F * (1.0F - diff * diff * inv_var) * inv_n;
  }
  r.value = static_cast<float>(acc) * inv_n;
  return r;
}

VariationalLossResult kl_standard_normal(const Tensor& mu, const Tensor& logvar) {
  check(mu.same_shape(logvar), "kl_standard_normal shape mismatch");
  check(mu.numel() > 0, "kl_standard_normal on empty tensor");
  const Index n = mu.numel();
  const float inv_n = 1.0F / static_cast<float>(n);
  VariationalLossResult r;
  r.grad_mu = Tensor(mu.shape());
  r.grad_logvar = Tensor(mu.shape());
  double acc = 0.0;
  for (Index i = 0; i < n; ++i) {
    const float var = std::exp(logvar[i]);
    acc += -0.5 * (1.0 + static_cast<double>(logvar[i]) - static_cast<double>(mu[i]) * mu[i] -
                   static_cast<double>(var));
    // d/dmu: mu ; d/dlogvar: 1/2 (var - 1)
    r.grad_mu[i] = mu[i] * inv_n;
    r.grad_logvar[i] = 0.5F * (var - 1.0F) * inv_n;
  }
  r.value = static_cast<float>(acc) * inv_n;
  return r;
}

VariationalLossResult elbo_loss(const Tensor& mu, const Tensor& logvar, const Tensor& target,
                                float lambda) {
  VariationalLossResult recon = gaussian_nll(mu, logvar, target);
  VariationalLossResult kl = kl_standard_normal(mu, logvar);
  VariationalLossResult r;
  r.value = recon.value + lambda * kl.value;
  r.grad_mu = std::move(recon.grad_mu);
  axpy(lambda, kl.grad_mu, r.grad_mu);
  r.grad_logvar = std::move(recon.grad_logvar);
  axpy(lambda, kl.grad_logvar, r.grad_logvar);
  return r;
}

}  // namespace varade::nn
