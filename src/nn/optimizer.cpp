#include "varade/nn/optimizer.hpp"

#include <cmath>

namespace varade::nn {

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {
  check(lr > 0.0F, "Sgd learning rate must be positive");
  check(momentum >= 0.0F && momentum < 1.0F, "Sgd momentum must be in [0, 1)");
}

void Sgd::step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    if (momentum_ == 0.0F) {
      axpy(-lr_, p->grad, p->value);
      continue;
    }
    auto [it, inserted] = velocity_.try_emplace(p, Tensor(p->value.shape()));
    Tensor& v = it->second;
    v *= momentum_;
    axpy(1.0F, p->grad, v);
    axpy(-lr_, v, p->value);
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  check(lr > 0.0F, "Adam learning rate must be positive");
  check(beta1 >= 0.0F && beta1 < 1.0F && beta2 >= 0.0F && beta2 < 1.0F,
        "Adam betas must be in [0, 1)");
}

void Adam::step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    auto [it, inserted] = state_.try_emplace(p);
    State& s = it->second;
    if (inserted) {
      s.m = Tensor(p->value.shape());
      s.v = Tensor(p->value.shape());
    }
    s.t += 1;
    const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(s.t));
    const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(s.t));
    const Index n = p->value.numel();
    for (Index i = 0; i < n; ++i) {
      const float g = p->grad[i];
      s.m[i] = beta1_ * s.m[i] + (1.0F - beta1_) * g;
      s.v[i] = beta2_ * s.v[i] + (1.0F - beta2_) * g * g;
      const float m_hat = s.m[i] / bc1;
      const float v_hat = s.v[i] / bc2;
      p->value[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  check(max_norm > 0.0F, "clip_grad_norm requires positive max_norm");
  double total = 0.0;
  for (const Parameter* p : params) {
    const float n = p->grad.norm();
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) p->grad *= scale;
  }
  return norm;
}

}  // namespace varade::nn
