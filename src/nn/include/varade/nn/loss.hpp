// Loss functions, including the variational objective of VARADE (paper
// section 3.2, equations 5-7).
//
// Each loss returns the scalar value (mean over all elements, so gradients are
// batch-size independent) together with analytic gradients w.r.t. its inputs.
#pragma once

#include "varade/tensor/tensor.hpp"

namespace varade::nn {

/// Scalar loss plus gradient w.r.t. a single prediction tensor.
struct LossResult {
  float value = 0.0F;
  Tensor grad;
};

/// Scalar loss plus gradients w.r.t. a (mean, log-variance) pair.
struct VariationalLossResult {
  float value = 0.0F;
  Tensor grad_mu;
  Tensor grad_logvar;
};

/// Mean squared error: mean((pred - target)^2).
LossResult mse_loss(const Tensor& pred, const Tensor& target);

/// Gaussian negative log-likelihood (paper Eq. 5, constant term dropped):
///   mean_i [ 1/2 * ( logvar_i + (y_i - mu_i)^2 / exp(logvar_i) ) ]
VariationalLossResult gaussian_nll(const Tensor& mu, const Tensor& logvar, const Tensor& target);

/// KL divergence to a standard normal prior (paper Eq. 6):
///   mean_i [ -1/2 * ( 1 + logvar_i - mu_i^2 - exp(logvar_i) ) ]
VariationalLossResult kl_standard_normal(const Tensor& mu, const Tensor& logvar);

/// Full VARADE objective (paper Eq. 7): L = L_recon + lambda * D_KL.
VariationalLossResult elbo_loss(const Tensor& mu, const Tensor& logvar, const Tensor& target,
                                float lambda);

}  // namespace varade::nn
