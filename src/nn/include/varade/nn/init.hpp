// Weight initialisation schemes.
#pragma once

#include <cmath>

#include "varade/tensor/tensor.hpp"

namespace varade::nn {

/// He (Kaiming) normal init — appropriate before ReLU nonlinearities.
inline Tensor he_normal(const Shape& shape, Index fan_in, Rng& rng) {
  check(fan_in > 0, "he_normal requires positive fan_in");
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  return Tensor::randn(shape, rng, stddev);
}

/// Xavier (Glorot) uniform init — appropriate before tanh/sigmoid.
inline Tensor xavier_uniform(const Shape& shape, Index fan_in, Index fan_out, Rng& rng) {
  check(fan_in > 0 && fan_out > 0, "xavier_uniform requires positive fans");
  const float limit = std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  return Tensor::rand_uniform(shape, rng, -limit, limit);
}

}  // namespace varade::nn
