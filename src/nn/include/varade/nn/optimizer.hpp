// Gradient-descent optimizers. The paper trains all neural models with Adam
// at a fixed learning rate of 1e-5 (section 3.4).
#pragma once

#include <unordered_map>
#include <vector>

#include "varade/nn/module.hpp"

namespace varade::nn {

/// Interface for parameter-update rules.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the gradients currently accumulated in `params`.
  virtual void step(const std::vector<Parameter*>& params) = 0;
};

/// Plain stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0F);
  void step(const std::vector<Parameter*>& params) override;

 private:
  float lr_;
  float momentum_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9F, float beta2 = 0.999F, float eps = 1e-8F);
  void step(const std::vector<Parameter*>& params) override;

 private:
  struct State {
    Tensor m;
    Tensor v;
    long t = 0;
  };
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  std::unordered_map<Parameter*, State> state_;
};

/// Clips gradients in-place to a maximum global L2 norm; returns the norm
/// before clipping. A standard guard for LSTM training stability.
float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

}  // namespace varade::nn
