// Binary weight serialization.
//
// Format (little-endian):
//   magic "VRDW" | u32 version | u64 param count |
//   per param: u64 name length | name bytes | u64 rank | u64 dims... | f32 data
//
// Loading restores weights into an already-constructed module; parameter
// names, order, and shapes must match, otherwise varade::Error is thrown.
#pragma once

#include <iosfwd>
#include <string>

#include "varade/nn/module.hpp"

namespace varade::nn {

void save_weights(Module& module, std::ostream& out);
void save_weights(Module& module, const std::string& path);

void load_weights(Module& module, std::istream& in);
void load_weights(Module& module, const std::string& path);

}  // namespace varade::nn
