// Feed-forward layers: Linear, activations, Conv1d, ConvTranspose1d, Flatten,
// LastTimeStep, and the 1-D residual block used by the autoencoder baseline.
//
// Tensor conventions:
//  - Dense layers operate on [N, F].
//  - Temporal layers operate on channels-first sequences [N, C, L].
#pragma once

#include "varade/nn/module.hpp"

namespace varade::nn {

/// Fully connected layer: y = x W^T + b, x: [N, in], y: [N, out].
class Linear : public Module {
 public:
  Linear(Index in_features, Index out_features, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor forward_inference(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }
  Shape output_shape(const Shape& in) const override;
  long flops(const Shape& in) const override;

  Index in_features() const { return in_; }
  Index out_features() const { return out_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  /// The computation itself, shared by forward and forward_inference so both
  /// paths are bit-identical by construction.
  Tensor apply(const Tensor& x) const;

  Index in_;
  Index out_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
};

/// Rectified linear activation (any shape).
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor forward_inference(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }
  Shape output_shape(const Shape& in) const override { return in; }
  long flops(const Shape& in) const override { return shape_numel(in); }

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent activation (any shape).
class Tanh : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor forward_inference(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Tanh"; }
  Shape output_shape(const Shape& in) const override { return in; }
  long flops(const Shape& in) const override { return 4 * shape_numel(in); }

 private:
  Tensor cached_output_;
};

/// 1-D convolution over [N, C, L] with configurable kernel/stride/padding.
///
/// VARADE uses kernel_size = stride = 2 and no padding, halving the time
/// dimension at every layer (paper section 3.1); the autoencoder baseline uses
/// kernel 3 / stride 1 / padding 1 inside its residual blocks.
class Conv1d : public Module {
 public:
  Conv1d(Index in_channels, Index out_channels, Index kernel_size, Index stride, Index padding,
         Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor forward_inference(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Conv1d"; }
  Shape output_shape(const Shape& in) const override;
  long flops(const Shape& in) const override;

  Index in_channels() const { return in_ch_; }
  Index out_channels() const { return out_ch_; }
  Index kernel_size() const { return kernel_; }
  Index stride() const { return stride_; }
  Index padding() const { return padding_; }

  /// Output length for an input of length `l`.
  Index out_length(Index l) const;

 private:
  /// The scalar reference computation, used by forward (which must cache the
  /// input anyway). forward_inference runs a vectorised kernel that keeps
  /// apply()'s per-element accumulation order, so both paths stay
  /// bit-identical (pinned by test_nn_layers).
  Tensor apply(const Tensor& x) const;

  Index in_ch_;
  Index out_ch_;
  Index kernel_;
  Index stride_;
  Index padding_;
  Parameter weight_;  // [out_ch, in_ch, kernel]
  Parameter bias_;    // [out_ch]
  Tensor cached_input_;
};

/// Name of the convolution inference kernel set selected by the runtime
/// dispatch table ("avx2" or "scalar"): resolved once at first use via
/// __builtin_cpu_supports, shared by Conv1d::forward_inference and
/// ConvTranspose1d::forward_inference. Exposed so tests can assert the
/// vectorised path actually runs (including under sanitizers, where the
/// previous ifunc-based multiversioning silently fell back to scalar).
const char* conv1d_kernel_name();

/// 1-D transposed convolution (upsampling), inverse geometry of Conv1d with
/// the same kernel/stride and no padding: L_out = (L_in - 1) * stride + k.
class ConvTranspose1d : public Module {
 public:
  ConvTranspose1d(Index in_channels, Index out_channels, Index kernel_size, Index stride,
                  Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor forward_inference(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "ConvTranspose1d"; }
  Shape output_shape(const Shape& in) const override;
  long flops(const Shape& in) const override;

 private:
  /// The scalar reference scatter, used by forward (which must cache the
  /// input anyway) and by forward_inference for overlapping geometries
  /// (stride < kernel). For stride >= kernel forward_inference runs a
  /// blocked kernel through the dispatch table with the same per-element
  /// semantics, so both paths stay bit-identical (pinned by test_nn_layers).
  Tensor apply(const Tensor& x) const;

  Index in_ch_;
  Index out_ch_;
  Index kernel_;
  Index stride_;
  Parameter weight_;  // [in_ch, out_ch, kernel]
  Parameter bias_;    // [out_ch]
  Tensor cached_input_;
};

/// Collapses [N, C, L] to [N, C*L] (row-major, i.e. channel-major blocks).
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor forward_inference(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Flatten"; }
  Shape output_shape(const Shape& in) const override;
  long flops(const Shape&) const override { return 0; }

 private:
  Shape cached_shape_;
};

/// Selects the last time step of a sequence: [N, C, L] -> [N, C].
class LastTimeStep : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor forward_inference(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "LastTimeStep"; }
  Shape output_shape(const Shape& in) const override;
  long flops(const Shape&) const override { return 0; }

 private:
  Shape cached_shape_;
};

/// Pre-activation 1-D residual block (He et al. [7] adapted to sequences):
///   y = x + Conv(ReLU(Conv(ReLU(x))))
/// with kernel 3, stride 1, padding 1, so the shape is preserved.
class ResidualBlock1d : public Module {
 public:
  ResidualBlock1d(Index channels, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor forward_inference(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "ResidualBlock1d"; }
  Shape output_shape(const Shape& in) const override { return in; }
  long flops(const Shape& in) const override;

 private:
  ReLU relu1_;
  Conv1d conv1_;
  ReLU relu2_;
  Conv1d conv2_;
};

}  // namespace varade::nn
