// Long Short-Term Memory layer with full backpropagation through time.
//
// Operates on channels-first sequences [N, C, L] (consistent with Conv1d) and
// returns the full hidden sequence [N, H, L], so layers stack naturally; use
// nn::LastTimeStep to extract the final hidden state.
//
// Gate order in the fused weight matrices is (input, forget, cell, output).
#pragma once

#include "varade/nn/module.hpp"

namespace varade::nn {

class Lstm : public Module {
 public:
  Lstm(Index input_size, Index hidden_size, Rng& rng);

  Tensor forward(const Tensor& x) override;
  /// Batched stepped forward without the per-step gate/cell caches backward()
  /// needs: rolling h/c state only, so B contexts stream through in one call
  /// with no per-step allocations. Bit-identical to forward() (both run the
  /// same per-unit cell kernel).
  Tensor forward_inference(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&w_ih_, &w_hh_, &bias_}; }
  std::string name() const override { return "Lstm"; }
  Shape output_shape(const Shape& in) const override;
  long flops(const Shape& in) const override;

  Index input_size() const { return input_; }
  Index hidden_size() const { return hidden_; }

 private:
  Index input_;
  Index hidden_;
  Parameter w_ih_;  // [4H, C]
  Parameter w_hh_;  // [4H, H]
  Parameter bias_;  // [4H]

  // Caches from the last forward pass (indexed [t][n*...]).
  Tensor cached_input_;              // [N, C, L]
  std::vector<Tensor> gate_i_;       // each [N, H]
  std::vector<Tensor> gate_f_;
  std::vector<Tensor> gate_g_;
  std::vector<Tensor> gate_o_;
  std::vector<Tensor> cell_;         // c_t, [N, H]
  std::vector<Tensor> cell_tanh_;    // tanh(c_t), [N, H]
  std::vector<Tensor> hidden_seq_;   // h_t, [N, H] (h_{-1} stored at index 0 shifted)
};

}  // namespace varade::nn
