// Layer abstraction for the varade neural-network substrate.
//
// The library uses explicit per-layer forward/backward (Caffe-style) rather
// than a dynamic autograd tape: the hot path is allocation-predictable, every
// layer is independently finite-difference-testable, and the edge profiler can
// query static per-layer cost (FLOPs, parameter bytes, activation bytes).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "varade/tensor/tensor.hpp"

namespace varade::nn {

/// A trainable tensor with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

/// Base class for all layers.
///
/// Contract:
///  - forward(x) caches whatever the layer needs and returns the output.
///  - backward(grad_out) must be called after forward with a gradient of the
///    same shape as the forward output; it accumulates parameter gradients
///    (+=) and returns the gradient w.r.t. the forward input.
///  - output_shape/flops describe the layer statically for profiling; shapes
///    exclude the batch dimension handled uniformly by convention [N, ...].
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Inference-only forward: identical arithmetic to forward() but skips the
  /// activation caches backward() needs, so no per-call copies or per-step
  /// cache allocations. The default falls back to forward(), so every layer
  /// is safe by construction; layers that cache override it. Must never be
  /// interleaved with forward()/backward() training steps expecting caches.
  virtual Tensor forward_inference(const Tensor& x) { return forward(x); }

  /// Trainable parameters (possibly empty). Pointers remain valid for the
  /// lifetime of the module.
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;

  /// Output shape for a single sample of shape `in` (no batch dim).
  virtual Shape output_shape(const Shape& in) const = 0;

  /// Multiply-accumulate-dominated operation count for one sample.
  virtual long flops(const Shape& in) const = 0;

  /// Resets all parameter gradients to zero.
  void zero_grad() {
    for (Parameter* p : parameters()) p->grad.zero();
  }

  /// Total number of trainable scalars.
  long num_params() {
    long n = 0;
    for (Parameter* p : parameters()) n += p->value.numel();
    return n;
  }

  /// Bytes of parameter storage (float32).
  long param_bytes() { return num_params() * static_cast<long>(sizeof(float)); }
};

/// Copies parameter values `from` -> `to` (same architecture expected);
/// throws on count or shape mismatch. Used to replicate fitted models.
inline void copy_parameter_values(const std::vector<Parameter*>& from,
                                  const std::vector<Parameter*>& to) {
  check(from.size() == to.size(), "replica parameter count mismatch");
  for (std::size_t i = 0; i < from.size(); ++i) {
    check(from[i]->value.same_shape(to[i]->value), "replica parameter shape mismatch");
    to[i]->value = from[i]->value;
  }
}

/// Ordered container of layers; forwards/backwards through the chain.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for chaining.
  Sequential& add(std::unique_ptr<Module> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  /// Convenience: construct the layer in place.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& x) override {
    Tensor h = x;
    for (auto& l : layers_) h = l->forward(h);
    return h;
  }

  Tensor forward_inference(const Tensor& x) override {
    Tensor h = x;
    for (auto& l : layers_) h = l->forward_inference(h);
    return h;
  }

  Tensor backward(const Tensor& grad_out) override {
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
    return g;
  }

  std::vector<Parameter*> parameters() override {
    std::vector<Parameter*> ps;
    for (auto& l : layers_) {
      auto sub = l->parameters();
      ps.insert(ps.end(), sub.begin(), sub.end());
    }
    return ps;
  }

  std::string name() const override { return "Sequential"; }

  Shape output_shape(const Shape& in) const override {
    Shape s = in;
    for (const auto& l : layers_) s = l->output_shape(s);
    return s;
  }

  long flops(const Shape& in) const override {
    long total = 0;
    Shape s = in;
    for (const auto& l : layers_) {
      total += l->flops(s);
      s = l->output_shape(s);
    }
    return total;
  }

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i) { return *layers_.at(i); }
  const Module& layer(std::size_t i) const { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace varade::nn
