#include "varade/nn/lstm.hpp"

#include <cmath>
#include <utility>

#include "varade/nn/init.hpp"

namespace varade::nn {

namespace {
inline float sigmoid(float v) { return 1.0F / (1.0F + std::exp(-v)); }

/// One LSTM unit update for batch row `b`, unit `h`, time step `t`. Shared by
/// forward and forward_inference so the two paths are bit-identical by
/// construction (same per-element operation order).
struct LstmCell {
  float i, f, g, o, c, tc, h;
};

inline LstmCell lstm_cell(Index h, Index hidden, Index input, const float* pwi, const float* pwh,
                          const float* pb, const float* xb, Index l, Index t, const float* hp,
                          float c_prev) {
  // Pre-activations for the four gates of unit h.
  double pre[4];
  for (int g = 0; g < 4; ++g) {
    const Index row = g * hidden + h;
    double acc = pb[row];
    const float* wi = pwi + row * input;
    for (Index c = 0; c < input; ++c) acc += static_cast<double>(wi[c]) * xb[c * l + t];
    const float* wh = pwh + row * hidden;
    for (Index k = 0; k < hidden; ++k) acc += static_cast<double>(wh[k]) * hp[k];
    pre[g] = acc;
  }
  LstmCell cell;
  cell.i = sigmoid(static_cast<float>(pre[0]));
  cell.f = sigmoid(static_cast<float>(pre[1]));
  cell.g = std::tanh(static_cast<float>(pre[2]));
  cell.o = sigmoid(static_cast<float>(pre[3]));
  cell.c = cell.f * c_prev + cell.i * cell.g;
  cell.tc = std::tanh(cell.c);
  cell.h = cell.o * cell.tc;
  return cell;
}
}  // namespace

Lstm::Lstm(Index input_size, Index hidden_size, Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      w_ih_("w_ih", xavier_uniform({4 * hidden_size, input_size}, input_size, hidden_size, rng)),
      w_hh_("w_hh", xavier_uniform({4 * hidden_size, hidden_size}, hidden_size, hidden_size, rng)),
      bias_("bias", Tensor({4 * hidden_size})) {
  check(input_size > 0 && hidden_size > 0, "Lstm dimensions must be positive");
  // Initialise the forget-gate bias to 1 (standard trick for gradient flow).
  for (Index h = 0; h < hidden_; ++h) bias_.value[hidden_ + h] = 1.0F;
}

Tensor Lstm::forward(const Tensor& x) {
  check(x.rank() == 3 && x.dim(1) == input_,
        "Lstm expected [N, " + std::to_string(input_) + ", L], got " +
            shape_to_string(x.shape()));
  cached_input_ = x;
  const Index n = x.dim(0);
  const Index l = x.dim(2);
  gate_i_.assign(static_cast<std::size_t>(l), Tensor());
  gate_f_.assign(static_cast<std::size_t>(l), Tensor());
  gate_g_.assign(static_cast<std::size_t>(l), Tensor());
  gate_o_.assign(static_cast<std::size_t>(l), Tensor());
  cell_.assign(static_cast<std::size_t>(l), Tensor());
  cell_tanh_.assign(static_cast<std::size_t>(l), Tensor());
  hidden_seq_.assign(static_cast<std::size_t>(l), Tensor());

  Tensor h_prev({n, hidden_});
  Tensor c_prev({n, hidden_});
  Tensor out({n, hidden_, l});

  const float* pwi = w_ih_.value.data();
  const float* pwh = w_hh_.value.data();
  const float* pb = bias_.value.data();
  const float* px = x.data();

  for (Index t = 0; t < l; ++t) {
    Tensor gi({n, hidden_});
    Tensor gf({n, hidden_});
    Tensor gg({n, hidden_});
    Tensor go({n, hidden_});
    Tensor ct({n, hidden_});
    Tensor ct_tanh({n, hidden_});
    Tensor ht({n, hidden_});
    for (Index b = 0; b < n; ++b) {
      const float* hp = h_prev.data() + b * hidden_;
      const float* cp = c_prev.data() + b * hidden_;
      const float* xb = px + b * input_ * l;
      for (Index h = 0; h < hidden_; ++h) {
        const LstmCell cell = lstm_cell(h, hidden_, input_, pwi, pwh, pb, xb, l, t, hp, cp[h]);
        const Index idx = b * hidden_ + h;
        gi[idx] = cell.i;
        gf[idx] = cell.f;
        gg[idx] = cell.g;
        go[idx] = cell.o;
        ct[idx] = cell.c;
        ct_tanh[idx] = cell.tc;
        ht[idx] = cell.h;
        out[(b * hidden_ + h) * l + t] = cell.h;
      }
    }
    gate_i_[static_cast<std::size_t>(t)] = std::move(gi);
    gate_f_[static_cast<std::size_t>(t)] = std::move(gf);
    gate_g_[static_cast<std::size_t>(t)] = std::move(gg);
    gate_o_[static_cast<std::size_t>(t)] = std::move(go);
    cell_[static_cast<std::size_t>(t)] = ct;
    cell_tanh_[static_cast<std::size_t>(t)] = std::move(ct_tanh);
    hidden_seq_[static_cast<std::size_t>(t)] = ht;
    h_prev = std::move(ht);
    c_prev = std::move(ct);
  }
  return out;
}

Tensor Lstm::forward_inference(const Tensor& x) {
  check(x.rank() == 3 && x.dim(1) == input_,
        "Lstm expected [N, " + std::to_string(input_) + ", L], got " +
            shape_to_string(x.shape()));
  const Index n = x.dim(0);
  const Index l = x.dim(2);

  // Rolling state only: two h/c double buffers for the whole call, no
  // per-step cache tensors.
  Tensor h_prev({n, hidden_});
  Tensor c_prev({n, hidden_});
  Tensor h_cur({n, hidden_});
  Tensor c_cur({n, hidden_});
  Tensor out({n, hidden_, l});

  const float* pwi = w_ih_.value.data();
  const float* pwh = w_hh_.value.data();
  const float* pb = bias_.value.data();
  const float* px = x.data();

  if (n == 1) {
    // Single row: the blocked kernel below has nothing to interleave and its
    // array-backed accumulators only add overhead; run the rolling per-unit
    // loop (same lstm_cell arithmetic, so identical bits either way).
    const float* xb = px;
    for (Index t = 0; t < l; ++t) {
      for (Index h = 0; h < hidden_; ++h) {
        const LstmCell cell =
            lstm_cell(h, hidden_, input_, pwi, pwh, pb, xb, l, t, h_prev.data(), c_prev[h]);
        h_cur[h] = cell.h;
        c_cur[h] = cell.c;
        out[h * l + t] = cell.h;
      }
      std::swap(h_prev, h_cur);
      std::swap(c_prev, c_cur);
    }
    return out;
  }

  // The gate pre-activation of one unit is a serial double-accumulate chain,
  // so a single row runs at FMA latency, not throughput. Interleaving a block
  // of R batch rows keeps R independent chains in flight per weight load —
  // the batched win — while every row still accumulates bias, then w_ih in
  // channel order, then w_hh in unit order, exactly like lstm_cell, so the
  // scores stay bit-identical to the sequential path.
  constexpr Index R = 8;
  double pre[4][R];

  for (Index t = 0; t < l; ++t) {
    for (Index b0 = 0; b0 < n; b0 += R) {
      const Index bn = std::min<Index>(R, n - b0);
      for (Index h = 0; h < hidden_; ++h) {
        for (int g = 0; g < 4; ++g) {
          const Index row = g * hidden_ + h;
          const float* wi = pwi + row * input_;
          const float* wh = pwh + row * hidden_;
          for (Index r = 0; r < bn; ++r) pre[g][r] = pb[row];
          for (Index c = 0; c < input_; ++c) {
            const double wv = wi[c];
            for (Index r = 0; r < bn; ++r)
              pre[g][r] += wv * px[((b0 + r) * input_ + c) * l + t];
          }
          for (Index k = 0; k < hidden_; ++k) {
            const double wv = wh[k];
            for (Index r = 0; r < bn; ++r)
              pre[g][r] += wv * h_prev[(b0 + r) * hidden_ + k];
          }
        }
        for (Index r = 0; r < bn; ++r) {
          const Index idx = (b0 + r) * hidden_ + h;
          const float i = sigmoid(static_cast<float>(pre[0][r]));
          const float f = sigmoid(static_cast<float>(pre[1][r]));
          const float g = std::tanh(static_cast<float>(pre[2][r]));
          const float o = sigmoid(static_cast<float>(pre[3][r]));
          const float c = f * c_prev[idx] + i * g;
          const float tc = std::tanh(c);
          c_cur[idx] = c;
          h_cur[idx] = o * tc;
          out[idx * l + t] = h_cur[idx];
        }
      }
    }
    std::swap(h_prev, h_cur);
    std::swap(c_prev, c_cur);
  }
  return out;
}

Tensor Lstm::backward(const Tensor& grad_out) {
  const Index n = cached_input_.dim(0);
  const Index l = cached_input_.dim(2);
  check(grad_out.rank() == 3 && grad_out.dim(0) == n && grad_out.dim(1) == hidden_ &&
            grad_out.dim(2) == l,
        "Lstm backward shape mismatch");

  Tensor grad_in(cached_input_.shape());
  Tensor dh_next({n, hidden_});
  Tensor dc_next({n, hidden_});

  const float* pwi = w_ih_.value.data();
  const float* pwh = w_hh_.value.data();
  float* pdwi = w_ih_.grad.data();
  float* pdwh = w_hh_.grad.data();
  float* pdb = bias_.grad.data();
  const float* px = cached_input_.data();
  float* pdx = grad_in.data();

  Tensor da({n, 4 * hidden_});  // pre-activation gradients, reused per step

  for (Index t = l - 1; t >= 0; --t) {
    const auto ts = static_cast<std::size_t>(t);
    const Tensor& gi = gate_i_[ts];
    const Tensor& gf = gate_f_[ts];
    const Tensor& gg = gate_g_[ts];
    const Tensor& go = gate_o_[ts];
    const Tensor& tc = cell_tanh_[ts];
    const Tensor* c_prev = t > 0 ? &cell_[ts - 1] : nullptr;
    const Tensor* h_prev = t > 0 ? &hidden_seq_[ts - 1] : nullptr;

    da.zero();
    Tensor dc_prev({n, hidden_});
    for (Index b = 0; b < n; ++b) {
      for (Index h = 0; h < hidden_; ++h) {
        const Index idx = b * hidden_ + h;
        const float dh = grad_out[(b * hidden_ + h) * l + t] + dh_next[idx];
        const float dco = dh * go[idx] * (1.0F - tc[idx] * tc[idx]) + dc_next[idx];
        const float cprev = c_prev != nullptr ? (*c_prev)[idx] : 0.0F;
        const float d_i = dco * gg[idx];
        const float d_f = dco * cprev;
        const float d_g = dco * gi[idx];
        const float d_o = dh * tc[idx];
        da[b * 4 * hidden_ + 0 * hidden_ + h] = d_i * gi[idx] * (1.0F - gi[idx]);
        da[b * 4 * hidden_ + 1 * hidden_ + h] = d_f * gf[idx] * (1.0F - gf[idx]);
        da[b * 4 * hidden_ + 2 * hidden_ + h] = d_g * (1.0F - gg[idx] * gg[idx]);
        da[b * 4 * hidden_ + 3 * hidden_ + h] = d_o * go[idx] * (1.0F - go[idx]);
        dc_prev[idx] = dco * gf[idx];
      }
    }

    // Accumulate parameter grads and propagate to x_t and h_{t-1}.
    dh_next.zero();
    for (Index b = 0; b < n; ++b) {
      const float* darow = da.data() + b * 4 * hidden_;
      for (Index r = 0; r < 4 * hidden_; ++r) {
        const float g = darow[r];
        if (g == 0.0F) continue;
        pdb[r] += g;
        float* dwi = pdwi + r * input_;
        const float* wi = pwi + r * input_;
        for (Index c = 0; c < input_; ++c) {
          dwi[c] += g * px[(b * input_ + c) * l + t];
          pdx[(b * input_ + c) * l + t] += g * wi[c];
        }
        float* dwh = pdwh + r * hidden_;
        const float* wh = pwh + r * hidden_;
        float* dhn = dh_next.data() + b * hidden_;
        if (h_prev != nullptr) {
          const float* hp = h_prev->data() + b * hidden_;
          for (Index k = 0; k < hidden_; ++k) {
            dwh[k] += g * hp[k];
            dhn[k] += g * wh[k];
          }
        }
      }
    }
    dc_next = std::move(dc_prev);
  }
  return grad_in;
}

Shape Lstm::output_shape(const Shape& in) const {
  check(in.size() == 2 && in[0] == input_, "Lstm output_shape mismatch");
  return {hidden_, in[1]};
}

long Lstm::flops(const Shape& in) const {
  check(in.size() == 2, "Lstm flops expects [C, L]");
  const Index l = in[1];
  return 2L * 4 * hidden_ * (input_ + hidden_) * l;
}

}  // namespace varade::nn
