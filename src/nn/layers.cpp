#include "varade/nn/layers.hpp"

#include <cmath>

#include "varade/nn/init.hpp"

namespace varade::nn {

// ---------------------------------------------------------------- Linear ----

Linear::Linear(Index in_features, Index out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("weight", he_normal({out_features, in_features}, in_features, rng)),
      bias_("bias", Tensor({out_features})) {
  check(in_features > 0 && out_features > 0, "Linear dimensions must be positive");
}

Tensor Linear::forward(const Tensor& x) {
  cached_input_ = x;
  return apply(x);
}

Tensor Linear::forward_inference(const Tensor& x) { return apply(x); }

Tensor Linear::apply(const Tensor& x) const {
  check(x.rank() == 2 && x.dim(1) == in_,
        "Linear expected [N, " + std::to_string(in_) + "], got " + shape_to_string(x.shape()));
  const Index n = x.dim(0);
  Tensor y({n, out_});
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pb = bias_.value.data();
  float* py = y.data();
  for (Index i = 0; i < n; ++i) {
    for (Index o = 0; o < out_; ++o) {
      const float* wrow = pw + o * in_;
      const float* xrow = px + i * in_;
      double acc = pb[o];
      for (Index j = 0; j < in_; ++j) acc += static_cast<double>(wrow[j]) * xrow[j];
      py[i * out_ + o] = static_cast<float>(acc);
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  check(grad_out.rank() == 2 && grad_out.dim(1) == out_, "Linear backward shape mismatch");
  const Index n = grad_out.dim(0);
  check(cached_input_.rank() == 2 && cached_input_.dim(0) == n,
        "Linear backward called without matching forward");
  // dW[o,j] += sum_i g[i,o] * x[i,j];  db[o] += sum_i g[i,o];  dx = g W
  const float* pg = grad_out.data();
  const float* px = cached_input_.data();
  const float* pw = weight_.value.data();
  float* pdw = weight_.grad.data();
  float* pdb = bias_.grad.data();
  Tensor grad_in({n, in_});
  float* pdx = grad_in.data();
  for (Index i = 0; i < n; ++i) {
    const float* grow = pg + i * out_;
    const float* xrow = px + i * in_;
    float* dxrow = pdx + i * in_;
    for (Index o = 0; o < out_; ++o) {
      const float g = grow[o];
      if (g == 0.0F) continue;
      pdb[o] += g;
      float* dwrow = pdw + o * in_;
      const float* wrow = pw + o * in_;
      for (Index j = 0; j < in_; ++j) {
        dwrow[j] += g * xrow[j];
        dxrow[j] += g * wrow[j];
      }
    }
  }
  return grad_in;
}

Shape Linear::output_shape(const Shape& in) const {
  check(in.size() == 1 && in[0] == in_, "Linear output_shape mismatch");
  return {out_};
}

long Linear::flops(const Shape&) const { return 2L * in_ * out_; }

// ------------------------------------------------------------------ ReLU ----

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  return forward_inference(x);
}

Tensor ReLU::forward_inference(const Tensor& x) {
  // Same elementwise max as the map() path, minus the std::function call
  // per element — this runs once per residual-block layer on the serving
  // hot path and autovectorises as written.
  Tensor y = x;
  float* p = y.data();
  const Index n = y.numel();
  for (Index i = 0; i < n; ++i) p[i] = p[i] > 0.0F ? p[i] : 0.0F;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  check(grad_out.same_shape(cached_input_), "ReLU backward shape mismatch");
  Tensor g = grad_out;
  const Index n = g.numel();
  for (Index i = 0; i < n; ++i)
    if (cached_input_[i] <= 0.0F) g[i] = 0.0F;
  return g;
}

// ------------------------------------------------------------------ Tanh ----

Tensor Tanh::forward(const Tensor& x) {
  cached_output_ = forward_inference(x);
  return cached_output_;
}

Tensor Tanh::forward_inference(const Tensor& x) {
  return x.map([](float v) { return std::tanh(v); });
}

Tensor Tanh::backward(const Tensor& grad_out) {
  check(grad_out.same_shape(cached_output_), "Tanh backward shape mismatch");
  Tensor g = grad_out;
  const Index n = g.numel();
  for (Index i = 0; i < n; ++i) g[i] *= 1.0F - cached_output_[i] * cached_output_[i];
  return g;
}

// ---------------------------------------------------------------- Conv1d ----

namespace {

// Runtime dispatch for the convolution inference kernels: each kernel body
// is an always_inline template compiled twice — once plain, once inside an
// __attribute__((target("avx2"))) wrapper so the compiler vectorises it four
// doubles wide (FMA stays off — a contracted fused multiply-add would round
// differently and break the bit-parity contract with the scalar path) — and
// an explicit function-pointer table picks per host via
// __builtin_cpu_supports("avx2"), resolved once at first use.
//
// This replaces the earlier target_clones multiversioning: ifunc resolvers
// run before sanitizer runtimes are initialised, so TSan builds had to
// disable the clones entirely (silently pinning TSan CI to the scalar
// kernel) and ASan builds depended on resolver ordering luck. A plain
// static-local table has neither problem — sanitized builds now exercise
// the same vectorised kernel as release builds, asserted by
// conv1d_kernel_name() in the test suite.
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target)
#define VARADE_CONV_MULTIARCH 1
#endif
#endif

/// Interior output steps of a Conv1d inference forward: every window is
/// fully in bounds (t in [t_lo, t_hi)), so the accumulation runs k-major
/// over blocks of output steps — each lane keeps its own double accumulator
/// fed in ascending-k order, which is exactly the scalar reference's
/// per-element order, just unrolled across independent outputs so the
/// compiler can vectorise. `py` rows must already hold the bias.
#define VARADE_CONV_INLINE inline __attribute__((always_inline))

/// One output-channel row of interior steps for compile-time kernel size K
/// and stride S (the model hot paths: the residual-block k3/s1 convolutions
/// and VARADE's halving k2/s2 trunk). Full 8-wide blocks run with
/// compile-time loop bounds, so the y-block and the per-lane double
/// accumulators live in registers and the K loop fully unrolls; the ragged
/// tail keeps the scalar reference loop. always_inline: the body must be
/// inlined into the multiversioned caller so the AVX2 clone compiles it
/// with AVX2 (an out-of-line copy would be baseline ISA).
template <Index K, Index S>
VARADE_CONV_INLINE void conv1d_interior_row_ks(const float* xb, const float* wc, float* yc,
                                               Index in_ch, Index l_in, Index padding,
                                               Index t_lo, Index t_hi) {
  constexpr Index kBlock = 8;
  Index t0 = t_lo;
  for (; t0 + kBlock <= t_hi; t0 += kBlock) {
    float yv[kBlock];
    for (Index j = 0; j < kBlock; ++j) yv[j] = yc[t0 + j];
    for (Index ci = 0; ci < in_ch; ++ci) {
      const float* xrow = xb + ci * l_in + t0 * S - padding;
      const float* wk = wc + ci * K;
      double acc[kBlock];
      for (Index j = 0; j < kBlock; ++j) acc[j] = 0.0;
      for (Index k = 0; k < K; ++k) {
        const float* xk = xrow + k;
        const double wv = static_cast<double>(wk[k]);
        for (Index j = 0; j < kBlock; ++j) acc[j] += wv * xk[j * S];
      }
      for (Index j = 0; j < kBlock; ++j) yv[j] += static_cast<float>(acc[j]);
    }
    for (Index j = 0; j < kBlock; ++j) yc[t0 + j] = yv[j];
  }
  for (Index t = t0; t < t_hi; ++t) {
    for (Index ci = 0; ci < in_ch; ++ci) {
      const float* xrow = xb + ci * l_in + t * S - padding;
      const float* wk = wc + ci * K;
      double acc = 0.0;
      for (Index k = 0; k < K; ++k) acc += static_cast<double>(wk[k]) * xrow[k];
      yc[t] += static_cast<float>(acc);
    }
  }
}

/// Generic interior fallback (any kernel/stride): the scalar reference loop
/// minus the bounds checks. Kept deliberately simple — blocked variants
/// with runtime strides measured slower than this on the odd geometries.
VARADE_CONV_INLINE void conv1d_interior_row(const float* xb, const float* wc, float* yc,
                                            Index in_ch, Index l_in, Index kernel,
                                            Index stride, Index padding, Index t_lo,
                                            Index t_hi) {
  for (Index ci = 0; ci < in_ch; ++ci) {
    const float* xc = xb + ci * l_in;
    const float* wk = wc + ci * kernel;
    for (Index t = t_lo; t < t_hi; ++t) {
      const float* xrow = xc + t * stride - padding;
      double acc = 0.0;
      for (Index k = 0; k < kernel; ++k) acc += static_cast<double>(wk[k]) * xrow[k];
      yc[t] += static_cast<float>(acc);
    }
  }
}

VARADE_CONV_INLINE void conv1d_interior_impl(const float* px, const float* pw, float* py,
                                             Index n, Index in_ch, Index out_ch, Index l_in,
                                             Index l_out, Index kernel, Index stride,
                                             Index padding, Index t_lo, Index t_hi) {
  for (Index b = 0; b < n; ++b) {
    const float* xb = px + b * in_ch * l_in;
    float* yb = py + b * out_ch * l_out;
    for (Index co = 0; co < out_ch; ++co) {
      const float* wc = pw + co * in_ch * kernel;
      float* yc = yb + co * l_out;
      if (stride == 1 && kernel == 3) {
        conv1d_interior_row_ks<3, 1>(xb, wc, yc, in_ch, l_in, padding, t_lo, t_hi);
      } else if (stride == 1 && kernel == 2) {
        conv1d_interior_row_ks<2, 1>(xb, wc, yc, in_ch, l_in, padding, t_lo, t_hi);
      } else if (stride == 1 && kernel == 5) {
        conv1d_interior_row_ks<5, 1>(xb, wc, yc, in_ch, l_in, padding, t_lo, t_hi);
      } else if (stride == 2 && kernel == 2) {
        conv1d_interior_row_ks<2, 2>(xb, wc, yc, in_ch, l_in, padding, t_lo, t_hi);
      } else {
        conv1d_interior_row(xb, wc, yc, in_ch, l_in, kernel, stride, padding, t_lo, t_hi);
      }
    }
  }
}

/// Non-overlapping ConvTranspose1d scatter row (stride >= kernel) for
/// compile-time kernel size K and stride S — the AE decoder's k2/s2
/// upsampling layers. Blocks of input steps write disjoint output ranges,
/// so a dense block (all lanes nonzero) can run k-major without branches and
/// vectorise; any block containing a zero falls back to the per-element
/// skip-zero loop so apply()'s observable semantics (no += of 0*w, which
/// could flip a -0.0 or materialise a NaN from a non-finite weight) are
/// preserved exactly. The zero skip matters here: these layers sit behind a
/// ReLU, so exact zeros are common in the decoder input.
template <Index K, Index S>
VARADE_CONV_INLINE void convt1d_row_ks(const float* xc, const float* wk, float* yc,
                                       Index l_in) {
  static_assert(S >= K, "blocked scatter requires non-overlapping outputs");
  constexpr Index kBlock = 8;
  Index t0 = 0;
  for (; t0 + kBlock <= l_in; t0 += kBlock) {
    bool dense = true;
    for (Index j = 0; j < kBlock; ++j) dense &= (xc[t0 + j] != 0.0F);
    if (dense) {
      // Every (t, k) pair hits a distinct output element, so the k-major
      // order below produces bit-identical results to the t-major reference.
      for (Index k = 0; k < K; ++k) {
        const float wv = wk[k];
        for (Index j = 0; j < kBlock; ++j) yc[(t0 + j) * S + k] += xc[t0 + j] * wv;
      }
      continue;
    }
    for (Index j = 0; j < kBlock; ++j) {
      const float xv = xc[t0 + j];
      if (xv == 0.0F) continue;
      float* yp = yc + (t0 + j) * S;
      for (Index k = 0; k < K; ++k) yp[k] += xv * wk[k];
    }
  }
  for (Index t = t0; t < l_in; ++t) {
    const float xv = xc[t];
    if (xv == 0.0F) continue;
    float* yp = yc + t * S;
    for (Index k = 0; k < K; ++k) yp[k] += xv * wk[k];
  }
}

/// Generic scatter row: apply()'s per-element loop for any geometry.
VARADE_CONV_INLINE void convt1d_row(const float* xc, const float* wk, float* yc, Index l_in,
                                    Index kernel, Index stride) {
  for (Index t = 0; t < l_in; ++t) {
    const float xv = xc[t];
    if (xv == 0.0F) continue;
    float* yp = yc + t * stride;
    for (Index k = 0; k < kernel; ++k) yp[k] += xv * wk[k];
  }
}

/// ConvTranspose1d scatter over bias-filled output rows, non-overlapping
/// geometries only (stride >= kernel — the caller keeps overlapping ones on
/// the scalar reference). Loop nest matches apply(): ci outer, so each
/// output element accumulates its per-input-channel contributions in
/// ascending-ci order.
VARADE_CONV_INLINE void convt1d_scatter_impl(const float* px, const float* pw, float* py,
                                             Index n, Index in_ch, Index out_ch, Index l_in,
                                             Index l_out, Index kernel, Index stride) {
  for (Index b = 0; b < n; ++b) {
    const float* xb = px + b * in_ch * l_in;
    float* yb = py + b * out_ch * l_out;
    for (Index ci = 0; ci < in_ch; ++ci) {
      const float* xc = xb + ci * l_in;
      for (Index co = 0; co < out_ch; ++co) {
        const float* wk = pw + (ci * out_ch + co) * kernel;
        float* yc = yb + co * l_out;
        if (kernel == 2 && stride == 2)
          convt1d_row_ks<2, 2>(xc, wk, yc, l_in);
        else
          convt1d_row(xc, wk, yc, l_in, kernel, stride);
      }
    }
  }
}

// ------------------------------------------------ kernel dispatch table ----

using Conv1dInteriorFn = void (*)(const float*, const float*, float*, Index, Index, Index,
                                  Index, Index, Index, Index, Index, Index, Index);
using ConvT1dScatterFn = void (*)(const float*, const float*, float*, Index, Index, Index,
                                  Index, Index, Index, Index);

struct KernelTable {
  Conv1dInteriorFn conv1d_interior;
  ConvT1dScatterFn convt1d_scatter;
  const char* name;
};

void conv1d_interior_scalar(const float* px, const float* pw, float* py, Index n, Index in_ch,
                            Index out_ch, Index l_in, Index l_out, Index kernel, Index stride,
                            Index padding, Index t_lo, Index t_hi) {
  conv1d_interior_impl(px, pw, py, n, in_ch, out_ch, l_in, l_out, kernel, stride, padding,
                       t_lo, t_hi);
}

void convt1d_scatter_scalar(const float* px, const float* pw, float* py, Index n, Index in_ch,
                            Index out_ch, Index l_in, Index l_out, Index kernel,
                            Index stride) {
  convt1d_scatter_impl(px, pw, py, n, in_ch, out_ch, l_in, l_out, kernel, stride);
}

#ifdef VARADE_CONV_MULTIARCH
// The always_inline impl bodies are compiled again inside these wrappers, so
// the target("avx2") attribute applies to every loop in them.
__attribute__((target("avx2"))) void conv1d_interior_avx2(const float* px, const float* pw,
                                                          float* py, Index n, Index in_ch,
                                                          Index out_ch, Index l_in,
                                                          Index l_out, Index kernel,
                                                          Index stride, Index padding,
                                                          Index t_lo, Index t_hi) {
  conv1d_interior_impl(px, pw, py, n, in_ch, out_ch, l_in, l_out, kernel, stride, padding,
                       t_lo, t_hi);
}

__attribute__((target("avx2"))) void convt1d_scatter_avx2(const float* px, const float* pw,
                                                          float* py, Index n, Index in_ch,
                                                          Index out_ch, Index l_in,
                                                          Index l_out, Index kernel,
                                                          Index stride) {
  convt1d_scatter_impl(px, pw, py, n, in_ch, out_ch, l_in, l_out, kernel, stride);
}
#endif

/// The selected kernel set. Resolution runs once (static local, thread-safe
/// under C++ magic statics) on first use — well after any sanitizer runtime
/// is up, unlike an ifunc resolver.
const KernelTable& kernels() {
  static const KernelTable table = [] {
#ifdef VARADE_CONV_MULTIARCH
    if (__builtin_cpu_supports("avx2"))
      return KernelTable{conv1d_interior_avx2, convt1d_scatter_avx2, "avx2"};
#endif
    return KernelTable{conv1d_interior_scalar, convt1d_scatter_scalar, "scalar"};
  }();
  return table;
}

}  // namespace

const char* conv1d_kernel_name() { return kernels().name; }

Conv1d::Conv1d(Index in_channels, Index out_channels, Index kernel_size, Index stride,
               Index padding, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel_size),
      stride_(stride),
      padding_(padding),
      weight_("weight",
              he_normal({out_channels, in_channels, kernel_size}, in_channels * kernel_size, rng)),
      bias_("bias", Tensor({out_channels})) {
  check(in_channels > 0 && out_channels > 0, "Conv1d channel counts must be positive");
  check(kernel_size > 0 && stride > 0 && padding >= 0, "Conv1d geometry invalid");
}

Index Conv1d::out_length(Index l) const {
  const Index padded = l + 2 * padding_;
  check(padded >= kernel_, "Conv1d input length " + std::to_string(l) + " shorter than kernel");
  return (padded - kernel_) / stride_ + 1;
}

Tensor Conv1d::forward(const Tensor& x) {
  cached_input_ = x;
  return apply(x);
}

Tensor Conv1d::forward_inference(const Tensor& x) {
  // Vectorised inference kernel. Every output element is still bias plus
  // ascending-ci float additions of ascending-k double dot products —
  // apply()'s exact per-element accumulation order, so the results are
  // bit-identical to forward() (pinned by test_nn_layers). The win: steps
  // whose windows never touch the zero padding need no bounds check, and
  // conv1d_interior runs them blocked across outputs (and AVX2-cloned);
  // only the few boundary steps keep the checked scalar loop.
  check(x.rank() == 3 && x.dim(1) == in_ch_,
        "Conv1d expected [N, " + std::to_string(in_ch_) + ", L], got " +
            shape_to_string(x.shape()));
  const Index n = x.dim(0);
  const Index l_in = x.dim(2);
  const Index l_out = out_length(l_in);
  // Interior steps t satisfy t*stride - padding >= 0 and
  // t*stride - padding + kernel <= l_in.
  const Index t_lo = std::min(l_out, (padding_ + stride_ - 1) / stride_);
  Index t_hi = t_lo;
  if (l_in + padding_ - kernel_ >= 0)
    t_hi = std::max(t_lo, std::min(l_out, (l_in + padding_ - kernel_) / stride_ + 1));

  Tensor y({n, out_ch_, l_out});
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pb = bias_.value.data();
  float* py = y.data();
  for (Index b = 0; b < n; ++b) {
    const float* xb = px + b * in_ch_ * l_in;
    float* yb = py + b * out_ch_ * l_out;
    for (Index co = 0; co < out_ch_; ++co) {
      const float* wc = pw + co * in_ch_ * kernel_;
      float* yc = yb + co * l_out;
      for (Index t = 0; t < l_out; ++t) yc[t] = pb[co];
      if (t_lo == 0 && t_hi == l_out) continue;  // fully interior (common case)
      for (Index ci = 0; ci < in_ch_; ++ci) {
        const float* xc = xb + ci * l_in;
        const float* wk = wc + ci * kernel_;
        // Boundary steps: the padded window clips, apply()'s scalar loop.
        const auto edge_step = [&](Index t) {
          const Index start = t * stride_ - padding_;
          double acc = 0.0;
          for (Index k = 0; k < kernel_; ++k) {
            const Index pos = start + k;
            if (pos >= 0 && pos < l_in) acc += static_cast<double>(wk[k]) * xc[pos];
          }
          yc[t] += static_cast<float>(acc);
        };
        for (Index t = 0; t < t_lo; ++t) edge_step(t);
        for (Index t = t_hi; t < l_out; ++t) edge_step(t);
      }
    }
  }
  kernels().conv1d_interior(px, pw, py, n, in_ch_, out_ch_, l_in, l_out, kernel_, stride_,
                            padding_, t_lo, t_hi);
  return y;
}

Tensor Conv1d::apply(const Tensor& x) const {
  check(x.rank() == 3 && x.dim(1) == in_ch_,
        "Conv1d expected [N, " + std::to_string(in_ch_) + ", L], got " +
            shape_to_string(x.shape()));
  const Index n = x.dim(0);
  const Index l_in = x.dim(2);
  const Index l_out = out_length(l_in);
  Tensor y({n, out_ch_, l_out});
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pb = bias_.value.data();
  float* py = y.data();
  for (Index b = 0; b < n; ++b) {
    const float* xb = px + b * in_ch_ * l_in;
    float* yb = py + b * out_ch_ * l_out;
    for (Index co = 0; co < out_ch_; ++co) {
      const float* wc = pw + co * in_ch_ * kernel_;
      float* yc = yb + co * l_out;
      for (Index t = 0; t < l_out; ++t) yc[t] = pb[co];
      for (Index ci = 0; ci < in_ch_; ++ci) {
        const float* xc = xb + ci * l_in;
        const float* wk = wc + ci * kernel_;
        for (Index t = 0; t < l_out; ++t) {
          const Index start = t * stride_ - padding_;
          double acc = 0.0;
          for (Index k = 0; k < kernel_; ++k) {
            const Index pos = start + k;
            if (pos >= 0 && pos < l_in) acc += static_cast<double>(wk[k]) * xc[pos];
          }
          yc[t] += static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

Tensor Conv1d::backward(const Tensor& grad_out) {
  const Index n = cached_input_.dim(0);
  const Index l_in = cached_input_.dim(2);
  const Index l_out = out_length(l_in);
  check(grad_out.rank() == 3 && grad_out.dim(0) == n && grad_out.dim(1) == out_ch_ &&
            grad_out.dim(2) == l_out,
        "Conv1d backward shape mismatch");
  Tensor grad_in(cached_input_.shape());
  const float* px = cached_input_.data();
  const float* pg = grad_out.data();
  const float* pw = weight_.value.data();
  float* pdw = weight_.grad.data();
  float* pdb = bias_.grad.data();
  float* pdx = grad_in.data();
  for (Index b = 0; b < n; ++b) {
    const float* xb = px + b * in_ch_ * l_in;
    const float* gb = pg + b * out_ch_ * l_out;
    float* dxb = pdx + b * in_ch_ * l_in;
    for (Index co = 0; co < out_ch_; ++co) {
      const float* gc = gb + co * l_out;
      const float* wc = pw + co * in_ch_ * kernel_;
      float* dwc = pdw + co * in_ch_ * kernel_;
      for (Index t = 0; t < l_out; ++t) pdb[co] += gc[t];
      for (Index ci = 0; ci < in_ch_; ++ci) {
        const float* xc = xb + ci * l_in;
        float* dxc = dxb + ci * l_in;
        const float* wk = wc + ci * kernel_;
        float* dwk = dwc + ci * kernel_;
        for (Index t = 0; t < l_out; ++t) {
          const float g = gc[t];
          if (g == 0.0F) continue;
          const Index start = t * stride_ - padding_;
          for (Index k = 0; k < kernel_; ++k) {
            const Index pos = start + k;
            if (pos >= 0 && pos < l_in) {
              dwk[k] += g * xc[pos];
              dxc[pos] += g * wk[k];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Shape Conv1d::output_shape(const Shape& in) const {
  check(in.size() == 2 && in[0] == in_ch_, "Conv1d output_shape mismatch");
  return {out_ch_, out_length(in[1])};
}

long Conv1d::flops(const Shape& in) const {
  check(in.size() == 2, "Conv1d flops expects [C, L]");
  return 2L * out_ch_ * in_ch_ * kernel_ * out_length(in[1]);
}

// ------------------------------------------------------- ConvTranspose1d ----

ConvTranspose1d::ConvTranspose1d(Index in_channels, Index out_channels, Index kernel_size,
                                 Index stride, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel_size),
      stride_(stride),
      weight_("weight",
              he_normal({in_channels, out_channels, kernel_size}, in_channels * kernel_size, rng)),
      bias_("bias", Tensor({out_channels})) {
  check(in_channels > 0 && out_channels > 0 && kernel_size > 0 && stride > 0,
        "ConvTranspose1d geometry invalid");
}

Tensor ConvTranspose1d::forward(const Tensor& x) {
  cached_input_ = x;
  return apply(x);
}

Tensor ConvTranspose1d::forward_inference(const Tensor& x) {
  // Blocked scatter through the kernel dispatch table. Only non-overlapping
  // geometries (stride >= kernel, which covers the AE decoder's k2/s2
  // upsampling) take the fast path: every output element then receives at
  // most one contribution per input channel, so blocks of input steps write
  // disjoint outputs and the result is bit-identical to apply() (pinned by
  // test_nn_layers). Overlapping geometries keep the scalar reference.
  if (stride_ < kernel_) return apply(x);
  check(x.rank() == 3 && x.dim(1) == in_ch_, "ConvTranspose1d expected [N, C, L]");
  const Index n = x.dim(0);
  const Index l_in = x.dim(2);
  const Index l_out = (l_in - 1) * stride_ + kernel_;
  Tensor y({n, out_ch_, l_out});
  const float* pb = bias_.value.data();
  float* py = y.data();
  for (Index b = 0; b < n; ++b) {
    float* yb = py + b * out_ch_ * l_out;
    for (Index co = 0; co < out_ch_; ++co) {
      float* yc = yb + co * l_out;
      for (Index t = 0; t < l_out; ++t) yc[t] = pb[co];
    }
  }
  kernels().convt1d_scatter(x.data(), weight_.value.data(), py, n, in_ch_, out_ch_, l_in,
                            l_out, kernel_, stride_);
  return y;
}

Tensor ConvTranspose1d::apply(const Tensor& x) const {
  check(x.rank() == 3 && x.dim(1) == in_ch_, "ConvTranspose1d expected [N, C, L]");
  const Index n = x.dim(0);
  const Index l_in = x.dim(2);
  const Index l_out = (l_in - 1) * stride_ + kernel_;
  Tensor y({n, out_ch_, l_out});
  const float* px = x.data();
  const float* pw = weight_.value.data();
  const float* pb = bias_.value.data();
  float* py = y.data();
  for (Index b = 0; b < n; ++b) {
    const float* xb = px + b * in_ch_ * l_in;
    float* yb = py + b * out_ch_ * l_out;
    for (Index co = 0; co < out_ch_; ++co) {
      float* yc = yb + co * l_out;
      for (Index t = 0; t < l_out; ++t) yc[t] = pb[co];
    }
    for (Index ci = 0; ci < in_ch_; ++ci) {
      const float* xc = xb + ci * l_in;
      for (Index co = 0; co < out_ch_; ++co) {
        const float* wk = pw + (ci * out_ch_ + co) * kernel_;
        float* yc = yb + co * l_out;
        for (Index t = 0; t < l_in; ++t) {
          const float xv = xc[t];
          if (xv == 0.0F) continue;
          const Index start = t * stride_;
          for (Index k = 0; k < kernel_; ++k) yc[start + k] += xv * wk[k];
        }
      }
    }
  }
  return y;
}

Tensor ConvTranspose1d::backward(const Tensor& grad_out) {
  const Index n = cached_input_.dim(0);
  const Index l_in = cached_input_.dim(2);
  const Index l_out = (l_in - 1) * stride_ + kernel_;
  check(grad_out.rank() == 3 && grad_out.dim(0) == n && grad_out.dim(1) == out_ch_ &&
            grad_out.dim(2) == l_out,
        "ConvTranspose1d backward shape mismatch");
  Tensor grad_in(cached_input_.shape());
  const float* px = cached_input_.data();
  const float* pg = grad_out.data();
  const float* pw = weight_.value.data();
  float* pdw = weight_.grad.data();
  float* pdb = bias_.grad.data();
  float* pdx = grad_in.data();
  for (Index b = 0; b < n; ++b) {
    const float* xb = px + b * in_ch_ * l_in;
    const float* gb = pg + b * out_ch_ * l_out;
    float* dxb = pdx + b * in_ch_ * l_in;
    for (Index co = 0; co < out_ch_; ++co) {
      const float* gc = gb + co * l_out;
      for (Index t = 0; t < l_out; ++t) pdb[co] += gc[t];
    }
    for (Index ci = 0; ci < in_ch_; ++ci) {
      const float* xc = xb + ci * l_in;
      float* dxc = dxb + ci * l_in;
      for (Index co = 0; co < out_ch_; ++co) {
        const float* gc = gb + co * l_out;
        const float* wk = pw + (ci * out_ch_ + co) * kernel_;
        float* dwk = pdw + (ci * out_ch_ + co) * kernel_;
        for (Index t = 0; t < l_in; ++t) {
          const Index start = t * stride_;
          float dx_acc = 0.0F;
          for (Index k = 0; k < kernel_; ++k) {
            dx_acc += gc[start + k] * wk[k];
            dwk[k] += gc[start + k] * xc[t];
          }
          dxc[t] += dx_acc;
        }
      }
    }
  }
  return grad_in;
}

Shape ConvTranspose1d::output_shape(const Shape& in) const {
  check(in.size() == 2 && in[0] == in_ch_, "ConvTranspose1d output_shape mismatch");
  return {out_ch_, (in[1] - 1) * stride_ + kernel_};
}

long ConvTranspose1d::flops(const Shape& in) const {
  check(in.size() == 2, "ConvTranspose1d flops expects [C, L]");
  return 2L * out_ch_ * in_ch_ * kernel_ * in[1];
}

// --------------------------------------------------------------- Flatten ----

Tensor Flatten::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  return forward_inference(x);
}

Tensor Flatten::forward_inference(const Tensor& x) {
  check(x.rank() >= 2, "Flatten expects a batched tensor");
  Index inner = 1;
  for (Index a = 1; a < x.rank(); ++a) inner *= x.dim(a);
  return x.reshaped({x.dim(0), inner});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_shape_);
}

Shape Flatten::output_shape(const Shape& in) const {
  return {shape_numel(in)};
}

// ---------------------------------------------------------- LastTimeStep ----

Tensor LastTimeStep::forward(const Tensor& x) {
  check(x.rank() == 3, "LastTimeStep expects [N, C, L]");
  cached_shape_ = x.shape();
  return forward_inference(x);
}

Tensor LastTimeStep::forward_inference(const Tensor& x) {
  check(x.rank() == 3, "LastTimeStep expects [N, C, L]");
  const Index n = x.dim(0);
  const Index c = x.dim(1);
  const Index l = x.dim(2);
  Tensor y({n, c});
  for (Index b = 0; b < n; ++b)
    for (Index ch = 0; ch < c; ++ch) y[b * c + ch] = x[(b * c + ch) * l + (l - 1)];
  return y;
}

Tensor LastTimeStep::backward(const Tensor& grad_out) {
  const Index n = cached_shape_[0];
  const Index c = cached_shape_[1];
  const Index l = cached_shape_[2];
  check(grad_out.rank() == 2 && grad_out.dim(0) == n && grad_out.dim(1) == c,
        "LastTimeStep backward shape mismatch");
  Tensor g(cached_shape_);
  for (Index b = 0; b < n; ++b)
    for (Index ch = 0; ch < c; ++ch) g[(b * c + ch) * l + (l - 1)] = grad_out[b * c + ch];
  return g;
}

Shape LastTimeStep::output_shape(const Shape& in) const {
  check(in.size() == 2, "LastTimeStep output_shape expects [C, L]");
  return {in[0]};
}

// ------------------------------------------------------- ResidualBlock1d ----

ResidualBlock1d::ResidualBlock1d(Index channels, Rng& rng)
    : conv1_(channels, channels, 3, 1, 1, rng), conv2_(channels, channels, 3, 1, 1, rng) {}

Tensor ResidualBlock1d::forward(const Tensor& x) {
  Tensor h = relu1_.forward(x);
  h = conv1_.forward(h);
  h = relu2_.forward(h);
  h = conv2_.forward(h);
  return h + x;
}

Tensor ResidualBlock1d::forward_inference(const Tensor& x) {
  Tensor h = relu1_.forward_inference(x);
  h = conv1_.forward_inference(h);
  h = relu2_.forward_inference(h);
  h = conv2_.forward_inference(h);
  return h + x;
}

Tensor ResidualBlock1d::backward(const Tensor& grad_out) {
  Tensor g = conv2_.backward(grad_out);
  g = relu2_.backward(g);
  g = conv1_.backward(g);
  g = relu1_.backward(g);
  return g + grad_out;  // skip connection
}

std::vector<Parameter*> ResidualBlock1d::parameters() {
  std::vector<Parameter*> ps = conv1_.parameters();
  auto p2 = conv2_.parameters();
  ps.insert(ps.end(), p2.begin(), p2.end());
  return ps;
}

long ResidualBlock1d::flops(const Shape& in) const {
  return conv1_.flops(in) + conv2_.flops(in) + 2 * shape_numel(in);
}

}  // namespace varade::nn
