#include "varade/nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

namespace varade::nn {

namespace {

constexpr char kMagic[4] = {'V', 'R', 'D', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  check(static_cast<bool>(in), "unexpected end of weight stream");
  return v;
}

}  // namespace

void save_weights(Module& module, std::ostream& out) {
  auto params = module.parameters();
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const Parameter* p : params) {
    write_pod(out, static_cast<std::uint64_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod(out, static_cast<std::uint64_t>(p->value.rank()));
    for (Index d : p->value.shape()) write_pod(out, static_cast<std::uint64_t>(d));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  check(static_cast<bool>(out), "failed writing weight stream");
}

void save_weights(Module& module, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  check(f.is_open(), "cannot open for writing: " + path);
  save_weights(module, f);
}

void load_weights(Module& module, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  check(static_cast<bool>(in) && std::equal(magic, magic + 4, kMagic),
        "not a varade weight stream (bad magic)");
  const auto version = read_pod<std::uint32_t>(in);
  check(version == kVersion, "unsupported weight format version " + std::to_string(version));
  auto params = module.parameters();
  const auto count = read_pod<std::uint64_t>(in);
  check(count == params.size(), "weight stream has " + std::to_string(count) +
                                    " parameters, module expects " +
                                    std::to_string(params.size()));
  for (Parameter* p : params) {
    const auto name_len = read_pod<std::uint64_t>(in);
    check(name_len < (1U << 20), "implausible parameter name length");
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    check(static_cast<bool>(in), "unexpected end of weight stream");
    check(name == p->name,
          "parameter name mismatch: stream has '" + name + "', module expects '" + p->name + "'");
    const auto rank = read_pod<std::uint64_t>(in);
    check(rank <= 8, "implausible parameter rank");
    Shape shape(rank);
    for (auto& d : shape) d = static_cast<Index>(read_pod<std::uint64_t>(in));
    check(shape == p->value.shape(), "parameter shape mismatch for '" + name + "': stream " +
                                         shape_to_string(shape) + ", module " +
                                         shape_to_string(p->value.shape()));
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    check(static_cast<bool>(in), "unexpected end of weight stream");
  }
}

void load_weights(Module& module, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.is_open(), "cannot open for reading: " + path);
  load_weights(module, f);
}

}  // namespace varade::nn
