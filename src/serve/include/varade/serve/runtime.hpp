// Async scoring runtime: a self-driving, shardable frontend over the
// ScoringEngine.
//
// The synchronous ScoringEngine contract requires push() and step() to be
// externally serialised, so producers and the scorer cannot overlap. The
// AsyncScoringRuntime removes that cap: each stream gets a bounded lock-free
// SampleRing (ingest.hpp), producers push raw samples from arbitrary threads
// with a per-call backpressure policy, and background scoring threads drain
// the rings round-robin into engine push()/step() loops. Scores flow out
// either through a polling drain_scores() result queue or a user callback.
//
// Sharding: AsyncRuntimeConfig::n_shards statically partitions the stream
// space across N shards (ShardPartition, a modulo map — the one place stream
// ids are remapped). Each shard owns its own scorer thread, its own rings
// (a scorer never touches another shard's cache lines), its own result
// queue, and its own ScoringEngine over a clone_fitted() replica of the
// detector — so the shards share nothing on the hot path and scale across
// cores. When the detector cannot be replicated (clone_fitted() returns
// null), all shards fall back to the single borrowed instance and serialise
// their engine calls on one mutex: correct, just not parallel. n_shards = 1
// (the default) is exactly the pre-shard behaviour; 0 selects
// hardware_concurrency; shards beyond n_streams() stay empty and get no
// thread or engine.
//
// Determinism: a stream is owned by exactly one shard, that shard's scoring
// thread is the only thread touching its engine, and each ring preserves its
// producers' push order. With one producer per stream (the serving
// contract), every stream's samples reach its engine in exactly the order
// they were pushed; replicas are bit-identical to the original by the
// clone_fitted contract and score_batch is bit-identical to score_step — so
// per-stream scores and alarm events are bit-identical to a synchronous
// ScoringEngine — or one OnlineMonitor per stream — fed the same samples,
// for ANY shard count, producer timing, ring capacity, or batching.
//
// Lifecycle: add_streams() / calibrate() / on_score() before start(); the
// shard engines are built by start() (cloning the detector per shard);
// push() + drain_scores() while running; close() gates intake once, waits
// for in-flight pushes, then drains every ring to empty and joins all
// scorers deterministically — idempotent. Every push that returned Ok or
// DroppedOldest is guaranteed scored by the time close() returns — unless a
// scoring thread itself died on an exception, in which case that shard's
// still-buffered samples are abandoned and the first close() rethrows the
// failure.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "varade/serve/ingest.hpp"
#include "varade/serve/scoring_engine.hpp"

namespace varade::serve {

/// The static stream -> shard map: a modulo partition, so ownership is a
/// closed form and every remapping in the serving stack goes through these
/// three functions (nothing else may re-derive the arithmetic).
///   shard_of(s)  = s % n_shards      — owner shard of global stream s
///   local_of(s)  = s / n_shards      — s's index within its owner's engine
///   global_of(k, i) = i * n_shards + k  — inverse of (shard_of, local_of)
/// Every global stream id is owned by exactly one (shard, local) pair, and
/// with fewer streams than shards only the first n_streams shards own
/// anything — n_active() is the clamped number of non-empty shards.
struct ShardPartition {
  Index n_shards = 1;

  /// Resolves a config shard count: 0 = auto (hardware_concurrency, at
  /// least 1); otherwise the requested value. Throws on negatives.
  static Index resolve(Index requested);

  Index shard_of(Index stream) const { return stream % n_shards; }
  Index local_of(Index stream) const { return stream / n_shards; }
  Index global_of(Index shard, Index local) const { return local * n_shards + shard; }
  /// Shards that own at least one of `n_streams` streams.
  Index n_active(Index n_streams) const { return n_streams < n_shards ? n_streams : n_shards; }
  /// Streams owned by `shard` out of `n_streams` total.
  Index n_owned(Index shard, Index n_streams) const {
    return (n_streams - shard + n_shards - 1) / n_shards;
  }
};

struct AsyncRuntimeConfig {
  /// Configuration of the per-shard ScoringEngines the runtime owns and
  /// drives (each shard gets its own engine, thread pool, and replicas).
  /// engine.scoring_threads rides along: each shard's detector then splits
  /// every score_batch call across that many intra-batch workers,
  /// bit-identically at any value.
  ScoringEngineConfig engine;
  /// Per-stream ring capacity in samples; rounded up to a power of two.
  Index ring_capacity = 1024;
  /// Policy applied by the two-argument push(); per-call overload overrides.
  BackpressurePolicy backpressure = BackpressurePolicy::Block;
  /// Empty polling rounds before a shard's scoring thread naps between
  /// wakeups (each shard backs off independently).
  int idle_spin_rounds = 64;
  /// Scorer shards the stream space is partitioned across. 1 = one scoring
  /// thread and one engine (the pre-shard behaviour); 0 = auto
  /// (hardware_concurrency). Shards beyond n_streams() stay empty.
  Index n_shards = 1;
};

/// Per-stream ingestion counters (monotonic; sampled while running they are
/// a consistent snapshot per counter, not across counters).
struct IngestStats {
  long pushed = 0;    ///< samples accepted into the ring (Ok + DroppedOldest)
  long dropped = 0;   ///< older samples evicted by DropOldest pushes
  long rejected = 0;  ///< pushes refused (Reject on full, or runtime closed)
};

/// Per-shard scorer counters (valid any time; exact once quiescent).
struct ShardStats {
  Index n_streams = 0;  ///< streams this shard owns
  long rounds = 0;      ///< scoring rounds (drain + engine step) run
  long naps = 0;        ///< times the shard's scorer actually went to sleep
  long scored = 0;      ///< StreamScores emitted (result queue or callback)
};

/// One aggregate snapshot of the whole runtime: the per-stream ingestion
/// totals summed across streams, the per-shard scorer totals summed across
/// shards, plus the full per-stream/per-shard breakdowns — everything a
/// serving daemon's stats endpoint reports in one call.
///
/// Memory-order contract (the one the TSan snapshot suite pins):
///   - Every counter is an independent atomic updated with relaxed RMWs and
///     read with one relaxed load per snapshot — no torn values, ever, and
///     each counter is individually monotonic across repeated snapshots.
///   - Cross-counter invariants (dropped <= pushed, scored <= pushed,
///     scored == pushed - dropped) are guaranteed only once the runtime is
///     quiescent (after close(), or while no push is in flight). A snapshot
///     taken mid-traffic may catch one counter before its sibling — relaxed
///     loads order nothing across locations, and stats() deliberately does
///     not impose ordering: the hot path stays fence-free.
///   - After close() returns, every counter is exact and the invariants
///     hold with equality.
struct RuntimeStats {
  long pushed = 0;    ///< sum of IngestStats::pushed over all streams
  long dropped = 0;   ///< sum of IngestStats::dropped over all streams
  long rejected = 0;  ///< sum of IngestStats::rejected over all streams
  long rounds = 0;    ///< sum of ShardStats::rounds over all shards
  long naps = 0;      ///< sum of ShardStats::naps over all shards
  long scored = 0;    ///< sum of ShardStats::scored over all shards
  std::vector<IngestStats> streams;  ///< by global stream id
  std::vector<ShardStats> shards;    ///< by shard id
};

/// Telemetry snapshot of one shard's scorer loop plus its engine's phase
/// tracer. All histograms are nanosecond-valued.
struct ShardTelemetry {
  obs::HistogramSnapshot round;  ///< productive round: drain + step + emit
  obs::HistogramSnapshot drain;  ///< ring-drain sweep of a productive round
  obs::HistogramSnapshot emit;   ///< result-queue / callback hop per round
  /// Nap/idle wake to end of the next productive drain sweep.
  obs::HistogramSnapshot wake_to_drain;
  EngineTelemetry engine;

  void merge(const ShardTelemetry& other);
};

/// Whole-runtime telemetry: per-shard snapshots plus their merge. Obtained
/// from AsyncScoringRuntime::telemetry(); safe to take while scorers run
/// (same relaxed-snapshot contract as RuntimeStats). All-zero when telemetry
/// is compiled off (-DVARADE_OBS=OFF).
struct RuntimeTelemetry {
  ShardTelemetry total;                ///< merged across active shards
  std::vector<ShardTelemetry> shards;  ///< by shard id (active shards only)
};

class AsyncScoringRuntime {
 public:
  /// Same borrow contract as ScoringEngine: detector fitted, normalizer
  /// fitted, both outlive the runtime.
  AsyncScoringRuntime(core::AnomalyDetector& detector, const data::MinMaxNormalizer& normalizer,
                      AsyncRuntimeConfig config = {});
  ~AsyncScoringRuntime();  // close()s if still running

  AsyncScoringRuntime(const AsyncScoringRuntime&) = delete;
  AsyncScoringRuntime& operator=(const AsyncScoringRuntime&) = delete;

  /// Stream registration; only before start().
  Index add_stream();
  Index add_streams(Index n);
  Index n_streams() const { return n_streams_; }

  /// The resolved stream -> shard map (n_shards already resolved; empty
  /// shards included — see n_active_shards()).
  const ShardPartition& partition() const { return partition_; }
  /// Resolved shard count (config value, with 0 resolved to the hardware).
  Index n_shards() const { return partition_.n_shards; }
  /// Shards that own streams and therefore get a scorer thread + engine.
  Index n_active_shards() const { return partition_.n_active(n_streams_); }
  /// True when start() found the detector non-replicable (clone_fitted()
  /// returned null) and the shards serialise scoring on the borrowed
  /// instance instead of running parallel replicas.
  bool sharing_detector() const { return share_detector_; }

  /// Threshold setup; only before start(). calibrate() computes the same
  /// quantile threshold as ScoringEngine::calibrate on the borrowed
  /// detector; start() then distributes it to every shard engine.
  void calibrate(const data::MultivariateSeries& train);
  void set_threshold(float threshold);
  float threshold() const { return threshold_; }

  /// Registers a callback invoked for every score. When set, scores are NOT
  /// queued for drain_scores(). Only before start(). The callback runs on
  /// the owning shard's scoring thread; invocations are serialised across
  /// shards (one shard's batch at a time), and within a stream they arrive
  /// in the engine's emission order.
  void on_score(std::function<void(const StreamScore&)> callback);

  /// Builds the shard engines (one clone_fitted() replica per shard, shared
  /// borrowed instance when the detector is not replicable) and launches
  /// one scoring thread per active shard. Requires >= 1 stream and a
  /// calibrated threshold.
  void start();

  /// Enqueues one raw sample for `stream` under the config's (or the given)
  /// backpressure policy. `count` is the number of floats at `raw_sample`
  /// and must equal the normalizer's channel count (validated — the explicit
  /// length contract of the raw-pointer path). Thread-safe against any other
  /// push and the scorers; one producer per stream keeps that stream's order
  /// (see header comment). After close() begins, returns Rejected without
  /// enqueueing. Block-policy pushes also unblock with Rejected when the
  /// runtime closes under them.
  PushResult push(Index stream, const float* raw_sample, Index count);
  PushResult push(Index stream, const float* raw_sample, Index count, BackpressurePolicy policy);
  PushResult push(Index stream, const std::vector<float>& raw_sample);
  PushResult push(Index stream, const std::vector<float>& raw_sample, BackpressurePolicy policy);

  /// Moves out every score produced since the last call, merging the
  /// per-shard result queues (empty when a callback is registered).
  /// Per-stream order is emission order; cross-stream interleaving between
  /// shards is unspecified. Callable from any one consumer thread, during
  /// operation and after close().
  std::vector<StreamScore> drain_scores();

  /// Stops intake, waits for in-flight pushes, drains every ring to empty,
  /// scores the remainder, and joins all scoring threads. Idempotent. If a
  /// scoring thread died on an exception, the first close() rethrows it
  /// (the destructor swallows it instead).
  void close();

  bool started() const { return started_.load(std::memory_order_acquire); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Per-stream ingestion counters; valid any time.
  IngestStats stats(Index stream) const;
  /// Aggregate snapshot across every stream and shard; valid any time (see
  /// RuntimeStats for the exact memory-order contract).
  RuntimeStats stats() const;
  /// Scoring rounds (drain + engine step) across all shards.
  long rounds() const;
  /// Per-shard scorer counters (shard in [0, n_shards())).
  ShardStats shard_stats(Index shard) const;
  /// Latency telemetry across every active shard; valid any time (relaxed
  /// histogram snapshots — see obs::LogHistogram). Before start() the
  /// engine sections are empty.
  RuntimeTelemetry telemetry() const;

  /// Per-stream results by global stream id, forwarded to the owning
  /// shard's engine. Quiescent-only: callable before start() (empty-state
  /// defaults) or after close() — while scorers are running they would race
  /// with them, so they throw instead.
  bool in_alarm(Index stream) const;
  const std::vector<core::AnomalyEvent>& events(Index stream) const;
  Index samples_seen(Index stream) const;

  /// Shard `shard`'s engine, for quiescent inspection after start() (same
  /// caveat as above; streams appear under engine-local ids, with
  /// global_id() mapping back).
  const ScoringEngine& shard_engine(Index shard) const;
  /// The single engine of an unsharded (n_shards() == 1) runtime, for
  /// quiescent inspection after start(); throws on a sharded runtime.
  const ScoringEngine& engine() const;

  const AsyncRuntimeConfig& config() const { return config_; }

 private:
  /// Per-stream ingestion counters. The stream's ring itself lives in the
  /// owning Shard's arena-backed `rings` (built by start()); this struct is
  /// pure bookkeeping so registering 100k streams allocates no ring storage
  /// until the shard layout is final.
  struct StreamIngest {
    std::atomic<long> pushed{0};
    std::atomic<long> dropped{0};
    std::atomic<long> rejected{0};
    /// Pushes currently inside this stream's intake gate (see below).
    std::atomic<int> active_pushers{0};
  };

  /// Everything one scorer thread owns. Rings, engine, result queue, and
  /// nap state are all per shard, so shards share no mutable state on the
  /// hot path (except the detector in the non-replicable fallback).
  struct Shard {
    /// Counters of the streams this shard owns, in local-index order. Deque:
    /// StreamIngest holds atomics (immovable) and producers keep references
    /// across add_stream() calls made before start().
    std::deque<StreamIngest> ingest;
    /// Backing slabs for this shard's rings: one slot-sequence array and one
    /// float array for ALL owned streams, instead of two heap blocks per
    /// stream — the allocation layout that makes 100k+ streams per host
    /// cheap. Built by start(), before intake opens.
    std::unique_ptr<RingArena> arena;
    /// Arena-backed rings in local-index order (deque: SampleRing is
    /// immovable). Only touched after start() published `started_`.
    std::deque<SampleRing> rings;
    /// This shard's detector replica; null for shard 0 (which scores
    /// through the borrowed detector) and in the shared-detector fallback.
    std::unique_ptr<core::AnomalyDetector> replica;
    /// This shard's engine over its subset view of the streams; built by
    /// start().
    std::unique_ptr<ScoringEngine> engine;
    std::thread scorer;
    /// Published by the scoring thread at loop entry; close()'s self-join
    /// guard compares against this instead of touching `scorer` (which the
    /// first closer may concurrently join()).
    std::atomic<std::thread::id> tid{};
    /// Per-shard nap handshake (see scorer loop): producers that observe
    /// asleep notify under wake_mu, so an idle shard sleeps independently
    /// of the others and a hot shard never wakes an idle one.
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    std::atomic<bool> asleep{false};
    std::atomic<long> rounds{0};
    std::atomic<long> naps{0};
    /// StreamScores emitted by this shard (result queue or callback).
    std::atomic<long> scored{0};
    /// Scorer-loop latency histograms (recorded by the shard's scorer only;
    /// snapshotted by telemetry() from any thread).
    obs::LogHistogram round_hist;
    obs::LogHistogram drain_hist;
    obs::LogHistogram emit_hist;
    obs::LogHistogram wake_hist;
    /// Per-shard result queue; drain_scores() merges across shards.
    std::mutex results_mu;
    std::vector<StreamScore> results;
    /// First exception thrown on this shard's scoring thread (it shuts
    /// intake and exits); written before the thread ends, read after join.
    std::exception_ptr error;
  };

  void shard_loop(Shard& shard);
  void shard_loop_impl(Shard& shard);
  /// Pops samples from the shard's `local` ring straight into its engine
  /// (zero-copy: SampleRing::try_pop_with hands the engine the in-ring
  /// slot) — one ring's worth when `bounded` (round-robin fairness), until
  /// empty otherwise (final drain); returns the number drained.
  long drain_ring(Shard& shard, Index local, bool bounded);
  void emit(Shard& shard, std::vector<StreamScore> scores);
  void wake_shard(Shard& shard);
  void require_quiescent(const char* what) const;
  void require_started_shards(const char* what) const;
  StreamIngest& ingest_at(Index stream);
  const StreamIngest& ingest_at(Index stream) const;
  Shard& shard_at(Index shard);
  const Shard& shard_at(Index shard) const;

  core::AnomalyDetector* detector_;
  const data::MinMaxNormalizer* normalizer_;
  AsyncRuntimeConfig config_;
  ShardPartition partition_;
  Index n_streams_ = 0;
  /// Deque: Shard is immovable (atomics, mutexes); sized n_shards() at
  /// construction, only the first n_active_shards() ever own anything.
  std::deque<Shard> shards_;
  /// Serialises engine calls across shards when the detector is not
  /// replicable (clone_fitted() returned null) and they all share the
  /// borrowed instance. Unused — never locked — when replicas exist or
  /// only one shard is active.
  std::mutex shared_detector_mu_;
  bool share_detector_ = false;

  float threshold_ = 0.0F;
  bool calibrated_ = false;

  /// Atomic like every other lifecycle flag: push()/started() may be called
  /// from threads that exist across the start() boundary. start() stores it
  /// after accepting_, so a push that observes started_ also sees an open
  /// intake.
  std::atomic<bool> started_{false};
  std::atomic<bool> closing_{false};
  std::atomic<bool> closed_{false};
  /// Intake gate: push() increments its stream's active_pushers and checks
  /// accepting_ before touching the ring; close() clears accepting_ and
  /// waits for every stream's active_pushers to reach zero before telling
  /// the scorers to finish, so every accepted sample is visible to the final
  /// drains. The counter lives per stream so producers on disjoint streams
  /// never write a shared cache line, and the gate accesses on both sides
  /// are seq_cst: with acquire/release alone, the store-buffering outcome
  /// (close() reads a zero counter while a straggler push still reads
  /// accepting_ == true) would let an Ok push land after the final drain.
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_{false};

  /// Serialises on_score callback invocations across shards (taken per
  /// emitted batch, not per score; uncontended when one shard is active).
  std::mutex callback_mu_;
  std::function<void(const StreamScore&)> callback_;
};

}  // namespace varade::serve
