// Async scoring runtime: a self-driving frontend over the ScoringEngine.
//
// The synchronous ScoringEngine contract requires push() and step() to be
// externally serialised, so producers and the scorer cannot overlap. The
// AsyncScoringRuntime removes that cap: each stream gets a bounded lock-free
// SampleRing (ingest.hpp), producers push raw samples from arbitrary threads
// with a per-call backpressure policy, and one background scoring thread
// drains the rings round-robin into the engine's push()/step() loop. Scores
// flow out either through a polling drain_scores() result queue or a user
// callback (invoked on the scoring thread).
//
// Determinism: the scoring thread is the only thread that touches the engine,
// and each ring preserves its producers' push order. With one producer per
// stream (the serving contract), every stream's samples therefore reach the
// engine in exactly the order they were pushed, and the engine's own parity
// guarantee (score_batch == score_step, bit for bit) does the rest: scores
// and alarm events are bit-identical to a synchronous ScoringEngine — or one
// OnlineMonitor per stream — fed the same samples, regardless of producer
// timing, ring capacity, or how the scorer's rounds happen to batch.
//
// Lifecycle: add_streams() / calibrate() / on_score() before start();
// push() + drain_scores() while running; close() stops intake (in-flight
// pushes still land), drains every ring to empty, joins the scoring thread,
// and is idempotent. Every push that returned Ok or DroppedOldest is
// guaranteed scored by the time close() returns — unless the scoring thread
// itself died on an exception, in which case still-buffered samples are
// abandoned and the first close() rethrows the failure.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "varade/serve/ingest.hpp"
#include "varade/serve/scoring_engine.hpp"

namespace varade::serve {

struct AsyncRuntimeConfig {
  /// Configuration of the inner ScoringEngine the runtime owns and drives.
  ScoringEngineConfig engine;
  /// Per-stream ring capacity in samples; rounded up to a power of two.
  Index ring_capacity = 1024;
  /// Policy applied by the two-argument push(); per-call overload overrides.
  BackpressurePolicy backpressure = BackpressurePolicy::Block;
  /// Empty polling rounds before the scoring thread naps between wakeups.
  int idle_spin_rounds = 64;
};

/// Per-stream ingestion counters (monotonic; sampled while running they are
/// a consistent snapshot per counter, not across counters).
struct IngestStats {
  long pushed = 0;    ///< samples accepted into the ring (Ok + DroppedOldest)
  long dropped = 0;   ///< older samples evicted by DropOldest pushes
  long rejected = 0;  ///< pushes refused (Reject on full, or runtime closed)
};

class AsyncScoringRuntime {
 public:
  /// Same borrow contract as ScoringEngine: detector fitted, normalizer
  /// fitted, both outlive the runtime.
  AsyncScoringRuntime(core::AnomalyDetector& detector, const data::MinMaxNormalizer& normalizer,
                      AsyncRuntimeConfig config = {});
  ~AsyncScoringRuntime();  // close()s if still running

  AsyncScoringRuntime(const AsyncScoringRuntime&) = delete;
  AsyncScoringRuntime& operator=(const AsyncScoringRuntime&) = delete;

  /// Stream registration; only before start().
  Index add_stream();
  Index add_streams(Index n);
  Index n_streams() const { return engine_.n_streams(); }

  /// Threshold setup (forwarded to the engine); only before start().
  void calibrate(const data::MultivariateSeries& train);
  void set_threshold(float threshold);
  float threshold() const { return engine_.threshold(); }

  /// Registers a callback invoked on the scoring thread for every score, in
  /// the engine's emission order. When set, scores are NOT queued for
  /// drain_scores(). Only before start().
  void on_score(std::function<void(const StreamScore&)> callback);

  /// Launches the background scoring thread. Requires >= 1 stream and a
  /// calibrated threshold.
  void start();

  /// Enqueues one raw sample for `stream` under the config's (or the given)
  /// backpressure policy. Thread-safe against any other push and the scorer;
  /// one producer per stream keeps that stream's order (see header comment).
  /// After close() begins, returns Rejected without enqueueing. Block-policy
  /// pushes also unblock with Rejected when the runtime closes under them.
  PushResult push(Index stream, const float* raw_sample);
  PushResult push(Index stream, const float* raw_sample, BackpressurePolicy policy);
  PushResult push(Index stream, const std::vector<float>& raw_sample);
  PushResult push(Index stream, const std::vector<float>& raw_sample, BackpressurePolicy policy);

  /// Moves out every score produced since the last call (empty when a
  /// callback is registered). Callable from any one consumer thread, during
  /// operation and after close().
  std::vector<StreamScore> drain_scores();

  /// Stops intake, waits for in-flight pushes, drains every ring to empty,
  /// scores the remainder, and joins the scoring thread. Idempotent. If the
  /// scoring thread died on an exception, the first close() rethrows it
  /// (the destructor swallows it instead).
  void close();

  bool started() const { return started_.load(std::memory_order_acquire); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Per-stream ingestion counters; valid any time.
  IngestStats stats(Index stream) const;
  /// Scoring rounds (drain + engine step) the background thread has run.
  long rounds() const { return rounds_.load(std::memory_order_relaxed); }

  /// Per-stream results, forwarded to the engine. Quiescent-only: callable
  /// before start() or after close() — while the scorer is running they
  /// would race with it, so they throw instead.
  bool in_alarm(Index stream) const;
  const std::vector<core::AnomalyEvent>& events(Index stream) const;
  Index samples_seen(Index stream) const;

  /// The owned engine, for quiescent inspection (same caveat as above).
  const ScoringEngine& engine() const;

  const AsyncRuntimeConfig& config() const { return config_; }

 private:
  struct StreamIngest {
    explicit StreamIngest(Index channels, Index capacity) : ring(channels, capacity) {}
    SampleRing ring;
    std::atomic<long> pushed{0};
    std::atomic<long> dropped{0};
    std::atomic<long> rejected{0};
    /// Pushes currently inside this stream's intake gate (see below).
    std::atomic<int> active_pushers{0};
  };

  void scorer_loop();
  void scorer_loop_impl();
  /// Pops samples from `stream`'s ring into the engine via `sample` as
  /// staging — one ring's worth when `bounded` (round-robin fairness),
  /// until empty otherwise (final drain); returns the number drained.
  long drain_ring(Index stream, float* sample, bool bounded);
  void emit(std::vector<StreamScore> scores);
  void wake_scorer();
  void require_quiescent(const char* what) const;
  StreamIngest& ingest_at(Index stream);
  const StreamIngest& ingest_at(Index stream) const;

  ScoringEngine engine_;
  AsyncRuntimeConfig config_;
  /// Deque: StreamIngest holds atomics (immovable) and producers keep
  /// references across add_stream() calls made before start().
  std::deque<StreamIngest> streams_;

  std::thread scorer_;
  /// Published by the scoring thread at loop entry; close()'s self-join
  /// guard compares against this instead of touching scorer_ (which the
  /// first closer may concurrently join()).
  std::atomic<std::thread::id> scorer_tid_{};
  /// Atomic like every other lifecycle flag: push()/started() may be called
  /// from threads that exist across the start() boundary. start() stores it
  /// after accepting_, so a push that observes started_ also sees an open
  /// intake.
  std::atomic<bool> started_{false};
  std::atomic<bool> closing_{false};
  std::atomic<bool> closed_{false};
  /// Intake gate: push() increments its stream's active_pushers and checks
  /// accepting_ before touching the ring; close() clears accepting_ and
  /// waits for every stream's active_pushers to reach zero before telling
  /// the scorer to finish, so every accepted sample is visible to the final
  /// drain. The counter lives per stream so producers on disjoint streams
  /// never write a shared cache line, and the gate accesses on both sides
  /// are seq_cst: with acquire/release alone, the store-buffering outcome
  /// (close() reads a zero counter while a straggler push still reads
  /// accepting_ == true) would let an Ok push land after the final drain.
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_{false};

  /// Scorer nap handshake: the scorer sets asleep_ under wake_mu_ after
  /// re-checking the rings; producers that observe asleep_ notify under the
  /// same mutex, so a wakeup between the re-check and the wait cannot be
  /// lost (the nap also has a timeout as a belt-and-braces bound).
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> asleep_{false};

  std::mutex results_mu_;
  std::vector<StreamScore> results_;
  std::function<void(const StreamScore&)> callback_;
  std::atomic<long> rounds_{0};
  /// First exception thrown on the scoring thread (it shuts intake and
  /// exits); written before the thread ends, read after join().
  std::exception_ptr scorer_error_;
};

}  // namespace varade::serve
