// Minimal persistent worker pool for the serving layer.
//
// One pool instance owns size()-1 background threads; the caller participates
// in every parallel_for as worker 0, so a pool of size 1 runs everything
// inline with zero synchronisation. Tasks are claimed dynamically from a
// per-job atomic counter, and each task callback receives its worker index so
// callers can keep per-worker scratch state (e.g. model replicas) without
// locking. Job bookkeeping lives in a shared_ptr per submission: a worker
// that wakes late (or lingers past the barrier) holds the old job whose
// counter is already exhausted, so it can never touch a newer job's tasks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "varade/tensor/tensor.hpp"

namespace varade::serve {

/// Escalating wait for lock-free retry loops (blocked producers, the async
/// runtime's idle scorer): a few CPU pauses, then sched yields, then short
/// sleeps — so a spinning thread cannot starve the thread it is waiting on
/// even on a single-core host.
class Backoff {
 public:
  /// Waits a little; each consecutive call without reset() waits harder.
  void wait();
  void reset() { spins_ = 0; }

 private:
  int spins_ = 0;
};

class ThreadPool {
 public:
  /// n_threads <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(task, worker) for every task in [0, n); blocks until all tasks
  /// finish. Worker indices are in [0, size()); the caller is worker 0. The
  /// first exception thrown by a task is rethrown here after the barrier.
  void parallel_for(Index n, const std::function<void(Index, int)>& fn);

 private:
  struct Job {
    const std::function<void(Index, int)>* fn = nullptr;
    Index size = 0;
    std::atomic<Index> next{0};
    std::atomic<Index> remaining{0};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  void worker_loop(int worker);
  void run_tasks(Job& job, int worker);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::shared_ptr<Job> job_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace varade::serve
