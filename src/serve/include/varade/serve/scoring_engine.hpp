// Multi-stream batched scoring engine: the serving layer of the reproduction.
//
// Turns the per-sample OnlineMonitor loop into a throughput-oriented
// frontend: N independent streams — each with its own normalizing ring
// buffer, warm-up state, and debounce/hold-off alarm state machine — are
// multiplexed onto one fitted AnomalyDetector. step() drains buffered
// samples round by round (one sample per stream per round): worker threads
// normalise samples and assemble ready contexts into [B, C, T] / [B, C]
// batches, the batches run through the detector's score_batch contract
// (optionally sharded across per-worker clone_fitted() replicas), and the
// per-stream alarm logic is applied.
//
// Per-stream state is structure-of-arrays, sized for fleets: context rings
// live in one contiguous [n_streams, C, T] float slab (ring-indexed per
// stream), raw pushed samples are staged in one append-only arena, and all
// bookkeeping (ring positions, warm-up counts, scores) is flat parallel
// arrays. Pushing a sample and scoring a round allocate nothing per stream,
// step()'s gather memcpys from contiguous slab rows, and normalisation runs
// vectorised over stream-major blocks — the layout that keeps 100k–1M
// streams memory- and cache-viable on one host.
//
// The engine is generic over core::AnomalyDetector: any of the paper's six
// detectors plugs in unchanged. Detectors whose clone_fitted() returns null
// are served unsharded through the single borrowed instance.
//
// Determinism: score_batch is bit-identical to score_step by the detector
// contract, per-stream state is only ever touched by the one task that owns
// the stream in a given phase, the slab normalisation applies the exact
// per-element expression of transform_sample, and replicas carry identical
// state — so scores and alarm events are bit-for-bit identical to running
// one OnlineMonitor per stream sequentially, at any thread count or batch
// size.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "varade/core/detector.hpp"
#include "varade/core/monitor.hpp"
#include "varade/obs/telemetry.hpp"
#include "varade/serve/thread_pool.hpp"

namespace varade::serve {

/// The five phases of one step() round, in execution order. Indexes into
/// EngineTelemetry::phases and the phase labels of every exposition.
inline constexpr int kStepPhases = 5;
inline constexpr const char* kStepPhaseName[kStepPhases] = {
    "stage", "normalize", "gather", "score", "alarm"};

/// Telemetry snapshot of one engine (merge shard snapshots for fleet-wide
/// views). All durations are nanoseconds.
struct EngineTelemetry {
  /// Per-round duration of each step() phase (gather/score only recorded on
  /// rounds with warm streams).
  obs::HistogramSnapshot phases[kStepPhases];
  /// Whole step() call duration (calls that had buffered work only).
  obs::HistogramSnapshot step;
  /// Sampled push->score end-to-end latency: enqueue timestamps carried
  /// through the pending arena to the round that consumed them.
  obs::HistogramSnapshot push_to_score;

  void merge(const EngineTelemetry& other);
};

namespace detail {
/// The one wording for stream-id range errors, shared by every serve
/// frontend (ScoringEngine, AsyncScoringRuntime) so callers can match on it.
std::string stream_range_message(Index id, Index n_streams);
/// The one wording for per-sample channel-count errors, shared by the
/// raw-pointer push paths of ScoringEngine and AsyncScoringRuntime.
std::string channel_mismatch_message(Index expected, Index got);
}  // namespace detail

struct ScoringEngineConfig {
  /// Worker threads for normalisation / context assembly / alarm updates and
  /// (with shard_forward) batched-forward shards. 0 = hardware concurrency.
  int n_threads = 1;
  /// Maximum contexts per score_batch call.
  Index max_batch = 32;
  /// Shard each round's batch across per-worker detector replicas (identical
  /// state, so results are unchanged). Only takes effect with n_threads > 1
  /// and a detector whose clone_fitted() is supported.
  bool shard_forward = true;
  /// Intra-batch scoring threads applied to the detector (and every replica)
  /// via AnomalyDetector::set_scoring_threads: each score_batch call splits
  /// its B axis across this many workers, bit-identically at any value.
  /// 1 = sequential (default), 0 = hardware concurrency. Orthogonal to
  /// shard_forward, which parallelises across chunks rather than within one.
  int scoring_threads = 1;
  /// Alarm behaviour shared by every stream.
  core::MonitorConfig monitor;
};

/// Score of one (stream, sample) pair produced by step(). `stream` is the
/// stream's *global* id: identical to the engine-local id for streams
/// registered via add_stream(), or the caller-chosen label for streams
/// registered via the subset-view add_stream(global_id) overload — so a
/// shard-local engine serving a slice of a larger stream space reports
/// scores under the ids its owner knows.
struct StreamScore {
  Index stream = 0;
  Index sample = 0;     // 0-based position within the stream
  float score = -1.0F;  // negative while the stream's ring is warming up
};

class ScoringEngine {
 public:
  /// The detector must already be fitted and the normalizer must carry the
  /// training statistics; both are borrowed and must outlive the engine.
  /// Works with any AnomalyDetector (VARADE or any baseline).
  ScoringEngine(core::AnomalyDetector& detector, const data::MinMaxNormalizer& normalizer,
                ScoringEngineConfig config = {});

  /// Registers a new independent stream; returns its id (dense, from 0).
  /// The global id reported in StreamScore equals the local id.
  Index add_stream();
  /// Subset-view registration: the stream is engine-local (dense local id
  /// returned, used by push()/events()/...), but StreamScore::stream carries
  /// `global_id` — so a sharded frontend can run one engine per disjoint
  /// slice of a larger stream space and merge the scores without remapping.
  /// Throws on negative or already-registered global ids (either would emit
  /// misattributed StreamScores through a subset view).
  Index add_stream(Index global_id);
  Index add_streams(Index n);
  Index n_streams() const { return static_cast<Index>(global_ids_.size()); }
  /// Global id of a local stream (== the local id unless the subset-view
  /// overload chose otherwise).
  Index global_id(Index stream) const;
  /// Channels per sample, as fixed by the normalizer (runtime wiring: the
  /// AsyncScoringRuntime sizes its ingestion rings off this).
  Index n_channels() const;

  /// Calibrates the shared alarm threshold on a normalised training series
  /// (same quantile rule as OnlineMonitor::calibrate). Also refreshes the
  /// scoring replicas from the detector's current state, so a detector
  /// refitted after engine construction takes effect here.
  void calibrate(const data::MultivariateSeries& train);
  void set_threshold(float threshold);
  float threshold() const { return threshold_; }
  bool calibrated() const { return calibrated_; }

  /// Buffers one raw (unnormalised) sample for a stream; scored at the next
  /// step(). `count` is the number of floats at `raw_sample` and must equal
  /// n_channels() — the explicit length contract that lets the engine
  /// validate raw-pointer pushes the way the vector overload always could.
  void push(Index stream, const float* raw_sample, Index count);
  /// Telemetry-carrying overload: `enqueue_ns` is an obs::tick() timestamp
  /// taken when the sample entered the serving system (0 = unsampled). The
  /// next step() that scores the sample records now - enqueue_ns into the
  /// push_to_score histogram. With telemetry compiled off the timestamp is
  /// dropped at the door.
  void push(Index stream, const float* raw_sample, Index count, std::int64_t enqueue_ns);
  void push(Index stream, const std::vector<float>& raw_sample);

  /// Drains every buffered sample; returns scores ordered chronologically
  /// per stream (round by round, stream id ascending within a round).
  std::vector<StreamScore> step();

  bool in_alarm(Index stream) const;
  /// Reference stays valid across add_stream()/push()/step() (alarm trackers
  /// live in a deque); it is appended to by subsequent step() calls.
  const std::vector<core::AnomalyEvent>& events(Index stream) const;
  Index samples_seen(Index stream) const;

  /// Batched score_batch calls issued so far (throughput accounting).
  long forward_calls() const { return forward_calls_; }
  /// Workers in the pool (including the calling thread).
  int n_threads() const { return pool_.size(); }
  /// Per-worker detector replicas in use (0 = unsharded scoring).
  Index n_replicas() const { return static_cast<Index>(replicas_.size()); }
  const ScoringEngineConfig& config() const { return config_; }

  /// Snapshot of this engine's phase/step/push-to-score histograms. Safe to
  /// call from another thread while step() runs (relaxed-load snapshot; see
  /// obs::LogHistogram for the exact staleness contract). All-zero when
  /// telemetry is compiled off.
  EngineTelemetry telemetry() const;

 private:
  /// Throws the standard range error unless `id` names a registered stream.
  /// Branch-before-message: push() runs through here once per sample and
  /// must not allocate on success.
  void require_stream(Index id) const;
  /// Re-clones the detector into one replica per extra worker (no-op when
  /// sharding is off or the detector is not replicable).
  void rebuild_replicas();
  /// Scores the per-chunk batches (chunk ci holds the contexts/observations
  /// of streams ready[ci*max_batch ...]) and writes each row's score into
  /// score_[stream].
  void score_chunks(const std::vector<Tensor>& contexts, const std::vector<Tensor>& observed,
                    const std::vector<Index>& ready);

  core::AnomalyDetector* detector_;
  const data::MinMaxNormalizer* normalizer_;
  ScoringEngineConfig config_;
  ThreadPool pool_;
  /// Detector replicas for workers 1..n-1 (worker 0 uses the borrowed
  /// detector). Empty when scoring is unsharded.
  std::vector<std::unique_ptr<core::AnomalyDetector>> replicas_;

  float threshold_ = 0.0F;
  bool calibrated_ = false;
  std::atomic<long> forward_calls_{0};

  Index window_ = 0;    // detector context window, fixed at construction
  Index channels_ = 0;  // normalizer channel count, fixed at construction

  // --- Structure-of-arrays per-stream state (indexed by local stream id) ---
  // Context rings: one [C, T] row per stream in a single contiguous slab.
  // ring_start_ is the time index of the oldest sample (always 0 while the
  // ring is filling); ring_fill_ counts stored samples (== window_ once warm).
  std::vector<float> ctx_slab_;  // [n_streams, C, T]
  std::vector<Index> ring_start_;
  std::vector<Index> ring_fill_;
  std::vector<Index> samples_seen_;
  std::vector<Index> global_ids_;  // id reported in StreamScore
  std::vector<float> score_;       // this round's score per stream
  /// Deque, not vector: references handed out by events() must survive
  /// add_stream().
  std::deque<core::AlarmTracker> alarms_;
  Index max_global_id_ = -1;  // fast duplicate check for increasing ids

  // Pending raw samples: one append-only float arena shared by all streams
  // (no per-sample allocation), plus per-stream offset queues into it.
  // pending_head_[s] is the next unconsumed entry of pending_[s]; both reset
  // at the end of every step().
  std::vector<float> pending_arena_;        // count * channels_ floats
  std::vector<std::vector<Index>> pending_;  // per-stream sample offsets
  std::vector<Index> pending_head_;
  // Enqueue timestamps parallel to the arena, one per staged sample (0 =
  // unsampled). Never touched when telemetry is compiled off.
  std::vector<std::int64_t> pending_ts_;

  // Telemetry: recorded by step()/push consumers, snapshotted by
  // telemetry(). Cache-line aligned instances, relaxed hot path.
  obs::LogHistogram phase_hist_[kStepPhases];
  obs::LogHistogram step_hist_;
  obs::LogHistogram push_to_score_hist_;
  std::vector<std::int64_t> round_ts_;  // per-active-stream enqueue ts scratch

  // Round-scratch slabs reused across step() rounds (sized to the round's
  // active streams; capacity retained).
  std::vector<float> round_raw_;           // [n_active, C] raw samples
  std::vector<float> round_norm_;          // [n_active, C] normalised samples
  std::vector<std::uint8_t> round_ready_;  // per active stream: ring was full
  std::vector<Index> active_;
  std::vector<Index> next_active_;
  std::vector<Index> ready_;
  std::vector<Index> ready_pos_;  // index into the round slabs per ready row
};

}  // namespace varade::serve
