// Checked 64-bit size arithmetic for fleet-scale serving structures.
//
// At 100k-1M streams the products that size slabs, rings, and score chunks
// (n_streams * channels * window, chunk_index * max_batch, n_rings *
// capacity) leave the range where "it obviously fits" holds, and a silent
// wrap would corrupt state instead of failing. Every such product in the
// serving layer goes through these helpers: the multiply/add is performed
// with overflow detection and throws a varade::Error naming the quantity,
// so a sweep that exceeds the representable range dies loudly at sizing
// time rather than scribbling at runtime.
#pragma once

#include <cstdint>

#include "varade/tensor/tensor.hpp"

namespace varade::serve::detail {

/// a * b as Index, or throws "<what> overflows Index". Also rejects negative
/// operands: every sized quantity in the serving layer is a count.
Index checked_mul(Index a, Index b, const char* what);

/// a + b as Index, or throws "<what> overflows Index". Rejects negatives.
Index checked_add(Index a, Index b, const char* what);

}  // namespace varade::serve::detail
