// Lock-free bounded sample rings: the ingestion side of the async serving
// runtime.
//
// Each stream owns one SampleRing — a bounded, power-of-two-capacity ring of
// fixed-width float samples with cache-line-padded head/tail positions. The
// slot-sequence protocol (Vyukov bounded queue) makes push and pop both
// CAS-claimed and wait-free of each other, so:
//   - a producer thread can push while the scoring thread pops (the SPSC
//     serving contract: one producer per stream preserves that producer's
//     order exactly, which is what the runtime's determinism guarantee is
//     built on);
//   - several producers may share a stream without corruption (their relative
//     interleaving is then scheduler-defined, as for any concurrent stream);
//   - the DropOldest backpressure policy can evict from the producer side
//     (a second concurrent popper) without a lock.
//
// No mutex is taken anywhere in this header; full/empty are communicated by
// try_push/try_pop return values and mapped to a BackpressurePolicy by the
// AsyncScoringRuntime.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "varade/tensor/tensor.hpp"

namespace varade::serve {

/// What AsyncScoringRuntime::push does when the stream's ring is full.
enum class BackpressurePolicy {
  Block,       ///< wait (escalating backoff) until the scorer frees a slot
  DropOldest,  ///< evict the oldest buffered sample to make room
  Reject,      ///< give up immediately; the sample is not enqueued
};

/// Outcome of one AsyncScoringRuntime::push call.
enum class PushResult {
  Ok,             ///< enqueued
  DroppedOldest,  ///< enqueued after evicting at least one older sample
  Rejected,       ///< NOT enqueued (full under Reject, or the runtime closed)
};

const char* to_string(BackpressurePolicy policy);
const char* to_string(PushResult result);

/// Bounded lock-free ring of fixed-width float samples.
class SampleRing {
 public:
  /// `channels` floats per sample; `min_capacity` samples, rounded up to the
  /// next power of two (capacity() reports the actual value).
  SampleRing(Index channels, Index min_capacity);

  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  Index channels() const { return channels_; }
  Index capacity() const { return static_cast<Index>(mask_ + 1); }

  /// Copies `channels()` floats into the ring. Returns false when full.
  /// Safe to call concurrently with try_pop and with other try_push callers.
  bool try_push(const float* sample);

  /// Copies the oldest sample into `out` (`channels()` floats). Returns false
  /// when empty. Safe to call concurrently with try_push and other poppers.
  bool try_pop(float* out);

  /// Zero-copy pop: claims the oldest sample and invokes
  /// `sink(const float* slot)` on its in-ring data before the slot is
  /// recycled, so a consumer can move the sample straight into its own
  /// structures without an intermediate staging buffer. The pointer is only
  /// valid inside the call. Returns false when empty. Same concurrency
  /// guarantees as try_pop; the slot is recycled even if `sink` throws (the
  /// sample is then lost, but the ring stays usable).
  template <typename Sink>
  bool try_pop_with(Sink&& sink) {
    std::uint64_t pos = 0;
    if (!claim_pop(pos)) return false;
    const float* src = data_.data() + (pos & mask_) * static_cast<std::uint64_t>(channels_);
    struct Recycle {
      SampleRing* ring;
      std::uint64_t pos;
      ~Recycle() { ring->slots_[pos & ring->mask_].seq.store(pos + ring->mask_ + 1,
                                                             std::memory_order_release); }
    } recycle{this, pos};
    sink(static_cast<const float*>(src));
    return true;
  }

  /// Discards the oldest sample. Returns false when empty.
  bool try_pop_discard();

  /// Snapshot of the number of buffered samples; exact only while quiescent.
  Index size_approx() const;

  bool empty_approx() const { return size_approx() == 0; }

 private:
  // One sequence ticket per slot. seq == pos     : slot free, push may claim.
  //                               seq == pos + 1 : slot full, pop may claim.
  // Push publishes data with a release store of pos + 1; pop recycles the
  // slot for the next lap with pos + capacity.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
  };
  static constexpr std::size_t kCacheLine = 64;

  bool claim_pop(std::uint64_t& pos_out);

  Index channels_ = 0;
  std::uint64_t mask_ = 0;
  std::vector<Slot> slots_;
  std::vector<float> data_;  // capacity * channels floats, slot-major

  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // next push position
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // next pop position
};

}  // namespace varade::serve
