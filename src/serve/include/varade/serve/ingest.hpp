// Lock-free bounded sample rings: the ingestion side of the async serving
// runtime.
//
// Each stream owns one SampleRing — a bounded, power-of-two-capacity ring of
// fixed-width float samples with cache-line-padded head/tail positions. The
// slot-sequence protocol (Vyukov bounded queue) makes push and pop both
// CAS-claimed and wait-free of each other, so:
//   - a producer thread can push while the scoring thread pops (the SPSC
//     serving contract: one producer per stream preserves that producer's
//     order exactly, which is what the runtime's determinism guarantee is
//     built on);
//   - several producers may share a stream without corruption (their relative
//     interleaving is then scheduler-defined, as for any concurrent stream);
//   - the DropOldest backpressure policy can evict from the producer side
//     (a second concurrent popper) without a lock.
//
// No mutex is taken anywhere in this header; full/empty are communicated by
// try_push/try_pop return values and mapped to a BackpressurePolicy by the
// AsyncScoringRuntime.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "varade/obs/telemetry.hpp"
#include "varade/tensor/tensor.hpp"

namespace varade::serve {

/// What AsyncScoringRuntime::push does when the stream's ring is full.
enum class BackpressurePolicy {
  Block,       ///< wait (escalating backoff) until the scorer frees a slot
  DropOldest,  ///< evict the oldest buffered sample to make room
  Reject,      ///< give up immediately; the sample is not enqueued
};

/// Outcome of one AsyncScoringRuntime::push call.
enum class PushResult {
  Ok,             ///< enqueued
  DroppedOldest,  ///< enqueued after evicting at least one older sample
  Rejected,       ///< NOT enqueued (full under Reject, or the runtime closed)
};

const char* to_string(BackpressurePolicy policy);
const char* to_string(PushResult result);

/// Bounded lock-free ring of fixed-width float samples. Storage is either
/// owned (the two-argument constructor) or borrowed from a RingArena slab
/// (the four-argument constructor) — the protocol is identical; arena-backed
/// rings exist so 100k+ streams cost two large allocations per shard instead
/// of two small ones per stream.
class SampleRing {
 public:
  /// `channels` floats per sample; `min_capacity` samples, rounded up to the
  /// next power of two (capacity() reports the actual value). Owns storage.
  SampleRing(Index channels, Index min_capacity);

  /// Arena-backed ring over caller-owned storage: `slots` must hold
  /// `capacity_pow2` sequence slots and `data` `capacity_pow2 * channels`
  /// floats, both outliving the ring (the RingArena contract). `capacity_pow2`
  /// must already be a power of two. Slot sequences are (re)initialised here.
  /// `ts` is the optional telemetry timestamp lane (`capacity_pow2` entries,
  /// same lifetime); rings without one carry 0 timestamps.
  SampleRing(Index channels, Index capacity_pow2, std::atomic<std::uint64_t>* slots, float* data,
             std::int64_t* ts = nullptr);

  /// The capacity the two-argument constructor would pick for `min_capacity`
  /// — exposed so a RingArena can size its slabs before building rings.
  static Index round_up_capacity(Index min_capacity);

  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  Index channels() const { return channels_; }
  Index capacity() const { return static_cast<Index>(mask_ + 1); }

  /// Copies `channels()` floats into the ring. Returns false when full.
  /// Safe to call concurrently with try_pop and with other try_push callers.
  bool try_push(const float* sample) { return try_push(sample, 0); }

  /// try_push carrying a telemetry timestamp (an obs::tick() value, 0 =
  /// unsampled) through the ring's timestamp lane alongside the sample data.
  /// The consumer receives it in try_pop_with's sink. Dropped when the ring
  /// has no lane (telemetry compiled off, or lane-less arena storage).
  bool try_push(const float* sample, std::int64_t enqueue_ns);

  /// Copies the oldest sample into `out` (`channels()` floats). Returns false
  /// when empty. Safe to call concurrently with try_push and other poppers.
  bool try_pop(float* out);

  /// Zero-copy pop: claims the oldest sample and invokes
  /// `sink(const float* slot, std::int64_t enqueue_ns)` on its in-ring data
  /// before the slot is recycled, so a consumer can move the sample straight
  /// into its own structures without an intermediate staging buffer. The
  /// pointer is only valid inside the call; `enqueue_ns` is the telemetry
  /// timestamp the producer pushed with (0 when unsampled or the ring has no
  /// lane). Returns false when empty. Same concurrency guarantees as
  /// try_pop; the slot is recycled even if `sink` throws (the sample is then
  /// lost, but the ring stays usable).
  template <typename Sink>
  bool try_pop_with(Sink&& sink) {
    std::uint64_t pos = 0;
    if (!claim_pop(pos)) return false;
    const float* src = data_ + (pos & mask_) * static_cast<std::uint64_t>(channels_);
    std::int64_t enqueue_ns = 0;
    if constexpr (obs::kEnabled) {
      if (ts_ != nullptr) enqueue_ns = ts_[pos & mask_];
    }
    struct Recycle {
      SampleRing* ring;
      std::uint64_t pos;
      ~Recycle() { ring->slots_[pos & ring->mask_].store(pos + ring->mask_ + 1,
                                                         std::memory_order_release); }
    } recycle{this, pos};
    sink(static_cast<const float*>(src), enqueue_ns);
    return true;
  }

  /// Discards the oldest sample. Returns false when empty.
  bool try_pop_discard();

  /// Snapshot of the number of buffered samples; exact only while quiescent.
  Index size_approx() const;

  bool empty_approx() const { return size_approx() == 0; }

 private:
  // One sequence ticket per slot. seq == pos     : slot free, push may claim.
  //                               seq == pos + 1 : slot full, pop may claim.
  // Push publishes data with a release store of pos + 1; pop recycles the
  // slot for the next lap with pos + capacity.
  static constexpr std::size_t kCacheLine = 64;

  bool claim_pop(std::uint64_t& pos_out);
  void init_slots();

  Index channels_ = 0;
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t>* slots_ = nullptr;  // capacity sequence tickets
  float* data_ = nullptr;                        // capacity * channels floats, slot-major
  // Telemetry timestamp lane, one std::int64_t per slot. Plain (non-atomic)
  // stores are safe under the slot-sequence protocol: the lane entry is
  // written between the tail CAS claiming the slot and the release store
  // publishing it, exactly like the sample data, so the consumer's acquire
  // load of the sequence orders the read. nullptr when telemetry is
  // compiled off or the storage provider carved no lane.
  std::int64_t* ts_ = nullptr;

  // Set only by the owning constructor; arena-backed rings leave these empty.
  std::unique_ptr<std::atomic<std::uint64_t>[]> owned_slots_;
  std::vector<float> owned_data_;
  std::vector<std::int64_t> owned_ts_;

  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // next push position
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // next pop position
};

/// Backing storage for a shard's worth of SampleRings: one slot-sequence slab
/// and one sample-data slab, carved into `n_rings` equal-capacity rings. All
/// sizing arithmetic is overflow-checked, so a fleet-scale configuration that
/// cannot fit in Index fails at construction instead of wrapping.
class RingArena {
 public:
  /// Storage for `n_rings` rings of `channels`-float samples, each with the
  /// capacity SampleRing would round `min_capacity` up to.
  RingArena(Index n_rings, Index channels, Index min_capacity);

  RingArena(const RingArena&) = delete;
  RingArena& operator=(const RingArena&) = delete;

  Index n_rings() const { return n_rings_; }
  Index channels() const { return channels_; }
  /// Per-ring capacity (already a power of two) — pass to the arena-backed
  /// SampleRing constructor together with slots(i)/data(i).
  Index capacity() const { return capacity_; }

  std::atomic<std::uint64_t>* slots(Index ring);
  float* data(Index ring);
  /// Telemetry timestamp lane for ring `ring` — nullptr when telemetry is
  /// compiled off (the arena then allocates no lane at all).
  std::int64_t* ts(Index ring);

 private:
  Index n_rings_ = 0;
  Index channels_ = 0;
  Index capacity_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::vector<float> data_;
  std::vector<std::int64_t> ts_;  // empty when telemetry is compiled off
};

}  // namespace varade::serve
