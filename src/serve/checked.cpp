#include "varade/serve/checked.hpp"

#include <string>

namespace varade::serve::detail {

namespace {

[[noreturn]] void overflow(const char* what) {
  throw Error(std::string(what) + " overflows Index");
}

}  // namespace

Index checked_mul(Index a, Index b, const char* what) {
  check(a >= 0 && b >= 0, "checked size arithmetic expects non-negative counts");
  Index out = 0;
  if (__builtin_mul_overflow(a, b, &out)) overflow(what);
  return out;
}

Index checked_add(Index a, Index b, const char* what) {
  check(a >= 0 && b >= 0, "checked size arithmetic expects non-negative counts");
  Index out = 0;
  if (__builtin_add_overflow(a, b, &out)) overflow(what);
  return out;
}

}  // namespace varade::serve::detail
