#include "varade/serve/thread_pool.hpp"

#include <chrono>

namespace varade::serve {

void Backoff::wait() {
  constexpr int kPauseRounds = 16;
  constexpr int kYieldRounds = 64;
  if (spins_ < kPauseRounds) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  } else if (spins_ < kYieldRounds) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ++spins_;
}

ThreadPool::ThreadPool(int n_threads) {
  if (n_threads <= 0) n_threads = static_cast<int>(std::thread::hardware_concurrency());
  if (n_threads < 1) n_threads = 1;
  workers_.reserve(static_cast<std::size_t>(n_threads - 1));
  for (int w = 1; w < n_threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_tasks(Job& job, int worker) {
  for (;;) {
    const Index task = job.next.fetch_add(1, std::memory_order_relaxed);
    if (task >= job.size) break;
    try {
      (*job.fn)(task, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task: take the pool lock so the waiter cannot miss the
      // notification between its predicate check and going to sleep.
      { std::lock_guard<std::mutex> lock(mu_); }
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    if (job) run_tasks(*job, worker);
  }
}

void ThreadPool::parallel_for(Index n, const std::function<void(Index, int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty()) {
    // Same exception contract as the threaded path: every task runs, the
    // first failure is rethrown after the barrier.
    std::exception_ptr error;
    for (Index i = 0; i < n; ++i) {
      try {
        fn(i, 0);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->size = n;
  job->remaining.store(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++epoch_;
  }
  cv_work_.notify_all();

  run_tasks(*job, 0);

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock,
                  [&] { return job->remaining.load(std::memory_order_acquire) == 0; });
    if (job_ == job) job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace varade::serve
