#include "varade/serve/scoring_engine.hpp"

#include <algorithm>
#include <cmath>

namespace varade::serve {

namespace {

/// Fresh model with the same architecture and weights as `src`.
std::unique_ptr<core::VaradeModel> clone_model(core::VaradeModel& src,
                                               const core::VaradeConfig& config) {
  Rng rng(config.seed);
  auto replica = std::make_unique<core::VaradeModel>(src.in_channels(), config, rng);
  const std::vector<nn::Parameter*> from = src.parameters();
  const std::vector<nn::Parameter*> to = replica->parameters();
  check(from.size() == to.size(), "replica parameter count mismatch");
  for (std::size_t i = 0; i < from.size(); ++i) {
    check(from[i]->value.same_shape(to[i]->value), "replica parameter shape mismatch");
    to[i]->value = from[i]->value;
  }
  return replica;
}

}  // namespace

ScoringEngine::ScoringEngine(core::VaradeDetector& detector,
                             const data::MinMaxNormalizer& normalizer,
                             ScoringEngineConfig config)
    : detector_(&detector),
      normalizer_(&normalizer),
      config_(config),
      pool_(config.n_threads) {
  check(detector.fitted(), "ScoringEngine requires a fitted detector");
  check(normalizer.fitted(), "ScoringEngine requires a fitted normalizer");
  check(config_.max_batch >= 1, "max_batch must be >= 1");
  core::validate(config_.monitor);

  if (config_.shard_forward && pool_.size() > 1) {
    replicas_.reserve(static_cast<std::size_t>(pool_.size() - 1));
    for (int w = 1; w < pool_.size(); ++w)
      replicas_.push_back(clone_model(*detector_->model(), detector_->config()));
  }
}

Index ScoringEngine::add_stream() {
  StreamState state;
  state.alarm = core::AlarmTracker(config_.monitor);
  state.scratch.resize(static_cast<std::size_t>(normalizer_->n_channels()));
  streams_.push_back(std::move(state));
  return n_streams() - 1;
}

Index ScoringEngine::add_streams(Index n) {
  check(n >= 1, "add_streams needs n >= 1");
  const Index first = n_streams();
  for (Index i = 0; i < n; ++i) add_stream();
  return first;
}

void ScoringEngine::sync_replicas() {
  const std::vector<nn::Parameter*> src = detector_->model()->parameters();
  for (auto& replica : replicas_) {
    const std::vector<nn::Parameter*> dst = replica->parameters();
    check(src.size() == dst.size(),
          "replica architecture mismatch (detector refitted with different config?)");
    for (std::size_t i = 0; i < src.size(); ++i) {
      check(src[i]->value.same_shape(dst[i]->value),
            "replica architecture mismatch (detector refitted with different config?)");
      dst[i]->value = src[i]->value;
    }
  }
}

void ScoringEngine::calibrate(const data::MultivariateSeries& train) {
  threshold_ = core::calibrate_threshold(*detector_, train, config_.monitor);
  sync_replicas();
  calibrated_ = true;
}

void ScoringEngine::set_threshold(float threshold) {
  threshold_ = threshold;
  sync_replicas();
  calibrated_ = true;
}

const ScoringEngine::StreamState& ScoringEngine::stream_at(Index id) const {
  check(id >= 0 && id < n_streams(), "stream id out of range");
  return streams_[static_cast<std::size_t>(id)];
}

void ScoringEngine::push(Index stream, const float* raw_sample) {
  check(stream >= 0 && stream < n_streams(), "stream id out of range");
  const auto n = static_cast<std::size_t>(normalizer_->n_channels());
  streams_[static_cast<std::size_t>(stream)].pending.emplace_back(raw_sample, raw_sample + n);
}

void ScoringEngine::push(Index stream, const std::vector<float>& raw_sample) {
  check(static_cast<Index>(raw_sample.size()) == normalizer_->n_channels(),
        "sample channel count mismatch");
  push(stream, raw_sample.data());
}

void ScoringEngine::score_chunks(const std::vector<Tensor>& chunks,
                                 const std::vector<Index>& ready) {
  const Index channels = normalizer_->n_channels();

  auto score_rows = [&](core::VaradeModel& model, const Tensor& slice, Index row_offset) {
    const core::VaradeModel::Output out = model.forward(slice);
    const Index rows = slice.dim(0);
    for (Index r = 0; r < rows; ++r) {
      streams_[static_cast<std::size_t>(ready[static_cast<std::size_t>(row_offset + r)])]
          .score = core::VaradeDetector::score_from_logvar(
              out.logvar.data() + r * channels, channels);
    }
  };

  if (replicas_.empty()) {
    // Single model: run the chunks sequentially on the caller thread.
    Index row_offset = 0;
    for (const Tensor& chunk : chunks) {
      score_rows(*detector_->model(), chunk, row_offset);
      row_offset += chunk.dim(0);
      forward_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  // Sharded: each worker scores chunks on its own weight replica. All chunks
  // except the last hold exactly max_batch rows.
  pool_.parallel_for(static_cast<Index>(chunks.size()), [&](Index ci, int worker) {
    core::VaradeModel& model =
        (worker == 0) ? *detector_->model()
                      : *replicas_[static_cast<std::size_t>(worker - 1)];
    score_rows(model, chunks[static_cast<std::size_t>(ci)], ci * config_.max_batch);
    forward_calls_.fetch_add(1, std::memory_order_relaxed);
  });
}

std::vector<StreamScore> ScoringEngine::step() {
  check(calibrated_, "ScoringEngine::step before calibrate()/set_threshold()");
  const Index window = detector_->context_window();
  const Index channels = normalizer_->n_channels();

  std::vector<StreamScore> out;
  std::vector<Index> active;
  std::vector<Index> ready;

  for (;;) {
    active.clear();
    for (Index s = 0; s < n_streams(); ++s)
      if (!streams_[static_cast<std::size_t>(s)].pending.empty()) active.push_back(s);
    if (active.empty()) break;

    // Phase 1 (parallel over streams): normalise this round's sample and
    // flag streams whose ring already holds a full context.
    pool_.parallel_for(static_cast<Index>(active.size()), [&](Index i, int) {
      StreamState& st = streams_[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])];
      const std::vector<float>& raw = st.pending.front();
      normalizer_->transform_sample(raw.data(), st.scratch.data());
      st.ready = static_cast<Index>(st.ring.size()) == window;
      st.score = -1.0F;
    });

    ready.clear();
    for (Index s : active)
      if (streams_[static_cast<std::size_t>(s)].ready) ready.push_back(s);

    if (!ready.empty()) {
      // Phase 2a (parallel over ready streams): gather contexts straight
      // into per-chunk [rows, C, T] batches; rows are disjoint slices.
      const auto n_ready = static_cast<Index>(ready.size());
      std::vector<Tensor> chunks;
      for (Index b = 0; b < n_ready; b += config_.max_batch)
        chunks.emplace_back(Shape{std::min(config_.max_batch, n_ready - b), channels, window});
      pool_.parallel_for(n_ready, [&](Index i, int) {
        const StreamState& st =
            streams_[static_cast<std::size_t>(ready[static_cast<std::size_t>(i)])];
        Tensor& chunk = chunks[static_cast<std::size_t>(i / config_.max_batch)];
        core::write_context(st.ring, channels, window,
                            chunk.data() + (i % config_.max_batch) * channels * window);
      });

      // Phase 2b: batched forward (chunked by max_batch, sharded when
      // replicas are available).
      score_chunks(chunks, ready);
    }

    // Phase 3 (parallel over streams): alarm update and ring advance.
    pool_.parallel_for(static_cast<Index>(active.size()), [&](Index i, int) {
      StreamState& st = streams_[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])];
      ++st.samples_seen;
      if (st.ready) st.alarm.update(st.score, threshold_, st.samples_seen - 1);
      st.ring.push_back(st.scratch);
      if (static_cast<Index>(st.ring.size()) > window) st.ring.pop_front();
      st.pending.pop_front();
    });

    for (Index s : active) {
      const StreamState& st = streams_[static_cast<std::size_t>(s)];
      out.push_back({s, st.samples_seen - 1, st.score});
    }
  }
  return out;
}

bool ScoringEngine::in_alarm(Index stream) const { return stream_at(stream).alarm.in_alarm(); }

const std::vector<core::AnomalyEvent>& ScoringEngine::events(Index stream) const {
  return stream_at(stream).alarm.events();
}

Index ScoringEngine::samples_seen(Index stream) const { return stream_at(stream).samples_seen; }

}  // namespace varade::serve
