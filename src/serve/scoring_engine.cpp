#include "varade/serve/scoring_engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "varade/serve/checked.hpp"

namespace varade::serve {

namespace detail {

std::string stream_range_message(Index id, Index n_streams) {
  return "stream id " + std::to_string(id) + " out of range [0, " + std::to_string(n_streams) +
         ")";
}

std::string channel_mismatch_message(Index expected, Index got) {
  return "sample channel count mismatch: expected " + std::to_string(expected) +
         " channels, got " + std::to_string(got);
}

}  // namespace detail

using detail::channel_mismatch_message;
using detail::checked_mul;
using detail::stream_range_message;

namespace {

/// Rows per vectorised-normalisation task: large enough that the per-task
/// dispatch cost vanishes, small enough that a fleet-sized round still
/// splits across workers.
constexpr Index kNormBlock = 4096;

}  // namespace

ScoringEngine::ScoringEngine(core::AnomalyDetector& detector,
                             const data::MinMaxNormalizer& normalizer,
                             ScoringEngineConfig config)
    : detector_(&detector),
      normalizer_(&normalizer),
      config_(config),
      pool_(config.n_threads) {
  check(detector.fitted(), "ScoringEngine requires a fitted detector");
  check(normalizer.fitted(), "ScoringEngine requires a fitted normalizer");
  check(config_.max_batch >= 1, "max_batch must be >= 1");
  core::validate(config_.monitor);
  window_ = detector.context_window();
  channels_ = normalizer.n_channels();
  check(window_ >= 1, "ScoringEngine requires a detector with a context window");
  // Intra-batch parallelism is a detector-side setting; the engine applies
  // it to the borrowed instance here and to every replica as it is cloned.
  detector.set_scoring_threads(config_.scoring_threads);
  // Replicas are built by calibrate()/set_threshold() (both mandatory before
  // step()), so they always reflect the detector's state at serving time.
}

Index ScoringEngine::add_stream() { return add_stream(n_streams()); }

Index ScoringEngine::add_stream(Index global_id) {
  if (global_id < 0)
    throw Error("stream id " + std::to_string(global_id) +
                " out of range: global stream ids must be >= 0");
  // Both production callers (the dense overload and the sharded runtime's
  // subset views) register strictly increasing ids, so the duplicate check
  // is O(1) on the hot path and a scan only for out-of-order registration.
  if (global_id <= max_global_id_ &&
      std::find(global_ids_.begin(), global_ids_.end(), global_id) != global_ids_.end())
    throw Error("stream id " + std::to_string(global_id) + " already registered");

  const Index s = n_streams();
  const Index row = checked_mul(channels_, window_, "per-stream context row");
  const Index slab = checked_mul(s + 1, row, "context slab");
  ctx_slab_.resize(static_cast<std::size_t>(slab), 0.0F);
  ring_start_.push_back(0);
  ring_fill_.push_back(0);
  samples_seen_.push_back(0);
  global_ids_.push_back(global_id);
  score_.push_back(-1.0F);
  alarms_.emplace_back(config_.monitor);
  pending_.emplace_back();
  pending_head_.push_back(0);
  max_global_id_ = std::max(max_global_id_, global_id);
  return s;
}

Index ScoringEngine::n_channels() const { return channels_; }

Index ScoringEngine::add_streams(Index n) {
  check(n >= 1, "add_streams needs n >= 1");
  const Index first = n_streams();
  for (Index i = 0; i < n; ++i) add_stream();
  return first;
}

void ScoringEngine::rebuild_replicas() {
  replicas_.clear();
  if (!config_.shard_forward || pool_.size() <= 1) return;
  // One replica per extra worker; a null clone marks the detector as
  // non-replicable, in which case scoring falls back to unsharded calls
  // through the borrowed instance. Any null mid-sequence voids the whole
  // set — score_chunks assumes every stored replica is live.
  replicas_.reserve(static_cast<std::size_t>(pool_.size() - 1));
  for (int w = 1; w < pool_.size(); ++w) {
    std::unique_ptr<core::AnomalyDetector> replica = detector_->clone_fitted();
    if (replica == nullptr) {
      replicas_.clear();
      return;
    }
    replica->set_scoring_threads(config_.scoring_threads);
    replicas_.push_back(std::move(replica));
  }
}

void ScoringEngine::calibrate(const data::MultivariateSeries& train) {
  threshold_ = core::calibrate_threshold(*detector_, train, config_.monitor);
  rebuild_replicas();
  calibrated_ = true;
}

void ScoringEngine::set_threshold(float threshold) {
  threshold_ = threshold;
  rebuild_replicas();
  calibrated_ = true;
}

void ScoringEngine::require_stream(Index id) const {
  if (id < 0 || id >= n_streams()) throw Error(stream_range_message(id, n_streams()));
}

Index ScoringEngine::global_id(Index stream) const {
  require_stream(stream);
  return global_ids_[static_cast<std::size_t>(stream)];
}

void ScoringEngine::push(Index stream, const float* raw_sample, Index count) {
  push(stream, raw_sample, count, 0);
}

void ScoringEngine::push(Index stream, const float* raw_sample, Index count,
                         std::int64_t enqueue_ns) {
  require_stream(stream);
  if (count != channels_) throw Error(channel_mismatch_message(channels_, count));
  const auto s = static_cast<std::size_t>(stream);
  const Index offset = static_cast<Index>(pending_arena_.size()) / channels_;
  pending_arena_.insert(pending_arena_.end(), raw_sample, raw_sample + channels_);
  pending_[s].push_back(offset);
  // The timestamp lane stays index-parallel to the arena, so even unsampled
  // pushes append their 0 — but only when telemetry exists at all.
  if constexpr (obs::kEnabled) pending_ts_.push_back(enqueue_ns);
}

void ScoringEngine::push(Index stream, const std::vector<float>& raw_sample) {
  push(stream, raw_sample.data(), static_cast<Index>(raw_sample.size()));
}

void ScoringEngine::score_chunks(const std::vector<Tensor>& contexts,
                                 const std::vector<Tensor>& observed,
                                 const std::vector<Index>& ready) {
  auto score_rows = [&](core::AnomalyDetector& det, std::size_t ci, Index row_offset) {
    const Index rows = contexts[ci].dim(0);
    std::vector<float> scores(static_cast<std::size_t>(rows));
    det.score_batch(contexts[ci], observed[ci], scores.data());
    for (Index r = 0; r < rows; ++r) {
      score_[static_cast<std::size_t>(ready[static_cast<std::size_t>(row_offset + r)])] =
          scores[static_cast<std::size_t>(r)];
    }
    forward_calls_.fetch_add(1, std::memory_order_relaxed);
  };

  if (replicas_.empty()) {
    // Unsharded: run the chunks sequentially on the caller thread through the
    // borrowed detector.
    Index row_offset = 0;
    for (std::size_t ci = 0; ci < contexts.size(); ++ci) {
      score_rows(*detector_, ci, row_offset);
      row_offset += contexts[ci].dim(0);
    }
    return;
  }

  // Sharded: each worker scores chunks on its own detector replica. All
  // chunks except the last hold exactly max_batch rows. The row offset is
  // checked once per chunk: at fleet-scale stream counts ci * max_batch is
  // exactly the product that would wrap silently.
  pool_.parallel_for(static_cast<Index>(contexts.size()), [&](Index ci, int worker) {
    core::AnomalyDetector& det =
        (worker == 0) ? *detector_ : *replicas_[static_cast<std::size_t>(worker - 1)];
    score_rows(det, static_cast<std::size_t>(ci),
               checked_mul(ci, config_.max_batch, "score chunk row offset"));
  });
}

std::vector<StreamScore> ScoringEngine::step() {
  check(calibrated_, "ScoringEngine::step before calibrate()/set_threshold()");
  const std::int64_t t_step = obs::tick();
  const Index window = window_;
  const Index channels = channels_;
  const Index row_floats = channels * window;  // checked at add_stream time

  std::vector<StreamScore> out;

  // Round 0's active set is every stream with buffered work; later rounds
  // filter it in place, so the full scan happens once per step().
  active_.clear();
  for (Index s = 0; s < n_streams(); ++s)
    if (pending_head_[static_cast<std::size_t>(s)] <
        static_cast<Index>(pending_[static_cast<std::size_t>(s)].size()))
      active_.push_back(s);
  // Streams drained this step(): their offset queues are reset at the end,
  // together with the shared arena.
  const std::vector<Index> drained = active_;

  while (!active_.empty()) {
    const auto n_active = static_cast<Index>(active_.size());
    const std::int64_t t_stage = obs::tick();

    // Phase 1a (parallel over streams): stage this round's raw sample from
    // the arena into the round slab and flag streams whose ring already
    // holds a full context. The sampled enqueue timestamps ride along so
    // push->score latency can be recorded when the round completes.
    round_raw_.resize(static_cast<std::size_t>(
        checked_mul(n_active, channels, "round staging slab")));
    round_norm_.resize(round_raw_.size());
    round_ready_.resize(static_cast<std::size_t>(n_active));
    if constexpr (obs::kEnabled) round_ts_.resize(static_cast<std::size_t>(n_active));
    pool_.parallel_for(n_active, [&](Index i, int) {
      const auto s = static_cast<std::size_t>(active_[static_cast<std::size_t>(i)]);
      const Index offset = pending_[s][static_cast<std::size_t>(pending_head_[s])];
      const float* src = pending_arena_.data() + offset * channels;
      std::copy(src, src + channels, round_raw_.data() + i * channels);
      round_ready_[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(ring_fill_[s] == window);
      score_[s] = -1.0F;
      if constexpr (obs::kEnabled)
        round_ts_[static_cast<std::size_t>(i)] = pending_ts_[static_cast<std::size_t>(offset)];
    });
    const std::int64_t t_norm = obs::tick();
    obs::record_span(phase_hist_[0], t_stage, t_norm);

    // Phase 1b (parallel over blocks): vectorised normalisation of the whole
    // round in stream-major order — the same arithmetic per element as
    // transform_sample, so results are bit-identical.
    const Index n_blocks = (n_active + kNormBlock - 1) / kNormBlock;
    pool_.parallel_for(n_blocks, [&](Index b, int) {
      const Index lo = b * kNormBlock;
      const Index hi = std::min(lo + kNormBlock, n_active);
      normalizer_->transform_rows(round_raw_.data() + lo * channels, hi - lo,
                                  round_norm_.data() + lo * channels);
    });
    obs::record_span(phase_hist_[1], t_norm, obs::tick());

    ready_.clear();
    ready_pos_.clear();
    for (Index i = 0; i < n_active; ++i) {
      if (round_ready_[static_cast<std::size_t>(i)] != 0U) {
        ready_.push_back(active_[static_cast<std::size_t>(i)]);
        ready_pos_.push_back(i);
      }
    }

    if (!ready_.empty()) {
      // Phase 2a (parallel over ready streams): unroll slab context rings and
      // current observations straight into per-chunk [rows, C, T] / [rows, C]
      // batches; rows are disjoint slices.
      const std::int64_t t_gather = obs::tick();
      const auto n_ready = static_cast<Index>(ready_.size());
      std::vector<Tensor> contexts;
      std::vector<Tensor> observations;
      for (Index b = 0; b < n_ready; b += config_.max_batch) {
        const Index rows = std::min(config_.max_batch, n_ready - b);
        contexts.emplace_back(Shape{rows, channels, window});
        observations.emplace_back(Shape{rows, channels});
      }
      pool_.parallel_for(n_ready, [&](Index i, int) {
        const auto s = static_cast<std::size_t>(ready_[static_cast<std::size_t>(i)]);
        const auto chunk = static_cast<std::size_t>(i / config_.max_batch);
        const Index row = i % config_.max_batch;
        core::write_context(ctx_slab_.data() + static_cast<Index>(s) * row_floats, channels,
                            window, ring_start_[s], contexts[chunk].data() + row * row_floats);
        const float* norm = round_norm_.data() +
                            ready_pos_[static_cast<std::size_t>(i)] * channels;
        std::copy(norm, norm + channels, observations[chunk].data() + row * channels);
      });

      const std::int64_t t_score = obs::tick();
      obs::record_span(phase_hist_[2], t_gather, t_score);

      // Phase 2b: batched scoring (chunked by max_batch, sharded when
      // replicas are available).
      score_chunks(contexts, observations, ready_);
      obs::record_span(phase_hist_[3], t_score, obs::tick());
    }

    // Phase 3 (parallel over streams): alarm update and ring advance.
    const std::int64_t t_alarm = obs::tick();
    pool_.parallel_for(n_active, [&](Index i, int) {
      const auto s = static_cast<std::size_t>(active_[static_cast<std::size_t>(i)]);
      ++samples_seen_[s];
      if (round_ready_[static_cast<std::size_t>(i)] != 0U)
        alarms_[s].update(score_[s], threshold_, samples_seen_[s] - 1);
      // Ring advance: while filling, the write position is ring_fill_ (start
      // stays 0); once warm, the oldest slot is overwritten and start moves.
      Index pos = ring_start_[s] + ring_fill_[s];
      if (pos >= window) pos -= window;
      if (ring_fill_[s] == window)
        ring_start_[s] = (ring_start_[s] + 1 == window) ? 0 : ring_start_[s] + 1;
      else
        ++ring_fill_[s];
      float* slab_row = ctx_slab_.data() + static_cast<Index>(s) * row_floats;
      const float* norm = round_norm_.data() + i * channels;
      for (Index ch = 0; ch < channels; ++ch) slab_row[ch * window + pos] = norm[ch];
      ++pending_head_[s];
    });
    if constexpr (obs::kEnabled) {
      const std::int64_t t_done = obs::now_ns();
      phase_hist_[4].record(t_done - t_alarm);
      // Sampled push->score latency: every staged sample that carried an
      // enqueue timestamp completed its pipeline this round.
      for (Index i = 0; i < n_active; ++i) {
        const std::int64_t ts = round_ts_[static_cast<std::size_t>(i)];
        if (ts > 0) push_to_score_hist_.record(t_done - ts);
      }
    }

    for (Index s : active_) {
      const auto si = static_cast<std::size_t>(s);
      out.push_back({global_ids_[si], samples_seen_[si] - 1, score_[si]});
    }

    next_active_.clear();
    for (Index s : active_) {
      const auto si = static_cast<std::size_t>(s);
      if (pending_head_[si] < static_cast<Index>(pending_[si].size())) next_active_.push_back(s);
    }
    std::swap(active_, next_active_);
  }

  // All buffered work consumed: reset the offset queues (capacity retained)
  // and the shared arena, so push() restarts from a compact staging area.
  for (Index s : drained) {
    const auto si = static_cast<std::size_t>(s);
    pending_[si].clear();
    pending_head_[si] = 0;
  }
  pending_arena_.clear();
  if constexpr (obs::kEnabled) {
    pending_ts_.clear();
    if (!drained.empty()) step_hist_.record(obs::now_ns() - t_step);
  }
  return out;
}

void EngineTelemetry::merge(const EngineTelemetry& other) {
  for (int p = 0; p < kStepPhases; ++p) phases[p].merge(other.phases[p]);
  step.merge(other.step);
  push_to_score.merge(other.push_to_score);
}

EngineTelemetry ScoringEngine::telemetry() const {
  EngineTelemetry t;
  for (int p = 0; p < kStepPhases; ++p) t.phases[p] = phase_hist_[p].snapshot();
  t.step = step_hist_.snapshot();
  t.push_to_score = push_to_score_hist_.snapshot();
  return t;
}

bool ScoringEngine::in_alarm(Index stream) const {
  require_stream(stream);
  return alarms_[static_cast<std::size_t>(stream)].in_alarm();
}

const std::vector<core::AnomalyEvent>& ScoringEngine::events(Index stream) const {
  require_stream(stream);
  return alarms_[static_cast<std::size_t>(stream)].events();
}

Index ScoringEngine::samples_seen(Index stream) const {
  require_stream(stream);
  return samples_seen_[static_cast<std::size_t>(stream)];
}

}  // namespace varade::serve
