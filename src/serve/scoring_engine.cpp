#include "varade/serve/scoring_engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace varade::serve {

namespace detail {

std::string stream_range_message(Index id, Index n_streams) {
  return "stream id " + std::to_string(id) + " out of range [0, " + std::to_string(n_streams) +
         ")";
}

}  // namespace detail

using detail::stream_range_message;

ScoringEngine::ScoringEngine(core::AnomalyDetector& detector,
                             const data::MinMaxNormalizer& normalizer,
                             ScoringEngineConfig config)
    : detector_(&detector),
      normalizer_(&normalizer),
      config_(config),
      pool_(config.n_threads) {
  check(detector.fitted(), "ScoringEngine requires a fitted detector");
  check(normalizer.fitted(), "ScoringEngine requires a fitted normalizer");
  check(config_.max_batch >= 1, "max_batch must be >= 1");
  core::validate(config_.monitor);
  // Intra-batch parallelism is a detector-side setting; the engine applies
  // it to the borrowed instance here and to every replica as it is cloned.
  detector.set_scoring_threads(config_.scoring_threads);
  // Replicas are built by calibrate()/set_threshold() (both mandatory before
  // step()), so they always reflect the detector's state at serving time.
}

Index ScoringEngine::add_stream() { return add_stream(n_streams()); }

Index ScoringEngine::add_stream(Index global_id) {
  StreamState state;
  state.alarm = core::AlarmTracker(config_.monitor);
  state.scratch.resize(static_cast<std::size_t>(normalizer_->n_channels()));
  state.global_id = global_id;
  streams_.push_back(std::move(state));
  return n_streams() - 1;
}

Index ScoringEngine::n_channels() const { return normalizer_->n_channels(); }

Index ScoringEngine::add_streams(Index n) {
  check(n >= 1, "add_streams needs n >= 1");
  const Index first = n_streams();
  for (Index i = 0; i < n; ++i) add_stream();
  return first;
}

void ScoringEngine::rebuild_replicas() {
  replicas_.clear();
  if (!config_.shard_forward || pool_.size() <= 1) return;
  // One replica per extra worker; a null clone marks the detector as
  // non-replicable, in which case scoring falls back to unsharded calls
  // through the borrowed instance. Any null mid-sequence voids the whole
  // set — score_chunks assumes every stored replica is live.
  replicas_.reserve(static_cast<std::size_t>(pool_.size() - 1));
  for (int w = 1; w < pool_.size(); ++w) {
    std::unique_ptr<core::AnomalyDetector> replica = detector_->clone_fitted();
    if (replica == nullptr) {
      replicas_.clear();
      return;
    }
    replica->set_scoring_threads(config_.scoring_threads);
    replicas_.push_back(std::move(replica));
  }
}

void ScoringEngine::calibrate(const data::MultivariateSeries& train) {
  threshold_ = core::calibrate_threshold(*detector_, train, config_.monitor);
  rebuild_replicas();
  calibrated_ = true;
}

void ScoringEngine::set_threshold(float threshold) {
  threshold_ = threshold;
  rebuild_replicas();
  calibrated_ = true;
}

const ScoringEngine::StreamState& ScoringEngine::stream_at(Index id) const {
  // Branch before building the message: push() runs through here once per
  // sample, and must not allocate on success.
  if (id < 0 || id >= n_streams()) throw Error(stream_range_message(id, n_streams()));
  return streams_[static_cast<std::size_t>(id)];
}

ScoringEngine::StreamState& ScoringEngine::stream_at(Index id) {
  if (id < 0 || id >= n_streams()) throw Error(stream_range_message(id, n_streams()));
  return streams_[static_cast<std::size_t>(id)];
}

void ScoringEngine::push(Index stream, const float* raw_sample) {
  const auto n = static_cast<std::size_t>(normalizer_->n_channels());
  stream_at(stream).pending.emplace_back(raw_sample, raw_sample + n);
}

void ScoringEngine::push(Index stream, const std::vector<float>& raw_sample) {
  if (static_cast<Index>(raw_sample.size()) != normalizer_->n_channels())
    throw Error("sample channel count mismatch");
  push(stream, raw_sample.data());
}

void ScoringEngine::score_chunks(const std::vector<Tensor>& contexts,
                                 const std::vector<Tensor>& observed,
                                 const std::vector<Index>& ready) {
  auto score_rows = [&](core::AnomalyDetector& det, std::size_t ci, Index row_offset) {
    const Index rows = contexts[ci].dim(0);
    std::vector<float> scores(static_cast<std::size_t>(rows));
    det.score_batch(contexts[ci], observed[ci], scores.data());
    for (Index r = 0; r < rows; ++r) {
      streams_[static_cast<std::size_t>(ready[static_cast<std::size_t>(row_offset + r)])]
          .score = scores[static_cast<std::size_t>(r)];
    }
    forward_calls_.fetch_add(1, std::memory_order_relaxed);
  };

  if (replicas_.empty()) {
    // Unsharded: run the chunks sequentially on the caller thread through the
    // borrowed detector.
    Index row_offset = 0;
    for (std::size_t ci = 0; ci < contexts.size(); ++ci) {
      score_rows(*detector_, ci, row_offset);
      row_offset += contexts[ci].dim(0);
    }
    return;
  }

  // Sharded: each worker scores chunks on its own detector replica. All
  // chunks except the last hold exactly max_batch rows.
  pool_.parallel_for(static_cast<Index>(contexts.size()), [&](Index ci, int worker) {
    core::AnomalyDetector& det =
        (worker == 0) ? *detector_ : *replicas_[static_cast<std::size_t>(worker - 1)];
    score_rows(det, static_cast<std::size_t>(ci), ci * config_.max_batch);
  });
}

std::vector<StreamScore> ScoringEngine::step() {
  check(calibrated_, "ScoringEngine::step before calibrate()/set_threshold()");
  const Index window = detector_->context_window();
  const Index channels = normalizer_->n_channels();

  std::vector<StreamScore> out;
  std::vector<Index> active;
  std::vector<Index> ready;

  for (;;) {
    active.clear();
    for (Index s = 0; s < n_streams(); ++s)
      if (!streams_[static_cast<std::size_t>(s)].pending.empty()) active.push_back(s);
    if (active.empty()) break;

    // Phase 1 (parallel over streams): normalise this round's sample and
    // flag streams whose ring already holds a full context.
    pool_.parallel_for(static_cast<Index>(active.size()), [&](Index i, int) {
      StreamState& st = streams_[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])];
      const std::vector<float>& raw = st.pending.front();
      normalizer_->transform_sample(raw.data(), st.scratch.data());
      st.ready = static_cast<Index>(st.ring.size()) == window;
      st.score = -1.0F;
    });

    ready.clear();
    for (Index s : active)
      if (streams_[static_cast<std::size_t>(s)].ready) ready.push_back(s);

    if (!ready.empty()) {
      // Phase 2a (parallel over ready streams): gather contexts and current
      // observations straight into per-chunk [rows, C, T] / [rows, C]
      // batches; rows are disjoint slices.
      const auto n_ready = static_cast<Index>(ready.size());
      std::vector<Tensor> contexts;
      std::vector<Tensor> observations;
      for (Index b = 0; b < n_ready; b += config_.max_batch) {
        const Index rows = std::min(config_.max_batch, n_ready - b);
        contexts.emplace_back(Shape{rows, channels, window});
        observations.emplace_back(Shape{rows, channels});
      }
      pool_.parallel_for(n_ready, [&](Index i, int) {
        const StreamState& st =
            streams_[static_cast<std::size_t>(ready[static_cast<std::size_t>(i)])];
        const auto chunk = static_cast<std::size_t>(i / config_.max_batch);
        const Index row = i % config_.max_batch;
        core::write_context(st.ring, channels, window,
                            contexts[chunk].data() + row * channels * window);
        std::copy(st.scratch.begin(), st.scratch.end(),
                  observations[chunk].data() + row * channels);
      });

      // Phase 2b: batched scoring (chunked by max_batch, sharded when
      // replicas are available).
      score_chunks(contexts, observations, ready);
    }

    // Phase 3 (parallel over streams): alarm update and ring advance.
    pool_.parallel_for(static_cast<Index>(active.size()), [&](Index i, int) {
      StreamState& st = streams_[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])];
      ++st.samples_seen;
      if (st.ready) st.alarm.update(st.score, threshold_, st.samples_seen - 1);
      st.ring.push_back(st.scratch);
      if (static_cast<Index>(st.ring.size()) > window) st.ring.pop_front();
      st.pending.pop_front();
    });

    for (Index s : active) {
      const StreamState& st = streams_[static_cast<std::size_t>(s)];
      out.push_back({st.global_id, st.samples_seen - 1, st.score});
    }
  }
  return out;
}

bool ScoringEngine::in_alarm(Index stream) const { return stream_at(stream).alarm.in_alarm(); }

const std::vector<core::AnomalyEvent>& ScoringEngine::events(Index stream) const {
  return stream_at(stream).alarm.events();
}

Index ScoringEngine::samples_seen(Index stream) const { return stream_at(stream).samples_seen; }

}  // namespace varade::serve
