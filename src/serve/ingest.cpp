#include "varade/serve/ingest.hpp"

#include <algorithm>

namespace varade::serve {

const char* to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::Block: return "Block";
    case BackpressurePolicy::DropOldest: return "DropOldest";
    case BackpressurePolicy::Reject: return "Reject";
  }
  return "?";
}

const char* to_string(PushResult result) {
  switch (result) {
    case PushResult::Ok: return "Ok";
    case PushResult::DroppedOldest: return "DroppedOldest";
    case PushResult::Rejected: return "Rejected";
  }
  return "?";
}

namespace {

std::uint64_t round_up_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1U;
  return p;
}

}  // namespace

SampleRing::SampleRing(Index channels, Index min_capacity) : channels_(channels) {
  check(channels >= 1, "SampleRing needs at least one channel");
  check(min_capacity >= 1, "SampleRing capacity must be >= 1");
  check(min_capacity <= (Index{1} << 30U), "SampleRing capacity unreasonably large");
  const std::uint64_t capacity = round_up_pow2(static_cast<std::uint64_t>(min_capacity));
  mask_ = capacity - 1;
  slots_ = std::vector<Slot>(capacity);
  for (std::uint64_t i = 0; i < capacity; ++i)
    slots_[i].seq.store(i, std::memory_order_relaxed);
  data_.assign(capacity * static_cast<std::uint64_t>(channels), 0.0F);
}

bool SampleRing::try_push(const float* sample) {
  std::uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::int64_t>(seq - pos);
    if (dif == 0) {
      // Slot free on this lap: claim the position, then publish the data.
      if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        std::copy(sample, sample + channels_,
                  data_.data() + (pos & mask_) * static_cast<std::uint64_t>(channels_));
        slot.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS updated pos to the current tail; retry with it.
    } else if (dif < 0) {
      return false;  // the slot still holds last lap's sample: ring is full
    } else {
      pos = tail_.load(std::memory_order_relaxed);  // another push won the slot
    }
  }
}

bool SampleRing::claim_pop(std::uint64_t& pos_out) {
  std::uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::int64_t>(seq - (pos + 1));
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        pos_out = pos;
        return true;
      }
    } else if (dif < 0) {
      return false;  // slot not yet published: ring is empty
    } else {
      pos = head_.load(std::memory_order_relaxed);  // another pop won the slot
    }
  }
}

bool SampleRing::try_pop(float* out) {
  std::uint64_t pos = 0;
  if (!claim_pop(pos)) return false;
  const float* src = data_.data() + (pos & mask_) * static_cast<std::uint64_t>(channels_);
  std::copy(src, src + channels_, out);
  // Recycle the slot for the next lap.
  slots_[pos & mask_].seq.store(pos + mask_ + 1, std::memory_order_release);
  return true;
}

bool SampleRing::try_pop_discard() {
  std::uint64_t pos = 0;
  if (!claim_pop(pos)) return false;
  slots_[pos & mask_].seq.store(pos + mask_ + 1, std::memory_order_release);
  return true;
}

Index SampleRing::size_approx() const {
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail <= head) return 0;
  return static_cast<Index>(std::min<std::uint64_t>(tail - head, mask_ + 1));
}

}  // namespace varade::serve
