#include "varade/serve/ingest.hpp"

#include <algorithm>

#include "varade/serve/checked.hpp"

namespace varade::serve {

const char* to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::Block: return "Block";
    case BackpressurePolicy::DropOldest: return "DropOldest";
    case BackpressurePolicy::Reject: return "Reject";
  }
  return "?";
}

const char* to_string(PushResult result) {
  switch (result) {
    case PushResult::Ok: return "Ok";
    case PushResult::DroppedOldest: return "DroppedOldest";
    case PushResult::Rejected: return "Rejected";
  }
  return "?";
}

Index SampleRing::round_up_capacity(Index min_capacity) {
  check(min_capacity >= 1, "SampleRing capacity must be >= 1");
  check(min_capacity <= (Index{1} << 30U), "SampleRing capacity unreasonably large");
  Index p = 1;
  while (p < min_capacity) p <<= 1U;
  return p;
}

void SampleRing::init_slots() {
  const std::uint64_t capacity = mask_ + 1;
  for (std::uint64_t i = 0; i < capacity; ++i) slots_[i].store(i, std::memory_order_relaxed);
}

SampleRing::SampleRing(Index channels, Index min_capacity) : channels_(channels) {
  check(channels >= 1, "SampleRing needs at least one channel");
  const auto capacity = static_cast<std::uint64_t>(round_up_capacity(min_capacity));
  mask_ = capacity - 1;
  owned_slots_ = std::make_unique<std::atomic<std::uint64_t>[]>(capacity);
  owned_data_.assign(capacity * static_cast<std::uint64_t>(channels), 0.0F);
  slots_ = owned_slots_.get();
  data_ = owned_data_.data();
  if constexpr (obs::kEnabled) {
    owned_ts_.assign(capacity, 0);
    ts_ = owned_ts_.data();
  }
  init_slots();
}

SampleRing::SampleRing(Index channels, Index capacity_pow2, std::atomic<std::uint64_t>* slots,
                       float* data, std::int64_t* ts)
    : channels_(channels), slots_(slots), data_(data), ts_(ts) {
  check(channels >= 1, "SampleRing needs at least one channel");
  check(capacity_pow2 >= 1 && (capacity_pow2 & (capacity_pow2 - 1)) == 0,
        "arena-backed SampleRing capacity must be a power of two");
  check(slots != nullptr && data != nullptr, "arena-backed SampleRing needs storage");
  mask_ = static_cast<std::uint64_t>(capacity_pow2) - 1;
  init_slots();
}

RingArena::RingArena(Index n_rings, Index channels, Index min_capacity)
    : n_rings_(n_rings), channels_(channels), capacity_(SampleRing::round_up_capacity(min_capacity)) {
  check(n_rings >= 1, "RingArena needs at least one ring");
  check(channels >= 1, "RingArena needs at least one channel");
  const Index total_slots = detail::checked_mul(n_rings_, capacity_, "ring arena slot count");
  const Index total_floats =
      detail::checked_mul(total_slots, channels_, "ring arena sample storage");
  slots_ = std::make_unique<std::atomic<std::uint64_t>[]>(static_cast<std::size_t>(total_slots));
  data_.assign(static_cast<std::size_t>(total_floats), 0.0F);
  if constexpr (obs::kEnabled) ts_.assign(static_cast<std::size_t>(total_slots), 0);
}

std::atomic<std::uint64_t>* RingArena::slots(Index ring) {
  check(ring >= 0 && ring < n_rings_, "RingArena ring index out of range");
  return slots_.get() + static_cast<std::size_t>(ring) * static_cast<std::size_t>(capacity_);
}

float* RingArena::data(Index ring) {
  check(ring >= 0 && ring < n_rings_, "RingArena ring index out of range");
  return data_.data() +
         static_cast<std::size_t>(ring) * static_cast<std::size_t>(capacity_ * channels_);
}

std::int64_t* RingArena::ts(Index ring) {
  check(ring >= 0 && ring < n_rings_, "RingArena ring index out of range");
  if (ts_.empty()) return nullptr;
  return ts_.data() + static_cast<std::size_t>(ring) * static_cast<std::size_t>(capacity_);
}

bool SampleRing::try_push(const float* sample, std::int64_t enqueue_ns) {
  std::uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    std::atomic<std::uint64_t>& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.load(std::memory_order_acquire);
    const auto dif = static_cast<std::int64_t>(seq - pos);
    if (dif == 0) {
      // Slot free on this lap: claim the position, then publish the data.
      if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        std::copy(sample, sample + channels_,
                  data_ + (pos & mask_) * static_cast<std::uint64_t>(channels_));
        // The lane entry must be (re)written even for unsampled pushes:
        // a stale timestamp from a previous lap would otherwise surface.
        if constexpr (obs::kEnabled) {
          if (ts_ != nullptr) ts_[pos & mask_] = enqueue_ns;
        }
        slot.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS updated pos to the current tail; retry with it.
    } else if (dif < 0) {
      return false;  // the slot still holds last lap's sample: ring is full
    } else {
      pos = tail_.load(std::memory_order_relaxed);  // another push won the slot
    }
  }
}

bool SampleRing::claim_pop(std::uint64_t& pos_out) {
  std::uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    std::atomic<std::uint64_t>& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.load(std::memory_order_acquire);
    const auto dif = static_cast<std::int64_t>(seq - (pos + 1));
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        pos_out = pos;
        return true;
      }
    } else if (dif < 0) {
      return false;  // slot not yet published: ring is empty
    } else {
      pos = head_.load(std::memory_order_relaxed);  // another pop won the slot
    }
  }
}

bool SampleRing::try_pop(float* out) {
  std::uint64_t pos = 0;
  if (!claim_pop(pos)) return false;
  const float* src = data_ + (pos & mask_) * static_cast<std::uint64_t>(channels_);
  std::copy(src, src + channels_, out);
  // Recycle the slot for the next lap.
  slots_[pos & mask_].store(pos + mask_ + 1, std::memory_order_release);
  return true;
}

bool SampleRing::try_pop_discard() {
  std::uint64_t pos = 0;
  if (!claim_pop(pos)) return false;
  slots_[pos & mask_].store(pos + mask_ + 1, std::memory_order_release);
  return true;
}

Index SampleRing::size_approx() const {
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail <= head) return 0;
  return static_cast<Index>(std::min<std::uint64_t>(tail - head, mask_ + 1));
}

}  // namespace varade::serve
