#include "varade/serve/runtime.hpp"

#include <chrono>
#include <utility>

namespace varade::serve {

using detail::stream_range_message;

AsyncScoringRuntime::AsyncScoringRuntime(core::AnomalyDetector& detector,
                                         const data::MinMaxNormalizer& normalizer,
                                         AsyncRuntimeConfig config)
    : engine_(detector, normalizer, config.engine), config_(config) {
  check(config_.ring_capacity >= 1, "ring_capacity must be >= 1");
  check(config_.idle_spin_rounds >= 1, "idle_spin_rounds must be >= 1");
}

AsyncScoringRuntime::~AsyncScoringRuntime() {
  try {
    close();
  } catch (...) {
    // A scoring-thread failure surfaced by close() must not escape the
    // destructor; call close() explicitly to observe it.
  }
}

Index AsyncScoringRuntime::add_stream() {
  check(!started_, "add_stream after start()");
  const Index id = engine_.add_stream();
  streams_.emplace_back(engine_.n_channels(), config_.ring_capacity);
  return id;
}

Index AsyncScoringRuntime::add_streams(Index n) {
  check(n >= 1, "add_streams needs n >= 1");
  const Index first = n_streams();
  for (Index i = 0; i < n; ++i) add_stream();
  return first;
}

void AsyncScoringRuntime::calibrate(const data::MultivariateSeries& train) {
  check(!started_, "calibrate after start()");
  engine_.calibrate(train);
}

void AsyncScoringRuntime::set_threshold(float threshold) {
  check(!started_, "set_threshold after start()");
  engine_.set_threshold(threshold);
}

void AsyncScoringRuntime::on_score(std::function<void(const StreamScore&)> callback) {
  check(!started_, "on_score after start()");
  callback_ = std::move(callback);
}

void AsyncScoringRuntime::start() {
  check(!started_, "start() called twice");
  check(!closed(), "start() after close()");
  check(n_streams() >= 1, "start() with no streams");
  check(engine_.calibrated(), "start() before calibrate()/set_threshold()");
  // accepting_ first: a push that observes started_ must find intake open.
  accepting_.store(true, std::memory_order_release);
  started_.store(true, std::memory_order_release);
  scorer_ = std::thread([this] { scorer_loop(); });
}

AsyncScoringRuntime::StreamIngest& AsyncScoringRuntime::ingest_at(Index stream) {
  // Branch before building the message: this sits on the per-sample push
  // path, which must not allocate on success.
  if (stream < 0 || stream >= n_streams())
    throw Error(stream_range_message(stream, n_streams()));
  return streams_[static_cast<std::size_t>(stream)];
}

const AsyncScoringRuntime::StreamIngest& AsyncScoringRuntime::ingest_at(Index stream) const {
  if (stream < 0 || stream >= n_streams())
    throw Error(stream_range_message(stream, n_streams()));
  return streams_[static_cast<std::size_t>(stream)];
}

PushResult AsyncScoringRuntime::push(Index stream, const float* raw_sample) {
  return push(stream, raw_sample, config_.backpressure);
}

PushResult AsyncScoringRuntime::push(Index stream, const float* raw_sample,
                                     BackpressurePolicy policy) {
  StreamIngest& ingest = ingest_at(stream);
  if (!started_.load(std::memory_order_acquire)) {
    // A closed runtime rejects (documented contract) even if it was never
    // started; pushing before start() on a live runtime is a usage error.
    if (closing_.load(std::memory_order_acquire)) {
      ingest.rejected.fetch_add(1, std::memory_order_relaxed);
      return PushResult::Rejected;
    }
    throw Error("push before start()");
  }

  // Intake gate: while the stream's active_pushers is held, close() will not
  // let the scorer finish — so a push that passes the accepting_ check is
  // guaranteed to be drained and scored. seq_cst on both gate accesses (and
  // on close()'s side) rules out the store-buffering interleaving where
  // close() misses the counter and this push misses the accepting_ flip.
  ingest.active_pushers.fetch_add(1, std::memory_order_seq_cst);
  PushResult result = PushResult::Rejected;
  if (accepting_.load(std::memory_order_seq_cst)) {
    bool dropped_any = false;
    Backoff backoff;
    for (;;) {
      if (ingest.ring.try_push(raw_sample)) {
        result = dropped_any ? PushResult::DroppedOldest : PushResult::Ok;
        break;
      }
      if (policy == BackpressurePolicy::Reject) break;
      if (policy == BackpressurePolicy::DropOldest) {
        // Evict from the consumer side (lock-free multi-popper ring); the
        // scorer may empty the ring first, in which case the retry just
        // succeeds without a drop.
        if (ingest.ring.try_pop_discard()) {
          ingest.dropped.fetch_add(1, std::memory_order_relaxed);
          dropped_any = true;
        }
        continue;
      }
      // Block: wait for the scorer to free a slot; bail out if the runtime
      // closes under us.
      if (!accepting_.load(std::memory_order_acquire)) break;
      backoff.wait();
    }
    if (result == PushResult::Rejected) {
      ingest.rejected.fetch_add(1, std::memory_order_relaxed);
    } else {
      ingest.pushed.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    ingest.rejected.fetch_add(1, std::memory_order_relaxed);
  }
  ingest.active_pushers.fetch_sub(1, std::memory_order_release);

  if (result != PushResult::Rejected && asleep_.load(std::memory_order_acquire)) wake_scorer();
  return result;
}

PushResult AsyncScoringRuntime::push(Index stream, const std::vector<float>& raw_sample) {
  return push(stream, raw_sample, config_.backpressure);
}

PushResult AsyncScoringRuntime::push(Index stream, const std::vector<float>& raw_sample,
                                     BackpressurePolicy policy) {
  if (static_cast<Index>(raw_sample.size()) != engine_.n_channels())
    throw Error("sample channel count mismatch");
  return push(stream, raw_sample.data(), policy);
}

void AsyncScoringRuntime::wake_scorer() {
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_cv_.notify_one();
}

long AsyncScoringRuntime::drain_ring(Index stream, float* sample, bool bounded) {
  SampleRing& ring = streams_[static_cast<std::size_t>(stream)].ring;
  const Index max_pops = bounded ? ring.capacity() : -1;
  long drained = 0;
  for (Index k = 0; max_pops < 0 || k < max_pops; ++k) {
    if (!ring.try_pop(sample)) break;
    engine_.push(stream, sample);
    ++drained;
  }
  return drained;
}

void AsyncScoringRuntime::emit(std::vector<StreamScore> scores) {
  if (scores.empty()) return;
  if (callback_) {
    for (const StreamScore& s : scores) callback_(s);
    return;
  }
  std::lock_guard<std::mutex> lock(results_mu_);
  results_.insert(results_.end(), scores.begin(), scores.end());
}

std::vector<StreamScore> AsyncScoringRuntime::drain_scores() {
  std::vector<StreamScore> out;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    out.swap(results_);
  }
  return out;
}

void AsyncScoringRuntime::scorer_loop() {
  scorer_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  try {
    scorer_loop_impl();
  } catch (...) {
    // Shut intake and exit; close() rethrows after the join. Samples still
    // buffered in the rings at this point are not scored.
    scorer_error_ = std::current_exception();
    accepting_.store(false, std::memory_order_release);
  }
}

void AsyncScoringRuntime::scorer_loop_impl() {
  const Index n = n_streams();
  std::vector<float> sample(static_cast<std::size_t>(engine_.n_channels()));
  // Nap escalation: producers that observe asleep_ notify under the mutex,
  // so a sleeping scorer wakes immediately when traffic resumes; the timeout
  // only backstops the rare stale-asleep_-read window. Doubling it while
  // consecutively idle lets a quiet runtime go properly to sleep instead of
  // burning ~2000 wakeups/s forever.
  constexpr std::chrono::microseconds kNapFloor{500};
  constexpr std::chrono::microseconds kNapCeiling{50000};
  std::chrono::microseconds nap = kNapFloor;
  int idle = 0;
  for (;;) {
    // One round: drain every ring round-robin into the engine (each ring
    // FIFO, so per-stream producer order is preserved), then score. At most
    // one ring's worth per stream per round, so a hot producer refilling its
    // ring cannot starve the other streams.
    long drained = 0;
    for (Index s = 0; s < n; ++s) drained += drain_ring(s, sample.data(), /*bounded=*/true);
    if (drained > 0) {
      idle = 0;
      nap = kNapFloor;
      emit(engine_.step());
      rounds_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // All rings looked empty — but that scan may predate a producer's last
    // push (the scan and the push/close() handoff can interleave). stop_ is
    // raised only after intake is shut and every in-flight push has landed,
    // so one more full drain observed AFTER the stop_ load sees everything
    // that will ever arrive; only then is exiting safe.
    if (stop_.load(std::memory_order_acquire)) {
      long final_drained = 0;
      for (Index s = 0; s < n; ++s) final_drained += drain_ring(s, sample.data(), false);
      if (final_drained > 0) {
        emit(engine_.step());
        rounds_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    if (++idle < config_.idle_spin_rounds) {
      std::this_thread::yield();
      continue;
    }
    // Nap until a producer (or close()) wakes us. The ring re-check happens
    // after asleep_ is set under the mutex; a producer that misses the flag
    // pushed early enough for that re-check to see its sample, and the
    // timeout bounds any residual visibility latency.
    bool timed_out = false;
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      asleep_.store(true, std::memory_order_release);
      bool pending = stop_.load(std::memory_order_acquire);
      for (Index s = 0; s < n && !pending; ++s)
        pending = !streams_[static_cast<std::size_t>(s)].ring.empty_approx();
      if (!pending) timed_out = wake_cv_.wait_for(lock, nap) == std::cv_status::timeout;
      asleep_.store(false, std::memory_order_release);
    }
    if (timed_out) {
      // Still quiet: back off harder, and go straight to the next nap after
      // one ring scan (skip the yield rounds — they are for active traffic).
      nap = std::min(nap * 2, kNapCeiling);
      idle = config_.idle_spin_rounds;
    } else {
      nap = kNapFloor;
      idle = 0;
    }
  }
}

void AsyncScoringRuntime::close() {
  // Self-join guard: close() from the scoring thread (i.e. inside an
  // on_score callback) would deadlock; fail loudly instead. The throw lands
  // in scorer_loop's catch and surfaces from the real close() call. An
  // unstarted runtime's scorer_tid_ is the default id, which matches no
  // running thread.
  check(std::this_thread::get_id() != scorer_tid_.load(std::memory_order_relaxed),
        "close() must not be called from the scoring thread (on_score callback)");
  // First caller performs the shutdown; any concurrent caller waits for it.
  if (closing_.exchange(true, std::memory_order_acq_rel)) {
    Backoff spin;
    while (!closed()) spin.wait();
    return;
  }
  if (!started_.load(std::memory_order_acquire)) {
    closed_.store(true, std::memory_order_release);
    return;
  }
  // 1. Shut intake: new pushes reject, Block-policy pushes unblock. seq_cst
  //    pairs with the gate in push() — see the header comment.
  accepting_.store(false, std::memory_order_seq_cst);
  // 2. Wait for in-flight pushes, so every accepted sample is in a ring.
  Backoff backoff;
  for (auto& stream : streams_) {
    while (stream.active_pushers.load(std::memory_order_seq_cst) > 0) backoff.wait();
    backoff.reset();
  }
  // 3. Tell the scorer to drain to empty and exit, and join it.
  stop_.store(true, std::memory_order_release);
  wake_scorer();
  scorer_.join();
  // Clear the published id: a future thread recycling it must not trip the
  // self-join guard on a (legal, idempotent) later close().
  scorer_tid_.store(std::thread::id{}, std::memory_order_relaxed);
  closed_.store(true, std::memory_order_release);
  if (scorer_error_) std::rethrow_exception(scorer_error_);
}

IngestStats AsyncScoringRuntime::stats(Index stream) const {
  const StreamIngest& ingest = ingest_at(stream);
  IngestStats s;
  s.pushed = ingest.pushed.load(std::memory_order_relaxed);
  s.dropped = ingest.dropped.load(std::memory_order_relaxed);
  s.rejected = ingest.rejected.load(std::memory_order_relaxed);
  return s;
}

void AsyncScoringRuntime::require_quiescent(const char* what) const {
  check(!started_.load(std::memory_order_acquire) || closed(),
        std::string(what) + " races with the scoring thread: call it before start() or after "
                            "close()");
}

bool AsyncScoringRuntime::in_alarm(Index stream) const {
  require_quiescent("in_alarm()");
  return engine_.in_alarm(stream);
}

const std::vector<core::AnomalyEvent>& AsyncScoringRuntime::events(Index stream) const {
  require_quiescent("events()");
  return engine_.events(stream);
}

Index AsyncScoringRuntime::samples_seen(Index stream) const {
  require_quiescent("samples_seen()");
  return engine_.samples_seen(stream);
}

const ScoringEngine& AsyncScoringRuntime::engine() const {
  require_quiescent("engine()");
  return engine_;
}

}  // namespace varade::serve
