#include "varade/serve/runtime.hpp"

#include <chrono>
#include <utility>

namespace varade::serve {

using detail::stream_range_message;

namespace {

/// Push->score latency sampling period: every Nth accepted push per stream
/// carries an enqueue timestamp through the ring's timestamp lane. Power of
/// two so the hot-path check is a mask.
constexpr long kPushSampleEvery = 64;

}  // namespace

Index ShardPartition::resolve(Index requested) {
  check(requested >= 0, "n_shards must be >= 0 (0 = auto)");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<Index>(hw);
}

AsyncScoringRuntime::AsyncScoringRuntime(core::AnomalyDetector& detector,
                                         const data::MinMaxNormalizer& normalizer,
                                         AsyncRuntimeConfig config)
    : detector_(&detector),
      normalizer_(&normalizer),
      config_(config),
      partition_{ShardPartition::resolve(config.n_shards)} {
  // The shard engines are built lazily by start() (the stream set must be
  // final first), so the construction-time validation they would have done
  // happens here instead.
  check(detector.fitted(), "AsyncScoringRuntime requires a fitted detector");
  check(normalizer.fitted(), "AsyncScoringRuntime requires a fitted normalizer");
  check(config_.engine.max_batch >= 1, "max_batch must be >= 1");
  core::validate(config_.engine.monitor);
  check(config_.ring_capacity >= 1, "ring_capacity must be >= 1");
  check(config_.idle_spin_rounds >= 1, "idle_spin_rounds must be >= 1");
  for (Index k = 0; k < partition_.n_shards; ++k) shards_.emplace_back();
}

AsyncScoringRuntime::~AsyncScoringRuntime() {
  try {
    close();
  } catch (...) {
    // A scoring-thread failure surfaced by close() must not escape the
    // destructor; call close() explicitly to observe it.
  }
}

Index AsyncScoringRuntime::add_stream() {
  check(!started_, "add_stream after start()");
  const Index id = n_streams_;
  // Counters only: the ring storage for every stream a shard owns is one
  // arena built by start(), once the stream set is final.
  shards_[static_cast<std::size_t>(partition_.shard_of(id))].ingest.emplace_back();
  ++n_streams_;
  return id;
}

Index AsyncScoringRuntime::add_streams(Index n) {
  check(n >= 1, "add_streams needs n >= 1");
  const Index first = n_streams_;
  for (Index i = 0; i < n; ++i) add_stream();
  return first;
}

void AsyncScoringRuntime::calibrate(const data::MultivariateSeries& train) {
  check(!started_, "calibrate after start()");
  // The same quantile rule ScoringEngine::calibrate applies, run once on the
  // borrowed detector; start() hands the threshold to every shard engine.
  threshold_ = core::calibrate_threshold(*detector_, train, config_.engine.monitor);
  calibrated_ = true;
}

void AsyncScoringRuntime::set_threshold(float threshold) {
  check(!started_, "set_threshold after start()");
  threshold_ = threshold;
  calibrated_ = true;
}

void AsyncScoringRuntime::on_score(std::function<void(const StreamScore&)> callback) {
  check(!started_, "on_score after start()");
  callback_ = std::move(callback);
}

void AsyncScoringRuntime::start() {
  check(!started_, "start() called twice");
  check(!closed(), "start() after close()");
  check(n_streams_ >= 1, "start() with no streams");
  check(calibrated_, "start() before calibrate()/set_threshold()");

  const Index active = n_active_shards();
  // One detector replica per shard beyond the first (shard 0 scores through
  // the borrowed instance, mirroring the engine's own replica scheme). A
  // null clone marks the detector as non-replicable: every shard then
  // shares the borrowed instance and serialises engine calls on
  // shared_detector_mu_.
  share_detector_ = false;
  for (Index k = 1; k < active && !share_detector_; ++k) {
    shards_[static_cast<std::size_t>(k)].replica = detector_->clone_fitted();
    if (shards_[static_cast<std::size_t>(k)].replica == nullptr) share_detector_ = true;
  }
  if (share_detector_)
    for (Shard& shard : shards_) shard.replica.reset();

  for (Index k = 0; k < active; ++k) {
    Shard& shard = shards_[static_cast<std::size_t>(k)];
    core::AnomalyDetector& det = shard.replica ? *shard.replica : *detector_;
    shard.engine = std::make_unique<ScoringEngine>(det, *normalizer_, config_.engine);
    // Subset view: the engine sees this shard's streams under dense local
    // ids but reports scores under their global ids.
    const Index owned = partition_.n_owned(k, n_streams_);
    for (Index i = 0; i < owned; ++i) shard.engine->add_stream(partition_.global_of(k, i));
    shard.engine->set_threshold(threshold_);
    // Ring storage: one arena per shard backing every owned stream's ring —
    // two slab allocations instead of two per stream. Built before the
    // accepting_/started_ stores below, so any push that observes an open
    // intake also sees fully constructed rings.
    shard.arena =
        std::make_unique<RingArena>(owned, normalizer_->n_channels(), config_.ring_capacity);
    for (Index i = 0; i < owned; ++i)
      shard.rings.emplace_back(normalizer_->n_channels(), shard.arena->capacity(),
                               shard.arena->slots(i), shard.arena->data(i),
                               shard.arena->ts(i));
  }

  // accepting_ first: a push that observes started_ must find intake open.
  accepting_.store(true, std::memory_order_release);
  started_.store(true, std::memory_order_release);
  for (Index k = 0; k < active; ++k) {
    Shard& shard = shards_[static_cast<std::size_t>(k)];
    shard.scorer = std::thread([this, &shard] { shard_loop(shard); });
  }
}

AsyncScoringRuntime::StreamIngest& AsyncScoringRuntime::ingest_at(Index stream) {
  // Branch before building the message: this sits on the per-sample push
  // path, which must not allocate on success. Global bounds and global
  // wording — the shard remap below cannot produce an out-of-range local.
  if (stream < 0 || stream >= n_streams_)
    throw Error(stream_range_message(stream, n_streams_));
  return shards_[static_cast<std::size_t>(partition_.shard_of(stream))]
      .ingest[static_cast<std::size_t>(partition_.local_of(stream))];
}

const AsyncScoringRuntime::StreamIngest& AsyncScoringRuntime::ingest_at(Index stream) const {
  if (stream < 0 || stream >= n_streams_)
    throw Error(stream_range_message(stream, n_streams_));
  return shards_[static_cast<std::size_t>(partition_.shard_of(stream))]
      .ingest[static_cast<std::size_t>(partition_.local_of(stream))];
}

AsyncScoringRuntime::Shard& AsyncScoringRuntime::shard_at(Index shard) {
  check(shard >= 0 && shard < n_shards(),
        "shard id " + std::to_string(shard) + " out of range [0, " +
            std::to_string(n_shards()) + ")");
  return shards_[static_cast<std::size_t>(shard)];
}

const AsyncScoringRuntime::Shard& AsyncScoringRuntime::shard_at(Index shard) const {
  check(shard >= 0 && shard < n_shards(),
        "shard id " + std::to_string(shard) + " out of range [0, " +
            std::to_string(n_shards()) + ")");
  return shards_[static_cast<std::size_t>(shard)];
}

PushResult AsyncScoringRuntime::push(Index stream, const float* raw_sample, Index count) {
  return push(stream, raw_sample, count, config_.backpressure);
}

PushResult AsyncScoringRuntime::push(Index stream, const float* raw_sample, Index count,
                                     BackpressurePolicy policy) {
  StreamIngest& ingest = ingest_at(stream);
  if (count != normalizer_->n_channels())
    throw Error(detail::channel_mismatch_message(normalizer_->n_channels(), count));
  Shard& shard = shards_[static_cast<std::size_t>(partition_.shard_of(stream))];
  const auto local = static_cast<std::size_t>(partition_.local_of(stream));
  if (!started_.load(std::memory_order_acquire)) {
    // A closed runtime rejects (documented contract) even if it was never
    // started; pushing before start() on a live runtime is a usage error.
    if (closing_.load(std::memory_order_acquire)) {
      ingest.rejected.fetch_add(1, std::memory_order_relaxed);
      return PushResult::Rejected;
    }
    throw Error("push before start()");
  }

  // Intake gate: while the stream's active_pushers is held, close() will not
  // let the scorers finish — so a push that passes the accepting_ check is
  // guaranteed to be drained and scored. seq_cst on both gate accesses (and
  // on close()'s side) rules out the store-buffering interleaving where
  // close() misses the counter and this push misses the accepting_ flip.
  ingest.active_pushers.fetch_add(1, std::memory_order_seq_cst);
  PushResult result = PushResult::Rejected;
  if (accepting_.load(std::memory_order_seq_cst)) {
    // Safe to touch only here: an open intake implies start() finished
    // building the shard's arena-backed rings (release/acquire on started_).
    SampleRing& ring = shard.rings[local];
    // Sampled end-to-end latency: every kPushSampleEvery-th accepted push on
    // a stream stamps the ring slot with its enqueue time; the timestamp
    // rides the lane to the engine and is recorded when the sample's round
    // completes. One relaxed load + mask when telemetry is on, nothing at
    // all when compiled off.
    std::int64_t enqueue_ns = 0;
    if constexpr (obs::kEnabled) {
      if ((ingest.pushed.load(std::memory_order_relaxed) & (kPushSampleEvery - 1)) == 0)
        enqueue_ns = obs::now_ns();
    }
    bool dropped_any = false;
    Backoff backoff;
    for (;;) {
      if (ring.try_push(raw_sample, enqueue_ns)) {
        result = dropped_any ? PushResult::DroppedOldest : PushResult::Ok;
        break;
      }
      if (policy == BackpressurePolicy::Reject) break;
      if (policy == BackpressurePolicy::DropOldest) {
        // Evict from the consumer side (lock-free multi-popper ring); the
        // scorer may empty the ring first, in which case the retry just
        // succeeds without a drop.
        if (ring.try_pop_discard()) {
          ingest.dropped.fetch_add(1, std::memory_order_relaxed);
          dropped_any = true;
        }
        continue;
      }
      // Block: wait for the shard's scorer to free a slot; bail out if the
      // runtime closes under us.
      if (!accepting_.load(std::memory_order_acquire)) break;
      backoff.wait();
    }
    if (result == PushResult::Rejected) {
      ingest.rejected.fetch_add(1, std::memory_order_relaxed);
    } else {
      ingest.pushed.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    ingest.rejected.fetch_add(1, std::memory_order_relaxed);
  }
  ingest.active_pushers.fetch_sub(1, std::memory_order_release);

  // Only the owning shard's scorer cares about this sample.
  if (result != PushResult::Rejected && shard.asleep.load(std::memory_order_acquire))
    wake_shard(shard);
  return result;
}

PushResult AsyncScoringRuntime::push(Index stream, const std::vector<float>& raw_sample) {
  return push(stream, raw_sample, config_.backpressure);
}

PushResult AsyncScoringRuntime::push(Index stream, const std::vector<float>& raw_sample,
                                     BackpressurePolicy policy) {
  return push(stream, raw_sample.data(), static_cast<Index>(raw_sample.size()), policy);
}

void AsyncScoringRuntime::wake_shard(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.wake_mu);
  shard.wake_cv.notify_one();
}

long AsyncScoringRuntime::drain_ring(Shard& shard, Index local, bool bounded) {
  SampleRing& ring = shard.rings[static_cast<std::size_t>(local)];
  ScoringEngine& engine = *shard.engine;
  const Index channels = ring.channels();
  const Index max_pops = bounded ? ring.capacity() : -1;
  long drained = 0;
  for (Index k = 0; max_pops < 0 || k < max_pops; ++k) {
    // Zero-copy: the engine buffers the sample straight from the ring slot;
    // no staging vector in between. The telemetry timestamp lane rides along
    // into the engine's pending arena.
    if (!ring.try_pop_with([&](const float* sample, std::int64_t enqueue_ns) {
          engine.push(local, sample, channels, enqueue_ns);
        }))
      break;
    ++drained;
  }
  return drained;
}

void AsyncScoringRuntime::emit(Shard& shard, std::vector<StreamScore> scores) {
  if (scores.empty()) return;
  // The one choke point every emitted score passes (steady-state rounds and
  // the final close() drain alike), so this counter is the ground truth for
  // "scored": after close(), scored == pushed - dropped.
  shard.scored.fetch_add(static_cast<long>(scores.size()), std::memory_order_relaxed);
  if (callback_) {
    // Serialised across shards so user callbacks never run concurrently;
    // per-stream order is preserved (a stream has exactly one shard).
    std::lock_guard<std::mutex> lock(callback_mu_);
    for (const StreamScore& s : scores) callback_(s);
    return;
  }
  std::lock_guard<std::mutex> lock(shard.results_mu);
  shard.results.insert(shard.results.end(), scores.begin(), scores.end());
}

std::vector<StreamScore> AsyncScoringRuntime::drain_scores() {
  std::vector<StreamScore> out;
  const Index active = n_active_shards();
  for (Index k = 0; k < active; ++k) {
    Shard& shard = shards_[static_cast<std::size_t>(k)];
    std::lock_guard<std::mutex> lock(shard.results_mu);
    if (out.empty()) {
      out.swap(shard.results);
    } else {
      out.insert(out.end(), shard.results.begin(), shard.results.end());
      shard.results.clear();
    }
  }
  return out;
}

void AsyncScoringRuntime::shard_loop(Shard& shard) {
  shard.tid.store(std::this_thread::get_id(), std::memory_order_relaxed);
  try {
    shard_loop_impl(shard);
  } catch (...) {
    // Shut intake and exit; close() rethrows after the join. Samples still
    // buffered in this shard's rings at this point are not scored.
    shard.error = std::current_exception();
    accepting_.store(false, std::memory_order_release);
  }
}

void AsyncScoringRuntime::shard_loop_impl(Shard& shard) {
  const auto n = static_cast<Index>(shard.rings.size());
  // Engine calls go through here so the non-replicable fallback (all shards
  // share the borrowed detector) serialises scoring without touching the
  // replicated fast path. Ring drains stay concurrent either way: push()
  // into an engine only buffers into that engine's own stream state.
  const auto step_engine = [&]() -> std::vector<StreamScore> {
    if (share_detector_) {
      std::lock_guard<std::mutex> lock(shared_detector_mu_);
      return shard.engine->step();
    }
    return shard.engine->step();
  };
  // Nap escalation, per shard: producers that observe this shard asleep
  // notify under its mutex, so a sleeping shard wakes immediately when its
  // own traffic resumes — and an idle shard sleeps through other shards'
  // traffic instead of busy-spinning. The timeout only backstops the rare
  // stale-asleep-read window; doubling it while consecutively idle lets a
  // quiet shard go properly to sleep instead of burning ~2000 wakeups/s.
  constexpr std::chrono::microseconds kNapFloor{500};
  constexpr std::chrono::microseconds kNapCeiling{50000};
  std::chrono::microseconds nap = kNapFloor;
  int idle = 0;
  // Set at every nap exit; the next productive drain sweep records the
  // wake-to-drain latency and clears it. Scorer-thread-local by design.
  std::int64_t wake_marker = 0;
  for (;;) {
    // One round: drain this shard's rings round-robin into its engine (each
    // ring FIFO, so per-stream producer order is preserved), then score. At
    // most one ring's worth per stream per round, so a hot producer
    // refilling its ring cannot starve the shard's other streams.
    const std::int64_t t_round = obs::tick();
    long drained = 0;
    for (Index i = 0; i < n; ++i) drained += drain_ring(shard, i, /*bounded=*/true);
    if (drained > 0) {
      idle = 0;
      nap = kNapFloor;
      if constexpr (obs::kEnabled) {
        const std::int64_t t_drained = obs::now_ns();
        shard.drain_hist.record(t_drained - t_round);
        if (wake_marker != 0) {
          shard.wake_hist.record(t_drained - wake_marker);
          wake_marker = 0;
        }
      }
      std::vector<StreamScore> scores = step_engine();
      const std::int64_t t_emit = obs::tick();
      emit(shard, std::move(scores));
      if constexpr (obs::kEnabled) {
        const std::int64_t t_done = obs::now_ns();
        shard.emit_hist.record(t_done - t_emit);
        shard.round_hist.record(t_done - t_round);
      }
      shard.rounds.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // All rings looked empty — but that scan may predate a producer's last
    // push (the scan and the push/close() handoff can interleave). stop_ is
    // raised only after intake is shut and every in-flight push has landed,
    // so one more full drain observed AFTER the stop_ load sees everything
    // that will ever arrive; only then is exiting safe.
    if (stop_.load(std::memory_order_acquire)) {
      long final_drained = 0;
      for (Index i = 0; i < n; ++i) final_drained += drain_ring(shard, i, false);
      if (final_drained > 0) {
        emit(shard, step_engine());
        shard.rounds.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    if (++idle < config_.idle_spin_rounds) {
      std::this_thread::yield();
      continue;
    }
    // Nap until one of this shard's producers (or close()) wakes it. The
    // ring re-check happens after asleep is set under the mutex; a producer
    // that misses the flag pushed early enough for that re-check to see its
    // sample, and the timeout bounds any residual visibility latency.
    bool timed_out = false;
    {
      std::unique_lock<std::mutex> lock(shard.wake_mu);
      shard.asleep.store(true, std::memory_order_release);
      bool pending = stop_.load(std::memory_order_acquire);
      for (Index i = 0; i < n && !pending; ++i)
        pending = !shard.rings[static_cast<std::size_t>(i)].empty_approx();
      if (!pending) {
        shard.naps.fetch_add(1, std::memory_order_relaxed);
        timed_out = shard.wake_cv.wait_for(lock, nap) == std::cv_status::timeout;
      }
      shard.asleep.store(false, std::memory_order_release);
    }
    // Every nap-block exit is a wake (cv notify, timeout, or the pending
    // re-check firing); the next productive drain records the gap.
    wake_marker = obs::tick();
    if (timed_out) {
      // Still quiet: back off harder, and go straight to the next nap after
      // one ring scan (skip the yield rounds — they are for active traffic).
      nap = std::min(nap * 2, kNapCeiling);
      idle = config_.idle_spin_rounds;
    } else {
      nap = kNapFloor;
      idle = 0;
    }
  }
}

void AsyncScoringRuntime::close() {
  // Self-join guard: close() from a scoring thread (i.e. inside an on_score
  // callback) would deadlock; fail loudly instead. The throw lands in
  // shard_loop's catch and surfaces from the real close() call. An unstarted
  // runtime's tids are the default id, which matches no running thread.
  const std::thread::id self = std::this_thread::get_id();
  for (const Shard& shard : shards_)
    check(self != shard.tid.load(std::memory_order_relaxed),
          "close() must not be called from a scoring thread (on_score callback)");
  // First caller performs the shutdown; any concurrent caller waits for it.
  if (closing_.exchange(true, std::memory_order_acq_rel)) {
    Backoff spin;
    while (!closed()) spin.wait();
    return;
  }
  if (!started_.load(std::memory_order_acquire)) {
    closed_.store(true, std::memory_order_release);
    return;
  }
  // 1. Shut intake: new pushes reject, Block-policy pushes unblock. seq_cst
  //    pairs with the gate in push() — see the header comment.
  accepting_.store(false, std::memory_order_seq_cst);
  // 2. Wait for in-flight pushes, so every accepted sample is in a ring.
  Backoff backoff;
  for (Shard& shard : shards_) {
    for (StreamIngest& ingest : shard.ingest) {
      while (ingest.active_pushers.load(std::memory_order_seq_cst) > 0) backoff.wait();
      backoff.reset();
    }
  }
  // 3. Tell every scorer to drain to empty and exit, and join them all.
  stop_.store(true, std::memory_order_release);
  const Index active = n_active_shards();
  for (Index k = 0; k < active; ++k) wake_shard(shards_[static_cast<std::size_t>(k)]);
  std::exception_ptr first_error;
  for (Index k = 0; k < active; ++k) {
    Shard& shard = shards_[static_cast<std::size_t>(k)];
    shard.scorer.join();
    // Clear the published id: a future thread recycling it must not trip
    // the self-join guard on a (legal, idempotent) later close().
    shard.tid.store(std::thread::id{}, std::memory_order_relaxed);
    if (shard.error && !first_error) first_error = shard.error;
  }
  closed_.store(true, std::memory_order_release);
  if (first_error) std::rethrow_exception(first_error);
}

IngestStats AsyncScoringRuntime::stats(Index stream) const {
  const StreamIngest& ingest = ingest_at(stream);
  IngestStats s;
  s.pushed = ingest.pushed.load(std::memory_order_relaxed);
  s.dropped = ingest.dropped.load(std::memory_order_relaxed);
  s.rejected = ingest.rejected.load(std::memory_order_relaxed);
  return s;
}

RuntimeStats AsyncScoringRuntime::stats() const {
  RuntimeStats total;
  total.streams.reserve(static_cast<std::size_t>(n_streams_));
  for (Index s = 0; s < n_streams_; ++s) {
    total.streams.push_back(stats(s));
    total.pushed += total.streams.back().pushed;
    total.dropped += total.streams.back().dropped;
    total.rejected += total.streams.back().rejected;
  }
  total.shards.reserve(static_cast<std::size_t>(n_shards()));
  for (Index k = 0; k < n_shards(); ++k) {
    total.shards.push_back(shard_stats(k));
    total.rounds += total.shards.back().rounds;
    total.naps += total.shards.back().naps;
    total.scored += total.shards.back().scored;
  }
  return total;
}

long AsyncScoringRuntime::rounds() const {
  long total = 0;
  for (const Shard& shard : shards_) total += shard.rounds.load(std::memory_order_relaxed);
  return total;
}

ShardStats AsyncScoringRuntime::shard_stats(Index shard) const {
  const Shard& sh = shard_at(shard);
  ShardStats s;
  s.n_streams = static_cast<Index>(sh.ingest.size());
  s.rounds = sh.rounds.load(std::memory_order_relaxed);
  s.naps = sh.naps.load(std::memory_order_relaxed);
  s.scored = sh.scored.load(std::memory_order_relaxed);
  return s;
}

void ShardTelemetry::merge(const ShardTelemetry& other) {
  round.merge(other.round);
  drain.merge(other.drain);
  emit.merge(other.emit);
  wake_to_drain.merge(other.wake_to_drain);
  engine.merge(other.engine);
}

RuntimeTelemetry AsyncScoringRuntime::telemetry() const {
  RuntimeTelemetry t;
  const Index active = n_active_shards();
  t.shards.reserve(static_cast<std::size_t>(active));
  for (Index k = 0; k < active; ++k) {
    const Shard& sh = shards_[static_cast<std::size_t>(k)];
    ShardTelemetry st;
    st.round = sh.round_hist.snapshot();
    st.drain = sh.drain_hist.snapshot();
    st.emit = sh.emit_hist.snapshot();
    st.wake_to_drain = sh.wake_hist.snapshot();
    // The engine exists only once start() ran; its histograms are atomic,
    // so snapshotting while the scorer runs is safe.
    if (sh.engine) st.engine = sh.engine->telemetry();
    t.total.merge(st);
    t.shards.push_back(std::move(st));
  }
  return t;
}

void AsyncScoringRuntime::require_quiescent(const char* what) const {
  check(!started_.load(std::memory_order_acquire) || closed(),
        std::string(what) + " races with the scoring threads: call it before start() or after "
                            "close()");
}

void AsyncScoringRuntime::require_started_shards(const char* what) const {
  check(started_.load(std::memory_order_acquire),
        std::string(what) + " before start(): the shard engines are built by start()");
}

bool AsyncScoringRuntime::in_alarm(Index stream) const {
  require_quiescent("in_alarm()");
  ingest_at(stream);  // global bounds check, global wording
  const Shard& shard = shards_[static_cast<std::size_t>(partition_.shard_of(stream))];
  if (!shard.engine) return false;  // never started: empty stream state
  return shard.engine->in_alarm(partition_.local_of(stream));
}

const std::vector<core::AnomalyEvent>& AsyncScoringRuntime::events(Index stream) const {
  require_quiescent("events()");
  ingest_at(stream);  // global bounds check, global wording
  const Shard& shard = shards_[static_cast<std::size_t>(partition_.shard_of(stream))];
  if (!shard.engine) {
    static const std::vector<core::AnomalyEvent> kNoEvents;
    return kNoEvents;  // never started: empty stream state
  }
  return shard.engine->events(partition_.local_of(stream));
}

Index AsyncScoringRuntime::samples_seen(Index stream) const {
  require_quiescent("samples_seen()");
  ingest_at(stream);  // global bounds check, global wording
  const Shard& shard = shards_[static_cast<std::size_t>(partition_.shard_of(stream))];
  if (!shard.engine) return 0;  // never started: empty stream state
  return shard.engine->samples_seen(partition_.local_of(stream));
}

const ScoringEngine& AsyncScoringRuntime::shard_engine(Index shard) const {
  require_quiescent("shard_engine()");
  require_started_shards("shard_engine()");
  const Shard& sh = shard_at(shard);
  check(sh.engine != nullptr, "shard " + std::to_string(shard) + " owns no streams");
  return *sh.engine;
}

const ScoringEngine& AsyncScoringRuntime::engine() const {
  require_quiescent("engine()");
  check(n_shards() == 1, "engine() on a sharded runtime: use shard_engine(shard)");
  require_started_shards("engine()");
  return *shards_.front().engine;
}

}  // namespace varade::serve
