#include "varade/core/varade.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "varade/core/trainer.hpp"
#include "varade/nn/optimizer.hpp"
#include "varade/nn/serialize.hpp"

namespace varade::core {

namespace {

// Adapter exposing a VaradeModel's parameters through the nn::Module
// interface so the weight serializer can stream them.
class VaradeParams : public nn::Module {
 public:
  explicit VaradeParams(VaradeModel& model) : model_(&model) {}
  Tensor forward(const Tensor&) override { fail("VaradeParams is serialization-only"); }
  Tensor backward(const Tensor&) override { fail("VaradeParams is serialization-only"); }
  std::vector<nn::Parameter*> parameters() override { return model_->parameters(); }
  std::string name() const override { return "VaradeParams"; }
  Shape output_shape(const Shape& in) const override { return in; }
  long flops(const Shape&) const override { return 0; }

 private:
  VaradeModel* model_;
};

constexpr char kDetectorMagic[4] = {'V', 'R', 'D', 'D'};
constexpr std::uint32_t kDetectorVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  check(static_cast<bool>(in), "unexpected end of detector file");
  return v;
}

}  // namespace

Index varade_layer_count(Index window) {
  check(window >= 8, "VARADE window must be >= 8");
  check((window & (window - 1)) == 0, "VARADE window must be a power of two");
  // Halve the time dimension until it reaches 2: log2(T) - 1 layers
  // (paper: T=512 -> 8 conv layers).
  Index n = 0;
  for (Index t = window; t > 2; t /= 2) ++n;
  return n;
}

VaradeModel::VaradeModel(Index in_channels, const VaradeConfig& config, Rng& rng)
    : in_channels_(in_channels),
      window_(config.window),
      n_conv_layers_(varade_layer_count(config.window)) {
  check(in_channels > 0, "VARADE needs at least one input channel");
  check(config.base_channels > 0, "base_channels must be positive");

  // Conv cascade: kernel 2 / stride 2, feature maps doubling every 2 layers.
  Index ch_in = in_channels;
  Index ch_out = config.base_channels;
  for (Index layer = 0; layer < n_conv_layers_; ++layer) {
    if (layer > 0 && layer % 2 == 0 && config.channel_doubling) ch_out *= 2;
    trunk_.emplace<nn::Conv1d>(ch_in, ch_out, 2, 2, 0, rng);
    trunk_.emplace<nn::ReLU>();
    ch_in = ch_out;
  }
  trunk_.emplace<nn::Flatten>();

  const Index feature_dim = ch_in * 2;  // final time dimension is 2
  mu_head_ = std::make_unique<nn::Linear>(feature_dim, in_channels, rng);
  logvar_head_ = std::make_unique<nn::Linear>(feature_dim, in_channels, rng);
}

VaradeModel::Output VaradeModel::forward(const Tensor& x) {
  check(x.rank() == 3 && x.dim(1) == in_channels_ && x.dim(2) == window_,
        "VARADE forward expects [N, " + std::to_string(in_channels_) + ", " +
            std::to_string(window_) + "], got " + shape_to_string(x.shape()));
  const Tensor features = trunk_.forward(x);
  Output out;
  out.mu = mu_head_->forward(features);
  out.logvar = logvar_head_->forward(features);
  return out;
}

VaradeModel::Output VaradeModel::forward_inference(const Tensor& x) {
  check(x.rank() == 3 && x.dim(1) == in_channels_ && x.dim(2) == window_,
        "VARADE forward expects [N, " + std::to_string(in_channels_) + ", " +
            std::to_string(window_) + "], got " + shape_to_string(x.shape()));
  const Tensor features = trunk_.forward_inference(x);
  Output out;
  out.mu = mu_head_->forward_inference(features);
  out.logvar = logvar_head_->forward_inference(features);
  return out;
}

void VaradeModel::backward(const Tensor& grad_mu, const Tensor& grad_logvar) {
  Tensor grad_features = mu_head_->backward(grad_mu);
  grad_features += logvar_head_->backward(grad_logvar);
  trunk_.backward(grad_features);
}

std::vector<nn::Parameter*> VaradeModel::parameters() {
  std::vector<nn::Parameter*> ps = trunk_.parameters();
  for (nn::Parameter* p : mu_head_->parameters()) ps.push_back(p);
  for (nn::Parameter* p : logvar_head_->parameters()) ps.push_back(p);
  return ps;
}

void VaradeModel::zero_grad() {
  for (nn::Parameter* p : parameters()) p->grad.zero();
}

long VaradeModel::num_params() {
  long n = 0;
  for (nn::Parameter* p : parameters()) n += p->value.numel();
  return n;
}

long VaradeModel::flops() const {
  const Shape in{in_channels_, window_};
  long total = trunk_.flops(in);
  const Shape feat = trunk_.output_shape(in);
  total += mu_head_->flops(feat) + logvar_head_->flops(feat);
  return total;
}

VaradeDetector::VaradeDetector(VaradeConfig config) : config_(config) {
  check(config_.lambda >= 0.0F, "KL weight lambda must be non-negative");
  check(config_.epochs >= 1, "epochs must be >= 1");
}

void VaradeDetector::fit(const data::MultivariateSeries& train) {
  check(train.length() > config_.window + 1,
        "VARADE training series shorter than one window");
  Rng rng(config_.seed);
  model_ = std::make_unique<VaradeModel>(train.n_channels(), config_, rng);

  const data::WindowDataset dataset(train, {config_.window, config_.train_stride});
  check(dataset.size() > 0, "no training windows available");

  nn::Adam optimizer(config_.learning_rate);
  auto params = model_->parameters();
  loss_history_.clear();

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto batches = make_batches(dataset.size(), config_.batch_size, rng);
    double epoch_loss = 0.0;
    long n_batches = 0;
    for (const auto& batch : batches) {
      Tensor contexts;
      Tensor targets;
      dataset.gather(batch, contexts, targets);

      model_->zero_grad();
      VaradeModel::Output out = model_->forward(contexts);
      const nn::VariationalLossResult loss =
          nn::elbo_loss(out.mu, out.logvar, targets, config_.lambda);
      check(std::isfinite(loss.value), "VARADE training diverged (non-finite loss)");
      model_->backward(loss.grad_mu, loss.grad_logvar);
      nn::clip_grad_norm(params, config_.grad_clip);
      optimizer.step(params);

      epoch_loss += loss.value;
      ++n_batches;
    }
    const float mean_loss = static_cast<float>(epoch_loss / std::max(1L, n_batches));
    loss_history_.push_back(mean_loss);
    if (config_.verbose)
      std::printf("[VARADE] epoch %d/%d  loss %.5f\n", epoch + 1, config_.epochs, mean_loss);
  }
}

float VaradeDetector::score_from_logvar(const float* logvar, Index n) {
  // Mean predicted variance (section 3.2: "the variance is directly used as
  // an anomaly score").
  double acc = 0.0;
  for (Index i = 0; i < n; ++i) acc += std::exp(logvar[i]);
  return static_cast<float>(acc / static_cast<double>(n));
}

float VaradeDetector::variance_score(const Tensor& context) {
  check(fitted(), "VARADE scoring before fit");
  const Tensor batch = context.reshaped({1, context.dim(0), context.dim(1)});
  const VaradeModel::Output out = model_->forward_inference(batch);
  return score_from_logvar(out.logvar.data(), out.logvar.numel());
}

float VaradeDetector::forecast_error_score(const Tensor& context, const Tensor& observed) {
  check(fitted(), "VARADE scoring before fit");
  const Tensor batch = context.reshaped({1, context.dim(0), context.dim(1)});
  const VaradeModel::Output out = model_->forward_inference(batch);
  double acc = 0.0;
  for (Index i = 0; i < out.mu.numel(); ++i) {
    const double d = static_cast<double>(out.mu[i]) - observed[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

float VaradeDetector::score_step(const Tensor& context, const Tensor& /*observed*/) {
  // The variational score needs only the context: anomalies surface as
  // predicted-variance spikes one step ahead.
  return variance_score(context);
}

void VaradeDetector::score_batch(const Tensor& contexts, const Tensor& observed, float* out) {
  check(fitted(), "VARADE scoring before fit");
  check_batch_args(contexts, observed);
  const Index channels = contexts.dim(1);
  const Index b = contexts.dim(0);
  // B-axis split: each worker pushes its contiguous row range through the
  // shared (read-only) model. The trunk convolutions and heads compute every
  // batch row independently, so the split cannot change any output bit.
  const auto score_rows = [&](const Tensor& range, Index r0, Index r1) {
    const VaradeModel::Output range_out = model_->forward_inference(range);
    for (Index r = r0; r < r1; ++r)
      out[r] = score_from_logvar(range_out.logvar.data() + (r - r0) * channels, channels);
  };
  parallel_rows(b, [&](Index r0, Index r1) {
    if (r0 == 0 && r1 == b)
      score_rows(contexts, r0, r1);  // full batch: skip the slice copy
    else
      score_rows(contexts.slice0(r0, r1), r0, r1);
  });
}

std::unique_ptr<AnomalyDetector> VaradeDetector::clone_fitted() const {
  check(fitted(), "cannot clone an unfitted VARADE detector");
  auto clone = std::make_unique<VaradeDetector>(config_);
  Rng rng(config_.seed);
  clone->model_ = std::make_unique<VaradeModel>(model_->in_channels(), config_, rng);
  nn::copy_parameter_values(model_->parameters(), clone->model_->parameters());
  clone->loss_history_ = loss_history_;
  return clone;
}

void VaradeDetector::save(const std::string& path) const {
  check(fitted(), "cannot save an unfitted VARADE detector");
  std::ofstream f(path, std::ios::binary);
  check(f.is_open(), "cannot open for writing: " + path);
  f.write(kDetectorMagic, sizeof(kDetectorMagic));
  write_pod(f, kDetectorVersion);
  write_pod(f, static_cast<std::int64_t>(model_->in_channels()));
  write_pod(f, static_cast<std::int64_t>(config_.window));
  write_pod(f, static_cast<std::int64_t>(config_.base_channels));
  write_pod(f, config_.lambda);
  VaradeParams params(*model_);
  nn::save_weights(params, f);
  check(static_cast<bool>(f), "failed writing detector file");
}

void VaradeDetector::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.is_open(), "cannot open for reading: " + path);
  char magic[4];
  f.read(magic, sizeof(magic));
  check(static_cast<bool>(f) && std::memcmp(magic, kDetectorMagic, 4) == 0,
        "not a VARADE detector file (bad magic)");
  const auto version = read_pod<std::uint32_t>(f);
  check(version == kDetectorVersion,
        "unsupported detector file version " + std::to_string(version));
  const auto in_channels = static_cast<Index>(read_pod<std::int64_t>(f));
  check(in_channels > 0 && in_channels < (1 << 20), "implausible channel count");
  config_.window = static_cast<Index>(read_pod<std::int64_t>(f));
  config_.base_channels = static_cast<Index>(read_pod<std::int64_t>(f));
  config_.lambda = read_pod<float>(f);

  Rng rng(config_.seed);
  model_ = std::make_unique<VaradeModel>(in_channels, config_, rng);
  VaradeParams params(*model_);
  nn::load_weights(params, f);
  loss_history_.clear();
}

edge::ModelCost VaradeDetector::cost() const {
  check(fitted(), "VARADE cost before fit");
  edge::ModelCost cost;
  cost.name = name();
  cost.flops = static_cast<double>(model_->flops());
  long param_bytes = 0;
  for (nn::Parameter* p : const_cast<VaradeModel*>(model_.get())->parameters())
    param_bytes += p->value.numel() * static_cast<long>(sizeof(float));
  cost.param_bytes = static_cast<double>(param_bytes);
  // Activations shrink geometrically; bounded by 2x the first conv output.
  cost.activation_bytes =
      2.0 * static_cast<double>(config_.base_channels) * static_cast<double>(config_.window) / 2.0 *
      sizeof(float);
  cost.n_ops = 3 * static_cast<int>(model_->n_layers()) + 6;  // conv/bias/relu + heads
  cost.runs_on_gpu = true;
  cost.parallel_efficiency = 0.85;  // dense conv kernels map well to the GPU
  cost.preprocess_flops =
      static_cast<double>(model_->in_channels()) * static_cast<double>(config_.window) * 4.0;
  return cost;
}

}  // namespace varade::core
