#include "varade/core/baselines/ar_lstm.hpp"

#include <cmath>
#include <cstdio>

#include "varade/core/trainer.hpp"
#include "varade/nn/loss.hpp"
#include "varade/nn/optimizer.hpp"

namespace varade::core {

ArLstmDetector::ArLstmDetector(ArLstmConfig config) : config_(config) {
  check(config_.n_layers >= 1, "AR-LSTM needs at least one recurrent layer");
  check(config_.hidden >= 1, "AR-LSTM hidden size must be positive");
}

std::unique_ptr<nn::Sequential> ArLstmDetector::build_model(Index n_channels, Rng& rng) const {
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Lstm>(n_channels, config_.hidden, rng);
  for (int l = 1; l < config_.n_layers; ++l)
    model->emplace<nn::Lstm>(config_.hidden, config_.hidden, rng);
  model->emplace<nn::LastTimeStep>();
  // Two fully connected layers as per the paper.
  model->emplace<nn::Linear>(config_.hidden, config_.hidden / 2, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Linear>(config_.hidden / 2, n_channels, rng);
  return model;
}

std::unique_ptr<AnomalyDetector> ArLstmDetector::clone_fitted() const {
  check(fitted(), "cannot clone an unfitted AR-LSTM detector");
  auto clone = std::make_unique<ArLstmDetector>(config_);
  clone->n_channels_ = n_channels_;
  Rng rng(config_.seed);
  clone->model_ = build_model(n_channels_, rng);
  nn::copy_parameter_values(model_->parameters(), clone->model_->parameters());
  clone->loss_history_ = loss_history_;
  return clone;
}

void ArLstmDetector::fit(const data::MultivariateSeries& train) {
  check(train.length() > config_.window + 1, "AR-LSTM training series shorter than one window");
  n_channels_ = train.n_channels();
  Rng rng(config_.seed);
  model_ = build_model(n_channels_, rng);

  const data::WindowDataset dataset(train, {config_.window, config_.train_stride});
  check(dataset.size() > 0, "no training windows available");

  nn::Adam optimizer(config_.learning_rate);
  auto params = model_->parameters();
  loss_history_.clear();

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto batches = make_batches(dataset.size(), config_.batch_size, rng);
    double epoch_loss = 0.0;
    long n_batches = 0;
    for (const auto& batch : batches) {
      Tensor contexts;
      Tensor targets;
      dataset.gather(batch, contexts, targets);

      model_->zero_grad();
      const Tensor pred = model_->forward(contexts);
      const nn::LossResult loss = nn::mse_loss(pred, targets);
      check(std::isfinite(loss.value), "AR-LSTM training diverged (non-finite loss)");
      model_->backward(loss.grad);
      nn::clip_grad_norm(params, config_.grad_clip);
      optimizer.step(params);

      epoch_loss += loss.value;
      ++n_batches;
    }
    const float mean_loss = static_cast<float>(epoch_loss / std::max(1L, n_batches));
    loss_history_.push_back(mean_loss);
    if (config_.verbose)
      std::printf("[AR-LSTM] epoch %d/%d  loss %.5f\n", epoch + 1, config_.epochs, mean_loss);
  }
}

Tensor ArLstmDetector::forecast(const Tensor& context) {
  check(fitted(), "AR-LSTM forecast before fit");
  const Tensor batch = context.reshaped({1, context.dim(0), context.dim(1)});
  // Inference-only forward: identical arithmetic to forward(), no activation
  // caches — keeps score_step bit-identical while skipping the tape.
  return model_->forward_inference(batch).reshaped({n_channels_});
}

float ArLstmDetector::score_step(const Tensor& context, const Tensor& observed) {
  const Tensor pred = forecast(context);
  double acc = 0.0;
  for (Index i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pred[i]) - observed[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

void ArLstmDetector::score_batch(const Tensor& contexts, const Tensor& observed, float* out) {
  check(fitted(), "AR-LSTM scoring before fit");
  check_batch_args(contexts, observed);
  check_batch_channels(contexts, n_channels_);
  const Index b = contexts.dim(0);
  const Index c = contexts.dim(1);
  if (b == 0) return;
  // Each worker runs the inference kernel on a contiguous row range of the
  // batch. The LSTM processes batch rows independently (per-row arithmetic
  // is identical at any batch size), so splitting the B axis keeps scores
  // bit-identical to the one-call path; inference reads the weights only.
  const auto score_rows = [&](const Tensor& range, Index r0, Index r1) {
    const Tensor pred = model_->forward_inference(range);  // [r1-r0, C]
    for (Index r = r0; r < r1; ++r) {
      double acc = 0.0;
      for (Index ch = 0; ch < c; ++ch) {
        const double d = static_cast<double>(pred[(r - r0) * c + ch]) - observed[r * c + ch];
        acc += d * d;
      }
      out[r] = static_cast<float>(std::sqrt(acc));
    }
  };
  parallel_rows(b, [&](Index r0, Index r1) {
    if (r0 == 0 && r1 == b)
      score_rows(contexts, r0, r1);  // full batch: skip the slice copy
    else
      score_rows(contexts.slice0(r0, r1), r0, r1);
  });
}

edge::ModelCost ArLstmDetector::cost() const {
  check(fitted(), "AR-LSTM cost before fit");
  edge::ModelCost cost;
  cost.name = name();
  const Shape in{n_channels_, config_.window};
  cost.flops = static_cast<double>(model_->flops(in));
  long param_bytes = 0;
  for (nn::Parameter* p : model_->parameters())
    param_bytes += p->value.numel() * static_cast<long>(sizeof(float));
  cost.param_bytes = static_cast<double>(param_bytes);
  cost.activation_bytes =
      static_cast<double>(config_.n_layers) * config_.hidden * config_.window * sizeof(float);
  // Recurrence serialises execution: the framework dispatches per layer per
  // time chunk (cuDNN processes ~32-step chunks), which is what makes the
  // AR-LSTM slow despite high GPU utilisation (paper section 4.4).
  cost.n_ops = config_.n_layers * static_cast<int>(std::max<Index>(1, config_.window / 36)) + 2;
  cost.runs_on_gpu = true;
  cost.gpu_resident_spin = true;  // persistent recurrent kernels
  cost.parallel_efficiency = 0.35;
  cost.preprocess_flops = static_cast<double>(n_channels_) * config_.window * 4.0;
  return cost;
}

}  // namespace varade::core
