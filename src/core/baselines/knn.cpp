#include "varade/core/baselines/knn.hpp"

namespace varade::core {

KnnDetector::KnnDetector(KnnDetectorConfig config)
    : config_([&config] {
        config.knn.max_reference_points = config.max_reference_points;
        return config;
      }()),
      scorer_(config_.knn) {}

void KnnDetector::fit(const data::MultivariateSeries& train) {
  check(train.length() > 0, "kNN training series is empty");
  n_channels_ = train.n_channels();
  scorer_.fit(train.to_tensor());
}

float KnnDetector::score_step(const Tensor& /*context*/, const Tensor& observed) {
  check(fitted(), "kNN scoring before fit");
  return scorer_.score_one(observed);
}

void KnnDetector::score_batch(const Tensor& contexts, const Tensor& observed, float* out) {
  check(fitted(), "kNN scoring before fit");
  check_batch_args(contexts, observed);
  check_batch_channels(contexts, scorer_.n_features());
  const Index c = observed.dim(1);
  // Rows are independent queries against the shared (read-only) reference
  // set, so a contiguous row range per worker keeps bit parity trivially.
  parallel_rows(observed.dim(0), [&](Index r0, Index r1) {
    for (Index r = r0; r < r1; ++r) out[r] = scorer_.score_one(observed.data() + r * c);
  });
}

std::unique_ptr<AnomalyDetector> KnnDetector::clone_fitted() const {
  check(fitted(), "cannot clone an unfitted kNN detector");
  auto clone = std::make_unique<KnnDetector>(config_);
  clone->n_channels_ = n_channels_;
  clone->scorer_ = scorer_;
  return clone;
}

edge::ModelCost KnnDetector::cost() const {
  check(fitted(), "kNN cost before fit");
  edge::ModelCost cost;
  cost.name = name();
  const double n_ref = static_cast<double>(scorer_.reference_size());
  const double d = static_cast<double>(n_channels_);
  // Brute-force distances: ~3 passes over the reference matrix (numpy-style
  // (x-y)^2 expansion) as sklearn does on a dense float64 matrix.
  cost.flops = 3.0 * 2.0 * n_ref * d;
  cost.ref_bytes = n_ref * d * 8.0;  // float64 in the original stack
  cost.param_bytes = 0.0;
  cost.activation_bytes = n_ref * 8.0;  // distance vector
  cost.n_ops = 1;
  cost.runs_on_gpu = false;
  // The distance kernel is memory-bound and scales poorly across cores
  // (paper: "kNN cannot fully benefit from GPU parallelism ... leading to
  // high power draw"): effective throughput ~11% of peak.
  cost.parallel_efficiency = 0.11;
  cost.cpu_threads = 64;  // uses every core available
  cost.preprocess_flops = d * 4.0;
  return cost;
}

}  // namespace varade::core
