#include "varade/core/baselines/gbrf.hpp"

#include <cmath>

#include "varade/data/window.hpp"

namespace varade::core {

GbrfDetector::GbrfDetector(GbrfDetectorConfig config)
    : config_(config), forest_(config.forest) {
  check(config_.feature_steps >= 1 && config_.feature_steps <= config_.window,
        "feature_steps must be in [1, window]");
}

void GbrfDetector::gather_features(const float* context, Index c, Index t, float* out) const {
  // Sample `feature_steps` time points, most-recent first, evenly spaced.
  const Index hop = std::max<Index>(1, t / config_.feature_steps);
  Index k = 0;
  for (Index s = 0; s < config_.feature_steps; ++s) {
    const Index col = t - 1 - s * hop;
    for (Index ch = 0; ch < c; ++ch) out[k++] = context[ch * t + col];
  }
}

Tensor GbrfDetector::features_from_context(const Tensor& context) const {
  const Index c = context.dim(0);
  const Index t = context.dim(1);
  Tensor features({c * config_.feature_steps});
  gather_features(context.data(), c, t, features.data());
  return features;
}

void GbrfDetector::fit(const data::MultivariateSeries& train) {
  check(train.length() > config_.window + 1, "GBRF training series shorter than one window");
  n_channels_ = train.n_channels();

  // Build the (features, next-sample) regression problem. Training windows
  // hop by window/4 — boosted trees need far fewer, less-correlated samples
  // than SGD-trained networks.
  const Index stride = std::max<Index>(1, config_.window / 4);
  const data::WindowDataset dataset(train, {config_.window, stride});
  check(dataset.size() >= 8, "too few windows to fit GBRF");

  const Index n = dataset.size();
  const Index d = feature_dim();
  Tensor x({n, d});
  Tensor y({n, n_channels_});
  for (Index i = 0; i < n; ++i) {
    const Tensor f = features_from_context(dataset.context(i));
    for (Index j = 0; j < d; ++j) x[i * d + j] = f[j];
    const Tensor target = dataset.target(i);
    for (Index ch = 0; ch < n_channels_; ++ch) y[i * n_channels_ + ch] = target[ch];
  }
  forest_.fit(x, y);
}

Tensor GbrfDetector::forecast(const Tensor& context) const {
  check(fitted(), "GBRF forecast before fit");
  return forest_.predict_one(features_from_context(context));
}

std::unique_ptr<AnomalyDetector> GbrfDetector::clone_fitted() const {
  check(fitted(), "cannot clone an unfitted GBRF detector");
  auto clone = std::make_unique<GbrfDetector>(config_);
  clone->n_channels_ = n_channels_;
  clone->forest_ = forest_;
  return clone;
}

float GbrfDetector::score_step(const Tensor& context, const Tensor& observed) {
  const Tensor pred = forecast(context);
  double acc = 0.0;
  for (Index i = 0; i < pred.numel(); ++i) {
    const double diff = static_cast<double>(pred[i]) - observed[i];
    acc += diff * diff;
  }
  return static_cast<float>(std::sqrt(acc));
}

void GbrfDetector::score_batch(const Tensor& contexts, const Tensor& observed, float* out) {
  check(fitted(), "GBRF scoring before fit");
  check_batch_args(contexts, observed);
  check_batch_channels(contexts, n_channels_);
  const Index b = contexts.dim(0);
  const Index c = contexts.dim(1);
  const Index t = contexts.dim(2);
  if (b == 0) return;
  // Downsample every context into one [B, C * feature_steps] matrix, then
  // traverse each boosted ensemble tree-major over all rows at once.
  const Index d = feature_dim();
  Tensor features({b, d});
  Tensor pred({b, c});
  // The whole pipeline runs per row range (downsample, tree-major ensemble
  // sweep, residual): ranges touch disjoint rows of features/pred/out, and
  // per-row accumulation order is independent of the range boundaries.
  parallel_rows(b, [&](Index r0, Index r1) {
    for (Index r = r0; r < r1; ++r)
      gather_features(contexts.data() + r * c * t, c, t, features.data() + r * d);
    forest_.predict_rows(features.data() + r0 * d, r1 - r0, d, pred.data() + r0 * c);
    for (Index r = r0; r < r1; ++r) {
      double acc = 0.0;
      for (Index ch = 0; ch < c; ++ch) {
        const double diff = static_cast<double>(pred[r * c + ch]) - observed[r * c + ch];
        acc += diff * diff;
      }
      out[r] = static_cast<float>(std::sqrt(acc));
    }
  });
}

edge::ModelCost GbrfDetector::cost() const {
  check(fitted(), "GBRF cost before fit");
  edge::ModelCost cost;
  cost.name = name();
  // Tree traversal: one comparison per level per tree per output.
  const double comparisons = static_cast<double>(n_channels_) * config_.forest.n_trees *
                             config_.forest.tree.max_depth;
  cost.flops = comparisons * 2.0;
  // Rough node storage: (feature id, threshold, value, children) per node.
  const double nodes_per_tree = std::pow(2.0, config_.forest.tree.max_depth + 1);
  cost.param_bytes = static_cast<double>(n_channels_) * config_.forest.n_trees * nodes_per_tree *
                     20.0;
  cost.activation_bytes = static_cast<double>(feature_dim()) * sizeof(float);
  // sklearn predicts the whole ensemble in ~a couple dozen vectorised steps.
  cost.n_ops = 20;
  cost.runs_on_gpu = false;
  cost.parallel_efficiency = 0.5;
  cost.cpu_threads = 1;
  cost.preprocess_flops = static_cast<double>(feature_dim()) * 4.0;
  return cost;
}

}  // namespace varade::core
