#include "varade/core/baselines/iforest.hpp"

#include <cmath>

namespace varade::core {

IForestDetector::IForestDetector(IForestDetectorConfig config)
    : config_(config), forest_(config.forest) {}

void IForestDetector::fit(const data::MultivariateSeries& train) {
  check(train.length() >= 2, "Isolation Forest needs at least two training samples");
  n_channels_ = train.n_channels();
  forest_.fit(train.to_tensor());
}

float IForestDetector::score_step(const Tensor& /*context*/, const Tensor& observed) {
  check(fitted(), "Isolation Forest scoring before fit");
  return forest_.score_one(observed);
}

void IForestDetector::score_batch(const Tensor& contexts, const Tensor& observed, float* out) {
  check(fitted(), "Isolation Forest scoring before fit");
  check_batch_args(contexts, observed);
  check_batch_channels(contexts, forest_.n_features());
  const Index c = observed.dim(1);
  // Tree traversal only reads the fitted forest; rows are embarrassingly
  // parallel and each keeps its sequential accumulation order.
  parallel_rows(observed.dim(0), [&](Index r0, Index r1) {
    for (Index r = r0; r < r1; ++r) out[r] = forest_.score_one(observed.data() + r * c);
  });
}

std::unique_ptr<AnomalyDetector> IForestDetector::clone_fitted() const {
  check(fitted(), "cannot clone an unfitted Isolation Forest detector");
  auto clone = std::make_unique<IForestDetector>(config_);
  clone->n_channels_ = n_channels_;
  clone->forest_ = forest_;
  return clone;
}

edge::ModelCost IForestDetector::cost() const {
  check(fitted(), "Isolation Forest cost before fit");
  edge::ModelCost cost;
  cost.name = name();
  const double max_depth = std::ceil(std::log2(static_cast<double>(config_.forest.subsample)));
  cost.flops = 2.0 * config_.forest.n_trees * max_depth;
  cost.param_bytes =
      static_cast<double>(config_.forest.n_trees) * config_.forest.subsample * 2.0 * 20.0;
  cost.activation_bytes = static_cast<double>(n_channels_) * sizeof(float);
  // sklearn traverses the ensemble tree-by-tree at the python level.
  cost.n_ops = config_.forest.n_trees;
  cost.runs_on_gpu = false;
  cost.parallel_efficiency = 0.5;
  cost.cpu_threads = 1;
  cost.preprocess_flops = static_cast<double>(n_channels_) * 4.0;
  return cost;
}

}  // namespace varade::core
