#include "varade/core/baselines/autoencoder.hpp"

#include <cmath>
#include <cstdio>

#include "varade/core/trainer.hpp"
#include "varade/nn/loss.hpp"
#include "varade/nn/optimizer.hpp"

namespace varade::core {

AutoencoderDetector::AutoencoderDetector(AutoencoderConfig config) : config_(config) {
  check(config_.window >= 4 && config_.window % 4 == 0,
        "AE window must be a multiple of 4 (two stride-2 stages)");
  check(config_.base_channels >= 1, "base_channels must be positive");
}

std::unique_ptr<nn::Sequential> AutoencoderDetector::build_model(Index n_channels,
                                                                 Rng& rng) const {
  const Index f = config_.base_channels;
  auto model = std::make_unique<nn::Sequential>();
  // Encoder.
  model->emplace<nn::Conv1d>(n_channels, f, 2, 2, 0, rng);
  model->emplace<nn::ResidualBlock1d>(f, rng);
  model->emplace<nn::ResidualBlock1d>(f, rng);
  model->emplace<nn::ResidualBlock1d>(f, rng);
  model->emplace<nn::Conv1d>(f, 2 * f, 2, 2, 0, rng);
  // Decoder (mirror).
  model->emplace<nn::ConvTranspose1d>(2 * f, f, 2, 2, rng);
  model->emplace<nn::ResidualBlock1d>(f, rng);
  model->emplace<nn::ResidualBlock1d>(f, rng);
  model->emplace<nn::ResidualBlock1d>(f, rng);
  model->emplace<nn::ConvTranspose1d>(f, n_channels, 2, 2, rng);
  return model;
}

std::unique_ptr<AnomalyDetector> AutoencoderDetector::clone_fitted() const {
  check(fitted(), "cannot clone an unfitted AE detector");
  auto clone = std::make_unique<AutoencoderDetector>(config_);
  clone->n_channels_ = n_channels_;
  Rng rng(config_.seed);
  clone->model_ = build_model(n_channels_, rng);
  nn::copy_parameter_values(model_->parameters(), clone->model_->parameters());
  clone->loss_history_ = loss_history_;
  return clone;
}

void AutoencoderDetector::fit(const data::MultivariateSeries& train) {
  check(train.length() > config_.window + 1, "AE training series shorter than one window");
  n_channels_ = train.n_channels();
  Rng rng(config_.seed);
  model_ = build_model(n_channels_, rng);

  const data::WindowDataset dataset(train, {config_.window, config_.train_stride});
  check(dataset.size() > 0, "no training windows available");

  nn::Adam optimizer(config_.learning_rate);
  auto params = model_->parameters();
  loss_history_.clear();

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto batches = make_batches(dataset.size(), config_.batch_size, rng);
    double epoch_loss = 0.0;
    long n_batches = 0;
    for (const auto& batch : batches) {
      Tensor contexts;
      Tensor targets_unused;
      dataset.gather(batch, contexts, targets_unused);

      model_->zero_grad();
      const Tensor recon = model_->forward(contexts);
      const nn::LossResult loss = nn::mse_loss(recon, contexts);
      check(std::isfinite(loss.value), "AE training diverged (non-finite loss)");
      model_->backward(loss.grad);
      nn::clip_grad_norm(params, config_.grad_clip);
      optimizer.step(params);

      epoch_loss += loss.value;
      ++n_batches;
    }
    const float mean_loss = static_cast<float>(epoch_loss / std::max(1L, n_batches));
    loss_history_.push_back(mean_loss);
    if (config_.verbose)
      std::printf("[AE] epoch %d/%d  loss %.5f\n", epoch + 1, config_.epochs, mean_loss);
  }
}

Tensor AutoencoderDetector::reconstruct(const Tensor& window) {
  check(fitted(), "AE reconstruct before fit");
  const Tensor batch = window.reshaped({1, window.dim(0), window.dim(1)});
  // Inference-only forward: identical arithmetic to forward(), no activation
  // caches — keeps score_step bit-identical while skipping the tape.
  return model_->forward_inference(batch).reshaped(window.shape());
}

float AutoencoderDetector::window_reconstruction_error(const Tensor& window) {
  const Tensor recon = reconstruct(window);
  double acc = 0.0;
  for (Index i = 0; i < window.numel(); ++i) {
    const double d = static_cast<double>(recon[i]) - window[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(window.numel()));
}

float AutoencoderDetector::score_step(const Tensor& context, const Tensor& observed) {
  check(fitted(), "AE scoring before fit");
  const Index c = context.dim(0);
  const Index t = context.dim(1);
  // Shift the window to end at the current observation.
  Tensor window({c, t});
  for (Index ch = 0; ch < c; ++ch) {
    for (Index s = 0; s + 1 < t; ++s) window[ch * t + s] = context[ch * t + s + 1];
    window[ch * t + t - 1] = observed[ch];
  }
  const Tensor recon = reconstruct(window);
  // Euclidean norm of the reconstruction error at the current time step.
  double acc = 0.0;
  for (Index ch = 0; ch < c; ++ch) {
    const double d =
        static_cast<double>(recon[ch * t + t - 1]) - static_cast<double>(window[ch * t + t - 1]);
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

void AutoencoderDetector::score_batch(const Tensor& contexts, const Tensor& observed, float* out) {
  check(fitted(), "AE scoring before fit");
  check_batch_args(contexts, observed);
  check_batch_channels(contexts, n_channels_);
  const Index b = contexts.dim(0);
  const Index c = contexts.dim(1);
  const Index t = contexts.dim(2);
  if (b == 0) return;
  // Each row range gathers its windows shifted to end at the observation,
  // runs the batched reconstruction forward over just those rows, and takes
  // the last-step residual. Conv/activation arithmetic is per-row, so the
  // range boundaries cannot change any score bit.
  parallel_rows(b, [&](Index r0, Index r1) {
    const Index rows = r1 - r0;
    Tensor windows({rows, c, t});
    for (Index r = r0; r < r1; ++r) {
      const float* ctx = contexts.data() + r * c * t;
      const float* obs = observed.data() + r * c;
      float* win = windows.data() + (r - r0) * c * t;
      for (Index ch = 0; ch < c; ++ch) {
        for (Index s = 0; s + 1 < t; ++s) win[ch * t + s] = ctx[ch * t + s + 1];
        win[ch * t + t - 1] = obs[ch];
      }
    }
    const Tensor recon = model_->forward_inference(windows);
    for (Index r = r0; r < r1; ++r) {
      const float* rec = recon.data() + (r - r0) * c * t;
      const float* win = windows.data() + (r - r0) * c * t;
      double acc = 0.0;
      for (Index ch = 0; ch < c; ++ch) {
        const double d =
            static_cast<double>(rec[ch * t + t - 1]) - static_cast<double>(win[ch * t + t - 1]);
        acc += d * d;
      }
      out[r] = static_cast<float>(std::sqrt(acc));
    }
  });
}

edge::ModelCost AutoencoderDetector::cost() const {
  check(fitted(), "AE cost before fit");
  edge::ModelCost cost;
  cost.name = name();
  const Shape in{n_channels_, config_.window};
  cost.flops = static_cast<double>(model_->flops(in));
  long param_bytes = 0;
  for (nn::Parameter* p : model_->parameters())
    param_bytes += p->value.numel() * static_cast<long>(sizeof(float));
  cost.param_bytes = static_cast<double>(param_bytes);
  // Residual blocks keep full-resolution feature maps alive.
  cost.activation_bytes = 8.0 * static_cast<double>(config_.base_channels) *
                          (config_.window / 2.0) * sizeof(float);
  // Eager execution dispatches every conv/relu/add of every residual block;
  // the reconstruction path touches each feature map twice (enc + dec).
  cost.n_ops = 200;  // calibrated: TF2.11-eager ResNet-AE op count incl. grad-free tape setup
  cost.runs_on_gpu = true;
  cost.parallel_efficiency = 0.6;
  cost.preprocess_flops = static_cast<double>(n_channels_) * config_.window * 4.0;
  return cost;
}

}  // namespace varade::core
