#include "varade/core/profiles.hpp"

namespace varade::core {

Profile repro_profile() {
  Profile p;
  p.name = "repro";
  p.sample_rate_hz = 50.0;
  p.train_duration_s = 300.0;
  p.test_duration_s = 240.0;
  p.n_collisions = 24;
  p.seed = 42;
  p.eval_stride = 4;

  // VARADE, scaled: the layer-count rule (halve until T=2) and the
  // channel-doubling rule are preserved; learning rate is raised to fit the
  // small epoch budget (the paper's 1e-5 assumes hours of training), and the
  // KL weight is raised to keep the variance head's prior pull effective at
  // this data scale (see EXPERIMENTS.md, score ablation).
  p.varade.window = 32;
  p.varade.base_channels = 16;
  p.varade.lambda = 1.0F;
  p.varade.epochs = 24;
  p.varade.batch_size = 32;
  p.varade.learning_rate = 1e-3F;
  p.varade.train_stride = 4;
  p.varade.seed = p.seed + 1;

  p.ar_lstm.window = 32;
  p.ar_lstm.hidden = 48;
  p.ar_lstm.n_layers = 2;
  p.ar_lstm.epochs = 3;
  p.ar_lstm.batch_size = 32;
  p.ar_lstm.learning_rate = 1e-3F;
  p.ar_lstm.train_stride = 8;
  p.ar_lstm.seed = p.seed + 2;

  p.gbrf.window = 64;
  p.gbrf.feature_steps = 4;
  p.gbrf.forest.n_trees = 10;
  p.gbrf.forest.learning_rate = 0.3F;
  p.gbrf.forest.subsample = 0.5F;
  p.gbrf.forest.tree.max_depth = 3;
  p.gbrf.forest.tree.max_features = 16;
  p.gbrf.forest.seed = p.seed + 3;

  p.ae.window = 64;
  p.ae.base_channels = 16;
  p.ae.epochs = 6;
  p.ae.batch_size = 32;
  p.ae.learning_rate = 1e-3F;
  p.ae.train_stride = 4;
  p.ae.seed = p.seed + 4;

  p.knn.max_reference_points = 2000;
  p.knn.knn.k = 5;
  p.knn.knn.score = knn::KnnScore::kMaxDistance;
  p.knn.knn.seed = p.seed + 5;

  p.iforest.forest.n_trees = 100;
  p.iforest.forest.subsample = 256;
  p.iforest.forest.contamination = 0.1F;
  p.iforest.forest.seed = p.seed + 6;
  return p;
}

Profile paper_profile() {
  Profile p;
  p.name = "paper";
  p.sample_rate_hz = 200.0;          // section 4.1
  p.train_duration_s = 390.0 * 60.0; // section 4.3: 390 minutes
  p.test_duration_s = 82.0 * 60.0;   // section 4.3: 82 minutes
  p.n_collisions = 125;              // section 4.3
  p.seed = 42;
  p.eval_stride = 1;

  p.varade.window = 512;        // section 3.1
  p.varade.base_channels = 128; // section 3.1
  p.varade.lambda = 0.01F;
  p.varade.epochs = 50;
  p.varade.batch_size = 32;
  p.varade.learning_rate = 1e-5F;  // section 3.4
  p.varade.train_stride = 1;
  p.varade.seed = p.seed + 1;

  p.ar_lstm.window = 512;
  p.ar_lstm.hidden = 256;  // section 3.3
  p.ar_lstm.n_layers = 5;  // section 3.3
  p.ar_lstm.epochs = 50;
  p.ar_lstm.learning_rate = 1e-5F;
  p.ar_lstm.train_stride = 1;
  p.ar_lstm.seed = p.seed + 2;

  p.gbrf.window = 512;
  p.gbrf.feature_steps = 8;
  p.gbrf.forest.n_trees = 30;  // section 3.3
  p.gbrf.forest.learning_rate = 0.3F;
  p.gbrf.forest.subsample = 1.0F;
  p.gbrf.forest.tree.max_depth = 6;
  p.gbrf.forest.tree.max_features = 0;
  p.gbrf.forest.seed = p.seed + 3;

  p.ae.window = 512;
  p.ae.base_channels = 128;
  p.ae.epochs = 50;
  p.ae.learning_rate = 1e-5F;
  p.ae.train_stride = 1;
  p.ae.seed = p.seed + 4;

  p.knn.max_reference_points = 0;  // sklearn keeps the full training set
  p.knn.knn.k = 5;                 // section 3.3
  p.knn.knn.score = knn::KnnScore::kMaxDistance;
  p.knn.knn.seed = p.seed + 5;

  p.iforest.forest.n_trees = 100;       // section 3.3
  p.iforest.forest.subsample = 256;
  p.iforest.forest.contamination = 0.1F;  // section 3.3
  p.iforest.forest.seed = p.seed + 6;
  return p;
}

const std::vector<std::string>& detector_names() {
  static const std::vector<std::string> names = {"AR-LSTM", "GBRF",           "AE",
                                                 "kNN",     "Isolation Forest", "VARADE"};
  return names;
}

std::unique_ptr<AnomalyDetector> make_detector(const Profile& profile, const std::string& name) {
  if (name == "VARADE") return std::make_unique<VaradeDetector>(profile.varade);
  if (name == "AR-LSTM") return std::make_unique<ArLstmDetector>(profile.ar_lstm);
  if (name == "GBRF") return std::make_unique<GbrfDetector>(profile.gbrf);
  if (name == "AE") return std::make_unique<AutoencoderDetector>(profile.ae);
  if (name == "kNN") return std::make_unique<KnnDetector>(profile.knn);
  if (name == "Isolation Forest") return std::make_unique<IForestDetector>(profile.iforest);
  fail("unknown detector '", name, "'");
}

}  // namespace varade::core
