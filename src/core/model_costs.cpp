#include "varade/core/model_costs.hpp"

#include <cmath>

#include "varade/core/profiles.hpp"
#include "varade/error.hpp"

namespace varade::core {

namespace {

// VARADE at paper scale (section 3.1): T=512 -> 8 conv layers (kernel 2,
// stride 2), feature maps 128,128,256,256,512,512,1024,1024, two linear heads.
edge::ModelCost varade_paper(Index c) {
  edge::ModelCost cost;
  cost.name = "VARADE";
  Index t = 512;
  Index ch_in = c;
  Index ch_out = 128;
  double flops = 0.0;
  double params = 0.0;
  int layers = 0;
  while (t > 2) {
    if (layers > 0 && layers % 2 == 0) ch_out *= 2;
    t /= 2;
    flops += 2.0 * ch_out * ch_in * 2.0 * t;
    params += static_cast<double>(ch_out) * ch_in * 2.0 + ch_out;
    ch_in = ch_out;
    ++layers;
  }
  const double feature_dim = static_cast<double>(ch_in) * 2.0;  // final length 2
  flops += 2.0 * 2.0 * feature_dim * c;                         // two heads
  params += 2.0 * (feature_dim * c + c);
  cost.flops = flops;
  cost.param_bytes = params * sizeof(float);
  cost.activation_bytes = 2.0 * 128.0 * 256.0 * sizeof(float);
  // TF eager dispatches conv, bias-add and relu per layer plus reshape and
  // the two heads (calibrated against the published 14.9 Hz on the NX).
  cost.n_ops = 3 * layers + 6;
  cost.runs_on_gpu = true;
  cost.parallel_efficiency = 0.85;
  cost.preprocess_flops = static_cast<double>(c) * 512.0 * 4.0;
  return cost;
}

// AR-LSTM at paper scale (section 3.3): 5 LSTM layers x 256 units over T=512,
// then 2 fully connected layers.
edge::ModelCost ar_lstm_paper(Index c) {
  edge::ModelCost cost;
  cost.name = "AR-LSTM";
  const double h = 256.0;
  const double t = 512.0;
  double flops = 2.0 * 4.0 * h * (c + h) * t;               // first layer
  flops += 4.0 * 2.0 * 4.0 * h * (h + h) * t;               // layers 2..5
  flops += 2.0 * h * (h / 2.0) + 2.0 * (h / 2.0) * c;       // FC head
  double params = 4.0 * h * (c + h + 1.0) + 4.0 * (4.0 * h * (2.0 * h + 1.0));
  params += h * (h / 2.0) + h / 2.0 + (h / 2.0) * c + c;
  cost.flops = flops;
  cost.param_bytes = params * sizeof(float);
  cost.activation_bytes = 5.0 * h * t * sizeof(float);
  // Recurrence serialises execution into per-layer time-chunk dispatches
  // (~36-step cuDNN chunks, calibrated against Table 2, which places AR-LSTM
  // above Isolation Forest on the NX but below it on the Orin).
  cost.n_ops = 5 * static_cast<int>(t / 36.0) + 2;
  cost.runs_on_gpu = true;
  cost.gpu_resident_spin = true;
  cost.parallel_efficiency = 0.35;
  cost.preprocess_flops = static_cast<double>(c) * t * 4.0;
  return cost;
}

// AE at paper scale: base 128 feature maps, 6 residual blocks, T=512.
edge::ModelCost ae_paper(Index c) {
  edge::ModelCost cost;
  cost.name = "AE";
  const double f = 128.0;
  const double t = 512.0;
  double flops = 2.0 * f * c * 2.0 * (t / 2.0);                   // enc conv
  flops += 3.0 * 2.0 * (2.0 * f * f * 3.0 * (t / 2.0));           // 3 enc RBs
  flops += 2.0 * (2.0 * f) * f * 2.0 * (t / 4.0);                 // enc conv 2
  flops += 2.0 * f * (2.0 * f) * 2.0 * (t / 4.0);                 // dec convT 1
  flops += 3.0 * 2.0 * (2.0 * f * f * 3.0 * (t / 2.0));           // 3 dec RBs
  flops += 2.0 * c * f * 2.0 * (t / 2.0);                         // dec convT 2
  double params = f * c * 2.0 + f;
  params += 6.0 * 2.0 * (f * f * 3.0 + f);
  params += 2.0 * f * f * 2.0 + 2.0 * f;
  params += f * 2.0 * f * 2.0 + f;
  params += f * c * 2.0 + c;
  cost.flops = flops;
  cost.param_bytes = params * sizeof(float);
  cost.activation_bytes = 8.0 * f * (t / 2.0) * sizeof(float);
  // Calibrated: TF2.11 eager dispatches every conv/relu/add in each residual
  // block plus reconstruction bookkeeping (~200 python-level ops).
  cost.n_ops = 200;
  cost.runs_on_gpu = true;
  cost.parallel_efficiency = 0.6;
  cost.preprocess_flops = static_cast<double>(c) * t * 4.0;
  return cost;
}

// kNN at paper scale: the full 390-min 200 Hz training set as the reference.
edge::ModelCost knn_paper(Index c) {
  edge::ModelCost cost;
  cost.name = "kNN";
  const double n_ref = 390.0 * 60.0 * 200.0;  // 4.68M reference samples
  cost.flops = 3.0 * 2.0 * n_ref * c;
  cost.ref_bytes = n_ref * c * 8.0;  // sklearn float64
  cost.activation_bytes = n_ref * 8.0;
  cost.n_ops = 1;
  cost.runs_on_gpu = false;
  cost.parallel_efficiency = 0.11;
  cost.cpu_threads = 64;
  cost.preprocess_flops = static_cast<double>(c) * 4.0;
  return cost;
}

// GBRF at paper scale: 30 trees per output channel, depth 6.
edge::ModelCost gbrf_paper(Index c) {
  edge::ModelCost cost;
  cost.name = "GBRF";
  const double trees = 30.0;
  const double depth = 6.0;
  cost.flops = 2.0 * c * trees * depth;
  cost.param_bytes = c * trees * std::pow(2.0, depth + 1.0) * 20.0;
  cost.activation_bytes = static_cast<double>(c) * 8.0 * 8.0;
  cost.n_ops = 20;
  cost.runs_on_gpu = false;
  cost.parallel_efficiency = 0.5;
  cost.cpu_threads = 1;
  cost.preprocess_flops = static_cast<double>(c) * 8.0 * 4.0;
  return cost;
}

// Isolation Forest at paper scale: 100 trees, 256-sample subtrees.
edge::ModelCost iforest_paper(Index c) {
  edge::ModelCost cost;
  cost.name = "Isolation Forest";
  const double trees = 100.0;
  const double depth = std::ceil(std::log2(256.0));
  cost.flops = 2.0 * trees * depth;
  cost.param_bytes = trees * 256.0 * 2.0 * 20.0;
  cost.activation_bytes = static_cast<double>(c) * sizeof(float);
  cost.n_ops = 100;  // sklearn traverses the ensemble tree-by-tree
  cost.runs_on_gpu = false;
  cost.parallel_efficiency = 0.5;
  cost.cpu_threads = 1;
  cost.preprocess_flops = static_cast<double>(c) * 4.0;
  return cost;
}

}  // namespace

edge::ModelCost paper_model_cost(const std::string& name, Index n_channels) {
  check(n_channels > 0, "n_channels must be positive");
  if (name == "VARADE") return varade_paper(n_channels);
  if (name == "AR-LSTM") return ar_lstm_paper(n_channels);
  if (name == "GBRF") return gbrf_paper(n_channels);
  if (name == "AE") return ae_paper(n_channels);
  if (name == "kNN") return knn_paper(n_channels);
  if (name == "Isolation Forest") return iforest_paper(n_channels);
  fail("unknown detector '", name, "'");
}

std::vector<edge::ModelCost> paper_model_costs(Index n_channels) {
  std::vector<edge::ModelCost> costs;
  for (const std::string& name : detector_names())
    costs.push_back(paper_model_cost(name, n_channels));
  return costs;
}

}  // namespace varade::core
