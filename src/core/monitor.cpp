#include "varade/core/monitor.hpp"

#include <algorithm>
#include <cstring>

namespace varade::core {

void validate(const MonitorConfig& config) {
  check(config.threshold_quantile > 0.0 && config.threshold_quantile < 1.0,
        "threshold quantile must be in (0, 1)");
  check(config.debounce_samples >= 1, "debounce must be >= 1");
  check(config.holdoff_samples >= 0, "holdoff must be >= 0");
  check(config.calibration_stride >= 1, "calibration stride must be >= 1");
  check(config.calibration_batch >= 1, "calibration batch must be >= 1");
}

void write_context(const std::deque<std::vector<float>>& ring, Index channels, Index window,
                   float* dst) {
  for (Index t = 0; t < window; ++t) {
    const std::vector<float>& sample = ring[static_cast<std::size_t>(t)];
    for (Index ch = 0; ch < channels; ++ch)
      dst[ch * window + t] = sample[static_cast<std::size_t>(ch)];
  }
}

void write_context(const float* ring_row, Index channels, Index window, Index oldest, float* dst) {
  if (oldest == 0) {
    std::memcpy(dst, ring_row, static_cast<std::size_t>(channels * window) * sizeof(float));
    return;
  }
  const Index head = window - oldest;
  for (Index ch = 0; ch < channels; ++ch) {
    const float* src = ring_row + ch * window;
    float* out = dst + ch * window;
    std::memcpy(out, src + oldest, static_cast<std::size_t>(head) * sizeof(float));
    std::memcpy(out + head, src, static_cast<std::size_t>(oldest) * sizeof(float));
  }
}

bool AlarmTracker::update(float score, float threshold, Index sample_index) {
  // Alarm logic: debounce, then hold events open across brief dips.
  const bool over = score > threshold;
  if (over) {
    ++consecutive_over_;
    since_last_over_ = 0;
  } else {
    consecutive_over_ = 0;
    ++since_last_over_;
  }

  if (!in_alarm_ && consecutive_over_ >= config_.debounce_samples) {
    in_alarm_ = true;
    AnomalyEvent ev;
    ev.onset_sample = sample_index;
    ev.last_sample = sample_index;
    ev.peak_score = score;
    events_.push_back(ev);
    return true;
  }
  if (in_alarm_) {
    if (over) {
      events_.back().last_sample = sample_index;
      events_.back().peak_score = std::max(events_.back().peak_score, score);
    } else if (since_last_over_ > config_.holdoff_samples) {
      in_alarm_ = false;
    }
  }
  return false;
}

float calibrate_threshold(AnomalyDetector& detector, const data::MultivariateSeries& train,
                          const MonitorConfig& config) {
  const Index window = detector.context_window();
  check(train.length() > window, "calibration series shorter than the context window");
  // Batched scoring over the strided calibration positions: score_batch is
  // bit-identical to score_step per the detector contract, so the threshold
  // is unchanged from the sequential rule.
  const SeriesScores run = detector.score_series(train, config.calibration_stride,
                                                 config.calibration_batch);
  std::vector<float> scores = run.scores;
  check(!scores.empty(), "no calibration scores produced");
  std::sort(scores.begin(), scores.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(scores.size()) - 1.0,
                       config.threshold_quantile * static_cast<double>(scores.size())));
  return scores[idx];
}

OnlineMonitor::OnlineMonitor(AnomalyDetector& detector, const data::MinMaxNormalizer& normalizer,
                             MonitorConfig config)
    : detector_(&detector), normalizer_(&normalizer), config_(config), tracker_(config) {
  check(detector.fitted(), "OnlineMonitor requires a fitted detector");
  check(normalizer.fitted(), "OnlineMonitor requires a fitted normalizer");
  validate(config_);
  scratch_.resize(static_cast<std::size_t>(normalizer.n_channels()));
}

void OnlineMonitor::calibrate(const data::MultivariateSeries& train) {
  threshold_ = calibrate_threshold(*detector_, train, config_);
  calibrated_ = true;
}

void OnlineMonitor::set_threshold(float threshold) {
  threshold_ = threshold;
  calibrated_ = true;
}

Tensor OnlineMonitor::context_tensor() const {
  const Index c = normalizer_->n_channels();
  const Index window = detector_->context_window();
  Tensor out({c, window});
  write_context(ring_, c, window, out.data());
  return out;
}

float OnlineMonitor::push(const float* raw_sample) {
  check(calibrated_, "OnlineMonitor::push before calibrate()/set_threshold()");
  const Index window = detector_->context_window();
  ++samples_seen_;

  // Normalise into the scratch row.
  normalizer_->transform_sample(raw_sample, scratch_.data());

  // The detector scores the current observation against the *previous*
  // window samples, so score before pushing the sample into the ring.
  float score = -1.0F;
  if (static_cast<Index>(ring_.size()) == window) {
    const Tensor context = context_tensor();
    Tensor observed({normalizer_->n_channels()});
    for (Index c = 0; c < observed.numel(); ++c)
      observed[c] = scratch_[static_cast<std::size_t>(c)];
    score = detector_->score_step(context, observed);

    if (tracker_.update(score, threshold_, samples_seen_ - 1) && callback_)
      callback_(tracker_.events().back());
  }

  ring_.push_back(scratch_);
  if (static_cast<Index>(ring_.size()) > window) ring_.pop_front();
  return score;
}

float OnlineMonitor::push(const std::vector<float>& raw_sample) {
  check(static_cast<Index>(raw_sample.size()) == normalizer_->n_channels(),
        "sample channel count mismatch");
  return push(raw_sample.data());
}

}  // namespace varade::core
