// Paper-scale workload descriptions for the edge estimates.
//
// Table 2's resource columns depend on the *full-size* architectures (T=512,
// 128->1024 channels, 5x256 LSTM, the complete 390-min kNN reference set).
// These costs are static properties of the architectures — no training is
// needed to know them — so benches in the scaled repro profile can still
// estimate the paper-scale Table 2 columns with the edge profiler while
// reporting AUC from the repro-trained models.
#pragma once

#include <string>
#include <vector>

#include "varade/edge/profiler.hpp"
#include "varade/tensor/tensor.hpp"

namespace varade::core {

/// Cost of each detector at the paper's published configuration, in
/// detector_names() order. `n_channels` defaults to the 86-channel KUKA
/// schema.
std::vector<edge::ModelCost> paper_model_costs(Index n_channels = 86);

/// Cost of one named detector at paper scale.
edge::ModelCost paper_model_cost(const std::string& name, Index n_channels = 86);

}  // namespace varade::core
