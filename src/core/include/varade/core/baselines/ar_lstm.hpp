// Autoregressive LSTM baseline (paper section 3.3).
//
// "A recurrent architecture featuring 5 LSTM recurrent layers with 256
// feature maps each, followed by 2 fully connected layers. The anomaly score
// is the euclidean norm of the difference between predicted and real value."
#pragma once

#include <cstdint>
#include <memory>

#include "varade/core/detector.hpp"
#include "varade/nn/layers.hpp"
#include "varade/nn/lstm.hpp"
#include "varade/nn/module.hpp"

namespace varade::core {

struct ArLstmConfig {
  Index window = 512;
  Index hidden = 256;   // paper: 256 feature maps
  int n_layers = 5;     // paper: 5 recurrent layers
  // Training.
  int epochs = 5;
  Index batch_size = 32;
  float learning_rate = 1e-5F;  // paper section 3.4
  Index train_stride = 1;
  float grad_clip = 5.0F;
  std::uint64_t seed = 2;
  bool verbose = false;
};

class ArLstmDetector : public AnomalyDetector {
 public:
  explicit ArLstmDetector(ArLstmConfig config = {});

  std::string name() const override { return "AR-LSTM"; }
  void fit(const data::MultivariateSeries& train) override;
  float score_step(const Tensor& context, const Tensor& observed) override;
  /// Native batched scoring: all B contexts run through the LSTM stack as one
  /// [B, C, T] stepped inference forward (no training caches), then one
  /// batched head evaluation. Every layer processes batch rows independently
  /// with a fixed accumulation order, so scores are bit-identical to
  /// score_step.
  void score_batch(const Tensor& contexts, const Tensor& observed, float* out) override;
  /// Fresh detector with the same architecture and a deep copy of the weights.
  std::unique_ptr<AnomalyDetector> clone_fitted() const override;
  Index context_window() const override { return config_.window; }
  edge::ModelCost cost() const override;
  bool fitted() const override { return model_ != nullptr; }

  /// One-step forecast for a context [C, T].
  Tensor forecast(const Tensor& context);

  const std::vector<float>& loss_history() const { return loss_history_; }
  nn::Sequential* model() { return model_.get(); }

 private:
  /// The untrained architecture for `n_channels` inputs (shared by fit and
  /// clone_fitted so replicas are structurally identical by construction).
  std::unique_ptr<nn::Sequential> build_model(Index n_channels, Rng& rng) const;

  ArLstmConfig config_;
  Index n_channels_ = 0;
  std::unique_ptr<nn::Sequential> model_;
  std::vector<float> loss_history_;
};

}  // namespace varade::core
