// Isolation Forest baseline (paper section 3.3).
//
// "An ensemble of 100 individual decision trees ... anomaly score based on
// the average path length. As recommended by [15], we use a contamination
// value of 0.1." Scores the current sample; no temporal context is used.
#pragma once

#include "varade/core/detector.hpp"
#include "varade/trees/isolation_forest.hpp"

namespace varade::core {

struct IForestDetectorConfig {
  trees::IsolationForestConfig forest;  // defaults match the paper
};

class IForestDetector : public AnomalyDetector {
 public:
  explicit IForestDetector(IForestDetectorConfig config = {});

  std::string name() const override { return "Isolation Forest"; }
  void fit(const data::MultivariateSeries& train) override;
  float score_step(const Tensor& context, const Tensor& observed) override;
  /// Native batched scoring: traverses the ensemble once per observation row
  /// without materialising per-row tensors.
  void score_batch(const Tensor& contexts, const Tensor& observed, float* out) override;
  /// Deep copy of the fitted ensemble.
  std::unique_ptr<AnomalyDetector> clone_fitted() const override;
  Index context_window() const override { return 1; }
  edge::ModelCost cost() const override;
  bool fitted() const override { return forest_.fitted(); }

  const trees::IsolationForest& forest() const { return forest_; }

 private:
  IForestDetectorConfig config_;
  Index n_channels_ = 0;
  trees::IsolationForest forest_;
};

}  // namespace varade::core
