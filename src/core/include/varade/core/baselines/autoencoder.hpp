// Convolutional autoencoder baseline (paper section 3.3).
//
// "A convolutional autoencoder featuring 6 ResNet blocks [7]. The anomaly
// score is the euclidean norm of the difference of reconstructed and real
// value."
//
// Architecture: strided Conv1d encoder to half resolution, three residual
// blocks, a second strided conv to quarter resolution; mirrored transposed-
// conv decoder with the remaining three residual blocks. Trained to
// reconstruct normal windows with MSE; at inference the window is shifted to
// end at the current observation and the reconstruction error of that last
// time step is the score.
#pragma once

#include <cstdint>
#include <memory>

#include "varade/core/detector.hpp"
#include "varade/nn/layers.hpp"
#include "varade/nn/module.hpp"

namespace varade::core {

struct AutoencoderConfig {
  Index window = 512;
  Index base_channels = 128;  // feature maps after the first conv
  // Training.
  int epochs = 10;
  Index batch_size = 32;
  float learning_rate = 1e-5F;  // paper section 3.4
  Index train_stride = 1;
  float grad_clip = 5.0F;
  std::uint64_t seed = 3;
  bool verbose = false;
};

class AutoencoderDetector : public AnomalyDetector {
 public:
  explicit AutoencoderDetector(AutoencoderConfig config = {});

  std::string name() const override { return "AE"; }
  void fit(const data::MultivariateSeries& train) override;
  float score_step(const Tensor& context, const Tensor& observed) override;
  /// Native batched scoring: the shifted windows of all B rows are gathered
  /// into one [B, C, T] matrix and reconstructed in a single inference
  /// forward (no training caches). Every layer processes batch rows
  /// independently with a fixed accumulation order, so scores are
  /// bit-identical to score_step.
  void score_batch(const Tensor& contexts, const Tensor& observed, float* out) override;
  /// Fresh detector with the same architecture and a deep copy of the weights.
  std::unique_ptr<AnomalyDetector> clone_fitted() const override;
  Index context_window() const override { return config_.window; }
  edge::ModelCost cost() const override;
  bool fitted() const override { return model_ != nullptr; }

  /// Reconstruction of a window [C, T].
  Tensor reconstruct(const Tensor& window);

  /// Mean squared reconstruction error over a whole window (used by tests).
  float window_reconstruction_error(const Tensor& window);

  const std::vector<float>& loss_history() const { return loss_history_; }

 private:
  /// The untrained architecture for `n_channels` inputs (shared by fit and
  /// clone_fitted so replicas are structurally identical by construction).
  std::unique_ptr<nn::Sequential> build_model(Index n_channels, Rng& rng) const;

  AutoencoderConfig config_;
  Index n_channels_ = 0;
  std::unique_ptr<nn::Sequential> model_;
  std::vector<float> loss_history_;
};

}  // namespace varade::core
