// k-Nearest-Neighbour baseline (paper section 3.3).
//
// "We employ maximum distance with k=5, as it has the best compromise between
// accuracy and execution time." Scores the current sample against the normal
// reference set; no temporal context is used.
#pragma once

#include "varade/core/detector.hpp"
#include "varade/knn/knn.hpp"

namespace varade::core {

struct KnnDetectorConfig {
  knn::KnnConfig knn;  // defaults: k = 5, max distance
  /// Reference subsample kept on device; 0 keeps the entire training set
  /// (what the paper's sklearn implementation does — and why kNN is slow).
  Index max_reference_points = 0;
};

class KnnDetector : public AnomalyDetector {
 public:
  explicit KnnDetector(KnnDetectorConfig config = {});

  std::string name() const override { return "kNN"; }
  void fit(const data::MultivariateSeries& train) override;
  float score_step(const Tensor& context, const Tensor& observed) override;
  /// Native batched scoring: queries the kd-tree (or brute-force backend)
  /// straight from the observation rows, skipping the per-row tensor
  /// round-trip of the base fallback.
  void score_batch(const Tensor& contexts, const Tensor& observed, float* out) override;
  /// Deep copy of the reference set and search structure.
  std::unique_ptr<AnomalyDetector> clone_fitted() const override;
  Index context_window() const override { return 1; }
  edge::ModelCost cost() const override;
  bool fitted() const override { return scorer_.fitted(); }

  Index reference_size() const { return scorer_.reference_size(); }

 private:
  KnnDetectorConfig config_;
  Index n_channels_ = 0;
  knn::KnnAnomalyScorer scorer_;
};

}  // namespace varade::core
