// Gradient Boosted Regression Forest baseline (paper section 3.3).
//
// Follows Huang et al. [9] with the paper's modifications: 30 trees and no
// dimensionality-reduction step. The forest forecasts the next sample of all
// channels from a downsampled context window; the anomaly score is the
// euclidean norm of the forecast residual (as for AR-LSTM).
#pragma once

#include "varade/core/detector.hpp"
#include "varade/trees/gbrf.hpp"

namespace varade::core {

struct GbrfDetectorConfig {
  Index window = 512;
  /// The context is downsampled to `feature_steps` samples spaced
  /// `window / feature_steps` apart (trees cannot ingest 512x86 raw values).
  Index feature_steps = 8;
  trees::GbrfConfig forest;  // defaults already match the paper (30 trees)
};

class GbrfDetector : public AnomalyDetector {
 public:
  explicit GbrfDetector(GbrfDetectorConfig config = {});

  std::string name() const override { return "GBRF"; }
  void fit(const data::MultivariateSeries& train) override;
  float score_step(const Tensor& context, const Tensor& observed) override;
  /// Native batched scoring: the downsampled feature matrix
  /// [B, C * feature_steps] is built once, then every boosted ensemble is
  /// traversed tree-major over all rows. Per-row accumulation order matches
  /// predict_one, so scores are bit-identical to score_step.
  void score_batch(const Tensor& contexts, const Tensor& observed, float* out) override;
  /// Deep copy of the fitted boosted ensembles.
  std::unique_ptr<AnomalyDetector> clone_fitted() const override;
  Index context_window() const override { return config_.window; }
  edge::ModelCost cost() const override;
  bool fitted() const override { return forest_.fitted(); }

  /// One-step forecast for a context [C, T].
  Tensor forecast(const Tensor& context) const;

  Index feature_dim() const { return n_channels_ * config_.feature_steps; }

 private:
  Tensor features_from_context(const Tensor& context) const;

  /// Downsamples one context [C, T] (row-major at `context`) into
  /// `feature_dim()` values at `out`; shared by the single-row and batched
  /// feature gathers.
  void gather_features(const float* context, Index c, Index t, float* out) const;

  GbrfDetectorConfig config_;
  Index n_channels_ = 0;
  trees::MultiOutputGbrf forest_;
};

}  // namespace varade::core
