// Experiment profiles: the paper's full configuration, and a scaled "repro"
// configuration sized so the complete benchmark suite runs in minutes on a
// small CPU-only machine while preserving every architectural relationship
// (layer-count rule, channel-doubling, detector ordering).
//
// The paper profile uses the exact published hyperparameters: T=512 window,
// 128->1024 feature maps, 5x256 LSTM, 30-tree GBRF, 100-tree Isolation
// Forest, Adam @ 1e-5, 390 min of 200 Hz training data, an 82-min collision
// experiment with 125 collisions. Training that on this substrate takes
// days, so benches default to the repro profile and accept --paper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "varade/core/baselines/ar_lstm.hpp"
#include "varade/core/baselines/autoencoder.hpp"
#include "varade/core/baselines/gbrf.hpp"
#include "varade/core/baselines/iforest.hpp"
#include "varade/core/baselines/knn.hpp"
#include "varade/core/varade.hpp"

namespace varade::core {

struct Profile {
  std::string name;

  // Data generation.
  double sample_rate_hz = 50.0;
  double train_duration_s = 150.0;
  double test_duration_s = 80.0;
  int n_collisions = 20;
  std::uint64_t seed = 42;

  // Evaluation.
  Index eval_stride = 4;  // score every stride-th test sample

  // Detector configurations.
  VaradeConfig varade;
  ArLstmConfig ar_lstm;
  GbrfDetectorConfig gbrf;
  AutoencoderConfig ae;
  KnnDetectorConfig knn;
  IForestDetectorConfig iforest;
};

/// Scaled configuration for CI-speed reproduction (minutes, CPU-only).
Profile repro_profile();

/// The paper's full configuration (section 3.3-4.3).
Profile paper_profile();

/// Canonical detector order used in Table 2 rows.
const std::vector<std::string>& detector_names();

/// Factory: builds the detector `name` ("VARADE", "AR-LSTM", "GBRF", "AE",
/// "kNN", "Isolation Forest") configured per `profile`.
std::unique_ptr<AnomalyDetector> make_detector(const Profile& profile, const std::string& name);

}  // namespace varade::core
