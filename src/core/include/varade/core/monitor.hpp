// Online anomaly monitor: the deployment loop of the paper (section 4.3) and
// its future-work direction ("integrate VARADE within the manufacturing
// control loop, enabling preventive anomaly detection to activate high-level
// reconfiguration strategies") as a reusable component.
//
// The monitor wraps a fitted detector with:
//  - a normalising ring buffer fed one raw sample at a time,
//  - a threshold calibrated on training scores (quantile-based),
//  - alarm debouncing (consecutive exceedances before raising) and a
//    hold-off that merges bursts into one event,
//  - an event log with onset time and peak score for downstream
//    reconfiguration logic.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "varade/core/detector.hpp"
#include "varade/data/normalize.hpp"

namespace varade::core {

struct MonitorConfig {
  /// Quantile of training scores used as the alarm threshold.
  double threshold_quantile = 0.995;
  /// Consecutive above-threshold scores required to raise an alarm.
  int debounce_samples = 2;
  /// Samples after an alarm during which new exceedances extend (not
  /// re-raise) the current event.
  int holdoff_samples = 25;
  /// Stride for threshold calibration over the training series.
  Index calibration_stride = 4;
  /// Contexts per score_batch call during threshold calibration.
  Index calibration_batch = 32;
};

/// Throws on out-of-range fields; shared by every monitor frontend.
void validate(const MonitorConfig& config);

/// One detected anomaly event.
struct AnomalyEvent {
  Index onset_sample = 0;   // stream index where the alarm was raised
  Index last_sample = 0;    // last sample that extended the event
  float peak_score = 0.0F;
};

/// The debounce/hold-off alarm state machine, factored out of OnlineMonitor
/// so other frontends (the serve::ScoringEngine multiplexing many streams)
/// raise bit-identical events from the same score sequence.
class AlarmTracker {
 public:
  AlarmTracker() = default;
  explicit AlarmTracker(const MonitorConfig& config) : config_(config) {}

  /// Updates the alarm state with the score of stream sample `sample_index`
  /// (0-based position in the stream). Returns true when a new event was
  /// raised by this update.
  bool update(float score, float threshold, Index sample_index);

  bool in_alarm() const { return in_alarm_; }
  const std::vector<AnomalyEvent>& events() const { return events_; }

 private:
  MonitorConfig config_;
  int consecutive_over_ = 0;
  int since_last_over_ = 0;
  bool in_alarm_ = false;
  std::vector<AnomalyEvent> events_;
};

/// Quantile-based alarm threshold over strided training scores — the shared
/// calibration rule of OnlineMonitor and serve::ScoringEngine.
float calibrate_threshold(AnomalyDetector& detector, const data::MultivariateSeries& train,
                          const MonitorConfig& config);

/// Writes a normalising ring buffer (oldest sample first) as a channels-major
/// [C, T] context into `dst` — the one place that fixes the context memory
/// layout for both OnlineMonitor and serve::ScoringEngine.
void write_context(const std::deque<std::vector<float>>& ring, Index channels, Index window,
                   float* dst);

/// Flat-slab overload: the ring is a contiguous channels-major [C, T] row
/// (serve::ScoringEngine's per-stream slice of the context slab) whose
/// oldest sample lives at time index `oldest`. Unrolls the ring into `dst`
/// oldest-first with the same [C, T] layout as the deque overload — two
/// memcpys per channel instead of a per-sample scatter.
void write_context(const float* ring_row, Index channels, Index window, Index oldest, float* dst);

class OnlineMonitor {
 public:
  /// The detector must already be fitted; the normalizer must carry the
  /// training statistics. Both are borrowed and must outlive the monitor.
  OnlineMonitor(AnomalyDetector& detector, const data::MinMaxNormalizer& normalizer,
                MonitorConfig config = {});

  /// Calibrates the alarm threshold on a normalised training series.
  void calibrate(const data::MultivariateSeries& train);

  /// Sets the threshold directly (alternative to calibrate()).
  void set_threshold(float threshold);
  float threshold() const { return threshold_; }
  bool calibrated() const { return calibrated_; }

  /// Feeds one raw (unnormalised) sample; returns the anomaly score once the
  /// context is full, or a negative value while warming up. Alarm state and
  /// the event log update internally.
  float push(const float* raw_sample);
  float push(const std::vector<float>& raw_sample);

  /// True while an anomaly event is open.
  bool in_alarm() const { return tracker_.in_alarm(); }

  /// Completed + open events so far.
  const std::vector<AnomalyEvent>& events() const { return tracker_.events(); }

  /// Number of samples consumed.
  Index samples_seen() const { return samples_seen_; }

  /// Optional callback invoked when a new event is raised (e.g. to trigger a
  /// reconfiguration strategy).
  void on_event(std::function<void(const AnomalyEvent&)> callback) {
    callback_ = std::move(callback);
  }

 private:
  AnomalyDetector* detector_;
  const data::MinMaxNormalizer* normalizer_;
  MonitorConfig config_;

  float threshold_ = 0.0F;
  bool calibrated_ = false;

  std::deque<std::vector<float>> ring_;
  std::vector<float> scratch_;
  Index samples_seen_ = 0;

  AlarmTracker tracker_;
  std::function<void(const AnomalyEvent&)> callback_;

  Tensor context_tensor() const;
};

}  // namespace varade::core
