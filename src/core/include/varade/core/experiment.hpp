// End-to-end experiment orchestration: simulate the robotic cell, record the
// training (normal) and test (collision) datasets, normalise, train each
// detector, score the test stream, and evaluate — the pipeline behind
// Table 2, Figure 3, and the ablation benches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "varade/core/detector.hpp"
#include "varade/core/profiles.hpp"
#include "varade/data/normalize.hpp"
#include "varade/data/timeseries.hpp"

namespace varade::core {

/// The generated datasets of one experiment (already normalised to [-1, 1]
/// with statistics fitted on the training split, per paper section 4.3).
struct ExperimentData {
  data::MultivariateSeries train;  // normal behaviour, normalised
  data::MultivariateSeries test;   // collision experiment, normalised, labelled
  data::MinMaxNormalizer normalizer;
  int n_collision_events = 0;
};

/// Simulates and prepares train/test recordings per the profile's data
/// settings (train shares the action library with test but not noise draws).
ExperimentData generate_experiment_data(const Profile& profile);

/// Outcome of one detector on one experiment.
struct DetectorRun {
  std::string detector;
  double auc_roc = 0.0;
  double train_seconds = 0.0;
  double mean_score_latency_ms = 0.0;  // host wall-clock per inference
  double host_inference_hz = 0.0;
  SeriesScores scores;
  edge::ModelCost cost;  // of the actually-trained (profile-scaled) model
};

/// Fits `detector` on the experiment's training split and scores the test
/// split at the profile's evaluation stride.
DetectorRun run_detector(AnomalyDetector& detector, const ExperimentData& data,
                         const Profile& profile);

/// Convenience: build-by-name, fit, and score.
DetectorRun run_detector(const std::string& name, const ExperimentData& data,
                         const Profile& profile);

}  // namespace varade::core
