// VARADE: the paper's variational autoregressive anomaly detector
// (sections 3.1-3.2).
//
// Architecture (Figure 1): a cascade of 1-D convolutions with kernel size and
// stride 2 — halving the time dimension at every layer — with ReLU
// activations, feature maps doubling every two layers from `base_channels`
// (paper: 128, reaching 1024), and a final linear projection producing the
// mean and log-variance of a Gaussian over the next time step.
//
// Training minimises the negative ELBO, L = L_recon + lambda * D_KL (Eq. 7).
// At inference the predicted mean is discarded and the mean predicted
// variance across channels is the anomaly score: the KL prior pulls the
// variance toward 1 wherever the data do not pin it down, so unfamiliar
// (anomalous) contexts yield high variance (section 3.2).
#pragma once

#include <cstdint>
#include <memory>

#include "varade/core/detector.hpp"
#include "varade/nn/layers.hpp"
#include "varade/nn/loss.hpp"
#include "varade/nn/module.hpp"

namespace varade::core {

struct VaradeConfig {
  Index window = 512;        // paper: T = 512 (must be a power of two >= 8)
  Index base_channels = 128; // paper: 128, doubled every 2 layers
  /// Paper design choice: double the feature maps every second layer
  /// ("helping the network to learn more complex and abstract features").
  /// Disable for the width-ablation bench (constant-width trunk).
  bool channel_doubling = true;
  float lambda = 0.01F;      // KL weight in Eq. 7
  // Training.
  int epochs = 10;
  Index batch_size = 32;
  float learning_rate = 1e-5F;  // paper section 3.4 (Adam, fixed 1e-5)
  Index train_stride = 1;       // hop between training windows
  float grad_clip = 5.0F;
  std::uint64_t seed = 1;
  bool verbose = false;
};

/// Number of conv layers for a window size: halve until the time dimension
/// reaches 2 (paper: T=512 -> 8 layers).
Index varade_layer_count(Index window);

/// The network: conv trunk + two linear heads.
class VaradeModel {
 public:
  VaradeModel(Index in_channels, const VaradeConfig& config, Rng& rng);

  struct Output {
    Tensor mu;      // [N, C]
    Tensor logvar;  // [N, C]
  };

  /// x: [N, C, T].
  Output forward(const Tensor& x);

  /// Inference-only forward: same arithmetic as forward() but no activation
  /// caches, so scoring never pays the training path's per-layer copies.
  Output forward_inference(const Tensor& x);

  /// Backward from loss gradients; accumulates parameter gradients.
  void backward(const Tensor& grad_mu, const Tensor& grad_logvar);

  std::vector<nn::Parameter*> parameters();
  void zero_grad();

  Index in_channels() const { return in_channels_; }
  Index window() const { return window_; }
  long num_params();
  long flops() const;
  Index n_layers() const { return n_conv_layers_; }

  nn::Sequential& trunk() { return trunk_; }
  nn::Linear& mu_head() { return *mu_head_; }
  nn::Linear& logvar_head() { return *logvar_head_; }

 private:
  Index in_channels_;
  Index window_;
  Index n_conv_layers_;
  nn::Sequential trunk_;  // convs + relus + flatten
  std::unique_ptr<nn::Linear> mu_head_;
  std::unique_ptr<nn::Linear> logvar_head_;
};

/// The detector wrapper implementing the AnomalyDetector interface.
class VaradeDetector : public AnomalyDetector {
 public:
  explicit VaradeDetector(VaradeConfig config = {});

  std::string name() const override { return "VARADE"; }
  void fit(const data::MultivariateSeries& train) override;
  float score_step(const Tensor& context, const Tensor& observed) override;
  /// Native batched scoring: one [B, C, T] forward through the model instead
  /// of B single-row forwards. Every layer processes batch rows independently
  /// with a fixed accumulation order, so scores are bit-identical to
  /// score_step.
  void score_batch(const Tensor& contexts, const Tensor& observed, float* out) override;
  /// Fresh detector with the same architecture and a deep copy of the
  /// weights; serving layers shard batches across such replicas.
  std::unique_ptr<AnomalyDetector> clone_fitted() const override;
  Index context_window() const override { return config_.window; }
  edge::ModelCost cost() const override;
  bool fitted() const override { return model_ != nullptr; }

  /// Mean predicted variance over channels for a context [C, T] — the paper's
  /// anomaly score.
  float variance_score(const Tensor& context);

  /// The scoring rule itself: mean exp(logvar) over `n` log-variance values.
  /// Shared by variance_score and the serve::ScoringEngine batched path so
  /// both stay bit-identical by construction.
  static float score_from_logvar(const float* logvar, Index n);

  /// Forecast-error score ||observed - mu||_2 on the same model; used by the
  /// score-function ablation (bench_ablation_score).
  float forecast_error_score(const Tensor& context, const Tensor& observed);

  /// Training loss history (one entry per epoch).
  const std::vector<float>& loss_history() const { return loss_history_; }

  /// Persists the fitted model (architecture description + weights) so a
  /// detector trained offline can be deployed to the edge device.
  void save(const std::string& path) const;

  /// Restores a detector saved with save(); replaces config and weights.
  void load(const std::string& path);

  VaradeModel* model() { return model_.get(); }
  const VaradeConfig& config() const { return config_; }

 private:
  VaradeConfig config_;
  std::unique_ptr<VaradeModel> model_;
  std::vector<float> loss_history_;
};

}  // namespace varade::core
