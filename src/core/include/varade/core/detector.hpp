// Unified anomaly-detector interface.
//
// All six detectors of the paper (VARADE + five baselines, section 3) share
// this interface so the streaming runtime, benches, and tests treat them
// uniformly:
//   - fit() consumes a normalised recording of *normal* behaviour
//     (unsupervised training, section 2);
//   - score_step() receives the context window of the T samples preceding the
//     current one plus the current observation, and returns an anomaly score
//     for that observation (higher = more anomalous);
//   - score_batch() scores B independent (context, observation) pairs in one
//     call — the contract every batched frontend (score_series, threshold
//     calibration, serve::ScoringEngine) is built on. The default
//     implementation loops score_step, so results are bit-identical to the
//     sequential path by construction; detectors with a cheaper batched
//     evaluation (VARADE's [N, C, T] forward, kNN's query loop, Isolation
//     Forest's tree traversal) override it without changing the results;
//   - clone_fitted() deep-copies a fitted detector so a serving layer can
//     shard batches across per-worker replicas without knowing the model
//     type. Detectors that cannot be replicated return null.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "varade/data/timeseries.hpp"
#include "varade/edge/profiler.hpp"
#include "varade/tensor/tensor.hpp"

namespace varade::serve {
class ThreadPool;  // owned by varade::threads; core borrows it for scoring
}

namespace varade::core {

/// Result of scoring a whole series.
struct SeriesScores {
  std::vector<float> scores;
  std::vector<int> labels;
  std::vector<Index> times;       // sample index each score refers to
  double mean_latency_ms = 0.0;   // host wall-clock per scored sample
};

class AnomalyDetector {
 public:
  // Out of line: the header only forward-declares serve::ThreadPool, so the
  // scoring_pool_ unique_ptr must be destroyed where the type is complete.
  virtual ~AnomalyDetector();

  AnomalyDetector();
  AnomalyDetector(const AnomalyDetector&) = delete;
  AnomalyDetector& operator=(const AnomalyDetector&) = delete;

  virtual std::string name() const = 0;

  /// Trains on a normalised series of normal behaviour.
  virtual void fit(const data::MultivariateSeries& train) = 0;

  /// Scores the observation `observed` [C] given the `context` [C, T] of the
  /// T samples immediately preceding it.
  virtual float score_step(const Tensor& context, const Tensor& observed) = 0;

  /// Scores B independent pairs: `contexts` [B, C, T], `observed` [B, C],
  /// writing one score per row into `out` [B]. The base implementation loops
  /// score_step row by row; overrides must produce bit-identical scores.
  virtual void score_batch(const Tensor& contexts, const Tensor& observed, float* out);

  /// Deep copy of a fitted detector (weights, reference sets, thresholds —
  /// everything scoring depends on) for per-worker serving replicas. Returns
  /// null when the detector cannot be replicated; callers must fall back to
  /// unsharded scoring through the original instance.
  virtual std::unique_ptr<AnomalyDetector> clone_fitted() const { return nullptr; }

  /// Context length T the detector expects.
  virtual Index context_window() const = 0;

  /// Static workload description for the edge profiler (one inference).
  virtual edge::ModelCost cost() const = 0;

  virtual bool fitted() const = 0;

  /// Opt-in intra-batch parallelism for score_batch. n = 1 (the default)
  /// keeps today's fully sequential behaviour and owns no threads; n > 1
  /// builds a persistent serve::ThreadPool of n workers (caller included)
  /// that native score_batch overrides use to split the B axis into
  /// contiguous row ranges; n = 0 selects std::thread::hardware_concurrency().
  /// The bit-parity contract is unchanged: for any thread count, score_batch
  /// output equals the sequential path bit for bit, because rows are scored
  /// independently with their per-row accumulation order untouched.
  /// Not thread-safe against concurrent score_batch calls on this instance.
  void set_scoring_threads(int n);

  /// Workers the next score_batch call may use (>= 1).
  int scoring_threads() const;

  /// Walks a test series, scoring every `stride`-th sample after the first
  /// context_window() samples through score_batch with up to `batch` rows per
  /// call; measures host wall-clock per scored sample.
  SeriesScores score_series(const data::MultivariateSeries& test, Index stride = 1,
                            Index batch = 32);

 protected:
  /// Validates score_batch arguments ([B, C, T] / [B, C], T = context window);
  /// shared by the base fallback and every native override.
  void check_batch_args(const Tensor& contexts, const Tensor& observed) const;

  /// Validates the channel count of a score_batch call against the fitted
  /// detector ("expects N channels, got M"); shared by every native override
  /// that gathers per-channel data.
  void check_batch_channels(const Tensor& contexts, Index expected) const;

  /// Runs fn(begin, end) over a partition of [0, rows) into contiguous,
  /// disjoint ranges — one per scoring worker, in parallel when
  /// set_scoring_threads enabled a pool, inline as fn(0, rows) otherwise.
  /// Native score_batch overrides route their per-row work through this so
  /// the thread plumbing lives in one place.
  void parallel_rows(Index rows, const std::function<void(Index, Index)>& fn);

 private:
  std::unique_ptr<serve::ThreadPool> scoring_pool_;  // null = sequential
};

}  // namespace varade::core
