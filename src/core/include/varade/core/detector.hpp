// Unified anomaly-detector interface.
//
// All six detectors of the paper (VARADE + five baselines, section 3) share
// this interface so the streaming runtime, benches, and tests treat them
// uniformly:
//   - fit() consumes a normalised recording of *normal* behaviour
//     (unsupervised training, section 2);
//   - score_step() receives the context window of the T samples preceding the
//     current one plus the current observation, and returns an anomaly score
//     for that observation (higher = more anomalous).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "varade/data/timeseries.hpp"
#include "varade/edge/profiler.hpp"
#include "varade/tensor/tensor.hpp"

namespace varade::core {

/// Result of scoring a whole series.
struct SeriesScores {
  std::vector<float> scores;
  std::vector<int> labels;
  std::vector<Index> times;       // sample index each score refers to
  double mean_latency_ms = 0.0;   // host wall-clock per score_step call
};

class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  AnomalyDetector() = default;
  AnomalyDetector(const AnomalyDetector&) = delete;
  AnomalyDetector& operator=(const AnomalyDetector&) = delete;

  virtual std::string name() const = 0;

  /// Trains on a normalised series of normal behaviour.
  virtual void fit(const data::MultivariateSeries& train) = 0;

  /// Scores the observation `observed` [C] given the `context` [C, T] of the
  /// T samples immediately preceding it.
  virtual float score_step(const Tensor& context, const Tensor& observed) = 0;

  /// Context length T the detector expects.
  virtual Index context_window() const = 0;

  /// Static workload description for the edge profiler (one inference).
  virtual edge::ModelCost cost() const = 0;

  virtual bool fitted() const = 0;

  /// Walks a test series, scoring every `stride`-th sample after the first
  /// context_window() samples; measures host wall-clock per inference.
  SeriesScores score_series(const data::MultivariateSeries& test, Index stride = 1);
};

}  // namespace varade::core
