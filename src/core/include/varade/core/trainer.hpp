// Shared training-loop helpers used by the neural detectors.
#pragma once

#include <vector>

#include "varade/data/window.hpp"
#include "varade/tensor/rng.hpp"
#include "varade/tensor/tensor.hpp"

namespace varade::core {

/// Splits indices 0..n-1 into shuffled batches (last batch may be short).
std::vector<std::vector<Index>> make_batches(Index n, Index batch_size, Rng& rng);

/// Progress callback signature: (epoch, mean epoch loss).
using EpochCallback = void (*)(int, float);

}  // namespace varade::core
