#include "varade/core/detector.hpp"

#include <chrono>

#include "varade/data/window.hpp"

namespace varade::core {

SeriesScores AnomalyDetector::score_series(const data::MultivariateSeries& test, Index stride) {
  check(fitted(), name() + ": score_series before fit");
  check(stride >= 1, "stride must be >= 1");
  const Index window = context_window();
  check(test.length() > window, name() + ": test series shorter than context window");

  SeriesScores out;
  const Index c = test.n_channels();
  Tensor observed({c});

  using Clock = std::chrono::steady_clock;
  double total_ms = 0.0;
  long calls = 0;

  for (Index t = window; t < test.length(); t += stride) {
    const Tensor context = data::extract_context(test, t - 1, window);
    const float* s = test.sample(t);
    for (Index ch = 0; ch < c; ++ch) observed[ch] = s[ch];

    const auto t0 = Clock::now();
    const float score = score_step(context, observed);
    const auto t1 = Clock::now();
    total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++calls;

    out.scores.push_back(score);
    out.labels.push_back(test.label(t));
    out.times.push_back(t);
  }
  out.mean_latency_ms = calls > 0 ? total_ms / static_cast<double>(calls) : 0.0;
  return out;
}

}  // namespace varade::core
