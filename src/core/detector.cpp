#include "varade/core/detector.hpp"

#include <algorithm>
#include <chrono>

#include "varade/data/window.hpp"
#include "varade/serve/thread_pool.hpp"

namespace varade::core {

AnomalyDetector::AnomalyDetector() = default;
AnomalyDetector::~AnomalyDetector() = default;

void AnomalyDetector::set_scoring_threads(int n) {
  check(n >= 0, name() + ": scoring threads must be >= 0 (0 = hardware concurrency)");
  if (n == 1) {
    scoring_pool_.reset();
    return;
  }
  scoring_pool_ = std::make_unique<serve::ThreadPool>(n);
}

int AnomalyDetector::scoring_threads() const {
  return scoring_pool_ ? scoring_pool_->size() : 1;
}

void AnomalyDetector::parallel_rows(Index rows, const std::function<void(Index, Index)>& fn) {
  const Index workers = scoring_pool_ ? static_cast<Index>(scoring_pool_->size()) : 1;
  const Index ranges = std::min(rows, workers);
  if (ranges <= 1) {
    if (rows > 0) fn(0, rows);
    return;
  }
  // Contiguous near-even split: range r covers [r*rows/ranges, (r+1)*rows/ranges).
  scoring_pool_->parallel_for(ranges, [&](Index r, int /*worker*/) {
    fn(r * rows / ranges, (r + 1) * rows / ranges);
  });
}

void AnomalyDetector::check_batch_args(const Tensor& contexts, const Tensor& observed) const {
  check(contexts.rank() == 3,
        name() + ": score_batch expects contexts [B, C, T], got " +
            shape_to_string(contexts.shape()));
  check(contexts.dim(2) == context_window(),
        name() + ": score_batch expects context length " + std::to_string(context_window()) +
            ", got " + std::to_string(contexts.dim(2)));
  check(observed.rank() == 2 && observed.dim(0) == contexts.dim(0) &&
            observed.dim(1) == contexts.dim(1),
        name() + ": score_batch expects observed [" + std::to_string(contexts.dim(0)) + ", " +
            std::to_string(contexts.dim(1)) + "], got " + shape_to_string(observed.shape()));
}

void AnomalyDetector::check_batch_channels(const Tensor& contexts, Index expected) const {
  check(contexts.dim(1) == expected,
        name() + " score_batch expects " + std::to_string(expected) + " channels, got " +
            std::to_string(contexts.dim(1)));
}

void AnomalyDetector::score_batch(const Tensor& contexts, const Tensor& observed, float* out) {
  check(fitted(), name() + ": score_batch before fit");
  check_batch_args(contexts, observed);
  const Index b = contexts.dim(0);
  const Index c = contexts.dim(1);
  const Index t = contexts.dim(2);
  Tensor context({c, t});
  Tensor sample({c});
  for (Index i = 0; i < b; ++i) {
    std::copy_n(contexts.data() + i * c * t, static_cast<std::size_t>(c * t), context.data());
    std::copy_n(observed.data() + i * c, static_cast<std::size_t>(c), sample.data());
    out[i] = score_step(context, sample);
  }
}

SeriesScores AnomalyDetector::score_series(const data::MultivariateSeries& test, Index stride,
                                           Index batch) {
  check(fitted(), name() + ": score_series before fit");
  check(stride >= 1, "stride must be >= 1");
  check(batch >= 1, "batch must be >= 1");
  const Index window = context_window();
  check(test.length() > window, name() + ": test series shorter than context window");

  SeriesScores out;
  for (Index t = window; t < test.length(); t += stride) out.times.push_back(t);
  const auto n_scores = static_cast<Index>(out.times.size());
  out.scores.resize(out.times.size());
  out.labels.reserve(out.times.size());
  for (Index t : out.times) out.labels.push_back(test.label(t));

  const Index c = test.n_channels();
  using Clock = std::chrono::steady_clock;
  double total_ms = 0.0;

  for (Index begin = 0; begin < n_scores; begin += batch) {
    const Index rows = std::min(batch, n_scores - begin);
    Tensor contexts({rows, c, window});
    Tensor observed({rows, c});
    for (Index r = 0; r < rows; ++r) {
      const Index t = out.times[static_cast<std::size_t>(begin + r)];
      const Tensor context = data::extract_context(test, t - 1, window);
      std::copy_n(context.data(), static_cast<std::size_t>(c * window),
                  contexts.data() + r * c * window);
      std::copy_n(test.sample(t), static_cast<std::size_t>(c), observed.data() + r * c);
    }

    const auto t0 = Clock::now();
    score_batch(contexts, observed, out.scores.data() + begin);
    const auto t1 = Clock::now();
    total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  out.mean_latency_ms = n_scores > 0 ? total_ms / static_cast<double>(n_scores) : 0.0;
  return out;
}

}  // namespace varade::core
