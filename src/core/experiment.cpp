#include "varade/core/experiment.hpp"

#include <chrono>

#include "varade/eval/metrics.hpp"
#include "varade/robot/simulator.hpp"

namespace varade::core {

ExperimentData generate_experiment_data(const Profile& profile) {
  check(profile.train_duration_s > 0.0 && profile.test_duration_s > 0.0,
        "experiment durations must be positive");

  robot::SimulatorConfig sim_cfg;
  sim_cfg.sample_rate_hz = profile.sample_rate_hz;
  sim_cfg.seed = profile.seed;

  // Training recording: normal behaviour only.
  sim_cfg.noise_seed = profile.seed * 1000 + 1;
  robot::RobotCellSimulator train_sim(sim_cfg);
  data::MultivariateSeries train_raw = train_sim.record(profile.train_duration_s);
  check(!train_raw.has_anomalies(), "training recording must be anomaly-free");

  // Test recording: same action library, fresh noise, plus the collision
  // schedule (paper section 4.3).
  sim_cfg.noise_seed = profile.seed * 1000 + 2;
  robot::RobotCellSimulator test_sim(sim_cfg);
  robot::CollisionScheduleConfig coll_cfg;
  coll_cfg.n_events = profile.n_collisions;
  coll_cfg.experiment_duration = profile.test_duration_s;
  coll_cfg.seed = profile.seed * 1000 + 3;
  robot::CollisionSchedule schedule(coll_cfg);
  test_sim.set_collision_schedule(schedule);
  data::MultivariateSeries test_raw = test_sim.record(profile.test_duration_s);

  ExperimentData data;
  data.n_collision_events = static_cast<int>(schedule.size());
  data.normalizer.fit(train_raw);
  data.train = data.normalizer.transform(train_raw);
  data.test = data.normalizer.transform(test_raw);
  return data;
}

DetectorRun run_detector(AnomalyDetector& detector, const ExperimentData& data,
                         const Profile& profile) {
  using Clock = std::chrono::steady_clock;

  DetectorRun run;
  run.detector = detector.name();

  const auto t0 = Clock::now();
  detector.fit(data.train);
  const auto t1 = Clock::now();
  run.train_seconds = std::chrono::duration<double>(t1 - t0).count();

  run.scores = detector.score_series(data.test, profile.eval_stride);
  run.mean_score_latency_ms = run.scores.mean_latency_ms;
  run.host_inference_hz =
      run.mean_score_latency_ms > 0.0 ? 1000.0 / run.mean_score_latency_ms : 0.0;
  run.auc_roc = eval::auc_roc(run.scores.scores, run.scores.labels);
  run.cost = detector.cost();
  return run;
}

DetectorRun run_detector(const std::string& name, const ExperimentData& data,
                         const Profile& profile) {
  const std::unique_ptr<AnomalyDetector> detector = make_detector(profile, name);
  return run_detector(*detector, data, profile);
}

}  // namespace varade::core
