#include "varade/core/trainer.hpp"

#include <algorithm>
#include <numeric>

namespace varade::core {

std::vector<std::vector<Index>> make_batches(Index n, Index batch_size, Rng& rng) {
  check(n > 0, "make_batches on empty dataset");
  check(batch_size >= 1, "batch size must be >= 1");
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::shuffle(order.begin(), order.end(), rng.engine());

  std::vector<std::vector<Index>> batches;
  for (Index start = 0; start < n; start += batch_size) {
    const Index end = std::min(n, start + batch_size);
    batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                         order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace varade::core
