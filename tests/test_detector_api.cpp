// Tests for the batched, detector-generic scoring API.
//
// Two invariants are pinned here for all six detectors of the paper:
//  1. score_batch is bit-identical to repeated score_step at every batch
//     size (the contract every batched frontend is built on), and
//     clone_fitted() replicas score bit-identically to the original;
//  2. serve::ScoringEngine serves any fitted AnomalyDetector — scores and
//     alarm events match one sequential OnlineMonitor per stream exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "varade/core/monitor.hpp"
#include "varade/core/profiles.hpp"
#include "varade/data/window.hpp"
#include "varade/serve/scoring_engine.hpp"

namespace varade::core {
namespace {

constexpr Index kChannels = 3;

data::MultivariateSeries make_sine(Index length, bool planted, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(kChannels);
  std::vector<float> row(static_cast<std::size_t>(kChannels));
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = planted && (t % 120) >= 90 && (t % 120) < 100;
    for (Index c = 0; c < kChannels; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, anomalous ? 0.9F : 0.03F);
    }
    s.append(row, anomalous ? 1 : 0);
  }
  return s;
}

/// Tiny-footprint configurations of all six detectors (fit must stay fast;
/// the scoring contract under test is size-independent).
Profile tiny_profile() {
  Profile p = repro_profile();
  p.varade.window = 16;
  p.varade.base_channels = 8;
  p.varade.epochs = 2;
  p.varade.learning_rate = 1e-3F;
  p.varade.train_stride = 4;

  p.ar_lstm.window = 16;
  p.ar_lstm.hidden = 8;
  p.ar_lstm.n_layers = 1;
  p.ar_lstm.epochs = 1;
  p.ar_lstm.learning_rate = 1e-3F;
  p.ar_lstm.train_stride = 8;

  p.gbrf.window = 16;
  p.gbrf.feature_steps = 4;
  p.gbrf.forest.n_trees = 5;
  p.gbrf.forest.tree.max_depth = 3;

  p.ae.window = 16;
  p.ae.base_channels = 8;
  p.ae.epochs = 1;
  p.ae.learning_rate = 1e-3F;
  p.ae.train_stride = 8;

  p.knn.max_reference_points = 400;
  p.iforest.forest.n_trees = 25;
  p.iforest.forest.subsample = 64;
  return p;
}

/// All six detectors fitted once on a shared synthetic recording (fitting
/// dominates the runtime of this binary; every test only scores).
struct DetectorRig {
  data::MultivariateSeries train_raw = make_sine(600, false, 1);
  data::MinMaxNormalizer normalizer;
  data::MultivariateSeries train;
  Profile profile = tiny_profile();
  std::vector<std::unique_ptr<AnomalyDetector>> detectors;

  DetectorRig() {
    normalizer.fit(train_raw);
    train = normalizer.transform(train_raw);
    for (const std::string& name : detector_names()) {
      detectors.push_back(make_detector(profile, name));
      detectors.back()->fit(train);
    }
  }
};

DetectorRig& rig() {
  static DetectorRig* r = new DetectorRig();
  return *r;
}

/// Gathers `rows` (context, observation) pairs from a normalised series into
/// the score_batch layout, starting at the detector's context window.
void gather_pairs(const data::MultivariateSeries& series, Index window, Index rows,
                  Tensor& contexts, Tensor& observed) {
  contexts = Tensor({rows, kChannels, window});
  observed = Tensor({rows, kChannels});
  for (Index r = 0; r < rows; ++r) {
    const Index t = window + r;
    const Tensor context = data::extract_context(series, t - 1, window);
    for (Index i = 0; i < kChannels * window; ++i)
      contexts[r * kChannels * window + i] = context[i];
    const float* s = series.sample(t);
    for (Index c = 0; c < kChannels; ++c) observed[r * kChannels + c] = s[c];
  }
}

TEST(ScoreBatch, BitIdenticalToScoreStepAtEveryBatchSize) {
  const data::MultivariateSeries test =
      rig().normalizer.transform(make_sine(80, true, 7));
  for (auto& detector : rig().detectors) {
    const Index window = detector->context_window();
    constexpr Index kRows = 40;
    Tensor contexts;
    Tensor observed;
    gather_pairs(test, window, kRows, contexts, observed);

    // Sequential reference.
    std::vector<float> reference;
    Tensor context({kChannels, window});
    Tensor sample({kChannels});
    for (Index r = 0; r < kRows; ++r) {
      for (Index i = 0; i < kChannels * window; ++i)
        context[i] = contexts[r * kChannels * window + i];
      for (Index c = 0; c < kChannels; ++c) sample[c] = observed[r * kChannels + c];
      reference.push_back(detector->score_step(context, sample));
    }

    for (const Index batch : {Index{1}, Index{7}, Index{32}}) {
      std::vector<float> scores(static_cast<std::size_t>(kRows), -1.0F);
      for (Index begin = 0; begin < kRows; begin += batch) {
        const Index rows = std::min(batch, kRows - begin);
        Tensor ctx_chunk = contexts.slice0(begin, begin + rows);
        Tensor obs_chunk = observed.slice0(begin, begin + rows);
        detector->score_batch(ctx_chunk, obs_chunk, scores.data() + begin);
      }
      for (Index r = 0; r < kRows; ++r)
        EXPECT_EQ(scores[static_cast<std::size_t>(r)], reference[static_cast<std::size_t>(r)])
            << detector->name() << " batch " << batch << " row " << r;
    }
  }
}

TEST(ScoreBatch, RejectsMalformedShapes) {
  for (auto& detector : rig().detectors) {
    const Index window = detector->context_window();
    std::vector<float> out(4);
    EXPECT_THROW(detector->score_batch(Tensor({kChannels, window}), Tensor({1, kChannels}),
                                       out.data()),
                 Error)
        << detector->name();
    EXPECT_THROW(detector->score_batch(Tensor({2, kChannels, window + 1}),
                                       Tensor({2, kChannels}), out.data()),
                 Error)
        << detector->name();
    EXPECT_THROW(detector->score_batch(Tensor({2, kChannels, window}),
                                       Tensor({3, kChannels}), out.data()),
                 Error)
        << detector->name();
  }
}

TEST(CloneFitted, ReplicasScoreBitIdentically) {
  const data::MultivariateSeries test =
      rig().normalizer.transform(make_sine(64, true, 13));
  for (auto& detector : rig().detectors) {
    const std::unique_ptr<AnomalyDetector> clone = detector->clone_fitted();
    ASSERT_NE(clone, nullptr) << detector->name();
    EXPECT_TRUE(clone->fitted()) << detector->name();
    EXPECT_EQ(clone->name(), detector->name());
    EXPECT_EQ(clone->context_window(), detector->context_window());

    const Index window = detector->context_window();
    constexpr Index kRows = 16;
    Tensor contexts;
    Tensor observed;
    gather_pairs(test, window, kRows, contexts, observed);
    std::vector<float> original(static_cast<std::size_t>(kRows));
    std::vector<float> replica(static_cast<std::size_t>(kRows));
    detector->score_batch(contexts, observed, original.data());
    clone->score_batch(contexts, observed, replica.data());
    EXPECT_EQ(original, replica) << detector->name();
  }
}

TEST(CloneFitted, UnfittedDetectorThrows) {
  const Profile p = tiny_profile();
  for (const std::string& name : detector_names()) {
    const std::unique_ptr<AnomalyDetector> unfitted = make_detector(p, name);
    EXPECT_THROW(unfitted->clone_fitted(), Error) << name;
  }
}

TEST(ScoreSeries, BatchSizeDoesNotChangeScoresOrLabels) {
  const data::MultivariateSeries test =
      rig().normalizer.transform(make_sine(120, true, 21));
  for (auto& detector : rig().detectors) {
    const SeriesScores one = detector->score_series(test, 2, 1);
    const SeriesScores seven = detector->score_series(test, 2, 7);
    const SeriesScores wide = detector->score_series(test, 2, 1024);
    EXPECT_EQ(one.scores, seven.scores) << detector->name();
    EXPECT_EQ(one.scores, wide.scores) << detector->name();
    EXPECT_EQ(one.labels, seven.labels) << detector->name();
    EXPECT_EQ(one.times, seven.times) << detector->name();
    EXPECT_THROW(detector->score_series(test, 2, 0), Error) << detector->name();
  }
}

TEST(CalibrateThreshold, BatchSizeDoesNotChangeThreshold) {
  for (auto& detector : rig().detectors) {
    MonitorConfig narrow;
    narrow.calibration_batch = 1;
    MonitorConfig wide;
    wide.calibration_batch = 64;
    EXPECT_EQ(calibrate_threshold(*detector, rig().train, narrow),
              calibrate_threshold(*detector, rig().train, wide))
        << detector->name();
  }
}

/// Scores + events of one stream run through a sequential OnlineMonitor.
struct SequentialRun {
  std::vector<float> scores;
  std::vector<AnomalyEvent> events;
  bool in_alarm = false;
};

SequentialRun run_monitor(AnomalyDetector& detector, const data::MultivariateSeries& stream,
                          float threshold) {
  OnlineMonitor monitor(detector, rig().normalizer);
  monitor.set_threshold(threshold);
  SequentialRun run;
  for (Index t = 0; t < stream.length(); ++t) run.scores.push_back(monitor.push(stream.sample(t)));
  run.events = monitor.events();
  run.in_alarm = monitor.in_alarm();
  return run;
}

TEST(ScoringEngineAllDetectors, MultiStreamParityWithSequentialMonitors) {
  constexpr Index kStreams = 4;
  std::vector<data::MultivariateSeries> inputs;
  for (Index s = 0; s < kStreams; ++s)
    inputs.push_back(make_sine(150, /*planted=*/s % 2 == 0, 100 + static_cast<std::uint64_t>(s)));

  for (auto& detector : rig().detectors) {
    const float threshold = calibrate_threshold(*detector, rig().train, {});
    std::vector<SequentialRun> expected;
    for (Index s = 0; s < kStreams; ++s)
      expected.push_back(run_monitor(*detector, inputs[static_cast<std::size_t>(s)], threshold));

    serve::ScoringEngine engine(*detector, rig().normalizer,
                                {.n_threads = 3, .max_batch = 7, .shard_forward = true});
    engine.add_streams(kStreams);
    engine.set_threshold(threshold);
    // Every detector is replicable, so the sharded path is exercised here.
    EXPECT_EQ(engine.n_replicas(), 2) << detector->name();

    // Feed in chunks so step() sees many streams pending at once and batches
    // their contexts.
    std::vector<std::vector<float>> scores(kStreams);
    constexpr Index kChunk = 25;
    for (Index t0 = 0; t0 < 150; t0 += kChunk) {
      for (Index s = 0; s < kStreams; ++s)
        for (Index t = t0; t < t0 + kChunk; ++t)
          engine.push(s, inputs[static_cast<std::size_t>(s)].sample(t), 3);
      for (const serve::StreamScore& r : engine.step())
        scores[static_cast<std::size_t>(r.stream)].push_back(r.score);
    }
    EXPECT_GT(engine.forward_calls(), 0) << detector->name();

    for (Index s = 0; s < kStreams; ++s) {
      const auto& got = scores[static_cast<std::size_t>(s)];
      const auto& want = expected[static_cast<std::size_t>(s)].scores;
      ASSERT_EQ(got.size(), want.size()) << detector->name() << " stream " << s;
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << detector->name() << " stream " << s << " sample " << i;

      const auto& events = engine.events(s);
      const auto& want_events = expected[static_cast<std::size_t>(s)].events;
      ASSERT_EQ(events.size(), want_events.size()) << detector->name() << " stream " << s;
      for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].onset_sample, want_events[i].onset_sample)
            << detector->name() << " stream " << s << " event " << i;
        EXPECT_EQ(events[i].last_sample, want_events[i].last_sample)
            << detector->name() << " stream " << s << " event " << i;
        EXPECT_EQ(events[i].peak_score, want_events[i].peak_score)
            << detector->name() << " stream " << s << " event " << i;
      }
      EXPECT_EQ(engine.in_alarm(s), expected[static_cast<std::size_t>(s)].in_alarm)
          << detector->name() << " stream " << s;
    }
  }
}

TEST(ScoringEngineAllDetectors, CalibrateMatchesMonitorForEveryDetector) {
  for (auto& detector : rig().detectors) {
    OnlineMonitor monitor(*detector, rig().normalizer);
    monitor.calibrate(rig().train);
    serve::ScoringEngine engine(*detector, rig().normalizer);
    engine.calibrate(rig().train);
    EXPECT_EQ(engine.threshold(), monitor.threshold()) << detector->name();
  }
}

TEST(ScoringEngineAllDetectors, OutOfRangeStreamIdsThrowWithClearMessage) {
  serve::ScoringEngine engine(*rig().detectors.front(), rig().normalizer);
  engine.add_streams(2);
  const std::vector<float> sample(static_cast<std::size_t>(kChannels), 0.0F);

  EXPECT_THROW(engine.push(-1, sample), Error);
  EXPECT_THROW(engine.push(2, sample), Error);
  EXPECT_THROW(engine.events(7), Error);
  EXPECT_THROW(engine.in_alarm(-3), Error);
  EXPECT_THROW(engine.samples_seen(2), Error);

  try {
    engine.push(99, sample);
    FAIL() << "push(99) did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "stream id 99 out of range [0, 2)");
  }
}

}  // namespace
}  // namespace varade::core
