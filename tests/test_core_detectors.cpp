// Detector-level tests: the unified interface, each detector on a planted
// easy anomaly task, the VARADE loss mechanics, and failure injection.
#include <gtest/gtest.h>

#include <cmath>

#include "varade/core/baselines/ar_lstm.hpp"
#include "varade/core/baselines/autoencoder.hpp"
#include "varade/core/baselines/gbrf.hpp"
#include "varade/core/baselines/iforest.hpp"
#include "varade/core/baselines/knn.hpp"
#include "varade/core/profiles.hpp"
#include "varade/core/varade.hpp"
#include "varade/data/window.hpp"
#include "varade/eval/metrics.hpp"

namespace varade::core {
namespace {

// Synthetic task: smooth multi-sine normal signal; anomalies are bursts of
// large additive noise. Easy enough that any reasonable detector beats 0.5.
data::MultivariateSeries make_sine_series(Index length, Index channels, bool with_anomalies,
                                          std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(channels);
  std::vector<float> row(static_cast<std::size_t>(channels));
  std::vector<float> phase(static_cast<std::size_t>(channels));
  for (auto& p : phase) p = rng.uniform(0.0F, 6.28F);
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = with_anomalies && (t % 200) >= 170 && (t % 200) < 185;
    for (Index c = 0; c < channels; ++c) {
      const float base =
          std::sin(0.05F * static_cast<float>(t) + phase[static_cast<std::size_t>(c)]) +
          0.3F * std::sin(0.11F * static_cast<float>(t));
      const float noise = rng.normal(0.0F, anomalous ? 0.8F : 0.03F);
      row[static_cast<std::size_t>(c)] = base + noise;
    }
    s.append(row, anomalous ? 1 : 0);
  }
  return s;
}

double auc_on_sine_task(AnomalyDetector& detector) {
  const auto train = make_sine_series(1200, 4, false, 1);
  const auto test = make_sine_series(1200, 4, true, 2);
  detector.fit(train);
  const SeriesScores scores = detector.score_series(test, 2);
  return eval::auc_roc(scores.scores, scores.labels);
}

TEST(VaradeDetector, LayerCountRuleMatchesPaper) {
  // T=512 -> 8 conv layers (paper section 3.1).
  EXPECT_EQ(varade_layer_count(512), 8);
  EXPECT_EQ(varade_layer_count(64), 5);
  EXPECT_EQ(varade_layer_count(8), 2);
  EXPECT_THROW(varade_layer_count(100), Error);  // not a power of two
  EXPECT_THROW(varade_layer_count(4), Error);
}

TEST(VaradeModel, ChannelDoublingRule) {
  VaradeConfig cfg;
  cfg.window = 64;
  cfg.base_channels = 32;
  Rng rng(1);
  VaradeModel model(10, cfg, rng);
  EXPECT_EQ(model.n_layers(), 5);
  // Channels: 32, 32, 64, 64, 128; final length 2 -> feature dim 256.
  EXPECT_EQ(model.mu_head().in_features(), 256);
  EXPECT_EQ(model.logvar_head().out_features(), 10);
  const Tensor x = Tensor::randn({2, 10, 64}, rng);
  const VaradeModel::Output out = model.forward(x);
  EXPECT_EQ(out.mu.shape(), (Shape{2, 10}));
  EXPECT_EQ(out.logvar.shape(), (Shape{2, 10}));
}

TEST(VaradeModel, RejectsWrongInput) {
  VaradeConfig cfg;
  cfg.window = 32;
  cfg.base_channels = 8;
  Rng rng(2);
  VaradeModel model(3, cfg, rng);
  EXPECT_THROW(model.forward(Tensor({1, 3, 16})), Error);
  EXPECT_THROW(model.forward(Tensor({1, 4, 32})), Error);
}

TEST(VaradeDetector, TrainingReducesElboLoss) {
  VaradeConfig cfg;
  cfg.window = 32;
  cfg.base_channels = 8;
  cfg.epochs = 6;
  cfg.learning_rate = 1e-3F;
  cfg.train_stride = 2;
  VaradeDetector det(cfg);
  det.fit(make_sine_series(600, 3, false, 3));
  const auto& history = det.loss_history();
  ASSERT_EQ(history.size(), 6U);
  EXPECT_LT(history.back(), history.front());
}

TEST(VaradeDetector, BeatsChanceOnPlantedAnomalies) {
  VaradeConfig cfg;
  cfg.window = 32;
  cfg.base_channels = 8;
  cfg.epochs = 8;
  cfg.learning_rate = 1e-3F;
  cfg.train_stride = 2;
  VaradeDetector det(cfg);
  EXPECT_GT(auc_on_sine_task(det), 0.6);
}

TEST(VaradeDetector, VarianceAndForecastScoresAreFinite) {
  VaradeConfig cfg;
  cfg.window = 32;
  cfg.base_channels = 8;
  cfg.epochs = 2;
  cfg.train_stride = 4;
  VaradeDetector det(cfg);
  det.fit(make_sine_series(400, 3, false, 4));
  Rng rng(5);
  const Tensor ctx = Tensor::randn({3, 32}, rng);
  const Tensor obs = Tensor::randn({3}, rng);
  EXPECT_TRUE(std::isfinite(det.variance_score(ctx)));
  EXPECT_GT(det.variance_score(ctx), 0.0F);  // a variance
  EXPECT_TRUE(std::isfinite(det.forecast_error_score(ctx, obs)));
  EXPECT_GE(det.forecast_error_score(ctx, obs), 0.0F);
}

TEST(VaradeDetector, ErrorsBeforeFitAndOnShortSeries) {
  VaradeDetector det;
  EXPECT_FALSE(det.fitted());
  Rng rng(6);
  EXPECT_THROW(det.score_step(Tensor::randn({3, 512}, rng), Tensor({3})), Error);
  VaradeConfig cfg;
  cfg.window = 64;
  VaradeDetector det2(cfg);
  EXPECT_THROW(det2.fit(make_sine_series(32, 2, false, 7)), Error);
}

TEST(ArLstmDetector, BeatsChanceOnPlantedAnomalies) {
  ArLstmConfig cfg;
  cfg.window = 16;
  cfg.hidden = 16;
  cfg.n_layers = 1;
  cfg.epochs = 4;
  cfg.learning_rate = 3e-3F;
  cfg.train_stride = 4;
  ArLstmDetector det(cfg);
  EXPECT_GT(auc_on_sine_task(det), 0.6);
}

TEST(ArLstmDetector, ForecastShapeAndLossDecreases) {
  ArLstmConfig cfg;
  cfg.window = 16;
  cfg.hidden = 12;
  cfg.n_layers = 2;
  cfg.epochs = 3;
  cfg.learning_rate = 3e-3F;
  cfg.train_stride = 4;
  ArLstmDetector det(cfg);
  det.fit(make_sine_series(500, 3, false, 8));
  EXPECT_LT(det.loss_history().back(), det.loss_history().front());
  Rng rng(9);
  const Tensor pred = det.forecast(Tensor::randn({3, 16}, rng));
  EXPECT_EQ(pred.shape(), (Shape{3}));
}

TEST(GbrfDetector, BeatsChanceOnPlantedAnomalies) {
  GbrfDetectorConfig cfg;
  cfg.window = 16;
  cfg.feature_steps = 4;
  cfg.forest.n_trees = 10;
  cfg.forest.tree.max_depth = 3;
  GbrfDetector det(cfg);
  EXPECT_GT(auc_on_sine_task(det), 0.6);
}

TEST(GbrfDetector, FeatureDimAndForecast) {
  GbrfDetectorConfig cfg;
  cfg.window = 16;
  cfg.feature_steps = 4;
  cfg.forest.n_trees = 5;
  cfg.forest.tree.max_depth = 2;
  GbrfDetector det(cfg);
  det.fit(make_sine_series(400, 3, false, 10));
  EXPECT_EQ(det.feature_dim(), 12);
  Rng rng(11);
  EXPECT_EQ(det.forecast(Tensor::randn({3, 16}, rng)).shape(), (Shape{3}));
}

TEST(AutoencoderDetector, BeatsChanceOnPlantedAnomalies) {
  AutoencoderConfig cfg;
  cfg.window = 16;
  cfg.base_channels = 8;
  cfg.epochs = 6;
  cfg.learning_rate = 3e-3F;
  cfg.train_stride = 2;
  AutoencoderDetector det(cfg);
  EXPECT_GT(auc_on_sine_task(det), 0.6);
}

TEST(AutoencoderDetector, ReconstructionImprovesWithTraining) {
  const auto train = make_sine_series(600, 3, false, 12);
  AutoencoderConfig cfg;
  cfg.window = 16;
  cfg.base_channels = 8;
  cfg.learning_rate = 3e-3F;
  cfg.train_stride = 2;

  cfg.epochs = 1;
  AutoencoderDetector brief(cfg);
  brief.fit(train);

  cfg.epochs = 8;
  AutoencoderDetector longer(cfg);
  longer.fit(train);

  const Tensor window = data::extract_context(train, 99, 16);
  EXPECT_LT(longer.window_reconstruction_error(window),
            brief.window_reconstruction_error(window));
}

TEST(KnnDetector, BeatsChanceOnPlantedAnomalies) {
  KnnDetectorConfig cfg;
  cfg.max_reference_points = 500;
  KnnDetector det(cfg);
  EXPECT_GT(auc_on_sine_task(det), 0.6);
}

TEST(IForestDetector, BeatsChanceOnPlantedAnomalies) {
  IForestDetectorConfig cfg;
  cfg.forest.n_trees = 50;
  IForestDetector det(cfg);
  EXPECT_GT(auc_on_sine_task(det), 0.55);
}

TEST(AllDetectors, CostDescriptionsAreValidAfterFit) {
  Profile p = repro_profile();
  p.varade.window = 32;
  p.varade.base_channels = 8;
  p.varade.epochs = 1;
  p.varade.train_stride = 8;
  p.ar_lstm.window = 16;
  p.ar_lstm.hidden = 8;
  p.ar_lstm.n_layers = 1;
  p.ar_lstm.epochs = 1;
  p.ar_lstm.train_stride = 8;
  p.gbrf.window = 16;
  p.gbrf.feature_steps = 2;
  p.gbrf.forest.n_trees = 2;
  p.ae.window = 16;
  p.ae.base_channels = 4;
  p.ae.epochs = 1;
  p.ae.train_stride = 8;
  p.knn.max_reference_points = 100;
  p.iforest.forest.n_trees = 5;

  const auto train = make_sine_series(400, 3, false, 13);
  for (const std::string& name : detector_names()) {
    auto det = make_detector(p, name);
    EXPECT_EQ(det->name(), name);
    EXPECT_THROW(det->cost(), Error);  // before fit
    det->fit(train);
    ASSERT_TRUE(det->fitted());
    const edge::ModelCost cost = det->cost();
    EXPECT_EQ(cost.name, name);
    EXPECT_GT(cost.flops, 0.0) << name;
    EXPECT_GE(cost.n_ops, 1) << name;
    EXPECT_GT(cost.parallel_efficiency, 0.0) << name;
  }
}

TEST(AllDetectors, ScoreSeriesAlignmentAndLatency) {
  const auto train = make_sine_series(400, 3, false, 14);
  const auto test = make_sine_series(400, 3, true, 15);
  KnnDetector det({.knn = {.k = 3}, .max_reference_points = 200});
  det.fit(train);
  const SeriesScores scores = det.score_series(test, 5);
  ASSERT_FALSE(scores.scores.empty());
  EXPECT_EQ(scores.scores.size(), scores.labels.size());
  EXPECT_EQ(scores.scores.size(), scores.times.size());
  // Times start after the context window and advance by the stride.
  EXPECT_EQ(scores.times.front(), det.context_window());
  EXPECT_EQ(scores.times[1] - scores.times[0], 5);
  EXPECT_GE(scores.mean_latency_ms, 0.0);
  EXPECT_THROW(det.score_series(test, 0), Error);
}

TEST(Profiles, ReproAndPaperAreConsistent) {
  const Profile repro = repro_profile();
  const Profile paper = paper_profile();
  EXPECT_EQ(paper.varade.window, 512);
  EXPECT_EQ(paper.varade.base_channels, 128);
  EXPECT_FLOAT_EQ(paper.varade.learning_rate, 1e-5F);
  EXPECT_EQ(paper.ar_lstm.hidden, 256);
  EXPECT_EQ(paper.ar_lstm.n_layers, 5);
  EXPECT_EQ(paper.gbrf.forest.n_trees, 30);
  EXPECT_EQ(paper.iforest.forest.n_trees, 100);
  EXPECT_FLOAT_EQ(paper.iforest.forest.contamination, 0.1F);
  EXPECT_EQ(paper.knn.knn.k, 5);
  EXPECT_EQ(paper.n_collisions, 125);
  EXPECT_NEAR(paper.train_duration_s, 390.0 * 60.0, 1e-6);
  EXPECT_NEAR(paper.test_duration_s, 82.0 * 60.0, 1e-6);
  // The repro profile preserves the structural rules at smaller scale.
  EXPECT_LT(repro.varade.window, paper.varade.window);
  EXPECT_EQ(repro.varade.window & (repro.varade.window - 1), 0);  // power of two
  EXPECT_THROW(make_detector(repro, "bogus"), Error);
}

}  // namespace
}  // namespace varade::core
