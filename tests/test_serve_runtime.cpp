// Tests for the async ingestion runtime: SampleRing semantics, backpressure
// policies, and the determinism contract of AsyncScoringRuntime.
//
// The contract under test: the scoring thread is the only thread touching the
// engine, each stream's ring preserves its producer's push order, and the
// engine pins score_batch == score_step — so a single-producer-per-stream
// async run must yield bit-identical per-stream scores and alarm events to
// the synchronous ScoringEngine fed the same samples, at any producer timing.
// This binary carries the `concurrency` label and runs under ThreadSanitizer
// in CI (`ci.sh --tsan`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "varade/core/varade.hpp"
#include "varade/serve/runtime.hpp"

namespace varade::serve {
namespace {

data::MultivariateSeries make_sine(Index length, bool planted, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(3);
  std::vector<float> row(3);
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = planted && (t % 120) >= 90 && (t % 120) < 100;
    for (Index c = 0; c < 3; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, anomalous ? 0.9F : 0.03F);
    }
    s.append(row, anomalous ? 1 : 0);
  }
  return s;
}

/// One tiny fitted VARADE shared by every runtime test (fitting dominates;
/// the runtime only reads the model). Deliberately small so the whole binary
/// stays fast under ThreadSanitizer's ~10x slowdown.
struct RuntimeRig {
  data::MultivariateSeries train_raw = make_sine(400, false, 1);
  data::MinMaxNormalizer normalizer;
  data::MultivariateSeries train;
  core::VaradeDetector detector;

  RuntimeRig()
      : detector({.window = 16,
                  .base_channels = 4,
                  .epochs = 1,
                  .learning_rate = 1e-3F,
                  .train_stride = 4}) {
    normalizer.fit(train_raw);
    train = normalizer.transform(train_raw);
    detector.fit(train);
  }
};

RuntimeRig& rig() {
  static RuntimeRig* r = new RuntimeRig();
  return *r;
}

// ---------------------------------------------------------------------------
// SampleRing
// ---------------------------------------------------------------------------

TEST(Ingest, EnumNamesRoundTrip) {
  EXPECT_STREQ(to_string(BackpressurePolicy::Block), "Block");
  EXPECT_STREQ(to_string(BackpressurePolicy::DropOldest), "DropOldest");
  EXPECT_STREQ(to_string(BackpressurePolicy::Reject), "Reject");
  EXPECT_STREQ(to_string(PushResult::Ok), "Ok");
  EXPECT_STREQ(to_string(PushResult::DroppedOldest), "DroppedOldest");
  EXPECT_STREQ(to_string(PushResult::Rejected), "Rejected");
}

TEST(SampleRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SampleRing(3, 1).capacity(), 1);
  EXPECT_EQ(SampleRing(3, 2).capacity(), 2);
  EXPECT_EQ(SampleRing(3, 5).capacity(), 8);
  EXPECT_EQ(SampleRing(3, 1000).capacity(), 1024);
  EXPECT_THROW(SampleRing(0, 8), Error);
  EXPECT_THROW(SampleRing(3, 0), Error);
}

TEST(SampleRing, FifoOrderAndWraparound) {
  SampleRing ring(2, 4);
  std::vector<float> in(2);
  std::vector<float> out(2);
  // Several laps around the 4-slot ring, interleaving pushes and pops.
  float next_in = 0.0F;
  float next_out = 0.0F;
  for (int lap = 0; lap < 5; ++lap) {
    for (int i = 0; i < 3; ++i) {
      in = {next_in, -next_in};
      ASSERT_TRUE(ring.try_push(in.data()));
      next_in += 1.0F;
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out.data()));
      EXPECT_EQ(out[0], next_out);
      EXPECT_EQ(out[1], -next_out);
      next_out += 1.0F;
    }
  }
  EXPECT_FALSE(ring.try_pop(out.data()));
}

TEST(SampleRing, FullRejectsAndDiscardOldestMakesRoom) {
  SampleRing ring(1, 2);
  float v = 1.0F;
  ASSERT_TRUE(ring.try_push(&v));
  v = 2.0F;
  ASSERT_TRUE(ring.try_push(&v));
  v = 3.0F;
  EXPECT_FALSE(ring.try_push(&v));  // full
  EXPECT_EQ(ring.size_approx(), 2);

  ASSERT_TRUE(ring.try_pop_discard());  // evict the oldest (1.0)
  ASSERT_TRUE(ring.try_push(&v));
  float out = 0.0F;
  ASSERT_TRUE(ring.try_pop(&out));
  EXPECT_EQ(out, 2.0F);
  ASSERT_TRUE(ring.try_pop(&out));
  EXPECT_EQ(out, 3.0F);
  EXPECT_FALSE(ring.try_pop_discard());  // empty
}

TEST(SampleRing, ConcurrentProducerConsumerPreservesOrder) {
  constexpr long kTotal = 20000;
  SampleRing ring(1, 64);
  std::thread producer([&] {
    Backoff backoff;
    for (long i = 0; i < kTotal; ++i) {
      auto v = static_cast<float>(i);
      while (!ring.try_push(&v)) backoff.wait();
      backoff.reset();
    }
  });
  Backoff backoff;
  for (long i = 0; i < kTotal; ++i) {
    float v = -1.0F;
    while (!ring.try_pop(&v)) backoff.wait();
    backoff.reset();
    ASSERT_EQ(v, static_cast<float>(i)) << "FIFO order broken at " << i;
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SampleRing, ConcurrentMultiProducerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr long kPerProducer = 5000;
  SampleRing ring(1, 128);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      Backoff backoff;
      for (long i = 0; i < kPerProducer; ++i) {
        // Encode (producer, index) so the consumer can check per-producer
        // order even though the global interleaving is scheduler-defined.
        auto v = static_cast<float>(p * kPerProducer + i);
        while (!ring.try_push(&v)) backoff.wait();
        backoff.reset();
      }
    });
  }
  std::vector<long> last_seen(kProducers, -1);
  Backoff backoff;
  for (long n = 0; n < kProducers * kPerProducer; ++n) {
    float v = -1.0F;
    while (!ring.try_pop(&v)) backoff.wait();
    backoff.reset();
    const long encoded = std::lround(v);
    const long p = encoded / kPerProducer;
    const long i = encoded % kPerProducer;
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    ASSERT_GT(i, last_seen[static_cast<std::size_t>(p)]) << "producer " << p << " reordered";
    last_seen[static_cast<std::size_t>(p)] = i;
  }
  for (std::thread& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(last_seen[static_cast<std::size_t>(p)],
                                                 kPerProducer - 1);
}

// ---------------------------------------------------------------------------
// AsyncScoringRuntime lifecycle and error contract
// ---------------------------------------------------------------------------

TEST(AsyncScoringRuntime, LifecycleContractIsEnforced) {
  const std::vector<float> sample(3, 0.0F);
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer);
  EXPECT_THROW(runtime.start(), Error);  // no streams
  runtime.add_streams(2);
  EXPECT_THROW(runtime.start(), Error);  // not calibrated
  EXPECT_THROW(runtime.push(0, sample), Error);  // before start
  runtime.set_threshold(1e9F);
  runtime.start();
  EXPECT_THROW(runtime.add_stream(), Error);     // after start
  EXPECT_THROW(runtime.calibrate(rig().train), Error);
  EXPECT_THROW(runtime.set_threshold(1.0F), Error);
  EXPECT_THROW(runtime.on_score([](const StreamScore&) {}), Error);
  EXPECT_THROW(runtime.start(), Error);          // started twice
  // Engine passthroughs race with the scorer while running.
  EXPECT_THROW(runtime.events(0), Error);
  EXPECT_THROW(runtime.in_alarm(0), Error);
  EXPECT_THROW(runtime.samples_seen(0), Error);
  EXPECT_THROW(runtime.engine(), Error);
  runtime.close();
  runtime.close();  // idempotent
  EXPECT_TRUE(runtime.closed());
  EXPECT_EQ(runtime.samples_seen(0), 0);  // quiescent again
  // Intake is shut after close.
  EXPECT_EQ(runtime.push(0, sample), PushResult::Rejected);
  EXPECT_EQ(runtime.stats(0).rejected, 1);
}

TEST(AsyncScoringRuntime, CloseWithoutStartRejectsPushes) {
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer);
  runtime.add_stream();
  runtime.close();
  EXPECT_TRUE(runtime.closed());
  const std::vector<float> sample(3, 0.0F);
  EXPECT_EQ(runtime.push(0, sample), PushResult::Rejected);
  EXPECT_EQ(runtime.stats(0).rejected, 1);
}

TEST(AsyncScoringRuntime, StreamIdBoundsMatchEngineWording) {
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer);
  runtime.add_streams(2);
  const std::vector<float> sample(3, 0.0F);
  try {
    runtime.push(99, sample);
    FAIL() << "push(99) did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "stream id 99 out of range [0, 2)");
  }
  EXPECT_THROW(runtime.push(-1, sample), Error);
  EXPECT_THROW(runtime.stats(2), Error);
  // Quiescent passthroughs bounds-check with the same wording.
  try {
    runtime.events(-3);
    FAIL() << "events(-3) did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "stream id -3 out of range [0, 2)");
  }
  try {
    runtime.in_alarm(7);
    FAIL() << "in_alarm(7) did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "stream id 7 out of range [0, 2)");
  }
  try {
    runtime.samples_seen(2);
    FAIL() << "samples_seen(2) did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "stream id 2 out of range [0, 2)");
  }
}

TEST(AsyncScoringRuntime, CalibrateMatchesSynchronousEngine) {
  ScoringEngine sync(rig().detector, rig().normalizer);
  sync.calibrate(rig().train);
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer);
  runtime.add_stream();
  runtime.calibrate(rig().train);
  EXPECT_EQ(runtime.threshold(), sync.threshold());
}

// ---------------------------------------------------------------------------
// Backpressure policies
// ---------------------------------------------------------------------------

TEST(AsyncScoringRuntime, DropOldestEvictsAndCountsPerStream) {
  constexpr long kPushes = 4000;
  AsyncRuntimeConfig cfg;
  cfg.ring_capacity = 2;  // overflow on nearly every burst
  cfg.backpressure = BackpressurePolicy::DropOldest;
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(2);
  runtime.set_threshold(1e9F);
  runtime.start();

  const auto series = make_sine(kPushes, false, 5);
  long ok = 0;
  long dropped_results = 0;
  for (Index t = 0; t < kPushes; ++t) {
    const PushResult r = runtime.push(0, series.sample(t), series.n_channels());
    ASSERT_NE(r, PushResult::Rejected);  // DropOldest always enqueues
    (r == PushResult::Ok ? ok : dropped_results)++;
  }
  runtime.close();

  const IngestStats stats = runtime.stats(0);
  EXPECT_EQ(stats.pushed, kPushes);
  EXPECT_EQ(stats.rejected, 0);
  // Every accepted-and-not-evicted sample was scored; nothing else was.
  EXPECT_EQ(runtime.samples_seen(0), stats.pushed - stats.dropped);
  EXPECT_EQ(runtime.samples_seen(1), 0);
  EXPECT_EQ(runtime.stats(1).pushed, 0);
  // A 2-slot ring flooded back-to-back must have evicted something, and
  // DroppedOldest return values must account for at least those evictions
  // observed by this producer.
  EXPECT_GT(stats.dropped, 0);
  EXPECT_GT(dropped_results, 0);
  EXPECT_EQ(ok + dropped_results, kPushes);

  const auto scores = runtime.drain_scores();
  EXPECT_EQ(static_cast<long>(scores.size()), runtime.samples_seen(0));
  for (const StreamScore& s : scores) EXPECT_EQ(s.stream, 0);

  // The aggregate snapshot sums the same counters and carries the full
  // per-stream / per-shard breakdowns.
  const RuntimeStats total = runtime.stats();
  EXPECT_EQ(total.pushed, stats.pushed);
  EXPECT_EQ(total.dropped, stats.dropped);
  EXPECT_EQ(total.rejected, 0);
  ASSERT_EQ(total.streams.size(), 2U);
  EXPECT_EQ(total.streams[0].pushed, stats.pushed);
  EXPECT_EQ(total.streams[0].dropped, stats.dropped);
  EXPECT_EQ(total.streams[1].pushed, 0);
  ASSERT_EQ(total.shards.size(), 1U);
  EXPECT_EQ(total.rounds, runtime.rounds());
  EXPECT_EQ(total.shards[0].rounds, runtime.rounds());
  EXPECT_EQ(total.naps, total.shards[0].naps);
}

TEST(AsyncScoringRuntime, RejectReturnsAndCountsWithoutBlocking) {
  constexpr long kPushes = 4000;
  AsyncRuntimeConfig cfg;
  cfg.ring_capacity = 2;
  cfg.backpressure = BackpressurePolicy::Reject;
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_stream();
  runtime.set_threshold(1e9F);
  runtime.start();

  const auto series = make_sine(kPushes, false, 6);
  long ok = 0;
  long rejected = 0;
  for (Index t = 0; t < kPushes; ++t) {
    const PushResult r = runtime.push(0, series.sample(t), series.n_channels());
    ASSERT_NE(r, PushResult::DroppedOldest);  // Reject never evicts
    (r == PushResult::Ok ? ok : rejected)++;
  }
  runtime.close();

  const IngestStats stats = runtime.stats(0);
  EXPECT_EQ(stats.pushed, ok);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(ok + rejected, kPushes);
  EXPECT_GT(rejected, 0);  // a 2-slot ring flooded back-to-back must refuse some
  // Exactly the accepted samples were scored, in order.
  EXPECT_EQ(runtime.samples_seen(0), ok);
  const auto scores = runtime.drain_scores();
  ASSERT_EQ(static_cast<long>(scores.size()), ok);
  for (long i = 0; i < ok; ++i) EXPECT_EQ(scores[static_cast<std::size_t>(i)].sample, i);

  // Rejections show up in the aggregate snapshot too.
  const RuntimeStats total = runtime.stats();
  EXPECT_EQ(total.pushed, ok);
  EXPECT_EQ(total.rejected, rejected);
  EXPECT_EQ(total.dropped, 0);
}

TEST(AsyncScoringRuntime, BlockNeverLosesUnderTinyRing) {
  constexpr long kPushes = 3000;
  AsyncRuntimeConfig cfg;
  cfg.ring_capacity = 2;
  cfg.backpressure = BackpressurePolicy::Block;
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_stream();
  runtime.set_threshold(1e9F);
  runtime.start();

  const auto series = make_sine(kPushes, false, 7);
  for (Index t = 0; t < kPushes; ++t)
    ASSERT_EQ(runtime.push(0, series.sample(t), series.n_channels()), PushResult::Ok);
  runtime.close();

  EXPECT_EQ(runtime.stats(0).pushed, kPushes);
  EXPECT_EQ(runtime.stats(0).dropped, 0);
  EXPECT_EQ(runtime.stats(0).rejected, 0);
  EXPECT_EQ(runtime.samples_seen(0), kPushes);
}

// ---------------------------------------------------------------------------
// close() drain and callback delivery
// ---------------------------------------------------------------------------

TEST(AsyncScoringRuntime, CloseMidStreamDrainsEverythingAccepted) {
  AsyncRuntimeConfig cfg;
  cfg.ring_capacity = 4096;
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(3);
  runtime.calibrate(rig().train);
  runtime.start();

  // Flood all streams and close immediately: the scorer has certainly not
  // caught up, so close() must drain the backlog before joining.
  const auto series = make_sine(500, true, 8);
  for (Index s = 0; s < 3; ++s)
    for (Index t = 0; t < 500; ++t)
      ASSERT_NE(runtime.push(s, series.sample(t), series.n_channels()), PushResult::Rejected);
  runtime.close();

  long total = 0;
  for (Index s = 0; s < 3; ++s) {
    EXPECT_EQ(runtime.stats(s).pushed, 500);
    EXPECT_EQ(runtime.samples_seen(s), 500) << "stream " << s << " not fully drained";
    total += runtime.samples_seen(s);
  }
  const auto scores = runtime.drain_scores();
  EXPECT_EQ(static_cast<long>(scores.size()), total);
  EXPECT_TRUE(runtime.drain_scores().empty());  // drained once, queue is empty
}

TEST(AsyncScoringRuntime, CallbackReceivesEveryScoreInsteadOfQueue) {
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer);
  runtime.add_stream();
  runtime.set_threshold(1e9F);
  std::vector<StreamScore> seen;  // only touched by the scoring thread
  bool self_close_threw = false;
  runtime.on_score([&](const StreamScore& s) {
    if (seen.empty()) {
      // close() on the scoring thread must fail loudly, not self-join.
      try {
        runtime.close();
      } catch (const Error&) {
        self_close_threw = true;
      }
    }
    seen.push_back(s);
  });
  runtime.start();

  const auto series = make_sine(200, false, 9);
  for (Index t = 0; t < 200; ++t)
    ASSERT_EQ(runtime.push(0, series.sample(t), series.n_channels()), PushResult::Ok);
  runtime.close();

  ASSERT_EQ(seen.size(), 200U);  // close() joins: `seen` is safe to read now
  for (Index t = 0; t < 200; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)].stream, 0);
    EXPECT_EQ(seen[static_cast<std::size_t>(t)].sample, t);
  }
  EXPECT_TRUE(self_close_threw);
  EXPECT_TRUE(runtime.drain_scores().empty());
}

// ---------------------------------------------------------------------------
// The determinism contract: multi-producer async == synchronous engine
// ---------------------------------------------------------------------------

struct StreamRun {
  std::vector<float> scores;
  std::vector<core::AnomalyEvent> events;
  bool in_alarm = false;
  Index samples_seen = 0;
};

void expect_same_run(const StreamRun& got, const StreamRun& want, Index stream) {
  EXPECT_EQ(got.samples_seen, want.samples_seen) << "stream " << stream;
  ASSERT_EQ(got.scores.size(), want.scores.size()) << "stream " << stream;
  for (std::size_t i = 0; i < got.scores.size(); ++i)
    ASSERT_EQ(got.scores[i], want.scores[i]) << "stream " << stream << " sample " << i;
  ASSERT_EQ(got.events.size(), want.events.size()) << "stream " << stream;
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    EXPECT_EQ(got.events[i].onset_sample, want.events[i].onset_sample);
    EXPECT_EQ(got.events[i].last_sample, want.events[i].last_sample);
    EXPECT_EQ(got.events[i].peak_score, want.events[i].peak_score);
  }
  EXPECT_EQ(got.in_alarm, want.in_alarm) << "stream " << stream;
}

TEST(AsyncScoringRuntime, FourProducersSixteenStreamsMatchSynchronousEngineBitForBit) {
  constexpr Index kStreams = 16;
  constexpr Index kProducers = 4;
  constexpr Index kSamples = 250;

  std::vector<data::MultivariateSeries> inputs;
  for (Index s = 0; s < kStreams; ++s)
    inputs.push_back(make_sine(kSamples, /*planted=*/s % 2 == 0,
                               100 + static_cast<std::uint64_t>(s)));

  // Synchronous reference: one ScoringEngine, all samples pushed up front.
  std::vector<StreamRun> want(kStreams);
  {
    ScoringEngine sync(rig().detector, rig().normalizer, {.n_threads = 1, .max_batch = 8});
    sync.add_streams(kStreams);
    sync.calibrate(rig().train);
    for (Index s = 0; s < kStreams; ++s)
      for (Index t = 0; t < kSamples; ++t) sync.push(s, inputs[static_cast<std::size_t>(s)].sample(t), 3);
    for (const StreamScore& r : sync.step())
      want[static_cast<std::size_t>(r.stream)].scores.push_back(r.score);
    for (Index s = 0; s < kStreams; ++s) {
      auto& w = want[static_cast<std::size_t>(s)];
      w.events = sync.events(s);
      w.in_alarm = sync.in_alarm(s);
      w.samples_seen = sync.samples_seen(s);
    }
  }

  // Async run: 4 producer threads, 4 streams each (one producer per stream —
  // the ordering contract), tiny rings so Block backpressure actually bites,
  // scorer overlapping with the producers throughout.
  AsyncRuntimeConfig cfg;
  cfg.ring_capacity = 16;
  cfg.backpressure = BackpressurePolicy::Block;
  cfg.engine = {.n_threads = 2, .max_batch = 8, .shard_forward = true};
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(kStreams);
  runtime.calibrate(rig().train);
  runtime.start();

  std::atomic<long> accepted{0};
  std::vector<std::thread> producers;
  for (Index p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Interleave this producer's streams sample by sample so rounds mix
      // streams from all producers.
      for (Index t = 0; t < kSamples; ++t) {
        for (Index s = p; s < kStreams; s += kProducers) {
          const PushResult r = runtime.push(s, inputs[static_cast<std::size_t>(s)].sample(t), 3);
          ASSERT_EQ(r, PushResult::Ok);
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Poll scores concurrently, as a serving frontend would. Deadline-bounded
  // so a delivery regression fails with a diagnostic instead of hanging
  // until the ctest timeout.
  std::vector<StreamRun> got(kStreams);
  long received = 0;
  Backoff backoff;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(5);
  while (received < kStreams * kSamples) {
    if (std::chrono::steady_clock::now() > deadline) break;
    const auto batch = runtime.drain_scores();
    if (batch.empty()) {
      backoff.wait();
      continue;
    }
    backoff.reset();
    for (const StreamScore& r : batch) {
      auto& run = got[static_cast<std::size_t>(r.stream)];
      // Per-stream order must be producer order even before the final check.
      ASSERT_EQ(r.sample, static_cast<Index>(run.scores.size()))
          << "stream " << r.stream << " scored out of order";
      run.scores.push_back(r.score);
      ++received;
    }
  }
  if (received < kStreams * kSamples) {
    runtime.close();  // unblock any producer stuck in a Block push
    for (std::thread& t : producers) t.join();
    FAIL() << "score delivery stalled: " << received << "/" << kStreams * kSamples
           << " received before the deadline";
  }
  for (std::thread& t : producers) t.join();
  runtime.close();

  EXPECT_EQ(accepted.load(), kStreams * kSamples);
  EXPECT_TRUE(runtime.drain_scores().empty());
  EXPECT_GT(runtime.rounds(), 0);
  for (Index s = 0; s < kStreams; ++s) {
    auto& g = got[static_cast<std::size_t>(s)];
    g.events = runtime.events(s);
    g.in_alarm = runtime.in_alarm(s);
    g.samples_seen = runtime.samples_seen(s);
    expect_same_run(g, want[static_cast<std::size_t>(s)], s);
  }
}

TEST(AsyncScoringRuntime, StatsSnapshotIsConsistentUnderConcurrentTraffic) {
  // Pins the RuntimeStats memory-order contract (see runtime.hpp): while
  // producers hammer push() and scorers drain, every counter read by
  // stats() is an untorn relaxed load, individually monotonic across
  // repeated snapshots, and never exceeds what has demonstrably happened
  // (per-counter sanity, not cross-counter — relaxed loads order nothing
  // across locations). Run under TSan by the concurrency job, which is
  // where a torn or racy read would actually be diagnosed.
  constexpr Index kStreams = 4;
  constexpr Index kPushes = 400;
  AsyncRuntimeConfig cfg;
  cfg.ring_capacity = 16;
  cfg.backpressure = BackpressurePolicy::DropOldest;
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(kStreams);
  runtime.set_threshold(1e9F);
  runtime.start();

  const auto series = make_sine(kPushes, false, 21);
  std::vector<std::thread> producers;
  for (Index s = 0; s < kStreams; ++s)
    producers.emplace_back([&runtime, &series, s] {
      for (Index t = 0; t < kPushes; ++t)
        runtime.push(s, series.sample(t), series.n_channels());
    });

  // Snapshot continuously while the producers run: each aggregate counter
  // must be monotone from one snapshot to the next, and per-stream /
  // per-shard breakdowns must always sum to the aggregates (stats() builds
  // the totals from the same loads, so this is exact even mid-traffic).
  RuntimeStats prev;
  for (int iter = 0; iter < 200; ++iter) {
    const RuntimeStats s = runtime.stats();
    EXPECT_GE(s.pushed, prev.pushed);
    EXPECT_GE(s.dropped, prev.dropped);
    EXPECT_GE(s.rejected, prev.rejected);
    EXPECT_GE(s.rounds, prev.rounds);
    EXPECT_GE(s.naps, prev.naps);
    EXPECT_GE(s.scored, prev.scored);
    EXPECT_LE(s.pushed, kStreams * kPushes);
    long stream_pushed = 0;
    long stream_dropped = 0;
    for (const IngestStats& is : s.streams) {
      stream_pushed += is.pushed;
      stream_dropped += is.dropped;
    }
    EXPECT_EQ(stream_pushed, s.pushed);
    EXPECT_EQ(stream_dropped, s.dropped);
    long shard_scored = 0;
    for (const ShardStats& ss : s.shards) shard_scored += ss.scored;
    EXPECT_EQ(shard_scored, s.scored);
    prev = s;
  }

  for (std::thread& t : producers) t.join();
  runtime.close();

  // Quiescent: exact, and the cross-counter invariants hold with equality.
  const RuntimeStats fin = runtime.stats();
  EXPECT_EQ(fin.pushed, kStreams * kPushes);
  EXPECT_EQ(fin.rejected, 0);
  EXPECT_LE(fin.dropped, fin.pushed);
  EXPECT_EQ(fin.scored, fin.pushed - fin.dropped);
  EXPECT_EQ(static_cast<long>(runtime.drain_scores().size()), fin.scored);
}

TEST(AsyncScoringRuntime, DestructorClosesAndDrains) {
  const auto series = make_sine(100, false, 12);
  std::vector<StreamScore> seen;
  {
    AsyncScoringRuntime runtime(rig().detector, rig().normalizer);
    runtime.add_stream();
    runtime.set_threshold(1e9F);
    runtime.on_score([&seen](const StreamScore& s) { seen.push_back(s); });
    runtime.start();
    for (Index t = 0; t < 100; ++t)
      ASSERT_EQ(runtime.push(0, series.sample(t), series.n_channels()), PushResult::Ok);
    // No close(): the destructor must drain and join.
  }
  EXPECT_EQ(seen.size(), 100U);
}

}  // namespace
}  // namespace varade::serve
