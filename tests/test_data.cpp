// Data-module tests: series container, Table 1 schema, normalizer,
// windowing, CSV round trips.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "varade/data/csv.hpp"
#include "varade/data/normalize.hpp"
#include "varade/data/timeseries.hpp"
#include "varade/data/window.hpp"

namespace varade::data {
namespace {

TEST(Schema, KukaChannelLayoutMatchesTable1) {
  const auto schema = kuka_channel_schema();
  ASSERT_EQ(static_cast<Index>(schema.size()), kKukaChannelCount);
  EXPECT_EQ(schema[0].name, "action_id");
  // Joint 0 block.
  EXPECT_EQ(schema[1].name, "sensor_id_0_AccX");
  EXPECT_EQ(schema[1].unit, "m/s^2");
  EXPECT_EQ(schema[4].name, "sensor_id_0_GyroX");
  EXPECT_EQ(schema[4].unit, "deg/s");
  EXPECT_EQ(schema[7].name, "sensor_id_0_q1");
  EXPECT_EQ(schema[11].name, "sensor_id_0_temp");
  // Joint 6 block ends right before the power block.
  EXPECT_EQ(schema[static_cast<std::size_t>(kuka_joint_channel_base(6)) + 10].name,
            "sensor_id_6_temp");
  const Index p = kuka_power_channel_base();
  EXPECT_EQ(schema[static_cast<std::size_t>(p)].name, "current");
  EXPECT_EQ(schema[static_cast<std::size_t>(p) + 6].name, "voltage");
  EXPECT_EQ(schema[static_cast<std::size_t>(p) + 7].name, "energy");
  EXPECT_EQ(p + kKukaPowerChannelCount, kKukaChannelCount);
  // 1 + 7*11 + 8 = 86.
  EXPECT_EQ(1 + kKukaJointCount * kKukaChannelsPerJoint + kKukaPowerChannelCount,
            kKukaChannelCount);
}

TEST(Series, AppendAccessAndLabels) {
  MultivariateSeries s(3);
  s.append({1.0F, 2.0F, 3.0F}, 0);
  s.append({4.0F, 5.0F, 6.0F}, 1);
  EXPECT_EQ(s.length(), 2);
  EXPECT_FLOAT_EQ(s.value(1, 2), 6.0F);
  EXPECT_EQ(s.label(0), 0);
  EXPECT_EQ(s.label(1), 1);
  EXPECT_TRUE(s.has_anomalies());
  EXPECT_EQ(s.count_anomalous_samples(), 1);
  EXPECT_THROW(s.value(2, 0), Error);
  EXPECT_THROW(s.value(0, 3), Error);
  EXPECT_THROW(s.append({1.0F}, 0), Error);
}

TEST(Series, TensorConversionAndSlice) {
  MultivariateSeries s(2);
  for (int i = 0; i < 5; ++i)
    s.append({static_cast<float>(i), static_cast<float>(10 * i)}, i == 3 ? 1 : 0);
  const Tensor t = s.to_tensor();
  EXPECT_EQ(t.shape(), (Shape{5, 2}));
  EXPECT_FLOAT_EQ(t.at(3, 1), 30.0F);
  const Tensor labels = s.labels_tensor();
  EXPECT_FLOAT_EQ(labels.at(3), 1.0F);

  const MultivariateSeries sub = s.slice(2, 4);
  EXPECT_EQ(sub.length(), 2);
  EXPECT_FLOAT_EQ(sub.value(0, 0), 2.0F);
  EXPECT_EQ(sub.label(1), 1);
  EXPECT_THROW(s.slice(4, 2), Error);
}

TEST(Normalizer, MapsTrainRangeToUnitInterval) {
  MinMaxNormalizer norm;
  Tensor x = Tensor::matrix({{0, 10}, {4, 20}, {2, 15}});
  norm.fit(x);
  const Tensor y = norm.transform(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), -1.0F);
  EXPECT_FLOAT_EQ(y.at(1, 0), 1.0F);
  EXPECT_FLOAT_EQ(y.at(2, 0), 0.0F);
  EXPECT_FLOAT_EQ(y.at(0, 1), -1.0F);
  EXPECT_FLOAT_EQ(y.at(1, 1), 1.0F);
}

TEST(Normalizer, RoundTripProperty) {
  Rng rng(1);
  const Tensor x = Tensor::randn({50, 7}, rng, 5.0F, 2.0F);
  MinMaxNormalizer norm;
  norm.fit(x);
  const Tensor back = norm.inverse_transform(norm.transform(x));
  EXPECT_TRUE(allclose(back, x, 1e-3F));
}

TEST(Normalizer, ConstantChannelMapsToZero) {
  MinMaxNormalizer norm;
  const Tensor x = Tensor::matrix({{1, 5}, {1, 7}});
  norm.fit(x);
  const Tensor y = norm.transform(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.0F);
}

TEST(Normalizer, TestValuesMayExceedUnitRange) {
  // Values outside the training range extrapolate beyond [-1, 1] (the paper
  // normalises with train min/max; collision spikes exceed it).
  MinMaxNormalizer norm;
  norm.fit(Tensor::matrix({{0.0F}, {1.0F}}));
  const Tensor y = norm.transform(Tensor::matrix({{2.0F}}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0F);
}

TEST(Normalizer, SeriesTransformKeepsLabelsAndMeta) {
  MultivariateSeries s(2, {{"a", "", ""}, {"b", "", ""}});
  s.set_sample_rate_hz(123.0);
  s.append({0.0F, 0.0F}, 0);
  s.append({2.0F, 4.0F}, 1);
  MinMaxNormalizer norm;
  norm.fit(s);
  const MultivariateSeries t = norm.transform(s);
  EXPECT_EQ(t.label(1), 1);
  EXPECT_DOUBLE_EQ(t.sample_rate_hz(), 123.0);
  EXPECT_EQ(t.channels()[0].name, "a");
  EXPECT_FLOAT_EQ(t.value(1, 0), 1.0F);
}

TEST(Normalizer, SaveLoadRoundTrip) {
  MinMaxNormalizer norm;
  norm.fit(Tensor::matrix({{0, -5}, {10, 5}}));
  std::stringstream buffer;
  norm.save(buffer);
  MinMaxNormalizer loaded;
  loaded.load(buffer);
  EXPECT_FLOAT_EQ(loaded.channel_min(1), -5.0F);
  EXPECT_FLOAT_EQ(loaded.channel_max(0), 10.0F);
  std::stringstream garbage("not a normalizer");
  MinMaxNormalizer bad;
  EXPECT_THROW(bad.load(garbage), Error);
}

TEST(Normalizer, ErrorsBeforeFit) {
  MinMaxNormalizer norm;
  EXPECT_THROW(norm.transform(Tensor({1, 2})), Error);
  EXPECT_THROW(norm.fit(Tensor({0, 2})), Error);
}

TEST(Normalizer, FitRejectsNonFiniteData) {
  // NaN silently falls out of std::min/std::max comparisons, so without the
  // per-element check a poisoned channel would keep stale finite bounds and
  // normalise garbage without a trace. Every non-finite class must throw and
  // leave the normalizer unfitted.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (const float bad : {nan, inf, -inf}) {
    MinMaxNormalizer norm;
    Tensor x = Tensor::matrix({{0.0F, 1.0F}, {2.0F, 3.0F}});
    x[2] = bad;  // row 1, channel 0
    try {
      norm.fit(x);
      FAIL() << "fit accepted " << bad;
    } catch (const Error& e) {
      // The message names the offending coordinates.
      EXPECT_NE(std::string(e.what()).find("channel 0, row 1"), std::string::npos) << e.what();
    }
    EXPECT_FALSE(norm.fitted());
  }
}

TEST(Normalizer, LoadRejectsInvertedOrNonFiniteBounds) {
  // A saved stream is trusted input to transform_sample; max < min (or a NaN
  // bound, which sails through any ordering comparison) must not load.
  const auto corrupt_stream = [](float lo, float hi) {
    MinMaxNormalizer norm;
    norm.fit(Tensor::matrix({{0.0F, -5.0F}, {10.0F, 5.0F}}));
    std::stringstream buffer;
    norm.save(buffer);
    std::string bytes = buffer.str();
    // Channel 1's min/max live after the 8-byte count at offsets 12 and 20.
    std::memcpy(bytes.data() + 12, &lo, sizeof(lo));
    std::memcpy(bytes.data() + 20, &hi, sizeof(hi));
    return bytes;
  };
  const float nan = std::numeric_limits<float>::quiet_NaN();
  struct Case {
    float lo, hi;
  };
  for (const Case& c : {Case{5.0F, -5.0F}, Case{nan, 1.0F}, Case{0.0F, nan}}) {
    std::stringstream in(corrupt_stream(c.lo, c.hi));
    MinMaxNormalizer bad;
    try {
      bad.load(in);
      FAIL() << "load accepted min " << c.lo << ", max " << c.hi;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("malformed normalizer stream"), std::string::npos)
          << e.what();
    }
    EXPECT_FALSE(bad.fitted());
  }
  // Equal bounds (a constant channel) are valid and must still load.
  MinMaxNormalizer norm;
  norm.fit(Tensor::matrix({{7.0F, -5.0F}, {7.0F, 5.0F}}));
  std::stringstream buffer;
  norm.save(buffer);
  MinMaxNormalizer loaded;
  loaded.load(buffer);
  EXPECT_FLOAT_EQ(loaded.channel_min(0), 7.0F);
  EXPECT_FLOAT_EQ(loaded.channel_max(0), 7.0F);
}

MultivariateSeries ramp_series(Index length, Index channels) {
  MultivariateSeries s(channels);
  std::vector<float> row(static_cast<std::size_t>(channels));
  for (Index t = 0; t < length; ++t) {
    for (Index c = 0; c < channels; ++c)
      row[static_cast<std::size_t>(c)] = static_cast<float>(t + 100 * c);
    s.append(row, t == length - 1 ? 1 : 0);
  }
  return s;
}

TEST(WindowDataset, CountAndContents) {
  const MultivariateSeries s = ramp_series(10, 2);
  const WindowDataset ds(s, {.window = 4, .stride = 1});
  // Starts 0..5 target 4..9 -> 6 windows.
  EXPECT_EQ(ds.size(), 6);
  const Tensor ctx = ds.context(0);
  EXPECT_EQ(ctx.shape(), (Shape{2, 4}));
  // Channels-first: channel 0 = 0,1,2,3; channel 1 = 100,101,102,103.
  EXPECT_FLOAT_EQ(ctx[0], 0.0F);
  EXPECT_FLOAT_EQ(ctx[3], 3.0F);
  EXPECT_FLOAT_EQ(ctx[4], 100.0F);
  const Tensor target = ds.target(0);
  EXPECT_FLOAT_EQ(target.at(0), 4.0F);
  EXPECT_FLOAT_EQ(target.at(1), 104.0F);
  EXPECT_EQ(ds.target_time(5), 9);
  EXPECT_EQ(ds.target_label(5), 1);
}

TEST(WindowDataset, StrideReducesCount) {
  const MultivariateSeries s = ramp_series(20, 1);
  EXPECT_EQ(WindowDataset(s, {.window = 4, .stride = 1}).size(), 16);
  EXPECT_EQ(WindowDataset(s, {.window = 4, .stride = 4}).size(), 4);
}

TEST(WindowDataset, CoversEveryTargetOnceAtStrideOne) {
  const MultivariateSeries s = ramp_series(12, 1);
  const WindowDataset ds(s, {.window = 3, .stride = 1});
  std::vector<bool> covered(12, false);
  for (Index i = 0; i < ds.size(); ++i) covered[static_cast<std::size_t>(ds.target_time(i))] = true;
  for (Index t = 3; t < 12; ++t) EXPECT_TRUE(covered[static_cast<std::size_t>(t)]) << t;
  for (Index t = 0; t < 3; ++t) EXPECT_FALSE(covered[static_cast<std::size_t>(t)]);
}

TEST(WindowDataset, GatherBatches) {
  const MultivariateSeries s = ramp_series(10, 2);
  const WindowDataset ds(s, {.window = 4, .stride = 1});
  Tensor contexts;
  Tensor targets;
  ds.gather({0, 2}, contexts, targets);
  EXPECT_EQ(contexts.shape(), (Shape{2, 2, 4}));
  EXPECT_EQ(targets.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(contexts.at(1, 0, 0), 2.0F);
  EXPECT_FLOAT_EQ(targets.at(1, 0), 6.0F);
  EXPECT_THROW(ds.gather({99}, contexts, targets), Error);
}

TEST(WindowDataset, TooShortSeriesHasZeroWindows) {
  const MultivariateSeries s = ramp_series(4, 1);
  EXPECT_EQ(WindowDataset(s, {.window = 4, .stride = 1}).size(), 0);
  EXPECT_EQ(WindowDataset(s, {.window = 8, .stride = 1}).size(), 0);
}

TEST(ExtractContext, MatchesWindowDataset) {
  const MultivariateSeries s = ramp_series(10, 2);
  const WindowDataset ds(s, {.window = 4, .stride = 1});
  // Context of window 2 covers samples 2..5; extract ending at 5.
  const Tensor a = ds.context(2);
  const Tensor b = extract_context(s, 5, 4);
  EXPECT_TRUE(allclose(a, b));
  EXPECT_THROW(extract_context(s, 2, 4), Error);  // not enough history
  EXPECT_THROW(extract_context(s, 99, 4), Error);
}

TEST(Csv, RoundTripPreservesValuesAndLabels) {
  MultivariateSeries s(2, {{"alpha", "V", ""}, {"beta", "A", ""}});
  s.append({1.5F, -2.25F}, 0);
  s.append({3.0F, 0.125F}, 1);
  std::stringstream buffer;
  write_csv(s, buffer);
  const MultivariateSeries back = read_csv(buffer);
  ASSERT_EQ(back.length(), 2);
  EXPECT_EQ(back.n_channels(), 2);
  EXPECT_EQ(back.channels()[0].name, "alpha");
  EXPECT_FLOAT_EQ(back.value(1, 1), 0.125F);
  EXPECT_EQ(back.label(0), 0);
  EXPECT_EQ(back.label(1), 1);
}

TEST(Csv, RejectsMalformedInput) {
  {
    std::stringstream empty("");
    EXPECT_THROW(read_csv(empty), Error);
  }
  {
    std::stringstream no_label("a,b\n1,2\n");
    EXPECT_THROW(read_csv(no_label), Error);
  }
  {
    std::stringstream bad_field("a,label\nxyz,0\n");
    EXPECT_THROW(read_csv(bad_field), Error);
  }
  {
    std::stringstream short_row("a,b,label\n1,0\n");
    EXPECT_THROW(read_csv(short_row), Error);
  }
}

}  // namespace
}  // namespace varade::data
