// Evaluation-metric tests: exact AUC on hand-built cases and metric
// invariants.
#include <gtest/gtest.h>

#include "varade/eval/metrics.hpp"

namespace varade::eval {
namespace {

TEST(AucRoc, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(auc_roc({0.1F, 0.2F, 0.8F, 0.9F}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(auc_roc({0.9F, 0.8F, 0.2F, 0.1F}, {0, 0, 1, 1}), 0.0);
}

TEST(AucRoc, HandComputedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6)=1 (0.8>0.2)=1 (0.4<0.6)=0 (0.4>0.2)=1 -> 3/4.
  EXPECT_DOUBLE_EQ(auc_roc({0.8F, 0.4F, 0.6F, 0.2F}, {1, 1, 0, 0}), 0.75);
}

TEST(AucRoc, TiesGetHalfCredit) {
  // All scores equal: AUC must be exactly 0.5.
  EXPECT_DOUBLE_EQ(auc_roc({0.5F, 0.5F, 0.5F, 0.5F}, {1, 0, 1, 0}), 0.5);
}

TEST(AucRoc, InvariantUnderMonotoneTransform) {
  Rng rng(1);
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.uniform(0.0F, 1.0F));
    labels.push_back(rng.bernoulli(0.3) ? 1 : 0);
  }
  const double base = auc_roc(scores, labels);
  std::vector<float> transformed;
  for (float s : scores) transformed.push_back(std::exp(3.0F * s) + 7.0F);
  EXPECT_NEAR(auc_roc(transformed, labels), base, 1e-9);
}

TEST(AucRoc, ComplementUnderLabelFlip) {
  std::vector<float> scores{0.1F, 0.7F, 0.3F, 0.9F, 0.5F};
  std::vector<int> labels{0, 1, 0, 1, 1};
  std::vector<int> flipped{1, 0, 1, 0, 0};
  EXPECT_NEAR(auc_roc(scores, labels) + auc_roc(scores, flipped), 1.0, 1e-9);
}

TEST(AucRoc, Errors) {
  EXPECT_THROW(auc_roc(std::vector<float>{}, std::vector<int>{}), Error);
  EXPECT_THROW(auc_roc({0.5F}, {1, 0}), Error);
  EXPECT_THROW(auc_roc({0.5F, 0.6F}, {1, 1}), Error);  // single class
  EXPECT_THROW(auc_roc({std::numeric_limits<float>::quiet_NaN(), 0.5F}, {1, 0}), Error);
}

TEST(AucRoc, TensorOverloadAgrees) {
  const Tensor scores = Tensor::vector({0.8F, 0.4F, 0.6F, 0.2F});
  const Tensor labels = Tensor::vector({1.0F, 1.0F, 0.0F, 0.0F});
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.75);
}

TEST(RocCurve, EndpointsAndMonotonicity) {
  std::vector<float> scores{0.9F, 0.7F, 0.5F, 0.3F, 0.1F};
  std::vector<int> labels{1, 0, 1, 0, 0};
  const auto curve = roc_curve(scores, labels);
  ASSERT_GE(curve.size(), 2U);
  EXPECT_FLOAT_EQ(curve.front().tpr, 0.0F);
  EXPECT_FLOAT_EQ(curve.front().fpr, 0.0F);
  EXPECT_FLOAT_EQ(curve.back().tpr, 1.0F);
  EXPECT_FLOAT_EQ(curve.back().fpr, 1.0F);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
  }
}

TEST(Confusion, CountsAndDerivedMetrics) {
  // threshold 0.5: predictions {1, 0, 1, 0}; labels {1, 1, 0, 0}.
  const Confusion c = confusion_at({0.9F, 0.3F, 0.7F, 0.1F}, {1, 1, 0, 0}, 0.5F);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);
  EXPECT_DOUBLE_EQ(c.f1(), 0.5);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
}

TEST(Confusion, DegenerateCasesDoNotDivideByZero) {
  const Confusion c = confusion_at({0.1F, 0.2F}, {0, 1}, 0.9F);  // nothing predicted
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(BestF1, FindsPerfectThreshold) {
  const BestF1 best = best_f1({0.1F, 0.2F, 0.8F, 0.9F}, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(best.f1, 1.0);
  EXPECT_LT(best.threshold, 0.8F);
  EXPECT_GE(best.threshold, 0.2F);
}

TEST(BestF1, AtLeastBaselineF1) {
  // Predicting everything positive gives F1 = 2p/(p+1) with prevalence p.
  std::vector<float> scores{0.5F, 0.4F, 0.6F, 0.3F, 0.2F};
  std::vector<int> labels{1, 0, 0, 1, 0};
  const double prevalence_f1 = 2.0 * 0.4 / 1.4;
  EXPECT_GE(best_f1(scores, labels).f1, prevalence_f1 - 1e-9);
}

TEST(EventDetection, CountsEventsNotSamples) {
  // Two events: samples 1-2 and 5. Scores catch only the first.
  std::vector<int> labels{0, 1, 1, 0, 0, 1, 0};
  std::vector<float> scores{0, 0, 9, 0, 0, 0, 0};
  const EventStats stats = event_detection(scores, labels, 1.0F);
  EXPECT_EQ(stats.total_events, 2);
  EXPECT_EQ(stats.detected_events, 1);
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 0.5);
}

TEST(EventDetection, SingleSpikeAnywhereInEventCounts) {
  std::vector<int> labels{1, 1, 1, 1};
  for (std::size_t spike = 0; spike < 4; ++spike) {
    std::vector<float> scores(4, 0.0F);
    scores[spike] = 5.0F;
    EXPECT_EQ(event_detection(scores, labels, 1.0F).detected_events, 1);
  }
}

TEST(Summarize, BasicStatistics) {
  const Summary s = summarize(std::vector<float>{1.0F, 2.0F, 3.0F, 4.0F});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-9);
  EXPECT_THROW(summarize(std::vector<float>{}), Error);
}

}  // namespace
}  // namespace varade::eval
