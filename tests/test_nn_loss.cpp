// Loss-function tests: closed-form values (paper equations 5-7) and analytic
// gradients against finite differences.
#include <gtest/gtest.h>

#include <cmath>

#include "varade/nn/loss.hpp"

namespace varade {
namespace {

TEST(MseLoss, ClosedForm) {
  const Tensor pred = Tensor::vector({1, 2, 3});
  const Tensor target = Tensor::vector({1, 0, 6});
  const nn::LossResult r = nn::mse_loss(pred, target);
  EXPECT_NEAR(r.value, (0.0F + 4.0F + 9.0F) / 3.0F, 1e-6);
  // grad = 2(pred-target)/n
  EXPECT_NEAR(r.grad.at(0), 0.0F, 1e-6);
  EXPECT_NEAR(r.grad.at(1), 4.0F / 3.0F, 1e-6);
  EXPECT_NEAR(r.grad.at(2), -2.0F, 1e-6);
}

TEST(MseLoss, Errors) {
  EXPECT_THROW(nn::mse_loss(Tensor({2}), Tensor({3})), Error);
  EXPECT_THROW(nn::mse_loss(Tensor({0}), Tensor({0})), Error);
}

TEST(GaussianNll, MatchesPaperEquation5) {
  // NLL = 1/2 (log sigma^2 + (y-mu)^2 / sigma^2), constant dropped.
  const Tensor mu = Tensor::vector({0.0F});
  const Tensor logvar = Tensor::vector({0.0F});  // sigma^2 = 1
  const Tensor y = Tensor::vector({2.0F});
  const nn::VariationalLossResult r = nn::gaussian_nll(mu, logvar, y);
  EXPECT_NEAR(r.value, 0.5F * (0.0F + 4.0F), 1e-6);
  // d/dmu = -(y-mu)/var = -2 ; d/dlogvar = 1/2 (1 - (y-mu)^2/var) = -1.5
  EXPECT_NEAR(r.grad_mu.at(0), -2.0F, 1e-6);
  EXPECT_NEAR(r.grad_logvar.at(0), -1.5F, 1e-6);
}

TEST(GaussianNll, PerfectPredictionPenalisesOnlyVariance) {
  const Tensor mu = Tensor::vector({3.0F});
  const Tensor y = Tensor::vector({3.0F});
  const Tensor logvar = Tensor::vector({-2.0F});
  const nn::VariationalLossResult r = nn::gaussian_nll(mu, logvar, y);
  EXPECT_NEAR(r.value, 0.5F * -2.0F, 1e-6);
  EXPECT_NEAR(r.grad_mu.at(0), 0.0F, 1e-6);
  EXPECT_NEAR(r.grad_logvar.at(0), 0.5F, 1e-6);  // shrink variance further
}

TEST(KlStandardNormal, MatchesPaperEquation6) {
  // D_KL = -1/2 (1 + logvar - mu^2 - var); zero exactly at mu=0, var=1.
  const nn::VariationalLossResult zero =
      nn::kl_standard_normal(Tensor::vector({0.0F}), Tensor::vector({0.0F}));
  EXPECT_NEAR(zero.value, 0.0F, 1e-7);
  EXPECT_NEAR(zero.grad_mu.at(0), 0.0F, 1e-7);
  EXPECT_NEAR(zero.grad_logvar.at(0), 0.0F, 1e-7);

  const nn::VariationalLossResult r =
      nn::kl_standard_normal(Tensor::vector({1.0F}), Tensor::vector({std::log(2.0F)}));
  EXPECT_NEAR(r.value, -0.5F * (1.0F + std::log(2.0F) - 1.0F - 2.0F), 1e-6);
  EXPECT_NEAR(r.grad_mu.at(0), 1.0F, 1e-6);              // mu
  EXPECT_NEAR(r.grad_logvar.at(0), 0.5F * (2.0F - 1.0F), 1e-6);  // (var-1)/2
}

TEST(KlStandardNormal, AlwaysNonNegative) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Tensor mu = Tensor::randn({10}, rng, 2.0F);
    const Tensor logvar = Tensor::randn({10}, rng, 1.0F);
    EXPECT_GE(nn::kl_standard_normal(mu, logvar).value, -1e-5F);
  }
}

TEST(ElboLoss, IsWeightedSumOfParts) {
  Rng rng(2);
  const Tensor mu = Tensor::randn({8}, rng);
  const Tensor logvar = Tensor::randn({8}, rng, 0.3F);
  const Tensor y = Tensor::randn({8}, rng);
  const float lambda = 0.37F;

  const auto recon = nn::gaussian_nll(mu, logvar, y);
  const auto kl = nn::kl_standard_normal(mu, logvar);
  const auto elbo = nn::elbo_loss(mu, logvar, y, lambda);

  EXPECT_NEAR(elbo.value, recon.value + lambda * kl.value, 1e-5);
  for (Index i = 0; i < 8; ++i) {
    EXPECT_NEAR(elbo.grad_mu[i], recon.grad_mu[i] + lambda * kl.grad_mu[i], 1e-6);
    EXPECT_NEAR(elbo.grad_logvar[i], recon.grad_logvar[i] + lambda * kl.grad_logvar[i], 1e-6);
  }
}

TEST(ElboLoss, LambdaZeroReducesToNll) {
  Rng rng(3);
  const Tensor mu = Tensor::randn({4}, rng);
  const Tensor logvar = Tensor::randn({4}, rng);
  const Tensor y = Tensor::randn({4}, rng);
  const auto elbo = nn::elbo_loss(mu, logvar, y, 0.0F);
  const auto nll = nn::gaussian_nll(mu, logvar, y);
  EXPECT_NEAR(elbo.value, nll.value, 1e-6);
}

// Parameterised finite-difference check over all three variational losses.
class VariationalGradCheck : public ::testing::TestWithParam<float> {};

TEST_P(VariationalGradCheck, GradientsMatchFiniteDifferences) {
  const float lambda = GetParam();
  Rng rng(5);
  Tensor mu = Tensor::randn({6}, rng);
  Tensor logvar = Tensor::randn({6}, rng, 0.5F);
  const Tensor y = Tensor::randn({6}, rng);
  const auto analytic = nn::elbo_loss(mu, logvar, y, lambda);

  const float eps = 1e-3F;
  for (Index i = 0; i < 6; ++i) {
    {
      const float orig = mu[i];
      mu[i] = orig + eps;
      const float lp = nn::elbo_loss(mu, logvar, y, lambda).value;
      mu[i] = orig - eps;
      const float lm = nn::elbo_loss(mu, logvar, y, lambda).value;
      mu[i] = orig;
      EXPECT_NEAR(analytic.grad_mu[i], (lp - lm) / (2 * eps), 2e-3F);
    }
    {
      const float orig = logvar[i];
      logvar[i] = orig + eps;
      const float lp = nn::elbo_loss(mu, logvar, y, lambda).value;
      logvar[i] = orig - eps;
      const float lm = nn::elbo_loss(mu, logvar, y, lambda).value;
      logvar[i] = orig;
      EXPECT_NEAR(analytic.grad_logvar[i], (lp - lm) / (2 * eps), 2e-3F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, VariationalGradCheck,
                         ::testing::Values(0.0F, 0.01F, 0.1F, 1.0F));

TEST(GaussianNll, OptimalLogvarEqualsLogResidualSquared) {
  // Minimising over logvar: d/dlogvar = 0 => var = (y-mu)^2.
  const Tensor mu = Tensor::vector({0.0F});
  const Tensor y = Tensor::vector({0.5F});
  const float opt = std::log(0.25F);
  const float below = nn::gaussian_nll(mu, Tensor::vector({opt - 0.3F}), y).value;
  const float at = nn::gaussian_nll(mu, Tensor::vector({opt}), y).value;
  const float above = nn::gaussian_nll(mu, Tensor::vector({opt + 0.3F}), y).value;
  EXPECT_LT(at, below);
  EXPECT_LT(at, above);
}

}  // namespace
}  // namespace varade
