// Fuzzing harness for the batched scoring contract.
//
// Now that all six detectors implement a native score_batch, this suite pins
// the contract the batched frontends (score_series, threshold calibration,
// serve::ScoringEngine) depend on, against seeded-random inputs rather than
// the well-behaved series the other parity suites use:
//  1. score_batch == score_step to the last bit at batch sizes
//     {1, 2, 5, 31, 64, 257} on random contexts/observations;
//  2. the same parity holds after clone_fitted() (replicas share no state
//     with the original, so a drifting copy would surface here);
//  3. edge cases of the native paths: B = 0 is a no-op, a mismatched channel
//     count and a context shorter than the window throw with the
//     "expects N ... got M" wording;
//  4. intra-batch parallel scoring (set_scoring_threads) is bit-identical to
//     the sequential path at every thread count x batch size — and the
//     convolution kernel dispatch table actually selects the vectorised
//     kernel on AVX2 hosts, including sanitized builds (this suite carries
//     the parity and concurrency labels, so ci.sh runs it under ASan/UBSan
//     and TSan).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "varade/core/profiles.hpp"
#include "varade/data/normalize.hpp"
#include "varade/nn/layers.hpp"

namespace varade::core {
namespace {

constexpr Index kChannels = 3;

data::MultivariateSeries make_sine(Index length, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(kChannels);
  std::vector<float> row(static_cast<std::size_t>(kChannels));
  for (Index t = 0; t < length; ++t) {
    for (Index c = 0; c < kChannels; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, 0.03F);
    }
    s.append(row);
  }
  return s;
}

/// Tiny-footprint configurations of all six detectors (fit must stay fast;
/// the scoring contract under test is size-independent).
Profile tiny_profile() {
  Profile p = repro_profile();
  p.varade.window = 16;
  p.varade.base_channels = 8;
  p.varade.epochs = 2;
  p.varade.learning_rate = 1e-3F;
  p.varade.train_stride = 4;

  p.ar_lstm.window = 16;
  p.ar_lstm.hidden = 8;
  p.ar_lstm.n_layers = 2;  // two stacked LSTMs so the batched path chains
  p.ar_lstm.epochs = 1;
  p.ar_lstm.learning_rate = 1e-3F;
  p.ar_lstm.train_stride = 8;

  p.gbrf.window = 16;
  p.gbrf.feature_steps = 4;
  p.gbrf.forest.n_trees = 5;
  p.gbrf.forest.tree.max_depth = 3;

  p.ae.window = 16;
  p.ae.base_channels = 8;
  p.ae.epochs = 1;
  p.ae.learning_rate = 1e-3F;
  p.ae.train_stride = 8;

  p.knn.max_reference_points = 400;
  p.iforest.forest.n_trees = 25;
  p.iforest.forest.subsample = 64;
  return p;
}

/// All six detectors fitted once on a shared synthetic recording (fitting
/// dominates the runtime of this binary; every test only scores).
struct DetectorRig {
  data::MultivariateSeries train_raw = make_sine(600, 1);
  data::MinMaxNormalizer normalizer;
  data::MultivariateSeries train;
  Profile profile = tiny_profile();
  std::vector<std::unique_ptr<AnomalyDetector>> detectors;

  DetectorRig() {
    normalizer.fit(train_raw);
    train = normalizer.transform(train_raw);
    for (const std::string& name : detector_names()) {
      detectors.push_back(make_detector(profile, name));
      detectors.back()->fit(train);
    }
  }
};

DetectorRig& rig() {
  static DetectorRig* r = new DetectorRig();
  return *r;
}

const std::vector<Index>& fuzz_batch_sizes() {
  static const std::vector<Index> sizes = {1, 2, 5, 31, 64, 257};
  return sizes;
}

/// Seeded-random (contexts, observations) in roughly the normalised data
/// range, with occasional out-of-range excursions so the fuzz also covers
/// values the detectors never trained on.
void random_pairs(Index rows, Index window, std::uint64_t seed, Tensor& contexts,
                  Tensor& observed) {
  Rng rng(seed);
  contexts = Tensor({rows, kChannels, window});
  for (Index i = 0; i < contexts.numel(); ++i)
    contexts[i] = rng.bernoulli(0.05) ? rng.normal(0.0F, 3.0F) : rng.uniform(0.0F, 1.0F);
  observed = Tensor({rows, kChannels});
  for (Index i = 0; i < observed.numel(); ++i)
    observed[i] = rng.bernoulli(0.05) ? rng.normal(0.0F, 3.0F) : rng.uniform(0.0F, 1.0F);
}

/// score_step row by row — the sequential reference the batch must match.
std::vector<float> sequential_scores(AnomalyDetector& detector, const Tensor& contexts,
                                     const Tensor& observed) {
  const Index rows = contexts.dim(0);
  const Index window = contexts.dim(2);
  std::vector<float> out(static_cast<std::size_t>(rows));
  Tensor context({kChannels, window});
  Tensor sample({kChannels});
  for (Index r = 0; r < rows; ++r) {
    std::memcpy(context.data(), contexts.data() + r * kChannels * window,
                static_cast<std::size_t>(kChannels * window) * sizeof(float));
    std::memcpy(sample.data(), observed.data() + r * kChannels,
                static_cast<std::size_t>(kChannels) * sizeof(float));
    out[static_cast<std::size_t>(r)] = detector.score_step(context, sample);
  }
  return out;
}

/// Bitwise float comparison: EXPECT_EQ would accept -0.0f == 0.0f and reject
/// identical NaNs; the contract is "the same bits".
void expect_bit_equal(const std::vector<float>& got, const std::vector<float>& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::uint32_t g = 0;
    std::uint32_t w = 0;
    std::memcpy(&g, &got[i], sizeof(g));
    std::memcpy(&w, &want[i], sizeof(w));
    EXPECT_EQ(g, w) << label << " row " << i << " (" << got[i] << " vs " << want[i] << ")";
  }
}

TEST(ScoreBatchFuzz, RandomContextsMatchScoreStepToTheLastBit) {
  std::uint64_t seed = 1000;
  for (auto& detector : rig().detectors) {
    const Index window = detector->context_window();
    for (const Index batch : fuzz_batch_sizes()) {
      Tensor contexts;
      Tensor observed;
      random_pairs(batch, window, seed++, contexts, observed);
      const std::vector<float> reference = sequential_scores(*detector, contexts, observed);
      std::vector<float> scores(static_cast<std::size_t>(batch), -1.0F);
      detector->score_batch(contexts, observed, scores.data());
      expect_bit_equal(scores, reference,
                       detector->name() + " batch " + std::to_string(batch));
    }
  }
}

TEST(ScoreBatchFuzz, ClonedReplicasKeepBitParityOnRandomContexts) {
  std::uint64_t seed = 5000;
  for (auto& detector : rig().detectors) {
    const std::unique_ptr<AnomalyDetector> clone = detector->clone_fitted();
    ASSERT_NE(clone, nullptr) << detector->name();
    const Index window = detector->context_window();
    for (const Index batch : fuzz_batch_sizes()) {
      Tensor contexts;
      Tensor observed;
      random_pairs(batch, window, seed++, contexts, observed);
      const std::vector<float> reference = sequential_scores(*detector, contexts, observed);
      std::vector<float> scores(static_cast<std::size_t>(batch), -1.0F);
      clone->score_batch(contexts, observed, scores.data());
      expect_bit_equal(scores, reference,
                       detector->name() + " clone batch " + std::to_string(batch));
    }
  }
}

TEST(ScoreBatchFuzz, IntraBatchParallelScoringKeepsBitParityAtEveryThreadCount) {
  // The parallel path splits the B axis into contiguous per-worker ranges;
  // each row keeps its sequential accumulation order, so any thread count
  // must reproduce score_step to the last bit. Batch sizes straddle the
  // interesting boundaries: 1 (fewer rows than workers), 7 (odd split),
  // 64 (round), 257 (many ranges, odd remainder).
  const std::vector<Index> batches = {1, 7, 64, 257};
  std::uint64_t seed = 9000;
  for (auto& detector : rig().detectors) {
    const Index window = detector->context_window();
    for (const Index batch : batches) {
      Tensor contexts;
      Tensor observed;
      random_pairs(batch, window, seed++, contexts, observed);
      const std::vector<float> reference = sequential_scores(*detector, contexts, observed);
      for (const int threads : {1, 2, 4}) {
        detector->set_scoring_threads(threads);
        EXPECT_EQ(detector->scoring_threads(), threads) << detector->name();
        std::vector<float> scores(static_cast<std::size_t>(batch), -1.0F);
        detector->score_batch(contexts, observed, scores.data());
        expect_bit_equal(scores, reference,
                         detector->name() + " batch " + std::to_string(batch) + " threads " +
                             std::to_string(threads));
      }
      detector->set_scoring_threads(1);
    }
  }
}

TEST(ScoreBatchFuzz, ScoringThreadSettingValidatesAndResets) {
  AnomalyDetector& detector = *rig().detectors.front();
  EXPECT_THROW(detector.set_scoring_threads(-1), Error);
  detector.set_scoring_threads(0);  // hardware concurrency
  EXPECT_GE(detector.scoring_threads(), 1);
  detector.set_scoring_threads(1);
  EXPECT_EQ(detector.scoring_threads(), 1);
}

TEST(KernelDispatch, SelectedConvKernelMatchesHostCpu) {
  // The dispatch table must pick the AVX2 kernel whenever the host supports
  // it — in particular under TSan/ASan, where the previous target_clones
  // ifunc machinery silently pinned the build to the scalar kernel.
  const std::string kernel = nn::conv1d_kernel_name();
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) {
    EXPECT_EQ(kernel, "avx2");
  } else {
    EXPECT_EQ(kernel, "scalar");
  }
#else
  EXPECT_EQ(kernel, "scalar");
#endif
}

TEST(ScoreBatchEdgeCases, EmptyBatchIsANoOpForEveryDetector) {
  for (auto& detector : rig().detectors) {
    const Index window = detector->context_window();
    float sentinel = 42.0F;
    EXPECT_NO_THROW(detector->score_batch(Tensor({0, kChannels, window}),
                                          Tensor({0, kChannels}), &sentinel))
        << detector->name();
    EXPECT_EQ(sentinel, 42.0F) << detector->name() << " wrote past an empty batch";
  }
}

TEST(ScoreBatchEdgeCases, MismatchedChannelCountThrowsWithExpectsGotWording) {
  for (auto& detector : rig().detectors) {
    const Index window = detector->context_window();
    std::vector<float> out(2);
    const Tensor contexts({2, kChannels + 2, window});
    const Tensor observed({2, kChannels + 2});
    const std::string name = detector->name();
    try {
      detector->score_batch(contexts, observed, out.data());
      FAIL() << name << " did not throw";
    } catch (const Error& e) {
      // The native baseline paths report the mismatch in the shared
      // "expects N channels, got M" wording introduced by kNN/IForest
      // (VARADE rejects the shape in its model forward instead).
      if (name != "VARADE") {
        const std::string message = e.what();
        EXPECT_NE(message.find("expects 3 channels, got 5"), std::string::npos)
            << name << " message: " << message;
      }
    }
  }
}

TEST(ScoreBatchEdgeCases, ContextShorterThanWindowThrowsWithExpectsGotWording) {
  for (auto& detector : rig().detectors) {
    const Index window = detector->context_window();
    std::vector<float> out(2);
    const Tensor contexts({2, kChannels, window - 1});
    const Tensor observed({2, kChannels});
    try {
      detector->score_batch(contexts, observed, out.data());
      FAIL() << detector->name() << " did not throw";
    } catch (const Error& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("expects context length " + std::to_string(window) + ", got " +
                             std::to_string(window - 1)),
                std::string::npos)
          << detector->name() << " message: " << message;
    }
  }
}

}  // namespace
}  // namespace varade::core
