// Tests for the tree substrate: CART regression, gradient boosting, and
// Isolation Forest.
#include <gtest/gtest.h>

#include <cmath>

#include "varade/trees/decision_tree.hpp"
#include "varade/trees/gbrf.hpp"
#include "varade/trees/isolation_forest.hpp"

namespace varade::trees {
namespace {

Tensor make_step_data(Tensor& y) {
  // x in [0,1); y = 1 for x <= 0.5 else -1 — one split fits exactly.
  const Index n = 40;
  Tensor x({n, 1});
  y = Tensor({n});
  for (Index i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i) / static_cast<float>(n);
    y[i] = x[i] <= 0.5F ? 1.0F : -1.0F;
  }
  return x;
}

TEST(DecisionTree, FitsStepFunctionExactly) {
  Tensor y;
  const Tensor x = make_step_data(y);
  DecisionTreeRegressor tree({.max_depth = 2, .min_samples_leaf = 1, .min_samples_split = 2});
  tree.fit(x, y);
  const Tensor pred = tree.predict(x);
  EXPECT_TRUE(allclose(pred, y, 1e-6F));
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTree, ConstantTargetGivesSingleLeaf) {
  Tensor x({10, 2}, 1.0F);
  Tensor y({10}, 3.5F);
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1U);
  EXPECT_FLOAT_EQ(tree.predict_one(x.row(0)), 3.5F);
}

TEST(DecisionTree, RespectsMaxDepth) {
  Rng rng(1);
  const Tensor x = Tensor::rand_uniform({200, 3}, rng, -1.0F, 1.0F);
  Tensor y({200});
  for (Index i = 0; i < 200; ++i) y[i] = rng.normal();
  DecisionTreeRegressor tree({.max_depth = 3});
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTree, MinSamplesLeafHonoured) {
  Tensor y;
  const Tensor x = make_step_data(y);
  DecisionTreeRegressor tree({.max_depth = 10, .min_samples_leaf = 15, .min_samples_split = 30});
  tree.fit(x, y);
  // With 40 samples and min leaf 15, at most one split is possible.
  EXPECT_LE(tree.node_count(), 3U);
}

TEST(DecisionTree, PredictionReducesVariance) {
  Rng rng(2);
  const Index n = 400;
  Tensor x({n, 2});
  Tensor y({n});
  for (Index i = 0; i < n; ++i) {
    x[i * 2] = rng.uniform(-1.0F, 1.0F);
    x[i * 2 + 1] = rng.uniform(-1.0F, 1.0F);
    y[i] = (x[i * 2] > 0.0F ? 2.0F : -2.0F) + 0.1F * rng.normal();
  }
  DecisionTreeRegressor tree({.max_depth = 4});
  tree.fit(x, y);
  const Tensor pred = tree.predict(x);
  double sse = 0.0;
  for (Index i = 0; i < n; ++i) sse += (pred[i] - y[i]) * (pred[i] - y[i]);
  EXPECT_LT(sse / n, 0.05);  // residual near noise level
}

TEST(DecisionTree, FitRowsSubset) {
  Tensor y;
  const Tensor x = make_step_data(y);
  DecisionTreeRegressor tree({.max_depth = 2, .min_samples_leaf = 1, .min_samples_split = 2});
  std::vector<Index> rows;
  for (Index i = 0; i < 20; ++i) rows.push_back(i);  // only the y=1 half
  tree.fit_rows(x, y, rows);
  EXPECT_FLOAT_EQ(tree.predict_one(x.row(0)), 1.0F);
  EXPECT_THROW(tree.fit_rows(x, y, {}), Error);
  EXPECT_THROW(tree.fit_rows(x, y, {999}), Error);
}

TEST(DecisionTree, ErrorsBeforeFitAndOnBadShapes) {
  DecisionTreeRegressor tree;
  EXPECT_FALSE(tree.fitted());
  EXPECT_THROW(tree.predict_one(Tensor::vector({1.0F})), Error);
  EXPECT_THROW(tree.fit(Tensor({3}), Tensor({3})), Error);  // X must be rank 2
  EXPECT_THROW(tree.fit(Tensor({3, 1}), Tensor({4})), Error);
}

TEST(Gbrf, BoostingReducesTrainingError) {
  Rng rng(3);
  const Index n = 300;
  Tensor x({n, 1});
  Tensor y({n});
  for (Index i = 0; i < n; ++i) {
    x[i] = rng.uniform(-3.0F, 3.0F);
    y[i] = std::sin(x[i]);
  }
  GbrfConfig one_cfg;
  one_cfg.n_trees = 1;
  one_cfg.tree.max_depth = 2;
  GradientBoostedRegressor one(one_cfg);
  one.fit(x, y);

  GbrfConfig many_cfg;
  many_cfg.n_trees = 30;
  many_cfg.tree.max_depth = 2;
  GradientBoostedRegressor many(many_cfg);
  many.fit(x, y);

  auto sse = [&](const GradientBoostedRegressor& model) {
    const Tensor pred = model.predict(x);
    double acc = 0.0;
    for (Index i = 0; i < n; ++i) acc += (pred[i] - y[i]) * (pred[i] - y[i]);
    return acc / n;
  };
  EXPECT_LT(sse(many), sse(one) * 0.5);
}

TEST(Gbrf, BasePredictionIsTargetMean) {
  Tensor x({4, 1}, std::vector<float>{0, 1, 2, 3});
  Tensor y = Tensor::vector({2, 4, 6, 8});
  GbrfConfig cfg;
  cfg.n_trees = 1;
  GradientBoostedRegressor model(cfg);
  model.fit(x, y);
  EXPECT_FLOAT_EQ(model.base_prediction(), 5.0F);
}

TEST(Gbrf, SubsampleAndConfigValidation) {
  EXPECT_THROW(GradientBoostedRegressor({.n_trees = 0}), Error);
  EXPECT_THROW(GradientBoostedRegressor({.learning_rate = 0.0F}), Error);
  EXPECT_THROW(GradientBoostedRegressor({.subsample = 1.5F}), Error);

  Rng rng(4);
  const Tensor x = Tensor::rand_uniform({100, 2}, rng, -1.0F, 1.0F);
  Tensor y({100});
  for (Index i = 0; i < 100; ++i) y[i] = x[i * 2];
  GbrfConfig cfg;
  cfg.subsample = 0.5F;
  cfg.n_trees = 10;
  GradientBoostedRegressor model(cfg);
  model.fit(x, y);
  EXPECT_EQ(model.n_trees(), 10);
}

TEST(MultiOutputGbrf, PredictsEachColumn) {
  Rng rng(5);
  const Index n = 200;
  Tensor x({n, 2});
  Tensor y({n, 2});
  for (Index i = 0; i < n; ++i) {
    x[i * 2] = rng.uniform(-1.0F, 1.0F);
    x[i * 2 + 1] = rng.uniform(-1.0F, 1.0F);
    y[i * 2] = x[i * 2] > 0.0F ? 1.0F : -1.0F;
    y[i * 2 + 1] = x[i * 2 + 1];
  }
  GbrfConfig cfg;
  cfg.n_trees = 10;
  cfg.tree.max_depth = 3;
  MultiOutputGbrf model(cfg);
  model.fit(x, y);
  EXPECT_EQ(model.n_outputs(), 2);
  const Tensor pred = model.predict(x);
  EXPECT_EQ(pred.shape(), (Shape{n, 2}));
  double err0 = 0.0;
  for (Index i = 0; i < n; ++i) err0 += std::fabs(pred[i * 2] - y[i * 2]);
  EXPECT_LT(err0 / n, 0.3);
  // predict_one agrees with batch predict
  const Tensor p1 = model.predict_one(x.row(0));
  EXPECT_NEAR(p1[0], pred[0], 1e-5F);
  EXPECT_NEAR(p1[1], pred[1], 1e-5F);
}

TEST(IsolationForest, AveragePathLengthFormula) {
  EXPECT_DOUBLE_EQ(average_path_length(1.0), 0.0);
  EXPECT_DOUBLE_EQ(average_path_length(2.0), 1.0);
  // c(n) grows logarithmically.
  EXPECT_GT(average_path_length(256.0), average_path_length(64.0));
  EXPECT_NEAR(average_path_length(256.0), 2.0 * (std::log(255.0) + 0.5772156649) -
                                              2.0 * 255.0 / 256.0,
              1e-9);
}

TEST(IsolationForest, PlantedOutliersScoreHigher) {
  Rng rng(6);
  const Index n = 512;
  Tensor x({n, 2});
  for (Index i = 0; i < n; ++i) {
    x[i * 2] = rng.normal(0.0F, 1.0F);
    x[i * 2 + 1] = rng.normal(0.0F, 1.0F);
  }
  IsolationForest forest({.n_trees = 100, .subsample = 128, .contamination = 0.1F, .seed = 1});
  forest.fit(x);

  const float inlier = forest.score_one(Tensor::vector({0.0F, 0.0F}));
  const float outlier = forest.score_one(Tensor::vector({8.0F, -8.0F}));
  EXPECT_GT(outlier, inlier);
  EXPECT_GT(outlier, 0.6F);   // clearly anomalous per the iForest scale
  EXPECT_LT(inlier, 0.55F);
  EXPECT_TRUE(forest.is_anomaly(Tensor::vector({8.0F, -8.0F})));
  EXPECT_FALSE(forest.is_anomaly(Tensor::vector({0.0F, 0.0F})));
}

TEST(IsolationForest, ScoresAreInUnitInterval) {
  Rng rng(7);
  const Tensor x = Tensor::randn({300, 3}, rng);
  IsolationForest forest({.n_trees = 50, .subsample = 64, .contamination = 0.1F, .seed = 2});
  forest.fit(x);
  const Tensor scores = forest.score(x);
  EXPECT_GT(scores.min(), 0.0F);
  EXPECT_LT(scores.max(), 1.0F);
}

TEST(IsolationForest, ThresholdMatchesContamination) {
  Rng rng(8);
  const Tensor x = Tensor::randn({1000, 2}, rng);
  IsolationForest forest({.n_trees = 50, .subsample = 128, .contamination = 0.1F, .seed = 3});
  forest.fit(x);
  const Tensor scores = forest.score(x);
  Index above = 0;
  for (Index i = 0; i < scores.numel(); ++i)
    if (scores[i] > forest.threshold()) ++above;
  // ~10% of training points flagged (tolerance for ties).
  EXPECT_NEAR(static_cast<double>(above) / 1000.0, 0.1, 0.03);
}

TEST(IsolationForest, ConfigValidationAndErrors) {
  EXPECT_THROW(IsolationForest({.n_trees = 0}), Error);
  EXPECT_THROW(IsolationForest({.subsample = 1}), Error);
  EXPECT_THROW(IsolationForest({.contamination = 0.7F}), Error);
  IsolationForest forest;
  EXPECT_THROW(forest.score_one(Tensor::vector({1.0F})), Error);
  EXPECT_THROW(forest.fit(Tensor({1, 2})), Error);
}

TEST(IsolationForest, DeterministicWithSeed) {
  Rng rng(9);
  const Tensor x = Tensor::randn({256, 2}, rng);
  IsolationForestConfig cfg{.n_trees = 20, .subsample = 64, .contamination = 0.1F, .seed = 77};
  IsolationForest a(cfg);
  IsolationForest b(cfg);
  a.fit(x);
  b.fit(x);
  const Tensor q = Tensor::vector({0.5F, -0.5F});
  EXPECT_FLOAT_EQ(a.score_one(q), b.score_one(q));
}

}  // namespace
}  // namespace varade::trees
