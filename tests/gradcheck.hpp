// Finite-difference gradient checking utilities shared by the nn tests.
//
// For a module M and random projection R, defines the scalar loss
//   L(x, theta) = sum(M.forward(x) * R)
// whose analytic input gradient is M.backward(R) and whose parameter
// gradients accumulate into the module's Parameter::grad. Both are compared
// against central finite differences.
#pragma once

#include <gtest/gtest.h>

#include "varade/nn/module.hpp"

namespace varade::testing {

inline float projected_loss(nn::Module& module, const Tensor& x, const Tensor& projection) {
  const Tensor y = module.forward(x);
  EXPECT_TRUE(y.same_shape(projection)) << "projection shape mismatch";
  return dot(y, projection);
}

/// Checks dL/dx returned by backward() against finite differences.
inline void check_input_gradient(nn::Module& module, Tensor x, const Tensor& projection,
                                 float eps = 1e-2F, float tol = 2e-2F) {
  module.zero_grad();
  module.forward(x);
  const Tensor analytic = module.backward(projection);

  for (Index i = 0; i < x.numel(); i += std::max<Index>(1, x.numel() / 64)) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = projected_loss(module, x, projection);
    x[i] = orig - eps;
    const float lm = projected_loss(module, x, projection);
    x[i] = orig;
    const float numeric = (lp - lm) / (2.0F * eps);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0F, std::fabs(numeric)))
        << "input gradient mismatch at flat index " << i;
  }
}

/// Checks every parameter gradient against finite differences.
inline void check_parameter_gradients(nn::Module& module, const Tensor& x,
                                      const Tensor& projection, float eps = 1e-2F,
                                      float tol = 2e-2F) {
  module.zero_grad();
  module.forward(x);
  module.backward(projection);

  for (nn::Parameter* p : module.parameters()) {
    // Copy analytic grads before FD perturbs state.
    const Tensor analytic = p->grad;
    const Index hop = std::max<Index>(1, p->value.numel() / 48);
    for (Index i = 0; i < p->value.numel(); i += hop) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float lp = projected_loss(module, x, projection);
      p->value[i] = orig - eps;
      const float lm = projected_loss(module, x, projection);
      p->value[i] = orig;
      const float numeric = (lp - lm) / (2.0F * eps);
      EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0F, std::fabs(numeric)))
          << "parameter '" << p->name << "' gradient mismatch at flat index " << i;
    }
  }
}

}  // namespace varade::testing
