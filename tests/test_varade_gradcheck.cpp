// Finite-difference gradient checks pinning the VARADE ELBO backward path:
// the conv trunk layers, the mu/logvar heads, and the full model backward
// through elbo_loss, all at a small window (T = 16) so central differences
// stay cheap and well-conditioned.
#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"
#include "varade/core/varade.hpp"
#include "varade/nn/loss.hpp"

namespace varade::core {
namespace {

constexpr Index kChannels = 2;

VaradeConfig tiny_config() {
  VaradeConfig cfg;
  cfg.window = 16;  // 3 conv layers: 16 -> 8 -> 4 -> 2
  cfg.base_channels = 4;
  return cfg;
}

TEST(VaradeGradcheck, TrunkConvLayersMatchFiniteDifferences) {
  Rng rng(11);
  VaradeConfig cfg = tiny_config();
  VaradeModel model(kChannels, cfg, rng);
  ASSERT_EQ(model.n_layers(), 3);

  // Layer 0 is the first Conv1d of the trunk (layers alternate conv/relu).
  auto& conv0 = dynamic_cast<nn::Conv1d&>(model.trunk().layer(0));
  {
    const Tensor x = Tensor::randn({2, kChannels, cfg.window}, rng, 0.5F);
    const Shape out_shape{2, conv0.out_channels(), conv0.out_length(cfg.window)};
    const Tensor projection = Tensor::randn(out_shape, rng);
    varade::testing::check_input_gradient(conv0, x, projection);
    varade::testing::check_parameter_gradients(conv0, x, projection);
  }

  // Deepest conv (layer index 4 = third conv) sees the doubled channel width.
  auto& conv2 = dynamic_cast<nn::Conv1d&>(model.trunk().layer(4));
  {
    const Tensor x = Tensor::randn({2, conv2.in_channels(), 4}, rng, 0.5F);
    const Shape out_shape{2, conv2.out_channels(), conv2.out_length(4)};
    const Tensor projection = Tensor::randn(out_shape, rng);
    varade::testing::check_input_gradient(conv2, x, projection);
    varade::testing::check_parameter_gradients(conv2, x, projection);
  }
}

TEST(VaradeGradcheck, MuAndLogvarHeadsMatchFiniteDifferences) {
  Rng rng(12);
  VaradeModel model(kChannels, tiny_config(), rng);

  const Index feature_dim = model.mu_head().in_features();
  const Tensor x = Tensor::randn({3, feature_dim}, rng, 0.5F);
  const Tensor projection = Tensor::randn({3, kChannels}, rng);

  varade::testing::check_input_gradient(model.mu_head(), x, projection);
  varade::testing::check_parameter_gradients(model.mu_head(), x, projection);
  varade::testing::check_input_gradient(model.logvar_head(), x, projection);
  varade::testing::check_parameter_gradients(model.logvar_head(), x, projection);
}

// Full-model check: d(ELBO)/d(theta) via VaradeModel::backward against
// central finite differences of the scalar loss. This pins the exact
// composition used in VaradeDetector::fit (trunk -> heads -> elbo_loss).
TEST(VaradeGradcheck, FullModelElboBackwardMatchesFiniteDifferences) {
  Rng rng(13);
  VaradeConfig cfg = tiny_config();
  VaradeModel model(kChannels, cfg, rng);

  const Tensor x = Tensor::randn({3, kChannels, cfg.window}, rng, 0.5F);
  const Tensor target = Tensor::randn({3, kChannels}, rng, 0.5F);
  const float lambda = cfg.lambda;

  auto loss_value = [&] {
    const VaradeModel::Output out = model.forward(x);
    return nn::elbo_loss(out.mu, out.logvar, target, lambda).value;
  };

  model.zero_grad();
  const VaradeModel::Output out = model.forward(x);
  const nn::VariationalLossResult loss = nn::elbo_loss(out.mu, out.logvar, target, lambda);
  ASSERT_TRUE(std::isfinite(loss.value));
  model.backward(loss.grad_mu, loss.grad_logvar);

  constexpr float kEps = 1e-2F;
  constexpr float kTol = 2e-2F;
  for (nn::Parameter* p : model.parameters()) {
    const Tensor analytic = p->grad;
    const Index hop = std::max<Index>(1, p->value.numel() / 24);
    for (Index i = 0; i < p->value.numel(); i += hop) {
      const float orig = p->value[i];
      p->value[i] = orig + kEps;
      const float lp = loss_value();
      p->value[i] = orig - kEps;
      const float lm = loss_value();
      p->value[i] = orig;
      const float numeric = (lp - lm) / (2.0F * kEps);
      EXPECT_NEAR(analytic[i], numeric, kTol * std::max(1.0F, std::fabs(numeric)))
          << "parameter '" << p->name << "' flat index " << i;
    }
  }
}

}  // namespace
}  // namespace varade::core
