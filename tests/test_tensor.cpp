// Unit tests for the dense tensor substrate.
#include <gtest/gtest.h>

#include "varade/tensor/tensor.hpp"

namespace varade {
namespace {

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({5}), 5);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_THROW(shape_numel({-1, 2}), Error);
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t({2, 3}, 1.5F);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.numel(), 6);
  for (Index i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 1.5F);
  t.zero();
  EXPECT_FLOAT_EQ(t.sum(), 0.0F);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), Error);
}

TEST(Tensor, VectorAndMatrixBuilders) {
  const Tensor v = Tensor::vector({1.0F, 2.0F, 3.0F});
  EXPECT_EQ(v.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(v.at(1), 2.0F);

  const Tensor m = Tensor::matrix({{1.0F, 2.0F}, {3.0F, 4.0F}});
  EXPECT_EQ(m.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.0F);
  EXPECT_THROW(Tensor::matrix({{1.0F}, {1.0F, 2.0F}}), Error);
}

TEST(Tensor, BoundsCheckedAccess) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, 3), Error);
  EXPECT_THROW(t.at(0), Error);  // wrong rank
  Tensor u({4});
  EXPECT_THROW(u.at(0, 0), Error);
  EXPECT_NO_THROW(u.at(3));
}

TEST(Tensor, RankThreeFourAccess) {
  Tensor t({2, 3, 4}, 0.0F);
  t.at(1, 2, 3) = 7.0F;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0F);
  Tensor q({2, 2, 2, 2});
  q.at(1, 0, 1, 0) = 3.0F;
  EXPECT_FLOAT_EQ(q[8 + 2], 3.0F);
  EXPECT_THROW(q.at(2, 0, 0, 0), Error);
}

TEST(Tensor, Reshape) {
  Tensor t({2, 6}, 1.0F);
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_THROW(t.reshaped({5, 2}), Error);
}

TEST(Tensor, Transpose) {
  const Tensor m = Tensor::matrix({{1, 2, 3}, {4, 5, 6}});
  const Tensor mt = m.transposed();
  EXPECT_EQ(mt.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(mt.at(0, 1), 4.0F);
  EXPECT_FLOAT_EQ(mt.at(2, 0), 3.0F);
  EXPECT_THROW(Tensor({2, 2, 2}).transposed(), Error);
}

TEST(Tensor, RowAndSlice) {
  const Tensor m = Tensor::matrix({{1, 2}, {3, 4}, {5, 6}});
  const Tensor r = m.row(1);
  EXPECT_EQ(r.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(r.at(0), 3.0F);
  const Tensor s = m.slice0(1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.at(0, 0), 3.0F);
  EXPECT_THROW(m.slice0(2, 1), Error);
  EXPECT_THROW(m.row(3), Error);
}

TEST(Tensor, ElementwiseArithmetic) {
  const Tensor a = Tensor::vector({1, 2, 3});
  const Tensor b = Tensor::vector({4, 5, 6});
  EXPECT_EQ((a + b), Tensor::vector({5, 7, 9}));
  EXPECT_EQ((b - a), Tensor::vector({3, 3, 3}));
  EXPECT_EQ((a * b), Tensor::vector({4, 10, 18}));
  EXPECT_EQ((b / a), Tensor::vector({4, 2.5F, 2}));
  EXPECT_EQ((a * 2.0F), Tensor::vector({2, 4, 6}));
  EXPECT_EQ((2.0F * a), Tensor::vector({2, 4, 6}));
  EXPECT_EQ((a + 1.0F), Tensor::vector({2, 3, 4}));
  EXPECT_THROW(a + Tensor({4}), Error);
}

TEST(Tensor, MapAndReductions) {
  const Tensor a = Tensor::vector({-1, 2, -3});
  EXPECT_EQ(abs(a), Tensor::vector({1, 2, 3}));
  EXPECT_FLOAT_EQ(a.sum(), -2.0F);
  EXPECT_FLOAT_EQ(a.mean(), -2.0F / 3.0F);
  EXPECT_FLOAT_EQ(a.min(), -3.0F);
  EXPECT_FLOAT_EQ(a.max(), 2.0F);
  EXPECT_NEAR(a.norm(), std::sqrt(14.0F), 1e-6);
  EXPECT_THROW(Tensor({0}).mean(), Error);
}

TEST(Tensor, ClampAndNonFinite) {
  const Tensor a = Tensor::vector({-2, 0.5F, 3});
  EXPECT_EQ(clamp(a, -1.0F, 1.0F), Tensor::vector({-1, 0.5F, 1}));
  Tensor b = Tensor::vector({1, 2});
  EXPECT_FALSE(b.has_non_finite());
  b[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(b.has_non_finite());
  b[0] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(b.has_non_finite());
}

TEST(Tensor, Matmul) {
  const Tensor a = Tensor::matrix({{1, 2}, {3, 4}});
  const Tensor b = Tensor::matrix({{5, 6}, {7, 8}});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c, Tensor::matrix({{19, 22}, {43, 50}}));
  EXPECT_THROW(matmul(a, Tensor({3, 2})), Error);
}

TEST(Tensor, MatmulIdentity) {
  Rng rng(1);
  const Tensor a = Tensor::randn({4, 4}, rng);
  Tensor eye({4, 4});
  for (Index i = 0; i < 4; ++i) eye.at(i, i) = 1.0F;
  EXPECT_TRUE(allclose(matmul(a, eye), a, 1e-6F));
  EXPECT_TRUE(allclose(matmul(eye, a), a, 1e-6F));
}

TEST(Tensor, AxpyAndDot) {
  const Tensor x = Tensor::vector({1, 2, 3});
  Tensor y = Tensor::vector({1, 1, 1});
  axpy(2.0F, x, y);
  EXPECT_EQ(y, Tensor::vector({3, 5, 7}));
  EXPECT_FLOAT_EQ(dot(x, x), 14.0F);
  EXPECT_THROW(dot(x, Tensor({2})), Error);
}

TEST(Tensor, AllcloseAndMaxAbsDiff) {
  const Tensor a = Tensor::vector({1, 2});
  const Tensor b = Tensor::vector({1.0001F, 2});
  EXPECT_TRUE(allclose(a, b, 1e-3F));
  EXPECT_FALSE(allclose(a, b, 1e-6F));
  EXPECT_NEAR(max_abs_diff(a, b), 1e-4F, 1e-6F);
  EXPECT_FALSE(allclose(a, Tensor({3})));
}

TEST(Rng, Determinism) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(8);
  EXPECT_NE(Rng(7).next_u64(), c.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0F, 5.0F);
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 5.0F);
  }
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float v = rng.normal(1.0F, 2.0F);
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(TensorRandom, RandnStats) {
  Rng rng(5);
  const Tensor t = Tensor::randn({10000}, rng, 0.5F);
  EXPECT_NEAR(t.mean(), 0.0F, 0.02F);
  const float var = dot(t, t) / static_cast<float>(t.numel());
  EXPECT_NEAR(var, 0.25F, 0.02F);
}

}  // namespace
}  // namespace varade
