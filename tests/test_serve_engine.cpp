// Tests for the serve::ScoringEngine multi-stream batched scoring layer.
//
// The engine's contract is exact equivalence with the sequential
// OnlineMonitor path: identical scores (bit for bit) and identical alarm
// events at any thread count and batch size. Parity holds because every
// model layer processes batch rows independently with a fixed accumulation
// order, and the engine reuses the monitor's AlarmTracker and calibration
// rule verbatim.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "varade/core/monitor.hpp"
#include "varade/core/varade.hpp"
#include "varade/serve/scoring_engine.hpp"
#include "varade/serve/thread_pool.hpp"

namespace varade::serve {
namespace {

data::MultivariateSeries make_sine(Index length, bool planted, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(3);
  std::vector<float> row(3);
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = planted && (t % 250) >= 200 && (t % 250) < 215;
    for (Index c = 0; c < 3; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, anomalous ? 0.9F : 0.03F);
    }
    s.append(row, anomalous ? 1 : 0);
  }
  return s;
}

/// One fitted tiny VARADE shared by every test in this binary (fitting is by
/// far the slowest part; the engine only reads the model).
struct ServeRig {
  data::MultivariateSeries train_raw = make_sine(900, false, 1);
  data::MinMaxNormalizer normalizer;
  data::MultivariateSeries train;
  core::VaradeDetector detector;

  ServeRig()
      : detector({.window = 32,
                  .base_channels = 8,
                  .epochs = 2,
                  .learning_rate = 1e-3F,
                  .train_stride = 4}) {
    normalizer.fit(train_raw);
    train = normalizer.transform(train_raw);
    detector.fit(train);
  }
};

ServeRig& rig() {
  static ServeRig* r = new ServeRig();
  return *r;
}

/// Scores + events of one stream run through a sequential OnlineMonitor.
struct SequentialRun {
  std::vector<float> scores;
  std::vector<core::AnomalyEvent> events;
  bool in_alarm = false;
};

SequentialRun run_monitor(const data::MultivariateSeries& stream, core::MonitorConfig mc) {
  core::OnlineMonitor monitor(rig().detector, rig().normalizer, mc);
  monitor.calibrate(rig().train);
  SequentialRun run;
  for (Index t = 0; t < stream.length(); ++t) run.scores.push_back(monitor.push(stream.sample(t)));
  run.events = monitor.events();
  run.in_alarm = monitor.in_alarm();
  return run;
}

void expect_same_events(const std::vector<core::AnomalyEvent>& a,
                        const std::vector<core::AnomalyEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].onset_sample, b[i].onset_sample) << "event " << i;
    EXPECT_EQ(a[i].last_sample, b[i].last_sample) << "event " << i;
    EXPECT_EQ(a[i].peak_score, b[i].peak_score) << "event " << i;
  }
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(257, [&](Index i, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(64, [&](Index i, int) {
        if (i == 13) fail("boom");
      }),
      Error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](Index, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ScoringEngine, RequiresFittedComponentsAndValidConfig) {
  core::VaradeDetector unfitted;
  EXPECT_THROW(ScoringEngine(unfitted, rig().normalizer), Error);
  data::MinMaxNormalizer blank;
  EXPECT_THROW(ScoringEngine(rig().detector, blank), Error);
  EXPECT_THROW(ScoringEngine(rig().detector, rig().normalizer, {.max_batch = 0}), Error);
  ScoringEngineConfig bad;
  bad.monitor.debounce_samples = 0;
  EXPECT_THROW(ScoringEngine(rig().detector, rig().normalizer, bad), Error);
}

TEST(ScoringEngine, StepBeforeCalibrationThrows) {
  ScoringEngine engine(rig().detector, rig().normalizer);
  engine.add_stream();
  engine.push(0, std::vector<float>(3, 0.0F));
  EXPECT_THROW(engine.step(), Error);
}

TEST(ScoringEngine, CalibrationMatchesMonitorExactly) {
  core::OnlineMonitor monitor(rig().detector, rig().normalizer);
  monitor.calibrate(rig().train);
  ScoringEngine engine(rig().detector, rig().normalizer);
  engine.calibrate(rig().train);
  EXPECT_EQ(engine.threshold(), monitor.threshold());
}

TEST(ScoringEngine, SingleStreamParityBitForBit) {
  const auto stream = make_sine(500, true, 7);
  const SequentialRun seq = run_monitor(stream, {});

  ScoringEngine engine(rig().detector, rig().normalizer, {.n_threads = 1, .max_batch = 1});
  engine.add_stream();
  engine.calibrate(rig().train);

  std::vector<float> scores;
  for (Index t = 0; t < stream.length(); ++t) {
    engine.push(0, stream.sample(t), stream.n_channels());
    const auto results = engine.step();
    ASSERT_EQ(results.size(), 1U);
    EXPECT_EQ(results[0].stream, 0);
    EXPECT_EQ(results[0].sample, t);
    scores.push_back(results[0].score);
  }

  ASSERT_EQ(scores.size(), seq.scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    EXPECT_EQ(scores[i], seq.scores[i]) << "score diverged at sample " << i;
  expect_same_events(engine.events(0), seq.events);
  EXPECT_EQ(engine.in_alarm(0), seq.in_alarm);
  EXPECT_EQ(engine.samples_seen(0), stream.length());
}

TEST(ScoringEngine, EightStreamsFourThreadsMatchSequentialMonitors) {
  constexpr Index kStreams = 8;
  std::vector<data::MultivariateSeries> inputs;
  std::vector<SequentialRun> expected;
  for (Index s = 0; s < kStreams; ++s) {
    inputs.push_back(make_sine(400, /*planted=*/s % 2 == 0, 100 + static_cast<std::uint64_t>(s)));
    expected.push_back(run_monitor(inputs.back(), {}));
  }

  ScoringEngine engine(rig().detector, rig().normalizer,
                       {.n_threads = 4, .max_batch = 4, .shard_forward = true});
  engine.add_streams(kStreams);
  engine.calibrate(rig().train);
  EXPECT_EQ(engine.n_threads(), 4);

  // Feed in chunks so step() sees many streams pending at once and batches
  // their contexts.
  std::vector<std::vector<float>> scores(kStreams);
  constexpr Index kChunk = 25;
  for (Index t0 = 0; t0 < 400; t0 += kChunk) {
    for (Index s = 0; s < kStreams; ++s)
      for (Index t = t0; t < t0 + kChunk; ++t) engine.push(s, inputs[s].sample(t), 3);
    for (const StreamScore& r : engine.step())
      scores[static_cast<std::size_t>(r.stream)].push_back(r.score);
  }
  EXPECT_GT(engine.forward_calls(), 0);

  for (Index s = 0; s < kStreams; ++s) {
    const auto& got = scores[static_cast<std::size_t>(s)];
    const auto& want = expected[static_cast<std::size_t>(s)].scores;
    ASSERT_EQ(got.size(), want.size()) << "stream " << s;
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], want[i]) << "stream " << s << " sample " << i;
    expect_same_events(engine.events(s), expected[static_cast<std::size_t>(s)].events);
    EXPECT_EQ(engine.in_alarm(s), expected[static_cast<std::size_t>(s)].in_alarm);
  }
}

TEST(ScoringEngine, DeterministicAcrossRunsAndConfigs) {
  constexpr Index kStreams = 5;
  std::vector<data::MultivariateSeries> inputs;
  for (Index s = 0; s < kStreams; ++s)
    inputs.push_back(make_sine(200, true, 300 + static_cast<std::uint64_t>(s)));

  auto run_with = [&](ScoringEngineConfig cfg) {
    ScoringEngine engine(rig().detector, rig().normalizer, cfg);
    engine.add_streams(kStreams);
    engine.calibrate(rig().train);
    for (Index s = 0; s < kStreams; ++s)
      for (Index t = 0; t < inputs[s].length(); ++t) engine.push(s, inputs[s].sample(t), 3);
    std::vector<float> flat;
    for (const StreamScore& r : engine.step()) flat.push_back(r.score);
    return flat;
  };

  const auto base = run_with({.n_threads = 1, .max_batch = 1});
  const auto threaded = run_with({.n_threads = 4, .max_batch = 3});
  const auto threaded2 = run_with({.n_threads = 4, .max_batch = 3});
  const auto wide = run_with({.n_threads = 2, .max_batch = 64, .shard_forward = false});
  ASSERT_EQ(base.size(), threaded.size());
  EXPECT_EQ(base, threaded);
  EXPECT_EQ(threaded, threaded2);
  EXPECT_EQ(base, wide);
}

TEST(ScoringEngine, AlarmEventsLandOnPlantedBursts) {
  const auto noisy = make_sine(1000, true, 11);
  ScoringEngine engine(rig().detector, rig().normalizer,
                       {.n_threads = 2, .max_batch = 16});
  engine.add_stream();
  engine.calibrate(rig().train);
  for (Index t = 0; t < noisy.length(); ++t) engine.push(0, noisy.sample(t), noisy.n_channels());
  engine.step();

  // Bursts are planted at phases 200-215 of every 250-sample period; the
  // monitor equivalence is checked bit-for-bit above, so here we pin the
  // end-to-end behaviour: events exist and onsets fall near the bursts.
  const auto& events = engine.events(0);
  ASSERT_GE(events.size(), 2U);
  for (const core::AnomalyEvent& ev : events) {
    const Index phase = ev.onset_sample % 250;
    EXPECT_GE(phase, 195) << "event onset " << ev.onset_sample;
    EXPECT_LE(phase, 230) << "event onset " << ev.onset_sample;
    EXPECT_GT(ev.peak_score, engine.threshold());
  }
}

TEST(ScoringEngine, UnevenStreamsWarmupAndBookkeeping) {
  ScoringEngine engine(rig().detector, rig().normalizer, {.n_threads = 2, .max_batch = 8});
  engine.add_streams(3);
  engine.set_threshold(1e9F);  // never alarms

  const auto quiet = make_sine(50, false, 21);
  // Stream 0 gets 40 samples, stream 1 gets 33 (window is 32), stream 2 none.
  for (Index t = 0; t < 40; ++t) engine.push(0, quiet.sample(t), quiet.n_channels());
  for (Index t = 0; t < 33; ++t) engine.push(1, quiet.sample(t), quiet.n_channels());
  const auto results = engine.step();
  EXPECT_EQ(results.size(), 73U);

  Index warm0 = 0, warm1 = 0;
  for (const StreamScore& r : results) {
    if (r.score >= 0.0F) (r.stream == 0 ? warm0 : warm1)++;
  }
  EXPECT_EQ(warm0, 8);  // samples 32..39 scored
  EXPECT_EQ(warm1, 1);  // sample 32 scored
  EXPECT_EQ(engine.samples_seen(0), 40);
  EXPECT_EQ(engine.samples_seen(1), 33);
  EXPECT_EQ(engine.samples_seen(2), 0);
  EXPECT_TRUE(engine.events(2).empty());
  EXPECT_THROW(engine.events(99), Error);
  // Draining again with nothing pending is a no-op.
  EXPECT_TRUE(engine.step().empty());
}

}  // namespace
}  // namespace varade::serve
