// LSTM tests: shape semantics, gate behaviour, and BPTT gradient checks.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "varade/nn/layers.hpp"
#include "varade/nn/lstm.hpp"

namespace varade {
namespace {

TEST(Lstm, OutputShape) {
  Rng rng(1);
  nn::Lstm lstm(3, 5, rng);
  const Tensor x = Tensor::randn({2, 3, 7}, rng);
  const Tensor y = lstm.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 7}));
  EXPECT_EQ(lstm.output_shape({3, 7}), (Shape{5, 7}));
}

TEST(Lstm, RejectsWrongChannelCount) {
  Rng rng(1);
  nn::Lstm lstm(3, 5, rng);
  EXPECT_THROW(lstm.forward(Tensor({2, 4, 7})), Error);
  EXPECT_THROW(lstm.forward(Tensor({2, 3})), Error);
}

TEST(Lstm, HiddenStateIsBounded) {
  // h = o * tanh(c) with o in (0,1) and tanh in (-1,1).
  Rng rng(2);
  nn::Lstm lstm(2, 4, rng);
  const Tensor x = Tensor::randn({1, 2, 20}, rng, 3.0F);
  const Tensor y = lstm.forward(x);
  EXPECT_LE(y.max(), 1.0F);
  EXPECT_GE(y.min(), -1.0F);
}

TEST(Lstm, ZeroWeightsGiveConstantOutput) {
  Rng rng(3);
  nn::Lstm lstm(2, 3, rng);
  for (nn::Parameter* p : lstm.parameters()) p->value.zero();
  const Tensor x = Tensor::randn({1, 2, 5}, rng);
  const Tensor y = lstm.forward(x);
  // With all weights and biases zero: i=f=o=0.5, g=0, c stays 0, h stays 0.
  EXPECT_NEAR(y.max(), 0.0F, 1e-6);
  EXPECT_NEAR(y.min(), 0.0F, 1e-6);
}

TEST(Lstm, StatePropagatesAcrossTime) {
  // The same input at every step must produce evolving hidden states while
  // the cell saturates (outputs differ between early and late steps).
  Rng rng(4);
  nn::Lstm lstm(1, 4, rng);
  Tensor x({1, 1, 10}, std::vector<float>(10, 1.0F));
  const Tensor y = lstm.forward(x);
  float first = 0.0F;
  float last = 0.0F;
  for (Index h = 0; h < 4; ++h) {
    first += std::fabs(y[h * 10 + 0]);
    last += std::fabs(y[h * 10 + 9]);
  }
  EXPECT_GT(std::fabs(first - last), 1e-4F);
}

TEST(Lstm, ForgetGateBiasInitialisedToOne) {
  Rng rng(5);
  nn::Lstm lstm(2, 3, rng);
  const Tensor& bias = lstm.parameters()[2]->value;
  for (Index h = 0; h < 3; ++h) EXPECT_FLOAT_EQ(bias[3 + h], 1.0F);  // forget block
  for (Index h = 0; h < 3; ++h) EXPECT_FLOAT_EQ(bias[h], 0.0F);      // input block
}

struct LstmCase {
  Index input;
  Index hidden;
  Index length;
  Index batch;
};

class LstmGradCheck : public ::testing::TestWithParam<LstmCase> {};

TEST_P(LstmGradCheck, MatchesFiniteDifferences) {
  const LstmCase c = GetParam();
  Rng rng(31);
  nn::Lstm lstm(c.input, c.hidden, rng);
  const Tensor x = Tensor::randn({c.batch, c.input, c.length}, rng);
  const Tensor projection = Tensor::randn({c.batch, c.hidden, c.length}, rng);
  testing::check_input_gradient(lstm, x, projection, 1e-2F, 3e-2F);
  testing::check_parameter_gradients(lstm, x, projection, 1e-2F, 3e-2F);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LstmGradCheck,
                         ::testing::Values(LstmCase{1, 2, 3, 1}, LstmCase{2, 3, 5, 2},
                                           LstmCase{3, 4, 4, 1}));

TEST(LstmStack, GradCheckThroughTwoLayersAndHead) {
  Rng rng(37);
  nn::Sequential net;
  net.emplace<nn::Lstm>(2, 3, rng);
  net.emplace<nn::Lstm>(3, 3, rng);
  net.emplace<nn::LastTimeStep>();
  net.emplace<nn::Linear>(3, 2, rng);
  const Tensor x = Tensor::randn({2, 2, 4}, rng);
  const Tensor projection = Tensor::randn({2, 2}, rng);
  testing::check_input_gradient(net, x, projection, 1e-2F, 3e-2F);
  testing::check_parameter_gradients(net, x, projection, 1e-2F, 3e-2F);
}

TEST(Lstm, FlopsScaleWithLength) {
  Rng rng(6);
  nn::Lstm lstm(3, 8, rng);
  EXPECT_EQ(lstm.flops({3, 10}), 2 * lstm.flops({3, 5}));
  EXPECT_GT(lstm.flops({3, 1}), 0);
}

}  // namespace
}  // namespace varade
