// Tests for varade::net: wire-protocol round-trips, the malformed-input
// sweep (every rejection path is a named error, never UB — this binary runs
// under ASan/UBSan in ci.sh --sanitize), and the loopback end-to-end parity
// suite pinning the serving determinism contract across the socket: scores
// and alarm events received by concurrent clients are bit-identical to a
// synchronous in-process ScoringEngine fed the same samples. Carries the
// `concurrency` label, so the daemon + multi-client suites also run under
// ThreadSanitizer (ci.sh --tsan).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <poll.h>
#include <string>
#include <thread>
#include <vector>

#include "varade/core/varade.hpp"
#include "varade/net/client.hpp"
#include "varade/net/shm.hpp"
#include "varade/net/server.hpp"
#include "varade/net/socket.hpp"
#include "varade/net/wire.hpp"
#include "varade/obs/telemetry.hpp"
#include "varade/serve/scoring_engine.hpp"

namespace varade::net {
namespace {

// ---------------------------------------------------------------------------
// Wire round-trips
// ---------------------------------------------------------------------------

/// Feeds `bytes` into a FrameReader either whole or one byte at a time and
/// returns every complete frame.
std::vector<Frame> reparse(const std::vector<std::uint8_t>& bytes, bool byte_at_a_time) {
  FrameReader reader;
  std::vector<Frame> frames;
  Frame frame;
  if (byte_at_a_time) {
    for (const std::uint8_t b : bytes) {
      reader.feed(&b, 1);
      while (reader.next(frame)) frames.push_back(frame);
    }
  } else {
    reader.feed(bytes.data(), bytes.size());
    while (reader.next(frame)) frames.push_back(frame);
  }
  EXPECT_EQ(reader.buffered(), 0U);
  return frames;
}

TEST(Wire, EveryFrameTypeRoundTrips) {
  std::vector<std::uint8_t> bytes;
  append_hello(bytes, serve::BackpressurePolicy::Reject);
  append_hello(bytes);  // daemon-default policy request
  append_welcome(bytes, {.n_streams = 16,
                         .n_channels = 3,
                         .threshold = 0.75F,
                         .policy = serve::BackpressurePolicy::DropOldest});
  const float values[3] = {0.25F, -1.5F, 3.0F};
  append_sample(bytes, 7, 42, values, 3);
  append_score(bytes, 7, 42, 0.125F);
  append_alarm(bytes, {.stream = 7,
                       .onset_sample = 40,
                       .last_sample = 44,
                       .peak_score = 2.5F,
                       .raised = true});
  append_nack(bytes, {.stream = 7,
                      .seq = 43,
                      .result = serve::PushResult::Rejected,
                      .reason = NackReason::StreamBusy});
  append_stats_request(bytes);
  append_stats_reply(bytes, {.pushed = 100,
                             .dropped = 5,
                             .rejected = 2,
                             .rounds = 50,
                             .naps = 3,
                             .scored = 95,
                             .round_p50_ns = 1500,
                             .round_p95_ns = 9000,
                             .round_p99_ns = 20000,
                             .push_to_score_p50_ns = 40000,
                             .push_to_score_p95_ns = 250000,
                             .push_to_score_p99_ns = 1000000,
                             .n_streams = 16,
                             .n_shards = 2,
                             .n_connections = 4});
  append_shutdown(bytes);
  append_goodbye(bytes);
  append_wire_error(bytes, "net: something went wrong");
  const float batch_values[6] = {1.0F, 2.0F, 3.0F, -4.0F, 5.5F, -6.25F};
  append_sample_batch(bytes, 9, 1000, batch_values, 2, 3);
  append_hello(bytes, serve::BackpressurePolicy::Block,
               kFeatureSampleBatch | kFeatureShm);  // feature-bearing HELLO
  append_welcome(bytes, {.n_streams = 4,
                         .n_channels = 3,
                         .threshold = 0.5F,
                         .policy = serve::BackpressurePolicy::Block,
                         .features = kFeatureSampleBatch});
  append_nack(bytes, {.stream = 9,
                      .seq = 1001,
                      .result = serve::PushResult::Rejected,
                      .reason = NackReason::MalformedSample});

  for (const bool byte_wise : {false, true}) {
    const std::vector<Frame> frames = reparse(bytes, byte_wise);
    ASSERT_EQ(frames.size(), 16U);

    const HelloData h0 = decode_hello(frames[0]);
    EXPECT_EQ(h0.policy, serve::BackpressurePolicy::Reject);
    EXPECT_EQ(h0.features, 0);  // a legacy 1-byte HELLO carries no features
    EXPECT_EQ(decode_hello(frames[1]).policy, std::nullopt);

    const Welcome w = decode_welcome(frames[2]);
    EXPECT_EQ(w.n_streams, 16);
    EXPECT_EQ(w.n_channels, 3);
    EXPECT_EQ(w.threshold, 0.75F);
    EXPECT_EQ(w.policy, serve::BackpressurePolicy::DropOldest);

    SampleData sample;
    decode_sample(frames[3], 3, sample);
    EXPECT_EQ(sample.stream, 7);
    EXPECT_EQ(sample.seq, 42U);
    ASSERT_EQ(sample.values.size(), 3U);
    EXPECT_EQ(std::memcmp(sample.values.data(), values, sizeof(values)), 0);

    const ScoreData score = decode_score(frames[4]);
    EXPECT_EQ(score.stream, 7);
    EXPECT_EQ(score.sample, 42U);
    EXPECT_EQ(score.score, 0.125F);

    const AlarmData alarm = decode_alarm(frames[5]);
    EXPECT_EQ(alarm.stream, 7);
    EXPECT_EQ(alarm.onset_sample, 40U);
    EXPECT_EQ(alarm.last_sample, 44U);
    EXPECT_EQ(alarm.peak_score, 2.5F);
    EXPECT_TRUE(alarm.raised);

    const NackData nack = decode_nack(frames[6]);
    EXPECT_EQ(nack.stream, 7);
    EXPECT_EQ(nack.seq, 43U);
    EXPECT_EQ(nack.result, serve::PushResult::Rejected);
    EXPECT_EQ(nack.reason, NackReason::StreamBusy);

    EXPECT_EQ(frames[7].type, FrameType::StatsRequest);

    const WireStats stats = decode_stats_reply(frames[8]);
    EXPECT_EQ(stats.pushed, 100U);
    EXPECT_EQ(stats.dropped, 5U);
    EXPECT_EQ(stats.rejected, 2U);
    EXPECT_EQ(stats.rounds, 50U);
    EXPECT_EQ(stats.naps, 3U);
    EXPECT_EQ(stats.scored, 95U);
    EXPECT_EQ(stats.round_p50_ns, 1500U);
    EXPECT_EQ(stats.round_p95_ns, 9000U);
    EXPECT_EQ(stats.round_p99_ns, 20000U);
    EXPECT_EQ(stats.push_to_score_p50_ns, 40000U);
    EXPECT_EQ(stats.push_to_score_p95_ns, 250000U);
    EXPECT_EQ(stats.push_to_score_p99_ns, 1000000U);
    EXPECT_EQ(stats.n_streams, 16);
    EXPECT_EQ(stats.n_shards, 2);
    EXPECT_EQ(stats.n_connections, 4);

    EXPECT_EQ(frames[9].type, FrameType::Shutdown);
    EXPECT_EQ(frames[10].type, FrameType::Goodbye);
    EXPECT_EQ(decode_wire_error(frames[11]), "net: something went wrong");

    SampleBatchData batch;
    decode_sample_batch(frames[12], 3, batch);
    EXPECT_EQ(batch.stream, 9);
    EXPECT_EQ(batch.base_seq, 1000U);
    EXPECT_EQ(batch.count, 2);
    EXPECT_EQ(batch.valid, 2);
    EXPECT_EQ(batch.bad_channel, -1);
    ASSERT_EQ(batch.values.size(), 6U);
    EXPECT_EQ(std::memcmp(batch.values.data(), batch_values, sizeof(batch_values)), 0);

    const HelloData h13 = decode_hello(frames[13]);
    EXPECT_EQ(h13.policy, serve::BackpressurePolicy::Block);
    EXPECT_EQ(h13.features, kFeatureSampleBatch | kFeatureShm);

    const Welcome w14 = decode_welcome(frames[14]);
    EXPECT_EQ(w14.n_streams, 4);
    EXPECT_EQ(w14.features, kFeatureSampleBatch);

    const NackData n15 = decode_nack(frames[15]);
    EXPECT_EQ(n15.seq, 1001U);
    EXPECT_EQ(n15.reason, NackReason::MalformedSample);
  }
}

TEST(Wire, ScoresTravelBitExactly) {
  // Denormals, negative zero, extremes: the payload is the IEEE-754 bit
  // pattern, so every value round-trips to the identical bits.
  const float cases[] = {0.0F, -0.0F, 1e-45F, std::numeric_limits<float>::max(),
                         -std::numeric_limits<float>::min(), 3.14159265F};
  for (const float v : cases) {
    std::vector<std::uint8_t> bytes;
    append_score(bytes, 0, 0, v);
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    Frame frame;
    ASSERT_TRUE(reader.next(frame));
    const ScoreData score = decode_score(frame);
    EXPECT_EQ(std::memcmp(&score.score, &v, sizeof(float)), 0);
  }
}

// ---------------------------------------------------------------------------
// Malformed-input sweep: every rejection is a named error
// ---------------------------------------------------------------------------

/// Expects feeding `bytes` to throw an Error whose message contains `what`.
void expect_feed_error(std::vector<std::uint8_t> bytes, const std::string& what) {
  FrameReader reader;
  try {
    reader.feed(bytes.data(), bytes.size());
    Frame frame;
    while (reader.next(frame)) {
    }
    FAIL() << "expected an Error containing \"" << what << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(WireMalformed, BadMagic) {
  std::vector<std::uint8_t> bytes;
  append_shutdown(bytes);
  bytes[0] = 0x00;
  expect_feed_error(bytes, "bad magic byte");
}

TEST(WireMalformed, BadVersion) {
  std::vector<std::uint8_t> bytes;
  append_shutdown(bytes);
  bytes[1] = 9;
  expect_feed_error(bytes, "unsupported wire version 9");
}

TEST(WireMalformed, UnknownFrameType) {
  std::vector<std::uint8_t> bytes;
  append_shutdown(bytes);
  bytes[2] = 200;
  expect_feed_error(bytes, "unknown frame type 200");
}

TEST(WireMalformed, NonzeroReservedByte) {
  std::vector<std::uint8_t> bytes;
  append_shutdown(bytes);
  bytes[3] = 1;
  expect_feed_error(bytes, "nonzero reserved header byte");
}

TEST(WireMalformed, OversizedLength) {
  // Header claims a payload beyond kMaxPayload: rejected from the header
  // alone, before any payload is buffered (or allocated).
  std::vector<std::uint8_t> bytes = {kMagic, kWireVersion,
                                     static_cast<std::uint8_t>(FrameType::Sample),
                                     0,      0xFF,         0xFF,
                                     0xFF,   0x7F};
  expect_feed_error(bytes, "oversized frame length");
}

TEST(WireMalformed, TruncatedFrameIsDetectableAtEof) {
  std::vector<std::uint8_t> bytes;
  const float values[3] = {1.0F, 2.0F, 3.0F};
  append_sample(bytes, 0, 0, values, 3);
  bytes.resize(bytes.size() - 5);  // peer dies mid-payload
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_GT(reader.buffered(), 0U);  // what a connection checks at EOF
}

TEST(WireMalformed, GoodFrameBeforeGarbageIsStillDelivered) {
  std::vector<std::uint8_t> bytes;
  append_goodbye(bytes);
  bytes.push_back(0x13);  // garbage follows a complete well-formed frame
  bytes.resize(bytes.size() + 7, 0);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());  // front header is fine: no throw
  Frame frame;
  ASSERT_TRUE(reader.next(frame));  // the good frame is delivered first...
  EXPECT_EQ(frame.type, FrameType::Goodbye);
  EXPECT_THROW(reader.next(frame), Error);  // ...then the garbage is named
  // The error poisons the reader permanently.
  EXPECT_THROW(reader.next(frame), Error);
  const std::uint8_t byte = 0;
  EXPECT_THROW(reader.feed(&byte, 1), Error);
}

TEST(WireMalformed, GarbageAfterAFrameFiresOnNextCallNotOnDelivery) {
  // Fed incrementally (frame first, garbage later), the good frame is
  // delivered before the following garbage header is even complete.
  std::vector<std::uint8_t> bytes;
  append_goodbye(bytes);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::Goodbye);
  const std::uint8_t garbage[kHeaderSize] = {0x13, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_THROW(reader.feed(garbage, sizeof(garbage)), Error);
}

TEST(WireMalformed, WrongPayloadSize) {
  std::vector<std::uint8_t> bytes;
  const float values[3] = {1.0F, 2.0F, 3.0F};
  append_sample(bytes, 0, 0, values, 3);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  SampleData sample;
  try {
    decode_sample(frame, 5, sample);  // server expects 5 channels
    FAIL() << "expected a payload-size Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("SAMPLE frame payload is"), std::string::npos);
  }
}

TEST(WireMalformed, NonFiniteSampleValueIsNamedByChannel) {
  std::vector<std::uint8_t> bytes;
  const float values[3] = {1.0F, std::numeric_limits<float>::quiet_NaN(), 3.0F};
  append_sample(bytes, 4, 9, values, 3);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  SampleData sample;
  try {
    decode_sample(frame, 3, sample);
    FAIL() << "expected a non-finite Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite value in SAMPLE frame (stream 4, channel 1)"),
              std::string::npos)
        << "actual message: " << e.what();
  }
  // Infinities are equally rejected.
  bytes.clear();
  const float inf_values[3] = {std::numeric_limits<float>::infinity(), 0.0F, 0.0F};
  append_sample(bytes, 0, 0, inf_values, 3);
  FrameReader fresh;
  fresh.feed(bytes.data(), bytes.size());
  ASSERT_TRUE(fresh.next(frame));
  EXPECT_THROW(decode_sample(frame, 3, sample), Error);
}

TEST(WireMalformed, BadEnumBytes) {
  std::vector<std::uint8_t> bytes;
  append_hello(bytes, serve::BackpressurePolicy::Block);
  bytes[kHeaderSize] = 7;  // policy byte
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_THROW(decode_hello(frame), Error);

  bytes.clear();
  append_nack(bytes, {});
  bytes[kHeaderSize + 12] = 9;  // PushResult byte
  FrameReader r2;
  r2.feed(bytes.data(), bytes.size());
  ASSERT_TRUE(r2.next(frame));
  EXPECT_THROW(decode_nack(frame), Error);

  bytes.clear();
  append_alarm(bytes, {});
  bytes[kHeaderSize + 24] = 2;  // raised byte
  FrameReader r3;
  r3.feed(bytes.data(), bytes.size());
  ASSERT_TRUE(r3.next(frame));
  EXPECT_THROW(decode_alarm(frame), Error);
}

TEST(WireMalformed, OversizedEncodeIsRejectedToo) {
  std::vector<std::uint8_t> out;
  std::vector<float> values(static_cast<std::size_t>(kMaxPayload) / 4 + 16, 0.0F);
  EXPECT_THROW(
      append_sample(out, 0, 0, values.data(), static_cast<Index>(values.size())), Error);
}

// ---------------------------------------------------------------------------
// SAMPLE_BATCH: graceful truncation + the structural rejection sweep
// ---------------------------------------------------------------------------

TEST(Wire, SampleBatchTruncatesAtFirstNonFiniteValue) {
  // Unlike SAMPLE (where a non-finite value throws), SAMPLE_BATCH degrades
  // gracefully: the valid prefix is delivered with the offending row and
  // channel named, so the server can NACK just the tail and keep the
  // connection (and every sample before the bad one) alive.
  float values[12];  // 4 samples x 3 channels
  for (int i = 0; i < 12; ++i) values[i] = static_cast<float>(i) * 0.5F;
  values[7] = std::numeric_limits<float>::quiet_NaN();  // sample 2, channel 1
  std::vector<std::uint8_t> bytes;
  append_sample_batch(bytes, 3, 50, values, 4, 3);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  SampleBatchData batch;
  decode_sample_batch(frame, 3, batch);
  EXPECT_EQ(batch.stream, 3);
  EXPECT_EQ(batch.base_seq, 50U);
  EXPECT_EQ(batch.count, 4);
  EXPECT_EQ(batch.valid, 2);
  EXPECT_EQ(batch.bad_channel, 1);
  ASSERT_EQ(batch.values.size(), 6U);  // only the valid prefix survives
  EXPECT_EQ(std::memcmp(batch.values.data(), values, 6 * sizeof(float)), 0);

  // A bad value in the very first sample leaves nothing valid.
  values[1] = std::numeric_limits<float>::infinity();
  bytes.clear();
  append_sample_batch(bytes, 3, 50, values, 4, 3);
  FrameReader r2;
  r2.feed(bytes.data(), bytes.size());
  ASSERT_TRUE(r2.next(frame));
  decode_sample_batch(frame, 3, batch);
  EXPECT_EQ(batch.valid, 0);
  EXPECT_EQ(batch.bad_channel, 1);
  EXPECT_TRUE(batch.values.empty());
}

/// Decodes `bytes` (one frame) as SAMPLE_BATCH, expecting an Error naming
/// `what`. Void so gtest ASSERTs can early-return.
void expect_batch_error(const std::vector<std::uint8_t>& bytes, Index n_channels,
                        const std::string& what) {
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  SampleBatchData batch;
  try {
    decode_sample_batch(frame, n_channels, batch);
    FAIL() << "expected an Error containing \"" << what << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(WireMalformed, SampleBatchStructuralSweep) {
  // Payload shorter than the 16-byte batch header.
  {
    const std::uint8_t short_payload[10] = {};
    std::vector<std::uint8_t> bytes;
    append_frame(bytes, FrameType::SampleBatch, short_payload, sizeof(short_payload));
    expect_batch_error(bytes, 3, "shorter than the 16-byte batch header");
  }
  // count = 0: a batch must carry at least one sample.
  {
    std::uint8_t payload[16] = {};  // stream 0, base_seq 0, count 0
    std::vector<std::uint8_t> bytes;
    append_frame(bytes, FrameType::SampleBatch, payload, sizeof(payload));
    expect_batch_error(bytes, 3, "carries zero samples");
  }
  // count above the cap is rejected from the header alone, before the size
  // arithmetic could overflow or a giant values vector could be reserved.
  {
    std::uint8_t payload[16] = {};
    const std::uint32_t count = kMaxBatchSamples + 1;
    payload[12] = static_cast<std::uint8_t>(count);
    payload[13] = static_cast<std::uint8_t>(count >> 8);
    payload[14] = static_cast<std::uint8_t>(count >> 16);
    payload[15] = static_cast<std::uint8_t>(count >> 24);
    std::vector<std::uint8_t> bytes;
    append_frame(bytes, FrameType::SampleBatch, payload, sizeof(payload));
    expect_batch_error(bytes, 3, "exceeds the 4096-sample cap");
  }
  // Payload size disagreeing with count x n_channels (here: a valid 3-channel
  // frame decoded by a 5-channel server).
  {
    const float values[6] = {1.0F, 2.0F, 3.0F, 4.0F, 5.0F, 6.0F};
    std::vector<std::uint8_t> bytes;
    append_sample_batch(bytes, 0, 0, values, 2, 3);
    expect_batch_error(bytes, 5, "SAMPLE_BATCH frame payload is");
  }
  // Encode-side: the count range and the payload cap hold there too.
  {
    std::vector<std::uint8_t> out;
    const float v = 0.0F;
    EXPECT_THROW(append_sample_batch(out, 0, 0, &v, 0, 1), Error);
    std::vector<float> huge(static_cast<std::size_t>(kMaxBatchSamples) * 80, 0.0F);
    EXPECT_THROW(append_sample_batch(out, 0, 0, huge.data(),
                                     static_cast<Index>(kMaxBatchSamples) + 1, 80),
                 Error);
    // In-range count whose payload still exceeds kMaxPayload: 4096 x 80
    // channels is ~1.3 MiB.
    EXPECT_THROW(append_sample_batch(out, 0, 0, huge.data(),
                                     static_cast<Index>(kMaxBatchSamples), 80),
                 Error);
  }
}

TEST(WireMalformed, SampleBatchFuzzedPayloadsNeverMisbehave) {
  // Deterministic fuzz over the decoder: random payload bytes at random
  // lengths (biased around the 16-byte header boundary) must either decode
  // with coherent invariants or throw a named varade::Error — never UB.
  // This binary runs under ASan/UBSan in ci.sh --sanitize, which is what
  // turns "never UB" into an enforced claim.
  Rng rng(7);
  SampleBatchData batch;
  for (int iter = 0; iter < 3000; ++iter) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::uint8_t> payload(len);
    for (std::uint8_t& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (!payload.empty() && rng.uniform_int(0, 1) == 0) {
      // Half the runs carry a small plausible count so the size-mismatch and
      // truncation paths get real coverage (pure noise almost always dies at
      // the count check).
      const std::uint32_t count = static_cast<std::uint32_t>(rng.uniform_int(0, 6));
      if (payload.size() >= 16) {
        payload[12] = static_cast<std::uint8_t>(count);
        payload[13] = payload[14] = payload[15] = 0;
      }
    }
    std::vector<std::uint8_t> bytes;
    append_frame(bytes, FrameType::SampleBatch, payload.data(), payload.size());
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    Frame frame;
    ASSERT_TRUE(reader.next(frame));
    try {
      decode_sample_batch(frame, 3, batch);
      ASSERT_GE(batch.count, 1);
      ASSERT_LE(batch.count, static_cast<Index>(kMaxBatchSamples));
      ASSERT_GE(batch.valid, 0);
      ASSERT_LE(batch.valid, batch.count);
      ASSERT_EQ(batch.values.size(), static_cast<std::size_t>(batch.valid) * 3);
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("net:"), std::string::npos)
          << "unnamed error: " << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Shared-memory segment validation + the SPSC ring under threads
// ---------------------------------------------------------------------------

TEST(ShmSegment, ValidationNamesEveryDefect) {
  const std::size_t ring = kShmMinRingBytes;
  std::vector<std::uint8_t> seg(shm_segment_size(ring));
  shm_init_segment(seg.data(), ring);
  EXPECT_EQ(shm_validate_segment(seg.data(), seg.size()), ring);

  // Each case plants one defect in an otherwise-valid header and expects the
  // validator to name it (attach() runs this before trusting a single byte
  // of a peer-provided mapping).
  const auto expect_invalid = [&](const ShmSegmentHeader& header, std::size_t mapped_bytes,
                                  const std::string& what) {
    std::vector<std::uint8_t> bad(std::max(mapped_bytes, sizeof(ShmSegmentHeader)), 0);
    std::memcpy(bad.data(), &header, sizeof(header));
    try {
      shm_validate_segment(bad.data(), mapped_bytes);
      FAIL() << "expected an Error containing \"" << what << "\"";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << "actual message: " << e.what();
    }
  };

  ShmSegmentHeader good;
  good.ring_bytes = static_cast<std::uint32_t>(ring);

  expect_invalid(good, sizeof(ShmSegmentHeader) - 1, "smaller than its own header");
  {
    ShmSegmentHeader h = good;
    h.magic ^= 0xFF;
    expect_invalid(h, shm_segment_size(ring), "bad magic");
  }
  {
    ShmSegmentHeader h = good;
    h.version = 9;
    expect_invalid(h, shm_segment_size(ring), "version 9");
  }
  {
    ShmSegmentHeader h = good;
    h.ring_bytes = 12288;  // within bounds but not a power of two
    expect_invalid(h, shm_segment_size(12288), "not a power of two");
  }
  {
    ShmSegmentHeader h = good;
    h.ring_bytes = 1024;  // a power of two below the minimum
    expect_invalid(h, shm_segment_size(ring), "outside");
  }
  {
    ShmSegmentHeader h = good;
    // The claimed layout needs more bytes than the mapping has: a truncated
    // (or lying) segment must die here, not at the first ring access.
    expect_invalid(h, shm_segment_size(ring) - 1, "its header claims");
  }

  // And pure garbage headers: 64 random bytes must always be rejected with a
  // named error (never validated, never UB).
  Rng rng(21);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> bad(sizeof(ShmSegmentHeader));
    for (std::uint8_t& b : bad) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      shm_validate_segment(bad.data(), bad.size());
      // Validation can only succeed if the random bytes spelled the magic,
      // the version, and a plausible ring size — astronomically unlikely.
      FAIL() << "garbage header validated";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("net: shm"), std::string::npos)
          << "actual message: " << e.what();
    }
  }
}

TEST(ShmRing, SpscByteStreamAcrossThreadsWithDoorbells) {
  // An in-process producer/consumer pair over a real segment. This is the
  // test ThreadSanitizer actually sees: the cross-process benches map the
  // same physical pages at different addresses in different processes, which
  // is invisible to TSan, so the acquire/release pairs and the Dekker
  // doorbell fence are pinned here, in one address space. The smallest legal
  // ring forces thousands of wrap-arounds and full-ring stalls.
  ShmSession session = ShmSession::create(kShmMinRingBytes);
  ASSERT_TRUE(session.valid());
  constexpr std::size_t kTotal = 1 << 20;

  std::thread producer([&] {
    Rng rng(11);
    std::vector<std::uint8_t> chunk;
    std::size_t sent = 0;
    std::uint8_t next = 0;
    while (sent < kTotal) {
      const auto want = std::min<std::size_t>(
          kTotal - sent, static_cast<std::size_t>(rng.uniform_int(1, 9000)));
      chunk.resize(want);
      for (std::uint8_t& b : chunk) b = next++;
      std::size_t off = 0;
      while (off < want) {
        bool bell = false;
        const std::size_t n = session.c2s().write_some(chunk.data() + off, want - off, bell);
        if (bell) ShmSession::ring_doorbell(session.c2s_doorbell());
        if (n == 0) {
          std::this_thread::yield();  // full ring: the consumer is behind
          continue;
        }
        off += n;
      }
      sent += want;
    }
  });

  std::size_t received = 0;
  std::uint8_t expected = 0;
  long mismatches = 0;
  std::uint8_t buf[4096];
  while (received < kTotal) {
    const std::size_t n = session.c2s().read_some(buf, sizeof(buf));
    if (n == 0) {
      if (session.c2s().arm_waiting()) {
        // Really empty: the next write is guaranteed to ring. The finite
        // timeout is a belt against a protocol bug turning into a hang —
        // correctness is still pinned by the byte-stream checksum below.
        pollfd pfd{session.c2s_doorbell(), POLLIN, 0};
        (void)::poll(&pfd, 1, 100);
        ShmSession::drain_doorbell(session.c2s_doorbell());
      }
      session.c2s().disarm_waiting();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i)
      if (buf[i] != expected++) ++mismatches;
    received += n;
  }
  producer.join();
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(received, kTotal);
  EXPECT_EQ(session.c2s().readable(), 0U);
}

// ---------------------------------------------------------------------------
// Endpoint specs
// ---------------------------------------------------------------------------

TEST(Endpoint, ParsesAllSpecForms) {
  const Endpoint uds = parse_endpoint("unix:/tmp/x.sock");
  EXPECT_EQ(uds.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(uds.path, "/tmp/x.sock");
  EXPECT_EQ(to_string(uds), "unix:/tmp/x.sock");

  const Endpoint tcp = parse_endpoint("tcp:127.0.0.1:7733");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7733);
  EXPECT_EQ(to_string(tcp), "tcp:127.0.0.1:7733");

  const Endpoint bare = parse_endpoint("localhost:80");
  EXPECT_EQ(bare.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(bare.host, "localhost");
  EXPECT_EQ(bare.port, 80);

  const Endpoint shm = parse_endpoint("shm:/tmp/x-shm.sock");
  EXPECT_EQ(shm.kind, Endpoint::Kind::Shm);
  EXPECT_EQ(shm.path, "/tmp/x-shm.sock");
  EXPECT_EQ(to_string(shm), "shm:/tmp/x-shm.sock");

  EXPECT_THROW(parse_endpoint("shm:"), Error);
  EXPECT_THROW(parse_endpoint("unix:"), Error);
  EXPECT_THROW(parse_endpoint("justahost"), Error);
  EXPECT_THROW(parse_endpoint("host:notaport"), Error);
  EXPECT_THROW(parse_endpoint("host:99999"), Error);
  EXPECT_THROW(parse_endpoint(":80"), Error);
}

// ---------------------------------------------------------------------------
// Loopback end-to-end: daemon-scored == synchronous ScoringEngine
// ---------------------------------------------------------------------------

data::MultivariateSeries make_sine(Index length, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(3);
  std::vector<float> row(3);
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = (t % 120) >= 90 && (t % 120) < 100;
    for (Index c = 0; c < 3; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, anomalous ? 0.9F : 0.03F);
    }
    s.append(row);
  }
  return s;
}

/// One tiny fitted VARADE shared by every e2e test (fitting dominates; the
/// server only reads the model). Small enough to stay fast under TSan.
struct NetRig {
  data::MultivariateSeries train_raw = make_sine(400, 1);
  data::MinMaxNormalizer normalizer;
  data::MultivariateSeries train;
  core::VaradeDetector detector;
  float threshold = 0.0F;

  NetRig()
      : detector({.window = 16,
                  .base_channels = 4,
                  .epochs = 1,
                  .learning_rate = 1e-3F,
                  .train_stride = 4}) {
    normalizer.fit(train_raw);
    train = normalizer.transform(train_raw);
    detector.fit(train);
    threshold = core::calibrate_threshold(detector, train, {});
  }
};

NetRig& rig() {
  static NetRig* r = new NetRig();
  return *r;
}

/// What one client observed for the streams it owns.
struct ClientView {
  std::map<Index, std::vector<float>> scores;  // by stream, in arrival order
  std::map<Index, std::vector<core::AnomalyEvent>> events;  // reconstructed
  long nacks = 0;
};

/// Drives one client: pushes `n_samples` of each owned stream's series, then
/// polls until every owned stream has all its scores. ALARM frames
/// reconstruct the exact event list (raised appends, extension overwrites).
/// Void with an out-param so gtest ASSERTs can early-return.
///
/// With batch == 1 the sends interleave streams sample by sample (the
/// maximally adversarial ordering for the daemon's routing); with batch > 1
/// they run stream-major so the auto-coalescer actually forms SAMPLE_BATCH
/// runs — per-stream order, the only thing parity depends on, is identical
/// either way.
void run_client(const Endpoint& endpoint, const std::vector<Index>& streams,
                const std::vector<data::MultivariateSeries>& series, Index n_samples,
                ClientView& view, Index batch = 1) {
  Client client(endpoint, {.batch = batch});
  EXPECT_EQ(client.shm_active(), endpoint.kind == Endpoint::Kind::Shm);
  if (batch <= 1) {
    for (Index t = 0; t < n_samples; ++t)
      for (const Index s : streams)
        client.send_sample(s, static_cast<std::uint64_t>(t),
                           series[static_cast<std::size_t>(s)].sample(t));
  } else {
    for (const Index s : streams)
      for (Index t = 0; t < n_samples; ++t)
        client.send_sample(s, static_cast<std::uint64_t>(t),
                           series[static_cast<std::size_t>(s)].sample(t));
  }
  client.flush();
  const auto want = static_cast<std::size_t>(n_samples);
  ClientEvent ev;
  auto done = [&] {
    if (view.scores.size() != streams.size()) return false;
    for (const auto& [s, scores] : view.scores)
      if (scores.size() < want) return false;
    return true;
  };
  while (!done()) {
    if (!client.poll_event(ev, 30000)) break;  // generous under TSan
    switch (ev.kind) {
      case ClientEvent::Kind::Score:
        view.scores[ev.score.stream].push_back(ev.score.score);
        break;
      case ClientEvent::Kind::Alarm: {
        auto& events = view.events[ev.alarm.stream];
        core::AnomalyEvent e;
        e.onset_sample = static_cast<Index>(ev.alarm.onset_sample);
        e.last_sample = static_cast<Index>(ev.alarm.last_sample);
        e.peak_score = ev.alarm.peak_score;
        if (ev.alarm.raised) {
          events.push_back(e);
        } else {
          ASSERT_FALSE(events.empty()) << "extension ALARM before any raised ALARM";
          events.back() = e;
        }
        break;
      }
      case ClientEvent::Kind::Nack:
        ++view.nacks;
        break;
      default:
        break;
    }
  }
  client.send_goodbye();
}

/// The parity pin: 4 concurrent clients x 16 streams against one daemon,
/// compared bit-for-bit to a synchronous ScoringEngine fed the same samples.
void expect_loopback_parity(const Endpoint& endpoint, Server& server, Index n_streams,
                            Index n_samples, Index batch = 1) {
  NetRig& r = rig();
  std::vector<data::MultivariateSeries> series;
  for (Index s = 0; s < n_streams; ++s)
    series.push_back(make_sine(n_samples, 100 + static_cast<std::uint64_t>(s)));

  std::thread server_thread([&server] { server.run(); });

  constexpr int kClients = 4;
  std::vector<ClientView> views(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<Index> mine;
        for (Index s = c; s < n_streams; s += kClients) mine.push_back(s);
        run_client(endpoint, mine, series, n_samples, views[static_cast<std::size_t>(c)],
                   batch);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.request_stop();
  server_thread.join();

  // Synchronous baseline: one ScoringEngine, same streams, same samples.
  serve::ScoringEngine engine(r.detector, r.normalizer, {});
  engine.add_streams(n_streams);
  engine.set_threshold(r.threshold);
  std::map<Index, std::vector<float>> expected;
  for (Index t = 0; t < n_samples; ++t) {
    for (Index s = 0; s < n_streams; ++s)
      engine.push(s, series[static_cast<std::size_t>(s)].sample(t), 3);
    for (const serve::StreamScore& score : engine.step())
      expected[score.stream].push_back(score.score);
  }

  long scores_checked = 0;
  for (const ClientView& view : views) {
    EXPECT_EQ(view.nacks, 0);
    for (const auto& [stream, scores] : view.scores) {
      const std::vector<float>& want = expected[stream];
      ASSERT_EQ(scores.size(), want.size()) << "stream " << stream;
      EXPECT_EQ(std::memcmp(scores.data(), want.data(), scores.size() * sizeof(float)), 0)
          << "stream " << stream << " scores drifted across the socket";
      scores_checked += static_cast<long>(scores.size());
    }
    for (const auto& [stream, events] : view.events) {
      const std::vector<core::AnomalyEvent>& want = engine.events(stream);
      ASSERT_EQ(events.size(), want.size()) << "stream " << stream;
      for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].onset_sample, want[i].onset_sample);
        EXPECT_EQ(events[i].last_sample, want[i].last_sample);
        EXPECT_EQ(std::memcmp(&events[i].peak_score, &want[i].peak_score, sizeof(float)), 0);
      }
    }
  }
  EXPECT_EQ(scores_checked, static_cast<long>(n_streams) * n_samples);
  // Every client saw every ALARM its streams raised.
  std::size_t events_seen = 0;
  for (const ClientView& view : views)
    for (const auto& [stream, events] : view.events) events_seen += events.size();
  std::size_t events_expected = 0;
  for (Index s = 0; s < n_streams; ++s) events_expected += engine.events(s).size();
  EXPECT_EQ(events_seen, events_expected);
  EXPECT_GT(events_expected, 0U) << "workload never alarmed; the event parity was vacuous";
}

TEST(NetE2E, LoopbackUnixParityFourClientsSixteenStreams) {
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_e2e_uds.sock";
  config.n_streams = 16;
  config.threshold = rig().threshold;
  Server server(rig().detector, rig().normalizer, config);
  expect_loopback_parity(Endpoint{.kind = Endpoint::Kind::Unix, .path = config.uds_path},
                         server, 16, 150);
}

TEST(NetE2E, LoopbackTcpParitySharded) {
  net::ServerConfig config;
  config.tcp_port = 0;  // ephemeral
  config.n_streams = 16;
  config.threshold = rig().threshold;
  config.runtime.n_shards = 2;  // parity must hold across the shard map too
  Server server(rig().detector, rig().normalizer, config);
  expect_loopback_parity(
      Endpoint{.kind = Endpoint::Kind::Tcp, .host = "127.0.0.1", .port = server.tcp_port()},
      server, 16, 150);
}

TEST(NetE2E, LoopbackParityAcrossTransportsAndBatchSizes) {
  // The tentpole pin: every transport x batch-size combination scores
  // bit-identically to the synchronous engine. Batching changes framing
  // only; the shm rings change the transport only — neither may perturb a
  // single score bit. The shm runs use a deliberately small ring so the
  // frames wrap and backpressure-stall thousands of times within the test.
  for (const Index batch : {1, 7, 64}) {
    {
      net::ServerConfig config;
      config.uds_path = "/tmp/varade_test_parity_uds_b" + std::to_string(batch) + ".sock";
      config.n_streams = 16;
      config.threshold = rig().threshold;
      Server server(rig().detector, rig().normalizer, config);
      expect_loopback_parity(Endpoint{.kind = Endpoint::Kind::Unix, .path = config.uds_path},
                             server, 16, 150, batch);
    }
    {
      net::ServerConfig config;
      config.tcp_port = 0;
      config.n_streams = 16;
      config.threshold = rig().threshold;
      Server server(rig().detector, rig().normalizer, config);
      expect_loopback_parity(
          Endpoint{.kind = Endpoint::Kind::Tcp, .host = "127.0.0.1", .port = server.tcp_port()},
          server, 16, 150, batch);
    }
    {
      net::ServerConfig config;
      config.shm_path = "/tmp/varade_test_parity_shm_b" + std::to_string(batch) + ".sock";
      config.shm_ring_bytes = 1 << 14;  // 16 KiB: force wraps + full-ring stalls
      config.n_streams = 16;
      config.threshold = rig().threshold;
      Server server(rig().detector, rig().normalizer, config);
      expect_loopback_parity(Endpoint{.kind = Endpoint::Kind::Shm, .path = config.shm_path},
                             server, 16, 150, batch);
    }
  }
}

TEST(NetE2E, MalformedSampleInBatchDropsOnlyTheTail) {
  // A non-finite value inside a SAMPLE_BATCH must not kill the connection
  // (unlike in a SAMPLE frame, where it is a protocol error): the valid
  // prefix scores normally, the tail is dropped, and one NACK names the
  // offending in-batch sample via its absolute sequence number.
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_batch_nack.sock";
  config.n_streams = 1;
  config.threshold = rig().threshold;
  Server server(rig().detector, rig().normalizer, config);
  std::thread server_thread([&server] { server.run(); });
  {
    Client client(parse_endpoint("unix:" + config.uds_path));
    float block[5 * 3];
    for (float& v : block) v = 0.5F;
    block[2 * 3 + 1] = std::numeric_limits<float>::quiet_NaN();  // sample 2, channel 1
    client.push_batch(0, 0, block, 5);
    client.flush();

    Index scores = 0;
    bool nacked = false;
    NackData nack;
    ClientEvent ev;
    while ((scores < 2 || !nacked) && client.poll_event(ev, 30000)) {
      if (ev.kind == ClientEvent::Kind::Score) ++scores;
      if (ev.kind == ClientEvent::Kind::Nack) {
        nacked = true;
        nack = ev.nack;
      }
    }
    ASSERT_TRUE(nacked);
    EXPECT_EQ(nack.stream, 0);
    EXPECT_EQ(nack.seq, 2U);  // base_seq + valid: the first sample NOT taken
    EXPECT_EQ(nack.result, serve::PushResult::Rejected);
    EXPECT_EQ(nack.reason, NackReason::MalformedSample);
    EXPECT_EQ(scores, 2);  // the valid prefix was scored

    // The connection survives: the client resumes at the NACKed sequence.
    const float good[3] = {0.5F, 0.5F, 0.5F};
    client.send_sample(0, 2, good);
    client.flush();
    ASSERT_TRUE(client.poll_event(ev, 30000));
    EXPECT_EQ(ev.kind, ClientEvent::Kind::Score);
    client.send_goodbye();
  }
  server.request_stop();
  server_thread.join();
  EXPECT_EQ(server.protocol_errors(), 0);  // a malformed *sample* is not a protocol error
  EXPECT_EQ(server.frames_nacked(), 1);
}

TEST(NetE2E, WelcomeAnnouncesSessionConfig) {
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_welcome.sock";
  config.n_streams = 5;
  config.threshold = rig().threshold;
  config.runtime.backpressure = serve::BackpressurePolicy::DropOldest;
  Server server(rig().detector, rig().normalizer, config);
  std::thread server_thread([&server] { server.run(); });
  {
    // Defaulted policy resolves to the daemon's.
    Client defaulted(parse_endpoint("unix:" + config.uds_path));
    EXPECT_EQ(defaulted.n_streams(), 5);
    EXPECT_EQ(defaulted.n_channels(), 3);
    EXPECT_EQ(std::memcmp(&defaulted.welcome().threshold, &rig().threshold, sizeof(float)), 0);
    EXPECT_EQ(defaulted.welcome().policy, serve::BackpressurePolicy::DropOldest);
    // An explicit request overrides it.
    Client rejecting(parse_endpoint("unix:" + config.uds_path),
                     {.policy = serve::BackpressurePolicy::Reject});
    EXPECT_EQ(rejecting.welcome().policy, serve::BackpressurePolicy::Reject);
  }
  server.request_stop();
  server_thread.join();
}

TEST(NetE2E, SecondConnectionPushingAnOwnedStreamIsNackedStreamBusy) {
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_busy.sock";
  config.n_streams = 2;
  config.threshold = rig().threshold;
  Server server(rig().detector, rig().normalizer, config);
  std::thread server_thread([&server] { server.run(); });
  const Endpoint endpoint = parse_endpoint("unix:" + config.uds_path);
  {
    Client owner(endpoint);
    const float sample[3] = {0.1F, 0.2F, 0.3F};
    owner.send_sample(0, 0, sample);
    owner.flush();
    // Its score proves the daemon registered ownership of stream 0.
    ClientEvent ev;
    ASSERT_TRUE(owner.poll_event(ev, 30000));
    ASSERT_EQ(ev.kind, ClientEvent::Kind::Score);
    EXPECT_EQ(ev.score.stream, 0);

    Client intruder(endpoint);
    intruder.send_sample(0, 77, sample);
    intruder.flush();
    ASSERT_TRUE(intruder.poll_event(ev, 30000));
    ASSERT_EQ(ev.kind, ClientEvent::Kind::Nack);
    EXPECT_EQ(ev.nack.stream, 0);
    EXPECT_EQ(ev.nack.seq, 77U);
    EXPECT_EQ(ev.nack.result, serve::PushResult::Rejected);
    EXPECT_EQ(ev.nack.reason, NackReason::StreamBusy);
    // The intruder is free to claim the unowned stream.
    intruder.send_sample(1, 0, sample);
    intruder.flush();
    ASSERT_TRUE(intruder.poll_event(ev, 30000));
    EXPECT_EQ(ev.kind, ClientEvent::Kind::Score);
    EXPECT_EQ(ev.score.stream, 1);
  }
  server.request_stop();
  server_thread.join();
  EXPECT_EQ(server.frames_nacked(), 1);
}

TEST(NetE2E, StatsProbeCountsPushes) {
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_stats.sock";
  config.n_streams = 3;
  config.threshold = rig().threshold;
  Server server(rig().detector, rig().normalizer, config);
  std::thread server_thread([&server] { server.run(); });
  {
    Client client(parse_endpoint("unix:" + config.uds_path));
    const float sample[3] = {0.5F, 0.5F, 0.5F};
    for (int t = 0; t < 10; ++t)
      client.send_sample(0, static_cast<std::uint64_t>(t), sample);
    client.flush();
    client.request_stats();
    ClientEvent ev;
    WireStats stats{};
    bool got_stats = false;
    while (client.poll_event(ev, 30000)) {
      if (ev.kind == ClientEvent::Kind::Stats) {
        stats = ev.stats;
        got_stats = true;
        break;
      }
    }
    ASSERT_TRUE(got_stats);
    EXPECT_EQ(stats.pushed, 10U);
    EXPECT_EQ(stats.dropped, 0U);
    EXPECT_EQ(stats.rejected, 0U);
    EXPECT_EQ(stats.n_streams, 3);
    EXPECT_EQ(stats.n_shards, 1);
    EXPECT_EQ(stats.n_connections, 1);
  }
  server.request_stop();
  server_thread.join();
}

TEST(NetE2E, ShutdownFrameDrainsAndSaysGoodbye) {
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_shutdown.sock";
  config.n_streams = 1;
  config.threshold = rig().threshold;
  Server server(rig().detector, rig().normalizer, config);
  std::thread server_thread([&server] { server.run(); });
  {
    Client client(parse_endpoint("unix:" + config.uds_path));
    const float sample[3] = {0.5F, 0.5F, 0.5F};
    const Index n = 20;
    for (Index t = 0; t < n; ++t)
      client.send_sample(0, static_cast<std::uint64_t>(t), sample);
    client.request_shutdown();
    // Every accepted sample is scored before the GOODBYE: the drain
    // guarantee crosses the socket.
    Index scores = 0;
    bool goodbye = false;
    ClientEvent ev;
    while (client.poll_event(ev, 30000)) {
      if (ev.kind == ClientEvent::Kind::Score) ++scores;
      if (ev.kind == ClientEvent::Kind::Goodbye) {
        goodbye = true;
        break;
      }
    }
    EXPECT_EQ(scores, n);
    EXPECT_TRUE(goodbye);
    EXPECT_TRUE(client.closed());
  }
  server_thread.join();  // run() returned because of the SHUTDOWN frame
}

TEST(NetE2E, ProtocolViolationsGetNamedWireErrors) {
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_violation.sock";
  config.n_streams = 2;
  config.threshold = rig().threshold;
  Server server(rig().detector, rig().normalizer, config);
  std::thread server_thread([&server] { server.run(); });
  const Endpoint endpoint = parse_endpoint("unix:" + config.uds_path);

  auto expect_wire_error = [&](const std::vector<std::uint8_t>& bytes,
                               const std::string& what) {
    Socket sock = connect_endpoint(endpoint);
    send_all(sock.fd(), bytes.data(), bytes.size());
    FrameReader reader;
    std::uint8_t buf[4096];
    std::string message;
    for (;;) {
      ASSERT_TRUE(wait_readable(sock.fd(), 30000)) << "no WIRE_ERROR for: " << what;
      const long n = read_some(sock.fd(), buf, sizeof(buf));
      ASSERT_NE(n, 0) << "daemon closed without a WIRE_ERROR for: " << what;
      if (n < 0) continue;
      reader.feed(buf, static_cast<std::size_t>(n));
      Frame frame;
      bool got = false;
      while (reader.next(frame)) {
        if (frame.type == FrameType::WireError) {
          message = decode_wire_error(frame);
          got = true;
          break;
        }
        // A WELCOME (for the cases that HELLO first) precedes the error.
        ASSERT_EQ(frame.type, FrameType::Welcome);
      }
      if (got) break;
    }
    EXPECT_NE(message.find(what), std::string::npos) << "actual message: " << message;
  };

  {
    // A SAMPLE before HELLO.
    std::vector<std::uint8_t> bytes;
    const float sample[3] = {0.0F, 0.0F, 0.0F};
    append_sample(bytes, 0, 0, sample, 3);
    expect_wire_error(bytes, "expected HELLO as the first frame, got SAMPLE");
  }
  {
    // An out-of-range stream id, in the serving layer's canonical wording.
    std::vector<std::uint8_t> bytes;
    append_hello(bytes);
    const float sample[3] = {0.0F, 0.0F, 0.0F};
    append_sample(bytes, 99, 0, sample, 3);
    expect_wire_error(bytes, "stream id 99 out of range [0, 2)");
  }
  {
    // A NaN sample value.
    std::vector<std::uint8_t> bytes;
    append_hello(bytes);
    const float sample[3] = {0.0F, std::numeric_limits<float>::quiet_NaN(), 0.0F};
    append_sample(bytes, 0, 0, sample, 3);
    expect_wire_error(bytes, "non-finite value in SAMPLE frame (stream 0, channel 1)");
  }
  {
    // A wrong channel count.
    std::vector<std::uint8_t> bytes;
    append_hello(bytes);
    const float sample[5] = {0.0F, 0.0F, 0.0F, 0.0F, 0.0F};
    append_sample(bytes, 0, 0, sample, 5);
    expect_wire_error(bytes, "SAMPLE frame payload is");
  }
  {
    // A server-only frame from a client.
    std::vector<std::uint8_t> bytes;
    append_hello(bytes);
    append_score(bytes, 0, 0, 1.0F);
    expect_wire_error(bytes, "unexpected SCORE frame from client");
  }
  {
    // Garbage bytes (bad magic).
    std::vector<std::uint8_t> bytes;
    append_hello(bytes);
    bytes.push_back(0x13);
    bytes.resize(bytes.size() + 7, 0);
    expect_wire_error(bytes, "bad magic byte");
  }

  server.request_stop();
  server_thread.join();
  EXPECT_EQ(server.protocol_errors(), 6);
}

// ---------------------------------------------------------------------------
// Metrics endpoint
// ---------------------------------------------------------------------------

/// One minimal HTTP/1.0 exchange against the metrics listener: send
/// `request`, read to EOF, return the whole response.
std::string http_exchange(int port, const std::string& request) {
  Socket sock =
      connect_endpoint(Endpoint{.kind = Endpoint::Kind::Tcp, .host = "127.0.0.1", .port = port});
  send_all(sock.fd(), reinterpret_cast<const std::uint8_t*>(request.data()), request.size());
  std::string response;
  std::uint8_t buf[4096];
  for (;;) {
    if (!wait_readable(sock.fd(), 30000)) break;
    const long n = read_some(sock.fd(), buf, sizeof(buf));
    if (n == 0) break;  // server closes after one response
    if (n < 0) continue;
    response.append(reinterpret_cast<const char*>(buf), static_cast<std::size_t>(n));
  }
  return response;
}

TEST(NetE2E, MetricsEndpointServesPrometheusText) {
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_metrics.sock";
  config.n_streams = 2;
  config.threshold = rig().threshold;
  config.metrics_port = 0;  // ephemeral, resolved at construction
  Server server(rig().detector, rig().normalizer, config);
  ASSERT_GT(server.metrics_port(), 0);
  std::thread server_thread([&server] { server.run(); });
  {
    // Put real traffic through first, so the series carry live values.
    Client client(parse_endpoint("unix:" + config.uds_path));
    const float sample[3] = {0.5F, 0.5F, 0.5F};
    for (int t = 0; t < 10; ++t)
      client.send_sample(0, static_cast<std::uint64_t>(t), sample);
    client.flush();
    ClientEvent ev;
    for (int got = 0; got < 10;) {
      ASSERT_TRUE(client.poll_event(ev, 30000));
      if (ev.kind == ClientEvent::Kind::Score) ++got;
    }

    const std::string response =
        http_exchange(server.metrics_port(), "GET /metrics HTTP/1.0\r\n\r\n");
    ASSERT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0U) << response.substr(0, 120);
    EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
    const std::size_t body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const std::string body = response.substr(body_at + 4);

    // Runtime counters are always live (they come from RuntimeStats, not the
    // compile-gated instrumentation).
    EXPECT_NE(body.find("\nvarade_samples_pushed_total 10\n"), std::string::npos);
    EXPECT_NE(body.find("varade_scorer_rounds_total{shard=\"0\"}"), std::string::npos);
    EXPECT_NE(body.find("# TYPE varade_net_connections gauge\n"), std::string::npos);
    EXPECT_NE(body.find("# TYPE varade_step_phase_seconds histogram\n"), std::string::npos);
    EXPECT_NE(body.find("varade_push_to_score_seconds_count"), std::string::npos);
    if constexpr (obs::kEnabled) {
      // With telemetry compiled in, the scrape-time traffic above has gone
      // through every instrumented hop.
      EXPECT_NE(body.find("varade_step_phase_seconds_bucket{phase=\"score\""),
                std::string::npos);
      EXPECT_EQ(body.find("varade_net_frames_decoded_total 0\n"), std::string::npos);
    }

    // Wrong path and wrong method get HTTP errors, not silence.
    EXPECT_EQ(http_exchange(server.metrics_port(), "GET /nope HTTP/1.0\r\n\r\n")
                  .rfind("HTTP/1.0 404", 0),
              0U);
    EXPECT_EQ(http_exchange(server.metrics_port(), "POST /metrics HTTP/1.0\r\n\r\n")
                  .rfind("HTTP/1.0 405", 0),
              0U);

    // metrics_text() is the same exposition, scrape-free (for tests and
    // embedders without a listener).
    const std::string direct = server.metrics_text();
    EXPECT_NE(direct.find("\nvarade_samples_pushed_total 10\n"), std::string::npos);
    EXPECT_NE(direct.find("# TYPE varade_scorer_round_seconds histogram\n"),
              std::string::npos);
  }
  server.request_stop();
  server_thread.join();
}

TEST(NetE2E, StatsReplyCarriesScoredAndLatencyQuantiles) {
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_stats_tel.sock";
  config.n_streams = 1;
  config.threshold = rig().threshold;
  Server server(rig().detector, rig().normalizer, config);
  std::thread server_thread([&server] { server.run(); });
  {
    Client client(parse_endpoint("unix:" + config.uds_path));
    const float sample[3] = {0.5F, 0.5F, 0.5F};
    for (int t = 0; t < 20; ++t)
      client.send_sample(0, static_cast<std::uint64_t>(t), sample);
    client.flush();
    ClientEvent ev;
    for (int got = 0; got < 20;) {
      ASSERT_TRUE(client.poll_event(ev, 30000));
      if (ev.kind == ClientEvent::Kind::Score) ++got;
    }
    client.request_stats();
    WireStats stats{};
    bool got_stats = false;
    while (client.poll_event(ev, 30000)) {
      if (ev.kind == ClientEvent::Kind::Stats) {
        stats = ev.stats;
        got_stats = true;
        break;
      }
    }
    ASSERT_TRUE(got_stats);
    EXPECT_EQ(stats.pushed, 20U);
    // Every accepted sample was scored (we waited for the scores above).
    EXPECT_EQ(stats.scored, 20U);
    if constexpr (obs::kEnabled) {
      // Quantiles come from live histograms: ordered and non-zero once
      // rounds have run.
      EXPECT_GT(stats.round_p50_ns, 0U);
      EXPECT_LE(stats.round_p50_ns, stats.round_p95_ns);
      EXPECT_LE(stats.round_p95_ns, stats.round_p99_ns);
    } else {
      EXPECT_EQ(stats.round_p50_ns, 0U);
      EXPECT_EQ(stats.push_to_score_p99_ns, 0U);
    }
  }
  server.request_stop();
  server_thread.join();
}

// ---------------------------------------------------------------------------
// Disconnect-mid-drain accounting
// ---------------------------------------------------------------------------

TEST(NetE2E, DisconnectMidDrainKeepsAccountingReconciled) {
  // A client pushes a burst and vanishes without reading a single score.
  // The daemon must still drain everything it accepted, and the exit
  // accounting must reconcile: RuntimeStats::scored counts every score the
  // runtime emitted (== pushed - dropped, exactly, once closed), while the
  // scores that lost their owner mid-drain show up in scores_unrouted() —
  // not as silently inflated "delivered" work. This is the invariant the
  // daemon's exit report prints (see served_main.cpp).
  net::ServerConfig config;
  config.uds_path = "/tmp/varade_test_vanish.sock";
  config.n_streams = 1;
  config.threshold = rig().threshold;
  Server server(rig().detector, rig().normalizer, config);
  std::thread server_thread([&server] { server.run(); });

  constexpr Index kPushes = 300;
  {
    // Raw socket, not Client: no GOODBYE, no reads — the connection just
    // disappears with every sample already on the wire.
    std::vector<std::uint8_t> bytes;
    append_hello(bytes);
    const float sample[3] = {0.5F, 0.5F, 0.5F};
    for (Index t = 0; t < kPushes; ++t)
      append_sample(bytes, 0, static_cast<std::uint64_t>(t), sample, 3);
    Socket sock = connect_endpoint(parse_endpoint("unix:" + config.uds_path));
    send_all(sock.fd(), bytes.data(), bytes.size());
  }  // abrupt close

  // Let the daemon observe the EOF and finish scoring the burst, then stop.
  for (int spin = 0; spin < 30000 && server.runtime().stats().scored < kPushes; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.request_stop();
  server_thread.join();

  const serve::RuntimeStats fin = server.runtime().stats();
  EXPECT_EQ(fin.pushed, kPushes);  // every frame was on the wire before close
  EXPECT_EQ(fin.dropped, 0);
  EXPECT_EQ(fin.rejected, 0);
  // The reconciliation pin: emitted scores match accepted samples exactly...
  EXPECT_EQ(fin.scored, fin.pushed - fin.dropped);
  // ...and the undeliverable remainder is accounted, not lost: every score
  // was either routed to the (gone) owner before the EOF was processed or
  // counted as unrouted afterwards.
  EXPECT_GT(server.scores_unrouted(), 0);
  EXPECT_LE(server.scores_unrouted(), fin.scored);
}

// ---------------------------------------------------------------------------
// Server configuration validation
// ---------------------------------------------------------------------------

TEST(NetServer, RejectsInvalidConfigs) {
  NetRig& r = rig();
  net::ServerConfig none;  // no listener at all
  none.threshold = r.threshold;
  EXPECT_THROW(Server(r.detector, r.normalizer, none), Error);

  net::ServerConfig bad_streams;
  bad_streams.uds_path = "/tmp/varade_test_cfg.sock";
  bad_streams.threshold = r.threshold;
  bad_streams.n_streams = 0;
  EXPECT_THROW(Server(r.detector, r.normalizer, bad_streams), Error);
}

}  // namespace
}  // namespace varade::net
