// Geometry and kinematics tests: quaternion algebra properties, rotation
// round trips, and forward-kinematics sanity for the iiwa-like chain.
#include <gtest/gtest.h>

#include <cmath>

#include "varade/robot/kinematics.hpp"
#include "varade/robot/quaternion.hpp"
#include "varade/tensor/rng.hpp"

namespace varade::robot {
namespace {

TEST(Vec3, BasicOps) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3.0);
  EXPECT_DOUBLE_EQ(c.y, 6.0);
  EXPECT_DOUBLE_EQ(c.z, -3.0);
  EXPECT_NEAR(a.norm(), std::sqrt(14.0), 1e-12);
}

TEST(Mat3, RotationComposition) {
  const Mat3 rz = Mat3::rot_z(kPi / 2.0);
  const Vec3 x{1, 0, 0};
  const Vec3 y = rz * x;
  EXPECT_NEAR(y.x, 0.0, 1e-12);
  EXPECT_NEAR(y.y, 1.0, 1e-12);
  // R * R^T = I.
  const Mat3 prod = rz * rz.transposed();
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

TEST(Quaternion, IdentityAndNorm) {
  const Quaternion q = Quaternion::identity();
  EXPECT_DOUBLE_EQ(q.norm(), 1.0);
  const Vec3 v{1, 2, 3};
  const Vec3 r = q.rotate(v);
  EXPECT_NEAR(r.x, v.x, 1e-12);
  EXPECT_NEAR(r.y, v.y, 1e-12);
  EXPECT_NEAR(r.z, v.z, 1e-12);
}

TEST(Quaternion, EulerRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const double roll = rng.uniform(-3.0F, 3.0F);
    const double pitch = rng.uniform(-1.4F, 1.4F);  // avoid gimbal lock
    const double yaw = rng.uniform(-3.0F, 3.0F);
    const Quaternion q = Quaternion::from_euler(roll, pitch, yaw);
    EXPECT_NEAR(q.norm(), 1.0, 1e-9);
    double r2 = 0;
    double p2 = 0;
    double y2 = 0;
    q.to_euler(r2, p2, y2);
    EXPECT_NEAR(r2, roll, 1e-6);
    EXPECT_NEAR(p2, pitch, 1e-6);
    EXPECT_NEAR(y2, yaw, 1e-6);
  }
}

TEST(Quaternion, MatrixRoundTrip) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const Quaternion q =
        Quaternion::from_euler(rng.uniform(-3.0F, 3.0F), rng.uniform(-1.5F, 1.5F),
                               rng.uniform(-3.0F, 3.0F));
    const Quaternion back = Quaternion::from_matrix(q.to_matrix());
    // q and -q encode the same rotation.
    EXPECT_NEAR(back.angle_to(q), 0.0, 1e-6);
  }
}

TEST(Quaternion, RotationMatchesMatrix) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const Quaternion q = Quaternion::from_axis_angle(
        {rng.normal(), rng.normal(), rng.normal()}, rng.uniform(-3.0F, 3.0F));
    const Vec3 v{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 via_quat = q.rotate(v);
    const Vec3 via_mat = q.to_matrix() * v;
    EXPECT_NEAR(via_quat.x, via_mat.x, 1e-9);
    EXPECT_NEAR(via_quat.y, via_mat.y, 1e-9);
    EXPECT_NEAR(via_quat.z, via_mat.z, 1e-9);
  }
}

TEST(Quaternion, CompositionMatchesMatrixProduct) {
  const Quaternion a = Quaternion::from_euler(0.3, -0.2, 0.9);
  const Quaternion b = Quaternion::from_euler(-1.1, 0.4, 0.2);
  const Quaternion ab = a * b;
  const Mat3 mab = a.to_matrix() * b.to_matrix();
  const Quaternion q_mab = Quaternion::from_matrix(mab);
  EXPECT_NEAR(ab.angle_to(q_mab), 0.0, 1e-9);
}

TEST(Quaternion, RotationPreservesNorm) {
  Rng rng(4);
  const Quaternion q = Quaternion::from_euler(0.5, 0.3, -0.7);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 v{rng.normal(), rng.normal(), rng.normal()};
    EXPECT_NEAR(q.rotate(v).norm(), v.norm(), 1e-9);
  }
}

TEST(Quaternion, AxisAngleErrorsOnZeroAxis) {
  EXPECT_THROW(Quaternion::from_axis_angle({0, 0, 0}, 1.0), Error);
}

TEST(ForwardKinematics, HomePoseIsDeterministicAndReachable) {
  ForwardKinematics fk;
  const std::array<double, kNumJoints> home{};
  const Transform ee = fk.end_effector(home);
  // At home the iiwa-like chain points straight up: x = y = 0,
  // z = d1 + d3 + d5 + d7.
  EXPECT_NEAR(ee.translation.x, 0.0, 1e-9);
  EXPECT_NEAR(ee.translation.y, 0.0, 1e-9);
  EXPECT_NEAR(ee.translation.z, 0.360 + 0.420 + 0.400 + 0.126, 1e-9);
}

TEST(ForwardKinematics, RotationsStayOrthonormal) {
  ForwardKinematics fk;
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::array<double, kNumJoints> q{};
    for (auto& v : q) v = rng.uniform(-2.0F, 2.0F);
    const auto poses = fk.link_poses(q);
    for (const Transform& t : poses) {
      const Mat3 prod = t.rotation * t.rotation.transposed();
      for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c) EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(ForwardKinematics, ReachIsBoundedByLinkLengths) {
  ForwardKinematics fk;
  Rng rng(6);
  const double max_reach = 0.360 + 0.420 + 0.400 + 0.126 + 1e-9;
  for (int trial = 0; trial < 50; ++trial) {
    std::array<double, kNumJoints> q{};
    for (auto& v : q) v = rng.uniform(-3.0F, 3.0F);
    EXPECT_LE(fk.end_effector(q).translation.norm(), max_reach);
  }
}

TEST(ForwardKinematics, FirstJointRotatesAboutWorldZ) {
  ForwardKinematics fk;
  std::array<double, kNumJoints> q{};
  q[1] = 0.7;  // bend joint 2 so the arm leaves the z axis
  const Vec3 p0 = fk.end_effector(q).translation;
  q[0] = kPi / 2.0;
  const Vec3 p1 = fk.end_effector(q).translation;
  // Rotating joint 1 by 90 degrees about world z maps (x,y) -> (-y,x).
  EXPECT_NEAR(p1.x, -p0.y, 1e-9);
  EXPECT_NEAR(p1.y, p0.x, 1e-9);
  EXPECT_NEAR(p1.z, p0.z, 1e-9);
}

TEST(ForwardKinematics, AngularVelocityAccumulatesAlongChain) {
  ForwardKinematics fk;
  const std::array<double, kNumJoints> q{};
  std::array<double, kNumJoints> qd{};
  qd[0] = 1.0;  // only the base joint spins (about world z)
  const auto states = fk.link_states(q, qd);
  for (const LinkState& s : states) {
    EXPECT_NEAR(s.angular_velocity.x, 0.0, 1e-9);
    EXPECT_NEAR(s.angular_velocity.y, 0.0, 1e-9);
    EXPECT_NEAR(s.angular_velocity.z, 1.0, 1e-9);
  }
}

TEST(ForwardKinematics, JointLimitsAreIiwaLike) {
  const auto limits = iiwa_joint_limits_deg();
  EXPECT_DOUBLE_EQ(limits[0], 170.0);
  EXPECT_DOUBLE_EQ(limits[1], 120.0);
  EXPECT_DOUBLE_EQ(limits[6], 175.0);
}

}  // namespace
}  // namespace varade::robot
