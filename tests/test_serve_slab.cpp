// Tests for the structure-of-arrays stream state (PR "fleet-scale SoA
// slabs") and the push-path hardening fixes that rode along:
//
//  - bit-parity sweep: the slab-backed engine behind AsyncScoringRuntime
//    must match one OnlineMonitor per stream bit-for-bit at stream counts
//    {1, 16, 1000} x shard counts {1, 4} — scores, warm-up negatives, alarm
//    events, the lot (`parity` label, runs under ASan/UBSan in CI);
//  - ragged warm-up: streams at different ring fill levels (empty, below,
//    at, above the window) share one context slab without interfering;
//  - RingArena: arena-backed SampleRings stay isolated under concurrent
//    producers/poppers and size_approx() stays within bounds under
//    contention (`concurrency` label, runs under TSan);
//  - regression tests for the three bugfixes: raw-pointer push validates
//    its explicit length, add_stream(global_id) rejects negative/duplicate
//    ids, and size arithmetic is overflow-checked instead of wrapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "varade/core/varade.hpp"
#include "varade/serve/checked.hpp"
#include "varade/serve/runtime.hpp"

namespace varade::serve {
namespace {

data::MultivariateSeries make_sine(Index length, bool planted, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(3);
  std::vector<float> row(3);
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = planted && (t % 120) >= 90 && (t % 120) < 100;
    for (Index c = 0; c < 3; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, anomalous ? 0.9F : 0.03F);
    }
    s.append(row, anomalous ? 1 : 0);
  }
  return s;
}

/// One tiny fitted VARADE shared by every test in this binary (fitting
/// dominates; serving only reads the model). Small enough that the parity
/// sweep stays fast under the sanitizers' ~10x slowdown.
struct SlabRig {
  data::MultivariateSeries train_raw = make_sine(400, false, 1);
  data::MinMaxNormalizer normalizer;
  data::MultivariateSeries train;
  core::VaradeDetector detector;

  SlabRig()
      : detector({.window = 16,
                  .base_channels = 4,
                  .epochs = 1,
                  .learning_rate = 1e-3F,
                  .train_stride = 4}) {
    normalizer.fit(train_raw);
    train = normalizer.transform(train_raw);
    detector.fit(train);
  }
};

SlabRig& rig() {
  static SlabRig* r = new SlabRig();
  return *r;
}

/// The parity sweep replays a small set of input archetypes across an
/// arbitrarily large fleet: stream s plays archetype s % kArchetypes, so
/// only kArchetypes OnlineMonitor references are needed to check 1000
/// streams bit-for-bit.
constexpr Index kArchetypes = 8;
constexpr Index kMaxSamples = 64;

const data::MultivariateSeries& archetype(Index a) {
  static std::vector<data::MultivariateSeries>* inputs = [] {
    auto* v = new std::vector<data::MultivariateSeries>;
    for (Index i = 0; i < kArchetypes; ++i)
      v->push_back(make_sine(kMaxSamples, true, 100 + static_cast<std::uint64_t>(i)));
    return v;
  }();
  return (*inputs)[static_cast<std::size_t>(a)];
}

/// One shared alarm threshold (the quantile rule on the training series) so
/// the sweep exercises real alarm transitions, not just scores.
float shared_threshold() {
  static const float thr = core::calibrate_threshold(rig().detector, rig().train, {});
  return thr;
}

/// Feeds archetype `a` through a fresh OnlineMonitor and returns it plus the
/// full score sequence (warm-up negatives included).
struct Reference {
  std::unique_ptr<core::OnlineMonitor> monitor;
  std::vector<float> scores;
};

Reference make_reference(Index a, Index n_samples) {
  Reference ref;
  ref.monitor = std::make_unique<core::OnlineMonitor>(rig().detector, rig().normalizer);
  ref.monitor->set_threshold(shared_threshold());
  const data::MultivariateSeries& in = archetype(a);
  for (Index t = 0; t < n_samples; ++t) ref.scores.push_back(ref.monitor->push(in.sample(t)));
  return ref;
}

// ---------------------------------------------------------------------------
// Bit-parity sweep: slab engine vs OnlineMonitor at fleet-ish stream counts
// ---------------------------------------------------------------------------

void run_parity(Index n_streams, Index n_shards, Index n_samples) {
  SCOPED_TRACE("streams=" + std::to_string(n_streams) + " shards=" + std::to_string(n_shards) +
               " samples=" + std::to_string(n_samples));
  ASSERT_LE(n_samples, kMaxSamples);

  std::vector<Reference> refs;
  for (Index a = 0; a < kArchetypes; ++a) refs.push_back(make_reference(a, n_samples));

  AsyncRuntimeConfig cfg;
  cfg.n_shards = n_shards;
  cfg.engine.max_batch = 16;  // several chunks per round at 1000 streams
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(n_streams);
  runtime.set_threshold(shared_threshold());
  runtime.start();

  std::vector<std::vector<float>> got(static_cast<std::size_t>(n_streams));
  const auto collect = [&](std::vector<StreamScore> scores) {
    for (const StreamScore& r : scores) {
      auto& seq = got[static_cast<std::size_t>(r.stream)];
      // drain_scores preserves per-stream emission order == sample order.
      ASSERT_EQ(r.sample, static_cast<Index>(seq.size()));
      seq.push_back(r.score);
    }
  };

  for (Index t = 0; t < n_samples; ++t) {
    for (Index s = 0; s < n_streams; ++s)
      ASSERT_EQ(runtime.push(s, archetype(s % kArchetypes).sample(t), 3), PushResult::Ok);
    // Drain mid-flight now and then so the result queues stay bounded.
    if (t % 7 == 0) collect(runtime.drain_scores());
  }
  runtime.close();
  collect(runtime.drain_scores());

  for (Index s = 0; s < n_streams; ++s) {
    const Reference& ref = refs[static_cast<std::size_t>(s % kArchetypes)];
    const auto& seq = got[static_cast<std::size_t>(s)];
    ASSERT_EQ(static_cast<Index>(seq.size()), n_samples) << "stream " << s;
    for (Index t = 0; t < n_samples; ++t) {
      // Bit-exact: the SoA slab/ring/normalise path must reproduce the
      // per-stream OnlineMonitor float-for-float, not approximately.
      ASSERT_EQ(seq[static_cast<std::size_t>(t)], ref.scores[static_cast<std::size_t>(t)])
          << "stream " << s << " sample " << t;
    }
    EXPECT_EQ(runtime.samples_seen(s), n_samples);
    EXPECT_EQ(runtime.in_alarm(s), ref.monitor->in_alarm());
    const auto& events = runtime.events(s);
    const auto& ref_events = ref.monitor->events();
    ASSERT_EQ(events.size(), ref_events.size()) << "stream " << s;
    for (std::size_t e = 0; e < events.size(); ++e) {
      EXPECT_EQ(events[e].onset_sample, ref_events[e].onset_sample);
      EXPECT_EQ(events[e].last_sample, ref_events[e].last_sample);
      EXPECT_EQ(events[e].peak_score, ref_events[e].peak_score);
    }
  }
}

TEST(SlabParity, OneStream) {
  run_parity(1, 1, 48);
  run_parity(1, 4, 48);
}

TEST(SlabParity, SixteenStreams) {
  run_parity(16, 1, 48);
  run_parity(16, 4, 48);
}

TEST(SlabParity, ThousandStreamsUnsharded) { run_parity(1000, 1, 24); }

TEST(SlabParity, ThousandStreamsFourShards) { run_parity(1000, 4, 24); }

// ---------------------------------------------------------------------------
// Ragged warm-up: fill levels below/at/above the window share one slab
// ---------------------------------------------------------------------------

TEST(SlabEngine, RaggedWarmupAcrossFillLevels) {
  // Window is 16; stream i receives i * 8 samples in total (0, 8, 16, 24,
  // 32): never warm, half full, exactly full, and wrapped once / twice.
  ScoringEngine engine(rig().detector, rig().normalizer, {.n_threads = 2, .max_batch = 3});
  constexpr Index kStreams = 5;
  engine.add_streams(kStreams);
  engine.set_threshold(shared_threshold());

  std::vector<Reference> refs;
  std::vector<std::vector<float>> got(kStreams);
  for (Index s = 0; s < kStreams; ++s) refs.push_back(make_reference(s, s * 8));

  // Split the pushes across two push/step cycles so ring state (including
  // partially-filled and wrapped rings) must survive a step() boundary.
  const auto feed = [&](Index from, Index to) {
    for (Index s = 0; s < kStreams; ++s) {
      const Index n = s * 8;
      for (Index t = from; t < std::min(to, n); ++t) engine.push(s, archetype(s).sample(t), 3);
    }
    for (const StreamScore& r : engine.step())
      got[static_cast<std::size_t>(r.stream)].push_back(r.score);
  };
  feed(0, 13);  // stream 2 stops mid-fill, streams 3/4 just past the window
  feed(13, 40);

  for (Index s = 0; s < kStreams; ++s) {
    const Index n = s * 8;
    EXPECT_EQ(engine.samples_seen(s), n);
    const auto& seq = got[static_cast<std::size_t>(s)];
    ASSERT_EQ(static_cast<Index>(seq.size()), n) << "stream " << s;
    for (Index t = 0; t < n; ++t) {
      ASSERT_EQ(seq[static_cast<std::size_t>(t)],
                refs[static_cast<std::size_t>(s)].scores[static_cast<std::size_t>(t)])
          << "stream " << s << " sample " << t;
      // The warm-up sentinel contract: negative until the ring is full.
      if (t < 15) {
        EXPECT_LT(seq[static_cast<std::size_t>(t)], 0.0F);
      }
    }
  }
  // Stream 0 never received a sample: registered, idle, untouched.
  EXPECT_EQ(engine.samples_seen(0), 0);
  EXPECT_FALSE(engine.in_alarm(0));
}

// ---------------------------------------------------------------------------
// Bugfix regressions: raw-pointer push validates its explicit length
// ---------------------------------------------------------------------------

TEST(SlabEngine, PushValidatesSampleLength) {
  ScoringEngine engine(rig().detector, rig().normalizer);
  engine.add_stream();
  engine.set_threshold(1e9F);
  const float sample[4] = {0.1F, 0.2F, 0.3F, 0.4F};
  try {
    engine.push(0, sample, 2);
    FAIL() << "short push did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "sample channel count mismatch: expected 3 channels, got 2");
  }
  EXPECT_THROW(engine.push(0, sample, 4), Error);
  EXPECT_THROW(engine.push(0, std::vector<float>{0.1F}), Error);
  // A rejected push buffers nothing: the next step scores only valid pushes.
  engine.push(0, sample, 3);
  EXPECT_EQ(engine.step().size(), 1U);
  EXPECT_EQ(engine.samples_seen(0), 1);
}

TEST(SlabRuntime, PushValidatesSampleLength) {
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer);
  runtime.add_stream();
  runtime.set_threshold(1e9F);
  runtime.start();
  const float sample[4] = {0.1F, 0.2F, 0.3F, 0.4F};
  try {
    runtime.push(0, sample, 4);
    FAIL() << "long push did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "sample channel count mismatch: expected 3 channels, got 4");
  }
  EXPECT_THROW(runtime.push(0, sample, 2, BackpressurePolicy::Reject), Error);
  ASSERT_EQ(runtime.push(0, sample, 3), PushResult::Ok);
  runtime.close();
  EXPECT_EQ(runtime.samples_seen(0), 1);
  // Rejected pushes never reached the ring or the counters.
  EXPECT_EQ(runtime.stats(0).pushed, 1);
  EXPECT_EQ(runtime.stats(0).rejected, 0);
}

// ---------------------------------------------------------------------------
// Bugfix regressions: add_stream(global_id) rejects bad ids
// ---------------------------------------------------------------------------

TEST(SlabEngine, AddStreamRejectsNegativeAndDuplicateIds) {
  ScoringEngine engine(rig().detector, rig().normalizer);
  try {
    engine.add_stream(-1);
    FAIL() << "negative id did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "stream id -1 out of range: global stream ids must be >= 0");
  }
  EXPECT_EQ(engine.n_streams(), 0);  // the failed call registered nothing

  // In-order duplicates (the O(1) fast path) and out-of-order duplicates
  // (the scan path) are both rejected.
  engine.add_streams(5);
  try {
    engine.add_stream(3);
    FAIL() << "duplicate id did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "stream id 3 already registered");
  }
  EXPECT_EQ(engine.add_stream(10), 5);  // sparse forward registration is fine
  EXPECT_THROW(engine.add_stream(10), Error);
  EXPECT_EQ(engine.add_stream(7), 6);  // backfill between registered ids
  EXPECT_THROW(engine.add_stream(7), Error);
  EXPECT_EQ(engine.n_streams(), 7);
  EXPECT_EQ(engine.global_id(5), 10);
  EXPECT_EQ(engine.global_id(6), 7);
}

// ---------------------------------------------------------------------------
// Bugfix regressions: size arithmetic is overflow-checked
// ---------------------------------------------------------------------------

TEST(CheckedArithmetic, MultiplyAndAdd) {
  EXPECT_EQ(detail::checked_mul(3, 7, "test"), 21);
  EXPECT_EQ(detail::checked_mul(0, 1L << 62, "test"), 0);
  EXPECT_EQ(detail::checked_add(1L << 62, (1L << 62) - 1, "test"),
            std::numeric_limits<Index>::max());
  try {
    detail::checked_mul(1L << 40, 1L << 40, "context slab");
    FAIL() << "overflowing multiply did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "context slab overflows Index");
  }
  EXPECT_THROW(detail::checked_add(1L << 62, 1L << 62, "test"), Error);
  // Negative operands are a caller bug, not a size: rejected outright.
  EXPECT_THROW(detail::checked_mul(-1, 8, "test"), Error);
  EXPECT_THROW(detail::checked_add(8, -1, "test"), Error);
}

TEST(RingArenaTest, ChecksSizingAndRange) {
  RingArena arena(4, 3, 60);
  EXPECT_EQ(arena.n_rings(), 4);
  EXPECT_EQ(arena.channels(), 3);
  EXPECT_EQ(arena.capacity(), 64);  // rounded up to a power of two
  EXPECT_NE(arena.slots(0), nullptr);
  EXPECT_NE(arena.data(3), nullptr);
  EXPECT_THROW(arena.slots(-1), Error);
  EXPECT_THROW(arena.slots(4), Error);
  EXPECT_THROW(arena.data(4), Error);
  // A fleet configuration whose slabs cannot fit in Index fails loudly at
  // construction instead of wrapping into a small allocation.
  EXPECT_THROW(RingArena(1L << 40, 1L << 20, 1L << 20), Error);
}

// ---------------------------------------------------------------------------
// RingArena under contention: isolation + size_approx bounds (TSan target)
// ---------------------------------------------------------------------------

TEST(RingArenaTest, CrossRingIsolationUnderContention) {
  constexpr Index kRings = 4;
  constexpr Index kChannels = 3;
  constexpr Index kPerRing = 1500;
  RingArena arena(kRings, kChannels, 64);
  std::deque<SampleRing> rings;
  for (Index i = 0; i < kRings; ++i)
    rings.emplace_back(kChannels, arena.capacity(), arena.slots(i), arena.data(i));

  // One producer and one popper per ring, all rings concurrently active over
  // the shared slabs. Samples are tagged {ring, seq, ring * 10000 + seq}: a
  // popper seeing another ring's tag, or a gap/reorder in seq, means the
  // arena's per-ring carving leaked across ring boundaries.
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (Index i = 0; i < kRings; ++i) {
    threads.emplace_back([&, i] {
      float sample[kChannels];
      for (Index seq = 0; seq < kPerRing; ++seq) {
        sample[0] = static_cast<float>(i);
        sample[1] = static_cast<float>(seq);
        sample[2] = static_cast<float>(i * 10000 + seq);
        while (!rings[static_cast<std::size_t>(i)].try_push(sample)) std::this_thread::yield();
      }
    });
    threads.emplace_back([&, i] {
      float sample[kChannels];
      Index expected = 0;
      while (expected < kPerRing) {
        if (!rings[static_cast<std::size_t>(i)].try_pop(sample)) {
          std::this_thread::yield();
          continue;
        }
        if (sample[0] != static_cast<float>(i) || sample[1] != static_cast<float>(expected) ||
            sample[2] != static_cast<float>(i * 10000 + expected)) {
          failed.store(true);
          return;
        }
        ++expected;
      }
    });
  }
  // Meanwhile, size_approx() stays a sane snapshot under contention: never
  // negative, never beyond capacity.
  for (int poll = 0; poll < 2000; ++poll) {
    for (Index i = 0; i < kRings; ++i) {
      const Index size = rings[static_cast<std::size_t>(i)].size_approx();
      ASSERT_GE(size, 0);
      ASSERT_LE(size, arena.capacity());
    }
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  for (Index i = 0; i < kRings; ++i) {
    EXPECT_TRUE(rings[static_cast<std::size_t>(i)].empty_approx());
    EXPECT_EQ(rings[static_cast<std::size_t>(i)].size_approx(), 0);  // exact once quiescent
  }
}

}  // namespace
}  // namespace varade::serve
